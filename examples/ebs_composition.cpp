// Cross-service fault graph composition: the Amazon EBS outage scenario from
// the paper's introduction (§1) and §4.1.1's aggregate dependency graphs.
//
// An application is replicated across three EC2 instances in separate racks —
// all risk groups *look* like they have size three. But each instance mounts
// volumes from the same EBS service, and inside EBS every replica chain
// passes through one EBS control server. Composing the EBS fault graph into
// the application's reveals the size-1 unexpected risk group that took down
// US-East in the documented 2012 event.

#include <cstdio>

#include "src/graph/compose.h"
#include "src/graph/fault_graph.h"
#include "src/sia/ranking.h"
#include "src/sia/risk_groups.h"
#include "src/util/strings.h"

using namespace indaas;

namespace {

std::string GroupNames(const FaultGraph& graph, const RiskGroup& group) {
  std::vector<std::string> names;
  for (NodeId id : group) {
    names.push_back(graph.node(id).name);
  }
  return "{" + Join(names, ", ") + "}";
}

void PrintGroups(const char* title, const FaultGraph& graph,
                 const std::vector<RiskGroup>& groups) {
  std::printf("%s\n", title);
  for (const auto& ranked : RankBySize(groups)) {
    std::printf("  %s  (size %zu)\n", GroupNames(graph, ranked.group).c_str(),
                ranked.group.size());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // The application's own view: three redundant EC2 instances; each fails if
  // its host rack fails or its storage service ("EBS") fails. EBS appears as
  // an opaque basic event — the application provider cannot see inside it.
  FaultGraph app;
  NodeId ebs = app.AddBasicEvent("EBS");
  std::vector<NodeId> instances;
  for (int i = 1; i <= 3; ++i) {
    NodeId rack = app.AddBasicEvent(StrFormat("rack%d", i));
    instances.push_back(
        app.AddGate(StrFormat("ec2-instance%d fails", i), GateType::kOr, {rack, ebs}));
  }
  NodeId top = app.AddGate("application fails", GateType::kAnd, instances);
  app.SetTopEvent(top);
  if (!app.Validate().ok()) {
    return 1;
  }

  auto naive = ComputeMinimalRiskGroups(app);
  if (!naive.ok()) {
    return 1;
  }
  PrintGroups("Application-level view (EBS opaque):", app, naive->groups);

  // The EBS provider's own fault graph: two replicated storage backends, but
  // both backends are managed through one control server.
  FaultGraph ebs_graph;
  NodeId control = ebs_graph.AddBasicEvent("ebs-control-server");
  NodeId backend_a = ebs_graph.AddBasicEvent("ebs-backend-a");
  NodeId backend_b = ebs_graph.AddBasicEvent("ebs-backend-b");
  NodeId chain_a = ebs_graph.AddGate("chain a", GateType::kOr, {backend_a, control});
  NodeId chain_b = ebs_graph.AddGate("chain b", GateType::kOr, {backend_b, control});
  NodeId ebs_top = ebs_graph.AddGate("ebs fails", GateType::kAnd, {chain_a, chain_b});
  ebs_graph.SetTopEvent(ebs_top);
  if (!ebs_graph.Validate().ok()) {
    return 1;
  }

  // Composition (§4.1.1): splice the EBS graph in place of the placeholder.
  auto composed = ComposeFaultGraphs(app, {{"EBS", &ebs_graph}});
  if (!composed.ok()) {
    std::fprintf(stderr, "%s\n", composed.status().ToString().c_str());
    return 1;
  }
  auto full = ComputeMinimalRiskGroups(*composed);
  if (!full.ok()) {
    return 1;
  }
  PrintGroups("Composed view (EBS internals spliced in):", *composed, full->groups);

  std::printf(
      "The opaque view shows only the intended 3-way risk groups (plus \"EBS\"\n"
      "itself, whose internal redundancy the application provider trusted).\n"
      "Composition exposes {ebs-control-server}: one machine, shared by every\n"
      "storage chain, able to fail all three \"independent\" instances at once —\n"
      "precisely the unexpected common dependency behind the 2012 US-East outage.\n");
  return 0;
}
