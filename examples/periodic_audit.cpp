// Periodic auditing (paper §2: "Alice might also request periodic audits on
// a deployed configuration to identify correlated failure risks that
// configuration changes or evolution might introduce").
//
// Week 1: a healthy two-server deployment, each server dual-homed through
// its own switch. Week 2: an operator "simplifies" the cabling and both
// servers now uplink through the same switch. The periodic audit diffs the
// two reports and flags the regression — a brand-new single-component risk
// group — before the switch ever fails.

#include <cstdio>

#include "src/agent/report_diff.h"
#include "src/agent/sia_audit.h"
#include "src/deps/depdb.h"

using namespace indaas;

namespace {

DepDb Week1Configuration() {
  DepDb db;
  // Independent uplinks: S1 via SwitchA, S2 via SwitchB, both dual-cored.
  db.Add(NetworkDependency{"S1", "Internet", {"SwitchA", "Core1"}});
  db.Add(NetworkDependency{"S1", "Internet", {"SwitchA", "Core2"}});
  db.Add(NetworkDependency{"S2", "Internet", {"SwitchB", "Core1"}});
  db.Add(NetworkDependency{"S2", "Internet", {"SwitchB", "Core2"}});
  db.Add(SoftwareDependency{"riak1", "S1", {"libc6=2.13", "erlang=15b"}});
  db.Add(SoftwareDependency{"riak2", "S2", {"libc6=2.13", "erlang=15b"}});
  return db;
}

DepDb Week2Configuration() {
  DepDb db;
  // The re-cabling: S2 now shares SwitchA with S1.
  db.Add(NetworkDependency{"S1", "Internet", {"SwitchA", "Core1"}});
  db.Add(NetworkDependency{"S1", "Internet", {"SwitchA", "Core2"}});
  db.Add(NetworkDependency{"S2", "Internet", {"SwitchA", "Core1"}});
  db.Add(NetworkDependency{"S2", "Internet", {"SwitchA", "Core2"}});
  db.Add(SoftwareDependency{"riak1", "S1", {"libc6=2.13", "erlang=15b"}});
  db.Add(SoftwareDependency{"riak2", "S2", {"libc6=2.13", "erlang=15b"}});
  return db;
}

}  // namespace

int main() {
  AuditSpecification spec;
  spec.candidate_deployments = {{"S1", "S2"}};

  DepDb week1 = Week1Configuration();
  auto report1 = RunSiaAudit(week1, spec);
  if (!report1.ok()) {
    std::fprintf(stderr, "%s\n", report1.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Week 1 audit ===\n%s\n", RenderSiaReport(*report1).c_str());

  DepDb week2 = Week2Configuration();
  auto report2 = RunSiaAudit(week2, spec);
  if (!report2.ok()) {
    std::fprintf(stderr, "%s\n", report2.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Week 2 audit (after the re-cabling) ===\n%s\n",
              RenderSiaReport(*report2).c_str());

  AuditDiff diff = DiffSiaReports(*report1, *report2);
  std::printf("=== Periodic audit diff ===\n%s", RenderAuditDiff(diff).c_str());
  if (diff.HasRegressions()) {
    std::printf(
        "\nThe re-cabling silently created a single-switch risk group. A periodic\n"
        "audit catches it as a regression the week it appears — not in the\n"
        "postmortem after SwitchA takes both replicas down.\n");
    return 0;
  }
  std::printf("no regressions (unexpected for this scenario)\n");
  return 1;
}
