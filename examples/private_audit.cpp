// Private independence audit across distrustful cloud providers (the paper's
// third case study, §6.2.3 / Fig. 6c / Table 2): four clouds run Riak,
// MongoDB, Redis and CouchDB; the P-SOP protocol ranks every 2-way and 3-way
// redundancy deployment by Jaccard similarity without any provider revealing
// its dependency data.
//
//   private_audit [--minhash] [--m=256] [--group-bits=768]

#include <cstdio>

#include "src/acquire/apt_sim.h"
#include "src/agent/agent.h"
#include "src/util/flags.h"
#include "src/util/strings.h"

using namespace indaas;

int main(int argc, char** argv) {
  bool minhash = false;
  int64_t m = 256;
  int64_t group_bits = 768;
  FlagSet flags;
  flags.AddBool("minhash", &minhash, "use MinHash compression before P-SOP");
  flags.AddInt("m", &m, "MinHash sample size");
  flags.AddInt("group-bits", &group_bits, "commutative-encryption group size (768/1024/1536/2048)");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // Each provider collects its software dependency closure with the
  // apt-rdepends module and normalizes package identifiers (§4.2.3).
  PackageUniverse universe = PackageUniverse::KeyValueStoreUniverse();
  const std::pair<const char*, const char*> clouds[] = {
      {"Cloud1", "riak"},
      {"Cloud2", "mongodb-server"},
      {"Cloud3", "redis-server"},
      {"Cloud4", "couchdb"},
  };
  std::vector<CloudProvider> providers;
  for (const auto& [cloud, program] : clouds) {
    auto closure = universe.Closure(program);
    if (!closure.ok()) {
      std::fprintf(stderr, "%s\n", closure.status().ToString().c_str());
      return 1;
    }
    std::printf("%s runs %-15s (%3zu packages in its dependency closure)\n", cloud, program,
                closure->size());
    providers.push_back({cloud, std::move(closure).value()});
  }

  PiaAuditOptions options;
  options.method = minhash ? PiaMethod::kPsopMinHash : PiaMethod::kPsopExact;
  options.minhash_m = static_cast<size_t>(m);
  options.psop.group_bits = static_cast<size_t>(group_bits);

  AuditingAgent agent;
  auto report = agent.AuditPrivate(providers, options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s", RenderPiaReport(*report).c_str());

  std::printf("Protocol cost per provider (all deployments):\n");
  for (size_t i = 0; i < providers.size(); ++i) {
    const PartyStats& stats = report->provider_stats[i];
    std::printf("  %s: sent %s, %zu encryptions, %s CPU\n", providers[i].name.c_str(),
                HumanBytes(static_cast<double>(stats.bytes_sent)).c_str(), stats.encrypt_ops,
                HumanSeconds(stats.compute_seconds).c_str());
  }
  std::printf(
      "\nThe most independent 2-way deployment is %s — no provider revealed\n"
      "a single component name to anyone.\n",
      Join(report->rankings[0][0].providers, " & ").c_str());
  return 0;
}
