#!/usr/bin/env sh
# Two-terminal walkthrough of the networked INDaaS service, compressed into
# one script on loopback (README "Networked mode", DESIGN.md §7).
#
# What a human would do across two terminals:
#   terminal 1:  indaas serve --port=7341
#   terminal 2:  indaas audit --remote=localhost:7341 --depdb=... --deployments=...
# plus a three-peer socket-backed P-SOP ring (one process per provider).
#
# Usage: examples/serve_and_audit.sh [path-to-indaas-binary]
set -eu

INDAAS="${1:-./build/src/cli/indaas}"
if [ ! -x "$INDAAS" ]; then
  echo "indaas binary not found at $INDAAS (build first, or pass its path)" >&2
  exit 1
fi

WORKDIR="$(mktemp -d)"
trap 'kill $SERVER_PID 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT
PORT=17341

echo "### 1. Collect a DepDB from the simulated lab cloud"
"$INDAAS" collect --infra=lab --out="$WORKDIR/depdb.txt" --with-software

echo
echo "### 2. [terminal 1] Start the audit server"
"$INDAAS" serve --port=$PORT &
SERVER_PID=$!

echo
echo "### 3. [terminal 2] Ship the DepDB to the server and audit remotely"
# The client retries with exponential backoff while the server comes up, so
# no sleep is needed between the two steps.
"$INDAAS" audit --remote=localhost:$PORT --depdb="$WORKDIR/depdb.txt" \
    --deployments="Server1,Server2;Server1,Server3;Server2,Server4"

echo
echo "### 4. Stop the server"
kill -INT $SERVER_PID
wait $SERVER_PID 2>/dev/null || true

echo
echo "### 5. Socket-backed P-SOP: three provider processes form a TCP ring"
cat > "$WORKDIR/providers.txt" <<'EOF'
CloudA: net:tor1, net:core1, hw:sed900, pkg:libc6=2.13
CloudB: net:tor2, net:core1, hw:sed900, pkg:libc6=2.13
CloudC: net:tor3, net:core1, hw:wd200, pkg:libc6=2.13
EOF
PEERS="127.0.0.1:17401,127.0.0.1:17402,127.0.0.1:17403"
"$INDAAS" pia --sets="$WORKDIR/providers.txt" --peers="$PEERS" --self=0 &
PEER0=$!
"$INDAAS" pia --sets="$WORKDIR/providers.txt" --peers="$PEERS" --self=1 &
PEER1=$!
"$INDAAS" pia --sets="$WORKDIR/providers.txt" --peers="$PEERS" --self=2
wait $PEER0 $PEER1

echo
echo "Done: every peer printed the same Jaccard without any peer seeing"
echo "another's component set."
