// Quickstart: audit the independence of a small redundant deployment.
//
// Builds the paper's Figure 4(a) example — two systems E1 {A1,A2} and
// E2 {A2,A3} — plus the weighted Figure 4(b) variant, determines the risk
// groups with both algorithms, ranks them, and prints the report.

#include <cstdio>

#include "src/graph/levels.h"
#include "src/sia/ranking.h"
#include "src/sia/risk_groups.h"
#include "src/sia/sampling.h"
#include "src/util/strings.h"

using namespace indaas;

namespace {

std::string GroupNames(const FaultGraph& graph, const RiskGroup& group) {
  std::vector<std::string> names;
  for (NodeId id : group) {
    names.push_back(graph.node(id).name);
  }
  return "{" + Join(names, ", ") + "}";
}

}  // namespace

int main() {
  // 1. Describe each redundant system's dependencies as a component set.
  std::vector<ComponentSet> systems = {
      {"E1", {"A1", "A2"}},
      {"E2", {"A2", "A3"}},
  };
  std::printf("Auditing a 2-way redundant deployment:\n");
  std::printf("  E1 depends on {A1, A2};  E2 depends on {A2, A3}\n\n");

  // 2. Shared components are the red flags.
  for (const std::string& shared : SharedComponents(systems)) {
    std::printf("Shared component: %s (potential correlated failure!)\n", shared.c_str());
  }

  // 3. Build the AND-of-ORs fault graph and compute the minimal risk groups.
  auto graph = BuildFromComponentSets(systems);
  if (!graph.ok()) {
    std::fprintf(stderr, "build failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto exact = ComputeMinimalRiskGroups(*graph);
  if (!exact.ok()) {
    std::fprintf(stderr, "minimal RG failed: %s\n", exact.status().ToString().c_str());
    return 1;
  }
  std::printf("\nMinimal risk groups (exact algorithm):\n");
  for (const auto& ranked : RankBySize(exact->groups)) {
    std::printf("  %s  (size %zu)\n", GroupNames(*graph, ranked.group).c_str(),
                ranked.group.size());
  }

  // 4. The linear-time sampling algorithm finds the same groups here.
  SamplingOptions sampling;
  sampling.rounds = 50000;
  sampling.failure_bias = 0.2;
  sampling.shrink = ShrinkMode::kGreedy;
  auto sampled = SampleRiskGroups(*graph, sampling);
  if (!sampled.ok()) {
    std::fprintf(stderr, "sampling failed: %s\n", sampled.status().ToString().c_str());
    return 1;
  }
  std::printf("\nSampling algorithm (%zu rounds, %zu failing) found %zu groups.\n",
              sampled->rounds_executed, sampled->failing_rounds, sampled->groups.size());

  // 5. With failure probabilities (Fig. 4b: A1=0.1, A2=0.2, A3=0.3) the
  //    groups can be ranked by relative importance (paper §4.1.3).
  std::vector<FaultSet> weighted = {
      {"E1", {{"A1", 0.1}, {"A2", 0.2}}},
      {"E2", {{"A2", 0.2}, {"A3", 0.3}}},
  };
  auto wgraph = BuildFromFaultSets(weighted);
  if (!wgraph.ok()) {
    return 1;
  }
  auto wgroups = ComputeMinimalRiskGroups(*wgraph);
  if (!wgroups.ok()) {
    return 1;
  }
  auto ranking = RankByImportance(*wgraph, wgroups->groups);
  if (!ranking.ok()) {
    std::fprintf(stderr, "ranking failed: %s\n", ranking.status().ToString().c_str());
    return 1;
  }
  std::printf("\nWeighted ranking (Pr(outage) = %.4f):\n", ranking->top_event_prob);
  for (const auto& entry : ranking->ranked) {
    std::printf("  %s  importance %.4f\n", GroupNames(*wgraph, entry.group).c_str(), entry.score);
  }
  std::printf("\nA2 dominates the outage risk: replacing it with independent\n"
              "per-system components is the fix INDaaS would suggest.\n");
  return 0;
}
