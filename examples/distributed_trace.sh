#!/usr/bin/env sh
# Distributed tracing walkthrough (README "Distributed observability",
# DESIGN.md §6): a server and a remote audit client each write their own
# Chrome trace, then `indaas trace-merge` stitches them into one
# clock-aligned timeline where the server's handler spans nest inside the
# client's RPC spans.
#
# What a human would do across two terminals:
#   terminal 1:  indaas serve --port=7341 --trace-out=server_trace.json
#   terminal 2:  indaas audit --remote=localhost:7341 --trace-out=client_trace.json ...
#   terminal 2:  indaas stats --remote=localhost:7341
#   (stop the server)
#   terminal 2:  indaas trace-merge --out=merged.json client_trace.json server_trace.json
#
# Usage: examples/distributed_trace.sh [path-to-indaas-binary]
set -eu

INDAAS="${1:-./build/src/cli/indaas}"
if [ ! -x "$INDAAS" ]; then
  echo "indaas binary not found at $INDAAS (build first, or pass its path)" >&2
  exit 1
fi

WORKDIR="$(mktemp -d)"
trap 'kill $SERVER_PID 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT
PORT=17351

echo "### 1. Collect a DepDB from the simulated lab cloud"
"$INDAAS" collect --infra=lab --out="$WORKDIR/depdb.txt" --with-software

echo
echo "### 2. [terminal 1] Start the audit server, tracing to a file"
"$INDAAS" serve --port=$PORT --trace-out="$WORKDIR/server_trace.json" &
SERVER_PID=$!

echo
echo "### 3. [terminal 2] Audit remotely; the client traces its own RPCs"
# The trace context rides the wire (one frame flag + 16 bytes), so the
# server's handler spans record the client's trace id and calling span.
"$INDAAS" audit --remote=localhost:$PORT --depdb="$WORKDIR/depdb.txt" \
    --deployments="Server1,Server2;Server1,Server3" \
    --trace-out="$WORKDIR/client_trace.json"

echo
echo "### 4. [terminal 2] Scrape the server's live stats and health"
"$INDAAS" stats --remote=localhost:$PORT
echo
echo "--- same snapshot, Prometheus exposition (excerpt) ---"
"$INDAAS" stats --remote=localhost:$PORT --format=prometheus | head -n 12

echo
echo "### 5. Stop the server so it writes its trace file"
kill -INT $SERVER_PID
wait $SERVER_PID 2>/dev/null || true

echo
echo "### 6. Merge the two per-process traces into one timeline"
"$INDAAS" trace-merge --out="$WORKDIR/merged.json" \
    "$WORKDIR/client_trace.json" "$WORKDIR/server_trace.json"

echo
echo "Merged trace head (each process is its own pid, clocks aligned):"
head -c 600 "$WORKDIR/merged.json"
echo
echo
echo "Load the merged file in chrome://tracing or https://ui.perfetto.dev —"
echo "the server's svc.rpc spans sit inside the client's svc.client.rpc spans."
