// Network-dependency audit of a data center (the paper's first case study,
// §6.2.1 / Fig. 6a): before deploying a replicated service, find the pair of
// racks whose servers share the fewest network dependencies.
//
//   network_audit [--racks=20] [--rounds=100000] [--flows=60] [--sampling]

#include <cstdio>

#include "src/acquire/nsdminer_sim.h"
#include "src/agent/agent.h"
#include "src/topology/case_study.h"
#include "src/util/flags.h"
#include "src/util/strings.h"

using namespace indaas;

int main(int argc, char** argv) {
  int64_t racks = 20;
  int64_t rounds = 100000;
  int64_t flows = 60;
  bool sampling = false;
  FlagSet flags;
  flags.AddInt("racks", &racks, "candidate racks to compare");
  flags.AddInt("rounds", &rounds, "failure sampling rounds");
  flags.AddInt("flows", &flows, "traffic flows per server for NSDMiner");
  flags.AddBool("sampling", &sampling, "use the sampling algorithm instead of minimal-RG");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // Alice's data center: 33 ToRs, four core routers (b1,b2,c1,c2).
  auto topo = BuildCaseStudyDatacenter(33, 1);
  if (!topo.ok()) {
    std::fprintf(stderr, "%s\n", topo.status().ToString().c_str());
    return 1;
  }
  std::printf("Data center: %zu devices, %zu links\n", topo->DeviceCount(), topo->LinkCount());

  // Dependency acquisition: NSDMiner infers each server's routes from
  // observed traffic.
  NsdMinerSim miner(3);
  Rng rng(1);
  for (int64_t r = 1; r <= racks; ++r) {
    auto generated = GenerateTraffic(*topo, StrFormat("rack%lld-srv1", (long long)r), "Internet",
                                     static_cast<size_t>(flows), rng);
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    miner.IngestFlows(*generated);
  }

  AuditingAgent agent;
  agent.AddModule(&miner);

  AuditSpecification spec;
  for (int64_t a = 1; a <= racks; ++a) {
    for (int64_t b = a + 1; b <= racks; ++b) {
      spec.candidate_deployments.push_back({StrFormat("rack%lld-srv1", (long long)a),
                                            StrFormat("rack%lld-srv1", (long long)b)});
    }
  }
  spec.algorithm = sampling ? RgAlgorithm::kSampling : RgAlgorithm::kMinimal;
  spec.sampling_rounds = static_cast<size_t>(rounds);
  spec.sampling_bias = 0.1;
  if (Status s = agent.AcquireDependencies(spec); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("DepDB: %zu network dependency records collected\n\n",
              agent.depdb().NetworkCount());

  auto report = agent.AuditStructural(spec);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  size_t clean = 0;
  for (const DeploymentAudit& audit : report->deployments) {
    if (audit.unexpected_rgs == 0) {
      ++clean;
    }
  }
  std::printf("%zu two-way redundancy deployments audited.\n", report->deployments.size());
  std::printf("%zu (%.0f%%) have no unexpected risk group.\n", clean,
              100.0 * static_cast<double>(clean) / static_cast<double>(report->deployments.size()));
  std::printf("A random rack choice avoids correlated failures with probability %.0f%%;\n"
              "the INDaaS report makes it a certainty.\n\n",
              100.0 * static_cast<double>(clean) / static_cast<double>(report->deployments.size()));
  if (report->deployments.size() > 5) {
    report->deployments.resize(5);  // Show the head of the ranking only.
  }
  std::printf("Top-ranked deployments:\n%s",
              RenderSiaReport(*report, /*top_rgs_per_deployment=*/2).c_str());
  return 0;
}
