// Hardware-dependency audit of an IaaS cloud (the paper's second case study,
// §6.2.2 / Fig. 6b): OpenStack-style placement silently co-locates two
// redundant Riak VMs; the audit exposes the shared server as a size-1 risk
// group, and an anti-affinity re-deployment fixes it.
//
//   vm_placement_audit [--seed=1]

#include <cstdio>

#include "src/acquire/lshw_sim.h"
#include "src/acquire/nsdminer_sim.h"
#include "src/sia/builder.h"
#include "src/sia/ranking.h"
#include "src/sia/risk_groups.h"
#include "src/topology/case_study.h"
#include "src/topology/placement.h"
#include "src/util/flags.h"
#include "src/util/strings.h"

using namespace indaas;

namespace {

// Runs placement + acquisition + audit for one policy; returns the minimal
// RGs of the resulting {VM7, VM8} Riak deployment.
Result<std::vector<std::string>> AuditPlacement(const DataCenterTopology& topo,
                                                PlacementPolicy policy, uint64_t seed,
                                                std::string* where) {
  std::vector<PlacementHost> hosts = {{"Server1", 2}, {"Server2", 10}, {"Server3", 2},
                                      {"Server4", 2}};
  std::vector<VmRequest> vms;
  for (int i = 1; i <= 6; ++i) {
    vms.push_back({StrFormat("VM%d", i), ""});
  }
  vms.push_back({"VM7", "riak"});
  vms.push_back({"VM8", "riak"});
  Rng rng(seed);
  INDAAS_ASSIGN_OR_RETURN(PlacementResult placement, PlaceVms(vms, hosts, policy, rng));
  *where = StrFormat("VM7 -> %s, VM8 -> %s", hosts[placement.assignment[6]].name.c_str(),
                     hosts[placement.assignment[7]].name.c_str());

  LshwSim lshw;
  NsdMinerSim miner(2);
  Rng traffic_rng(seed + 1);
  DepDb db;
  for (size_t v = 6; v < 8; ++v) {
    const std::string& vm = vms[v].name;
    const std::string& host = hosts[placement.assignment[v]].name;
    lshw.RegisterMachine(vm, LshwSim::RandomSpec(traffic_rng));
    lshw.RegisterSharedComponent(vm, "Host", host);
    INDAAS_ASSIGN_OR_RETURN(std::vector<FlowRecord> flows,
                            GenerateTraffic(topo, host, "Internet", 50, traffic_rng));
    for (FlowRecord flow : flows) {
      flow.src = vm;
      miner.IngestFlow(flow);
    }
  }
  INDAAS_RETURN_IF_ERROR(RunAcquisition({&lshw, &miner}, {"VM7", "VM8"}, db));

  INDAAS_ASSIGN_OR_RETURN(FaultGraph graph, BuildDeploymentFaultGraph(db, {"VM7", "VM8"}));
  INDAAS_ASSIGN_OR_RETURN(MinimalRgResult groups, ComputeMinimalRiskGroups(graph));
  std::vector<std::string> lines;
  for (const auto& ranked : RankBySize(groups.groups)) {
    std::vector<std::string> names;
    for (NodeId id : ranked.group) {
      names.push_back(graph.node(id).name);
    }
    lines.push_back("{" + Join(names, " & ") + "}");
  }
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t seed = 1;
  FlagSet flags;
  flags.AddInt("seed", &seed, "placement RNG seed");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto topo = BuildLabCloud();
  if (!topo.ok()) {
    std::fprintf(stderr, "%s\n", topo.status().ToString().c_str());
    return 1;
  }
  std::printf("Lab IaaS cloud: 4 servers, 2 ToR switches, 2 core routers.\n");
  std::printf("Deploying Riak redundantly on VM7 and VM8...\n\n");

  for (PlacementPolicy policy :
       {PlacementPolicy::kLeastLoadedRandom, PlacementPolicy::kAntiAffinity}) {
    std::string where;
    auto groups = AuditPlacement(*topo, policy, static_cast<uint64_t>(seed), &where);
    if (!groups.ok()) {
      std::fprintf(stderr, "%s\n", groups.status().ToString().c_str());
      return 1;
    }
    std::printf("Placement policy: %s\n", PlacementPolicyName(policy));
    std::printf("  %s\n", where.c_str());
    std::printf("  Top risk groups:\n");
    size_t shown = 0;
    for (const std::string& group : *groups) {
      std::printf("    %s\n", group.c_str());
      if (++shown == 4) {
        break;
      }
    }
    std::printf("\n");
  }
  std::printf(
      "Under the OpenStack-like policy both replicas land on Server2, whose\n"
      "failure alone would take Riak down — exactly the unexpected risk group\n"
      "the paper's case study caught. The anti-affinity re-deployment removes\n"
      "the single-server RG.\n");
  return 0;
}
