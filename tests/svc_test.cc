// Tests for the service layer: RPC payload codecs, the networked audit
// server/client end-to-end on loopback, and the socket-backed P-SOP ring
// (including its failure semantics).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "src/deps/depdb.h"
#include "src/net/frame.h"
#include "src/net/socket.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/propagate.h"
#include "src/obs/trace.h"
#include "src/pia/psop.h"
#include "src/svc/client.h"
#include "src/svc/mux_client.h"
#include "src/svc/pia_peer.h"
#include "src/svc/proto.h"
#include "src/svc/server.h"
#include "src/util/timer.h"

namespace indaas {
namespace svc {
namespace {

// Small but structurally interesting DepDB shared by the server tests.
std::string TestDepDbText() {
  DepDb db;
  db.Add(NetworkDependency{"S1", "Internet", {"ToR1", "Core1"}});
  db.Add(NetworkDependency{"S2", "Internet", {"ToR1", "Core1"}});
  db.Add(NetworkDependency{"S3", "Internet", {"ToR2", "Core1"}});
  db.Add(HardwareDependency{"S1", "Disk", "SED900"});
  db.Add(HardwareDependency{"S2", "Disk", "SED900"});
  db.Add(HardwareDependency{"S3", "Disk", "WD200"});
  db.Add(SoftwareDependency{"riak", "S1", {"libc6=2.13"}});
  db.Add(SoftwareDependency{"riak", "S2", {"libc6=2.13"}});
  db.Add(SoftwareDependency{"riak", "S3", {"libc6=2.14"}});
  return db.ExportText();
}

AuditSpecification TestSpec() {
  AuditSpecification spec;
  spec.candidate_deployments = {{"S1", "S2"}, {"S1", "S3"}};
  return spec;
}

// --- Payload codecs ---

TEST(ProtoTest, ErrorReplyRoundTripsEveryCode) {
  for (StatusCode code : {StatusCode::kInvalidArgument, StatusCode::kNotFound,
                          StatusCode::kInternal, StatusCode::kParseError,
                          StatusCode::kProtocolError, StatusCode::kDeadlineExceeded,
                          StatusCode::kUnavailable}) {
    Status original(code, "something broke");
    Status decoded = DecodeErrorReply(EncodeErrorReply(original));
    EXPECT_EQ(decoded.code(), code);
    EXPECT_EQ(decoded.message(), "remote: something broke");
  }
}

TEST(ProtoTest, ImportAckRoundTrip) {
  ImportAck ack;
  ack.network = 12;
  ack.hardware = 34;
  ack.software = 56;
  auto decoded = DecodeImportAck(EncodeImportAck(ack));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->network, 12u);
  EXPECT_EQ(decoded->hardware, 34u);
  EXPECT_EQ(decoded->software, 56u);
}

TEST(ProtoTest, AuditSpecificationRoundTripAllFields) {
  AuditSpecification spec;
  spec.candidate_deployments = {{"S1", "S2"}, {"S3"}};
  spec.required_servers = 2;
  spec.include_network = false;
  spec.include_hardware = true;
  spec.include_software = false;
  spec.software_of_interest = {"riak", "nginx"};
  spec.algorithm = RgAlgorithm::kSampling;
  spec.metric = RankingMetric::kFailureProbability;
  spec.sampling_rounds = 777;
  spec.sampling_bias = 0.125;
  spec.seed = 99;
  spec.threads = 3;
  spec.parallel_deployments = 2;
  spec.score_top_n = 5;
  auto decoded = DecodeAuditSpecification(EncodeAuditSpecification(spec));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->candidate_deployments, spec.candidate_deployments);
  EXPECT_EQ(decoded->required_servers, spec.required_servers);
  EXPECT_EQ(decoded->include_network, spec.include_network);
  EXPECT_EQ(decoded->include_hardware, spec.include_hardware);
  EXPECT_EQ(decoded->include_software, spec.include_software);
  EXPECT_EQ(decoded->software_of_interest, spec.software_of_interest);
  EXPECT_EQ(decoded->algorithm, spec.algorithm);
  EXPECT_EQ(decoded->metric, spec.metric);
  EXPECT_EQ(decoded->sampling_rounds, spec.sampling_rounds);
  EXPECT_EQ(decoded->sampling_bias, spec.sampling_bias);
  EXPECT_EQ(decoded->seed, spec.seed);
  EXPECT_EQ(decoded->threads, spec.threads);
  EXPECT_EQ(decoded->parallel_deployments, spec.parallel_deployments);
  EXPECT_EQ(decoded->score_top_n, spec.score_top_n);
}

TEST(ProtoTest, SiaAuditReportRoundTrip) {
  SiaAuditReport report;
  report.algorithm = RgAlgorithm::kSampling;
  report.metric = RankingMetric::kFailureProbability;
  DeploymentAudit audit;
  audit.servers = {"S1", "S3"};
  audit.ranked_groups.push_back({{"net:core1"}, 1.5});
  audit.ranked_groups.push_back({{"hw:sed900", "pkg:libc6=2.13"}, 2.0});
  audit.independence_score = 3.5;
  audit.unexpected_rgs = 2;
  audit.top_event_prob = 0.015625;
  report.deployments.push_back(audit);
  auto decoded = DecodeSiaAuditReport(EncodeSiaAuditReport(report));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->algorithm, report.algorithm);
  EXPECT_EQ(decoded->metric, report.metric);
  ASSERT_EQ(decoded->deployments.size(), 1u);
  const DeploymentAudit& d = decoded->deployments[0];
  EXPECT_EQ(d.servers, audit.servers);
  ASSERT_EQ(d.ranked_groups.size(), 2u);
  EXPECT_EQ(d.ranked_groups[1].components, audit.ranked_groups[1].components);
  EXPECT_EQ(d.ranked_groups[1].score, 2.0);
  EXPECT_EQ(d.independence_score, 3.5);
  EXPECT_EQ(d.unexpected_rgs, 2u);
  EXPECT_EQ(d.top_event_prob, 0.015625);
}

TEST(ProtoTest, PiaRequestRoundTrip) {
  PiaRequest request;
  request.providers = {{"CloudA", {"net:tor1", "hw:x"}}, {"CloudB", {"net:tor2"}}};
  request.options.method = PiaMethod::kPsopMinHash;
  request.options.minhash_m = 64;
  request.options.psop.group_bits = 768;
  request.options.psop.seed = 17;
  request.options.min_redundancy = 2;
  request.options.max_redundancy = 2;
  request.options.parallel_deployments = 4;
  auto decoded = DecodePiaRequest(EncodePiaRequest(request));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->providers.size(), 2u);
  EXPECT_EQ(decoded->providers[0].name, "CloudA");
  EXPECT_EQ(decoded->providers[0].components, request.providers[0].components);
  EXPECT_EQ(decoded->options.method, PiaMethod::kPsopMinHash);
  EXPECT_EQ(decoded->options.minhash_m, 64u);
  EXPECT_EQ(decoded->options.psop.group_bits, 768u);
  EXPECT_EQ(decoded->options.psop.seed, 17u);
  EXPECT_EQ(decoded->options.max_redundancy, 2u);
  EXPECT_EQ(decoded->options.parallel_deployments, 4u);
}

TEST(ProtoTest, PiaRequestCarriesSketchGeometry) {
  PiaRequest request;
  request.providers = {{"CloudA", {"c1"}}, {"CloudB", {"c2"}}};
  request.options.method = PiaMethod::kSketch;
  request.options.sketch_k = 512;
  auto decoded = DecodePiaRequest(EncodePiaRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->options.method, PiaMethod::kSketch);
  EXPECT_EQ(decoded->options.sketch_k, 512u);
  // sketch_k = 0 never appears on the wire (the default is 256 and the CLI
  // validates the range), so a zero there is a forged payload.
  std::string forged = EncodePiaRequest(request);
  for (size_t i = forged.size() - 4; i < forged.size(); ++i) {
    forged[i] = 0;
  }
  EXPECT_FALSE(DecodePiaRequest(forged).ok());
}

TEST(ProtoTest, PsopHelloRoundTrip) {
  PsopHello hello;
  hello.ring_size = 3;
  hello.sender_index = 2;
  hello.group_bits = 768;
  hello.hash_algorithm = 1;
  auto decoded = DecodePsopHello(EncodePsopHello(hello));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->ring_size, 3u);
  EXPECT_EQ(decoded->sender_index, 2u);
  EXPECT_EQ(decoded->group_bits, 768u);
  EXPECT_EQ(decoded->hash_algorithm, 1);
}

TEST(ProtoTest, PsopDatasetRoundTrip) {
  PsopDataset dataset;
  dataset.origin = 1;
  dataset.element_bytes = 8;
  dataset.elements = {BigUint(0x1122334455667788ull), BigUint(7), BigUint(0)};
  auto decoded = DecodePsopDataset(EncodePsopDataset(dataset));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->origin, 1u);
  EXPECT_EQ(decoded->element_bytes, 8u);
  ASSERT_EQ(decoded->elements.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded->elements[i].ToHex(), dataset.elements[i].ToHex()) << i;
  }
}

TEST(ProtoTest, EveryTruncationRejectedCleanly) {
  // Property sweep: every proper prefix of a valid payload must decode to an
  // error (never crash, never succeed).
  PiaRequest request;
  request.providers = {{"CloudA", {"c1", "c2"}}, {"CloudB", {"c3"}}};
  const std::string full = EncodePiaRequest(request);
  // One cut is NOT an error: the trailing sketch_k field is optional for
  // wire compatibility, so removing exactly that field yields a valid
  // legacy payload that decodes with the default geometry.
  const size_t legacy_cut = full.size() - sizeof(uint32_t);
  for (size_t cut = 0; cut < full.size(); ++cut) {
    if (cut == legacy_cut) {
      auto legacy = DecodePiaRequest(full.substr(0, cut));
      ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
      EXPECT_EQ(legacy->options.sketch_k, 256u);
      continue;
    }
    EXPECT_FALSE(DecodePiaRequest(full.substr(0, cut)).ok()) << "cut " << cut;
  }
  const std::string spec_bytes = EncodeAuditSpecification(TestSpec());
  for (size_t cut = 0; cut < spec_bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeAuditSpecification(spec_bytes.substr(0, cut)).ok()) << "cut " << cut;
  }
}

TEST(ProtoTest, TrailingGarbageRejected) {
  EXPECT_FALSE(DecodeImportAck(EncodeImportAck(ImportAck{}) + "x").ok());
  EXPECT_FALSE(DecodePsopHello(EncodePsopHello(PsopHello{}) + "x").ok());
  EXPECT_FALSE(
      DecodeAuditSpecification(EncodeAuditSpecification(TestSpec()) + "x").ok());
}

TEST(ProtoTest, PsopDatasetRejectsBadElementWidth) {
  PsopDataset dataset;
  dataset.origin = 0;
  dataset.element_bytes = 0;  // zero width is nonsense
  EXPECT_FALSE(DecodePsopDataset(EncodePsopDataset(dataset)).ok());
}

TEST(ProtoTest, PsopSketchRoundTrip) {
  PsopSketch sketch;
  sketch.origin = 2;
  sketch.registers = {0u, 1u, 0xDEADBEEFu, UINT32_MAX};
  auto decoded = DecodePsopSketch(EncodePsopSketch(sketch));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->origin, 2u);
  EXPECT_EQ(decoded->registers, sketch.registers);
  // Same hygiene as the other ring payloads: every proper prefix and any
  // trailing garbage must be rejected.
  const std::string full = EncodePsopSketch(sketch);
  for (size_t cut = 0; cut < full.size(); ++cut) {
    EXPECT_FALSE(DecodePsopSketch(full.substr(0, cut)).ok()) << "cut " << cut;
  }
  EXPECT_FALSE(DecodePsopSketch(full + "x").ok());
}

TEST(ProtoTest, PsopSketchRejectsHostileCounts) {
  // A sketch has at least one register, and the frame extension carries k
  // as u16 — zero and anything above UINT16_MAX are rejected by the count
  // check before any allocation happens.
  PsopSketch empty;
  empty.origin = 0;
  EXPECT_FALSE(DecodePsopSketch(EncodePsopSketch(empty)).ok());
  PsopSketch small;
  small.origin = 0;
  small.registers = {1, 2, 3};
  std::string forged = EncodePsopSketch(small);
  for (size_t i = 4; i < 8; ++i) {
    forged[i] = static_cast<char>(0xFF);  // register count = UINT32_MAX
  }
  EXPECT_FALSE(DecodePsopSketch(forged).ok());
}

// Populated stats payload shared by the codec tests below.
ServerStats TestServerStats() {
  ServerStats stats;
  stats.uptime_us = 123456789;
  stats.depdb_records = 42;
  stats.metrics.counters = {{"net.bytes_sent", 1024}, {"svc.rpcs.Ping", 3}};
  stats.metrics.gauges = {{"svc.connections_active", 2, 5}};
  obs::Histogram::Snapshot h;
  h.name = "svc.rpc_seconds.Ping";
  h.bounds = {0.001, 0.01, 0.1};
  h.counts = {1, 2, 3, 0};  // bounds + 1: trailing overflow bucket
  h.count = 6;
  h.sum = 0.25;
  stats.metrics.histograms = {h};
  return stats;
}

TEST(ProtoTest, ServerStatsRoundTrip) {
  const ServerStats stats = TestServerStats();
  auto decoded = DecodeServerStats(EncodeServerStats(stats));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->uptime_us, stats.uptime_us);
  EXPECT_EQ(decoded->depdb_records, stats.depdb_records);
  ASSERT_EQ(decoded->metrics.counters.size(), 2u);
  EXPECT_EQ(decoded->metrics.counters[0].name, "net.bytes_sent");
  EXPECT_EQ(decoded->metrics.counters[0].value, 1024u);
  ASSERT_EQ(decoded->metrics.gauges.size(), 1u);
  EXPECT_EQ(decoded->metrics.gauges[0].name, "svc.connections_active");
  EXPECT_EQ(decoded->metrics.gauges[0].value, 2);
  EXPECT_EQ(decoded->metrics.gauges[0].max, 5);
  ASSERT_EQ(decoded->metrics.histograms.size(), 1u);
  const obs::Histogram::Snapshot& h = decoded->metrics.histograms[0];
  EXPECT_EQ(h.name, "svc.rpc_seconds.Ping");
  EXPECT_EQ(h.bounds, stats.metrics.histograms[0].bounds);
  EXPECT_EQ(h.counts, stats.metrics.histograms[0].counts);
  EXPECT_EQ(h.count, 6u);
  EXPECT_EQ(h.sum, 0.25);
}

TEST(ProtoTest, ServerStatsTruncationAndHostileCountsRejected) {
  const std::string full = EncodeServerStats(TestServerStats());
  for (size_t cut = 0; cut < full.size(); ++cut) {
    EXPECT_FALSE(DecodeServerStats(full.substr(0, cut)).ok()) << "cut " << cut;
  }
  EXPECT_FALSE(DecodeServerStats(full + "x").ok());
  // A forged counter count (bytes 16..19, right after uptime + depdb) must
  // be rejected by the entry limit before any allocation happens.
  std::string forged = full;
  for (size_t i = 16; i < 20; ++i) {
    forged[i] = static_cast<char>(0xFF);
  }
  EXPECT_FALSE(DecodeServerStats(forged).ok());
}

TEST(ProtoTest, HealthStatusRoundTrip) {
  for (bool serving : {true, false}) {
    HealthStatus status;
    status.serving = serving;
    status.uptime_us = 987654;
    auto decoded = DecodeHealthStatus(EncodeHealthStatus(status));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->serving, serving);
    EXPECT_EQ(decoded->uptime_us, 987654u);
  }
  const std::string full = EncodeHealthStatus(HealthStatus{});
  for (size_t cut = 0; cut < full.size(); ++cut) {
    EXPECT_FALSE(DecodeHealthStatus(full.substr(0, cut)).ok()) << "cut " << cut;
  }
  EXPECT_FALSE(DecodeHealthStatus(full + "x").ok());
}

TEST(ProtoTest, DebugInfoRoundTrip) {
  DebugInfo info;
  info.uptime_us = 123456789;
  info.mode = 1;
  info.reactor_shards = 4;
  info.inflight_global = 17;
  DebugShard shard;
  shard.index = 2;
  shard.connections = 5;
  shard.inflight = 3;
  shard.has_listener = true;
  info.shards.push_back(shard);
  DebugConnection conn;
  conn.id = 42;
  conn.shard = 2;
  conn.age_us = 1000000;
  conn.in_buffer_bytes = 12;
  conn.write_buffer_bytes = 34;
  conn.inflight = 2;
  conn.oldest_pending_us = 2500;
  info.connections.push_back(conn);
  DebugFlightEvent event;
  event.t_us = 99;
  event.trace_id = 0xABCDu;
  event.a = 7;
  event.b = 8;
  event.tid = 11;
  event.type = 3;
  event.code = 6;
  info.events.push_back(event);
  DebugSlowRpc slow;
  slow.trace_id = 0x1234u;
  slow.request_id = 9;
  slow.rpc_type = 5;
  slow.outcome = 2;
  slow.ok = false;
  slow.conn_id = 42;
  slow.end_us = 777;
  slow.total_s = 0.25;
  for (int i = 0; i < 6; ++i) slow.stage_s[i] = 0.01 * (i + 1);
  info.slowest.push_back(slow);

  const std::string full = EncodeDebugInfo(info);
  auto decoded = DecodeDebugInfo(full);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->uptime_us, info.uptime_us);
  EXPECT_EQ(decoded->mode, info.mode);
  EXPECT_EQ(decoded->reactor_shards, info.reactor_shards);
  EXPECT_EQ(decoded->inflight_global, info.inflight_global);
  ASSERT_EQ(decoded->shards.size(), 1u);
  EXPECT_EQ(decoded->shards[0].index, shard.index);
  EXPECT_EQ(decoded->shards[0].connections, shard.connections);
  EXPECT_EQ(decoded->shards[0].inflight, shard.inflight);
  EXPECT_EQ(decoded->shards[0].has_listener, shard.has_listener);
  ASSERT_EQ(decoded->connections.size(), 1u);
  EXPECT_EQ(decoded->connections[0].id, conn.id);
  EXPECT_EQ(decoded->connections[0].shard, conn.shard);
  EXPECT_EQ(decoded->connections[0].age_us, conn.age_us);
  EXPECT_EQ(decoded->connections[0].in_buffer_bytes, conn.in_buffer_bytes);
  EXPECT_EQ(decoded->connections[0].write_buffer_bytes, conn.write_buffer_bytes);
  EXPECT_EQ(decoded->connections[0].inflight, conn.inflight);
  EXPECT_EQ(decoded->connections[0].oldest_pending_us, conn.oldest_pending_us);
  ASSERT_EQ(decoded->events.size(), 1u);
  EXPECT_EQ(decoded->events[0].t_us, event.t_us);
  EXPECT_EQ(decoded->events[0].trace_id, event.trace_id);
  EXPECT_EQ(decoded->events[0].a, event.a);
  EXPECT_EQ(decoded->events[0].b, event.b);
  EXPECT_EQ(decoded->events[0].tid, event.tid);
  EXPECT_EQ(decoded->events[0].type, event.type);
  EXPECT_EQ(decoded->events[0].code, event.code);
  ASSERT_EQ(decoded->slowest.size(), 1u);
  EXPECT_EQ(decoded->slowest[0].trace_id, slow.trace_id);
  EXPECT_EQ(decoded->slowest[0].request_id, slow.request_id);
  EXPECT_EQ(decoded->slowest[0].rpc_type, slow.rpc_type);
  EXPECT_EQ(decoded->slowest[0].outcome, slow.outcome);
  EXPECT_EQ(decoded->slowest[0].ok, slow.ok);
  EXPECT_EQ(decoded->slowest[0].conn_id, slow.conn_id);
  EXPECT_EQ(decoded->slowest[0].end_us, slow.end_us);
  EXPECT_DOUBLE_EQ(decoded->slowest[0].total_s, slow.total_s);
  for (int i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(decoded->slowest[0].stage_s[i], slow.stage_s[i]) << "stage " << i;
  }

  for (size_t cut = 0; cut < full.size(); ++cut) {
    EXPECT_FALSE(DecodeDebugInfo(full.substr(0, cut)).ok()) << "cut " << cut;
  }
  EXPECT_FALSE(DecodeDebugInfo(full + "x").ok());
}

TEST(ProtoTest, ProfileRequestRoundTripAndCaps) {
  ProfileRequest request;
  request.hz = 250;
  request.seconds = 7;
  request.alloc = false;
  const std::string full = EncodeProfileRequest(request);
  auto decoded = DecodeProfileRequest(full);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->hz, request.hz);
  EXPECT_EQ(decoded->seconds, request.seconds);
  EXPECT_EQ(decoded->alloc, request.alloc);

  // A hostile client must not be able to demand a SIGPROF storm or an
  // hour-long capture: out-of-range values die at decode, before any timer
  // is armed.
  ProfileRequest hostile;
  hostile.hz = 0;
  EXPECT_FALSE(DecodeProfileRequest(EncodeProfileRequest(hostile)).ok());
  hostile.hz = kMaxProfileHz + 1;
  EXPECT_FALSE(DecodeProfileRequest(EncodeProfileRequest(hostile)).ok());
  hostile.hz = 99;
  hostile.seconds = 0;
  EXPECT_FALSE(DecodeProfileRequest(EncodeProfileRequest(hostile)).ok());
  hostile.seconds = kMaxProfileSeconds + 1;
  EXPECT_FALSE(DecodeProfileRequest(EncodeProfileRequest(hostile)).ok());

  for (size_t cut = 0; cut < full.size(); ++cut) {
    EXPECT_FALSE(DecodeProfileRequest(full.substr(0, cut)).ok()) << "cut " << cut;
  }
  EXPECT_FALSE(DecodeProfileRequest(full + "x").ok());
}

TEST(ProtoTest, ProfileReplyRoundTrip) {
  ProfileReply reply;
  reply.dump = "# indaas-profile v1\ncpu 1 0 7 1 0xabc\n";
  const std::string full = EncodeProfileReply(reply);
  auto decoded = DecodeProfileReply(full);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->dump, reply.dump);
  for (size_t cut = 0; cut < full.size(); ++cut) {
    EXPECT_FALSE(DecodeProfileReply(full.substr(0, cut)).ok()) << "cut " << cut;
  }
  EXPECT_FALSE(DecodeProfileReply(full + "x").ok());
}

// --- AuditServer / AuditClient end-to-end (loopback) ---

TEST(AuditServerTest, PingImportAuditRoundTrip) {
  AuditServerOptions options;
  options.worker_threads = 2;
  AuditServer server(options);
  ASSERT_TRUE(server.Start().ok());

  auto client = AuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()});
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client->Ping().ok());

  const std::string depdb_text = TestDepDbText();
  auto ack = client->ImportDepDb(depdb_text);
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack->network, 3u);
  EXPECT_EQ(ack->hardware, 3u);
  EXPECT_EQ(ack->software, 3u);

  AuditSpecification spec = TestSpec();
  auto remote = client->AuditStructural(spec);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();

  // The remote report must match a local agent auditing the same DepDB.
  AuditingAgent local;
  ASSERT_TRUE(local.depdb().ImportText(depdb_text).ok());
  auto expected = local.AuditStructural(spec);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(remote->deployments.size(), expected->deployments.size());
  for (size_t i = 0; i < remote->deployments.size(); ++i) {
    EXPECT_EQ(remote->deployments[i].servers, expected->deployments[i].servers);
    EXPECT_EQ(remote->deployments[i].independence_score,
              expected->deployments[i].independence_score);
    EXPECT_EQ(remote->deployments[i].unexpected_rgs, expected->deployments[i].unexpected_rgs);
    EXPECT_EQ(remote->deployments[i].ranked_groups.size(),
              expected->deployments[i].ranked_groups.size());
  }
  server.Stop();
}

TEST(AuditServerTest, RemotePiaAudit) {
  AuditServer server;
  ASSERT_TRUE(server.Start().ok());
  auto client = AuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()});
  ASSERT_TRUE(client.ok());
  std::vector<CloudProvider> providers = {{"CloudA", {"net:tor1", "net:core1", "hw:x"}},
                                          {"CloudB", {"net:tor2", "net:core1", "hw:x"}},
                                          {"CloudC", {"net:tor3", "net:core2", "hw:y"}}};
  PiaAuditOptions options;
  options.psop.group_bits = 768;
  options.max_redundancy = 2;
  auto remote = client->AuditPia(providers, options);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  AuditingAgent local;
  auto expected = local.AuditPrivate(providers, options);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(remote->rankings.size(), expected->rankings.size());
  ASSERT_EQ(remote->rankings[0].size(), expected->rankings[0].size());
  for (size_t i = 0; i < remote->rankings[0].size(); ++i) {
    EXPECT_EQ(remote->rankings[0][i].providers, expected->rankings[0][i].providers);
    EXPECT_EQ(remote->rankings[0][i].jaccard, expected->rankings[0][i].jaccard);
  }
  server.Stop();
}

TEST(AuditServerTest, BadRequestGetsErrorReplyAndConnectionSurvives) {
  AuditServer server;
  ASSERT_TRUE(server.Start().ok());
  auto client = AuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()});
  ASSERT_TRUE(client.ok());
  AuditSpecification empty_spec;  // no deployments: the agent must reject it
  auto report = client->AuditStructural(empty_spec);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("remote: "), std::string::npos);
  // The error was payload-level, not framing: the connection keeps working.
  EXPECT_TRUE(client->Ping().ok());
  server.Stop();
}

TEST(AuditServerTest, ConcurrentClients) {
  AuditServerOptions options;
  options.worker_threads = 4;
  AuditServer server(options);
  ASSERT_TRUE(server.Start().ok());
  {
    auto seed_client = AuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()});
    ASSERT_TRUE(seed_client.ok());
    ASSERT_TRUE(seed_client->ImportDepDb(TestDepDbText()).ok());
  }
  constexpr int kClients = 6;
  constexpr int kRequestsPerClient = 5;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = AuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()});
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int r = 0; r < kRequestsPerClient; ++r) {
        if (c % 2 == 0) {
          // Even clients audit (shared lock)...
          auto report = client->AuditStructural(TestSpec());
          if (!report.ok() || report->deployments.size() != 2) {
            ++failures;
          }
        } else {
          // ...odd clients re-import (exclusive lock), forcing both lock
          // modes to interleave.
          auto ack = client->ImportDepDb(TestDepDbText());
          if (!ack.ok()) {
            ++failures;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  server.Stop();
}

// --- Stats / health over loopback ---

// Finds a counter by name; returns 0 when absent.
uint64_t CounterValue(const obs::MetricsSnapshot& snapshot, const std::string& name) {
  for (const auto& counter : snapshot.counters) {
    if (counter.name == name) {
      return counter.value;
    }
  }
  return 0;
}

const obs::Histogram::Snapshot* FindHistogram(const obs::MetricsSnapshot& snapshot,
                                              const std::string& name) {
  for (const auto& histogram : snapshot.histograms) {
    if (histogram.name == name) {
      return &histogram;
    }
  }
  return nullptr;
}

TEST(AuditServerTest, StatsAndHealthEndToEnd) {
  AuditServer server;
  ASSERT_TRUE(server.Start().ok());
  auto client = AuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()});
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto health = client->Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_TRUE(health->serving);

  ASSERT_TRUE(client->ImportDepDb(TestDepDbText()).ok());
  ASSERT_TRUE(client->AuditStructural(TestSpec()).ok());
  auto first = client->GetStats();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->depdb_records, 9u);
  EXPECT_GT(first->uptime_us, 0u);
  // The registry snapshot carries the transport byte meters and the per-RPC
  // latency histograms the server maintains.
  EXPECT_GT(CounterValue(first->metrics, "net.bytes_sent"), 0u);
  EXPECT_GT(CounterValue(first->metrics, "net.bytes_recv"), 0u);
  EXPECT_GE(CounterValue(first->metrics, "svc.rpcs.AuditRequest"), 1u);
  const obs::Histogram::Snapshot* audit_seconds =
      FindHistogram(first->metrics, "svc.rpc_seconds.AuditRequest");
  ASSERT_NE(audit_seconds, nullptr);
  EXPECT_GE(audit_seconds->count, 1u);
  EXPECT_GT(audit_seconds->sum, 0.0);
  // The degraded-mode surface is pre-registered at Start(): a scrape of a
  // healthy server reports explicit zeros, not absent series, so dashboards
  // can alert on rate() from the first sample.
  EXPECT_TRUE(std::any_of(first->metrics.counters.begin(), first->metrics.counters.end(),
                          [](const auto& c) { return c.name == "svc.degraded_audits"; }));
  EXPECT_TRUE(std::any_of(first->metrics.gauges.begin(), first->metrics.gauges.end(),
                          [](const auto& g) { return g.name == "svc.adaptive_shed_level"; }));
  // Likewise the profiler surface: obs.profile.* counters report explicit
  // zeros from Start(), whether or not a profile window ever runs.
  for (const char* name :
       {"obs.profile.samples", "obs.profile.dropped", "obs.profile.truncated_stacks"}) {
    EXPECT_TRUE(std::any_of(first->metrics.counters.begin(), first->metrics.counters.end(),
                            [name](const auto& c) { return c.name == name; }))
        << name;
  }

  // A second audit strictly advances the RPC counter and never decreases any
  // counter the first snapshot reported.
  ASSERT_TRUE(client->AuditStructural(TestSpec()).ok());
  auto second = client->GetStats();
  ASSERT_TRUE(second.ok());
  EXPECT_GE(second->uptime_us, first->uptime_us);
  EXPECT_GT(CounterValue(second->metrics, "svc.rpcs.AuditRequest"),
            CounterValue(first->metrics, "svc.rpcs.AuditRequest"));
  for (const auto& counter : first->metrics.counters) {
    EXPECT_GE(CounterValue(second->metrics, counter.name), counter.value) << counter.name;
  }
  const obs::Histogram::Snapshot* second_seconds =
      FindHistogram(second->metrics, "svc.rpc_seconds.AuditRequest");
  ASSERT_NE(second_seconds, nullptr);
  EXPECT_GT(second_seconds->count, audit_seconds->count);

  // Draining: the health probe flips to not-serving while stats (and other
  // RPCs) keep answering, exactly what a load balancer needs for shutdown.
  server.set_serving(false);
  auto draining = client->Health();
  ASSERT_TRUE(draining.ok());
  EXPECT_FALSE(draining->serving);
  EXPECT_TRUE(client->GetStats().ok());
  server.Stop();
}

TEST(AuditServerTest, TracePropagatesClientToServer) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Reset();
  recorder.SetEnabled(true);
  AuditServer server;
  ASSERT_TRUE(server.Start().ok());
  const uint64_t trace_id = 0xABCDEF0123456789ULL;
  {
    // The ambient context seeds the client's trace id at Connect.
    obs::ScopedTraceContext ambient(obs::TraceContext{trace_id, 0});
    auto client = AuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()});
    ASSERT_TRUE(client.ok());
    EXPECT_EQ(client->trace_id(), trace_id);
    ASSERT_TRUE(client->Ping().ok());
  }
  server.Stop();
  recorder.SetEnabled(false);

  // The client's RPC span and the server's handler span must share the trace
  // id, with the server span's remote parent naming the client span.
  const std::vector<obs::SpanRecord> spans = recorder.Snapshot();
  const obs::SpanRecord* client_span = nullptr;
  const obs::SpanRecord* server_span = nullptr;
  for (const obs::SpanRecord& span : spans) {
    if (span.name == "svc.client.rpc" && span.trace_id == trace_id) {
      client_span = &span;
    }
    if (span.name == "svc.rpc" && span.trace_id == trace_id) {
      server_span = &span;
    }
  }
  ASSERT_NE(client_span, nullptr);
  ASSERT_NE(server_span, nullptr);
  EXPECT_EQ(server_span->remote_parent, obs::WireSpanId(client_span->id));
}

// --- Reactor mode, pipelining, and admission control ---

TEST(AuditServerTest, ThreadedModeStillServes) {
  // The pre-reactor baseline stays a first-class mode (bench_svc_saturation
  // A/Bs against it), so it gets the same end-to-end coverage.
  AuditServerOptions options;
  options.mode = ServerMode::kThreadPerRequest;
  options.worker_threads = 2;
  AuditServer server(options);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.reactor_shards(), 0u);
  auto client = AuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()});
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client->Ping().ok());
  ASSERT_TRUE(client->ImportDepDb(TestDepDbText()).ok());
  auto report = client->AuditStructural(TestSpec());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->deployments.size(), 2u);
  server.Stop();
}

// The reactor finalizes an RPC (tail-sampler offer included) right after its
// reply bytes reach the kernel, so a client can observe the reply a beat
// before the sample lands. Poll briefly instead of asserting instantly.
std::vector<obs::TailSample> WaitForTailSamples(size_t at_least) {
  for (int i = 0; i < 2000; ++i) {
    auto samples = obs::TailSampler::Global().TopSlowest(16);
    if (samples.size() >= at_least) return samples;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return obs::TailSampler::Global().TopSlowest(16);
}

TEST(AuditServerTest, TailSamplerKeepsErroredAndSlowButNotFastRpcs) {
  // Acceptance criterion for the flight-recorder PR: slow/shed/errored RPCs
  // are tail-captured with a per-stage breakdown; fast successes are not.
  {
    AuditServerOptions options;
    options.slow_rpc_threshold_s = 3600.0;  // nothing qualifies as slow
    AuditServer server(options);
    ASSERT_TRUE(server.Start().ok());  // Start() reconfigures (clears) the sampler
    auto client = AuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()});
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->Ping().ok());  // fast + ok: must not be retained
    AuditSpecification empty_spec;  // agent rejects it -> errored RPC
    ASSERT_FALSE(client->AuditStructural(empty_spec).ok());
    auto samples = WaitForTailSamples(1);
    ASSERT_EQ(samples.size(), 1u) << "only the errored RPC should be retained";
    EXPECT_EQ(samples[0].rpc_type, static_cast<uint16_t>(MsgType::kAuditRequest));
    EXPECT_EQ(samples[0].outcome, obs::TailOutcome::kError);
    EXPECT_FALSE(samples[0].ok);
    EXPECT_GT(samples[0].total_s, 0.0);
    EXPECT_GT(samples[0].stages.total(), 0.0) << "stage breakdown must be populated";
    server.Stop();
  }
  {
    AuditServerOptions options;
    options.slow_rpc_threshold_s = 1e-9;  // every finished RPC is "slow"
    AuditServer server(options);
    ASSERT_TRUE(server.Start().ok());
    auto client = AuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()});
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->ImportDepDb(TestDepDbText()).ok());
    ASSERT_TRUE(client->AuditStructural(TestSpec()).ok());
    auto samples = WaitForTailSamples(2);  // ImportDepDb + AuditStructural
    const obs::TailSample* audit = nullptr;
    for (const auto& sample : samples) {
      if (sample.rpc_type == static_cast<uint16_t>(MsgType::kAuditRequest)) audit = &sample;
    }
    ASSERT_NE(audit, nullptr) << "slow-but-ok audit should be tail-captured";
    EXPECT_EQ(audit->outcome, obs::TailOutcome::kSlow);
    EXPECT_TRUE(audit->ok);
    EXPECT_GT(audit->total_s, 0.0);
    // The interesting stages for a pool-dispatched RPC all have signal.
    EXPECT_GT(audit->stages.s[static_cast<int>(obs::RpcStage::kDecode)], 0.0);
    EXPECT_GT(audit->stages.s[static_cast<int>(obs::RpcStage::kCompute)], 0.0);
    EXPECT_GT(audit->stages.total(), 0.0);
    server.Stop();
  }
}

TEST(AuditServerTest, GetDebugInfoReactorEndToEnd) {
  AuditServerOptions options;
  options.reactor_shards = 2;
  AuditServer server(options);
  ASSERT_TRUE(server.Start().ok());
  auto client = AuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()});
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ping().ok());
  auto info = client->GetDebugInfo();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->mode, static_cast<uint8_t>(ServerMode::kReactor));
  EXPECT_EQ(info->reactor_shards, 2u);
  EXPECT_GT(info->uptime_us, 0u);
  ASSERT_EQ(info->shards.size(), 2u);  // one entry per shard, gathered live
  uint64_t listeners = 0;
  for (const auto& shard : info->shards) listeners += shard.has_listener ? 1 : 0;
  EXPECT_GE(listeners, 1u);
  // Our own connection shows up with per-connection introspection. The
  // GetDebugInfo in flight bypasses admission, so its own inflight count
  // is deliberately zero here.
  ASSERT_GE(info->connections.size(), 1u);
  uint64_t shard_connections = 0;
  for (const auto& shard : info->shards) shard_connections += shard.connections;
  EXPECT_EQ(shard_connections, info->connections.size());
  EXPECT_FALSE(info->events.empty()) << "flight recorder should have accept/rpc events";
  server.Stop();
}

TEST(AuditServerTest, GetDebugInfoThreadedMode) {
  AuditServerOptions options;
  options.mode = ServerMode::kThreadPerRequest;
  options.worker_threads = 2;
  AuditServer server(options);
  ASSERT_TRUE(server.Start().ok());
  auto client = AuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()});
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ping().ok());
  auto info = client->GetDebugInfo();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->mode, static_cast<uint8_t>(ServerMode::kThreadPerRequest));
  EXPECT_EQ(info->reactor_shards, 0u);
  // Per-shard / per-connection detail is a reactor feature; the threaded
  // baseline still answers with uptime, events, and tail samples.
  EXPECT_TRUE(info->shards.empty());
  EXPECT_TRUE(info->connections.empty());
  EXPECT_GT(info->uptime_us, 0u);
  EXPECT_FALSE(info->events.empty());
  server.Stop();
}

TEST(AuditServerTest, GetProfileEndToEnd) {
  AuditServerOptions options;
  options.worker_threads = 2;
  AuditServer server(options);
  ASSERT_TRUE(server.Start().ok());
  auto client = AuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()});
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client->ImportDepDb(TestDepDbText()).ok());

  // A second client hammers audits for the duration of the capture so the
  // pool worker not blocked inside GetProfile has CPU-visible work.
  std::atomic<bool> done{false};
  std::thread load([&] {
    auto worker = AuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()});
    ASSERT_TRUE(worker.ok());
    while (!done.load()) {
      ASSERT_TRUE(worker->AuditStructural(TestSpec()).ok());
    }
  });

  ProfileRequest request;
  request.hz = 500;  // short window, so sample densely
  request.seconds = 1;
  request.alloc = true;
  auto reply = client->GetProfile(request);
  done.store(true);
  load.join();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();

  obs::ProfileData data;
  ASSERT_TRUE(obs::ParseProfileDumpText(reply->dump, &data));
  EXPECT_EQ(data.hz, 500u);
  EXPECT_GT(data.end_us, data.start_us);
  EXPECT_NE(data.exe_base, 0u);
  EXPECT_FALSE(data.exe_path.empty());
  // The audit loop kept a registered pool worker busy for the whole second;
  // at 500 Hz a handful of CPU samples is a conservative floor.
  size_t cpu = 0;
  for (const obs::ProfileSample& sample : data.samples) {
    if (!sample.alloc) {
      ++cpu;
      EXPECT_FALSE(sample.frames.empty());
    }
  }
  EXPECT_GE(cpu, 5u);

  // Out-of-range windows die at decode on the server: remote error, not a
  // capture (and kErrorReply unwraps into a non-transport status).
  ProfileRequest hostile;
  hostile.hz = 0;
  EXPECT_FALSE(client->GetProfile(hostile).ok());
  EXPECT_TRUE(client->Ping().ok());  // connection survives the rejection
  server.Stop();
}

TEST(AuditServerTest, ContinuousProfilingServesWindows) {
  // --profile-hz mode: the server owns a continuous session; GetProfile
  // cuts a window out of it (the request's hz is advisory) and Stop() tears
  // the session down so later servers can profile again.
  AuditServerOptions options;
  options.worker_threads = 2;
  options.profile_hz = 200;
  AuditServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(obs::Profiler::Global().running());
  auto client = AuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()});
  ASSERT_TRUE(client.ok());

  ProfileRequest request;
  request.hz = 99;
  request.seconds = 1;
  auto reply = client->GetProfile(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  obs::ProfileData data;
  ASSERT_TRUE(obs::ParseProfileDumpText(reply->dump, &data));
  EXPECT_EQ(data.hz, 200u);  // the continuous session's rate, not the request's

  server.Stop();
  EXPECT_FALSE(obs::Profiler::Global().running());
}

TEST(AuditServerTest, ReactorReportsItsShards) {
  AuditServerOptions options;
  options.reactor_shards = 3;
  AuditServer server(options);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.reactor_shards(), 3u);
  server.Stop();
}

TEST(AuditServerTest, LegacyClientInteropIsByteIdentical) {
  // A pre-pipelining client speaks flags==0 frames; the reactor's reply to
  // such a request must be byte-for-byte what the old server sent — not
  // just semantically equivalent.
  AuditServer server;
  ASSERT_TRUE(server.Start().ok());
  auto socket = net::TcpConnect(net::Endpoint{"127.0.0.1", server.port()}, 2000);
  ASSERT_TRUE(socket.ok());
  ASSERT_TRUE(socket
                  ->SendAll(net::EncodeFrameHeader(static_cast<uint8_t>(MsgType::kPing), 0),
                            2000)
                  .ok());
  std::string reply;
  ASSERT_TRUE(socket->RecvAll(&reply, net::kFrameHeaderBytes, 5000).ok());
  EXPECT_EQ(reply, net::EncodeFrameHeader(static_cast<uint8_t>(MsgType::kPong), 0));
  // Nothing further follows the pong (no surprise extensions).
  std::string extra;
  EXPECT_EQ(socket->RecvAll(&extra, 1, 100).code(), StatusCode::kDeadlineExceeded);
  server.Stop();
}

TEST(MuxClientTest, PipelinedRepliesCompleteOutOfOrder) {
  // A hand-rolled server reads a batch of pipelined requests, then answers
  // them in reverse order, echoing each request's payload and id. The mux
  // client must pair every completion by id — last-issued resolves first.
  auto listener = net::TcpListen(0);
  ASSERT_TRUE(listener.ok());
  auto port = listener->LocalPort();
  ASSERT_TRUE(port.ok());
  constexpr int kCalls = 3;
  std::thread fake_server([&] {
    auto conn = net::TcpAccept(*listener, 5000);
    ASSERT_TRUE(conn.ok());
    std::vector<net::Frame> requests;
    for (int i = 0; i < kCalls; ++i) {
      auto frame = net::ReadFrame(*conn, net::FrameLimits{}, 5000);
      ASSERT_TRUE(frame.ok()) << frame.status().ToString();
      ASSERT_NE(frame->request_id, 0u);
      requests.push_back(std::move(*frame));
    }
    for (int i = kCalls - 1; i >= 0; --i) {
      ASSERT_TRUE(net::WriteFrame(*conn, static_cast<uint8_t>(MsgType::kPong),
                                  requests[i].payload, 2000, {}, requests[i].request_id)
                      .ok());
    }
    // Hold the connection open until the client is done with it.
    std::string eof_probe;
    (void)conn->RecvAll(&eof_probe, 1, 5000);
  });

  MuxClientOptions options;
  options.window = kCalls + 1;
  auto client = MuxAuditClient::Connect(net::Endpoint{"127.0.0.1", *port}, options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  std::mutex mu;
  std::condition_variable cv;
  std::vector<int> completion_order;
  std::vector<std::string> payloads(kCalls);
  for (int i = 0; i < kCalls; ++i) {
    client->AsyncCall(MsgType::kPing, "call-" + std::to_string(i), MsgType::kPong,
                      [&, i](Result<net::Frame> reply) {
                        std::lock_guard<std::mutex> lock(mu);
                        if (reply.ok()) {
                          payloads[i] = reply->payload;
                        }
                        completion_order.push_back(i);
                        cv.notify_one();
                      });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return completion_order.size() == kCalls; }));
    // Pairing is by id: each call got its own payload back even though the
    // server replied in reverse.
    for (int i = 0; i < kCalls; ++i) {
      EXPECT_EQ(payloads[i], "call-" + std::to_string(i)) << i;
    }
    EXPECT_EQ(completion_order, (std::vector<int>{2, 1, 0}));
  }
  client->Shutdown();
  fake_server.join();
}

TEST(MuxClientTest, ManyConcurrentAuditsAgainstReactor) {
  AuditServerOptions options;
  options.worker_threads = 4;
  options.reactor_shards = 2;
  AuditServer server(options);
  ASSERT_TRUE(server.Start().ok());
  MuxClientOptions mux_options;
  mux_options.connections = 2;
  mux_options.window = 64;
  auto client = MuxAuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()}, mux_options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client->ImportDepDb(TestDepDbText()).ok());

  constexpr int kAudits = 100;
  const std::string spec_bytes = EncodeAuditSpecification(TestSpec());
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  int failures = 0;
  for (int i = 0; i < kAudits; ++i) {
    client->AsyncCall(MsgType::kAuditRequest, spec_bytes, MsgType::kAuditReport,
                      [&](Result<net::Frame> reply) {
                        bool ok = reply.ok();
                        if (ok) {
                          auto report = DecodeSiaAuditReport(reply->payload);
                          ok = report.ok() && report->deployments.size() == 2;
                        }
                        std::lock_guard<std::mutex> lock(mu);
                        if (!ok) {
                          ++failures;
                        }
                        ++done;
                        cv.notify_one();
                      });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(
        cv.wait_for(lock, std::chrono::seconds(30), [&] { return done == kAudits; }));
  }
  EXPECT_EQ(failures, 0);
  client->Shutdown();
  server.Stop();
}

TEST(MuxClientTest, StalePooledConnectionRevivedAfterServerSideClose) {
  // A pooled connection the server closed while the client sat idle must
  // not poison the slot: the next call gets a fresh socket transparently
  // and svc.client.mux_reconnects records the revival.
  auto listener = net::TcpListen(0);
  ASSERT_TRUE(listener.ok());
  auto port = listener->LocalPort();
  ASSERT_TRUE(port.ok());
  std::thread fake_server([&] {
    {
      // First connection: answer one ping, then hang up mid-idle.
      auto conn = net::TcpAccept(*listener, 5000);
      ASSERT_TRUE(conn.ok());
      auto frame = net::ReadFrame(*conn, net::FrameLimits{}, 5000);
      ASSERT_TRUE(frame.ok()) << frame.status().ToString();
      ASSERT_TRUE(net::WriteFrame(*conn, static_cast<uint8_t>(MsgType::kPong),
                                  frame->payload, 2000, {}, frame->request_id)
                      .ok());
    }
    // The client must come back on a brand-new connection for call two.
    auto conn = net::TcpAccept(*listener, 5000);
    ASSERT_TRUE(conn.ok());
    auto frame = net::ReadFrame(*conn, net::FrameLimits{}, 5000);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_TRUE(net::WriteFrame(*conn, static_cast<uint8_t>(MsgType::kPong),
                                frame->payload, 2000, {}, frame->request_id)
                    .ok());
    std::string eof_probe;
    (void)conn->RecvAll(&eof_probe, 1, 5000);
  });

  const uint64_t reconnects_before = CounterValue(
      obs::MetricsRegistry::Global().Snapshot(), "svc.client.mux_reconnects");
  const uint64_t failures_before = CounterValue(
      obs::MetricsRegistry::Global().Snapshot(), "svc.client.mux_conn_failures");
  MuxClientOptions options;
  options.connections = 1;  // one slot, so both calls route to it
  auto client = MuxAuditClient::Connect(net::Endpoint{"127.0.0.1", *port}, options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client->Ping().ok());

  // Give the reader loop time to observe the server-side close and mark
  // the pooled connection failed — the regression was that this slot then
  // returned the stale error to every future call routed to it.
  for (int i = 0; i < 300; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const uint64_t now = CounterValue(obs::MetricsRegistry::Global().Snapshot(),
                                      "svc.client.mux_conn_failures");
    if (now > failures_before) {
      break;
    }
  }

  Status second = client->Ping();
  EXPECT_TRUE(second.ok()) << second.ToString();
  const uint64_t reconnects_after = CounterValue(
      obs::MetricsRegistry::Global().Snapshot(), "svc.client.mux_reconnects");
  EXPECT_GT(reconnects_after, reconnects_before);
  client->Shutdown();
  fake_server.join();
}

TEST(AuditServerTest, ShedsLoadBeyondInflightCapWithUnavailable) {
  // Cap the per-connection window at 1, then fire a burst of pipelined
  // audits in a single write. The whole burst parses inside one read
  // callback — before any worker completion can run — so everything past
  // the first admitted request must be shed with kUnavailable, id echoed.
  AuditServerOptions options;
  options.worker_threads = 2;
  options.reactor_shards = 1;
  options.max_inflight_per_connection = 1;
  AuditServer server(options);
  ASSERT_TRUE(server.Start().ok());
  {
    auto seed_client = AuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()});
    ASSERT_TRUE(seed_client.ok());
    ASSERT_TRUE(seed_client->ImportDepDb(TestDepDbText()).ok());
  }
  const uint64_t shed_before =
      CounterValue(obs::MetricsRegistry::Global().Snapshot(), "svc.requests_shed");

  auto socket = net::TcpConnect(net::Endpoint{"127.0.0.1", server.port()}, 2000);
  ASSERT_TRUE(socket.ok());
  constexpr uint64_t kBurst = 64;
  const std::string spec_bytes = EncodeAuditSpecification(TestSpec());
  std::string burst;
  for (uint64_t id = 1; id <= kBurst; ++id) {
    burst += net::EncodeFrame(static_cast<uint8_t>(MsgType::kAuditRequest), spec_bytes, {},
                              id);
  }
  ASSERT_TRUE(socket->SendAll(burst, 5000).ok());

  uint64_t reports = 0;
  uint64_t shed = 0;
  std::vector<bool> seen(kBurst + 1, false);
  for (uint64_t i = 0; i < kBurst; ++i) {
    auto reply = net::ReadFrame(*socket, net::FrameLimits{}, 10000);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_GE(reply->request_id, 1u);
    ASSERT_LE(reply->request_id, kBurst);
    EXPECT_FALSE(seen[reply->request_id]) << "duplicate id " << reply->request_id;
    seen[reply->request_id] = true;
    if (reply->type == static_cast<uint8_t>(MsgType::kAuditReport)) {
      ++reports;
    } else {
      ASSERT_EQ(reply->type, static_cast<uint8_t>(MsgType::kErrorReply));
      Status remote = DecodeErrorReply(reply->payload);
      EXPECT_EQ(remote.code(), StatusCode::kUnavailable) << remote.ToString();
      ++shed;
    }
  }
  EXPECT_EQ(reports + shed, kBurst);
  EXPECT_GE(reports, 1u);  // the admitted request(s) really ran
  EXPECT_GE(shed, 1u);     // overload really shed
  const uint64_t shed_after =
      CounterValue(obs::MetricsRegistry::Global().Snapshot(), "svc.requests_shed");
  EXPECT_GE(shed_after, shed_before + shed);
  server.Stop();
}

TEST(AuditServerTest, ReadDeadlineDropsStalledPartialFrame) {
  AuditServerOptions options;
  options.read_deadline_ms = 100;
  AuditServer server(options);
  ASSERT_TRUE(server.Start().ok());
  auto socket = net::TcpConnect(net::Endpoint{"127.0.0.1", server.port()}, 2000);
  ASSERT_TRUE(socket.ok());
  // A header promising 100 payload bytes that never arrive: the server must
  // drop the connection once the read deadline lapses, not hold it forever.
  ASSERT_TRUE(socket->SendAll(net::EncodeFrameHeader(1, 100) + "stall", 2000).ok());
  std::string reply;
  WallTimer timer;
  Status status = socket->RecvAll(&reply, 1, 5000);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);  // peer closed on us
  EXPECT_LT(timer.ElapsedSeconds(), 4.0);
  server.Stop();
}

TEST(AuditServerTest, IdleConnectionSurvivesReadDeadline) {
  // The deadline applies to partial frames only: a connection idle between
  // requests is keep-alive, never culled.
  AuditServerOptions options;
  options.read_deadline_ms = 100;
  AuditServer server(options);
  ASSERT_TRUE(server.Start().ok());
  auto client = AuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()});
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ping().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(300));  // 3× the deadline
  EXPECT_TRUE(client->Ping().ok());
  server.Stop();
}

TEST(AuditServerTest, StatsScrapeRacesReactorLoadCleanly) {
  // A scraper hammers the registry snapshot while a mux client drives
  // pipelined load through the reactor — the TSan build proves the whole
  // reactor/pool/scrape weave is race-free.
  AuditServerOptions options;
  options.worker_threads = 2;
  options.reactor_shards = 2;
  AuditServer server(options);
  ASSERT_TRUE(server.Start().ok());
  std::atomic<bool> done{false};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
      (void)snapshot;
    }
  });
  MuxClientOptions mux_options;
  mux_options.connections = 2;
  mux_options.window = 32;
  auto client = MuxAuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()}, mux_options);
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(client->Ping().ok()) << i;
  }
  done.store(true, std::memory_order_relaxed);
  scraper.join();
  client->Shutdown();
  server.Stop();
}

// --- Socket-backed P-SOP ring ---

PsopOptions RingPsopOptions() {
  PsopOptions psop;
  psop.group_bits = 768;
  psop.seed = 42;
  return psop;
}

// Runs a full k-peer loopback session over `datasets`; returns one result
// per peer (or dies on setup failure). A nonzero `sketch_k` switches the
// ring to the sketch-exchange protocol with that register count.
std::vector<Result<PsopResult>> RunLoopbackRing(
    const std::vector<std::vector<std::string>>& datasets, int io_timeout_ms = 10000,
    uint32_t sketch_k = 0) {
  const size_t k = datasets.size();
  std::vector<PiaPeer> peers;
  PiaPeerOptions options;
  options.psop = RingPsopOptions();
  options.io_timeout_ms = io_timeout_ms;
  if (sketch_k != 0) {
    options.sketch_k = sketch_k;
  }
  for (size_t i = 0; i < k; ++i) {
    auto peer = PiaPeer::Listen(0);
    EXPECT_TRUE(peer.ok()) << peer.status().ToString();
    options.peers.push_back(net::Endpoint{"127.0.0.1", peer->listen_port()});
    peers.push_back(std::move(*peer));
  }
  std::vector<Result<PsopResult>> results(k, InternalError("peer did not run"));
  std::vector<std::thread> threads;
  for (size_t i = 0; i < k; ++i) {
    threads.emplace_back([&, i] {
      PiaPeerOptions mine = options;
      mine.self_index = i;
      results[i] = sketch_k == 0 ? peers[i].RunPsop(datasets[i], mine)
                                 : peers[i].RunPsopWithSketch(datasets[i], mine);
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  return results;
}

TEST(PiaPeerTest, ThreePartyJaccardByteIdenticalToInProcess) {
  std::vector<std::vector<std::string>> datasets = {
      {"net:tor1", "net:core1", "hw:sed900", "pkg:libc6=2.13", "shared"},
      {"net:tor2", "net:core1", "hw:sed900", "pkg:libc6=2.13", "shared"},
      {"net:tor3", "net:core1", "hw:wd200", "pkg:libc6=2.13", "shared"},
  };
  auto results = RunLoopbackRing(datasets);
  auto reference = RunPsop(datasets, RingPsopOptions());
  ASSERT_TRUE(reference.ok());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << "peer " << i << ": " << results[i].status().ToString();
    // Bit-exact double equality, not almost-equal: the socket engine must
    // compute the identical intersection/union counts and division.
    EXPECT_EQ(results[i]->intersection, reference->intersection) << "peer " << i;
    EXPECT_EQ(results[i]->union_size, reference->union_size) << "peer " << i;
    EXPECT_EQ(results[i]->jaccard, reference->jaccard) << "peer " << i;
    // The peer metered its own real traffic.
    const PartyStats& stats = results[i]->party_stats[i];
    EXPECT_GT(stats.bytes_sent, 0u);
    EXPECT_GT(stats.bytes_received, 0u);
    EXPECT_GT(stats.encrypt_ops, 0u);
  }
  // Sanity: intersection is the 3 common elements (core1, libc6, shared).
  EXPECT_EQ(reference->intersection, 3u);
}

TEST(PiaPeerTest, TwoPartyWithDuplicatesMatchesInProcess) {
  std::vector<std::vector<std::string>> datasets = {
      {"a", "a", "b", "c"},
      {"a", "b", "b", "d"},
  };
  auto results = RunLoopbackRing(datasets);
  auto reference = RunPsop(datasets, RingPsopOptions());
  ASSERT_TRUE(reference.ok());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    EXPECT_EQ(results[i]->jaccard, reference->jaccard);
    EXPECT_EQ(results[i]->intersection, reference->intersection);
    EXPECT_EQ(results[i]->union_size, reference->union_size);
  }
}

TEST(PiaPeerTest, SketchRingByteIdenticalToInProcess) {
  const uint32_t sketch_k = 128;
  std::vector<std::vector<std::string>> datasets = {
      {"net:tor1", "net:core1", "hw:sed900", "pkg:libc6=2.13", "shared"},
      {"net:tor2", "net:core1", "hw:sed900", "pkg:libc6=2.13", "shared"},
      {"net:tor3", "net:core1", "hw:wd200", "pkg:libc6=2.13", "shared"},
  };
  auto results = RunLoopbackRing(datasets, 10000, sketch_k);
  auto reference = RunPsopWithSketch(datasets, sketch_k, RingPsopOptions());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  // Every hop moves one fixed-size frame: header + trace + sketch-params
  // extensions + the PsopSketch payload (origin, count, k registers). The
  // total is a function of ring size and sketch_k only — never of how many
  // components a provider has, which is the protocol's selling point.
  const size_t hop_bytes = net::kFrameHeaderBytes + net::kTraceContextBytes +
                           net::kSketchParamsBytes + 8 + 4 * sketch_k;
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << "peer " << i << ": " << results[i].status().ToString();
    // Bit-exact equality with the in-process engine: same seed derivation,
    // same registers, same agreement count, same division.
    EXPECT_EQ(results[i]->intersection, reference->intersection) << "peer " << i;
    EXPECT_EQ(results[i]->union_size, sketch_k) << "peer " << i;
    EXPECT_EQ(results[i]->jaccard, reference->jaccard) << "peer " << i;
    const PartyStats& stats = results[i]->party_stats[i];
    EXPECT_EQ(stats.bytes_sent, (datasets.size() - 1) * hop_bytes) << "peer " << i;
    EXPECT_EQ(stats.bytes_received, (datasets.size() - 1) * hop_bytes) << "peer " << i;
    EXPECT_EQ(stats.encrypt_ops, 0u) << "peer " << i;
  }
}

TEST(PiaPeerTest, SketchRingGeometryMismatchFailsClosed) {
  // Two peers that disagree on sketch_k must fail at the handshake — the
  // sketch-params extension makes the mismatch visible before any register
  // moves, so neither side ever compares registers hashed under different
  // geometry.
  auto peer0 = PiaPeer::Listen(0);
  auto peer1 = PiaPeer::Listen(0);
  ASSERT_TRUE(peer0.ok());
  ASSERT_TRUE(peer1.ok());
  std::vector<net::Endpoint> ring = {{"127.0.0.1", peer0->listen_port()},
                                     {"127.0.0.1", peer1->listen_port()}};
  Result<PsopResult> r0 = InternalError("unset");
  Result<PsopResult> r1 = InternalError("unset");
  std::thread t0([&] {
    PiaPeerOptions options;
    options.peers = ring;
    options.self_index = 0;
    options.psop = RingPsopOptions();
    options.sketch_k = 128;
    options.io_timeout_ms = 3000;
    r0 = peer0->RunPsopWithSketch({"x"}, options);
  });
  std::thread t1([&] {
    PiaPeerOptions options;
    options.peers = ring;
    options.self_index = 1;
    options.psop = RingPsopOptions();
    options.sketch_k = 256;  // disagrees with peer 0
    options.io_timeout_ms = 3000;
    r1 = peer1->RunPsopWithSketch({"y"}, options);
  });
  t0.join();
  t1.join();
  ASSERT_FALSE(r0.ok());
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r0.status().code(), StatusCode::kProtocolError);
  EXPECT_EQ(r1.status().code(), StatusCode::kProtocolError);
}

TEST(PiaPeerTest, SketchRingRejectsEncryptedProtocolPeer) {
  // A ring where one peer runs the encrypted P-SOP protocol and the other
  // the sketch exchange must fail closed on both sides: the sketch peer
  // sees a hello without the sketch-params extension (kProtocolError), and
  // the encrypted peer loses its neighbour before any dataset round
  // completes. This is the "old auditor meets sketch traffic" scenario.
  auto peer0 = PiaPeer::Listen(0);
  auto peer1 = PiaPeer::Listen(0);
  ASSERT_TRUE(peer0.ok());
  ASSERT_TRUE(peer1.ok());
  std::vector<net::Endpoint> ring = {{"127.0.0.1", peer0->listen_port()},
                                     {"127.0.0.1", peer1->listen_port()}};
  Result<PsopResult> r0 = InternalError("unset");
  Result<PsopResult> r1 = InternalError("unset");
  std::thread t0([&] {
    PiaPeerOptions options;
    options.peers = ring;
    options.self_index = 0;
    options.psop = RingPsopOptions();
    options.io_timeout_ms = 3000;
    r0 = peer0->RunPsop({"x"}, options);  // encrypted protocol, no extension
  });
  std::thread t1([&] {
    PiaPeerOptions options;
    options.peers = ring;
    options.self_index = 1;
    options.psop = RingPsopOptions();
    options.io_timeout_ms = 3000;
    r1 = peer1->RunPsopWithSketch({"y"}, options);
  });
  t0.join();
  t1.join();
  ASSERT_FALSE(r0.ok());
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kProtocolError);
}

TEST(PiaPeerTest, RingSpansShareDerivedSessionTraceId) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Reset();
  recorder.SetEnabled(true);
  auto results = RunLoopbackRing({{"a", "b", "c"}, {"a", "b", "d"}});
  recorder.SetEnabled(false);
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  // Every peer derives the session trace id from the shared P-SOP seed, so
  // a later trace-merge can stitch the per-process files without any
  // coordinator handing out ids.
  const uint64_t session = obs::DeriveTraceId(RingPsopOptions().seed);
  ASSERT_NE(session, 0u);
  size_t hops = 0;
  for (const obs::SpanRecord& span : recorder.Snapshot()) {
    if (span.name != "pia.ring.exchange") {
      continue;
    }
    ++hops;
    EXPECT_EQ(span.trace_id, session);
  }
  // Two peers, one dataset pass + one share pass each at minimum.
  EXPECT_GE(hops, 4u);
}

TEST(PiaPeerTest, MetricsSnapshotRacesRingCleanly) {
  // Scrapers snapshot the global registry exactly as a GetStats handler
  // would, while a live ring hammers the same instruments — the TSan build
  // proves the snapshot path is race-free.
  std::atomic<bool> done{false};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
      (void)snapshot;
    }
  });
  auto results = RunLoopbackRing({{"net:tor1", "net:core1", "shared"},
                                  {"net:tor2", "net:core1", "shared"},
                                  {"net:tor3", "net:core2", "shared"}});
  done.store(true, std::memory_order_relaxed);
  scraper.join();
  for (const auto& result : results) {
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  }
}

TEST(PiaPeerTest, MisconfiguredRingFailsHandshake) {
  // Two peers that disagree on the ring size must fail fast at the
  // handshake, not mid-protocol.
  auto peer0 = PiaPeer::Listen(0);
  auto peer1 = PiaPeer::Listen(0);
  ASSERT_TRUE(peer0.ok());
  ASSERT_TRUE(peer1.ok());
  std::vector<net::Endpoint> ring = {{"127.0.0.1", peer0->listen_port()},
                                     {"127.0.0.1", peer1->listen_port()}};
  Result<PsopResult> r0 = InternalError("unset");
  Result<PsopResult> r1 = InternalError("unset");
  std::thread t0([&] {
    PiaPeerOptions options;
    options.peers = ring;
    options.self_index = 0;
    options.psop = RingPsopOptions();
    options.io_timeout_ms = 3000;
    r0 = peer0->RunPsop({"x"}, options);
  });
  std::thread t1([&] {
    PiaPeerOptions options;
    options.peers = ring;
    options.self_index = 1;
    options.psop = RingPsopOptions();
    options.psop.group_bits = 1024;  // disagrees with peer 0
    options.io_timeout_ms = 3000;
    r1 = peer1->RunPsop({"y"}, options);
  });
  t0.join();
  t1.join();
  EXPECT_FALSE(r0.ok());
  EXPECT_FALSE(r1.ok());
}

TEST(PiaPeerTest, PeerDisconnectMidSessionFailsCleanlyAndBounded) {
  // Ring of three where peer 2 is a saboteur: it completes the handshake,
  // then vanishes. Peers 0 and 1 must fail with a transport error within
  // their io timeout — no hang, no partial result.
  auto peer0 = PiaPeer::Listen(0);
  auto peer1 = PiaPeer::Listen(0);
  auto saboteur_listener = net::TcpListen(0);
  ASSERT_TRUE(peer0.ok());
  ASSERT_TRUE(peer1.ok());
  ASSERT_TRUE(saboteur_listener.ok());
  auto saboteur_port = saboteur_listener->LocalPort();
  ASSERT_TRUE(saboteur_port.ok());
  std::vector<net::Endpoint> ring = {{"127.0.0.1", peer0->listen_port()},
                                     {"127.0.0.1", peer1->listen_port()},
                                     {"127.0.0.1", *saboteur_port}};
  constexpr int kIoTimeoutMs = 1500;
  PiaPeerOptions options;
  options.peers = ring;
  options.psop = RingPsopOptions();
  options.io_timeout_ms = kIoTimeoutMs;

  Result<PsopResult> r0 = InternalError("unset");
  Result<PsopResult> r1 = InternalError("unset");
  std::thread t0([&] {
    PiaPeerOptions mine = options;
    mine.self_index = 0;
    r0 = peer0->RunPsop({"a", "b"}, mine);
  });
  std::thread t1([&] {
    PiaPeerOptions mine = options;
    mine.self_index = 1;
    r1 = peer1->RunPsop({"a", "c"}, mine);
  });
  std::thread saboteur([&] {
    // Play peer 2 up through the handshake, then drop both connections.
    auto tx = net::ConnectWithRetry(ring[0], 2000, {});
    if (!tx.ok()) {
      return;
    }
    auto rx = net::TcpAccept(*saboteur_listener, 5000);
    if (!rx.ok()) {
      return;
    }
    PsopHello hello;
    hello.ring_size = 3;
    hello.sender_index = 2;
    hello.group_bits = static_cast<uint32_t>(options.psop.group_bits);
    hello.hash_algorithm = static_cast<uint8_t>(options.psop.hash);
    (void)net::WriteFrame(*tx, static_cast<uint8_t>(MsgType::kPsopHello),
                          EncodePsopHello(hello), 2000);
    auto peer_hello = net::ReadFrame(*rx, net::FrameLimits{}, 5000);
    (void)peer_hello;
    tx->Close();
    rx->Close();
  });

  WallTimer timer;
  t0.join();
  t1.join();
  saboteur.join();
  double elapsed = timer.ElapsedSeconds();

  EXPECT_FALSE(r0.ok());
  EXPECT_FALSE(r1.ok());
  for (const Status& status : {r0.status(), r1.status()}) {
    EXPECT_TRUE(status.code() == StatusCode::kUnavailable ||
                status.code() == StatusCode::kDeadlineExceeded)
        << status.ToString();
  }
  // Bounded: failure must land within a small multiple of the io timeout
  // (the joins started after thread creation, so elapsed is a loose bound).
  EXPECT_LT(elapsed, 4.0 * kIoTimeoutMs / 1000.0);
}

// --- The frame pump ---

TEST(ExchangeFramesTest, LargeFramesBothDirectionsNoDeadlock) {
  // Two nodes exchange 4 MB frames simultaneously over two TCP connections
  // (as ring neighbours do). Naive send-then-receive would deadlock on full
  // kernel buffers; the pump must interleave.
  auto listener_ab = net::TcpListen(0);
  auto listener_ba = net::TcpListen(0);
  ASSERT_TRUE(listener_ab.ok());
  ASSERT_TRUE(listener_ba.ok());
  auto a_tx = net::TcpConnect({"127.0.0.1", listener_ab->LocalPort().value_or(1)}, 2000);
  auto b_tx = net::TcpConnect({"127.0.0.1", listener_ba->LocalPort().value_or(1)}, 2000);
  ASSERT_TRUE(a_tx.ok());
  ASSERT_TRUE(b_tx.ok());
  auto b_rx = net::TcpAccept(*listener_ab, 2000);
  auto a_rx = net::TcpAccept(*listener_ba, 2000);
  ASSERT_TRUE(b_rx.ok());
  ASSERT_TRUE(a_rx.ok());

  const std::string payload_a(4 << 20, 'A');
  const std::string payload_b(4 << 20, 'B');
  std::string frame_a = net::EncodeFrameHeader(17, static_cast<uint32_t>(payload_a.size()));
  frame_a += payload_a;
  std::string frame_b = net::EncodeFrameHeader(17, static_cast<uint32_t>(payload_b.size()));
  frame_b += payload_b;

  Result<net::Frame> got_at_b = InternalError("unset");
  std::thread node_b([&] {
    got_at_b = ExchangeFrames(*b_tx, frame_b, *b_rx, net::FrameLimits{}, 10000);
  });
  auto got_at_a = ExchangeFrames(*a_tx, frame_a, *a_rx, net::FrameLimits{}, 10000);
  node_b.join();

  ASSERT_TRUE(got_at_a.ok()) << got_at_a.status().ToString();
  ASSERT_TRUE(got_at_b.ok()) << got_at_b.status().ToString();
  EXPECT_EQ(got_at_a->payload, payload_b);
  EXPECT_EQ(got_at_b->payload, payload_a);
}

TEST(ExchangeFramesTest, StalledPeerTimesOut) {
  auto listener = net::TcpListen(0);
  ASSERT_TRUE(listener.ok());
  auto tx = net::TcpConnect({"127.0.0.1", listener->LocalPort().value_or(1)}, 2000);
  ASSERT_TRUE(tx.ok());
  auto rx = net::TcpAccept(*listener, 2000);
  ASSERT_TRUE(rx.ok());
  // Nothing ever arrives on rx (the "peer" is tx's counterpart = rx itself,
  // and we never write to it): the pump must give up at the deadline.
  WallTimer timer;
  auto frame = ExchangeFrames(*tx, "", *rx, net::FrameLimits{}, 200);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(timer.ElapsedSeconds(), 2.0);
}

}  // namespace
}  // namespace svc
}  // namespace indaas
