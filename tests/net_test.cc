// Tests for the transport layer: endpoints, wire codec primitives, frame
// framing/validation, sockets on loopback, and retry/backoff.

#include <gtest/gtest.h>
#include <sys/epoll.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <random>
#include <thread>

#include "src/net/event_loop.h"
#include "src/net/frame.h"
#include "src/net/retry.h"
#include "src/net/socket.h"
#include "src/net/wire.h"
#include "src/util/status.h"

namespace indaas {
namespace net {
namespace {

// --- Endpoints ---

TEST(EndpointTest, ParseGood) {
  auto endpoint = ParseEndpoint("example.com:8080");
  ASSERT_TRUE(endpoint.ok());
  EXPECT_EQ(endpoint->host, "example.com");
  EXPECT_EQ(endpoint->port, 8080);
  EXPECT_EQ(endpoint->ToString(), "example.com:8080");
}

TEST(EndpointTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseEndpoint("").ok());
  EXPECT_FALSE(ParseEndpoint("no-port").ok());
  EXPECT_FALSE(ParseEndpoint("host:").ok());
  EXPECT_FALSE(ParseEndpoint(":123").ok());
  EXPECT_FALSE(ParseEndpoint("host:0").ok());
  EXPECT_FALSE(ParseEndpoint("host:65536").ok());
  EXPECT_FALSE(ParseEndpoint("host:12ab").ok());
}

TEST(EndpointTest, ParseList) {
  auto list = ParseEndpointList("a:1, b:2,c:3");
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 3u);
  EXPECT_EQ((*list)[0].host, "a");
  EXPECT_EQ((*list)[1].port, 2);
  EXPECT_EQ((*list)[2].ToString(), "c:3");
  EXPECT_FALSE(ParseEndpointList("a:1,,b:2").ok());
  EXPECT_FALSE(ParseEndpointList("").ok());
}

// --- Wire codec ---

TEST(WireTest, ScalarRoundTrip) {
  WireWriter writer;
  writer.U8(0xAB);
  writer.U16(0xBEEF);
  writer.U32(0xDEADBEEF);
  writer.U64(0x0123456789ABCDEFull);
  writer.Bool(true);
  writer.Bool(false);
  writer.F64(-1.5e300);
  WireReader reader(writer.buffer());
  EXPECT_EQ(reader.U8().value_or(0), 0xAB);
  EXPECT_EQ(reader.U16().value_or(0), 0xBEEF);
  EXPECT_EQ(reader.U32().value_or(0), 0xDEADBEEFu);
  EXPECT_EQ(reader.U64().value_or(0), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.Bool().value_or(false), true);
  EXPECT_EQ(reader.Bool().value_or(true), false);
  EXPECT_EQ(reader.F64().value_or(0), -1.5e300);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(WireTest, BytesAndStringsRoundTrip) {
  WireWriter writer;
  writer.Bytes(std::string("\x00\x01\xFFthe bytes", 12));
  writer.Str("");
  writer.StrVec({"alpha", "", "gamma"});
  WireReader reader(writer.buffer());
  EXPECT_EQ(reader.Bytes().value_or("?"), std::string("\x00\x01\xFFthe bytes", 12));
  EXPECT_EQ(reader.Str().value_or("?"), "");
  auto vec = reader.StrVec();
  ASSERT_TRUE(vec.ok());
  EXPECT_EQ(*vec, (std::vector<std::string>{"alpha", "", "gamma"}));
  EXPECT_TRUE(reader.AtEnd());
}

// Property test: random sequences of typed values survive a round trip.
TEST(WireTest, RandomRoundTripProperty) {
  std::mt19937_64 rng(12345);
  for (int trial = 0; trial < 200; ++trial) {
    // Record what we wrote, then read it back in the same order.
    std::vector<int> kinds;
    std::vector<uint64_t> scalars;
    std::vector<std::string> blobs;
    WireWriter writer;
    int fields = 1 + static_cast<int>(rng() % 12);
    for (int f = 0; f < fields; ++f) {
      int kind = static_cast<int>(rng() % 5);
      kinds.push_back(kind);
      uint64_t value = rng();
      switch (kind) {
        case 0: writer.U8(static_cast<uint8_t>(value)); scalars.push_back(value & 0xFF); break;
        case 1: writer.U16(static_cast<uint16_t>(value)); scalars.push_back(value & 0xFFFF); break;
        case 2: writer.U32(static_cast<uint32_t>(value)); scalars.push_back(value & 0xFFFFFFFF); break;
        case 3: writer.U64(value); scalars.push_back(value); break;
        case 4: {
          std::string blob(value % 64, static_cast<char>(value % 251));
          writer.Bytes(blob);
          blobs.push_back(blob);
          break;
        }
      }
    }
    WireReader reader(writer.buffer());
    size_t scalar_at = 0;
    size_t blob_at = 0;
    for (int kind : kinds) {
      switch (kind) {
        case 0: EXPECT_EQ(uint64_t{reader.U8().value_or(1)}, scalars[scalar_at++]); break;
        case 1: EXPECT_EQ(uint64_t{reader.U16().value_or(1)}, scalars[scalar_at++]); break;
        case 2: EXPECT_EQ(uint64_t{reader.U32().value_or(1)}, scalars[scalar_at++]); break;
        case 3: EXPECT_EQ(reader.U64().value_or(1), scalars[scalar_at++]); break;
        case 4: EXPECT_EQ(reader.Bytes().value_or("?"), blobs[blob_at++]); break;
      }
    }
    EXPECT_TRUE(reader.AtEnd()) << "trial " << trial;
  }
}

TEST(WireTest, TruncationIsParseErrorNeverOverread) {
  WireWriter writer;
  writer.U32(7);
  writer.Str("payload");
  writer.U64(42);
  const std::string full = writer.buffer();
  // Every proper prefix must fail cleanly on whichever field it cuts.
  for (size_t cut = 0; cut < full.size(); ++cut) {
    const std::string prefix = full.substr(0, cut);
    WireReader reader(prefix);
    auto a = reader.U32();
    if (!a.ok()) {
      EXPECT_EQ(a.status().code(), StatusCode::kParseError);
      continue;
    }
    auto b = reader.Str();
    if (!b.ok()) {
      EXPECT_EQ(b.status().code(), StatusCode::kParseError);
      continue;
    }
    auto c = reader.U64();
    EXPECT_FALSE(c.ok()) << "cut at " << cut;
    EXPECT_EQ(c.status().code(), StatusCode::kParseError);
  }
}

TEST(WireTest, BoolRejectsNonCanonical) {
  WireWriter writer;
  writer.U8(2);
  WireReader reader(writer.buffer());
  auto value = reader.Bool();
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kParseError);
}

TEST(WireTest, StrVecRejectsAbsurdCount) {
  // A count far larger than the remaining bytes must fail before allocating.
  WireWriter writer;
  writer.U32(0x40000000);  // claims a billion strings
  WireReader reader(writer.buffer());
  auto vec = reader.StrVec();
  ASSERT_FALSE(vec.ok());
  EXPECT_EQ(vec.status().code(), StatusCode::kParseError);
}

// --- Frame header validation ---

TEST(FrameTest, HeaderRoundTrip) {
  std::string header = EncodeFrameHeader(7, 123456);
  ASSERT_EQ(header.size(), kFrameHeaderBytes);
  auto decoded = DecodeFrameHeader(header, FrameLimits{});
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, 7);
  EXPECT_EQ(decoded->payload_size, 123456u);
}

TEST(FrameTest, RejectsBadMagic) {
  std::string header = EncodeFrameHeader(1, 4);
  header[0] = 'X';
  auto decoded = DecodeFrameHeader(header, FrameLimits{});
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kProtocolError);
}

TEST(FrameTest, RejectsBadVersion) {
  std::string header = EncodeFrameHeader(1, 4);
  header[4] = static_cast<char>(kWireVersion + 1);
  auto decoded = DecodeFrameHeader(header, FrameLimits{});
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kProtocolError);
}

TEST(FrameTest, RejectsNonZeroFlags) {
  // Every reserved flag bit stays a hard protocol error, alone or alongside
  // the known (trace, request-id, sketch-params, ring-membership) bits —
  // this is what makes old peers reject pipelined traffic outright instead
  // of mis-framing it, how a pre-sketch peer refuses a sketch session
  // cleanly, and how a pre-recovery peer refuses a degraded ring.
  for (uint16_t flags : {uint16_t{0x0010}, uint16_t{0x0100}, uint16_t{0x8000},
                         static_cast<uint16_t>(kFrameFlagTraceContext | 0x0020),
                         static_cast<uint16_t>(kFrameFlagRingMembership | 0x0010),
                         static_cast<uint16_t>(kFrameKnownFlags | 0x4000)}) {
    std::string header = EncodeFrameHeader(1, 4, flags);
    auto decoded = DecodeFrameHeader(header, FrameLimits{});
    ASSERT_FALSE(decoded.ok()) << "flags 0x" << std::hex << flags;
    EXPECT_EQ(decoded.status().code(), StatusCode::kProtocolError);
  }
}

// Property: a header decodes iff its flags are a subset of the known bits,
// and each known bit independently controls its extension marker.
TEST(FrameTest, FlagSubsetDecodabilityProperty) {
  std::mt19937_64 rng(987654321);
  for (int trial = 0; trial < 500; ++trial) {
    uint16_t flags = static_cast<uint16_t>(rng());
    std::string header = EncodeFrameHeader(9, 32, flags);
    auto decoded = DecodeFrameHeader(header, FrameLimits{});
    bool known_only = (flags & ~kFrameKnownFlags) == 0;
    ASSERT_EQ(decoded.ok(), known_only) << "flags 0x" << std::hex << flags;
    if (!known_only) {
      EXPECT_EQ(decoded.status().code(), StatusCode::kProtocolError);
      continue;
    }
    EXPECT_EQ(decoded->has_trace_context, (flags & kFrameFlagTraceContext) != 0);
    EXPECT_EQ(decoded->has_request_id, (flags & kFrameFlagRequestId) != 0);
    EXPECT_EQ(decoded->has_sketch_params, (flags & kFrameFlagSketchParams) != 0);
    EXPECT_EQ(decoded->has_ring_membership, (flags & kFrameFlagRingMembership) != 0);
    size_t extensions = (decoded->has_trace_context ? kTraceContextBytes : 0) +
                        (decoded->has_request_id ? kRequestIdBytes : 0) +
                        (decoded->has_sketch_params ? kSketchParamsBytes : 0) +
                        (decoded->has_ring_membership ? kRingMembershipBytes : 0);
    EXPECT_EQ(decoded->extension_bytes(), extensions);
    EXPECT_EQ(decoded->total_bytes(), kFrameHeaderBytes + extensions + 32u);
  }
}

TEST(FrameTest, RequestIdFlagBitIsAccepted) {
  std::string header = EncodeFrameHeader(3, 9, kFrameFlagRequestId);
  auto decoded = DecodeFrameHeader(header, FrameLimits{});
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->has_request_id);
  EXPECT_FALSE(decoded->has_trace_context);
  // All extensions together account for 40 bytes ahead of the payload.
  auto all =
      DecodeFrameHeader(EncodeFrameHeader(3, 9, kFrameKnownFlags), FrameLimits{});
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all->has_trace_context);
  EXPECT_TRUE(all->has_request_id);
  EXPECT_TRUE(all->has_sketch_params);
  EXPECT_TRUE(all->has_ring_membership);
  EXPECT_EQ(all->extension_bytes(),
            kTraceContextBytes + kRequestIdBytes + kSketchParamsBytes + kRingMembershipBytes);
}

TEST(FrameTest, RequestIdCodecRoundTrip) {
  std::string bytes = EncodeRequestId(0x0102030405060708ULL);
  ASSERT_EQ(bytes.size(), kRequestIdBytes);
  auto decoded = DecodeRequestId(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, 0x0102030405060708ULL);
  // Truncated extensions are protocol errors, not parse-as-zero.
  auto truncated = DecodeRequestId(std::string_view(bytes).substr(0, 4));
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kProtocolError);
  // Id zero means "absent" everywhere, so it must never appear on the wire.
  auto zero = DecodeRequestId(EncodeRequestId(0));
  ASSERT_FALSE(zero.ok());
  EXPECT_EQ(zero.status().code(), StatusCode::kProtocolError);
}

TEST(FrameTest, SketchParamsCodecRoundTrip) {
  FrameSketchParams params;
  params.k = 256;
  params.bands = 64;
  params.rows = 4;
  std::string bytes = EncodeSketchParams(params);
  ASSERT_EQ(bytes.size(), kSketchParamsBytes);
  auto decoded = DecodeSketchParams(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, params);
  // Truncated extensions are protocol errors, not parse-as-zero.
  auto truncated = DecodeSketchParams(std::string_view(bytes).substr(0, 6));
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kProtocolError);
  // k = 0 means "absent" everywhere, so it must never appear on the wire.
  FrameSketchParams absent;
  auto zero = DecodeSketchParams(EncodeSketchParams(absent));
  ASSERT_FALSE(zero.ok());
  EXPECT_EQ(zero.status().code(), StatusCode::kProtocolError);
  // The reserved trailing word must be zero — it is the extension's own
  // versioning headroom.
  bytes[6] = 0x01;
  auto reserved = DecodeSketchParams(bytes);
  ASSERT_FALSE(reserved.ok());
  EXPECT_EQ(reserved.status().code(), StatusCode::kProtocolError);
}

TEST(FrameTest, TraceFlagBitIsAccepted) {
  std::string header = EncodeFrameHeader(3, 9, kFrameFlagTraceContext);
  auto decoded = DecodeFrameHeader(header, FrameLimits{});
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->has_trace_context);
  EXPECT_EQ(decoded->type, 3);
  EXPECT_EQ(decoded->payload_size, 9u);
  // Traceless headers decode with the extension absent (backward compat).
  auto plain = DecodeFrameHeader(EncodeFrameHeader(3, 9), FrameLimits{});
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->has_trace_context);
}

TEST(FrameTest, TraceContextCodecRoundTrip) {
  obs::TraceContext trace{0xDEADBEEFCAFEF00DULL, 42};
  std::string bytes = EncodeTraceContext(trace);
  ASSERT_EQ(bytes.size(), kTraceContextBytes);
  auto decoded = DecodeTraceContext(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->trace_id, trace.trace_id);
  EXPECT_EQ(decoded->parent_span_id, trace.parent_span_id);
  // Truncated extensions are protocol errors, not parse-as-zero.
  auto truncated = DecodeTraceContext(std::string_view(bytes).substr(0, 8));
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kProtocolError);
}

TEST(FrameTest, RejectsOversizedLength) {
  FrameLimits limits;
  limits.max_payload_bytes = 1024;
  std::string header = EncodeFrameHeader(1, 1025);
  auto decoded = DecodeFrameHeader(header, limits);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kProtocolError);
  // At the limit is fine.
  EXPECT_TRUE(DecodeFrameHeader(EncodeFrameHeader(1, 1024), limits).ok());
}

// --- Sockets on loopback ---

// Listener + connected pair on 127.0.0.1, built fresh per test.
struct LoopbackPair {
  Socket server;
  Socket client;
};

LoopbackPair MakeLoopbackPair() {
  auto listener = TcpListen(0);
  EXPECT_TRUE(listener.ok()) << listener.status().ToString();
  auto port = listener->LocalPort();
  EXPECT_TRUE(port.ok());
  auto client = TcpConnect(Endpoint{"127.0.0.1", *port}, 2000);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  auto server = TcpAccept(*listener, 2000);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return LoopbackPair{std::move(*server), std::move(*client)};
}

TEST(SocketTest, SendAllRecvAllRoundTrip) {
  LoopbackPair pair = MakeLoopbackPair();
  // Large enough to require multiple send() calls on most kernels.
  std::string message(1 << 20, 'x');
  for (size_t i = 0; i < message.size(); ++i) {
    message[i] = static_cast<char>(i * 31);
  }
  std::thread sender([&] { ASSERT_TRUE(pair.client.SendAll(message, 5000).ok()); });
  std::string received;
  Status status = pair.server.RecvAll(&received, message.size(), 5000);
  sender.join();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(received, message);
}

TEST(SocketTest, RecvTimeoutIsDeadlineExceeded) {
  LoopbackPair pair = MakeLoopbackPair();
  std::string out;
  Status status = pair.server.RecvAll(&out, 1, 50);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST(SocketTest, PeerCloseIsUnavailable) {
  LoopbackPair pair = MakeLoopbackPair();
  pair.client.Close();
  std::string out;
  Status status = pair.server.RecvAll(&out, 1, 1000);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST(SocketTest, ConnectRefusedIsUnavailable) {
  // Grab a port that is free, then close the listener so nothing serves it.
  uint16_t dead_port;
  {
    auto listener = TcpListen(0);
    ASSERT_TRUE(listener.ok());
    dead_port = listener->LocalPort().value_or(1);
  }
  auto client = TcpConnect(Endpoint{"127.0.0.1", dead_port}, 500);
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kUnavailable);
}

TEST(FrameTest, WriteReadOverSocket) {
  LoopbackPair pair = MakeLoopbackPair();
  std::string payload = "frame payload \x01\x02";
  ASSERT_TRUE(WriteFrame(pair.client, 5, payload, 2000).ok());
  auto frame = ReadFrame(pair.server, FrameLimits{}, 2000);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, 5);
  EXPECT_EQ(frame->payload, payload);
  // Traceless frames arrive with no distributed identity.
  EXPECT_FALSE(frame->trace.valid());
}

TEST(FrameTest, TraceContextRoundTripsOverSocket) {
  LoopbackPair pair = MakeLoopbackPair();
  obs::TraceContext trace{0x1122334455667788ULL, 7};
  ASSERT_TRUE(WriteFrame(pair.client, 5, "hello", 2000, trace).ok());
  auto frame = ReadFrame(pair.server, FrameLimits{}, 2000);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, 5);
  EXPECT_EQ(frame->payload, "hello");
  EXPECT_EQ(frame->trace.trace_id, trace.trace_id);
  EXPECT_EQ(frame->trace.parent_span_id, trace.parent_span_id);
  // The extension is not part of the payload length: a traceless frame sent
  // right behind it must still parse cleanly.
  ASSERT_TRUE(WriteFrame(pair.client, 6, "plain", 2000).ok());
  auto next = ReadFrame(pair.server, FrameLimits{}, 2000);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->payload, "plain");
  EXPECT_FALSE(next->trace.valid());
}

TEST(FrameTest, RequestIdRoundTripsOverSocket) {
  LoopbackPair pair = MakeLoopbackPair();
  // Request id alone.
  ASSERT_TRUE(WriteFrame(pair.client, 5, "req", 2000, {}, 77).ok());
  auto frame = ReadFrame(pair.server, FrameLimits{}, 2000);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->request_id, 77u);
  EXPECT_EQ(frame->payload, "req");
  EXPECT_FALSE(frame->trace.valid());
  // Trace context and request id together, in either encoder.
  obs::TraceContext trace{0xA1B2C3D4E5F60718ULL, 3};
  ASSERT_TRUE(pair.client.SendAll(EncodeFrame(6, "both", trace, 0xFFFFFFFFFFFFFFFFULL),
                                  2000)
                  .ok());
  auto next = ReadFrame(pair.server, FrameLimits{}, 2000);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ(next->payload, "both");
  EXPECT_EQ(next->trace.trace_id, trace.trace_id);
  EXPECT_EQ(next->request_id, 0xFFFFFFFFFFFFFFFFULL);
  // An id-less frame right behind is unaffected (extension not counted in
  // the payload length).
  ASSERT_TRUE(WriteFrame(pair.client, 7, "plain", 2000).ok());
  auto plain = ReadFrame(pair.server, FrameLimits{}, 2000);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->payload, "plain");
  EXPECT_EQ(plain->request_id, 0u);
}

TEST(FrameTest, SketchParamsRoundTripsOverSocket) {
  LoopbackPair pair = MakeLoopbackPair();
  FrameSketchParams params;
  params.k = 512;
  params.bands = 128;
  params.rows = 4;
  ASSERT_TRUE(WriteFrame(pair.client, 19, "regs", 2000, {}, 0, params).ok());
  auto frame = ReadFrame(pair.server, FrameLimits{}, 2000);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, 19);
  EXPECT_EQ(frame->payload, "regs");
  EXPECT_TRUE(frame->sketch.valid());
  EXPECT_EQ(frame->sketch, params);
  // All three extensions can ride the same frame, in either encoder.
  obs::TraceContext trace{0xDEADBEEFCAFEF00DULL, 5};
  ASSERT_TRUE(
      pair.client.SendAll(EncodeFrame(20, "all", trace, 42, params), 2000).ok());
  auto next = ReadFrame(pair.server, FrameLimits{}, 2000);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ(next->trace.trace_id, trace.trace_id);
  EXPECT_EQ(next->request_id, 42u);
  EXPECT_EQ(next->sketch, params);
  // A param-less frame right behind is unaffected (extension not counted in
  // the payload length).
  ASSERT_TRUE(WriteFrame(pair.client, 7, "plain", 2000).ok());
  auto plain = ReadFrame(pair.server, FrameLimits{}, 2000);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->payload, "plain");
  EXPECT_FALSE(plain->sketch.valid());
}

TEST(FrameTest, EncodeFrameMatchesWriteFrameBytes) {
  // EncodeFrame (the reactor's buffered path) and WriteFrame (the serial
  // path) must produce identical bytes for identical inputs — this is the
  // byte-level compatibility contract between old and new peers.
  LoopbackPair pair = MakeLoopbackPair();
  obs::TraceContext trace{42, 7};
  ASSERT_TRUE(WriteFrame(pair.client, 9, "payload", 2000, trace, 1234).ok());
  std::string expected = EncodeFrame(9, "payload", trace, 1234);
  std::string wire;
  ASSERT_TRUE(pair.server.RecvAll(&wire, expected.size(), 2000).ok());
  EXPECT_EQ(wire, expected);
  // And the flags==0 frame stays byte-identical to the legacy layout.
  ASSERT_TRUE(WriteFrame(pair.client, 2, "", 2000).ok());
  std::string legacy;
  ASSERT_TRUE(pair.server.RecvAll(&legacy, kFrameHeaderBytes, 2000).ok());
  EXPECT_EQ(legacy, EncodeFrameHeader(2, 0));
}

TEST(FrameTest, GarbageBytesRejectedBeforeAllocation) {
  LoopbackPair pair = MakeLoopbackPair();
  // 12 bytes of garbage: invalid magic must be rejected without reading a
  // payload (the bogus "length" would be enormous).
  std::string garbage = "GARBAGEBYTES";
  ASSERT_EQ(garbage.size(), kFrameHeaderBytes);
  ASSERT_TRUE(pair.client.SendAll(garbage, 2000).ok());
  auto frame = ReadFrame(pair.server, FrameLimits{}, 2000);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kProtocolError);
}

TEST(FrameTest, TruncatedFrameIsUnavailable) {
  LoopbackPair pair = MakeLoopbackPair();
  // A valid header promising 100 bytes, then the peer dies after 10.
  std::string header = EncodeFrameHeader(3, 100);
  ASSERT_TRUE(pair.client.SendAll(header + std::string(10, 'p'), 2000).ok());
  pair.client.Close();
  auto frame = ReadFrame(pair.server, FrameLimits{}, 2000);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
}

TEST(FrameTest, OversizedFrameRejectedByReader) {
  LoopbackPair pair = MakeLoopbackPair();
  FrameLimits limits;
  limits.max_payload_bytes = 16;
  ASSERT_TRUE(pair.client.SendAll(EncodeFrameHeader(3, 17), 2000).ok());
  auto frame = ReadFrame(pair.server, limits, 2000);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kProtocolError);
}

// --- Event loop ---

TEST(EventLoopTest, PostRunsOnLoopAndStopExits) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  std::atomic<int> ran{0};
  std::thread runner([&] { loop.Run(); });
  loop.Post([&] { ran.fetch_add(1); });
  loop.Post([&] {
    ran.fetch_add(1);
    loop.Stop();
  });
  runner.join();
  EXPECT_EQ(ran.load(), 2);
}

TEST(EventLoopTest, PostedBeforeStopStillRuns) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  std::atomic<bool> ran{false};
  // Post then Stop before the loop ever runs: Run() must still execute the
  // closure on its way out — the reactor's shutdown flushes depend on it.
  loop.Post([&] { ran.store(true); });
  loop.Stop();
  loop.Run();
  EXPECT_TRUE(ran.load());
}

TEST(EventLoopTest, TimerFiresAfterDelayAndCancelSuppresses) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  std::atomic<bool> fired{false};
  std::atomic<bool> cancelled_fired{false};
  loop.Post([&] {
    uint64_t doomed = loop.AddTimer(0.01, [&] { cancelled_fired.store(true); });
    loop.CancelTimer(doomed);
    loop.AddTimer(0.02, [&] {
      fired.store(true);
      loop.Stop();
    });
  });
  std::thread runner([&] { loop.Run(); });
  runner.join();
  EXPECT_TRUE(fired.load());
  EXPECT_FALSE(cancelled_fired.load());
}

TEST(EventLoopTest, DispatchesReadableFdAndRemoveSilences) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  LoopbackPair pair = MakeLoopbackPair();
  std::atomic<int> reads{0};
  std::thread runner([&] { loop.Run(); });
  int fd = pair.server.fd();
  Socket* server = &pair.server;
  loop.Post([&, fd, server] {
    Status added = loop.Add(fd, EPOLLIN, [&, fd, server](uint32_t events) {
      EXPECT_TRUE(events & EPOLLIN);
      char buffer[64];
      auto received = server->RecvSome(buffer, sizeof(buffer));
      EXPECT_TRUE(received.ok());
      reads.fetch_add(1);
      // A handler may remove its own registration mid-callback.
      loop.Remove(fd);
      loop.Stop();
    });
    EXPECT_TRUE(added.ok()) << added.ToString();
  });
  ASSERT_TRUE(pair.client.SendAll("wake", 2000).ok());
  runner.join();
  EXPECT_EQ(reads.load(), 1);
}

// --- Retry / backoff ---

TEST(RetryTest, BackoffSequenceIsExponentialAndCapped) {
  RetryPolicy policy;
  policy.initial_backoff_s = 0.02;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 0.1;
  EXPECT_DOUBLE_EQ(BackoffSeconds(policy, 0), 0.02);
  EXPECT_DOUBLE_EQ(BackoffSeconds(policy, 1), 0.04);
  EXPECT_DOUBLE_EQ(BackoffSeconds(policy, 2), 0.08);
  EXPECT_DOUBLE_EQ(BackoffSeconds(policy, 3), 0.1);   // capped
  EXPECT_DOUBLE_EQ(BackoffSeconds(policy, 20), 0.1);  // stays capped
}

TEST(RetryTest, RetryableCodes) {
  EXPECT_TRUE(IsRetryable(UnavailableError("refused")));
  EXPECT_TRUE(IsRetryable(DeadlineExceededError("slow")));
  EXPECT_FALSE(IsRetryable(ProtocolError("bad magic")));
  EXPECT_FALSE(IsRetryable(InvalidArgumentError("nope")));
  EXPECT_FALSE(IsRetryable(Status::Ok()));
}

TEST(RetryTest, ConnectWithRetryOutlastsLateListener) {
  // Reserve a free port, release it, then bring the real listener up late —
  // the first connect attempts are refused and backoff must absorb that.
  uint16_t port;
  {
    auto probe = TcpListen(0);
    ASSERT_TRUE(probe.ok());
    port = probe->LocalPort().value_or(1);
  }
  std::thread late_listener([port] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    auto listener = TcpListen(port);
    if (!listener.ok()) {
      return;  // port raced away; the client side will fail and report
    }
    auto accepted = TcpAccept(*listener, 3000);
    (void)accepted;
  });
  RetryPolicy policy;
  policy.max_attempts = 16;
  policy.initial_backoff_s = 0.02;
  policy.max_backoff_s = 0.1;
  auto client = ConnectWithRetry(Endpoint{"127.0.0.1", port}, 1000, policy);
  late_listener.join();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
}

TEST(RetryTest, ConnectWithRetryGivesUp) {
  uint16_t dead_port;
  {
    auto probe = TcpListen(0);
    ASSERT_TRUE(probe.ok());
    dead_port = probe->LocalPort().value_or(1);
  }
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff_s = 0.001;
  size_t retries = 0;
  auto client = ConnectWithRetry(Endpoint{"127.0.0.1", dead_port}, 200, policy, &retries);
  ASSERT_FALSE(client.ok());
  // Budget exhaustion surfaces the last attempt's error, with every failed
  // try accounted for in retries_out.
  EXPECT_EQ(client.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(retries, policy.max_attempts);
}

TEST(RetryTest, JitterIsDeterministicUnderFixedSeed) {
  RetryPolicy policy;
  policy.initial_backoff_s = 0.02;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 1.0;
  policy.jitter = 0.5;
  policy.jitter_seed = 12345;
  for (size_t attempt = 0; attempt < 10; ++attempt) {
    // Same (seed, attempt) -> same sleep, bit for bit: the backoff schedule
    // is part of what makes a chaos run replayable from its seed.
    EXPECT_EQ(BackoffSeconds(policy, attempt), BackoffSeconds(policy, attempt)) << attempt;
  }
  RetryPolicy other = policy;
  other.jitter_seed = 54321;
  bool any_differs = false;
  for (size_t attempt = 0; attempt < 10 && !any_differs; ++attempt) {
    any_differs = BackoffSeconds(policy, attempt) != BackoffSeconds(other, attempt);
  }
  EXPECT_TRUE(any_differs) << "different seeds produced an identical schedule";
}

TEST(RetryTest, JitterStaysInsideBoundsAndUnderCeiling) {
  RetryPolicy policy;
  policy.initial_backoff_s = 0.02;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 0.1;
  policy.jitter = 0.5;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    policy.jitter_seed = seed;
    for (size_t attempt = 0; attempt < 12; ++attempt) {
      // The jitterless schedule, ceiling applied first: jitter only ever
      // shortens a sleep, so the ceiling still holds afterwards.
      double base = std::min(policy.max_backoff_s,
                             policy.initial_backoff_s *
                                 std::pow(policy.backoff_multiplier,
                                          static_cast<double>(attempt)));
      double jittered = BackoffSeconds(policy, attempt);
      EXPECT_LE(jittered, base) << "seed " << seed << " attempt " << attempt;
      EXPECT_GT(jittered, base * (1.0 - policy.jitter)) << "seed " << seed << " attempt "
                                                        << attempt;
      EXPECT_LE(jittered, policy.max_backoff_s);
    }
  }
  // jitter = 0 is exactly the legacy schedule.
  policy.jitter = 0.0;
  EXPECT_DOUBLE_EQ(BackoffSeconds(policy, 1), 0.04);
}

// --- Ring-membership frame extension ---

TEST(FrameTest, RingMembershipCodecRoundTrip) {
  FrameRingMembership ring;
  ring.attempt = 2;
  ring.members = 0b10110;  // survivors 1, 2, 4
  std::string bytes = EncodeRingMembership(ring);
  ASSERT_EQ(bytes.size(), kRingMembershipBytes);
  auto decoded = DecodeRingMembership(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, ring);
  // Truncated extensions are protocol errors, not parse-as-zero.
  auto truncated = DecodeRingMembership(std::string_view(bytes).substr(0, 5));
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kProtocolError);
  // attempt = 0 means "extension absent"; it must never appear on the wire.
  FrameRingMembership absent;
  absent.members = 0b11;
  auto zero = DecodeRingMembership(EncodeRingMembership(absent));
  ASSERT_FALSE(zero.ok());
  EXPECT_EQ(zero.status().code(), StatusCode::kProtocolError);
  // An empty survivor set is meaningless — a reformed ring has >= 2 peers.
  FrameRingMembership empty;
  empty.attempt = 1;
  auto none = DecodeRingMembership(EncodeRingMembership(empty));
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kProtocolError);
  // The reserved word is the extension's own versioning headroom.
  bytes[2] = 0x01;
  auto reserved = DecodeRingMembership(bytes);
  ASSERT_FALSE(reserved.ok());
  EXPECT_EQ(reserved.status().code(), StatusCode::kProtocolError);
}

TEST(FrameTest, RingMembershipRoundTripsOverSocket) {
  LoopbackPair pair = MakeLoopbackPair();
  FrameRingMembership ring;
  ring.attempt = 1;
  ring.members = 0b1011;
  ASSERT_TRUE(WriteFrame(pair.client, 11, "hop", 2000, {}, 0, {}, ring).ok());
  auto frame = ReadFrame(pair.server, FrameLimits{}, 2000);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, 11);
  EXPECT_EQ(frame->payload, "hop");
  ASSERT_TRUE(frame->ring.valid());
  EXPECT_EQ(frame->ring, ring);
  // All four extensions ride one frame, in either encoder.
  obs::TraceContext trace{0xFEEDFACE01234567ULL, 9};
  FrameSketchParams sketch;
  sketch.k = 64;
  ASSERT_TRUE(
      pair.client.SendAll(EncodeFrame(12, "all", trace, 77, sketch, ring), 2000).ok());
  auto next = ReadFrame(pair.server, FrameLimits{}, 2000);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ(next->trace.trace_id, trace.trace_id);
  EXPECT_EQ(next->request_id, 77u);
  EXPECT_EQ(next->sketch, sketch);
  EXPECT_EQ(next->ring, ring);
  // A ring-less frame right behind is unaffected (extension not counted in
  // the payload length).
  ASSERT_TRUE(WriteFrame(pair.client, 7, "plain", 2000).ok());
  auto plain = ReadFrame(pair.server, FrameLimits{}, 2000);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->payload, "plain");
  EXPECT_FALSE(plain->ring.valid());
}

// --- Hostile-input frame decoding ---

// Seeded corpus of random, truncated and bit-flipped frames thrown at the
// full read path. The decoder's contract: every malformed stream earns a
// typed error (protocol family, or the transport error for a stream that
// just ends) and never a crash, hang or over-read — under ASan in CI this
// is the memory-safety test for the wire surface.
TEST(FrameTest, HostileInputCorpusNeverCrashesOrOverreads) {
  std::mt19937_64 rng(20260808);
  FrameLimits limits;
  limits.max_payload_bytes = 4096;
  obs::TraceContext trace{0x1111222233334444ULL, 3};
  FrameSketchParams sketch;
  sketch.k = 16;
  FrameRingMembership ring;
  ring.attempt = 1;
  ring.members = 0b111;
  const std::string valid = EncodeFrame(9, "hostile corpus seed payload", trace, 42,
                                        sketch, ring);
  for (int round = 0; round < 300; ++round) {
    std::string bytes;
    const int family = round % 3;
    if (family == 0) {
      // Pure noise, arbitrary length (including zero and sub-header sizes).
      bytes.resize(rng() % 64);
      for (char& c : bytes) {
        c = static_cast<char>(rng());
      }
    } else if (family == 1) {
      // A valid frame cut off mid-stream.
      bytes = valid.substr(0, rng() % valid.size());
    } else {
      // A valid frame with one flipped bit anywhere.
      bytes = valid;
      size_t pos = rng() % bytes.size();
      bytes[pos] = static_cast<char>(bytes[pos] ^ (1u << (rng() % 8)));
    }
    LoopbackPair pair = MakeLoopbackPair();
    ASSERT_TRUE(pair.client.SendAll(bytes, 2000).ok());
    pair.client.Close();  // the stream ends here, however mangled
    auto frame = ReadFrame(pair.server, limits, 2000);
    if (frame.ok()) {
      // Only a payload-byte flip can decode: the header and every extension
      // are validated. What decodes must still be internally consistent.
      ASSERT_EQ(family, 2) << "round " << round << ": garbage decoded as a frame";
      EXPECT_LE(frame->payload.size(), limits.max_payload_bytes);
    } else {
      StatusCode code = frame.status().code();
      EXPECT_TRUE(code == StatusCode::kProtocolError || code == StatusCode::kUnavailable ||
                  code == StatusCode::kDeadlineExceeded)
          << "round " << round << ": " << frame.status().ToString();
    }
  }
}

}  // namespace
}  // namespace net
}  // namespace indaas
