// Unit tests for src/obs/: metrics registry, tracing spans, exporters.
//
// The registry and recorder are process-wide singletons, so every test uses
// its own instrument names and resets the recorder it touches.

#include <gtest/gtest.h>
#include <unistd.h>

#include <csignal>
#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/propagate.h"
#include "src/obs/trace.h"
#include "src/obs/trace_merge.h"
#include "src/util/file.h"
#include "src/util/logging.h"

namespace indaas {
namespace obs {
namespace {

// --- Minimal JSON syntax validator (recursive descent) ---

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (Peek() != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // closing '"'
    return true;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) {
      return false;
    }
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// --- Counters ---

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter* counter = MetricsRegistry::Global().GetCounter("test.counter.concurrent");
  counter->Reset();
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter->Increment();
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
}

TEST(CounterTest, ScrapeWhileWritingNeverExceedsFinalTotal) {
  Counter* counter = MetricsRegistry::Global().GetCounter("test.counter.scrape");
  counter->Reset();
  constexpr uint64_t kTotal = 200000;
  std::thread writer([counter] {
    for (uint64_t i = 0; i < kTotal; ++i) {
      counter->Add(1);
    }
  });
  uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    uint64_t now = counter->Value();
    EXPECT_LE(last, now);  // monotone under a single writer
    EXPECT_LE(now, kTotal);
    last = now;
  }
  writer.join();
  EXPECT_EQ(counter->Value(), kTotal);
}

TEST(RegistryTest, PointersStableAcrossLookupsAndReset) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* first = registry.GetCounter("test.registry.stable");
  first->Add(7);
  Counter* second = registry.GetCounter("test.registry.stable");
  EXPECT_EQ(first, second);
  registry.Reset();
  EXPECT_EQ(first->Value(), 0u);  // zeroed in place, pointer still live
  first->Add(3);
  EXPECT_EQ(second->Value(), 3u);
}

// --- Gauges ---

TEST(GaugeTest, TracksValueAndHighWaterMark) {
  Gauge* gauge = MetricsRegistry::Global().GetGauge("test.gauge.basic");
  gauge->Reset();
  gauge->Set(5);
  gauge->Add(3);
  EXPECT_EQ(gauge->Value(), 8);
  gauge->Add(-6);
  EXPECT_EQ(gauge->Value(), 2);
  EXPECT_EQ(gauge->Max(), 8);  // peak survives the drop
}

// --- Histograms ---

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram* hist =
      MetricsRegistry::Global().GetHistogram("test.hist.bounds", {1.0, 2.0, 4.0});
  hist->Reset();
  hist->Record(0.5);  // (-inf, 1]
  hist->Record(1.0);  // (-inf, 1]  -- bounds are inclusive
  hist->Record(1.5);  // (1, 2]
  hist->Record(2.0);  // (1, 2]
  hist->Record(4.0);  // (2, 4]
  hist->Record(5.0);  // overflow
  Histogram::Snapshot snap = hist->Scrape();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 6u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 5.0);
}

TEST(HistogramTest, ConcurrentRecordsSumExactly) {
  Histogram* hist =
      MetricsRegistry::Global().GetHistogram("test.hist.concurrent", {10.0, 100.0});
  hist->Reset();
  constexpr size_t kThreads = 4;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([hist] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        hist->Record(static_cast<double>(i % 200));
      }
    });
  }
  // Scrape concurrently with the writers; totals must never go backwards.
  uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    uint64_t now = hist->Scrape().count;
    EXPECT_LE(last, now);
    last = now;
  }
  for (auto& worker : workers) {
    worker.join();
  }
  Histogram::Snapshot snap = hist->Scrape();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.counts) {
    bucket_total += c;
  }
  EXPECT_EQ(bucket_total, snap.count);
}

// --- Spans ---

TEST(TraceTest, DisabledRecorderRecordsNothing) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.SetEnabled(false);
  recorder.Reset(64);
  {
    INDAAS_TRACE_SPAN_NAMED(span, "off");
    EXPECT_FALSE(span.recording());
  }
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(TraceTest, NestedSpansFormParentChain) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Reset(64);
  recorder.SetEnabled(true);
  {
    INDAAS_TRACE_SPAN_NAMED(outer, "outer");
    outer.Annotate("key", "value");
    {
      INDAAS_TRACE_SPAN("middle");
      { INDAAS_TRACE_SPAN("inner"); }
    }
  }
  recorder.SetEnabled(false);
  std::vector<SpanRecord> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Snapshot is ordered by claim (start) order: outer, middle, inner.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].name, "middle");
  EXPECT_EQ(spans[2].name, "inner");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[2].parent, spans[1].id);
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].depth, 2u);
  EXPECT_EQ(spans[0].tid, spans[2].tid);
  // Children are contained in the parent's [start, start+dur] window.
  EXPECT_GE(spans[1].start_us, spans[0].start_us);
  EXPECT_LE(spans[1].start_us + spans[1].dur_us, spans[0].start_us + spans[0].dur_us);
  ASSERT_EQ(spans[0].annotations.size(), 1u);
  EXPECT_EQ(spans[0].annotations[0].first, "key");
  EXPECT_EQ(spans[0].annotations[0].second, "value");
}

TEST(TraceTest, SpansOnDifferentThreadsGetDifferentTids) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Reset(64);
  recorder.SetEnabled(true);
  {
    INDAAS_TRACE_SPAN("main-root");
    std::thread worker([] { INDAAS_TRACE_SPAN("worker-root"); });
    worker.join();
  }
  recorder.SetEnabled(false);
  std::vector<SpanRecord> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].tid, spans[1].tid);
  // A root on another thread has no parent even while main's span is open.
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].parent, -1);
}

TEST(TraceTest, FullRingDropsInsteadOfWrapping) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Reset(4);
  recorder.SetEnabled(true);
  for (int i = 0; i < 10; ++i) {
    INDAAS_TRACE_SPAN("burst");
  }
  recorder.SetEnabled(false);
  EXPECT_EQ(recorder.Snapshot().size(), 4u);
  EXPECT_EQ(recorder.dropped(), 6u);
  recorder.Reset(64);
  EXPECT_EQ(recorder.dropped(), 0u);
}

// --- Exporters ---

TEST(ExportTest, StageAggregationGroupsByName) {
  std::vector<SpanRecord> spans;
  SpanRecord a;
  a.name = "build";
  a.dur_us = 100;
  SpanRecord b;
  b.name = "enumerate";
  b.dur_us = 300;
  SpanRecord c;
  c.name = "build";
  c.dur_us = 50;
  spans = {a, b, c};
  std::vector<StageStat> stages = AggregateStages(spans);
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].name, "build");  // first-occurrence order
  EXPECT_EQ(stages[0].count, 2u);
  EXPECT_EQ(stages[0].total_us, 150u);
  EXPECT_EQ(stages[0].min_us, 50u);
  EXPECT_EQ(stages[0].max_us, 100u);
  EXPECT_EQ(stages[1].name, "enumerate");
  EXPECT_EQ(stages[1].count, 1u);
}

TEST(ExportTest, MetricsJsonIsValidAndContainsInstruments) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  registry.GetCounter("test.export.counter")->Add(42);
  registry.GetGauge("test.export.gauge")->Set(-3);
  registry.GetHistogram("test.export.hist", {1.0, 10.0})->Record(5.0);
  std::vector<StageStat> stages = {{"stage.one", 2, 1500, 500, 1000}};
  std::string json = MetricsToJson(registry.Snapshot(), stages);
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"test.export.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.export.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test.export.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"stage.one\""), std::string::npos);
}

TEST(ExportTest, ChromeTraceIsValidJsonWithNestedSpans) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Reset(64);
  recorder.SetEnabled(true);
  {
    INDAAS_TRACE_SPAN_NAMED(outer, "sia.build");
    outer.Annotate("nodes", "17");
    outer.Annotate("quote", "needs \"escaping\"\n");
    INDAAS_TRACE_SPAN("sia.enumerate");
  }
  recorder.SetEnabled(false);
  std::vector<SpanRecord> spans = recorder.Snapshot();
  std::string json = SpansToChromeTrace(spans);
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("sia.build"), std::string::npos);
  EXPECT_NE(json.find("sia.enumerate"), std::string::npos);
  EXPECT_NE(json.find("\\\"escaping\\\""), std::string::npos);  // escaped quote
}

TEST(ExportTest, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  std::string escaped = JsonEscape(std::string("a\x01z"));
  EXPECT_NE(escaped.find("\\u0001"), std::string::npos);
}

TEST(ExportTest, RenderersProduceNonEmptyText) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.render.counter")->Add(1);
  std::string text = RenderMetricsText(registry.Snapshot());
  EXPECT_NE(text.find("test.render.counter"), std::string::npos);
  std::vector<StageStat> stages = {{"stage", 1, 1000, 1000, 1000}};
  std::string table = RenderStageTable(stages);
  EXPECT_NE(table.find("stage"), std::string::npos);
}

// --- Trace-context propagation ---

TEST(PropagateTest, ScopedContextInstallsRestoresAndClears) {
  EXPECT_FALSE(CurrentTraceContext().valid());
  {
    ScopedTraceContext outer(TraceContext{111, 5});
    EXPECT_EQ(CurrentTraceContext().trace_id, 111u);
    EXPECT_EQ(CurrentTraceContext().parent_span_id, 5u);
    {
      ScopedTraceContext inner(TraceContext{222, 9});
      EXPECT_EQ(CurrentTraceContext().trace_id, 222u);
    }
    // Inner scope restores the outer context.
    EXPECT_EQ(CurrentTraceContext().trace_id, 111u);
    {
      // Installing an invalid context deliberately clears the slot (pool
      // threads adopt "no identity" for traceless requests).
      ScopedTraceContext cleared(TraceContext{});
      EXPECT_FALSE(CurrentTraceContext().valid());
    }
    EXPECT_EQ(CurrentTraceContext().trace_id, 111u);
  }
  EXPECT_FALSE(CurrentTraceContext().valid());
}

TEST(PropagateTest, WireSpanIdMapsNoSpanToZero) {
  EXPECT_EQ(WireSpanId(-1), 0u);
  EXPECT_EQ(WireSpanId(0), 1u);
  EXPECT_EQ(WireSpanId(41), 42u);
}

TEST(PropagateTest, TraceIdGenerators) {
  // Derived ids are deterministic in the seed (ring peers agree without
  // coordination), never zero, and spread across seeds.
  EXPECT_EQ(DeriveTraceId(42), DeriveTraceId(42));
  EXPECT_NE(DeriveTraceId(42), DeriveTraceId(43));
  std::set<uint64_t> derived;
  for (uint64_t seed = 0; seed < 64; ++seed) {
    uint64_t id = DeriveTraceId(seed);
    EXPECT_NE(id, 0u);
    derived.insert(id);
  }
  EXPECT_EQ(derived.size(), 64u);
  // Fresh ids are nonzero and distinct call to call.
  uint64_t a = NewTraceId();
  uint64_t b = NewTraceId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(TraceTest, SpansCaptureAmbientTraceContext) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Reset();
  recorder.SetEnabled(true);
  {
    ScopedTraceContext ambient(TraceContext{777, 3});
    INDAAS_TRACE_SPAN_NAMED(root, "prop.root");
    { INDAAS_TRACE_SPAN("prop.child"); }
  }
  { INDAAS_TRACE_SPAN("prop.local"); }
  recorder.SetEnabled(false);
  std::map<std::string, SpanRecord> by_name;
  for (const SpanRecord& span : recorder.Snapshot()) {
    by_name[span.name] = span;
  }
  ASSERT_EQ(by_name.count("prop.root"), 1u);
  ASSERT_EQ(by_name.count("prop.child"), 1u);
  ASSERT_EQ(by_name.count("prop.local"), 1u);
  // The root adopts both halves of the ambient context...
  EXPECT_EQ(by_name["prop.root"].trace_id, 777u);
  EXPECT_EQ(by_name["prop.root"].remote_parent, 3u);
  // ...the nested span inherits only the trace id (its parent is local)...
  EXPECT_EQ(by_name["prop.child"].trace_id, 777u);
  EXPECT_EQ(by_name["prop.child"].remote_parent, 0u);
  EXPECT_EQ(by_name["prop.child"].parent, by_name["prop.root"].id);
  // ...and spans outside any context stay process-local.
  EXPECT_EQ(by_name["prop.local"].trace_id, 0u);
  EXPECT_EQ(by_name["prop.local"].remote_parent, 0u);
}

// --- Prometheus exposition ---

// Splits exposition text into lines, dropping the trailing empty line.
std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

TEST(ExportTest, PrometheusExpositionIsWellFormed) {
  MetricsSnapshot snapshot;
  snapshot.counters = {{"net.bytes_sent", 4096}, {"svc.rpcs.Ping", 7}};
  snapshot.gauges = {{"svc.connections_active", 2, 6}};
  Histogram::Snapshot h;
  h.name = "svc.rpc_seconds.Ping";
  h.bounds = {0.001, 0.01};
  h.counts = {3, 2, 1};
  h.count = 6;
  h.sum = 0.05;
  snapshot.histograms = {h};
  const std::string text = MetricsToPrometheus(snapshot);

  std::map<std::string, int> type_lines;      // family -> # TYPE count
  std::map<std::string, int> sample_series;   // name{labels} -> count
  for (const std::string& line : Lines(text)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string family, type;
      fields >> family >> type;
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram") << line;
      ++type_lines[family];
      continue;
    }
    ASSERT_NE(line[0], '#') << "unexpected comment: " << line;
    // Sample line: everything before the last space is name{labels}.
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string series = line.substr(0, space);
    ++sample_series[series];
    // Metric names must be prefixed and sanitized to the Prometheus charset.
    EXPECT_EQ(series.rfind("indaas_", 0), 0u) << series;
    for (char c : series.substr(0, series.find('{'))) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':')
          << series;
    }
  }
  // Exactly one # TYPE per family, no duplicate sample series.
  for (const auto& [family, count] : type_lines) {
    EXPECT_EQ(count, 1) << family;
  }
  for (const auto& [series, count] : sample_series) {
    EXPECT_EQ(count, 1) << series;
  }
  // Spot-check the histogram rendering: per-RPC series fold into the labeled
  // indaas_svc_rpc_seconds family with cumulative buckets ending at +Inf ==
  // total count, plus labeled _sum and _count samples.
  EXPECT_EQ(type_lines.count("indaas_svc_rpc_seconds"), 1u);
  EXPECT_NE(text.find("indaas_svc_rpc_seconds_bucket{rpc=\"Ping\",le=\"+Inf\"} 6"),
            std::string::npos);
  EXPECT_NE(text.find("indaas_svc_rpc_seconds_count{rpc=\"Ping\"} 6"), std::string::npos);
  EXPECT_NE(text.find("indaas_net_bytes_sent 4096"), std::string::npos);
  // The gauge's high-water mark becomes its own family.
  EXPECT_EQ(type_lines.count("indaas_svc_connections_active"), 1u);
  EXPECT_EQ(type_lines.count("indaas_svc_connections_active_max"), 1u);
}

// --- Trace merge ---

TEST(TraceMergeTest, ParsesChromeTraceBackIntoEvents) {
  SpanRecord root;
  root.name = "svc.rpc";
  root.start_us = 1000;
  root.dur_us = 400;
  root.tid = 0;
  root.id = 0;
  root.parent = -1;
  root.trace_id = 0xDEADBEEFCAFEF00DULL;  // only representable as a string in JSON
  root.remote_parent = 7;
  root.annotations = {{"type", "Ping"}};
  SpanRecord child = root;
  child.name = "sia.rank";
  child.id = 1;
  child.parent = 0;
  child.depth = 1;
  child.remote_parent = 0;
  child.annotations.clear();
  const std::string json = SpansToChromeTrace({root, child});

  auto parsed = ParseChromeTrace(json, "a.json");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->events.size(), 2u);
  const MergeEvent& event = parsed->events[0];
  EXPECT_EQ(event.name, "svc.rpc");
  EXPECT_EQ(event.ts, 1000u);
  EXPECT_EQ(event.dur, 400u);
  EXPECT_EQ(event.span_id, 0);
  EXPECT_EQ(event.trace_id, root.trace_id);  // exact, not rounded via double
  EXPECT_EQ(event.remote_parent, 7u);
  ASSERT_FALSE(event.args.empty());
  const MergeEvent& nested = parsed->events[1];
  EXPECT_EQ(nested.parent, 0);
  EXPECT_EQ(nested.remote_parent, 0u);
  EXPECT_FALSE(ParseChromeTrace("not json", "bad").ok());
  EXPECT_FALSE(ParseChromeTrace("{\"other\":1}", "bad").ok());
}

// A client/server span pair over a known artificial skew: server clock runs
// 500000 µs ahead of the client's.
std::vector<ProcessTrace> SkewedRpcTraces() {
  ProcessTrace client;
  client.source = "client.json";
  MergeEvent rpc;
  rpc.name = "svc.client.rpc";
  rpc.ts = 1000;
  rpc.dur = 400;  // midpoint 1200
  rpc.span_id = 4;
  rpc.trace_id = 99;
  client.events.push_back(rpc);
  ProcessTrace server;
  server.source = "server.json";
  MergeEvent handler;
  handler.name = "svc.rpc";
  handler.ts = 501000;
  handler.dur = 200;  // midpoint 501100
  handler.trace_id = 99;
  handler.remote_parent = 5;  // wire id of client span 4
  server.events.push_back(handler);
  return {client, server};
}

TEST(TraceMergeTest, RecoversClockOffsetFromRpcPair) {
  auto offsets = EstimateClockOffsets(SkewedRpcTraces());
  ASSERT_TRUE(offsets.ok());
  ASSERT_EQ(offsets->size(), 2u);
  EXPECT_EQ((*offsets)[0], 0);
  // Midpoint alignment: 1200 - 501100.
  EXPECT_EQ((*offsets)[1], -499900);
}

TEST(TraceMergeTest, RecoversClockOffsetFromRingHops) {
  // Two ring peers whose same-xseq exchange hops end simultaneously; peer
  // 1's clock reads 250 µs later.
  ProcessTrace peer0, peer1;
  peer0.source = "peer0.json";
  peer1.source = "peer1.json";
  for (int xseq = 0; xseq < 3; ++xseq) {
    MergeEvent hop;
    hop.name = "pia.ring.exchange";
    hop.trace_id = 1234;
    hop.args = {{"xseq", std::to_string(xseq)}};
    hop.ts = 1000 + 100 * static_cast<uint64_t>(xseq);
    hop.dur = 50;
    peer0.events.push_back(hop);
    hop.ts += 250;
    peer1.events.push_back(hop);
  }
  auto offsets = EstimateClockOffsets({peer0, peer1});
  ASSERT_TRUE(offsets.ok());
  EXPECT_EQ((*offsets)[0], 0);
  EXPECT_EQ((*offsets)[1], -250);
  // A third file with no cross-process evidence keeps its own clock.
  ProcessTrace stranger;
  stranger.source = "stranger.json";
  auto with_stranger = EstimateClockOffsets({peer0, peer1, stranger});
  ASSERT_TRUE(with_stranger.ok());
  EXPECT_EQ((*with_stranger)[2], 0);
}

// Files that share no pairing evidence must keep offset 0 — never borrow an
// offset from an unrelated pairing. A client trace whose server-side spans
// were lost (crashed server, missing file) is the canonical case.
TEST(TraceMergeTest, MissingServerSpansLeaveOffsetsAtZero) {
  ProcessTrace client;
  client.source = "client.json";
  MergeEvent rpc;
  rpc.name = "svc.client.rpc";
  rpc.ts = 1000;
  rpc.dur = 400;
  rpc.span_id = 4;
  rpc.trace_id = 99;
  client.events.push_back(rpc);
  ProcessTrace server;  // the server file exists but has no svc.rpc spans
  server.source = "server.json";
  MergeEvent unrelated;
  unrelated.name = "sia.rank";
  unrelated.ts = 777;
  unrelated.dur = 10;
  server.events.push_back(unrelated);

  auto offsets = EstimateClockOffsets({client, server});
  ASSERT_TRUE(offsets.ok());
  EXPECT_EQ((*offsets)[0], 0);
  EXPECT_EQ((*offsets)[1], 0);
  // The merge itself still succeeds (unaligned, but valid).
  auto merged = MergeChromeTraces({client, server});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(JsonValidator(*merged).Valid());
}

TEST(TraceMergeTest, SingleProcessTraceMergesCleanly) {
  ProcessTrace only;
  only.source = "only.json";
  MergeEvent span;
  span.name = "svc.client.rpc";
  span.ts = 5000;
  span.dur = 100;
  span.span_id = 1;
  span.trace_id = 42;
  only.events.push_back(span);
  auto offsets = EstimateClockOffsets({only});
  ASSERT_TRUE(offsets.ok());
  ASSERT_EQ(offsets->size(), 1u);
  EXPECT_EQ((*offsets)[0], 0);
  auto merged = MergeChromeTraces({only});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(JsonValidator(*merged).Valid());
  auto reparsed = ParseChromeTrace(*merged, "merged.json");
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->events.size(), 1u);
  EXPECT_EQ(reparsed->events[0].ts, 0u);  // shifted so the timeline starts at 0
}

// Duplicate span ids (the same file passed twice, or id reuse) make a
// pairing key ambiguous; the estimator must drop it rather than cross-match
// every copy and poison the offset mean.
TEST(TraceMergeTest, DuplicateSpanIdsAreDroppedNotMispaired) {
  ProcessTrace client;
  client.source = "client.json";
  MergeEvent rpc;
  rpc.name = "svc.client.rpc";
  rpc.ts = 1000;
  rpc.dur = 400;
  rpc.span_id = 4;
  rpc.trace_id = 99;
  client.events.push_back(rpc);
  rpc.ts = 90000;  // a second client span claiming the SAME identity
  client.events.push_back(rpc);
  ProcessTrace server;
  server.source = "server.json";
  MergeEvent handler;
  handler.name = "svc.rpc";
  handler.ts = 501000;
  handler.dur = 200;
  handler.trace_id = 99;
  handler.remote_parent = 5;
  server.events.push_back(handler);

  auto offsets = EstimateClockOffsets({client, server});
  ASSERT_TRUE(offsets.ok());
  // Ambiguous: which client span caused the server span is unknowable, so
  // no estimate is produced and the server file keeps its own clock.
  EXPECT_EQ((*offsets)[1], 0);

  // Duplicated *server* spans are equally ambiguous.
  ProcessTrace client2;
  client2.source = "client2.json";
  MergeEvent rpc2;
  rpc2.name = "svc.client.rpc";
  rpc2.ts = 1000;
  rpc2.dur = 400;
  rpc2.span_id = 4;
  rpc2.trace_id = 99;
  client2.events.push_back(rpc2);
  ProcessTrace server2;
  server2.source = "server2.json";
  server2.events.push_back(handler);
  server2.events.push_back(handler);  // duplicate claims the same parent
  auto offsets2 = EstimateClockOffsets({client2, server2});
  ASSERT_TRUE(offsets2.ok());
  EXPECT_EQ((*offsets2)[1], 0);

  // An unambiguous pair alongside the duplicates still anchors the file —
  // ambiguity degrades coverage, not unrelated evidence.
  MergeEvent clean_client = rpc;
  clean_client.span_id = 10;
  clean_client.ts = 2000;
  clean_client.dur = 400;  // midpoint 2200
  client.events.push_back(clean_client);
  MergeEvent clean_server = handler;
  clean_server.remote_parent = 11;
  clean_server.ts = 502000;
  clean_server.dur = 200;  // midpoint 502100
  server.events.push_back(clean_server);
  auto offsets3 = EstimateClockOffsets({client, server});
  ASSERT_TRUE(offsets3.ok());
  EXPECT_EQ((*offsets3)[1], 2200 - 502100);
}

TEST(TraceMergeTest, MergedTraceIsAlignedValidJson) {
  auto merged = MergeChromeTraces(SkewedRpcTraces());
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(JsonValidator(*merged).Valid()) << *merged;
  // Each input file becomes its own pid with a process_name metadata row and
  // its estimated offset recorded.
  EXPECT_NE(merged->find("client.json"), std::string::npos);
  EXPECT_NE(merged->find("server.json"), std::string::npos);
  EXPECT_NE(merged->find("process_name"), std::string::npos);
  EXPECT_NE(merged->find("clock_offset_us"), std::string::npos);
  // The timeline is shifted so the earliest event starts at 0, and the
  // server span lands inside the client span (1100..1300 vs 1000..1400
  // before the common shift of -1000).
  auto reparsed = ParseChromeTrace(*merged, "merged.json");
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->events.size(), 2u);
  uint64_t client_ts = 0, client_dur = 0, server_ts = 0, server_dur = 0;
  for (const MergeEvent& event : reparsed->events) {
    if (event.name == "svc.client.rpc") {
      client_ts = event.ts;
      client_dur = event.dur;
    } else if (event.name == "svc.rpc") {
      server_ts = event.ts;
      server_dur = event.dur;
    }
  }
  EXPECT_EQ(client_ts, 0u);
  EXPECT_GE(server_ts, client_ts);
  EXPECT_LE(server_ts + server_dur, client_ts + client_dur);
}

// --- Structured logging ---

// Swaps in a capture sink for the test's lifetime and restores the default
// (and the default Info threshold) on the way out.
class CapturedLogs {
 public:
  CapturedLogs() : sink_(std::make_shared<CaptureLogSink>()) {
    Logger::Global().SetSink(sink_);
  }
  ~CapturedLogs() {
    Logger::Global().SetSink(nullptr);
    Logger::Global().SetMinSeverity(LogSeverity::kInfo);
  }
  std::vector<LogRecord> Take() { return sink_->Take(); }

 private:
  std::shared_ptr<CaptureLogSink> sink_;
};

TEST(LogTest, SeverityGatesBeforeEmission) {
  CapturedLogs capture;
  Logger::Global().SetMinSeverity(LogSeverity::kWarn);
  INDAAS_SLOG(Info, "test.dropped").Kv("k", 1);
  INDAAS_SLOG(Warn, "test.kept").Kv("conn", 7u).Kv("why", "slow reader");
  std::vector<LogRecord> records = capture.Take();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].event, "test.kept");
  EXPECT_EQ(records[0].severity, LogSeverity::kWarn);
  ASSERT_EQ(records[0].fields.size(), 2u);
  EXPECT_EQ(records[0].fields[0].key, "conn");
  EXPECT_EQ(records[0].fields[0].value, "7");
  EXPECT_TRUE(records[0].fields[0].is_number);
  EXPECT_EQ(records[0].fields[1].value, "slow reader");
  EXPECT_FALSE(records[0].fields[1].is_number);
  EXPECT_GT(records[0].line, 0);
}

TEST(LogTest, RecordsCarryAmbientTraceContext) {
  CapturedLogs capture;
  {
    TraceContext context;
    context.trace_id = 0xABCDEF0123456789ULL;
    ScopedTraceContext scoped(context);
    INDAAS_SLOG(Info, "test.traced");
  }
  INDAAS_SLOG(Info, "test.untraced");
  std::vector<LogRecord> records = capture.Take();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].trace_id, 0xABCDEF0123456789ULL);
  EXPECT_EQ(records[1].trace_id, 0u);
}

TEST(LogTest, JsonSinkRendersTypedFields) {
  LogRecord record;
  record.severity = LogSeverity::kWarn;
  record.t_us = 123;
  record.wall_us = 456;
  record.tid = 2;
  record.trace_id = 18446744073709551615ULL;  // u64 max: must stay a string
  record.file = "dir/server.cc";
  record.line = 503;
  record.event = "svc.slow_reader_drop";
  record.suppressed = 12;
  record.fields = {{"conn", "7", true}, {"note", "a \"quoted\" value", false}};
  EXPECT_EQ(JsonLogSink::Render(record),
            "{\"sev\":\"warn\",\"t_us\":123,\"wall_us\":456,"
            "\"event\":\"svc.slow_reader_drop\",\"tid\":2,"
            "\"trace_id\":\"18446744073709551615\",\"src\":\"server.cc:503\","
            "\"suppressed\":12,\"kv\":{\"conn\":7,\"note\":\"a \\\"quoted\\\" value\"}}");
}

TEST(LogTest, RateLimiterAdmitsBudgetPerWindowAndCountsSuppressed) {
  LogSite site;
  const uint64_t t0 = 10'000'000;
  // Budget ceil(2.0) = 2 per one-second window.
  EXPECT_TRUE(site.Admit(2.0, t0));
  EXPECT_TRUE(site.Admit(2.0, t0 + 1000));
  EXPECT_FALSE(site.Admit(2.0, t0 + 2000));
  EXPECT_FALSE(site.Admit(2.0, t0 + 3000));
  // The window rolls over after one second; the next admit carries the
  // suppressed count.
  EXPECT_TRUE(site.Admit(2.0, t0 + 1'000'001));
  EXPECT_EQ(site.TakeSuppressed(), 2u);
  EXPECT_EQ(site.TakeSuppressed(), 0u);  // reset on take
  // per_sec <= 0 always suppresses.
  LogSite never;
  EXPECT_FALSE(never.Admit(0.0, t0));
  EXPECT_EQ(never.TakeSuppressed(), 1u);
}

TEST(LogTest, LegacyStreamLoggingRoutesThroughStructuredLogger) {
  CapturedLogs capture;
  INDAAS_LOG(Warning) << "legacy " << 42;
  std::vector<LogRecord> records = capture.Take();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].severity, LogSeverity::kWarn);
  ASSERT_EQ(records[0].fields.size(), 1u);
  EXPECT_EQ(records[0].fields[0].key, "msg");
  EXPECT_EQ(records[0].fields[0].value, "legacy 42");
}

// --- Flight recorder ---

TEST(FlightRecorderTest, RecordedEventsAppearInSnapshotInOrder) {
  FlightRecorder& recorder = FlightRecorder::Global();
  const uint64_t marker = 0x51A51A00u;
  recorder.Record(FlightEventType::kAccept, marker, 1, 0, 0);
  recorder.Record(FlightEventType::kRpcBegin, marker, 2, 5, 777);
  recorder.Record(FlightEventType::kRpcEnd, marker, 3, 5, 777);
  std::vector<FlightEvent> events = recorder.Snapshot();
  std::vector<FlightEvent> mine;
  for (const FlightEvent& e : events) {
    if (e.a == marker) mine.push_back(e);
  }
  ASSERT_EQ(mine.size(), 3u);
  EXPECT_EQ(mine[0].type, FlightEventType::kAccept);
  EXPECT_EQ(mine[1].type, FlightEventType::kRpcBegin);
  EXPECT_EQ(mine[1].code, 5);
  EXPECT_EQ(mine[1].trace_id, 777u);
  EXPECT_EQ(mine[2].type, FlightEventType::kRpcEnd);
  EXPECT_LE(mine[0].t_us, mine[1].t_us);
  EXPECT_LE(mine[1].t_us, mine[2].t_us);
  EXPECT_GT(mine[0].tid + 1, 0u);  // a real dense thread id was stamped
}

TEST(FlightRecorderTest, DisabledRecorderRecordsNothing) {
  FlightRecorder& recorder = FlightRecorder::Global();
  const uint64_t marker = 0xD15AB1EDu;
  recorder.SetEnabled(false);
  recorder.Record(FlightEventType::kShed, marker, 0, 0, 0);
  recorder.SetEnabled(true);
  for (const FlightEvent& e : recorder.Snapshot()) {
    EXPECT_NE(e.a, marker);
  }
}

TEST(FlightRecorderTest, RingWrapsKeepingTheLatestEvents) {
  FlightRecorder& recorder = FlightRecorder::Global();
  const uint64_t base = 0xFEED0000u;
  const size_t total = FlightRecorder::kRingCapacity + 64;
  for (size_t i = 0; i < total; ++i) {
    recorder.Record(FlightEventType::kLoopLag, base + i, i, 0, 0);
  }
  std::vector<FlightEvent> events = recorder.Snapshot();
  size_t mine = 0;
  bool saw_first = false, saw_last = false;
  for (const FlightEvent& e : events) {
    if (e.a >= base && e.a < base + total) {
      ++mine;
      if (e.a == base) saw_first = true;
      if (e.a == base + total - 1) saw_last = true;
    }
  }
  EXPECT_LE(mine, FlightRecorder::kRingCapacity);
  EXPECT_GE(mine, FlightRecorder::kRingCapacity - 64);  // most of the ring is ours
  EXPECT_TRUE(saw_last);    // newest survives
  EXPECT_FALSE(saw_first);  // oldest was overwritten
}

TEST(FlightRecorderTest, DumpTextRoundTripsThroughParse) {
  FlightRecorder& recorder = FlightRecorder::Global();
  const uint64_t marker = 0xCAFE0001u;
  recorder.Record(FlightEventType::kReadDeadline, marker, 10000, 3, 909);
  std::string dump = recorder.DumpText();
  EXPECT_NE(dump.find("# indaas-flight-recorder v1"), std::string::npos);
  std::vector<FlightEvent> parsed;
  size_t n = FlightRecorder::ParseDumpText(dump, &parsed);
  EXPECT_EQ(n, parsed.size());
  bool found = false;
  for (const FlightEvent& e : parsed) {
    if (e.a == marker) {
      found = true;
      EXPECT_EQ(e.type, FlightEventType::kReadDeadline);
      EXPECT_EQ(e.b, 10000u);
      EXPECT_EQ(e.code, 3);
      EXPECT_EQ(e.trace_id, 909u);
    }
  }
  EXPECT_TRUE(found);
  // Garbage lines are skipped, not fatal.
  std::vector<FlightEvent> partial;
  EXPECT_EQ(FlightRecorder::ParseDumpText("# header\nnot numbers\n1 2 3\n", &partial), 0u);
}

TEST(FlightRecorderTest, ConcurrentWritersSnapshotSafely) {
  FlightRecorder& recorder = FlightRecorder::Global();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&recorder, &stop, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        recorder.Record(FlightEventType::kRpcBegin, 0xBEEF0000u + t, i++, 1, 0);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    std::vector<FlightEvent> events = recorder.Snapshot();
    // Sorted by timestamp across rings.
    for (size_t j = 1; j < events.size(); ++j) {
      EXPECT_LE(events[j - 1].t_us, events[j].t_us);
    }
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
}

TEST(FlightRecorderTest, Sigusr2DumpsToFileAndRoundTrips) {
  FlightRecorder& recorder = FlightRecorder::Global();
  const std::string path =
      testing::TempDir() + "indaas_flight_test_" + std::to_string(::getpid()) + ".dump";
  std::remove(path.c_str());
  InstallFlightRecorderSignalHandlers(path);
  const uint64_t marker = 0x51697512u;  // "SIGUSR2"-ish
  recorder.Record(FlightEventType::kConnClose, marker, 128, 0, 0);
  ASSERT_EQ(::raise(SIGUSR2), 0);
  auto text = ReadFile(path);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  std::vector<FlightEvent> parsed;
  ASSERT_GT(FlightRecorder::ParseDumpText(*text, &parsed), 0u);
  bool found_marker = false, found_dump_event = false;
  for (const FlightEvent& e : parsed) {
    if (e.a == marker && e.type == FlightEventType::kConnClose) found_marker = true;
    if (e.type == FlightEventType::kDump) found_dump_event = true;
  }
  EXPECT_TRUE(found_marker);
  EXPECT_TRUE(found_dump_event);  // the dump marks its own trigger point
  std::remove(path.c_str());
}

// --- Tail sampler ---

TailSample MakeSample(double total_s, TailOutcome outcome, bool ok, uint64_t trace_id) {
  TailSample sample;
  sample.trace_id = trace_id;
  sample.rpc_type = 1;
  sample.outcome = outcome;
  sample.ok = ok;
  sample.total_s = total_s;
  sample.stages.Add(RpcStage::kRead, total_s / 2);
  sample.stages.Add(RpcStage::kCompute, total_s / 2);
  return sample;
}

TEST(TailSamplerTest, KeepsSlowShedAndErroredButNotFastSuccesses) {
  TailSampler& sampler = TailSampler::Global();
  sampler.Configure(0.050);
  EXPECT_FALSE(sampler.Offer(MakeSample(0.001, TailOutcome::kSlow, true, 1)));  // fast OK
  EXPECT_TRUE(sampler.Offer(MakeSample(0.200, TailOutcome::kSlow, true, 2)));   // slow OK
  EXPECT_TRUE(sampler.Offer(MakeSample(0.001, TailOutcome::kError, false, 3))); // fast error
  EXPECT_TRUE(sampler.Offer(MakeSample(0.0005, TailOutcome::kShed, false, 4))); // shed
  std::vector<TailSample> kept = sampler.Snapshot();
  ASSERT_EQ(kept.size(), 3u);
  for (const TailSample& s : kept) {
    EXPECT_NE(s.trace_id, 1u);
    EXPECT_GT(s.stages.total(), 0.0);  // full stage breakdown retained
  }
  // Threshold <= 0 disables the slowness criterion entirely.
  sampler.Configure(0.0);
  EXPECT_FALSE(sampler.Offer(MakeSample(10.0, TailOutcome::kSlow, true, 5)));
  EXPECT_TRUE(sampler.Offer(MakeSample(0.001, TailOutcome::kError, false, 6)));
  sampler.Configure(0.100);  // restore the default for other tests
}

TEST(TailSamplerTest, TopSlowestSortsAndCapacityEvictsOldest) {
  TailSampler& sampler = TailSampler::Global();
  sampler.Configure(0.001, 4);
  for (int i = 1; i <= 6; ++i) {
    sampler.Offer(MakeSample(0.010 * i, TailOutcome::kSlow, true, 100 + i));
  }
  std::vector<TailSample> kept = sampler.Snapshot();
  ASSERT_EQ(kept.size(), 4u);  // capacity bound: the two oldest evicted
  EXPECT_EQ(kept.front().trace_id, 103u);
  EXPECT_EQ(kept.back().trace_id, 106u);
  std::vector<TailSample> top = sampler.TopSlowest(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].trace_id, 106u);  // slowest first
  EXPECT_EQ(top[1].trace_id, 105u);
  sampler.Configure(0.100);
}

// --- Histogram exemplars ---

TEST(HistogramTest, ExemplarTracksTheSlowestTracedValue) {
  Histogram* h =
      MetricsRegistry::Global().GetHistogram("test.exemplar.basic", {0.01, 0.1, 1.0});
  h->Reset();
  h->RecordWithExemplar(0.05, 11);
  h->RecordWithExemplar(0.5, 22);   // new maximum
  h->RecordWithExemplar(0.2, 33);   // slower trace does not displace the max
  h->RecordWithExemplar(2.0, 0);    // traceless: counted, never an exemplar
  Histogram::Snapshot snapshot = h->Scrape();
  EXPECT_EQ(snapshot.count, 4u);
  EXPECT_DOUBLE_EQ(snapshot.exemplar_value, 0.5);
  EXPECT_EQ(snapshot.exemplar_trace_id, 22u);
  h->Reset();
  snapshot = h->Scrape();
  EXPECT_EQ(snapshot.exemplar_trace_id, 0u);
  EXPECT_DOUBLE_EQ(snapshot.exemplar_value, 0.0);
}

// --- Prometheus exposition conformance (golden output) ---

// Byte-exact golden rendering: `le` buckets must be cumulative and end with
// a +Inf bucket equal to _count, _sum must match, families must be typed
// exactly once. Guards the exporter against silent format drift.
TEST(ExportTest, PrometheusGoldenOutput) {
  MetricsSnapshot snapshot;
  snapshot.counters = {{"net.bytes_sent", 4096}};
  snapshot.gauges = {{"svc.connections_active", 2, 6}};
  Histogram::Snapshot h;
  h.name = "svc.rpc_seconds.Ping";
  h.bounds = {0.001, 0.01};
  h.counts = {3, 2, 1};  // per-bucket: <=0.001, <=0.01, overflow
  h.count = 6;
  h.sum = 0.05;
  snapshot.histograms = {h};
  EXPECT_EQ(MetricsToPrometheus(snapshot),
            "# TYPE indaas_net_bytes_sent counter\n"
            "indaas_net_bytes_sent 4096\n"
            "# TYPE indaas_svc_connections_active gauge\n"
            "indaas_svc_connections_active 2\n"
            "# TYPE indaas_svc_connections_active_max gauge\n"
            "indaas_svc_connections_active_max 6\n"
            "# TYPE indaas_svc_rpc_seconds histogram\n"
            "indaas_svc_rpc_seconds_bucket{rpc=\"Ping\",le=\"0.001\"} 3\n"
            "indaas_svc_rpc_seconds_bucket{rpc=\"Ping\",le=\"0.01\"} 5\n"
            "indaas_svc_rpc_seconds_bucket{rpc=\"Ping\",le=\"+Inf\"} 6\n"
            "indaas_svc_rpc_seconds_sum{rpc=\"Ping\"} 0.05\n"
            "indaas_svc_rpc_seconds_count{rpc=\"Ping\"} 6\n");
}

// The exponential per-RPC and per-stage series scrape as two native labeled
// histogram families: every member shares one # TYPE line (Prometheus
// rejects duplicate types), members keep their own label value, and
// histograms outside the two families stay unlabeled.
TEST(ExportTest, PrometheusGoldenOutputLabeledHistogramFamilies) {
  MetricsSnapshot snapshot;
  Histogram::Snapshot ping;
  ping.name = "svc.rpc_seconds.Ping";
  ping.bounds = {0.001};
  ping.counts = {2, 1};
  ping.count = 3;
  ping.sum = 0.01;
  Histogram::Snapshot read;
  read.name = "svc.stage.read_seconds";
  read.bounds = {0.001};
  read.counts = {4, 0};
  read.count = 4;
  read.sum = 0.002;
  Histogram::Snapshot audit;
  audit.name = "svc.rpc_seconds.RunAudit";
  audit.bounds = {0.001};
  audit.counts = {0, 5};
  audit.count = 5;
  audit.sum = 1.5;
  Histogram::Snapshot other;
  other.name = "sia.rank_seconds";
  other.bounds = {0.001};
  other.counts = {1, 0};
  other.count = 1;
  other.sum = 0.0005;
  snapshot.histograms = {ping, read, audit, other};
  EXPECT_EQ(MetricsToPrometheus(snapshot),
            "# TYPE indaas_svc_rpc_seconds histogram\n"
            "indaas_svc_rpc_seconds_bucket{rpc=\"Ping\",le=\"0.001\"} 2\n"
            "indaas_svc_rpc_seconds_bucket{rpc=\"Ping\",le=\"+Inf\"} 3\n"
            "indaas_svc_rpc_seconds_sum{rpc=\"Ping\"} 0.01\n"
            "indaas_svc_rpc_seconds_count{rpc=\"Ping\"} 3\n"
            "indaas_svc_rpc_seconds_bucket{rpc=\"RunAudit\",le=\"0.001\"} 0\n"
            "indaas_svc_rpc_seconds_bucket{rpc=\"RunAudit\",le=\"+Inf\"} 5\n"
            "indaas_svc_rpc_seconds_sum{rpc=\"RunAudit\"} 1.5\n"
            "indaas_svc_rpc_seconds_count{rpc=\"RunAudit\"} 5\n"
            "# TYPE indaas_svc_stage_seconds histogram\n"
            "indaas_svc_stage_seconds_bucket{stage=\"read\",le=\"0.001\"} 4\n"
            "indaas_svc_stage_seconds_bucket{stage=\"read\",le=\"+Inf\"} 4\n"
            "indaas_svc_stage_seconds_sum{stage=\"read\"} 0.002\n"
            "indaas_svc_stage_seconds_count{stage=\"read\"} 4\n"
            "# TYPE indaas_sia_rank_seconds histogram\n"
            "indaas_sia_rank_seconds_bucket{le=\"0.001\"} 1\n"
            "indaas_sia_rank_seconds_bucket{le=\"+Inf\"} 1\n"
            "indaas_sia_rank_seconds_sum 0.0005\n"
            "indaas_sia_rank_seconds_count 1\n");
}

// The degraded-mode operational surface (partial PIA results, adaptive
// overload control) must round-trip the exporter with these exact series
// names: runbooks and dashboards key on them.
TEST(ExportTest, PrometheusGoldenOutputDegradedModeSeries) {
  MetricsSnapshot snapshot;
  snapshot.counters = {{"svc.degraded_audits", 3},
                       {"svc.requests_shed_adaptive", 17}};
  snapshot.gauges = {{"svc.adaptive_shed_level", 4, 9}};
  EXPECT_EQ(MetricsToPrometheus(snapshot),
            "# TYPE indaas_svc_degraded_audits counter\n"
            "indaas_svc_degraded_audits 3\n"
            "# TYPE indaas_svc_requests_shed_adaptive counter\n"
            "indaas_svc_requests_shed_adaptive 17\n"
            "# TYPE indaas_svc_adaptive_shed_level gauge\n"
            "indaas_svc_adaptive_shed_level 4\n"
            "# TYPE indaas_svc_adaptive_shed_level_max gauge\n"
            "indaas_svc_adaptive_shed_level_max 9\n");
}

// --- Sampling profiler ---

// Burns CPU and heap on a registered thread until told to stop, so a
// profile window has something to catch.
class ProfiledWorker {
 public:
  ProfiledWorker()
      : thread_([this] {
          Profiler::Global().RegisterCurrentThread();
          std::vector<std::string> churn;
          uint64_t x = 1;
          while (!stop_.load(std::memory_order_relaxed)) {
            for (int i = 0; i < 50000; ++i) x = x * 6364136223846793005ull + 1;
            churn.emplace_back(4096, static_cast<char>('a' + (x & 15)));
            if (churn.size() > 64) churn.clear();
          }
          sink_.store(x, std::memory_order_relaxed);
        }) {}
  ~ProfiledWorker() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> sink_{0};
  std::thread thread_;
};

TEST(ProfilerTest, StartRejectsOutOfRangeOptions) {
  ProfileOptions options;
  options.hz = 0;
  EXPECT_EQ(Profiler::Global().Start(options).code(), StatusCode::kInvalidArgument);
  options.hz = Profiler::kMaxHz + 1;
  EXPECT_EQ(Profiler::Global().Start(options).code(), StatusCode::kInvalidArgument);
  auto window = Profiler::Global().WindowedCapture(99, 0, false);
  EXPECT_FALSE(window.ok());
  window = Profiler::Global().WindowedCapture(99, 61, false);
  EXPECT_FALSE(window.ok());
}

TEST(ProfilerTest, CapturesCpuAndAllocStacksFromRegisteredThreads) {
  const uint64_t samples_before =
      MetricsRegistry::Global().GetCounter("obs.profile.samples")->Value();
  ProfiledWorker worker;
  ProfileOptions options;
  options.hz = 250;
  options.alloc = true;
  options.alloc_interval_bytes = 64 * 1024;
  ASSERT_TRUE(Profiler::Global().Start(options).ok());
  // A second session must be refused while this one runs.
  EXPECT_EQ(Profiler::Global().Start(options).code(), StatusCode::kUnavailable);
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  ProfileData data = Profiler::Global().Stop();

  EXPECT_EQ(data.hz, 250u);
  EXPECT_GT(data.end_us, data.start_us);
  EXPECT_EQ(data.exe_path, ExecutablePath());
  size_t cpu = 0;
  size_t alloc = 0;
  for (const ProfileSample& sample : data.samples) {
    ASSERT_FALSE(sample.frames.empty());
    ASSERT_LE(sample.frames.size(), Profiler::kMaxFrames);
    if (sample.alloc) {
      ++alloc;
      EXPECT_GT(sample.weight, 0u);
    } else {
      ++cpu;
    }
  }
  // ~300 CPU samples and dozens of alloc samples expected; stay lenient for
  // sanitizer builds where wall time outpaces CPU time.
  EXPECT_GE(cpu, 5u) << "no CPU samples from a busy registered thread";
  EXPECT_GE(alloc, 1u) << "no allocation samples despite heap churn";
  EXPECT_GE(MetricsRegistry::Global().GetCounter("obs.profile.samples")->Value(),
            samples_before + cpu + alloc);
  // Stopping twice is a no-op.
  EXPECT_TRUE(Profiler::Global().Stop().samples.empty());
}

TEST(ProfilerTest, WindowedCaptureRunsATemporarySession) {
  ProfiledWorker worker;
  auto window = Profiler::Global().WindowedCapture(250, 1, /*alloc=*/false);
  ASSERT_TRUE(window.ok()) << window.status().ToString();
  EXPECT_EQ(window.value().hz, 250u);
  EXPECT_FALSE(Profiler::Global().running());
  EXPECT_GE(window.value().samples.size(), 1u);
}

TEST(ProfilerTest, ContinuousWindowReportsWindowScopedCounts) {
  // Continuous-mode windows must report drop counts as deltas over the
  // window, not session-cumulative totals: flood the alloc ring far faster
  // than the drainer sweeps, then cut a quiet window and check it does not
  // inherit the flood's losses.
  Profiler::Global().RegisterCurrentThread();
  ProfileOptions options;
  options.hz = 1;  // keep CPU sampling quiet; the flood drives the alloc ring
  options.alloc = true;
  options.alloc_interval_bytes = 1;  // sample every allocation
  options.continuous = true;
  ASSERT_TRUE(Profiler::Global().Start(options).ok());
  // Direct operator-new calls: a new-expression pair could legally be
  // elided by the optimizer, which would starve the flood.
  for (int i = 0; i < 200000; ++i) {
    ::operator delete(::operator new(32));
  }
  auto window = Profiler::Global().WindowedCapture(99, 1, /*alloc=*/true);
  ASSERT_TRUE(window.ok()) << window.status().ToString();
  ProfileData total = Profiler::Global().Stop();
  ASSERT_GT(total.dropped, 10000u) << "flood failed to overflow the alloc ring";
  // The window started after the flood was drained into the baseline, so a
  // quiet second carries at most stray test-process allocations.
  EXPECT_LT(window.value().dropped, total.dropped / 10)
      << "window reported session-cumulative drops";
  for (const ProfileSample& sample : window.value().samples) {
    EXPECT_GE(sample.t_us, window.value().start_us);
  }
}

TEST(ProfilerTest, DumpTextRoundTrips) {
  ProfileData data;
  data.hz = 99;
  data.start_us = 1000;
  data.end_us = 2000;
  data.exe_base = 0x555500000000ull;
  data.exe_path = "/bin/indaas";
  data.dropped = 7;
  data.truncated_stacks = 2;
  data.trace_ids = {0xabcULL, 42};
  ProfileSample cpu;
  cpu.t_us = 1100;
  cpu.trace_id = 0xabc;
  cpu.tid = 3;
  cpu.weight = 1;
  cpu.frames = {0x401234, 0x401000, 0x400500};
  ProfileSample alloc;
  alloc.t_us = 1200;
  alloc.tid = 4;
  alloc.weight = 65536;
  alloc.alloc = true;
  alloc.truncated = true;
  alloc.frames = {0x402000};
  data.samples = {cpu, alloc};

  const std::string text = ProfileToDumpText(data);
  ProfileData parsed;
  ASSERT_TRUE(ParseProfileDumpText(text, &parsed));
  EXPECT_EQ(parsed.hz, 99u);
  EXPECT_EQ(parsed.start_us, 1000u);
  EXPECT_EQ(parsed.end_us, 2000u);
  EXPECT_EQ(parsed.exe_base, 0x555500000000ull);
  EXPECT_EQ(parsed.exe_path, "/bin/indaas");
  EXPECT_EQ(parsed.dropped, 7u);
  EXPECT_EQ(parsed.truncated_stacks, 2u);
  EXPECT_EQ(parsed.trace_ids, (std::vector<uint64_t>{0xabc, 42}));
  ASSERT_EQ(parsed.samples.size(), 2u);
  EXPECT_EQ(parsed.samples[0].frames, cpu.frames);
  EXPECT_EQ(parsed.samples[0].trace_id, 0xabcu);
  EXPECT_FALSE(parsed.samples[0].alloc);
  EXPECT_TRUE(parsed.samples[1].alloc);
  EXPECT_TRUE(parsed.samples[1].truncated);
  EXPECT_EQ(parsed.samples[1].weight, 65536u);

  // Hostile input: no header, garbage lines.
  ProfileData bad;
  EXPECT_FALSE(ParseProfileDumpText("cpu 1 2 3 4 0x5\n", &bad));
  EXPECT_FALSE(ParseProfileDumpText("# wrong header\ncpu 1 2 3 4 0x5\n", &bad));
}

TEST(ProfilerTest, CollapsedAndChromeExports) {
  ProfileData data;
  ProfileSample a;
  a.t_us = 10;
  a.tid = 1;
  a.weight = 1;
  a.trace_id = 77;
  a.frames = {0xbbb, 0xaaa};  // leaf first: stack is aaa -> bbb
  ProfileSample b = a;
  b.t_us = 20;
  ProfileSample heap;
  heap.t_us = 30;
  heap.tid = 2;
  heap.weight = 4096;
  heap.alloc = true;
  heap.frames = {0xccc};
  data.samples = {a, b, heap};

  EXPECT_EQ(ProfileToCollapsed(data, /*alloc=*/false), "0xaaa;0xbbb 2\n");
  EXPECT_EQ(ProfileToCollapsed(data, /*alloc=*/true), "0xccc 4096\n");

  const std::string trace = ProfileToChromeTrace(data);
  EXPECT_TRUE(JsonValidator(trace).Valid()) << trace;
  EXPECT_NE(trace.find("\"cat\":\"profile_cpu\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"profile_alloc\""), std::string::npos);
  EXPECT_NE(trace.find("\"trace_id\":\"77\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"0xbbb\""), std::string::npos);
}

TEST(ProfilerTest, SamplesCarryAmbientTraceId) {
  std::atomic<bool> stop{false};
  std::thread traced([&] {
    Profiler::Global().RegisterCurrentThread();
    ScopedTraceContext scoped(TraceContext{0xfeedULL, 0});
    uint64_t x = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 50000; ++i) x = x * 2862933555777941757ull + 3037000493ull;
    }
    if (x == 0) std::abort();  // keep the loop observable
  });
  ProfileOptions options;
  options.hz = 500;
  options.alloc = false;
  ASSERT_TRUE(Profiler::Global().Start(options).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  ProfileData data = Profiler::Global().Stop();
  stop.store(true, std::memory_order_relaxed);
  traced.join();

  bool tagged = false;
  for (const ProfileSample& sample : data.samples) {
    if (sample.trace_id == 0xfeed) tagged = true;
  }
  EXPECT_TRUE(tagged) << "no sample carried the installed trace id ("
                      << data.samples.size() << " samples)";
  EXPECT_EQ(data.trace_ids.size(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace indaas
