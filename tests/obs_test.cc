// Unit tests for src/obs/: metrics registry, tracing spans, exporters.
//
// The registry and recorder are process-wide singletons, so every test uses
// its own instrument names and resets the recorder it touches.

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace indaas {
namespace obs {
namespace {

// --- Minimal JSON syntax validator (recursive descent) ---

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (Peek() != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // closing '"'
    return true;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) {
      return false;
    }
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// --- Counters ---

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter* counter = MetricsRegistry::Global().GetCounter("test.counter.concurrent");
  counter->Reset();
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter->Increment();
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
}

TEST(CounterTest, ScrapeWhileWritingNeverExceedsFinalTotal) {
  Counter* counter = MetricsRegistry::Global().GetCounter("test.counter.scrape");
  counter->Reset();
  constexpr uint64_t kTotal = 200000;
  std::thread writer([counter] {
    for (uint64_t i = 0; i < kTotal; ++i) {
      counter->Add(1);
    }
  });
  uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    uint64_t now = counter->Value();
    EXPECT_LE(last, now);  // monotone under a single writer
    EXPECT_LE(now, kTotal);
    last = now;
  }
  writer.join();
  EXPECT_EQ(counter->Value(), kTotal);
}

TEST(RegistryTest, PointersStableAcrossLookupsAndReset) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* first = registry.GetCounter("test.registry.stable");
  first->Add(7);
  Counter* second = registry.GetCounter("test.registry.stable");
  EXPECT_EQ(first, second);
  registry.Reset();
  EXPECT_EQ(first->Value(), 0u);  // zeroed in place, pointer still live
  first->Add(3);
  EXPECT_EQ(second->Value(), 3u);
}

// --- Gauges ---

TEST(GaugeTest, TracksValueAndHighWaterMark) {
  Gauge* gauge = MetricsRegistry::Global().GetGauge("test.gauge.basic");
  gauge->Reset();
  gauge->Set(5);
  gauge->Add(3);
  EXPECT_EQ(gauge->Value(), 8);
  gauge->Add(-6);
  EXPECT_EQ(gauge->Value(), 2);
  EXPECT_EQ(gauge->Max(), 8);  // peak survives the drop
}

// --- Histograms ---

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram* hist =
      MetricsRegistry::Global().GetHistogram("test.hist.bounds", {1.0, 2.0, 4.0});
  hist->Reset();
  hist->Record(0.5);  // (-inf, 1]
  hist->Record(1.0);  // (-inf, 1]  -- bounds are inclusive
  hist->Record(1.5);  // (1, 2]
  hist->Record(2.0);  // (1, 2]
  hist->Record(4.0);  // (2, 4]
  hist->Record(5.0);  // overflow
  Histogram::Snapshot snap = hist->Scrape();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 6u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 5.0);
}

TEST(HistogramTest, ConcurrentRecordsSumExactly) {
  Histogram* hist =
      MetricsRegistry::Global().GetHistogram("test.hist.concurrent", {10.0, 100.0});
  hist->Reset();
  constexpr size_t kThreads = 4;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([hist] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        hist->Record(static_cast<double>(i % 200));
      }
    });
  }
  // Scrape concurrently with the writers; totals must never go backwards.
  uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    uint64_t now = hist->Scrape().count;
    EXPECT_LE(last, now);
    last = now;
  }
  for (auto& worker : workers) {
    worker.join();
  }
  Histogram::Snapshot snap = hist->Scrape();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.counts) {
    bucket_total += c;
  }
  EXPECT_EQ(bucket_total, snap.count);
}

// --- Spans ---

TEST(TraceTest, DisabledRecorderRecordsNothing) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.SetEnabled(false);
  recorder.Reset(64);
  {
    INDAAS_TRACE_SPAN_NAMED(span, "off");
    EXPECT_FALSE(span.recording());
  }
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(TraceTest, NestedSpansFormParentChain) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Reset(64);
  recorder.SetEnabled(true);
  {
    INDAAS_TRACE_SPAN_NAMED(outer, "outer");
    outer.Annotate("key", "value");
    {
      INDAAS_TRACE_SPAN("middle");
      { INDAAS_TRACE_SPAN("inner"); }
    }
  }
  recorder.SetEnabled(false);
  std::vector<SpanRecord> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Snapshot is ordered by claim (start) order: outer, middle, inner.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].name, "middle");
  EXPECT_EQ(spans[2].name, "inner");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[2].parent, spans[1].id);
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].depth, 2u);
  EXPECT_EQ(spans[0].tid, spans[2].tid);
  // Children are contained in the parent's [start, start+dur] window.
  EXPECT_GE(spans[1].start_us, spans[0].start_us);
  EXPECT_LE(spans[1].start_us + spans[1].dur_us, spans[0].start_us + spans[0].dur_us);
  ASSERT_EQ(spans[0].annotations.size(), 1u);
  EXPECT_EQ(spans[0].annotations[0].first, "key");
  EXPECT_EQ(spans[0].annotations[0].second, "value");
}

TEST(TraceTest, SpansOnDifferentThreadsGetDifferentTids) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Reset(64);
  recorder.SetEnabled(true);
  {
    INDAAS_TRACE_SPAN("main-root");
    std::thread worker([] { INDAAS_TRACE_SPAN("worker-root"); });
    worker.join();
  }
  recorder.SetEnabled(false);
  std::vector<SpanRecord> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].tid, spans[1].tid);
  // A root on another thread has no parent even while main's span is open.
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].parent, -1);
}

TEST(TraceTest, FullRingDropsInsteadOfWrapping) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Reset(4);
  recorder.SetEnabled(true);
  for (int i = 0; i < 10; ++i) {
    INDAAS_TRACE_SPAN("burst");
  }
  recorder.SetEnabled(false);
  EXPECT_EQ(recorder.Snapshot().size(), 4u);
  EXPECT_EQ(recorder.dropped(), 6u);
  recorder.Reset(64);
  EXPECT_EQ(recorder.dropped(), 0u);
}

// --- Exporters ---

TEST(ExportTest, StageAggregationGroupsByName) {
  std::vector<SpanRecord> spans;
  SpanRecord a;
  a.name = "build";
  a.dur_us = 100;
  SpanRecord b;
  b.name = "enumerate";
  b.dur_us = 300;
  SpanRecord c;
  c.name = "build";
  c.dur_us = 50;
  spans = {a, b, c};
  std::vector<StageStat> stages = AggregateStages(spans);
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].name, "build");  // first-occurrence order
  EXPECT_EQ(stages[0].count, 2u);
  EXPECT_EQ(stages[0].total_us, 150u);
  EXPECT_EQ(stages[0].min_us, 50u);
  EXPECT_EQ(stages[0].max_us, 100u);
  EXPECT_EQ(stages[1].name, "enumerate");
  EXPECT_EQ(stages[1].count, 1u);
}

TEST(ExportTest, MetricsJsonIsValidAndContainsInstruments) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  registry.GetCounter("test.export.counter")->Add(42);
  registry.GetGauge("test.export.gauge")->Set(-3);
  registry.GetHistogram("test.export.hist", {1.0, 10.0})->Record(5.0);
  std::vector<StageStat> stages = {{"stage.one", 2, 1500, 500, 1000}};
  std::string json = MetricsToJson(registry.Snapshot(), stages);
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"test.export.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.export.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test.export.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"stage.one\""), std::string::npos);
}

TEST(ExportTest, ChromeTraceIsValidJsonWithNestedSpans) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Reset(64);
  recorder.SetEnabled(true);
  {
    INDAAS_TRACE_SPAN_NAMED(outer, "sia.build");
    outer.Annotate("nodes", "17");
    outer.Annotate("quote", "needs \"escaping\"\n");
    INDAAS_TRACE_SPAN("sia.enumerate");
  }
  recorder.SetEnabled(false);
  std::vector<SpanRecord> spans = recorder.Snapshot();
  std::string json = SpansToChromeTrace(spans);
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("sia.build"), std::string::npos);
  EXPECT_NE(json.find("sia.enumerate"), std::string::npos);
  EXPECT_NE(json.find("\\\"escaping\\\""), std::string::npos);  // escaped quote
}

TEST(ExportTest, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  std::string escaped = JsonEscape(std::string("a\x01z"));
  EXPECT_NE(escaped.find("\\u0001"), std::string::npos);
}

TEST(ExportTest, RenderersProduceNonEmptyText) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.render.counter")->Add(1);
  std::string text = RenderMetricsText(registry.Snapshot());
  EXPECT_NE(text.find("test.render.counter"), std::string::npos);
  std::vector<StageStat> stages = {{"stage", 1, 1000, 1000, 1000}};
  std::string table = RenderStageTable(stages);
  EXPECT_NE(table.find("stage"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace indaas
