// Tests for src/topology/: topology model, route enumeration, fat-tree
// generation (Table 3), case-study infrastructures, VM placement.

#include <gtest/gtest.h>

#include <set>

#include "src/topology/case_study.h"
#include "src/topology/datacenter.h"
#include "src/topology/fat_tree.h"
#include "src/topology/placement.h"
#include "src/util/rng.h"

namespace indaas {
namespace {

TEST(DataCenterTest, DevicesAndLinks) {
  DataCenterTopology topo;
  DeviceId a = topo.AddDevice("a", DeviceType::kServer);
  DeviceId b = topo.AddDevice("b", DeviceType::kTorSwitch);
  ASSERT_TRUE(topo.AddLink(a, b).ok());
  EXPECT_EQ(topo.DeviceCount(), 2u);
  EXPECT_EQ(topo.LinkCount(), 1u);
  EXPECT_EQ(topo.Neighbors(a), (std::vector<DeviceId>{b}));
  EXPECT_EQ(topo.Neighbors(b), (std::vector<DeviceId>{a}));
  auto found = topo.FindDevice("a");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, a);
  EXPECT_FALSE(topo.FindDevice("zzz").ok());
}

TEST(DataCenterTest, RejectsBadLinks) {
  DataCenterTopology topo;
  DeviceId a = topo.AddDevice("a", DeviceType::kServer);
  EXPECT_FALSE(topo.AddLink(a, a).ok());
  EXPECT_FALSE(topo.AddLink(a, 99).ok());
  // Duplicate links collapse.
  DeviceId b = topo.AddDevice("b", DeviceType::kServer);
  ASSERT_TRUE(topo.AddLink(a, b).ok());
  ASSERT_TRUE(topo.AddLink(b, a).ok());
  EXPECT_EQ(topo.LinkCount(), 1u);
}

TEST(DataCenterTest, EnumerateRoutesDiamond) {
  // a - {x,y} - d : two disjoint 2-hop paths.
  DataCenterTopology topo;
  DeviceId a = topo.AddDevice("a", DeviceType::kServer);
  DeviceId x = topo.AddDevice("x", DeviceType::kCoreRouter);
  DeviceId y = topo.AddDevice("y", DeviceType::kCoreRouter);
  DeviceId d = topo.AddDevice("d", DeviceType::kInternet);
  ASSERT_TRUE(topo.AddLink(a, x).ok());
  ASSERT_TRUE(topo.AddLink(a, y).ok());
  ASSERT_TRUE(topo.AddLink(x, d).ok());
  ASSERT_TRUE(topo.AddLink(y, d).ok());
  auto paths = topo.EnumerateRoutes(a, d);
  ASSERT_EQ(paths.size(), 2u);
  for (const auto& path : paths) {
    EXPECT_EQ(path.front(), a);
    EXPECT_EQ(path.back(), d);
    EXPECT_EQ(path.size(), 3u);
  }
}

TEST(DataCenterTest, EnumerateRoutesRespectsMaxPaths) {
  DataCenterTopology topo;
  DeviceId a = topo.AddDevice("a", DeviceType::kServer);
  DeviceId d = topo.AddDevice("d", DeviceType::kInternet);
  for (int i = 0; i < 10; ++i) {
    DeviceId mid = topo.AddDevice("m" + std::to_string(i), DeviceType::kCoreRouter);
    ASSERT_TRUE(topo.AddLink(a, mid).ok());
    ASSERT_TRUE(topo.AddLink(mid, d).ok());
  }
  EXPECT_EQ(topo.EnumerateRoutes(a, d, 4).size(), 4u);
  EXPECT_EQ(topo.EnumerateRoutes(a, d, 100).size(), 10u);
}

TEST(DataCenterTest, NetworkDependenciesListIntermediates) {
  DataCenterTopology topo;
  DeviceId s = topo.AddDevice("S1", DeviceType::kServer);
  DeviceId tor = topo.AddDevice("ToR1", DeviceType::kTorSwitch);
  DeviceId core = topo.AddDevice("Core1", DeviceType::kCoreRouter);
  DeviceId net = topo.AddDevice("Internet", DeviceType::kInternet);
  ASSERT_TRUE(topo.AddLink(s, tor).ok());
  ASSERT_TRUE(topo.AddLink(tor, core).ok());
  ASSERT_TRUE(topo.AddLink(core, net).ok());
  auto deps = topo.NetworkDependencies(s, net);
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].src, "S1");
  EXPECT_EQ(deps[0].dst, "Internet");
  EXPECT_EQ(deps[0].route, (std::vector<std::string>{"ToR1", "Core1"}));
}

TEST(DataCenterTest, NoRouteWhenDisconnected) {
  DataCenterTopology topo;
  DeviceId a = topo.AddDevice("a", DeviceType::kServer);
  DeviceId b = topo.AddDevice("b", DeviceType::kInternet);
  EXPECT_TRUE(topo.EnumerateRoutes(a, b).empty());
}

// --- Fat tree (Table 3) ---

struct Table3Row {
  uint32_t ports;
  size_t cores, aggs, tors, servers, total;
};

class FatTreeTable3Test : public ::testing::TestWithParam<Table3Row> {};

TEST_P(FatTreeTable3Test, MatchesPaperCounts) {
  const Table3Row& row = GetParam();
  FatTreeStats stats = FatTreeStatsFor(row.ports);
  EXPECT_EQ(stats.core_routers, row.cores);
  EXPECT_EQ(stats.agg_switches, row.aggs);
  EXPECT_EQ(stats.tor_switches, row.tors);
  EXPECT_EQ(stats.servers, row.servers);
  EXPECT_EQ(stats.TotalDevices(), row.total);
}

// The three rows of Table 3, verbatim.
INSTANTIATE_TEST_SUITE_P(Table3, FatTreeTable3Test,
                         ::testing::Values(Table3Row{16, 64, 128, 128, 1024, 1344},
                                           Table3Row{24, 144, 288, 288, 3456, 4176},
                                           Table3Row{48, 576, 1152, 1152, 27648, 30528}));

TEST(FatTreeTest, BuiltTopologyMatchesStats) {
  auto topo = BuildFatTree(8);
  ASSERT_TRUE(topo.ok());
  FatTreeStats stats = FatTreeStatsFor(8);
  auto counts = topo->CountsByType();
  EXPECT_EQ(counts[DeviceType::kCoreRouter], stats.core_routers);
  EXPECT_EQ(counts[DeviceType::kAggSwitch], stats.agg_switches);
  EXPECT_EQ(counts[DeviceType::kTorSwitch], stats.tor_switches);
  EXPECT_EQ(counts[DeviceType::kServer], stats.servers);
  EXPECT_EQ(counts[DeviceType::kInternet], 1u);
}

TEST(FatTreeTest, ServerReachesInternetViaThreeTiers) {
  auto topo = BuildFatTree(4);
  ASSERT_TRUE(topo.ok());
  auto server = topo->FindDevice("pod0-srv0-0");
  auto internet = topo->FindDevice("Internet");
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(internet.ok());
  auto paths = topo->EnumerateRoutes(*server, *internet, 64, 4);
  ASSERT_FALSE(paths.empty());
  // Shortest paths: server -> tor -> agg -> core -> Internet (5 nodes);
  // a 4-port fat tree has 2 aggs x 2 cores per agg = 4 such paths.
  size_t shortest = 0;
  for (const auto& path : paths) {
    EXPECT_EQ(path.front(), *server);
    EXPECT_EQ(path.back(), *internet);
    if (path.size() == 5) {
      ++shortest;
    }
  }
  EXPECT_EQ(shortest, 4u);
}

TEST(FatTreeTest, RejectsBadPortCounts) {
  EXPECT_FALSE(BuildFatTree(3).ok());
  EXPECT_FALSE(BuildFatTree(2).ok());
  EXPECT_FALSE(BuildFatTree(7).ok());
}

// --- Case studies ---

TEST(CaseStudyTest, DatacenterShape) {
  auto topo = BuildCaseStudyDatacenter(33, 1);
  ASSERT_TRUE(topo.ok());
  auto counts = topo->CountsByType();
  EXPECT_EQ(counts[DeviceType::kTorSwitch], 33u);   // e1..e33
  EXPECT_EQ(counts[DeviceType::kCoreRouter], 4u);   // b1,b2,c1,c2
  EXPECT_EQ(counts[DeviceType::kServer], 33u);
  // Every ToR is dual-homed.
  for (uint32_t i = 1; i <= 33; ++i) {
    auto tor = topo->FindDevice("e" + std::to_string(i));
    ASSERT_TRUE(tor.ok());
    size_t cores = 0;
    for (DeviceId n : topo->Neighbors(*tor)) {
      if (topo->device(n).type == DeviceType::kCoreRouter) {
        ++cores;
      }
    }
    EXPECT_EQ(cores, 2u) << "e" << i;
  }
}

TEST(CaseStudyTest, SomeRackPairsShareNoCore) {
  auto topo = BuildCaseStudyDatacenter(12, 1);
  ASSERT_TRUE(topo.ok());
  auto core_set = [&](uint32_t i) {
    auto tor = topo->FindDevice("e" + std::to_string(i));
    EXPECT_TRUE(tor.ok());
    std::set<std::string> cores;
    for (DeviceId n : topo->Neighbors(*tor)) {
      if (topo->device(n).type == DeviceType::kCoreRouter) {
        cores.insert(topo->device(n).name);
      }
    }
    return cores;
  };
  // Uplink classes cycle with period 6: e1={b1,b2}, e2={c1,c2} are disjoint.
  std::set<std::string> e1 = core_set(1);
  std::set<std::string> e2 = core_set(2);
  std::vector<std::string> overlap;
  std::set_intersection(e1.begin(), e1.end(), e2.begin(), e2.end(),
                        std::back_inserter(overlap));
  EXPECT_TRUE(overlap.empty());
  // e1 and e7 are the same class: full overlap.
  EXPECT_EQ(core_set(1), core_set(7));
}

TEST(CaseStudyTest, LabCloudShape) {
  auto topo = BuildLabCloud();
  ASSERT_TRUE(topo.ok());
  auto counts = topo->CountsByType();
  EXPECT_EQ(counts[DeviceType::kServer], 4u);
  EXPECT_EQ(counts[DeviceType::kTorSwitch] + counts[DeviceType::kCoreRouter], 4u);
  // Server1's only uplink is Switch1 (the {Switch1} RG of §6.2.2).
  auto s1 = topo->FindDevice("Server1");
  ASSERT_TRUE(s1.ok());
  ASSERT_EQ(topo->Neighbors(*s1).size(), 1u);
  EXPECT_EQ(topo->device(topo->Neighbors(*s1)[0]).name, "Switch1");
  // Both paths from Server1 to the Internet pass Switch1.
  auto internet = topo->FindDevice("Internet");
  ASSERT_TRUE(internet.ok());
  auto deps = topo->NetworkDependencies(*s1, *internet);
  ASSERT_EQ(deps.size(), 2u);
  for (const auto& dep : deps) {
    EXPECT_EQ(dep.route.front(), "Switch1");
  }
}

// --- Placement ---

TEST(PlacementTest, LeastLoadedPrefersBiggestFreeCapacity) {
  // Host B has double capacity; first two VMs must land on B.
  std::vector<PlacementHost> hosts = {{"A", 2}, {"B", 4}};
  std::vector<VmRequest> vms = {{"vm1", ""}, {"vm2", ""}};
  Rng rng(1);
  auto result = PlaceVms(vms, hosts, PlacementPolicy::kLeastLoadedRandom, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignment[0], 1u);
  EXPECT_EQ(result->assignment[1], 1u);
}

TEST(PlacementTest, ReproducesOpenStackColocation) {
  // §6.2.2: the two redundant Riak VMs land on the same (larger) server.
  // Server2's capacity keeps it strictly least-loaded throughout, so the
  // "random among least loaded" policy deterministically co-locates.
  std::vector<PlacementHost> hosts = {{"Server1", 2}, {"Server2", 10}, {"Server3", 2},
                                      {"Server4", 2}};
  std::vector<VmRequest> vms;
  for (int i = 1; i <= 6; ++i) {
    vms.push_back({"vm" + std::to_string(i), ""});
  }
  vms.push_back({"VM7", "riak"});
  vms.push_back({"VM8", "riak"});
  Rng rng(1);
  auto result = PlaceVms(vms, hosts, PlacementPolicy::kLeastLoadedRandom, rng);
  ASSERT_TRUE(result.ok());
  // Server2 always has the most free slots, so both Riak VMs co-locate.
  EXPECT_EQ(result->assignment[6], 1u);
  EXPECT_EQ(result->assignment[7], 1u);
}

TEST(PlacementTest, AntiAffinitySeparatesGroup) {
  std::vector<PlacementHost> hosts = {{"Server1", 2}, {"Server2", 10}, {"Server3", 2},
                                      {"Server4", 2}};
  std::vector<VmRequest> vms;
  for (int i = 1; i <= 6; ++i) {
    vms.push_back({"vm" + std::to_string(i), ""});
  }
  vms.push_back({"VM7", "riak"});
  vms.push_back({"VM8", "riak"});
  Rng rng(1);
  auto result = PlaceVms(vms, hosts, PlacementPolicy::kAntiAffinity, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->assignment[6], result->assignment[7]);
}

TEST(PlacementTest, RoundRobinSpreads) {
  std::vector<PlacementHost> hosts = {{"A", 2}, {"B", 2}, {"C", 2}};
  std::vector<VmRequest> vms = {{"v1", ""}, {"v2", ""}, {"v3", ""}};
  Rng rng(1);
  auto result = PlaceVms(vms, hosts, PlacementPolicy::kRoundRobin, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignment, (std::vector<size_t>{0, 1, 2}));
}

TEST(PlacementTest, CapacityExhaustionFails) {
  std::vector<PlacementHost> hosts = {{"A", 1}};
  std::vector<VmRequest> vms = {{"v1", ""}, {"v2", ""}};
  Rng rng(1);
  EXPECT_FALSE(PlaceVms(vms, hosts, PlacementPolicy::kRandom, rng).ok());
  EXPECT_FALSE(PlaceVms(vms, {}, PlacementPolicy::kRandom, rng).ok());
}

TEST(PlacementTest, RandomIsDeterministicPerSeed) {
  std::vector<PlacementHost> hosts = {{"A", 5}, {"B", 5}};
  std::vector<VmRequest> vms(6, VmRequest{"v", ""});
  Rng rng1(42);
  Rng rng2(42);
  auto r1 = PlaceVms(vms, hosts, PlacementPolicy::kRandom, rng1);
  auto r2 = PlaceVms(vms, hosts, PlacementPolicy::kRandom, rng2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->assignment, r2->assignment);
}

}  // namespace
}  // namespace indaas
