// Tests for src/smpc/: boolean circuits, the GMW protocol, and circuit-based
// private set intersection cardinality.

#include <gtest/gtest.h>

#include <set>

#include "src/smpc/circuit.h"
#include "src/smpc/gmw.h"
#include "src/smpc/psi_circuit.h"
#include "src/util/rng.h"

namespace indaas {
namespace {

// --- Circuit construction & plaintext evaluation ---

TEST(CircuitTest, GateTruthTables) {
  Circuit circuit;
  WireId a = circuit.AddInput(0);
  WireId b = circuit.AddInput(1);
  circuit.AddOutput(circuit.Xor(a, b));
  circuit.AddOutput(circuit.And(a, b));
  circuit.AddOutput(circuit.Or(a, b));
  circuit.AddOutput(circuit.Not(a));
  circuit.AddOutput(circuit.Xnor(a, b));
  for (bool va : {false, true}) {
    for (bool vb : {false, true}) {
      auto out = circuit.Evaluate({va}, {vb});
      ASSERT_TRUE(out.ok());
      EXPECT_EQ((*out)[0], va != vb);
      EXPECT_EQ((*out)[1], va && vb);
      EXPECT_EQ((*out)[2], va || vb);
      EXPECT_EQ((*out)[3], !va);
      EXPECT_EQ((*out)[4], va == vb);
    }
  }
}

TEST(CircuitTest, ConstantsAndCounts) {
  Circuit circuit;
  WireId a = circuit.AddInput(0);
  WireId t = circuit.AddConstant(true);
  circuit.AddOutput(circuit.And(a, t));
  EXPECT_EQ(circuit.AndGateCount(), 1u);
  EXPECT_EQ(circuit.InputCount(0), 1u);
  EXPECT_EQ(circuit.InputCount(1), 0u);
  auto out = circuit.Evaluate({true}, {});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE((*out)[0]);
}

TEST(CircuitTest, AdderMatchesArithmetic) {
  const size_t kWidth = 8;
  Circuit circuit;
  std::vector<WireId> a;
  std::vector<WireId> b;
  for (size_t i = 0; i < kWidth; ++i) {
    a.push_back(circuit.AddInput(0));
  }
  for (size_t i = 0; i < kWidth; ++i) {
    b.push_back(circuit.AddInput(1));
  }
  auto sum = circuit.AddVec(a, b);
  ASSERT_TRUE(sum.ok());
  for (WireId wire : *sum) {
    circuit.AddOutput(wire);
  }
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    uint64_t va = rng.NextBelow(256);
    uint64_t vb = rng.NextBelow(256);
    auto out = circuit.Evaluate(ToBits(va, kWidth), ToBits(vb, kWidth));
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(FromBits(*out), va + vb);
  }
}

TEST(CircuitTest, EqualsVecMatches) {
  const size_t kWidth = 16;
  Circuit circuit;
  std::vector<WireId> a;
  std::vector<WireId> b;
  for (size_t i = 0; i < kWidth; ++i) {
    a.push_back(circuit.AddInput(0));
  }
  for (size_t i = 0; i < kWidth; ++i) {
    b.push_back(circuit.AddInput(1));
  }
  auto eq = circuit.EqualsVec(a, b);
  ASSERT_TRUE(eq.ok());
  circuit.AddOutput(*eq);
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    uint64_t va = rng.NextBelow(1 << kWidth);
    uint64_t vb = rng.NextBool(0.5) ? va : rng.NextBelow(1 << kWidth);
    auto out = circuit.Evaluate(ToBits(va, kWidth), ToBits(vb, kWidth));
    ASSERT_TRUE(out.ok());
    EXPECT_EQ((*out)[0], va == vb);
  }
}

TEST(CircuitTest, PopCountMatches) {
  const size_t kBits = 13;
  Circuit circuit;
  std::vector<WireId> bits;
  for (size_t i = 0; i < kBits; ++i) {
    bits.push_back(circuit.AddInput(0));
  }
  auto count = circuit.PopCount(bits);
  ASSERT_TRUE(count.ok());
  for (WireId wire : *count) {
    circuit.AddOutput(wire);
  }
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    uint64_t value = rng.NextBelow(1 << kBits);
    auto out = circuit.Evaluate(ToBits(value, kBits), {});
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(FromBits(*out), static_cast<uint64_t>(__builtin_popcountll(value)));
  }
}

TEST(CircuitTest, RejectsBadShapes) {
  Circuit circuit;
  WireId a = circuit.AddInput(0);
  EXPECT_FALSE(circuit.EqualsVec({a}, {a, a}).ok());
  EXPECT_FALSE(circuit.EqualsVec({}, {}).ok());
  EXPECT_FALSE(circuit.OrVec({}).ok());
  EXPECT_FALSE(circuit.PopCount({}).ok());
  EXPECT_FALSE(circuit.Evaluate({}, {true}).ok());
}

TEST(CircuitTest, BitHelpersRoundTrip) {
  EXPECT_EQ(FromBits(ToBits(0xDEADBEEF, 32)), 0xDEADBEEFu);
  EXPECT_EQ(FromBits(ToBits(0, 8)), 0u);
  EXPECT_EQ(ToBits(5, 4), (std::vector<bool>{true, false, true, false}));
}

// --- GMW vs plaintext, swept over random circuits ---

class GmwPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GmwPropertyTest, MatchesPlaintextEvaluation) {
  Rng rng(GetParam() * 2654435761ULL);
  for (int trial = 0; trial < 10; ++trial) {
    Circuit circuit;
    std::vector<WireId> wires;
    size_t in0 = 1 + rng.NextBelow(4);
    size_t in1 = 1 + rng.NextBelow(4);
    for (size_t i = 0; i < in0; ++i) {
      wires.push_back(circuit.AddInput(0));
    }
    for (size_t i = 0; i < in1; ++i) {
      wires.push_back(circuit.AddInput(1));
    }
    wires.push_back(circuit.AddConstant(rng.NextBool(0.5)));
    for (int g = 0; g < 25; ++g) {
      WireId a = wires[rng.NextBelow(wires.size())];
      WireId b = wires[rng.NextBelow(wires.size())];
      switch (rng.NextBelow(4)) {
        case 0:
          wires.push_back(circuit.Xor(a, b));
          break;
        case 1:
          wires.push_back(circuit.And(a, b));
          break;
        case 2:
          wires.push_back(circuit.Or(a, b));
          break;
        default:
          wires.push_back(circuit.Not(a));
          break;
      }
    }
    for (int o = 0; o < 4; ++o) {
      circuit.AddOutput(wires[wires.size() - 1 - static_cast<size_t>(o)]);
    }
    std::vector<bool> inputs0;
    std::vector<bool> inputs1;
    for (size_t i = 0; i < in0; ++i) {
      inputs0.push_back(rng.NextBool(0.5));
    }
    for (size_t i = 0; i < in1; ++i) {
      inputs1.push_back(rng.NextBool(0.5));
    }
    auto plain = circuit.Evaluate(inputs0, inputs1);
    Rng gmw_rng(GetParam() + static_cast<uint64_t>(trial));
    auto secure = RunGmw(circuit, inputs0, inputs1, gmw_rng);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(secure.ok());
    EXPECT_EQ(secure->outputs, *plain) << "seed " << GetParam() << " trial " << trial;
    EXPECT_EQ(secure->triples_consumed, circuit.AndGateCount());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GmwPropertyTest, ::testing::Range<uint64_t>(1, 9));

TEST(GmwTest, AccountsCommunication) {
  Circuit circuit;
  WireId a = circuit.AddInput(0);
  WireId b = circuit.AddInput(1);
  circuit.AddOutput(circuit.And(a, b));
  Rng rng(5);
  auto result = RunGmw(circuit, {true}, {true}, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->outputs[0]);
  EXPECT_EQ(result->and_gates, 1u);
  EXPECT_EQ(result->rounds, 1u);
  EXPECT_GT(result->party_stats[0].bytes_sent, 0u);
  EXPECT_GT(result->party_stats[1].bytes_received, 0u);
}

TEST(GmwTest, RejectsWrongInputSizes) {
  Circuit circuit;
  circuit.AddInput(0);
  Rng rng(6);
  EXPECT_FALSE(RunGmw(circuit, {}, {}, rng).ok());
  EXPECT_FALSE(RunGmw(circuit, {true, false}, {}, rng).ok());
}

TEST(GmwTest, DeepCircuitRoundsMatchDepth) {
  // A chain of ANDs: depth == gate count == rounds.
  Circuit circuit;
  WireId acc = circuit.AddInput(0);
  for (int i = 0; i < 10; ++i) {
    acc = circuit.And(acc, circuit.AddInput(1));
  }
  circuit.AddOutput(acc);
  Rng rng(7);
  auto result = RunGmw(circuit, {true}, std::vector<bool>(10, true), rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->outputs[0]);
  EXPECT_EQ(result->rounds, 10u);
  EXPECT_EQ(circuit.AndDepth(), 10u);
}

// --- PSI cardinality circuit ---

TEST(SmpcPsiTest, SmallSetsExact) {
  auto result = RunSmpcIntersectionCardinality({"a", "b", "c", "d"}, {"c", "d", "e"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->intersection, 2u);
  EXPECT_GT(result->and_gates, 0u);
  EXPECT_GT(result->rounds, 0u);
}

TEST(SmpcPsiTest, DisjointAndIdentical) {
  auto disjoint = RunSmpcIntersectionCardinality({"a", "b"}, {"c", "d"});
  ASSERT_TRUE(disjoint.ok());
  EXPECT_EQ(disjoint->intersection, 0u);
  auto identical = RunSmpcIntersectionCardinality({"a", "b", "c"}, {"a", "b", "c"});
  ASSERT_TRUE(identical.ok());
  EXPECT_EQ(identical->intersection, 3u);
}

TEST(SmpcPsiTest, DuplicatesDeduplicated) {
  auto result = RunSmpcIntersectionCardinality({"a", "a", "b"}, {"a"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->intersection, 1u);
}

TEST(SmpcPsiTest, MatchesPlaintextOnRandomSets) {
  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    std::set<std::string> s0;
    std::set<std::string> s1;
    for (int i = 0; i < 12; ++i) {
      s0.insert("c" + std::to_string(rng.NextBelow(20)));
      s1.insert("c" + std::to_string(rng.NextBelow(20)));
    }
    std::vector<std::string> v0(s0.begin(), s0.end());
    std::vector<std::string> v1(s1.begin(), s1.end());
    size_t expected = 0;
    for (const std::string& e : s0) {
      expected += s1.count(e);
    }
    SmpcPsiOptions options;
    options.seed = 100 + static_cast<uint64_t>(trial);
    auto result = RunSmpcIntersectionCardinality(v0, v1, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->intersection, expected) << "trial " << trial;
  }
}

TEST(SmpcPsiTest, QuadraticGateGrowth) {
  auto small = BuildPsiCardinalityCircuit(10, 10, 16);
  auto large = BuildPsiCardinalityCircuit(20, 20, 16);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  // 4x the pairs => ~4x the AND gates (popcount adds lower-order terms).
  double ratio = static_cast<double>(large->AndGateCount()) /
                 static_cast<double>(small->AndGateCount());
  EXPECT_GT(ratio, 3.5);
  EXPECT_LT(ratio, 4.5);
}

TEST(SmpcPsiTest, RejectsBadInput) {
  EXPECT_FALSE(RunSmpcIntersectionCardinality({}, {"a"}).ok());
  EXPECT_FALSE(BuildPsiCardinalityCircuit(0, 5, 16).ok());
  EXPECT_FALSE(BuildPsiCardinalityCircuit(5, 5, 0).ok());
  EXPECT_FALSE(BuildPsiCardinalityCircuit(5, 5, 65).ok());
}

}  // namespace
}  // namespace indaas
