// Unit and property tests for src/bignum/: BigUint arithmetic, Montgomery
// modular exponentiation, modular inverse, and primality.

#include <gtest/gtest.h>

#include <cstdint>

#include "src/bignum/biguint.h"
#include "src/bignum/modular.h"
#include "src/bignum/montgomery.h"
#include "src/bignum/prime.h"
#include "src/util/rng.h"

namespace indaas {
namespace {

// Reference modexp on native integers for cross-checking.
uint64_t NativeModExp(uint64_t base, uint64_t exp, uint64_t mod) {
  __uint128_t result = 1;
  __uint128_t b = base % mod;
  while (exp != 0) {
    if (exp & 1) {
      result = result * b % mod;
    }
    b = b * b % mod;
    exp >>= 1;
  }
  return static_cast<uint64_t>(result);
}

// --- Construction & formatting ---

TEST(BigUintTest, ZeroProperties) {
  BigUint zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_FALSE(zero.IsOne());
  EXPECT_FALSE(zero.IsOdd());
  EXPECT_EQ(zero.BitLength(), 0u);
  EXPECT_EQ(zero.ToDecimal(), "0");
  EXPECT_EQ(zero.ToHex(), "0");
  EXPECT_EQ(zero.ToUint64(), 0u);
}

TEST(BigUintTest, FromUint64RoundTrip) {
  for (uint64_t v : {0ULL, 1ULL, 0xFFFFFFFFULL, 0x100000000ULL, 0xFFFFFFFFFFFFFFFFULL}) {
    EXPECT_EQ(BigUint(v).ToUint64(), v);
  }
}

TEST(BigUintTest, DecimalRoundTrip) {
  const char* kCases[] = {"0", "1", "42", "4294967295", "4294967296",
                          "340282366920938463463374607431768211456",
                          "123456789012345678901234567890123456789012345678901234567890"};
  for (const char* text : kCases) {
    auto v = BigUint::FromDecimal(text);
    ASSERT_TRUE(v.ok()) << text;
    EXPECT_EQ(v->ToDecimal(), text);
  }
}

TEST(BigUintTest, HexRoundTrip) {
  const char* kCases[] = {"1", "ff", "deadbeef", "123456789abcdef0123456789abcdef"};
  for (const char* text : kCases) {
    auto v = BigUint::FromHex(text);
    ASSERT_TRUE(v.ok()) << text;
    EXPECT_EQ(v->ToHex(), text);
  }
}

TEST(BigUintTest, HexAccepts0xPrefixAndUppercase) {
  auto a = BigUint::FromHex("0xDEADBEEF");
  auto b = BigUint::FromHex("deadbeef");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(BigUintTest, ParseRejectsGarbage) {
  EXPECT_FALSE(BigUint::FromDecimal("").ok());
  EXPECT_FALSE(BigUint::FromDecimal("12a").ok());
  EXPECT_FALSE(BigUint::FromHex("").ok());
  EXPECT_FALSE(BigUint::FromHex("0x").ok());
  EXPECT_FALSE(BigUint::FromHex("xyz").ok());
}

TEST(BigUintTest, BytesRoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    BigUint v = RandomWithBits(1 + rng.NextBelow(200), rng);
    EXPECT_EQ(BigUint::FromBytesBE(v.ToBytesBE()), v);
  }
}

TEST(BigUintTest, BytesPadding) {
  BigUint v(0xABCD);
  auto padded = v.ToBytesBE(8);
  ASSERT_EQ(padded.size(), 8u);
  EXPECT_EQ(padded[0], 0);
  EXPECT_EQ(padded[6], 0xAB);
  EXPECT_EQ(padded[7], 0xCD);
  EXPECT_EQ(BigUint::FromBytesBE(padded), v);
}

// --- Comparison ---

TEST(BigUintTest, Comparison) {
  BigUint a(100);
  BigUint b(200);
  BigUint c = BigUint(1).ShiftLeft(64);
  EXPECT_LT(a, b);
  EXPECT_GT(c, b);
  EXPECT_EQ(a, BigUint(100));
  EXPECT_LE(a, a);
  EXPECT_GE(c, c);
  EXPECT_NE(a, b);
}

// --- Arithmetic vs native (property-style) ---

TEST(BigUintTest, AddSubMulMatchNative) {
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    uint64_t a = rng.Next() >> 33;  // Keep products within 64 bits.
    uint64_t b = rng.Next() >> 33;
    EXPECT_EQ(BigUint(a).Add(BigUint(b)).ToUint64(), a + b);
    EXPECT_EQ(BigUint(a).Mul(BigUint(b)).ToUint64(), a * b);
    uint64_t hi = std::max(a, b);
    uint64_t lo = std::min(a, b);
    EXPECT_EQ(BigUint(hi).Sub(BigUint(lo)).ToUint64(), hi - lo);
  }
}

TEST(BigUintTest, DivModMatchesNative) {
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    uint64_t a = rng.Next();
    uint64_t b = rng.Next() % 1000000 + 1;
    auto dm = BigUint(a).DivMod(BigUint(b));
    ASSERT_TRUE(dm.ok());
    EXPECT_EQ(dm->quotient.ToUint64(), a / b);
    EXPECT_EQ(dm->remainder.ToUint64(), a % b);
  }
}

TEST(BigUintTest, DivModIdentityLargeOperands) {
  // Property: a == q*b + r with r < b, for random multi-limb operands.
  Rng rng(29);
  for (int i = 0; i < 300; ++i) {
    BigUint a = RandomWithBits(64 + rng.NextBelow(512), rng);
    BigUint b = RandomWithBits(32 + rng.NextBelow(256), rng);
    auto dm = a.DivMod(b);
    ASSERT_TRUE(dm.ok());
    EXPECT_LT(dm->remainder, b);
    EXPECT_EQ(dm->quotient.Mul(b).Add(dm->remainder), a);
  }
}

TEST(BigUintTest, DivByZeroIsError) {
  EXPECT_FALSE(BigUint(5).DivMod(BigUint()).ok());
}

TEST(BigUintTest, DivSmallerByLargerIsZero) {
  auto dm = BigUint(5).DivMod(BigUint(100));
  ASSERT_TRUE(dm.ok());
  EXPECT_TRUE(dm->quotient.IsZero());
  EXPECT_EQ(dm->remainder, BigUint(5));
}

TEST(BigUintTest, KnuthAddBackCase) {
  // A classic add-back trigger: dividend = B^2 * (B-1), divisor = B^2 - 1
  // exercised through nearby values; validate via the division identity.
  BigUint base = BigUint(1).ShiftLeft(32);
  BigUint b_sq = base.Mul(base);
  BigUint dividend = b_sq.Mul(base.Sub(BigUint(1)));
  BigUint divisor = b_sq.Sub(BigUint(1));
  auto dm = dividend.DivMod(divisor);
  ASSERT_TRUE(dm.ok());
  EXPECT_EQ(dm->quotient.Mul(divisor).Add(dm->remainder), dividend);
  EXPECT_LT(dm->remainder, divisor);
}

TEST(BigUintTest, ShiftRoundTrip) {
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    BigUint v = RandomWithBits(1 + rng.NextBelow(300), rng);
    size_t shift = rng.NextBelow(150);
    EXPECT_EQ(v.ShiftLeft(shift).ShiftRight(shift), v);
  }
}

TEST(BigUintTest, ShiftLeftMultipliesByPowerOfTwo) {
  EXPECT_EQ(BigUint(3).ShiftLeft(4).ToUint64(), 48u);
  EXPECT_EQ(BigUint(1).ShiftLeft(100).BitLength(), 101u);
}

TEST(BigUintTest, BitAccess) {
  BigUint v(0b1010);
  EXPECT_FALSE(v.Bit(0));
  EXPECT_TRUE(v.Bit(1));
  EXPECT_FALSE(v.Bit(2));
  EXPECT_TRUE(v.Bit(3));
  EXPECT_FALSE(v.Bit(100));
}

TEST(BigUintTest, MulCommutativeAssociativeDistributive) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    BigUint a = RandomWithBits(128, rng);
    BigUint b = RandomWithBits(96, rng);
    BigUint c = RandomWithBits(160, rng);
    EXPECT_EQ(a.Mul(b), b.Mul(a));
    EXPECT_EQ(a.Mul(b).Mul(c), a.Mul(b.Mul(c)));
    EXPECT_EQ(a.Mul(b.Add(c)), a.Mul(b).Add(a.Mul(c)));
  }
}

// --- Modular arithmetic ---

TEST(ModularTest, GcdKnownValues) {
  EXPECT_EQ(Gcd(BigUint(12), BigUint(18)).ToUint64(), 6u);
  EXPECT_EQ(Gcd(BigUint(17), BigUint(5)).ToUint64(), 1u);
  EXPECT_EQ(Gcd(BigUint(0), BigUint(7)).ToUint64(), 7u);
  EXPECT_EQ(Gcd(BigUint(7), BigUint(0)).ToUint64(), 7u);
}

TEST(ModularTest, LcmKnownValues) {
  EXPECT_EQ(Lcm(BigUint(4), BigUint(6)).ToUint64(), 12u);
  EXPECT_TRUE(Lcm(BigUint(0), BigUint(5)).IsZero());
}

TEST(ModularTest, ModInverseProperty) {
  Rng rng(41);
  BigUint m(1000000007);  // prime
  for (int i = 0; i < 200; ++i) {
    BigUint a(rng.Next() % 1000000006 + 1);
    auto inv = ModInverse(a, m);
    ASSERT_TRUE(inv.ok());
    EXPECT_TRUE(ModMul(a, *inv, m).IsOne());
  }
}

TEST(ModularTest, ModInverseLargeModulus) {
  Rng rng(43);
  auto p = WellKnownSafePrime(768);
  ASSERT_TRUE(p.ok());
  for (int i = 0; i < 10; ++i) {
    BigUint a = RandomBelow(*p, rng);
    if (a.IsZero()) {
      continue;
    }
    auto inv = ModInverse(a, *p);
    ASSERT_TRUE(inv.ok());
    EXPECT_TRUE(ModMul(a, *inv, *p).IsOne());
  }
}

TEST(ModularTest, ModInverseNonCoprimeFails) {
  EXPECT_FALSE(ModInverse(BigUint(6), BigUint(9)).ok());
  EXPECT_FALSE(ModInverse(BigUint(4), BigUint(1)).ok());
}

TEST(ModularTest, ModExpMatchesNative) {
  Rng rng(47);
  for (int i = 0; i < 300; ++i) {
    uint64_t base = rng.Next() % 1000000;
    uint64_t exp = rng.Next() % 100000;
    uint64_t mod = rng.Next() % 1000000 + 2;
    auto got = ModExp(BigUint(base), BigUint(exp), BigUint(mod));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->ToUint64(), NativeModExp(base, exp, mod)) << base << "^" << exp << " % " << mod;
  }
}

TEST(ModularTest, ModExpEdgeCases) {
  auto r1 = ModExp(BigUint(5), BigUint(0), BigUint(7));
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->IsOne());
  auto r2 = ModExp(BigUint(5), BigUint(3), BigUint(1));
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->IsZero());
  EXPECT_FALSE(ModExp(BigUint(5), BigUint(3), BigUint(0)).ok());
}

TEST(ModularTest, ModSubWrapsCorrectly) {
  BigUint m(100);
  EXPECT_EQ(ModSub(BigUint(10), BigUint(30), m).ToUint64(), 80u);
  EXPECT_EQ(ModSub(BigUint(30), BigUint(10), m).ToUint64(), 20u);
}

TEST(MontgomeryTest, RejectsEvenModulus) {
  EXPECT_FALSE(MontgomeryContext::Create(BigUint(100)).ok());
  EXPECT_FALSE(MontgomeryContext::Create(BigUint(1)).ok());
}

TEST(MontgomeryTest, RoundTripConversion) {
  Rng rng(53);
  auto ctx = MontgomeryContext::Create(BigUint(1000000007));
  ASSERT_TRUE(ctx.ok());
  for (int i = 0; i < 100; ++i) {
    BigUint a(rng.Next() % 1000000007);
    EXPECT_EQ(ctx->FromMontgomery(ctx->ToMontgomery(a)), a);
  }
}

TEST(MontgomeryTest, MulMatchesPlainModMul) {
  Rng rng(59);
  auto p = WellKnownSafePrime(768);
  ASSERT_TRUE(p.ok());
  auto ctx = MontgomeryContext::Create(*p);
  ASSERT_TRUE(ctx.ok());
  for (int i = 0; i < 50; ++i) {
    BigUint a = RandomBelow(*p, rng);
    BigUint b = RandomBelow(*p, rng);
    BigUint got = ctx->FromMontgomery(ctx->MulMont(ctx->ToMontgomery(a), ctx->ToMontgomery(b)));
    EXPECT_EQ(got, a.Mul(b).Mod(*p));
  }
}

TEST(MontgomeryTest, FermatLittleTheorem) {
  // a^(p-1) = 1 mod p for prime p — a strong end-to-end check of ModExp.
  Rng rng(61);
  auto p = WellKnownSafePrime(1024);
  ASSERT_TRUE(p.ok());
  auto ctx = MontgomeryContext::Create(*p);
  ASSERT_TRUE(ctx.ok());
  BigUint p_minus_1 = p->Sub(BigUint(1));
  for (int i = 0; i < 5; ++i) {
    BigUint a = RandomBelow(p_minus_1, rng).Add(BigUint(1));
    EXPECT_TRUE(ctx->ModExp(a, p_minus_1).IsOne());
  }
}

// --- Primality ---

TEST(PrimeTest, SmallKnownPrimesAndComposites) {
  Rng rng(67);
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 97ULL, 251ULL, 65537ULL, 1000000007ULL}) {
    EXPECT_TRUE(IsProbablePrime(BigUint(p), rng)) << p;
  }
  for (uint64_t c : {0ULL, 1ULL, 4ULL, 100ULL, 65539ULL * 3, 1000000007ULL * 3}) {
    EXPECT_FALSE(IsProbablePrime(BigUint(c), rng)) << c;
  }
}

TEST(PrimeTest, CarmichaelNumbersRejected) {
  Rng rng(71);
  // Carmichael numbers fool Fermat tests but not Miller–Rabin.
  for (uint64_t c : {561ULL, 1105ULL, 1729ULL, 2465ULL, 2821ULL, 6601ULL, 8911ULL}) {
    EXPECT_FALSE(IsProbablePrime(BigUint(c), rng)) << c;
  }
}

TEST(PrimeTest, WellKnownSafePrimesAreSafePrimes) {
  Rng rng(73);
  for (size_t bits : {768u, 1024u}) {
    auto p = WellKnownSafePrime(bits);
    ASSERT_TRUE(p.ok()) << bits;
    EXPECT_EQ(p->BitLength(), bits);
    EXPECT_TRUE(IsProbablePrime(*p, rng, 8)) << bits;
    BigUint q = p->Sub(BigUint(1)).ShiftRight(1);
    EXPECT_TRUE(IsProbablePrime(q, rng, 8)) << bits << " (Sophie Germain q)";
  }
}

TEST(PrimeTest, LargerWellKnownPrimesParse) {
  for (size_t bits : {1536u, 2048u}) {
    auto p = WellKnownSafePrime(bits);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->BitLength(), bits);
  }
}

TEST(PrimeTest, UnsupportedSizeFails) {
  EXPECT_FALSE(WellKnownSafePrime(512).ok());
}

TEST(PrimeTest, GeneratePrimeHasRequestedBits) {
  Rng rng(79);
  for (size_t bits : {16u, 32u, 64u, 128u}) {
    auto p = GeneratePrime(bits, rng);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->BitLength(), bits);
    EXPECT_TRUE(IsProbablePrime(*p, rng));
  }
}

TEST(PrimeTest, GenerateSafePrimeStructure) {
  Rng rng(83);
  auto p = GenerateSafePrime(32, rng);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->BitLength(), 32u);
  BigUint q = p->Sub(BigUint(1)).ShiftRight(1);
  EXPECT_TRUE(IsProbablePrime(q, rng));
}

TEST(PrimeTest, RandomBelowIsBelow) {
  Rng rng(89);
  BigUint bound = RandomWithBits(100, rng);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(RandomBelow(bound, rng), bound);
  }
}

TEST(PrimeTest, RandomWithBitsExact) {
  Rng rng(97);
  for (size_t bits : {1u, 7u, 32u, 33u, 100u, 1024u}) {
    EXPECT_EQ(RandomWithBits(bits, rng).BitLength(), bits);
  }
}

}  // namespace
}  // namespace indaas
