// Tests for src/agent/: SIA audit orchestration, report rendering, and the
// auditing agent facade.

#include <gtest/gtest.h>

#include "src/acquire/apt_sim.h"
#include "src/acquire/lshw_sim.h"
#include "src/agent/agent.h"
#include "src/agent/sia_audit.h"

namespace indaas {
namespace {

// Two candidate pairs: {S1,S2} share a ToR and libc6; {S1,S3} share nothing.
DepDb MakeDb() {
  DepDb db;
  db.Add(NetworkDependency{"S1", "Internet", {"ToR1", "Core1"}});
  db.Add(NetworkDependency{"S1", "Internet", {"ToR1", "Core2"}});
  db.Add(NetworkDependency{"S2", "Internet", {"ToR1", "Core1"}});
  db.Add(NetworkDependency{"S2", "Internet", {"ToR1", "Core2"}});
  db.Add(NetworkDependency{"S3", "Internet", {"ToR2", "Core3"}});
  db.Add(NetworkDependency{"S3", "Internet", {"ToR2", "Core4"}});
  db.Add(SoftwareDependency{"Riak1", "S1", {"libc6", "libsvn1"}});
  db.Add(SoftwareDependency{"Riak2", "S2", {"libc6", "libsvn1"}});
  db.Add(SoftwareDependency{"Riak3", "S3", {"musl", "libsvn2"}});
  return db;
}

TEST(SiaAuditTest, RanksIndependentPairFirst) {
  DepDb db = MakeDb();
  AuditSpecification spec;
  spec.candidate_deployments = {{"S1", "S2"}, {"S1", "S3"}};
  auto report = RunSiaAudit(db, spec);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->deployments.size(), 2u);
  // {S1,S3} has no shared dependency -> no unexpected RGs -> ranked first.
  EXPECT_EQ(report->deployments[0].servers, (std::vector<std::string>{"S1", "S3"}));
  EXPECT_EQ(report->deployments[0].unexpected_rgs, 0u);
  EXPECT_GT(report->deployments[1].unexpected_rgs, 0u);
}

TEST(SiaAuditTest, SamplingAlgorithmAgreesOnWinner) {
  DepDb db = MakeDb();
  AuditSpecification spec;
  spec.candidate_deployments = {{"S1", "S2"}, {"S1", "S3"}};
  spec.algorithm = RgAlgorithm::kSampling;
  spec.sampling_rounds = 30000;
  spec.sampling_bias = 0.15;
  auto report = RunSiaAudit(db, spec);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->deployments[0].servers, (std::vector<std::string>{"S1", "S3"}));
}

TEST(SiaAuditTest, ProbabilityMetricReportsOutageProb) {
  DepDb db = MakeDb();
  FailureProbabilityModel model = FailureProbabilityModel::GillEtAlDefaults();
  AuditSpecification spec;
  spec.candidate_deployments = {{"S1", "S2"}, {"S1", "S3"}};
  spec.metric = RankingMetric::kFailureProbability;
  auto report = RunSiaAudit(db, spec, &model);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->deployments.size(), 2u);
  // Independent pair has strictly lower outage probability.
  EXPECT_EQ(report->deployments[0].servers, (std::vector<std::string>{"S1", "S3"}));
  EXPECT_LT(report->deployments[0].top_event_prob, report->deployments[1].top_event_prob);
  EXPECT_GT(report->deployments[0].top_event_prob, 0.0);
}

TEST(SiaAuditTest, ProbabilityMetricNeedsModel) {
  DepDb db = MakeDb();
  AuditSpecification spec;
  spec.candidate_deployments = {{"S1", "S2"}};
  spec.metric = RankingMetric::kFailureProbability;
  EXPECT_FALSE(RunSiaAudit(db, spec, nullptr).ok());
}

TEST(SiaAuditTest, EmptySpecRejected) {
  DepDb db = MakeDb();
  AuditSpecification spec;
  EXPECT_FALSE(RunSiaAudit(db, spec).ok());
}

TEST(SiaAuditTest, RenderContainsRanking) {
  DepDb db = MakeDb();
  AuditSpecification spec;
  spec.candidate_deployments = {{"S1", "S2"}, {"S1", "S3"}};
  auto report = RunSiaAudit(db, spec);
  ASSERT_TRUE(report.ok());
  std::string text = RenderSiaReport(*report);
  EXPECT_NE(text.find("#1"), std::string::npos);
  EXPECT_NE(text.find("S1, S3"), std::string::npos);
  EXPECT_NE(text.find("RG 1"), std::string::npos);
}

TEST(AuditingAgentTest, EndToEndAcquisitionAndAudit) {
  // Wire the agent with real (simulated) acquisition modules and run the
  // full Figure 1 flow.
  PackageUniverse universe = PackageUniverse::KeyValueStoreUniverse();
  AptRdependsSim apt(&universe);
  ASSERT_TRUE(apt.InstallProgram("S1", "riak").ok());
  ASSERT_TRUE(apt.InstallProgram("S2", "riak").ok());
  ASSERT_TRUE(apt.InstallProgram("S3", "redis-server").ok());
  LshwSim lshw;
  Rng rng(11);
  lshw.RegisterMachine("S1", LshwSim::RandomSpec(rng));
  lshw.RegisterMachine("S2", LshwSim::RandomSpec(rng));
  lshw.RegisterMachine("S3", LshwSim::RandomSpec(rng));

  AuditingAgent agent;
  agent.AddModule(&apt);
  agent.AddModule(&lshw);

  AuditSpecification spec;
  spec.candidate_deployments = {{"S1", "S2"}, {"S1", "S3"}};
  ASSERT_TRUE(agent.AcquireDependencies(spec).ok());
  EXPECT_GT(agent.depdb().TotalCount(), 0u);

  auto report = agent.AuditStructural(spec);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->deployments.size(), 2u);
  // Riak+Riak share the whole closure; Riak+Redis share much less — but both
  // share something (libc6 etc.), so compare unexpected-RG counts.
  const auto& best = report->deployments[0];
  EXPECT_EQ(best.servers, (std::vector<std::string>{"S1", "S3"}));
}

TEST(AuditingAgentTest, PrivateAuditThroughFacade) {
  PackageUniverse universe = PackageUniverse::KeyValueStoreUniverse();
  auto riak = universe.Closure("riak");
  auto redis = universe.Closure("redis-server");
  ASSERT_TRUE(riak.ok());
  ASSERT_TRUE(redis.ok());
  AuditingAgent agent;
  PiaAuditOptions options;
  options.psop.group_bits = 768;
  options.max_redundancy = 2;
  auto report = agent.AuditPrivate({{"Cloud1", *riak}, {"Cloud3", *redis}}, options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->rankings[0].size(), 1u);
  // J(Riak, Redis) calibrated near the paper's 0.2939.
  EXPECT_NEAR(report->rankings[0][0].jaccard, 0.2939, 0.03);
}

TEST(SiaAuditTest, ParallelDeploymentsMatchSequential) {
  DepDb db = MakeDb();
  AuditSpecification spec;
  spec.candidate_deployments = {{"S1", "S2"}, {"S1", "S3"}, {"S2", "S3"}};
  auto sequential = RunSiaAudit(db, spec);
  spec.parallel_deployments = 4;
  auto parallel = RunSiaAudit(db, spec);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(sequential->deployments.size(), parallel->deployments.size());
  for (size_t i = 0; i < sequential->deployments.size(); ++i) {
    EXPECT_EQ(sequential->deployments[i].servers, parallel->deployments[i].servers);
    EXPECT_EQ(sequential->deployments[i].unexpected_rgs, parallel->deployments[i].unexpected_rgs);
    EXPECT_DOUBLE_EQ(sequential->deployments[i].independence_score,
                     parallel->deployments[i].independence_score);
  }
}

TEST(AuditingAgentTest, AcquireWithoutHostsFails) {
  AuditingAgent agent;
  AuditSpecification spec;
  EXPECT_FALSE(agent.AcquireDependencies(spec).ok());
}

TEST(AuditingAgentTest, ComposedDeploymentAudit) {
  // Two servers whose only catalogued dependency is the opaque "EBS"
  // service; composing the EBS fault graph in exposes its internal control
  // server as a size-1 risk group.
  AuditingAgent agent;
  agent.depdb().Add(HardwareDependency{"S1", "Service", "EBS"});
  agent.depdb().Add(HardwareDependency{"S2", "Service", "EBS"});

  FaultGraph ebs;
  NodeId control = ebs.AddBasicEvent("ebs-control");
  NodeId backend_a = ebs.AddBasicEvent("ebs-backend-a");
  NodeId backend_b = ebs.AddBasicEvent("ebs-backend-b");
  NodeId chain_a = ebs.AddGate("chain a", GateType::kOr, {backend_a, control});
  NodeId chain_b = ebs.AddGate("chain b", GateType::kOr, {backend_b, control});
  NodeId top = ebs.AddGate("ebs fails", GateType::kAnd, {chain_a, chain_b});
  ebs.SetTopEvent(top);
  ASSERT_TRUE(ebs.Validate().ok());

  auto groups = agent.AuditComposedDeployment({"S1", "S2"}, {{"hw:ebs", &ebs}});
  ASSERT_TRUE(groups.ok());
  ASSERT_FALSE(groups->empty());
  // Size-ranked: the spliced-in control server is the top (size-1) RG.
  EXPECT_EQ((*groups)[0], (std::vector<std::string>{"ebs-control"}));
  // Unknown placeholder is an error.
  EXPECT_FALSE(agent.AuditComposedDeployment({"S1", "S2"}, {{"nope", &ebs}}).ok());
}

}  // namespace
}  // namespace indaas
