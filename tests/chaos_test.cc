// Chaos matrix (ctest label `chaos`): every fault class of the seeded
// injection engine (src/net/chaos.h) runs against both server modes and
// against degraded-capable P-SOP rings. The contract under test is the
// robustness invariant, not any particular failure: within bounded time
// every operation must end in a full correct result, a correctly-marked
// partial result, or a clean typed error — never a hang, a crash, or a
// silently wrong answer.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/deps/depdb.h"
#include "src/net/chaos.h"
#include "src/net/frame.h"
#include "src/net/socket.h"
#include "src/pia/psop.h"
#include "src/svc/client.h"
#include "src/svc/pia_peer.h"
#include "src/svc/proto.h"
#include "src/svc/server.h"
#include "src/util/timer.h"

namespace indaas {
namespace svc {
namespace {

using net::chaos::FaultPlan;

// Uninstalls the plan even when an ASSERT unwinds the test early — a
// leaked plan would inject faults into every later test in the binary.
struct ChaosGuard {
  ~ChaosGuard() { net::chaos::UninstallPlan(); }
};

// One fault class at a moderate per-operation probability. Stalls convert
// to kDeadlineExceeded quickly so the matrix stays fast.
FaultPlan PlanFor(const std::string& fault, uint64_t seed, double p = 0.05) {
  FaultPlan plan;
  plan.seed = seed;
  plan.delay_ms = 2;
  plan.max_stall_ms = 200;
  if (fault == "reset") {
    plan.reset = p;
  } else if (fault == "accept_fail") {
    plan.accept_fail = p;
  } else if (fault == "read_stall") {
    plan.read_stall = p;
  } else if (fault == "write_stall") {
    plan.write_stall = p;
  } else if (fault == "partial_write") {
    plan.partial_write = 1.0;  // harmless when resumption works; always on
  } else if (fault == "delay") {
    plan.delay = 0.25;  // pure jitter, ops must still complete
  } else if (fault == "corrupt") {
    plan.corrupt = p;
  } else if (fault == "byte_cap") {
    plan.send_cap = 8192;
    plan.recv_cap = 8192;
  } else {
    ADD_FAILURE() << "unknown fault class " << fault;
  }
  return plan;
}

// The errors a chaos run is allowed to surface: the transport family
// (reset/refused), a bounded stall, or a detected protocol violation.
// Anything else — especially kOk with wrong bytes — is a bug.
bool CleanTypedError(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kProtocolError;
}

// Per-fault-class variant: there are no wire checksums, so a corrupted
// length byte in the frame header can misframe an otherwise-valid payload,
// which then decodes as garbage and surfaces as a parse error. Still typed,
// bounded, and never a silent wrong answer — but only `corrupt` may do it.
bool CleanTypedErrorFor(const std::string& fault, const Status& status) {
  if (CleanTypedError(status)) {
    return true;
  }
  return fault == "corrupt" && status.code() == StatusCode::kParseError;
}

const char* kFaultClasses[] = {"reset",         "accept_fail", "read_stall",
                               "write_stall",   "partial_write", "delay",
                               "corrupt",       "byte_cap"};

std::string TestDepDbText() {
  DepDb db;
  db.Add(NetworkDependency{"S1", "Internet", {"ToR1", "Core1"}});
  db.Add(NetworkDependency{"S2", "Internet", {"ToR1", "Core1"}});
  db.Add(NetworkDependency{"S3", "Internet", {"ToR2", "Core1"}});
  db.Add(HardwareDependency{"S1", "Disk", "SED900"});
  db.Add(HardwareDependency{"S2", "Disk", "SED900"});
  db.Add(HardwareDependency{"S3", "Disk", "WD200"});
  return db.ExportText();
}

AuditSpecification TestSpec() {
  AuditSpecification spec;
  spec.candidate_deployments = {{"S1", "S2"}, {"S1", "S3"}};
  return spec;
}

// --- FaultPlan parsing and replayability ---

TEST(FaultPlanTest, ParsesAndRoundTrips) {
  auto plan = net::chaos::ParseFaultPlan(
      "seed=42,reset=0.25,read_stall=0.5,send_cap=4096,delay_ms=7,max_stall_ms=100");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->seed, 42u);
  EXPECT_DOUBLE_EQ(plan->reset, 0.25);
  EXPECT_DOUBLE_EQ(plan->read_stall, 0.5);
  EXPECT_EQ(plan->send_cap, 4096u);
  EXPECT_EQ(plan->delay_ms, 7u);
  EXPECT_EQ(plan->max_stall_ms, 100u);
  EXPECT_TRUE(plan->active());
  auto reparsed = net::chaos::ParseFaultPlan(net::chaos::FaultPlanToString(*plan));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(net::chaos::FaultPlanToString(*reparsed), net::chaos::FaultPlanToString(*plan));
}

TEST(FaultPlanTest, RejectsUnknownKeysAndBadRanges) {
  EXPECT_FALSE(net::chaos::ParseFaultPlan("frobnicate=1").ok());
  EXPECT_FALSE(net::chaos::ParseFaultPlan("reset=1.5").ok());
  EXPECT_FALSE(net::chaos::ParseFaultPlan("reset=-0.1").ok());
  EXPECT_FALSE(net::chaos::ParseFaultPlan("reset").ok());
  auto empty = net::chaos::ParseFaultPlan("");
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->active());
}

// The same plan seed must produce the same fault schedule for the same
// per-connection operation sequence: run an identical single-threaded
// socket-pair script twice and demand identical outcomes, step by step.
TEST(FaultPlanTest, SameSeedSameOperationsSameFaultSchedule) {
  auto run_script = [] {
    std::vector<std::string> outcomes;
    auto listener = net::TcpListen(0);
    EXPECT_TRUE(listener.ok());
    auto port = listener->LocalPort();
    EXPECT_TRUE(port.ok());
    auto client = net::TcpConnect(net::Endpoint{"127.0.0.1", *port}, 1000);
    if (!client.ok()) {
      outcomes.push_back("connect:" + client.status().ToString());
      return outcomes;
    }
    auto served = net::TcpAccept(*listener, 1000);
    if (!served.ok()) {
      outcomes.push_back("accept:" + served.status().ToString());
      return outcomes;
    }
    net::FrameLimits limits;
    for (int i = 0; i < 12; ++i) {
      std::string payload(64 + i * 17, static_cast<char>('a' + i));
      Status sent = net::WriteFrame(*client, 7, payload, 300);
      outcomes.push_back("w" + std::to_string(i) + ":" + sent.ToString());
      if (!sent.ok()) {
        break;
      }
      auto frame = net::ReadFrame(*served, limits, 300);
      outcomes.push_back("r" + std::to_string(i) + ":" +
                         (frame.ok() ? "ok" : frame.status().ToString()));
      if (!frame.ok()) {
        break;
      }
    }
    return outcomes;
  };
  ChaosGuard guard;
  FaultPlan plan;
  plan.seed = 7;
  plan.reset = 0.10;
  plan.partial_write = 0.5;
  plan.corrupt = 0.10;
  plan.max_stall_ms = 100;
  net::chaos::InstallPlan(plan);  // resets per-connection state
  std::vector<std::string> first = run_script();
  net::chaos::InstallPlan(plan);
  std::vector<std::string> second = run_script();
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

// --- Fault class x server mode x audit RPC ---

class ChaosRpcMatrix
    : public ::testing::TestWithParam<std::tuple<const char*, ServerMode>> {};

TEST_P(ChaosRpcMatrix, AuditRpcEndsInResultOrTypedError) {
  const std::string fault = std::get<0>(GetParam());
  const ServerMode mode = std::get<1>(GetParam());

  AuditServerOptions options;
  options.mode = mode;
  options.worker_threads = 2;
  options.io_timeout_ms = 1000;
  options.read_deadline_ms = 1000;
  AuditServer server(options);
  ASSERT_TRUE(server.agent().depdb().ImportText(TestDepDbText()).ok());
  ASSERT_TRUE(server.Start().ok());
  const net::Endpoint endpoint{"127.0.0.1", server.port()};

  // The no-chaos answer, computed in process: any kOk reply under chaos
  // must match it exactly (frame-header corruption is detectable, payload
  // bytes are never touched — so a wrong answer would be an engine bug).
  AuditingAgent reference;
  ASSERT_TRUE(reference.depdb().ImportText(TestDepDbText()).ok());
  auto expected = reference.AuditStructural(TestSpec());
  ASSERT_TRUE(expected.ok());
  const std::string expected_text = RenderSiaReport(*expected);

  ChaosGuard guard;
  net::chaos::InstallPlan(PlanFor(fault, /*seed=*/1234));

  WallTimer timer;
  int full_results = 0;
  int typed_errors = 0;
  for (int i = 0; i < 6; ++i) {
    AuditClientOptions client_options;
    client_options.connect_timeout_ms = 500;
    client_options.io_timeout_ms = 1500;
    client_options.rpc_attempts = 2;
    client_options.retry.max_attempts = 2;
    client_options.retry.initial_backoff_s = 0.01;
    client_options.retry.max_backoff_s = 0.05;
    auto client = AuditClient::Connect(endpoint, client_options);
    if (!client.ok()) {
      EXPECT_TRUE(CleanTypedErrorFor(fault, client.status()))
          << client.status().ToString();
      ++typed_errors;
      continue;
    }
    auto report = client->AuditStructural(TestSpec());
    if (report.ok()) {
      EXPECT_EQ(RenderSiaReport(*report), expected_text) << "silent wrong answer";
      ++full_results;
    } else {
      EXPECT_TRUE(CleanTypedErrorFor(fault, report.status()))
          << report.status().ToString();
      ++typed_errors;
    }
  }
  // Bounded: every stall converts within max_stall_ms / io timeouts. The
  // generous ceiling only exists to turn a hang into a readable failure.
  EXPECT_LT(timer.ElapsedSeconds(), 60.0);
  EXPECT_EQ(full_results + typed_errors, 6);
  // Benign fault classes never cost a result: delivery jitter and short
  // writes are handled by resumption, not surfaced to callers.
  if (fault == "delay" || fault == "partial_write") {
    EXPECT_EQ(full_results, 6);
  }
  net::chaos::UninstallPlan();
  server.Stop();
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultsBothModes, ChaosRpcMatrix,
    ::testing::Combine(::testing::ValuesIn(kFaultClasses),
                       ::testing::Values(ServerMode::kReactor,
                                         ServerMode::kThreadPerRequest)),
    [](const ::testing::TestParamInfo<ChaosRpcMatrix::ParamType>& info) {
      return std::string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == ServerMode::kReactor ? "_reactor" : "_threaded");
    });

// --- Fault class x degraded-capable rings ---

PsopOptions RingPsopOptions() {
  PsopOptions psop;
  psop.group_bits = 768;
  psop.seed = 42;
  return psop;
}

std::vector<std::vector<std::string>> RingDatasets(size_t k) {
  std::vector<std::vector<std::string>> datasets;
  for (size_t i = 0; i < k; ++i) {
    datasets.push_back({"shared", "net:core1", "own:" + std::to_string(i),
                        "pair:" + std::to_string(i / 2)});
  }
  return datasets;
}

// Runs a k-party loopback ring with degraded mode on; returns per-peer
// results. `victim_fail_after` != SIZE_MAX arms the deterministic death
// seam on peer `victim`.
std::vector<Result<PsopResult>> RunChaosRing(
    const std::vector<std::vector<std::string>>& datasets,
    size_t victim = SIZE_MAX, size_t victim_fail_after = SIZE_MAX) {
  const size_t k = datasets.size();
  std::vector<PiaPeer> peers;
  PiaPeerOptions options;
  options.psop = RingPsopOptions();
  options.allow_degraded = true;
  options.connect_timeout_ms = 1000;
  options.io_timeout_ms = 1000;
  options.probe_window_ms = 1500;
  options.probe_io_timeout_ms = 200;
  options.max_recovery_attempts = 2;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_s = 0.01;
  options.retry.max_backoff_s = 0.05;
  for (size_t i = 0; i < k; ++i) {
    auto peer = PiaPeer::Listen(0);
    EXPECT_TRUE(peer.ok()) << peer.status().ToString();
    options.peers.push_back(net::Endpoint{"127.0.0.1", peer->listen_port()});
    peers.push_back(std::move(*peer));
  }
  std::vector<Result<PsopResult>> results(k, InternalError("peer did not run"));
  std::vector<std::thread> threads;
  for (size_t i = 0; i < k; ++i) {
    threads.emplace_back([&, i] {
      PiaPeerOptions mine = options;
      mine.self_index = i;
      if (i == victim) {
        mine.fail_after_exchanges = victim_fail_after;
      }
      results[i] = peers[i].RunPsop(datasets[i], mine);
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  return results;
}

// The jaccard a reformed ring must report: the in-process protocol run
// over exactly the surviving datasets.
double ExpectedJaccard(const std::vector<std::vector<std::string>>& datasets,
                       const std::vector<uint32_t>& excluded) {
  std::vector<std::vector<std::string>> surviving;
  for (size_t i = 0; i < datasets.size(); ++i) {
    if (std::find(excluded.begin(), excluded.end(), static_cast<uint32_t>(i)) ==
        excluded.end()) {
      surviving.push_back(datasets[i]);
    }
  }
  auto reference = RunPsop(surviving, RingPsopOptions());
  EXPECT_TRUE(reference.ok());
  return reference.ok() ? reference->jaccard : -1.0;
}

class ChaosRingMatrix
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(ChaosRingMatrix, RingEndsInFullPartialOrTypedError) {
  const std::string fault = std::get<0>(GetParam());
  const size_t k = static_cast<size_t>(std::get<1>(GetParam()));
  auto datasets = RingDatasets(k);
  auto full_reference = RunPsop(datasets, RingPsopOptions());
  ASSERT_TRUE(full_reference.ok());

  ChaosGuard guard;
  // Rings multiply operation counts by k hops, so a lower per-op
  // probability keeps most sessions recoverable instead of collapsing.
  net::chaos::InstallPlan(PlanFor(fault, /*seed=*/99, /*p=*/0.01));

  WallTimer timer;
  auto results = RunChaosRing(datasets);
  net::chaos::UninstallPlan();
  EXPECT_LT(timer.ElapsedSeconds(), 90.0);

  for (size_t i = 0; i < results.size(); ++i) {
    const auto& result = results[i];
    if (!result.ok()) {
      EXPECT_TRUE(CleanTypedErrorFor(fault, result.status()))
          << "peer " << i << ": " << result.status().ToString();
      continue;
    }
    if (result->degraded()) {
      // A partial result must say so, must not claim the dead peers'
      // sets, and must equal a clean run among the survivors.
      EXPECT_FALSE(result->excluded.empty()) << "peer " << i;
      EXPECT_GE(result->recovery_attempts, 1u) << "peer " << i;
      EXPECT_GE(k - result->excluded.size(), 2u) << "peer " << i;
      EXPECT_EQ(result->jaccard, ExpectedJaccard(datasets, result->excluded))
          << "peer " << i << " degraded result diverged from survivor reference";
    } else {
      EXPECT_EQ(result->jaccard, full_reference->jaccard) << "peer " << i;
      EXPECT_EQ(result->intersection, full_reference->intersection) << "peer " << i;
      EXPECT_EQ(result->union_size, full_reference->union_size) << "peer " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultsSmallRings, ChaosRingMatrix,
    ::testing::Combine(::testing::ValuesIn(kFaultClasses), ::testing::Values(3, 5)),
    [](const ::testing::TestParamInfo<ChaosRingMatrix::ParamType>& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::to_string(std::get<1>(info.param)) + "party";
    });

// --- Deterministic peer-death recovery (no randomness at all) ---

TEST(DegradedRingTest, SeamKilledPeerIsExcludedByEverySurvivor) {
  const size_t k = 5;
  const size_t victim = 2;
  auto datasets = RingDatasets(k);
  WallTimer timer;
  auto results = RunChaosRing(datasets, victim, /*victim_fail_after=*/1);
  EXPECT_LT(timer.ElapsedSeconds(), 60.0);

  // The victim's own session dies on the seam's internal error.
  EXPECT_FALSE(results[victim].ok());

  // Every survivor returns the same partial result: victim excluded,
  // exactly one reformation, jaccard of the 4-party survivor run.
  const double expected =
      ExpectedJaccard(datasets, {static_cast<uint32_t>(victim)});
  for (size_t i = 0; i < k; ++i) {
    if (i == victim) {
      continue;
    }
    ASSERT_TRUE(results[i].ok())
        << "survivor " << i << ": " << results[i].status().ToString();
    EXPECT_TRUE(results[i]->degraded()) << "survivor " << i;
    EXPECT_EQ(results[i]->excluded,
              std::vector<uint32_t>{static_cast<uint32_t>(victim)})
        << "survivor " << i;
    EXPECT_EQ(results[i]->recovery_attempts, 1u) << "survivor " << i;
    EXPECT_EQ(results[i]->jaccard, expected) << "survivor " << i;
  }
}

TEST(DegradedRingTest, TwoPartyRingCollapseIsTypedUnavailable) {
  // Killing one peer of a 2-ring leaves one survivor — below quorum. The
  // survivor must fail with kUnavailable ("ring collapsed"), not hang.
  auto datasets = RingDatasets(2);
  WallTimer timer;
  auto results = RunChaosRing(datasets, /*victim=*/1, /*victim_fail_after=*/0);
  EXPECT_LT(timer.ElapsedSeconds(), 30.0);
  ASSERT_FALSE(results[0].ok());
  EXPECT_EQ(results[0].status().code(), StatusCode::kUnavailable)
      << results[0].status().ToString();
}

TEST(DegradedRingTest, DefaultModeStillFailsWholeSessionOnPeerDeath) {
  // allow_degraded off: the pre-recovery contract — no partial results.
  const size_t k = 3;
  auto datasets = RingDatasets(k);
  std::vector<PiaPeer> peers;
  PiaPeerOptions options;
  options.psop = RingPsopOptions();
  options.io_timeout_ms = 800;
  options.connect_timeout_ms = 800;
  for (size_t i = 0; i < k; ++i) {
    auto peer = PiaPeer::Listen(0);
    ASSERT_TRUE(peer.ok());
    options.peers.push_back(net::Endpoint{"127.0.0.1", peer->listen_port()});
    peers.push_back(std::move(*peer));
  }
  std::vector<Result<PsopResult>> results(k, InternalError("peer did not run"));
  std::vector<std::thread> threads;
  for (size_t i = 0; i < k; ++i) {
    threads.emplace_back([&, i] {
      PiaPeerOptions mine = options;
      mine.self_index = i;
      if (i == 1) {
        mine.fail_after_exchanges = 1;
      }
      results[i] = peers[i].RunPsop(datasets[i], mine);
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (size_t i = 0; i < k; ++i) {
    EXPECT_FALSE(results[i].ok()) << "peer " << i << " returned a result "
                                  << "despite a dead ring peer and no degraded mode";
  }
}

// --- Adaptive admission under chaos-free overload ---

TEST(AdaptiveAdmissionTest, ShedsUnderStandingQueueThenRecovers) {
  AuditServerOptions options;
  options.worker_threads = 1;  // one slow lane => a standing queue
  options.adaptive_admission = true;
  options.target_queue_delay_s = 0.001;
  AuditServer server(options);
  ASSERT_TRUE(server.agent().depdb().ImportText(TestDepDbText()).ok());
  ASSERT_TRUE(server.Start().ok());

  // Slow sampling audits from several synchronous clients keep a handful
  // of requests racing for the single worker, so every picked request has
  // queued behind a full service time — far above the 1 ms target. The
  // controller must start shedding, yet keep serving some of the load.
  AuditSpecification slow_spec = TestSpec();
  slow_spec.algorithm = RgAlgorithm::kSampling;
  slow_spec.sampling_rounds = 200000;
  std::atomic<int> sheds{0};
  std::atomic<int> answers{0};
  std::atomic<int> unexpected{0};
  std::vector<std::thread> drivers;
  for (int t = 0; t < 4; ++t) {
    drivers.emplace_back([&] {
      AuditClientOptions client_options;
      client_options.rpc_attempts = 1;
      auto client = AuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()},
                                         client_options);
      if (!client.ok()) {
        ++unexpected;
        return;
      }
      WallTimer timer;
      for (int i = 0; i < 20 && timer.ElapsedSeconds() < 20.0; ++i) {
        auto report = client->AuditStructural(slow_spec);
        if (report.ok()) {
          ++answers;
        } else if (report.status().code() == StatusCode::kUnavailable) {
          ++sheds;
        } else {
          ADD_FAILURE() << report.status().ToString();
          ++unexpected;
        }
      }
    });
  }
  for (auto& driver : drivers) {
    driver.join();
  }
  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_GT(answers.load(), 0);
  EXPECT_GT(sheds.load(), 0) << "standing queue never tripped the adaptive controller";

  // Idle windows decay the level back to zero: after a quiet second a
  // cheap request must be admitted again.
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  AuditClientOptions client_options;
  client_options.rpc_attempts = 1;
  auto client =
      AuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()}, client_options);
  ASSERT_TRUE(client.ok());
  auto after = client->AuditStructural(TestSpec());
  EXPECT_TRUE(after.ok()) << after.status().ToString();
  server.Stop();
}

}  // namespace
}  // namespace svc
}  // namespace indaas
