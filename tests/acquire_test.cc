// Tests for src/acquire/: the three simulated dependency acquisition modules
// and the acquisition runner.

#include <gtest/gtest.h>

#include <set>

#include "src/acquire/apt_sim.h"
#include "src/acquire/dam.h"
#include "src/acquire/lshw_sim.h"
#include "src/acquire/nsdminer_sim.h"
#include "src/pia/jaccard.h"
#include "src/topology/case_study.h"
#include "src/util/rng.h"

namespace indaas {
namespace {

// --- NSDMiner simulator ---

TEST(NsdMinerTest, InfersRoutesFromFlows) {
  NsdMinerSim miner(2);
  FlowRecord flow{"S1", "Internet", {"ToR1", "Core1"}};
  miner.IngestFlow(flow);
  auto once = miner.Collect("S1");
  ASSERT_TRUE(once.ok());
  EXPECT_TRUE(once->empty());  // Below the noise threshold.
  miner.IngestFlow(flow);
  auto twice = miner.Collect("S1");
  ASSERT_TRUE(twice.ok());
  ASSERT_EQ(twice->size(), 1u);
  const auto* net = std::get_if<NetworkDependency>(&(*twice)[0]);
  ASSERT_NE(net, nullptr);
  EXPECT_EQ(net->route, flow.route);
}

TEST(NsdMinerTest, CollectsOnlyForRequestedHost) {
  NsdMinerSim miner(1);
  miner.IngestFlow({"S1", "Internet", {"ToR1"}});
  miner.IngestFlow({"S2", "Internet", {"ToR2"}});
  auto s1 = miner.Collect("S1");
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(s1->size(), 1u);
  auto s3 = miner.Collect("S3");
  ASSERT_TRUE(s3.ok());
  EXPECT_TRUE(s3->empty());
}

TEST(NsdMinerTest, TrafficGenerationCoversEcmpPaths) {
  auto topo = BuildLabCloud();
  ASSERT_TRUE(topo.ok());
  Rng rng(7);
  auto flows = GenerateTraffic(*topo, "Server1", "Internet", 200, rng);
  ASSERT_TRUE(flows.ok());
  EXPECT_EQ(flows->size(), 200u);
  std::set<std::vector<std::string>> routes;
  for (const FlowRecord& flow : *flows) {
    routes.insert(flow.route);
  }
  EXPECT_EQ(routes.size(), 2u);  // Switch1 -> Core1|Core2

  NsdMinerSim miner(3);
  miner.IngestFlows(*flows);
  auto collected = miner.Collect("Server1");
  ASSERT_TRUE(collected.ok());
  EXPECT_EQ(collected->size(), 2u);
}

TEST(NsdMinerTest, NoRouteError) {
  auto topo = BuildLabCloud();
  ASSERT_TRUE(topo.ok());
  Rng rng(7);
  EXPECT_FALSE(GenerateTraffic(*topo, "nope", "Internet", 1, rng).ok());
}

// --- lshw simulator ---

TEST(LshwTest, EmitsHostPrefixedComponents) {
  LshwSim lshw;
  lshw.RegisterMachine("S1", MachineSpec{"Intel(R)X5550@2.6GHz", "SED900", "DDR3", "82599"});
  auto records = lshw.Collect("S1");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 4u);
  const auto* cpu = std::get_if<HardwareDependency>(&(*records)[0]);
  ASSERT_NE(cpu, nullptr);
  EXPECT_EQ(cpu->hw, "S1");
  EXPECT_EQ(cpu->type, "CPU");
  EXPECT_EQ(cpu->dep, "S1-Intel(R)X5550@2.6GHz");  // Figure 3's format
}

TEST(LshwTest, SharedComponentsKeepGlobalIdentity) {
  LshwSim lshw;
  Rng rng(1);
  lshw.RegisterMachine("VM7", LshwSim::RandomSpec(rng));
  lshw.RegisterSharedComponent("VM7", "Host", "Server2");
  lshw.RegisterSharedComponent("VM8", "Host", "Server2");
  auto vm7 = lshw.Collect("VM7");
  ASSERT_TRUE(vm7.ok());
  bool found = false;
  for (const auto& record : *vm7) {
    const auto* hw = std::get_if<HardwareDependency>(&record);
    if (hw != nullptr && hw->type == "Host") {
      EXPECT_EQ(hw->dep, "Server2");  // NOT VM7-prefixed
      found = true;
    }
  }
  EXPECT_TRUE(found);
  auto vm8 = lshw.Collect("VM8");
  ASSERT_TRUE(vm8.ok());
  EXPECT_EQ(vm8->size(), 1u);
}

TEST(LshwTest, UnknownMachineFails) {
  LshwSim lshw;
  EXPECT_FALSE(lshw.Collect("ghost").ok());
}

TEST(LshwTest, RandomSpecDeterministicPerSeed) {
  Rng a(5);
  Rng b(5);
  MachineSpec sa = LshwSim::RandomSpec(a);
  MachineSpec sb = LshwSim::RandomSpec(b);
  EXPECT_EQ(sa.cpu_model, sb.cpu_model);
  EXPECT_EQ(sa.disk_model, sb.disk_model);
}

// --- apt-rdepends simulator ---

TEST(AptSimTest, ClosureFollowsChains) {
  PackageUniverse universe;
  ASSERT_TRUE(universe.AddPackage("app", "1.0", {"libA"}).ok());
  ASSERT_TRUE(universe.AddPackage("libA", "2.0", {"libB"}).ok());
  ASSERT_TRUE(universe.AddPackage("libB", "3.0", {}).ok());
  auto closure = universe.Closure("app");
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ(*closure, (std::vector<std::string>{"libA=2.0", "libB=3.0"}));
}

TEST(AptSimTest, ClosureHandlesCycles) {
  PackageUniverse universe;
  ASSERT_TRUE(universe.AddPackage("a", "1", {"b"}).ok());
  ASSERT_TRUE(universe.AddPackage("b", "1", {"a"}).ok());
  auto closure = universe.Closure("a");
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ(closure->size(), 1u);  // only b; a itself excluded
}

TEST(AptSimTest, ClosureFailsOnDanglingDep) {
  PackageUniverse universe;
  ASSERT_TRUE(universe.AddPackage("a", "1", {"ghost"}).ok());
  EXPECT_FALSE(universe.Closure("a").ok());
}

TEST(AptSimTest, DuplicatePackageRejected) {
  PackageUniverse universe;
  ASSERT_TRUE(universe.AddPackage("a", "1", {}).ok());
  EXPECT_FALSE(universe.AddPackage("a", "2", {}).ok());
}

TEST(AptSimTest, KeyValueStoreUniverseClosureSizes) {
  // The calibrated block model (DESIGN.md): closure sizes 79/70/57/78.
  PackageUniverse universe = PackageUniverse::KeyValueStoreUniverse();
  auto riak = universe.Closure("riak");
  auto mongo = universe.Closure("mongodb-server");
  auto redis = universe.Closure("redis-server");
  auto couch = universe.Closure("couchdb");
  ASSERT_TRUE(riak.ok());
  ASSERT_TRUE(mongo.ok());
  ASSERT_TRUE(redis.ok());
  ASSERT_TRUE(couch.ok());
  EXPECT_EQ(riak->size(), 79u);
  EXPECT_EQ(mongo->size(), 70u);
  EXPECT_EQ(redis->size(), 57u);
  EXPECT_EQ(couch->size(), 78u);
}

TEST(AptSimTest, KeyValueStoreUniverseReproducesTable2PairOrder) {
  PackageUniverse universe = PackageUniverse::KeyValueStoreUniverse();
  auto closure = [&](const char* pkg) {
    auto c = universe.Closure(pkg);
    EXPECT_TRUE(c.ok());
    return *c;
  };
  std::vector<std::vector<std::string>> sets = {closure("riak"), closure("mongodb-server"),
                                                closure("redis-server"), closure("couchdb")};
  auto jac = [&](size_t a, size_t b) {
    auto j = JaccardSimilarity({sets[a], sets[b]});
    EXPECT_TRUE(j.ok());
    return *j;
  };
  // Table 2 order (ascending Jaccard):
  // C2&C4 < C2&C3 < C1&C4 < C1&C3 < C3&C4 < C1&C2  (1=Riak 2=Mongo 3=Redis 4=Couch)
  double j24 = jac(1, 3), j23 = jac(1, 2), j14 = jac(0, 3), j13 = jac(0, 2), j34 = jac(2, 3),
         j12 = jac(0, 1);
  EXPECT_LT(j24, j23);
  EXPECT_LT(j23, j14);
  EXPECT_LT(j14, j13);
  EXPECT_LT(j13, j34);
  EXPECT_LT(j34, j12);
  // Magnitudes near the paper's: J(C1,C2)=0.5059, J(C2,C4)=0.1419.
  EXPECT_NEAR(j12, 0.5059, 0.03);
  EXPECT_NEAR(j24, 0.1419, 0.03);
}

TEST(AptSimTest, CollectEmitsSoftwareRecords) {
  PackageUniverse universe = PackageUniverse::KeyValueStoreUniverse();
  AptRdependsSim apt(&universe);
  ASSERT_TRUE(apt.InstallProgram("cloud1-host", "riak").ok());
  EXPECT_FALSE(apt.InstallProgram("cloud1-host", "not-a-package").ok());
  auto records = apt.Collect("cloud1-host");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  const auto* sw = std::get_if<SoftwareDependency>(&(*records)[0]);
  ASSERT_NE(sw, nullptr);
  EXPECT_EQ(sw->pgm, "riak");
  EXPECT_EQ(sw->deps.size(), 79u);
  // Versioned entries ("name=version").
  EXPECT_NE(sw->deps[0].find('='), std::string::npos);
}

// --- Acquisition runner ---

TEST(RunAcquisitionTest, FillsDepDb) {
  PackageUniverse universe = PackageUniverse::KeyValueStoreUniverse();
  AptRdependsSim apt(&universe);
  ASSERT_TRUE(apt.InstallProgram("S1", "redis-server").ok());
  LshwSim lshw;
  Rng rng(3);
  lshw.RegisterMachine("S1", LshwSim::RandomSpec(rng));

  DepDb db;
  ASSERT_TRUE(RunAcquisition({&apt, &lshw}, {"S1"}, db).ok());
  EXPECT_EQ(db.SoftwareOn("S1").size(), 1u);
  EXPECT_EQ(db.HardwareOf("S1").size(), 4u);
}

TEST(RunAcquisitionTest, NullModuleRejected) {
  DepDb db;
  EXPECT_FALSE(RunAcquisition({nullptr}, {"S1"}, db).ok());
}

}  // namespace
}  // namespace indaas
