// Tests for src/sia/: minimal risk group algorithm, failure sampling,
// ranking, independence scores, and the DepDB fault-graph builder.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/deps/depdb.h"
#include "src/deps/prob_model.h"
#include "src/graph/levels.h"
#include "src/sia/builder.h"
#include "src/sia/ranking.h"
#include "src/sia/risk_groups.h"
#include "src/sia/sampling.h"
#include "src/util/rng.h"

namespace indaas {
namespace {

// Figure 4(a): E1 = OR(A1,A2), E2 = OR(A2,A3), top = AND(E1,E2).
// Minimal RGs: {A2} and {A1,A3}.
FaultGraph BuildFig4a(NodeId* a1_out = nullptr, NodeId* a2_out = nullptr,
                      NodeId* a3_out = nullptr) {
  FaultGraph graph;
  NodeId a1 = graph.AddBasicEvent("A1", 0.1);
  NodeId a2 = graph.AddBasicEvent("A2", 0.2);
  NodeId a3 = graph.AddBasicEvent("A3", 0.3);
  NodeId e1 = graph.AddGate("E1 fails", GateType::kOr, {a1, a2});
  NodeId e2 = graph.AddGate("E2 fails", GateType::kOr, {a2, a3});
  NodeId top = graph.AddGate("deployment fails", GateType::kAnd, {e1, e2});
  graph.SetTopEvent(top);
  EXPECT_TRUE(graph.Validate().ok());
  if (a1_out != nullptr) {
    *a1_out = a1;
  }
  if (a2_out != nullptr) {
    *a2_out = a2;
  }
  if (a3_out != nullptr) {
    *a3_out = a3;
  }
  return graph;
}

// Figure 4(c)-style network graph: two servers behind a shared ToR with
// redundant cores. Minimal RGs include {ToR1} and {Core1, Core2}.
FaultGraph BuildSharedTorGraph() {
  FaultGraph graph;
  NodeId tor = graph.AddBasicEvent("ToR1");
  NodeId core1 = graph.AddBasicEvent("Core1");
  NodeId core2 = graph.AddBasicEvent("Core2");
  NodeId s1 = graph.AddBasicEvent("S1");
  NodeId s2 = graph.AddBasicEvent("S2");
  auto server = [&](const std::string& name, NodeId self) {
    NodeId p1 = graph.AddGate(name + "/p1", GateType::kOr, {tor, core1});
    NodeId p2 = graph.AddGate(name + "/p2", GateType::kOr, {tor, core2});
    NodeId net = graph.AddGate(name + "/net", GateType::kAnd, {p1, p2});
    return graph.AddGate(name + " fails", GateType::kOr, {self, net});
  };
  NodeId g1 = server("S1", s1);
  NodeId g2 = server("S2", s2);
  NodeId top = graph.AddGate("top", GateType::kAnd, {g1, g2});
  graph.SetTopEvent(top);
  EXPECT_TRUE(graph.Validate().ok());
  return graph;
}

std::set<std::vector<std::string>> Names(const FaultGraph& graph,
                                         const std::vector<RiskGroup>& groups) {
  std::set<std::vector<std::string>> out;
  for (const RiskGroup& group : groups) {
    std::vector<std::string> names;
    for (NodeId id : group) {
      names.push_back(graph.node(id).name);
    }
    std::sort(names.begin(), names.end());
    out.insert(names);
  }
  return out;
}

// --- Minimal RG algorithm ---

TEST(MinimalRgTest, Fig4aGroups) {
  FaultGraph graph = BuildFig4a();
  auto result = ComputeMinimalRiskGroups(graph);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->size_bounded);
  auto names = Names(graph, result->groups);
  EXPECT_EQ(names, (std::set<std::vector<std::string>>{{"A2"}, {"A1", "A3"}}));
}

TEST(MinimalRgTest, SharedTorGraphGroups) {
  FaultGraph graph = BuildSharedTorGraph();
  auto result = ComputeMinimalRiskGroups(graph);
  ASSERT_TRUE(result.ok());
  auto names = Names(graph, result->groups);
  EXPECT_TRUE(names.count({"ToR1"}) == 1);
  EXPECT_TRUE(names.count({"Core1", "Core2"}) == 1);
  EXPECT_TRUE(names.count({"S1", "S2"}) == 1);
  // Mixed groups: one server down + the other's network out.
  EXPECT_TRUE(names.count({"Core1", "Core2", "S1"}) == 0)  // absorbed by {Core1,Core2}
      << "non-minimal group survived";
}

TEST(MinimalRgTest, EveryResultIsTrulyMinimal) {
  FaultGraph graph = BuildSharedTorGraph();
  auto result = ComputeMinimalRiskGroups(graph);
  ASSERT_TRUE(result.ok());
  for (const RiskGroup& group : result->groups) {
    EXPECT_TRUE(IsMinimalRiskGroup(graph, group));
  }
}

TEST(MinimalRgTest, KofNGateCutSets) {
  // 2-of-3 gate over singletons: cut sets are all pairs.
  FaultGraph graph;
  NodeId a = graph.AddBasicEvent("a");
  NodeId b = graph.AddBasicEvent("b");
  NodeId c = graph.AddBasicEvent("c");
  NodeId top = graph.AddKofNGate("2of3", 2, {a, b, c});
  graph.SetTopEvent(top);
  ASSERT_TRUE(graph.Validate().ok());
  auto result = ComputeMinimalRiskGroups(graph);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->groups.size(), 3u);
  for (const RiskGroup& group : result->groups) {
    EXPECT_EQ(group.size(), 2u);
  }
}

TEST(MinimalRgTest, SizeBoundPrunes) {
  FaultGraph graph = BuildFig4a();
  MinimalRgOptions options;
  options.max_rg_size = 1;
  auto result = ComputeMinimalRiskGroups(graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->size_bounded);
  auto names = Names(graph, result->groups);
  EXPECT_EQ(names, (std::set<std::vector<std::string>>{{"A2"}}));
}

TEST(MinimalRgTest, BudgetExceededFailsCleanly) {
  // AND of many ORs: cut set count is 3^n; a small budget must trip.
  FaultGraph graph;
  std::vector<NodeId> ors;
  for (int i = 0; i < 12; ++i) {
    std::vector<NodeId> basics;
    for (int j = 0; j < 3; ++j) {
      basics.push_back(graph.AddBasicEvent("b" + std::to_string(i) + "_" + std::to_string(j)));
    }
    ors.push_back(graph.AddGate("or" + std::to_string(i), GateType::kOr, basics));
  }
  NodeId top = graph.AddGate("top", GateType::kAnd, ors);
  graph.SetTopEvent(top);
  ASSERT_TRUE(graph.Validate().ok());
  MinimalRgOptions options;
  options.max_cut_sets_per_node = 1000;
  auto result = ComputeMinimalRiskGroups(graph, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(MinimalRgTest, RequiresValidatedGraph) {
  FaultGraph graph;
  EXPECT_FALSE(ComputeMinimalRiskGroups(graph).ok());
}

TEST(MinimalRgTest, AbsorptionAblationSameResult) {
  // Inline absorption is a performance knob; results must be identical.
  FaultGraph graph = BuildSharedTorGraph();
  MinimalRgOptions inline_on;
  MinimalRgOptions inline_off;
  inline_off.inline_absorption = false;
  auto on = ComputeMinimalRiskGroups(graph, inline_on);
  auto off = ComputeMinimalRiskGroups(graph, inline_off);
  ASSERT_TRUE(on.ok());
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(Names(graph, on->groups), Names(graph, off->groups));
}

// --- Bitset vs vector engine on the fixed graphs ---

TEST(MinimalRgTest, EnginesAgreeOnFixedGraphs) {
  for (FaultGraph graph : {BuildFig4a(), BuildSharedTorGraph()}) {
    MinimalRgOptions bitset_options;
    bitset_options.engine = RgEngine::kBitset;
    MinimalRgOptions vector_options;
    vector_options.engine = RgEngine::kVector;
    auto bitset = ComputeMinimalRiskGroups(graph, bitset_options);
    auto vector = ComputeMinimalRiskGroups(graph, vector_options);
    ASSERT_TRUE(bitset.ok());
    ASSERT_TRUE(vector.ok());
    EXPECT_EQ(bitset->groups, vector->groups);
    EXPECT_EQ(bitset->size_bounded, vector->size_bounded);
  }
}

TEST(MinimalRgTest, BitsetEngineBudgetExceededFailsCleanly) {
  // Same 3^12-cut-set workload as BudgetExceededFailsCleanly, bitset engine.
  FaultGraph graph;
  std::vector<NodeId> ors;
  for (int i = 0; i < 12; ++i) {
    std::vector<NodeId> basics;
    for (int j = 0; j < 3; ++j) {
      basics.push_back(graph.AddBasicEvent("b" + std::to_string(i) + "_" + std::to_string(j)));
    }
    ors.push_back(graph.AddGate("or" + std::to_string(i), GateType::kOr, basics));
  }
  NodeId top = graph.AddGate("top", GateType::kAnd, ors);
  graph.SetTopEvent(top);
  ASSERT_TRUE(graph.Validate().ok());
  MinimalRgOptions options;
  options.engine = RgEngine::kBitset;
  options.max_cut_sets_per_node = 1000;
  auto result = ComputeMinimalRiskGroups(graph, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(MinimalRgTest, BitsetEngineSizeBoundPrunes) {
  FaultGraph graph = BuildFig4a();
  MinimalRgOptions options;
  options.engine = RgEngine::kBitset;
  options.max_rg_size = 1;
  auto result = ComputeMinimalRiskGroups(graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->size_bounded);
  auto names = Names(graph, result->groups);
  EXPECT_EQ(names, (std::set<std::vector<std::string>>{{"A2"}}));
}

TEST(MinimalRgTest, BitsetEngineWideGraphCrossesWordBoundary) {
  // 70 basic events force a 2-word stride; OR over all of them plus an AND
  // pair spanning both words.
  FaultGraph graph;
  std::vector<NodeId> basics;
  for (int i = 0; i < 70; ++i) {
    basics.push_back(graph.AddBasicEvent("b" + std::to_string(i)));
  }
  NodeId wide_or = graph.AddGate("wide_or", GateType::kOr,
                                 std::vector<NodeId>(basics.begin() + 2, basics.end()));
  NodeId pair = graph.AddGate("pair", GateType::kAnd, {basics[0], basics[1]});
  NodeId top = graph.AddGate("top", GateType::kOr, {wide_or, pair});
  graph.SetTopEvent(top);
  ASSERT_TRUE(graph.Validate().ok());
  for (RgEngine engine : {RgEngine::kBitset, RgEngine::kVector}) {
    MinimalRgOptions options;
    options.engine = engine;
    auto result = ComputeMinimalRiskGroups(graph, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->groups.size(), 69u);  // 68 singletons + {b0, b1}
    EXPECT_EQ(result->groups.back(), (RiskGroup{basics[0], basics[1]}));
  }
}

// --- MinimizeRiskGroups / subset helpers ---

TEST(RiskGroupUtilTest, IsSubsetOf) {
  EXPECT_TRUE(IsSubsetOf({1, 3}, {1, 2, 3}));
  EXPECT_FALSE(IsSubsetOf({1, 4}, {1, 2, 3}));
  EXPECT_TRUE(IsSubsetOf({}, {1}));
  EXPECT_FALSE(IsSubsetOf({1, 2}, {1}));
}

TEST(RiskGroupUtilTest, MinimizeRemovesSupersetsAndDupes) {
  auto minimized = MinimizeRiskGroups({{1, 2}, {2}, {1, 2, 3}, {2}, {1, 3}});
  EXPECT_EQ(minimized, (std::vector<RiskGroup>{{2}, {1, 3}}));
}

// --- Failure sampling ---

TEST(SamplingTest, FindsAllGroupsOnSmallGraph) {
  FaultGraph graph = BuildFig4a();
  SamplingOptions options;
  options.rounds = 20000;
  options.failure_bias = 0.2;
  options.shrink = ShrinkMode::kGreedy;
  auto result = SampleRiskGroups(graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Names(graph, result->groups),
            (std::set<std::vector<std::string>>{{"A2"}, {"A1", "A3"}}));
  EXPECT_GT(result->failing_rounds, 0u);
  EXPECT_EQ(result->rounds_executed, 20000u);
}

TEST(SamplingTest, ShrinkYieldsMinimalGroups) {
  FaultGraph graph = BuildSharedTorGraph();
  SamplingOptions options;
  options.rounds = 30000;
  options.failure_bias = 0.15;
  options.shrink = ShrinkMode::kGreedy;
  auto result = SampleRiskGroups(graph, options);
  ASSERT_TRUE(result.ok());
  for (const RiskGroup& group : result->groups) {
    EXPECT_TRUE(IsMinimalRiskGroup(graph, group));
  }
}

TEST(SamplingTest, WithoutShrinkGroupsStillFailTop) {
  FaultGraph graph = BuildSharedTorGraph();
  SamplingOptions options;
  options.rounds = 5000;
  options.failure_bias = 0.3;
  options.shrink = ShrinkMode::kNone;
  auto result = SampleRiskGroups(graph, options);
  ASSERT_TRUE(result.ok());
  for (const RiskGroup& group : result->groups) {
    EXPECT_TRUE(FailsTopEvent(graph, group));
  }
}

TEST(SamplingTest, DeterministicPerSeed) {
  FaultGraph graph = BuildFig4a();
  SamplingOptions options;
  options.rounds = 2000;
  options.seed = 99;
  auto r1 = SampleRiskGroups(graph, options);
  auto r2 = SampleRiskGroups(graph, options);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->groups, r2->groups);
  EXPECT_EQ(r1->failing_rounds, r2->failing_rounds);
}

TEST(SamplingTest, MultithreadedCoversSameGroups) {
  FaultGraph graph = BuildFig4a();
  SamplingOptions options;
  options.rounds = 40000;
  options.failure_bias = 0.2;
  options.threads = 4;
  options.shrink = ShrinkMode::kGreedy;
  auto result = SampleRiskGroups(graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->groups.size(), 2u);
  EXPECT_EQ(result->rounds_executed, 40000u);
}

TEST(SamplingTest, EventProbBiases) {
  FaultGraph graph = BuildFig4a();
  SamplingOptions options;
  options.rounds = 20000;
  options.use_event_probs = true;  // A2 has p=0.2 etc.
  options.shrink = ShrinkMode::kGreedy;
  auto result = SampleRiskGroups(graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->groups.size(), 1u);
}

TEST(SamplingTest, RejectsBadOptions) {
  FaultGraph graph = BuildFig4a();
  SamplingOptions zero_rounds;
  zero_rounds.rounds = 0;
  EXPECT_FALSE(SampleRiskGroups(graph, zero_rounds).ok());
  SamplingOptions bad_bias;
  bad_bias.failure_bias = 1.5;
  EXPECT_FALSE(SampleRiskGroups(graph, bad_bias).ok());
  FaultGraph unvalidated;
  SamplingOptions ok;
  EXPECT_FALSE(SampleRiskGroups(unvalidated, ok).ok());
}

TEST(SamplingTest, EarlyStopOnDistinctGroups) {
  FaultGraph graph = BuildFig4a();
  SamplingOptions options;
  options.rounds = 1000000;
  options.failure_bias = 0.5;
  options.max_distinct_groups = 1;
  options.shrink = ShrinkMode::kGreedy;
  auto result = SampleRiskGroups(graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->rounds_executed, 1000000u);
}

// --- Ranking ---

TEST(RankingTest, SizeRanking) {
  FaultGraph graph = BuildFig4a();
  auto result = ComputeMinimalRiskGroups(graph);
  ASSERT_TRUE(result.ok());
  auto ranked = RankBySize(result->groups);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].group.size(), 1u);  // {A2} first
  EXPECT_DOUBLE_EQ(ranked[0].score, 1.0);
  EXPECT_DOUBLE_EQ(ranked[1].score, 2.0);
  EXPECT_DOUBLE_EQ(IndependenceScore(ranked), 3.0);
  EXPECT_DOUBLE_EQ(IndependenceScore(ranked, 1), 1.0);
}

TEST(RankingTest, PaperWorkedExample) {
  // §4.1.3: Pr(T) = 0.1*0.3 + 0.2 - 0.1*0.3*0.2 = 0.224;
  // I({A2}) = 0.8929, I({A1,A3}) = 0.1339.
  FaultGraph graph = BuildFig4a();
  auto groups = ComputeMinimalRiskGroups(graph);
  ASSERT_TRUE(groups.ok());
  auto ranking = RankByImportance(graph, groups->groups);
  ASSERT_TRUE(ranking.ok());
  EXPECT_NEAR(ranking->top_event_prob, 0.224, 1e-12);
  ASSERT_EQ(ranking->ranked.size(), 2u);
  EXPECT_EQ(ranking->ranked[0].group.size(), 1u);  // {A2} ranked higher
  EXPECT_NEAR(ranking->ranked[0].score, 0.8929, 1e-4);
  EXPECT_NEAR(ranking->ranked[1].score, 0.1339, 1e-4);
}

TEST(RankingTest, MonteCarloAgreesWithExact) {
  FaultGraph graph = BuildFig4a();
  auto groups = ComputeMinimalRiskGroups(graph);
  ASSERT_TRUE(groups.ok());
  double exact = TopEventProbabilityExact(graph, groups->groups, 0.01);
  Rng rng(123);
  double mc = TopEventProbabilityMonteCarlo(graph, 0.01, 400000, rng);
  EXPECT_NEAR(mc, exact, 0.005);
}

TEST(RankingTest, ParallelMonteCarloSingleThreadMatchesSerial) {
  FaultGraph graph = BuildFig4a();
  Rng rng(77);
  double serial = TopEventProbabilityMonteCarlo(graph, 0.01, 50000, rng);
  double parallel = TopEventProbabilityMonteCarlo(graph, 0.01, 50000, /*seed=*/77, /*threads=*/1);
  EXPECT_DOUBLE_EQ(serial, parallel);
}

TEST(RankingTest, ParallelMonteCarloIsDeterministicAndAccurate) {
  FaultGraph graph = BuildFig4a();
  auto groups = ComputeMinimalRiskGroups(graph);
  ASSERT_TRUE(groups.ok());
  double exact = TopEventProbabilityExact(graph, groups->groups, 0.01);
  double first = TopEventProbabilityMonteCarlo(graph, 0.01, 400000, /*seed=*/9, /*threads=*/4);
  double second = TopEventProbabilityMonteCarlo(graph, 0.01, 400000, /*seed=*/9, /*threads=*/4);
  EXPECT_DOUBLE_EQ(first, second);  // fixed seed + thread count => fixed result
  EXPECT_NEAR(first, exact, 0.005);
}

TEST(RankingTest, ExactRefusesSixtyFourGroups) {
  // 64 single-event groups would shift 1ULL << 64 — the guard returns NaN
  // instead of undefined behavior.
  FaultGraph graph;
  std::vector<NodeId> basics;
  for (int i = 0; i < 64; ++i) {
    basics.push_back(graph.AddBasicEvent("b" + std::to_string(i), 0.01));
  }
  NodeId top = graph.AddGate("top", GateType::kOr, basics);
  graph.SetTopEvent(top);
  ASSERT_TRUE(graph.Validate().ok());
  std::vector<RiskGroup> groups;
  for (NodeId id : basics) {
    groups.push_back({id});
  }
  EXPECT_TRUE(std::isnan(TopEventProbabilityExact(graph, groups, 0.01)));
}

TEST(RankingTest, ImportanceClampsExactTermsPastSixtyFour) {
  // 70 minimal RGs with max_exact_terms well past 64: the clamp must route
  // Pr(T) through the BDD instead of an out-of-range shift.
  FaultGraph graph;
  std::vector<NodeId> basics;
  for (int i = 0; i < 70; ++i) {
    basics.push_back(graph.AddBasicEvent("b" + std::to_string(i), 0.001));
  }
  NodeId top = graph.AddGate("top", GateType::kOr, basics);
  graph.SetTopEvent(top);
  ASSERT_TRUE(graph.Validate().ok());
  auto groups = ComputeMinimalRiskGroups(graph);
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups->groups.size(), 70u);
  ProbabilityRankingOptions options;
  options.max_exact_terms = 1000;
  auto ranking = RankByImportance(graph, groups->groups, options);
  ASSERT_TRUE(ranking.ok());
  // Pr(OR of 70 independent p=0.001 events) = 1 - 0.999^70.
  EXPECT_NEAR(ranking->top_event_prob, 1.0 - std::pow(0.999, 70), 1e-9);
}

TEST(RankingTest, GroupProbabilityUsesDefaults) {
  FaultGraph graph;
  NodeId a = graph.AddBasicEvent("a");  // no prob
  NodeId b = graph.AddBasicEvent("b", 0.5);
  NodeId top = graph.AddGate("top", GateType::kAnd, {a, b});
  graph.SetTopEvent(top);
  ASSERT_TRUE(graph.Validate().ok());
  EXPECT_DOUBLE_EQ(GroupProbability(graph, {a, b}, 0.1), 0.05);
}

// --- Builder ---

DepDb MakeFigure3Db() {
  DepDb db;
  // The exact dependency data of the paper's Figure 3.
  db.Add(NetworkDependency{"S1", "Internet", {"ToR1", "Core1"}});
  db.Add(NetworkDependency{"S1", "Internet", {"ToR1", "Core2"}});
  db.Add(NetworkDependency{"S2", "Internet", {"ToR1", "Core1"}});
  db.Add(NetworkDependency{"S2", "Internet", {"ToR1", "Core2"}});
  db.Add(HardwareDependency{"S1", "CPU", "S1-Intel(R)X5550@2.6GHz"});
  db.Add(HardwareDependency{"S1", "Disk", "S1-SED900"});
  db.Add(HardwareDependency{"S2", "CPU", "S2-Intel(R)X5550@2.6GHz"});
  db.Add(HardwareDependency{"S2", "Disk", "S2-SED900"});
  db.Add(SoftwareDependency{"QueryEngine1", "S1", {"libc6", "libgccl"}});
  db.Add(SoftwareDependency{"Riak1", "S1", {"libc6", "libsvn1"}});
  db.Add(SoftwareDependency{"QueryEngine2", "S2", {"libc6", "libgccl"}});
  db.Add(SoftwareDependency{"Riak2", "S2", {"libc6", "libsvn1"}});
  return db;
}

TEST(BuilderTest, Figure3GraphStructureAndRgs) {
  DepDb db = MakeFigure3Db();
  BuildOptions options;
  options.include_server_event = false;
  auto graph = BuildDeploymentFaultGraph(db, {"S1", "S2"}, options);
  ASSERT_TRUE(graph.ok());
  auto groups = ComputeMinimalRiskGroups(*graph);
  ASSERT_TRUE(groups.ok());
  auto names = Names(*graph, groups->groups);
  // The unexpected common dependencies of Fig 4(c): the shared ToR and the
  // shared libc6 are single-component RGs.
  EXPECT_EQ(names.count({"net:tor1"}), 1u);
  EXPECT_EQ(names.count({"pkg:libc6"}), 1u);
  EXPECT_EQ(names.count({"net:core1", "net:core2"}), 1u);
  EXPECT_EQ(names.count({"pkg:libgccl"}), 1u);  // shared across both servers
  EXPECT_EQ(names.count({"pkg:libsvn1"}), 1u);
  // Per-server disks are NOT shared: {S1-disk} alone must not kill both.
  EXPECT_EQ(names.count({"hw:s1-sed900"}), 0u);
}

TEST(BuilderTest, ServerEventCreatesColocationRg) {
  DepDb db;
  // Two VMs whose only hardware dependency is the same host server.
  db.Add(HardwareDependency{"VM7", "Host", "Server2"});
  db.Add(HardwareDependency{"VM8", "Host", "Server2"});
  auto graph = BuildDeploymentFaultGraph(db, {"VM7", "VM8"});
  ASSERT_TRUE(graph.ok());
  auto groups = ComputeMinimalRiskGroups(*graph);
  ASSERT_TRUE(groups.ok());
  auto names = Names(*graph, groups->groups);
  EXPECT_EQ(names.count({"hw:server2"}), 1u);  // the §6.2.2 co-location RG
  EXPECT_EQ(names.count({"VM7", "VM8"}), 1u);
}

TEST(BuilderTest, RequiredServersMakesKofN) {
  DepDb db = MakeFigure3Db();
  db.Add(HardwareDependency{"S3", "CPU", "S3-cpu"});
  BuildOptions options;
  options.required_servers = 2;  // 2-of-3 must stay up
  auto graph = BuildDeploymentFaultGraph(db, {"S1", "S2", "S3"}, options);
  ASSERT_TRUE(graph.ok());
  const FaultNode& top = graph->node(graph->top_event());
  EXPECT_EQ(top.gate, GateType::kKofN);
  EXPECT_EQ(top.k, 2u);
}

TEST(BuilderTest, SoftwareFilter) {
  DepDb db = MakeFigure3Db();
  BuildOptions options;
  options.software_of_interest = {"Riak1", "Riak2"};
  auto graph = BuildDeploymentFaultGraph(db, {"S1", "S2"}, options);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(graph->FindNode("pkg:libgccl").ok());  // QueryEngine excluded
  EXPECT_TRUE(graph->FindNode("pkg:libsvn1").ok());
}

TEST(BuilderTest, TypeTogglesExcludeLayers) {
  DepDb db = MakeFigure3Db();
  BuildOptions options;
  options.include_software = false;
  options.include_hardware = false;
  auto graph = BuildDeploymentFaultGraph(db, {"S1", "S2"}, options);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(graph->FindNode("pkg:libc6").ok());
  EXPECT_FALSE(graph->FindNode("hw:s1-sed900").ok());
  EXPECT_TRUE(graph->FindNode("net:tor1").ok());
}

TEST(BuilderTest, ProbabilityModelAppliesWeights) {
  DepDb db = MakeFigure3Db();
  FailureProbabilityModel model = FailureProbabilityModel::GillEtAlDefaults();
  BuildOptions options;
  options.prob_model = &model;
  auto graph = BuildDeploymentFaultGraph(db, {"S1", "S2"}, options);
  ASSERT_TRUE(graph.ok());
  auto tor = graph->FindNode("net:tor1");
  ASSERT_TRUE(tor.ok());
  EXPECT_DOUBLE_EQ(graph->node(*tor).failure_prob, 0.05);
}

TEST(BuilderTest, RejectsBadInput) {
  DepDb db = MakeFigure3Db();
  EXPECT_FALSE(BuildDeploymentFaultGraph(db, {}).ok());
  EXPECT_FALSE(BuildDeploymentFaultGraph(db, {"S1", "S1"}).ok());
  BuildOptions options;
  options.required_servers = 5;
  EXPECT_FALSE(BuildDeploymentFaultGraph(db, {"S1", "S2"}, options).ok());
  BuildOptions no_self;
  no_self.include_server_event = false;
  EXPECT_FALSE(BuildDeploymentFaultGraph(db, {"unknown-server"}, no_self).ok());
}

TEST(BuilderTest, SingleServerDeployment) {
  DepDb db = MakeFigure3Db();
  auto graph = BuildDeploymentFaultGraph(db, {"S1"});
  ASSERT_TRUE(graph.ok());
  auto groups = ComputeMinimalRiskGroups(*graph);
  ASSERT_TRUE(groups.ok());
  auto names = Names(*graph, groups->groups);
  // Every non-redundant dependency is a singleton RG...
  EXPECT_EQ(names.count({"net:tor1"}), 1u);
  EXPECT_EQ(names.count({"pkg:libc6"}), 1u);
  EXPECT_EQ(names.count({"hw:s1-sed900"}), 1u);
  // ...but the redundant core paths still need both cores.
  EXPECT_EQ(names.count({"net:core1", "net:core2"}), 1u);
  EXPECT_EQ(names.count({"net:core1"}), 0u);
  for (const RiskGroup& group : groups->groups) {
    EXPECT_TRUE(IsMinimalRiskGroup(*graph, group));
  }
}

// Cross-validation: on random two-level graphs, sampling with shrink must
// only produce genuine minimal RGs and must find all of them given enough
// rounds (they are few).
TEST(SamplingVsExactTest, RandomComponentSetGraphsAgree) {
  Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<ComponentSet> sets;
    size_t num_sources = 2 + rng.NextBelow(2);
    for (size_t s = 0; s < num_sources; ++s) {
      ComponentSet set;
      set.source = "E" + std::to_string(s);
      size_t count = 2 + rng.NextBelow(3);
      for (size_t c = 0; c < count; ++c) {
        // Small shared namespace so overlaps are common.
        set.components.push_back("C" + std::to_string(rng.NextBelow(6)));
      }
      NormalizeComponentSet(set);
      sets.push_back(std::move(set));
    }
    auto graph = BuildFromComponentSets(sets);
    if (!graph.ok()) {
      continue;  // e.g. an empty set after dedup — skip.
    }
    auto exact = ComputeMinimalRiskGroups(*graph);
    ASSERT_TRUE(exact.ok());
    SamplingOptions options;
    options.rounds = 30000;
    options.failure_bias = 0.25;
    options.shrink = ShrinkMode::kGreedy;
    options.seed = 7 + static_cast<uint64_t>(trial);
    auto sampled = SampleRiskGroups(*graph, options);
    ASSERT_TRUE(sampled.ok());
    EXPECT_EQ(Names(*graph, sampled->groups), Names(*graph, exact->groups)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace indaas
