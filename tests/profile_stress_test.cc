// Profiler signal-safety stress (ctest label `profile`): a maximum-rate
// SIGPROF storm (997 Hz — prime, so it never phase-locks with any poll
// interval) fired into threads doing real work: a 3-party P-SOP ring under
// a deterministic chaos plan, an audit server handling RPCs, and a heap
// churn loop feeding the allocation sampler. The contract is the profiler's
// core safety claim: signals landing inside read()/write()/connect(),
// malloc, chaos-injected stalls and error paths must never deadlock,
// corrupt a result, or crash — the interrupted code must behave exactly as
// if the signal had not fired.
//
// CI runs this binary under TSan (with the chaos matrix) and under
// ASan+UBSan, where a handler touching non-signal-safe state or a bad
// frame-pointer walk turns into a hard failure instead of a flake.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/net/chaos.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/pia/psop.h"
#include "src/svc/client.h"
#include "src/svc/pia_peer.h"
#include "src/svc/proto.h"
#include "src/svc/server.h"
#include "src/util/timer.h"

namespace indaas {
namespace svc {
namespace {

// The sampling frequency under test: the profiler's hard cap, and prime.
constexpr uint32_t kStormHz = 997;

struct ChaosGuard {
  ~ChaosGuard() { net::chaos::UninstallPlan(); }
};

// Stops whatever session is running even when an ASSERT unwinds the test
// early — a leaked session would keep signalling later tests' threads.
struct ProfilerGuard {
  ~ProfilerGuard() { obs::Profiler::Global().Stop(); }
};

PsopOptions RingPsopOptions() {
  PsopOptions psop;
  psop.group_bits = 768;
  psop.seed = 42;
  return psop;
}

std::vector<std::vector<std::string>> RingDatasets(size_t k) {
  std::vector<std::vector<std::string>> datasets;
  for (size_t i = 0; i < k; ++i) {
    datasets.push_back({"shared", "net:core1", "own:" + std::to_string(i),
                        "pair:" + std::to_string(i / 2)});
  }
  return datasets;
}

bool CleanTypedError(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kProtocolError;
}

TEST(ProfileStressTest, ChaosRingSurvivesSigprofStorm) {
  const size_t k = 3;
  auto datasets = RingDatasets(k);
  auto reference = RunPsop(datasets, RingPsopOptions());
  ASSERT_TRUE(reference.ok());

  ProfilerGuard profiler_guard;
  obs::ProfileOptions popts;
  popts.hz = kStormHz;
  popts.alloc = true;
  popts.alloc_interval_bytes = 64 * 1024;
  ASSERT_TRUE(obs::Profiler::Global().Start(popts).ok());

  ChaosGuard chaos_guard;
  net::chaos::FaultPlan plan;
  plan.seed = 4242;
  plan.reset = 0.01;
  plan.delay = 0.10;
  plan.delay_ms = 2;
  plan.partial_write = 0.5;
  net::chaos::InstallPlan(plan);

  PiaPeerOptions options;
  options.psop = RingPsopOptions();
  options.allow_degraded = true;
  options.connect_timeout_ms = 1000;
  options.io_timeout_ms = 1000;
  options.probe_window_ms = 1500;
  options.probe_io_timeout_ms = 200;
  options.max_recovery_attempts = 2;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_s = 0.01;
  options.retry.max_backoff_s = 0.05;
  std::vector<PiaPeer> peers;
  for (size_t i = 0; i < k; ++i) {
    auto peer = PiaPeer::Listen(0);
    ASSERT_TRUE(peer.ok()) << peer.status().ToString();
    options.peers.push_back(net::Endpoint{"127.0.0.1", peer->listen_port()});
    peers.push_back(std::move(*peer));
  }
  std::vector<Result<PsopResult>> results(k, InternalError("peer did not run"));
  std::vector<std::thread> threads;
  WallTimer timer;
  for (size_t i = 0; i < k; ++i) {
    threads.emplace_back([&, i] {
      // Opt this thread into the storm: every blocking syscall, modexp and
      // allocation it performs now races SIGPROF at 997 Hz.
      obs::Profiler::Global().RegisterCurrentThread();
      PiaPeerOptions mine = options;
      mine.self_index = i;
      results[i] = peers[i].RunPsop(datasets[i], mine);
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  net::chaos::UninstallPlan();
  EXPECT_LT(timer.ElapsedSeconds(), 90.0);

  // Same contract as the chaos matrix: full result, marked-partial result,
  // or clean typed error — signals must not have added a fourth outcome.
  for (size_t i = 0; i < k; ++i) {
    const auto& result = results[i];
    if (!result.ok()) {
      EXPECT_TRUE(CleanTypedError(result.status()))
          << "peer " << i << ": " << result.status().ToString();
      continue;
    }
    if (!result->degraded()) {
      EXPECT_EQ(result->jaccard, reference->jaccard) << "peer " << i;
      EXPECT_EQ(result->intersection, reference->intersection) << "peer " << i;
    }
  }

  obs::ProfileData data = obs::Profiler::Global().Stop();
  // The storm must actually have hit the ring. The timers run on each
  // thread's CPU clock and ring peers spend most of the session blocked in
  // I/O (chaos stalls included), so the floor is modest — the invariant
  // being stressed is that every delivered signal was survived, and zero
  // samples would mean nothing was stressed at all.
  EXPECT_GE(data.samples.size(), 3u);
}

TEST(ProfileStressTest, ServerUnderStormKeepsAnsweringAndCapturing) {
  // The server-side variant: reactor loops and pool workers (which register
  // themselves) absorb the storm while serving pings, stats scrapes and a
  // concurrent GetProfile window cut from the very storm session.
  ProfilerGuard profiler_guard;
  obs::ProfileOptions popts;
  popts.hz = kStormHz;
  popts.alloc = true;
  ASSERT_TRUE(obs::Profiler::Global().Start(popts).ok());

  AuditServerOptions options;
  options.worker_threads = 2;
  AuditServer server(options);
  ASSERT_TRUE(server.Start().ok());
  auto client = AuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()});
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  std::atomic<bool> done{false};
  std::thread load([&] {
    auto worker = AuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()});
    ASSERT_TRUE(worker.ok());
    while (!done.load()) {
      ASSERT_TRUE(worker->Ping().ok());
      ASSERT_TRUE(worker->GetStats().ok());
    }
  });

  ProfileRequest request;
  request.hz = 99;  // advisory: the window comes from the 997 Hz session
  request.seconds = 1;
  auto reply = client->GetProfile(request);
  done.store(true);
  load.join();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  obs::ProfileData window;
  ASSERT_TRUE(obs::ParseProfileDumpText(reply->dump, &window));
  EXPECT_EQ(window.hz, kStormHz);

  server.Stop();
  obs::ProfileData data = obs::Profiler::Global().Stop();
  EXPECT_FALSE(data.samples.empty());
  // The drainer folded its counts into the pre-registered counters.
  EXPECT_GT(
      obs::MetricsRegistry::Global().GetCounter("obs.profile.samples")->Value(), 0u);
}

}  // namespace
}  // namespace svc
}  // namespace indaas
