// Tests for src/crypto/: digest test vectors, SRA commutative cipher
// properties, Paillier correctness and homomorphisms, hash family.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/bignum/prime.h"
#include "src/crypto/commutative.h"
#include "src/crypto/digest.h"
#include "src/crypto/hash_family.h"
#include "src/crypto/paillier.h"
#include "src/util/rng.h"

namespace indaas {
namespace {

// --- Digest test vectors (RFC 1321 / FIPS 180-4) ---

TEST(DigestTest, Md5Vectors) {
  EXPECT_EQ(DigestToHex(Md5("")), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(DigestToHex(Md5("abc")), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(DigestToHex(Md5("message digest")), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(DigestToHex(Md5("abcdefghijklmnopqrstuvwxyz")), "c3fcd3d76192e4007dfb496cca67e13b");
}

TEST(DigestTest, Sha1Vectors) {
  EXPECT_EQ(DigestToHex(Sha1("")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(DigestToHex(Sha1("abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(DigestToHex(Sha1("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(DigestTest, Sha256Vectors) {
  EXPECT_EQ(DigestToHex(Sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(DigestToHex(Sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(DigestToHex(Sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(DigestTest, MultiBlockMessages) {
  // 448-bit and >512-bit messages exercise padding boundaries.
  std::string s56(56, 'a');
  std::string s64(64, 'a');
  std::string s200(200, 'a');
  EXPECT_NE(DigestToHex(Sha256(s56)), DigestToHex(Sha256(s64)));
  EXPECT_NE(DigestToHex(Sha256(s64)), DigestToHex(Sha256(s200)));
  // One million 'a' — the classic FIPS long vector.
  std::string million(1000000, 'a');
  EXPECT_EQ(DigestToHex(Sha1(million)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
  EXPECT_EQ(DigestToHex(Sha256(million)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(DigestTest, HashBytesDispatch) {
  EXPECT_EQ(HashBytes(HashAlgorithm::kMd5, "abc").size(), 16u);
  EXPECT_EQ(HashBytes(HashAlgorithm::kSha1, "abc").size(), 20u);
  EXPECT_EQ(HashBytes(HashAlgorithm::kSha256, "abc").size(), 32u);
  EXPECT_STREQ(HashAlgorithmName(HashAlgorithm::kSha256), "SHA-256");
}

// --- Commutative cipher ---

class CommutativeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(1);
    auto group = CommutativeGroup::CreateWellKnown(768);
    ASSERT_TRUE(group.ok());
    group_ = new CommutativeGroup(std::move(group).value());
  }
  static void TearDownTestSuite() {
    delete group_;
    group_ = nullptr;
  }
  static const CommutativeGroup* group_;
};

const CommutativeGroup* CommutativeTest::group_ = nullptr;

TEST_F(CommutativeTest, EncryptDecryptRoundTrip) {
  Rng rng(2);
  auto key = CommutativeKey::Generate(*group_, rng);
  ASSERT_TRUE(key.ok());
  BigUint m = group_->HashToElement("libc6 2.13-38", HashAlgorithm::kSha256);
  BigUint c = key->Encrypt(*group_, m);
  EXPECT_NE(c, m);
  EXPECT_EQ(key->Decrypt(*group_, c), m);
}

TEST_F(CommutativeTest, EncryptionCommutes) {
  Rng rng(3);
  auto key_a = CommutativeKey::Generate(*group_, rng);
  auto key_b = CommutativeKey::Generate(*group_, rng);
  ASSERT_TRUE(key_a.ok());
  ASSERT_TRUE(key_b.ok());
  BigUint m = group_->HashToElement("openssl 1.0.1e", HashAlgorithm::kSha256);
  BigUint ab = key_a->Encrypt(*group_, key_b->Encrypt(*group_, m));
  BigUint ba = key_b->Encrypt(*group_, key_a->Encrypt(*group_, m));
  EXPECT_EQ(ab, ba);
}

TEST_F(CommutativeTest, ThreePartyCommutes) {
  Rng rng(4);
  auto k1 = CommutativeKey::Generate(*group_, rng);
  auto k2 = CommutativeKey::Generate(*group_, rng);
  auto k3 = CommutativeKey::Generate(*group_, rng);
  ASSERT_TRUE(k1.ok());
  ASSERT_TRUE(k2.ok());
  ASSERT_TRUE(k3.ok());
  BigUint m = group_->HashToElement("10.1.2.3", HashAlgorithm::kSha256);
  BigUint order_a = k3->Encrypt(*group_, k1->Encrypt(*group_, k2->Encrypt(*group_, m)));
  BigUint order_b = k2->Encrypt(*group_, k3->Encrypt(*group_, k1->Encrypt(*group_, m)));
  EXPECT_EQ(order_a, order_b);
}

TEST_F(CommutativeTest, EqualPlaintextsCollideUnderAllKeys) {
  // The property P-SOP relies on: equality is preserved under encryption.
  Rng rng(5);
  auto key = CommutativeKey::Generate(*group_, rng);
  ASSERT_TRUE(key.ok());
  BigUint m1 = group_->HashToElement("router-10.0.0.1", HashAlgorithm::kSha256);
  BigUint m2 = group_->HashToElement("router-10.0.0.1", HashAlgorithm::kSha256);
  BigUint m3 = group_->HashToElement("router-10.0.0.2", HashAlgorithm::kSha256);
  EXPECT_EQ(key->Encrypt(*group_, m1), key->Encrypt(*group_, m2));
  EXPECT_NE(key->Encrypt(*group_, m1), key->Encrypt(*group_, m3));
}

TEST_F(CommutativeTest, HashToElementIsInGroup) {
  // Squares generate the QR subgroup: x^q must equal 1 (Euler's criterion).
  BigUint m = group_->HashToElement("any component id", HashAlgorithm::kSha256);
  EXPECT_TRUE(group_->Pow(m, group_->q()).IsOne());
  EXPECT_FALSE(m.IsZero());
}

TEST_F(CommutativeTest, DistinctInputsGiveDistinctElements) {
  std::set<std::string> seen;
  for (int i = 0; i < 200; ++i) {
    BigUint m = group_->HashToElement("pkg-" + std::to_string(i), HashAlgorithm::kSha256);
    seen.insert(m.ToHex());
  }
  EXPECT_EQ(seen.size(), 200u);
}

TEST(CommutativeGroupTest, CreateValidatesSafePrime) {
  Rng rng(6);
  // 23 = 2*11+1 is a safe prime but too small; 15 is not prime at all.
  EXPECT_FALSE(CommutativeGroup::Create(BigUint(23), rng).ok());
  EXPECT_FALSE(CommutativeGroup::Create(BigUint(1).ShiftLeft(20).Add(BigUint(1)), rng).ok());
  auto small_safe = GenerateSafePrime(64, rng);
  ASSERT_TRUE(small_safe.ok());
  EXPECT_TRUE(CommutativeGroup::Create(*small_safe, rng).ok());
}

TEST(CommutativeGroupTest, ElementBytesMatchesModulus) {
  auto group = CommutativeGroup::CreateWellKnown(1024);
  ASSERT_TRUE(group.ok());
  EXPECT_EQ(group->ElementBytes(), 128u);
  EXPECT_EQ(group->bits(), 1024u);
}

// --- Paillier ---

class PaillierTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(7);
    auto kp = GeneratePaillierKeyPair(256, rng);
    ASSERT_TRUE(kp.ok());
    keypair_ = new PaillierKeyPair(std::move(kp).value());
  }
  static void TearDownTestSuite() {
    delete keypair_;
    keypair_ = nullptr;
  }
  static const PaillierKeyPair* keypair_;
};

const PaillierKeyPair* PaillierTest::keypair_ = nullptr;

TEST_F(PaillierTest, EncryptDecryptRoundTrip) {
  Rng rng(8);
  for (uint64_t m : {0ULL, 1ULL, 42ULL, 123456789ULL}) {
    auto c = keypair_->pub.Encrypt(BigUint(m), rng);
    ASSERT_TRUE(c.ok());
    auto d = keypair_->priv.Decrypt(keypair_->pub, *c);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d->ToUint64(), m);
  }
}

TEST_F(PaillierTest, EncryptionIsProbabilistic) {
  Rng rng(9);
  auto c1 = keypair_->pub.Encrypt(BigUint(5), rng);
  auto c2 = keypair_->pub.Encrypt(BigUint(5), rng);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_NE(*c1, *c2);
}

TEST_F(PaillierTest, AdditiveHomomorphism) {
  Rng rng(10);
  auto c1 = keypair_->pub.Encrypt(BigUint(111), rng);
  auto c2 = keypair_->pub.Encrypt(BigUint(222), rng);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  BigUint c_sum = keypair_->pub.AddCiphertexts(*c1, *c2);
  auto d = keypair_->priv.Decrypt(keypair_->pub, c_sum);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->ToUint64(), 333u);
}

TEST_F(PaillierTest, ScalarMultiplyHomomorphism) {
  Rng rng(11);
  auto c = keypair_->pub.Encrypt(BigUint(7), rng);
  ASSERT_TRUE(c.ok());
  BigUint c_scaled = keypair_->pub.MulPlaintext(*c, BigUint(6));
  auto d = keypair_->priv.Decrypt(keypair_->pub, c_scaled);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->ToUint64(), 42u);
}

TEST_F(PaillierTest, RerandomizePreservesPlaintext) {
  Rng rng(12);
  auto c = keypair_->pub.Encrypt(BigUint(99), rng);
  ASSERT_TRUE(c.ok());
  auto c2 = keypair_->pub.Rerandomize(*c, rng);
  ASSERT_TRUE(c2.ok());
  EXPECT_NE(*c, *c2);
  auto d = keypair_->priv.Decrypt(keypair_->pub, *c2);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->ToUint64(), 99u);
}

TEST_F(PaillierTest, RejectsOversizedPlaintext) {
  Rng rng(13);
  BigUint too_big = keypair_->pub.n().Add(BigUint(1));
  EXPECT_FALSE(keypair_->pub.Encrypt(too_big, rng).ok());
}

TEST(PaillierKeyGenTest, RejectsTinyModulus) {
  Rng rng(14);
  EXPECT_FALSE(GeneratePaillierKeyPair(16, rng).ok());
}

// --- Hash family ---

TEST(HashFamilyTest, DeterministicAcrossInstances) {
  HashFamily f1(42, 8);
  HashFamily f2(42, 8);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(f1.Hash(i, "component"), f2.Hash(i, "component"));
  }
}

TEST(HashFamilyTest, FunctionsAreDistinct) {
  HashFamily family(7, 16);
  std::set<uint64_t> values;
  for (size_t i = 0; i < 16; ++i) {
    values.insert(family.Hash(i, "same input"));
  }
  EXPECT_EQ(values.size(), 16u);
}

TEST(HashFamilyTest, DifferentSeedsDiffer) {
  HashFamily a(1, 4);
  HashFamily b(2, 4);
  EXPECT_NE(a.Hash(0, "x"), b.Hash(0, "x"));
}

TEST(HashFamilyTest, KeyedHashAvalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  uint64_t h1 = KeyedHash64(0, "component-a");
  uint64_t h2 = KeyedHash64(0, "component-b");
  int differing = __builtin_popcountll(h1 ^ h2);
  EXPECT_GT(differing, 16);
  EXPECT_LT(differing, 48);
}

TEST(HashFamilyTest, HandlesAllLengths) {
  // Lengths around the 8-byte lane boundary.
  std::set<uint64_t> seen;
  std::string s;
  for (int len = 0; len <= 24; ++len) {
    seen.insert(KeyedHash64(1, s));
    s.push_back(static_cast<char>('a' + len % 26));
  }
  EXPECT_EQ(seen.size(), 25u);
}

}  // namespace
}  // namespace indaas
