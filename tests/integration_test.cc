// End-to-end integration tests reproducing the paper's three case studies
// (§6.2) in miniature: topology/placement -> acquisition -> DepDB -> fault
// graph -> risk groups -> report.

#include <gtest/gtest.h>

#include <set>

#include "src/acquire/apt_sim.h"
#include "src/acquire/lshw_sim.h"
#include "src/acquire/nsdminer_sim.h"
#include "src/agent/agent.h"
#include "src/deps/cvss.h"
#include "src/sia/importance.h"
#include "src/pia/audit.h"
#include "src/sia/builder.h"
#include "src/sia/risk_groups.h"
#include "src/topology/case_study.h"
#include "src/topology/placement.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace indaas {
namespace {

// --- Case study 1 (Fig. 6a): common network dependencies in a data center ---

TEST(NetworkCaseStudyTest, FindsIndependentRackPairs) {
  auto topo = BuildCaseStudyDatacenter(12, 1);
  ASSERT_TRUE(topo.ok());

  // Traffic-based acquisition: flows from each rack server to the Internet.
  NsdMinerSim miner(3);
  Rng rng(1);
  for (uint32_t r = 1; r <= 12; ++r) {
    auto flows = GenerateTraffic(*topo, StrFormat("rack%u-srv1", r), "Internet", 60, rng);
    ASSERT_TRUE(flows.ok());
    miner.IngestFlows(*flows);
  }
  AuditingAgent agent;
  agent.AddModule(&miner);

  AuditSpecification spec;
  for (uint32_t a = 1; a <= 12; ++a) {
    for (uint32_t b = a + 1; b <= 12; ++b) {
      spec.candidate_deployments.push_back(
          {StrFormat("rack%u-srv1", a), StrFormat("rack%u-srv1", b)});
    }
  }
  ASSERT_TRUE(agent.AcquireDependencies(spec).ok());
  auto report = agent.AuditStructural(spec);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->deployments.size(), 66u);  // C(12,2)

  // Some pairs have no unexpected RGs (disjoint core classes) and they must
  // outrank every pair with shared cores.
  size_t clean = 0;
  for (const DeploymentAudit& audit : report->deployments) {
    if (audit.unexpected_rgs == 0) {
      ++clean;
    }
  }
  EXPECT_GT(clean, 0u);
  EXPECT_LT(clean, 66u);
  EXPECT_EQ(report->deployments[0].unexpected_rgs, 0u);
  EXPECT_GT(report->deployments.back().unexpected_rgs, 0u);

  // Rack1 ({b1,b2}) and rack2 ({c1,c2}) use disjoint cores: their pair must
  // be among the clean ones.
  for (const DeploymentAudit& audit : report->deployments) {
    if (audit.servers == std::vector<std::string>{"rack1-srv1", "rack2-srv1"}) {
      EXPECT_EQ(audit.unexpected_rgs, 0u);
    }
    if (audit.servers == std::vector<std::string>{"rack1-srv1", "rack7-srv1"}) {
      // Same core class {b1,b2}: the shared cores form an unexpected RG.
      EXPECT_GT(audit.unexpected_rgs, 0u);
    }
  }
}

// --- Case study 2 (Fig. 6b): common hardware via VM co-location ---

TEST(HardwareCaseStudyTest, DetectsOpenStackColocationAndRedeploys) {
  auto topo = BuildLabCloud();
  ASSERT_TRUE(topo.ok());

  // OpenStack-like placement puts both Riak VMs on Server2 (most capacity).
  std::vector<PlacementHost> hosts = {{"Server1", 2}, {"Server2", 10}, {"Server3", 2},
                                      {"Server4", 2}};
  std::vector<VmRequest> vms;
  for (int i = 1; i <= 6; ++i) {
    vms.push_back({StrFormat("VM%d", i), ""});
  }
  vms.push_back({"VM7", "riak"});
  vms.push_back({"VM8", "riak"});
  Rng rng(1);
  auto placement = PlaceVms(vms, hosts, PlacementPolicy::kLeastLoadedRandom, rng);
  ASSERT_TRUE(placement.ok());
  ASSERT_EQ(placement->assignment[6], 1u);
  ASSERT_EQ(placement->assignment[7], 1u);

  // Acquisition: each VM's hardware includes its host server (shared id),
  // and its network routes are its host's routes.
  LshwSim lshw;
  NsdMinerSim miner(2);
  DepDb db;
  Rng traffic_rng(2);
  for (size_t v = 6; v < 8; ++v) {
    const std::string vm = vms[v].name;
    const std::string host = hosts[placement->assignment[v]].name;
    lshw.RegisterMachine(vm, LshwSim::RandomSpec(traffic_rng));
    lshw.RegisterSharedComponent(vm, "Host", host);
    auto flows = GenerateTraffic(*topo, host, "Internet", 50, traffic_rng);
    ASSERT_TRUE(flows.ok());
    for (FlowRecord flow : *flows) {
      flow.src = vm;  // The VM's traffic egresses via its host's paths.
      miner.IngestFlow(flow);
    }
  }
  ASSERT_TRUE(RunAcquisition({&lshw, &miner}, {"VM7", "VM8"}, db).ok());

  // Audit the deployed configuration.
  auto graph = BuildDeploymentFaultGraph(db, {"VM7", "VM8"});
  ASSERT_TRUE(graph.ok());
  auto groups = ComputeMinimalRiskGroups(*graph);
  ASSERT_TRUE(groups.ok());
  std::set<std::vector<std::string>> names;
  for (const RiskGroup& group : groups->groups) {
    std::vector<std::string> group_names;
    for (NodeId id : group) {
      group_names.push_back(graph->node(id).name);
    }
    std::sort(group_names.begin(), group_names.end());
    names.insert(group_names);
  }
  // The paper's top-4 RG list: {Server2}, {Switch1}, {Core1 & Core2},
  // {VM7 & VM8}.
  EXPECT_EQ(names.count({"hw:server2"}), 1u);
  EXPECT_EQ(names.count({"net:switch1"}), 1u);
  EXPECT_EQ(names.count({"net:core1", "net:core2"}), 1u);
  EXPECT_EQ(names.count({"VM7", "VM8"}), 1u);

  // Re-deploy per the report: anti-affinity placement avoids the shared
  // server, removing the size-1 hardware RG.
  Rng rng2(1);
  auto fixed = PlaceVms(vms, hosts, PlacementPolicy::kAntiAffinity, rng2);
  ASSERT_TRUE(fixed.ok());
  EXPECT_NE(fixed->assignment[6], fixed->assignment[7]);
}

// --- Case study 3 (Fig. 6c / Table 2): private software audit ---

TEST(SoftwareCaseStudyTest, Table2RankingsReproduce) {
  PackageUniverse universe = PackageUniverse::KeyValueStoreUniverse();
  std::vector<CloudProvider> providers;
  const char* programs[] = {"riak", "mongodb-server", "redis-server", "couchdb"};
  for (int i = 0; i < 4; ++i) {
    auto closure = universe.Closure(programs[i]);
    ASSERT_TRUE(closure.ok());
    providers.push_back({StrFormat("Cloud%d", i + 1), *closure});
  }
  PiaAuditOptions options;
  options.psop.group_bits = 768;
  auto report = RunPiaAudit(providers, options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->rankings.size(), 2u);

  // Two-way ranking order from Table 2:
  // 1. C2&C4  2. C2&C3  3. C1&C4  4. C1&C3  5. C3&C4  6. C1&C2
  std::vector<std::vector<std::string>> expected_two = {
      {"Cloud2", "Cloud4"}, {"Cloud2", "Cloud3"}, {"Cloud1", "Cloud4"},
      {"Cloud1", "Cloud3"}, {"Cloud3", "Cloud4"}, {"Cloud1", "Cloud2"},
  };
  ASSERT_EQ(report->rankings[0].size(), expected_two.size());
  for (size_t i = 0; i < expected_two.size(); ++i) {
    EXPECT_EQ(report->rankings[0][i].providers, expected_two[i]) << "rank " << (i + 1);
  }

  // Three-way ranking order from Table 2:
  // 1. C2&C3&C4  2. C1&C2&C4  3. C1&C3&C4  4. C1&C2&C3
  std::vector<std::vector<std::string>> expected_three = {
      {"Cloud2", "Cloud3", "Cloud4"},
      {"Cloud1", "Cloud2", "Cloud4"},
      {"Cloud1", "Cloud3", "Cloud4"},
      {"Cloud1", "Cloud2", "Cloud3"},
  };
  ASSERT_EQ(report->rankings[1].size(), expected_three.size());
  for (size_t i = 0; i < expected_three.size(); ++i) {
    EXPECT_EQ(report->rankings[1][i].providers, expected_three[i]) << "rank " << (i + 1);
  }
}

// --- Heartbleed scenario (§3: software dependencies "could lead to
// common-mode failures (e.g., Heartbleed)"; §5.1: CVSS feeds supply the
// probabilities) ---

TEST(HeartbleedScenarioTest, CvssFeedSurfacesSharedOpensslRisk) {
  // Two replicas of a service, each with its own disk, both linking the same
  // vulnerable OpenSSL build.
  DepDb db;
  db.Add(HardwareDependency{"S1", "Disk", "S1-disk"});
  db.Add(HardwareDependency{"S2", "Disk", "S2-disk"});
  db.Add(SoftwareDependency{"web1", "S1", {"openssl=1.0.1e", "libc6=2.13"}});
  db.Add(SoftwareDependency{"web2", "S2", {"openssl=1.0.1e", "libc6=2.13"}});

  FailureProbabilityModel model(0.01);
  ASSERT_TRUE(LoadCvssFeed("# heartbleed advisory\nopenssl 1.0.1e 10.0\n", model, 0.3).ok());

  BuildOptions build;
  build.prob_model = &model;
  build.include_server_event = false;
  auto graph = BuildDeploymentFaultGraph(db, {"S1", "S2"}, build);
  ASSERT_TRUE(graph.ok());
  auto groups = ComputeMinimalRiskGroups(*graph);
  ASSERT_TRUE(groups.ok());

  // The shared vulnerable package is a single-component risk group...
  auto openssl_node = graph->FindNode("pkg:openssl=1.0.1e");
  ASSERT_TRUE(openssl_node.ok());
  EXPECT_DOUBLE_EQ(graph->node(*openssl_node).failure_prob, 0.3);
  bool found = false;
  for (const RiskGroup& group : groups->groups) {
    if (group.size() == 1 && group[0] == *openssl_node) {
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // ...and it dominates the importance ranking once CVSS weights apply.
  auto importance = RankComponentImportance(*graph, groups->groups);
  ASSERT_TRUE(importance.ok());
  ASSERT_FALSE(importance->empty());
  EXPECT_EQ((*importance)[0].name, "pkg:openssl=1.0.1e");
}

}  // namespace
}  // namespace indaas
