// Tests for the CVSS feed, report diffing, file helpers, and the CLI
// subcommands (driven in-process through RunXxxCommand).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/agent/report_diff.h"
#include "src/agent/sia_audit.h"
#include "src/cli/commands.h"
#include "src/deps/cvss.h"
#include "src/deps/depdb.h"
#include "src/util/file.h"

namespace indaas {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// --- File helpers ---

TEST(FileTest, RoundTrip) {
  std::string path = TempPath("file_roundtrip.txt");
  ASSERT_TRUE(WriteFile(path, "hello\nworld").ok());
  auto contents = ReadFile(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "hello\nworld");
}

TEST(FileTest, MissingFileErrors) {
  EXPECT_FALSE(ReadFile("/nonexistent/definitely/missing").ok());
}

TEST(FileTest, EmptyFile) {
  std::string path = TempPath("empty.txt");
  ASSERT_TRUE(WriteFile(path, "").ok());
  auto contents = ReadFile(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->empty());
}

// --- CVSS feed ---

TEST(CvssTest, ParsesFeed) {
  const char* kFeed = R"(
# vulnerability feed
openssl 1.0.1e 7.5   # heartbleed-era
libc6   2.13-38 5.0
)";
  auto entries = ParseCvssFeed(kFeed);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].package, "openssl");
  EXPECT_EQ((*entries)[0].version, "1.0.1e");
  EXPECT_DOUBLE_EQ((*entries)[0].base_score, 7.5);
}

TEST(CvssTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseCvssFeed("openssl 1.0.1e").ok());         // missing score
  EXPECT_FALSE(ParseCvssFeed("openssl 1.0.1e eleven").ok());  // non-numeric
  EXPECT_FALSE(ParseCvssFeed("openssl 1.0.1e 11.0").ok());    // out of range
  EXPECT_FALSE(ParseCvssFeed("openssl 1.0.1e -1").ok());
}

TEST(CvssTest, AppliesToModel) {
  FailureProbabilityModel model(0.01);
  ASSERT_TRUE(LoadCvssFeed("openssl 1.0.1e 10.0\nzlib1g 1.2.7 2.0\n", model, 0.3).ok());
  EXPECT_DOUBLE_EQ(model.Lookup("pkg:openssl=1.0.1e"), 0.3);   // 10/10 * 0.3
  EXPECT_DOUBLE_EQ(model.Lookup("pkg:zlib1g=1.2.7"), 0.06);    // 2/10 * 0.3
  EXPECT_DOUBLE_EQ(model.Lookup("pkg:other=1"), 0.01);         // untouched
}

TEST(CvssTest, RejectsBadMaxProb) {
  FailureProbabilityModel model;
  EXPECT_FALSE(ApplyCvssFeed({{"p", "1", 5.0}}, model, 1.5).ok());
}

// --- Report diffing ---

DeploymentAudit MakeAudit(std::vector<std::string> servers,
                          std::vector<std::vector<std::string>> groups, size_t unexpected) {
  DeploymentAudit audit;
  audit.servers = std::move(servers);
  for (auto& group : groups) {
    DeploymentAudit::NamedRiskGroup named;
    named.components = std::move(group);
    audit.ranked_groups.push_back(std::move(named));
  }
  audit.unexpected_rgs = unexpected;
  return audit;
}

TEST(ReportDiffTest, DetectsAppearedGroups) {
  SiaAuditReport before;
  before.deployments.push_back(MakeAudit({"S1", "S2"}, {{"a", "b"}}, 0));
  SiaAuditReport after;
  after.deployments.push_back(MakeAudit({"S2", "S1"}, {{"a", "b"}, {"switch"}}, 1));
  AuditDiff diff = DiffSiaReports(before, after);
  ASSERT_EQ(diff.deployments.size(), 1u);
  EXPECT_TRUE(diff.HasRegressions());
  ASSERT_EQ(diff.deployments[0].appeared.size(), 1u);
  EXPECT_EQ(diff.deployments[0].appeared[0], (std::vector<std::string>{"switch"}));
  EXPECT_TRUE(diff.deployments[0].disappeared.empty());
  std::string rendered = RenderAuditDiff(diff);
  EXPECT_NE(rendered.find("REGRESSION"), std::string::npos);
  EXPECT_NE(rendered.find("+ new RG {switch}"), std::string::npos);
}

TEST(ReportDiffTest, QuietWhenUnchanged) {
  SiaAuditReport report;
  report.deployments.push_back(MakeAudit({"S1", "S2"}, {{"a"}}, 1));
  AuditDiff diff = DiffSiaReports(report, report);
  EXPECT_FALSE(diff.HasRegressions());
  EXPECT_EQ(RenderAuditDiff(diff), "no changes\n");
}

TEST(ReportDiffTest, TracksDriftedDeployments) {
  SiaAuditReport before;
  before.deployments.push_back(MakeAudit({"S1", "S2"}, {}, 0));
  SiaAuditReport after;
  after.deployments.push_back(MakeAudit({"S1", "S3"}, {}, 0));
  AuditDiff diff = DiffSiaReports(before, after);
  EXPECT_TRUE(diff.deployments.empty());
  ASSERT_EQ(diff.only_in_before.size(), 1u);
  ASSERT_EQ(diff.only_in_after.size(), 1u);
  EXPECT_FALSE(diff.HasRegressions());
}

TEST(ReportDiffTest, ResolvedGroupsAreNotRegressions) {
  SiaAuditReport before;
  before.deployments.push_back(MakeAudit({"S1", "S2"}, {{"switch"}, {"a", "b"}}, 1));
  SiaAuditReport after;
  after.deployments.push_back(MakeAudit({"S1", "S2"}, {{"a", "b"}}, 0));
  AuditDiff diff = DiffSiaReports(before, after);
  EXPECT_FALSE(diff.HasRegressions());
  ASSERT_EQ(diff.deployments[0].disappeared.size(), 1u);
}

// --- CLI commands end-to-end ---

char** MakeArgv(std::vector<std::string>& storage) {
  static std::vector<char*> pointers;
  pointers.clear();
  for (auto& arg : storage) {
    pointers.push_back(arg.data());
  }
  return pointers.data();
}

TEST(CliTest, CollectThenAuditThenDot) {
  std::string depdb = TempPath("cli_depdb.txt");
  std::vector<std::string> collect_args = {"collect", "--infra=lab", "--out=" + depdb};
  ASSERT_TRUE(RunCollectCommand(static_cast<int>(collect_args.size()), MakeArgv(collect_args))
                  .ok());
  auto written = ReadFile(depdb);
  ASSERT_TRUE(written.ok());
  DepDb db;
  ASSERT_TRUE(db.ImportText(*written).ok());
  EXPECT_GT(db.NetworkCount(), 0u);
  EXPECT_GT(db.HardwareCount(), 0u);

  std::vector<std::string> audit_args = {"audit", "--depdb=" + depdb,
                                         "--deployments=Server1,Server2;Server1,Server3"};
  EXPECT_TRUE(RunAuditCommand(static_cast<int>(audit_args.size()), MakeArgv(audit_args)).ok());

  std::vector<std::string> dot_args = {"dot", "--depdb=" + depdb,
                                       "--deployment=Server1,Server2"};
  EXPECT_TRUE(RunDotCommand(static_cast<int>(dot_args.size()), MakeArgv(dot_args)).ok());
}

TEST(CliTest, AuditWithBaselineDiff) {
  std::string depdb = TempPath("cli_depdb2.txt");
  std::vector<std::string> collect_args = {"collect", "--infra=lab", "--out=" + depdb};
  ASSERT_TRUE(RunCollectCommand(static_cast<int>(collect_args.size()), MakeArgv(collect_args))
                  .ok());
  std::vector<std::string> audit_args = {"audit", "--depdb=" + depdb, "--baseline=" + depdb,
                                         "--deployments=Server1,Server3"};
  EXPECT_TRUE(RunAuditCommand(static_cast<int>(audit_args.size()), MakeArgv(audit_args)).ok());
}

TEST(CliTest, PiaCommand) {
  std::string sets = TempPath("cli_sets.txt");
  ASSERT_TRUE(WriteFile(sets, "A: x, y, z\nB: y, z, w\nC: q\n").ok());
  std::vector<std::string> pia_args = {"pia", "--sets=" + sets, "--group-bits=768",
                                       "--max-redundancy=2"};
  EXPECT_TRUE(RunPiaCommand(static_cast<int>(pia_args.size()), MakeArgv(pia_args)).ok());
}

TEST(CliTest, PiaFromDepDbFiles) {
  std::string db1 = TempPath("cli_prov1.txt");
  std::string db2 = TempPath("cli_prov2.txt");
  ASSERT_TRUE(WriteFile(db1, "<pgm=\"svc\" hw=\"h1\" dep=\"openssl=1.0.1e,zlib1g=1.2\"/>\n").ok());
  ASSERT_TRUE(WriteFile(db2, "<pgm=\"svc\" hw=\"h2\" dep=\"OpenSSL=1.0.1e,libev=4\"/>\n").ok());
  std::vector<std::string> pia_args = {"pia", "--depdbs=CloudA=" + db1 + ";CloudB=" + db2,
                                       "--group-bits=768", "--max-redundancy=2"};
  EXPECT_TRUE(RunPiaCommand(static_cast<int>(pia_args.size()), MakeArgv(pia_args)).ok());
  // --sets and --depdbs are mutually exclusive.
  std::string sets = TempPath("cli_sets2.txt");
  ASSERT_TRUE(WriteFile(sets, "A: x\n").ok());
  std::vector<std::string> both = {"pia", "--sets=" + sets, "--depdbs=A=" + db1};
  EXPECT_FALSE(RunPiaCommand(static_cast<int>(both.size()), MakeArgv(both)).ok());
}

TEST(CliTest, BadUsageErrors) {
  std::vector<std::string> no_depdb = {"audit", "--deployments=S1,S2"};
  EXPECT_FALSE(RunAuditCommand(static_cast<int>(no_depdb.size()), MakeArgv(no_depdb)).ok());
  std::vector<std::string> bad_infra = {"collect", "--infra=marsbase"};
  EXPECT_FALSE(RunCollectCommand(static_cast<int>(bad_infra.size()), MakeArgv(bad_infra)).ok());
  std::vector<std::string> bad_algo = {"audit", "--depdb=x", "--deployments=S1",
                                       "--algorithm=psychic"};
  EXPECT_FALSE(RunAuditCommand(static_cast<int>(bad_algo.size()), MakeArgv(bad_algo)).ok());
  std::vector<std::string> missing_sets = {"pia"};
  EXPECT_FALSE(RunPiaCommand(static_cast<int>(missing_sets.size()), MakeArgv(missing_sets)).ok());
}

TEST(CliTest, GraphWhatIfImportancePipeline) {
  std::string depdb = TempPath("cli_depdb3.txt");
  std::string graph = TempPath("cli_graph.fg");
  std::vector<std::string> collect_args = {"collect", "--infra=lab", "--out=" + depdb};
  ASSERT_TRUE(RunCollectCommand(static_cast<int>(collect_args.size()), MakeArgv(collect_args))
                  .ok());
  std::vector<std::string> graph_args = {"graph", "--depdb=" + depdb,
                                         "--deployment=Server1,Server2", "--out=" + graph};
  ASSERT_TRUE(RunGraphCommand(static_cast<int>(graph_args.size()), MakeArgv(graph_args)).ok());

  std::vector<std::string> whatif_args = {"whatif", "--graph=" + graph,
                                          "--fail=net:switch1"};
  EXPECT_TRUE(RunWhatIfCommand(static_cast<int>(whatif_args.size()), MakeArgv(whatif_args)).ok());
  std::vector<std::string> bad_fail = {"whatif", "--graph=" + graph, "--fail=not-a-component"};
  EXPECT_FALSE(RunWhatIfCommand(static_cast<int>(bad_fail.size()), MakeArgv(bad_fail)).ok());

  std::vector<std::string> importance_args = {"importance", "--graph=" + graph};
  EXPECT_TRUE(
      RunImportanceCommand(static_cast<int>(importance_args.size()), MakeArgv(importance_args))
          .ok());
}

TEST(CliTest, GraphCommandRequiresArgs) {
  std::vector<std::string> args = {"graph", "--deployment=S1"};
  EXPECT_FALSE(RunGraphCommand(static_cast<int>(args.size()), MakeArgv(args)).ok());
  std::vector<std::string> whatif_args = {"whatif"};
  EXPECT_FALSE(RunWhatIfCommand(static_cast<int>(whatif_args.size()), MakeArgv(whatif_args)).ok());
  std::vector<std::string> imp_args = {"importance"};
  EXPECT_FALSE(
      RunImportanceCommand(static_cast<int>(imp_args.size()), MakeArgv(imp_args)).ok());
}

TEST(CliTest, FatTreeInfra) {
  std::string depdb = TempPath("cli_fat.txt");
  std::vector<std::string> collect_args = {"collect", "--infra=fat4", "--out=" + depdb,
                                           "--flows=30"};
  ASSERT_TRUE(RunCollectCommand(static_cast<int>(collect_args.size()), MakeArgv(collect_args))
                  .ok());
  std::vector<std::string> audit_args = {"audit", "--depdb=" + depdb,
                                         "--deployments=pod0-srv0-0,pod1-srv0-0",
                                         "--algorithm=sampling", "--rounds=20000"};
  EXPECT_TRUE(RunAuditCommand(static_cast<int>(audit_args.size()), MakeArgv(audit_args)).ok());
}

}  // namespace
}  // namespace indaas
