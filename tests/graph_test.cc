// Tests for src/graph/: fault graph structure, validation, evaluation,
// levels of detail, downgrades, and composition.

#include <gtest/gtest.h>

#include "src/graph/compose.h"
#include "src/graph/fault_graph.h"
#include "src/graph/levels.h"
#include "src/util/rng.h"

namespace indaas {
namespace {

// Builds Figure 4(a): top AND over E1 = OR(A1, A2), E2 = OR(A2, A3).
FaultGraph BuildFig4a() {
  FaultGraph graph;
  NodeId a1 = graph.AddBasicEvent("A1");
  NodeId a2 = graph.AddBasicEvent("A2");
  NodeId a3 = graph.AddBasicEvent("A3");
  NodeId e1 = graph.AddGate("E1 fails", GateType::kOr, {a1, a2});
  NodeId e2 = graph.AddGate("E2 fails", GateType::kOr, {a2, a3});
  NodeId top = graph.AddGate("deployment fails", GateType::kAnd, {e1, e2});
  graph.SetTopEvent(top);
  EXPECT_TRUE(graph.Validate().ok());
  return graph;
}

TEST(FaultGraphTest, BasicStructure) {
  FaultGraph graph = BuildFig4a();
  EXPECT_EQ(graph.NodeCount(), 6u);
  EXPECT_EQ(graph.BasicEvents().size(), 3u);
  auto a2 = graph.FindNode("A2");
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(graph.node(*a2).gate, GateType::kBasic);
  EXPECT_FALSE(graph.FindNode("nope").ok());
}

TEST(FaultGraphTest, EvaluateAndOrSemantics) {
  FaultGraph graph = BuildFig4a();
  auto a1 = graph.FindNode("A1");
  auto a2 = graph.FindNode("A2");
  auto a3 = graph.FindNode("A3");
  std::vector<uint8_t> state(graph.NodeCount(), 0);

  // A2 alone fails both E1 and E2 -> top fails.
  state.assign(graph.NodeCount(), 0);
  state[*a2] = 1;
  EXPECT_TRUE(graph.Evaluate(state));

  // A1 alone fails only E1 -> top survives.
  state.assign(graph.NodeCount(), 0);
  state[*a1] = 1;
  EXPECT_FALSE(graph.Evaluate(state));

  // A1 + A3 fail both sides.
  state.assign(graph.NodeCount(), 0);
  state[*a1] = 1;
  state[*a3] = 1;
  EXPECT_TRUE(graph.Evaluate(state));

  // Nothing failed.
  state.assign(graph.NodeCount(), 0);
  EXPECT_FALSE(graph.Evaluate(state));
}

TEST(FaultGraphTest, KofNGate) {
  FaultGraph graph;
  NodeId a = graph.AddBasicEvent("a");
  NodeId b = graph.AddBasicEvent("b");
  NodeId c = graph.AddBasicEvent("c");
  NodeId top = graph.AddKofNGate("2of3", 2, {a, b, c});
  graph.SetTopEvent(top);
  ASSERT_TRUE(graph.Validate().ok());
  std::vector<uint8_t> state(graph.NodeCount(), 0);
  state[a] = 1;
  EXPECT_FALSE(graph.Evaluate(state));
  state[b] = 1;
  EXPECT_TRUE(graph.Evaluate(state));
  state[c] = 1;
  EXPECT_TRUE(graph.Evaluate(state));
}

TEST(FaultGraphTest, ValidateRejectsCycle) {
  FaultGraph graph;
  NodeId a = graph.AddBasicEvent("a");
  NodeId g1 = graph.AddGate("g1", GateType::kOr, {a});
  NodeId g2 = graph.AddGate("g2", GateType::kOr, {g1});
  ASSERT_TRUE(graph.AddChild(g1, g2).ok());  // cycle g1 <-> g2
  graph.SetTopEvent(g2);
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(FaultGraphTest, ValidateRejectsEmptyGate) {
  FaultGraph graph;
  NodeId a = graph.AddBasicEvent("a");
  (void)a;
  // Build a gate with no children by converting... AddGate requires children
  // at construction; test k-of-n bounds instead.
  NodeId b = graph.AddBasicEvent("b");
  NodeId bad = graph.AddKofNGate("bad", 5, {a, b});
  graph.SetTopEvent(bad);
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(FaultGraphTest, ValidateRejectsMissingTop) {
  FaultGraph graph;
  graph.AddBasicEvent("a");
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(FaultGraphTest, ValidateRejectsDuplicateNames) {
  FaultGraph graph;
  NodeId a = graph.AddBasicEvent("x");
  NodeId b = graph.AddBasicEvent("x");
  NodeId top = graph.AddGate("top", GateType::kOr, {a, b});
  graph.SetTopEvent(top);
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(FaultGraphTest, AddChildToBasicFails) {
  FaultGraph graph;
  NodeId a = graph.AddBasicEvent("a");
  NodeId b = graph.AddBasicEvent("b");
  EXPECT_FALSE(graph.AddChild(a, b).ok());
}

TEST(FaultGraphTest, SetFailureProbValidates) {
  FaultGraph graph;
  NodeId a = graph.AddBasicEvent("a");
  EXPECT_TRUE(graph.SetFailureProb(a, 0.5).ok());
  EXPECT_DOUBLE_EQ(graph.node(a).failure_prob, 0.5);
  EXPECT_FALSE(graph.SetFailureProb(a, 1.5).ok());
  EXPECT_FALSE(graph.SetFailureProb(999, 0.5).ok());
}

TEST(FaultGraphTest, TopologicalOrderChildrenFirst) {
  FaultGraph graph = BuildFig4a();
  std::vector<size_t> position(graph.NodeCount());
  const auto& order = graph.TopologicalOrder();
  for (size_t i = 0; i < order.size(); ++i) {
    position[order[i]] = i;
  }
  for (NodeId id = 0; id < graph.NodeCount(); ++id) {
    for (NodeId child : graph.node(id).children) {
      EXPECT_LT(position[child], position[id]);
    }
  }
}

TEST(FaultGraphTest, ToDotContainsNodes) {
  FaultGraph graph = BuildFig4a();
  std::string dot = graph.ToDot("g");
  EXPECT_NE(dot.find("A1"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

// --- Levels of detail ---

TEST(LevelsTest, SharedComponents) {
  std::vector<ComponentSet> sets = {{"E1", {"A1", "A2"}}, {"E2", {"A2", "A3"}}};
  auto shared = SharedComponents(sets);
  ASSERT_EQ(shared.size(), 1u);
  EXPECT_EQ(shared[0], "A2");
  EXPECT_EQ(CommonToAll(sets), shared);
  EXPECT_EQ(UnionOfAll(sets).size(), 3u);
}

TEST(LevelsTest, NormalizeComponentSetSortsAndDedupes) {
  ComponentSet set{"E", {"b", "a", "b"}};
  NormalizeComponentSet(set);
  EXPECT_EQ(set.components, (std::vector<std::string>{"a", "b"}));
}

TEST(LevelsTest, NormalizeFaultSetKeepsMaxProb) {
  FaultSet set{"E", {{"x", 0.1}, {"x", 0.3}, {"a", 0.2}}};
  NormalizeFaultSet(set);
  ASSERT_EQ(set.events.size(), 2u);
  EXPECT_EQ(set.events[0].component, "a");
  EXPECT_EQ(set.events[1].component, "x");
  EXPECT_DOUBLE_EQ(set.events[1].failure_prob, 0.3);
}

TEST(LevelsTest, BuildFromComponentSetsSharesNodes) {
  std::vector<ComponentSet> sets = {{"E1", {"A1", "A2"}}, {"E2", {"A2", "A3"}}};
  auto graph = BuildFromComponentSets(sets);
  ASSERT_TRUE(graph.ok());
  // A1, A2, A3 basic + 2 source gates + top = 6 nodes; A2 shared.
  EXPECT_EQ(graph->NodeCount(), 6u);
  EXPECT_EQ(graph->BasicEvents().size(), 3u);
}

TEST(LevelsTest, BuildFromFaultSetsCarriesProbabilities) {
  std::vector<FaultSet> sets = {{"E1", {{"A1", 0.1}, {"A2", 0.2}}},
                                {"E2", {{"A2", 0.2}, {"A3", 0.3}}}};
  auto graph = BuildFromFaultSets(sets);
  ASSERT_TRUE(graph.ok());
  auto a3 = graph->FindNode("A3");
  ASSERT_TRUE(a3.ok());
  EXPECT_DOUBLE_EQ(graph->node(*a3).failure_prob, 0.3);
}

TEST(LevelsTest, BuildNofM) {
  // 2-of-3 required -> top is a 2-of-3 failure gate (k = m - n + 1 = 2).
  std::vector<ComponentSet> sets = {{"E1", {"A"}}, {"E2", {"B"}}, {"E3", {"C"}}};
  auto graph = BuildFromComponentSets(sets, 2);
  ASSERT_TRUE(graph.ok());
  const FaultNode& top = graph->node(graph->top_event());
  EXPECT_EQ(top.gate, GateType::kKofN);
  EXPECT_EQ(top.k, 2u);
}

TEST(LevelsTest, BuildRejectsBadInput) {
  EXPECT_FALSE(BuildFromComponentSets({}).ok());
  EXPECT_FALSE(BuildFromComponentSets({{"E1", {}}}).ok());
  EXPECT_FALSE(BuildFromComponentSets({{"E1", {"A"}}}, 2).ok());
}

TEST(LevelsTest, DowngradeRoundTrip) {
  std::vector<ComponentSet> sets = {{"E1 fails", {"A1", "A2"}}, {"E2 fails", {"A2", "A3"}}};
  auto graph = BuildFromComponentSets(sets);
  ASSERT_TRUE(graph.ok());
  auto downgraded = DowngradeToComponentSets(*graph);
  ASSERT_TRUE(downgraded.ok());
  ASSERT_EQ(downgraded->size(), 2u);
  EXPECT_EQ((*downgraded)[0].components, sets[0].components);
  EXPECT_EQ((*downgraded)[1].components, sets[1].components);
}

TEST(LevelsTest, DowngradeDeepGraphFlattens) {
  // Fig 4(c)-like: internal redundancy collapses into flat per-source sets.
  FaultGraph graph;
  NodeId tor = graph.AddBasicEvent("ToR1");
  NodeId core1 = graph.AddBasicEvent("Core1");
  NodeId core2 = graph.AddBasicEvent("Core2");
  NodeId p1 = graph.AddGate("path1", GateType::kOr, {tor, core1});
  NodeId p2 = graph.AddGate("path2", GateType::kOr, {tor, core2});
  NodeId net = graph.AddGate("S1 net", GateType::kAnd, {p1, p2});
  NodeId disk = graph.AddBasicEvent("Disk1");
  NodeId s1 = graph.AddGate("S1 fails", GateType::kOr, {net, disk});
  NodeId s2_disk = graph.AddBasicEvent("Disk2");
  NodeId s2 = graph.AddGate("S2 fails", GateType::kOr, {s2_disk});
  NodeId top = graph.AddGate("top", GateType::kAnd, {s1, s2});
  graph.SetTopEvent(top);
  ASSERT_TRUE(graph.Validate().ok());
  auto sets = DowngradeToComponentSets(graph);
  ASSERT_TRUE(sets.ok());
  ASSERT_EQ(sets->size(), 2u);
  EXPECT_EQ((*sets)[0].components,
            (std::vector<std::string>{"Core1", "Core2", "Disk1", "ToR1"}));
  EXPECT_EQ((*sets)[1].components, (std::vector<std::string>{"Disk2"}));
}

// --- Composition ---

TEST(ComposeTest, SplicesServiceGraph) {
  // Primary: EC2 instance depends on "EBS" (placeholder) and its own disk.
  FaultGraph primary;
  NodeId ebs = primary.AddBasicEvent("EBS");
  NodeId disk = primary.AddBasicEvent("disk1");
  NodeId top = primary.AddGate("instance fails", GateType::kOr, {ebs, disk});
  primary.SetTopEvent(top);
  ASSERT_TRUE(primary.Validate().ok());

  // EBS service graph: fails when both its servers fail; both share a switch.
  FaultGraph ebs_graph;
  NodeId sw = ebs_graph.AddBasicEvent("switch-S");
  NodeId sa = ebs_graph.AddBasicEvent("ebs-server-a");
  NodeId sb = ebs_graph.AddBasicEvent("ebs-server-b");
  NodeId ra = ebs_graph.AddGate("replica a", GateType::kOr, {sa, sw});
  NodeId rb = ebs_graph.AddGate("replica b", GateType::kOr, {sb, sw});
  NodeId ebs_top = ebs_graph.AddGate("ebs fails", GateType::kAnd, {ra, rb});
  ebs_graph.SetTopEvent(ebs_top);
  ASSERT_TRUE(ebs_graph.Validate().ok());

  auto composed = ComposeFaultGraphs(primary, {{"EBS", &ebs_graph}});
  ASSERT_TRUE(composed.ok());
  // The placeholder is now a gate, and the switch failure alone must fail
  // the composed instance.
  auto sw_id = composed->FindNode("switch-S");
  ASSERT_TRUE(sw_id.ok());
  std::vector<uint8_t> state(composed->NodeCount(), 0);
  state[*sw_id] = 1;
  EXPECT_TRUE(composed->Evaluate(state));
  // A single EBS server failure must not.
  state.assign(composed->NodeCount(), 0);
  auto sa_id = composed->FindNode("ebs-server-a");
  ASSERT_TRUE(sa_id.ok());
  state[*sa_id] = 1;
  EXPECT_FALSE(composed->Evaluate(state));
}

TEST(ComposeTest, SharedBasicEventsUnify) {
  // Two services both depend on the same power source; composing both into
  // one deployment must yield a single shared node.
  FaultGraph primary;
  NodeId s1 = primary.AddBasicEvent("svcA");
  NodeId s2 = primary.AddBasicEvent("svcB");
  NodeId top = primary.AddGate("top", GateType::kAnd, {s1, s2});
  primary.SetTopEvent(top);
  ASSERT_TRUE(primary.Validate().ok());

  auto make_service = [](const std::string& own) {
    FaultGraph g;
    NodeId power = g.AddBasicEvent("power-dublin");
    NodeId self = g.AddBasicEvent(own);
    NodeId t = g.AddGate("svc fails", GateType::kOr, {power, self});
    g.SetTopEvent(t);
    EXPECT_TRUE(g.Validate().ok());
    return g;
  };
  FaultGraph ga = make_service("gen-a");
  FaultGraph gb = make_service("gen-b");
  auto composed = ComposeFaultGraphs(primary, {{"svcA", &ga}, {"svcB", &gb}});
  ASSERT_TRUE(composed.ok());
  // Exactly one "power-dublin" node; failing it fails everything (the
  // Dublin-storm scenario from §1).
  auto power = composed->FindNode("power-dublin");
  ASSERT_TRUE(power.ok());
  std::vector<uint8_t> state(composed->NodeCount(), 0);
  state[*power] = 1;
  EXPECT_TRUE(composed->Evaluate(state));
}

TEST(ComposeTest, MissingPlaceholderFails) {
  FaultGraph primary;
  NodeId a = primary.AddBasicEvent("a");
  NodeId top = primary.AddGate("top", GateType::kOr, {a});
  primary.SetTopEvent(top);
  ASSERT_TRUE(primary.Validate().ok());
  FaultGraph service;
  NodeId b = service.AddBasicEvent("b");
  NodeId stop = service.AddGate("stop", GateType::kOr, {b});
  service.SetTopEvent(stop);
  ASSERT_TRUE(service.Validate().ok());
  EXPECT_FALSE(ComposeFaultGraphs(primary, {{"missing", &service}}).ok());
}

TEST(ComposeTest, RequiresValidatedInputs) {
  FaultGraph primary;  // not validated
  FaultGraph service;
  EXPECT_FALSE(ComposeFaultGraphs(primary, {{"x", &service}}).ok());
}

}  // namespace
}  // namespace indaas
