// Unit tests for src/util/: status, rng, strings, stats, flags, thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "src/util/flags.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/status.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace indaas {
namespace {

// --- Status / Result ---

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(ResourceExhaustedError("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(ProtocolError("x").code(), StatusCode::kProtocolError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> HelperReturningError() { return InternalError("inner"); }
Result<int> HelperUsingAssignOrReturn() {
  INDAAS_ASSIGN_OR_RETURN(int v, HelperReturningError());
  return v + 1;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> r = HelperUsingAssignOrReturn();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

// --- Rng ---

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBelow(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.NextBool(0.3)) {
      ++hits;
    }
  }
  double freq = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(freq, 0.3, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.Split();
  EXPECT_NE(parent.Next(), child.Next());
}

// --- Strings ---

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, SplitSingleField) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, SplitAndTrimDropsEmpties) {
  auto parts = SplitAndTrim(" a , , b ", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StringsTest, JoinRoundTrip) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "ok"), "7-ok");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(1536), "1.50 KB");
  EXPECT_EQ(HumanBytes(3.0 * 1024 * 1024), "3.00 MB");
}

TEST(StringsTest, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(0.0005), "500.0 us");
  EXPECT_EQ(HumanSeconds(0.5), "500.0 ms");
  EXPECT_EQ(HumanSeconds(3.21), "3.21 s");
  EXPECT_EQ(HumanSeconds(600), "10.0 min");
}

// --- Stats ---

TEST(StatsTest, RunningStatsBasics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StatsTest, EmptyStats) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StatsTest, Percentile) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 5.5);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(StatsTest, TextTableRenders) {
  TextTable t({"Rank", "Deployment", "Jaccard"});
  t.AddRow({"1", "Cloud2 & Cloud4", "0.1419"});
  t.AddRow({"2", "Cloud2 & Cloud3", "0.1547"});
  std::string rendered = t.ToString();
  EXPECT_NE(rendered.find("Rank"), std::string::npos);
  EXPECT_NE(rendered.find("Cloud2 & Cloud4"), std::string::npos);
  EXPECT_NE(rendered.find("0.1547"), std::string::npos);
}

// --- Flags ---

TEST(FlagsTest, ParsesAllTypes) {
  int64_t n = 0;
  double d = 0;
  bool b = false;
  std::string s;
  FlagSet flags;
  flags.AddInt("n", &n, "count");
  flags.AddDouble("d", &d, "ratio");
  flags.AddBool("b", &b, "toggle");
  flags.AddString("s", &s, "name");
  const char* argv[] = {"prog", "--n=5", "--d", "2.5", "--b", "--s=hello"};
  ASSERT_TRUE(flags.Parse(6, const_cast<char**>(argv)).ok());
  EXPECT_EQ(n, 5);
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_TRUE(b);
  EXPECT_EQ(s, "hello");
}

TEST(FlagsTest, BooleanNegation) {
  bool b = true;
  FlagSet flags;
  flags.AddBool("verbose", &b, "");
  const char* argv[] = {"prog", "--no-verbose"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_FALSE(b);
}

TEST(FlagsTest, RejectsUnknownFlag) {
  FlagSet flags;
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, RejectsMalformedInt) {
  int64_t n = 0;
  FlagSet flags;
  flags.AddInt("n", &n, "");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

// --- ThreadPool ---

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversIndexSpace) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, ParallelForChunkedCoversIndexSpaceOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelForChunked(1000, 64, [&hits](size_t begin, size_t end) {
    ASSERT_LT(begin, end);
    ASSERT_LE(end - begin, 64u);
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1);
    }
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForChunkedZeroGrainSplitsPerWorker) {
  ThreadPool pool(3);
  std::atomic<int> chunks{0};
  std::atomic<size_t> covered{0};
  pool.ParallelForChunked(100, 0, [&](size_t begin, size_t end) {
    chunks.fetch_add(1);
    covered.fetch_add(end - begin);
  });
  EXPECT_EQ(covered.load(), 100u);
  EXPECT_LE(chunks.load(), 3);
}

TEST(ThreadPoolTest, ParallelForChunkedZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelForChunked(0, 8, [](size_t, size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, ParallelForChunkedGrainLargerThanN) {
  ThreadPool pool(2);
  std::atomic<int> chunks{0};
  pool.ParallelForChunked(5, 100, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 5u);
    chunks.fetch_add(1);
  });
  EXPECT_EQ(chunks.load(), 1);
}

TEST(ThreadPoolTest, WaitThenReuse) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace indaas
