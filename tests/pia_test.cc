// Tests for src/pia/: Jaccard, MinHash, the P-SOP protocol, the KS baseline,
// and the private audit orchestration.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "src/deps/prob_model.h"
#include "src/pia/audit.h"
#include "src/pia/audit_trail.h"
#include "src/pia/jaccard.h"
#include "src/pia/ks.h"
#include "src/pia/network_model.h"
#include "src/pia/psop.h"
#include "src/sketch/sketch.h"
#include "src/util/rng.h"
#include "src/util/timer.h"
#include "src/util/strings.h"

namespace indaas {
namespace {

std::vector<std::string> MakeSet(int lo, int hi) {
  std::vector<std::string> out;
  for (int i = lo; i < hi; ++i) {
    out.push_back("component-" + std::to_string(i));
  }
  return out;
}

// --- Jaccard ---

TEST(JaccardTest, KnownValues) {
  auto j = JaccardSimilarity({MakeSet(0, 10), MakeSet(5, 15)});
  ASSERT_TRUE(j.ok());
  EXPECT_DOUBLE_EQ(*j, 5.0 / 15.0);
}

TEST(JaccardTest, DisjointAndIdentical) {
  auto disjoint = JaccardSimilarity({MakeSet(0, 5), MakeSet(5, 10)});
  ASSERT_TRUE(disjoint.ok());
  EXPECT_DOUBLE_EQ(*disjoint, 0.0);
  auto identical = JaccardSimilarity({MakeSet(0, 5), MakeSet(0, 5)});
  ASSERT_TRUE(identical.ok());
  EXPECT_DOUBLE_EQ(*identical, 1.0);
}

TEST(JaccardTest, MultiWay) {
  // {0..9}, {5..14}, {5..9 plus 20..24}: intersection {5..9}=5, union=20.
  std::vector<std::string> third = MakeSet(5, 10);
  auto extra = MakeSet(20, 25);
  third.insert(third.end(), extra.begin(), extra.end());
  auto j = JaccardSimilarity({MakeSet(0, 10), MakeSet(5, 15), third});
  ASSERT_TRUE(j.ok());
  EXPECT_DOUBLE_EQ(*j, 5.0 / 20.0);
}

TEST(JaccardTest, DuplicatesInInputIgnored) {
  std::vector<std::string> with_dupes = {"a", "a", "b"};
  auto j = JaccardSimilarity({with_dupes, {"a", "b"}});
  ASSERT_TRUE(j.ok());
  EXPECT_DOUBLE_EQ(*j, 1.0);
}

TEST(JaccardTest, NeedsTwoSets) {
  EXPECT_FALSE(JaccardSimilarity({MakeSet(0, 3)}).ok());
}

// --- MinHash ---

TEST(MinHashTest, EstimateWithinBroderBound) {
  // Expected error O(1/sqrt(m)); allow 4 sigma.
  const size_t m = 512;
  HashFamily family(7, m);
  std::vector<std::string> a = MakeSet(0, 400);
  std::vector<std::string> b = MakeSet(200, 600);  // J = 200/600 = 1/3
  MinHashSignature sa(family, a);
  MinHashSignature sb(family, b);
  auto estimate = EstimateJaccard({sa, sb});
  ASSERT_TRUE(estimate.ok());
  double sigma = 1.0 / std::sqrt(static_cast<double>(m));
  EXPECT_NEAR(*estimate, 1.0 / 3.0, 4 * sigma);
}

TEST(MinHashTest, ErrorShrinksWithM) {
  std::vector<std::string> a = MakeSet(0, 300);
  std::vector<std::string> b = MakeSet(100, 400);  // J = 0.5
  double err_small = 0;
  double err_large = 0;
  // Average over several families to smooth noise.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    HashFamily small_family(seed, 16);
    HashFamily large_family(seed, 1024);
    auto je_small = EstimateJaccard(
        {MinHashSignature(small_family, a), MinHashSignature(small_family, b)});
    auto je_large = EstimateJaccard(
        {MinHashSignature(large_family, a), MinHashSignature(large_family, b)});
    ASSERT_TRUE(je_small.ok());
    ASSERT_TRUE(je_large.ok());
    err_small += std::abs(*je_small - 0.5);
    err_large += std::abs(*je_large - 0.5);
  }
  EXPECT_LT(err_large, err_small);
}

TEST(MinHashTest, MismatchedSizesRejected) {
  HashFamily f1(1, 8);
  HashFamily f2(1, 16);
  MinHashSignature a(f1, MakeSet(0, 5));
  MinHashSignature b(f2, MakeSet(0, 5));
  EXPECT_FALSE(EstimateJaccard({a, b}).ok());
  EXPECT_FALSE(EstimateJaccard({a}).ok());
}

// --- P-SOP ---

// 768-bit group keeps tests fast while using the real protocol code path.
PsopOptions FastPsop() {
  PsopOptions options;
  options.group_bits = 768;
  return options;
}

TEST(PsopTest, TwoPartyExactCounts) {
  auto result = RunPsop({MakeSet(0, 20), MakeSet(10, 30)}, FastPsop());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->intersection, 10u);
  EXPECT_EQ(result->union_size, 30u);
  EXPECT_NEAR(result->jaccard, 10.0 / 30.0, 1e-12);
}

TEST(PsopTest, ThreePartyExactCounts) {
  auto result = RunPsop({MakeSet(0, 12), MakeSet(4, 16), MakeSet(8, 20)}, FastPsop());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->intersection, 4u);  // {8..11}
  EXPECT_EQ(result->union_size, 20u);
}

TEST(PsopTest, DisjointSets) {
  auto result = RunPsop({MakeSet(0, 5), MakeSet(5, 10)}, FastPsop());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->intersection, 0u);
  EXPECT_DOUBLE_EQ(result->jaccard, 0.0);
}

TEST(PsopTest, MultisetDisambiguation) {
  // a appears twice on one side, once on the other: counts once.
  auto result = RunPsop({{"a", "a", "b"}, {"a", "b", "c"}}, FastPsop());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->intersection, 2u);  // a||1 and b||1
  EXPECT_EQ(result->union_size, 4u);    // a||1, a||2, b||1, c||1
}

TEST(PsopTest, TrafficAccounting) {
  const size_t n = 8;
  auto result = RunPsop({MakeSet(0, n), MakeSet(0, n)}, FastPsop());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->party_stats.size(), 2u);
  const size_t element_bytes = 768 / 8;
  // Each party: k=2 ring sends of its held dataset + broadcast to 1 peer.
  // Ring phase moves each dataset twice; each party holds one dataset per
  // hop, so it sends n elements per hop + n for the final share.
  size_t expected = (2 + 1) * n * element_bytes;
  EXPECT_EQ(result->party_stats[0].bytes_sent, expected);
  EXPECT_EQ(result->party_stats[0].bytes_received, expected);
  // Each party encrypts every dataset it forwards: its own + the peer's.
  EXPECT_EQ(result->party_stats[0].encrypt_ops, 2 * n);
  EXPECT_GT(result->party_stats[0].compute_seconds, 0.0);
}

TEST(PsopTest, ComputeSecondsBoundedBySerialWallTime) {
  // The simulation runs the parties serially on one thread, so the sum of
  // per-party compute_seconds (all measured with the same monotonic clock,
  // including the share/count phase) cannot exceed the run's wall time.
  WallTimer timer;
  auto result = RunPsop({MakeSet(0, 25), MakeSet(5, 30), MakeSet(10, 35)}, FastPsop());
  double wall = timer.ElapsedSeconds();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->party_stats.size(), 3u);
  double total = 0.0;
  for (const PartyStats& stats : result->party_stats) {
    EXPECT_GT(stats.compute_seconds, 0.0);
    total += stats.compute_seconds;
  }
  EXPECT_LE(total, wall);
}

TEST(PsopTest, NeedsTwoParties) {
  EXPECT_FALSE(RunPsop({MakeSet(0, 3)}, FastPsop()).ok());
}

TEST(PsopTest, MinHashVariantEstimatesJaccard) {
  PsopOptions options = FastPsop();
  const size_t m = 128;
  auto result = RunPsopWithMinHash({MakeSet(0, 200), MakeSet(100, 300)}, m, options);
  ASSERT_TRUE(result.ok());
  // True J = 100/300 = 1/3; 4-sigma MinHash tolerance.
  EXPECT_NEAR(result->jaccard, 1.0 / 3.0, 4.0 / std::sqrt(static_cast<double>(m)));
  // Each party's protocol cost is m elements, not 200.
  EXPECT_EQ(result->party_stats[0].encrypt_ops, 2 * m);
}

TEST(PsopTest, MinHashRejectsBadInput) {
  EXPECT_FALSE(RunPsopWithMinHash({MakeSet(0, 5), MakeSet(0, 5)}, 0, FastPsop()).ok());
  EXPECT_FALSE(RunPsopWithMinHash({MakeSet(0, 5), {}}, 16, FastPsop()).ok());
}

TEST(PsopTest, MinHashSamplingMatchesSketchArgmin) {
  // Regression cross-check for the deterministic-seed audit: the elements
  // MinHash-compressed P-SOP feeds into the ring must be exactly the sketch
  // engine's arg-min picks under the derived seed — so the sampled sets (and
  // with them the protocol bytes) are identical across runs and hosts.
  const size_t m = 64;
  PsopOptions options = FastPsop();
  const std::vector<std::vector<std::string>> datasets = {MakeSet(0, 150), MakeSet(50, 200)};
  auto result = RunPsopWithMinHash(datasets, m, options);
  ASSERT_TRUE(result.ok());
  sketch::SketchParams params;
  params.k = static_cast<uint32_t>(m);
  params.seed = options.seed ^ 0x4D696E4861736821ULL;  // the documented salt
  std::vector<std::vector<std::string>> samples;
  std::vector<uint32_t> registers(m);
  std::vector<uint32_t> argmin;
  for (const std::vector<std::string>& dataset : datasets) {
    sketch::BuildSketch(params, dataset, registers.data(), &argmin);
    std::vector<std::string> sample;
    for (size_t i = 0; i < m; ++i) {
      sample.push_back(StrFormat("%zu#", i) + dataset[argmin[i]]);
    }
    samples.push_back(std::move(sample));
  }
  auto expected = RunPsop(samples, options);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(result->intersection, expected->intersection);
  EXPECT_DOUBLE_EQ(result->jaccard,
                   static_cast<double>(expected->intersection) / static_cast<double>(m));
  // And the whole pipeline is run-to-run deterministic.
  auto again = RunPsopWithMinHash(datasets, m, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->intersection, result->intersection);
  EXPECT_EQ(again->union_size, result->union_size);
}

// --- Sketch-exchange P-SOP mode ---

TEST(PsopTest, SketchVariantEstimatesJaccard) {
  const uint32_t sketch_k = 256;
  auto result = RunPsopWithSketch({MakeSet(0, 200), MakeSet(100, 300)}, sketch_k, FastPsop());
  ASSERT_TRUE(result.ok());
  // True J = 100/300; 4-sigma register-agreement tolerance.
  EXPECT_NEAR(result->jaccard, 1.0 / 3.0, 4.0 / std::sqrt(static_cast<double>(sketch_k)));
  ASSERT_EQ(result->party_stats.size(), 2u);
  for (const PartyStats& stats : result->party_stats) {
    // No encryption, and bytes independent of dataset size: k-1 = 1 ring hop
    // of one fixed-width sketch frame.
    EXPECT_EQ(stats.encrypt_ops, 0u);
    EXPECT_EQ(stats.bytes_sent, kSketchHopOverheadBytes + sketch::SketchBytes(sketch_k));
  }
}

TEST(PsopTest, SketchVariantDeterministicAcrossRuns) {
  const std::vector<std::vector<std::string>> datasets = {MakeSet(0, 80), MakeSet(40, 120),
                                                          MakeSet(20, 100)};
  auto first = RunPsopWithSketch(datasets, 128, FastPsop());
  auto second = RunPsopWithSketch(datasets, 128, FastPsop());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->intersection, second->intersection);
  EXPECT_EQ(first->union_size, second->union_size);
  EXPECT_DOUBLE_EQ(first->jaccard, second->jaccard);
}

TEST(PsopTest, SketchVariantIdenticalSetsAndDisjointSets) {
  auto identical = RunPsopWithSketch({MakeSet(0, 50), MakeSet(0, 50)}, 64, FastPsop());
  ASSERT_TRUE(identical.ok());
  EXPECT_DOUBLE_EQ(identical->jaccard, 1.0);
  auto disjoint = RunPsopWithSketch({MakeSet(0, 500), MakeSet(500, 1000)}, 64, FastPsop());
  ASSERT_TRUE(disjoint.ok());
  EXPECT_LT(disjoint->jaccard, 0.1);
}

TEST(PsopTest, SketchVariantRejectsBadInput) {
  EXPECT_FALSE(RunPsopWithSketch({MakeSet(0, 5)}, 64, FastPsop()).ok());
  EXPECT_FALSE(RunPsopWithSketch({MakeSet(0, 5), MakeSet(0, 5)}, 0, FastPsop()).ok());
  EXPECT_FALSE(RunPsopWithSketch({MakeSet(0, 5), {}}, 64, FastPsop()).ok());
}

// --- KS baseline ---

KsOptions FastKs() {
  KsOptions options;
  options.paillier_bits = 256;  // small keys: tests exercise the code path
  return options;
}

TEST(KsTest, TwoPartyIntersection) {
  auto result = RunKsIntersectionCardinality({MakeSet(0, 15), MakeSet(5, 20)}, FastKs());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->intersection, 10u);
}

TEST(KsTest, ThreePartyIntersection) {
  auto result =
      RunKsIntersectionCardinality({MakeSet(0, 12), MakeSet(4, 16), MakeSet(8, 20)}, FastKs());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->intersection, 4u);
}

TEST(KsTest, DisjointSets) {
  auto result = RunKsIntersectionCardinality({MakeSet(0, 8), MakeSet(8, 16)}, FastKs());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->intersection, 0u);
}

TEST(KsTest, IdenticalSets) {
  auto result = RunKsIntersectionCardinality({MakeSet(0, 10), MakeSet(0, 10)}, FastKs());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->intersection, 10u);
}

TEST(KsTest, StatsAccounting) {
  auto result = RunKsIntersectionCardinality({MakeSet(0, 10), MakeSet(0, 10)}, FastKs());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->party_stats.size(), 2u);
  for (const PartyStats& stats : result->party_stats) {
    EXPECT_GT(stats.encrypt_ops, 0u);
    EXPECT_GT(stats.homomorphic_ops, 0u);
    EXPECT_GT(stats.bytes_sent, 0u);
  }
}

TEST(KsTest, ComputeSecondsAttribution) {
  // Key generation, partial aggregation, and every decryption run at party 0
  // (the key holder); that work must be charged to party 0, not to whichever
  // party produced the ciphertext. The ordering check uses op counts rather
  // than compute_seconds: wall-clock per-party times invert under scheduler
  // contention, but party 0's extra decryptions are deterministic. All
  // parties still accrue measurable time, and the serial simulation bounds
  // the sum of per-party times by the wall time.
  WallTimer timer;
  auto result =
      RunKsIntersectionCardinality({MakeSet(0, 12), MakeSet(4, 16), MakeSet(8, 20)}, FastKs());
  double wall = timer.ElapsedSeconds();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->party_stats.size(), 3u);
  double total = 0.0;
  for (const PartyStats& stats : result->party_stats) {
    EXPECT_GT(stats.compute_seconds, 0.0);
    total += stats.compute_seconds;
  }
  EXPECT_LE(total, wall);
  for (size_t i = 1; i < result->party_stats.size(); ++i) {
    EXPECT_GT(result->party_stats[0].encrypt_ops,
              result->party_stats[i].encrypt_ops);
  }
}

TEST(KsTest, RejectsBadInput) {
  EXPECT_FALSE(RunKsIntersectionCardinality({MakeSet(0, 5)}, FastKs()).ok());
  EXPECT_FALSE(RunKsIntersectionCardinality({MakeSet(0, 5), {}}, FastKs()).ok());
}

// --- Cross-validation: P-SOP vs plain Jaccard vs KS ---

TEST(CrossValidationTest, ProtocolsAgreeWithPlaintextJaccard) {
  Rng rng(5);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<std::vector<std::string>> sets;
    size_t k = 2 + rng.NextBelow(2);
    for (size_t i = 0; i < k; ++i) {
      std::vector<std::string> set;
      size_t count = 5 + rng.NextBelow(15);
      for (size_t j = 0; j < count; ++j) {
        set.push_back("c" + std::to_string(rng.NextBelow(30)));
      }
      std::sort(set.begin(), set.end());
      set.erase(std::unique(set.begin(), set.end()), set.end());
      sets.push_back(std::move(set));
    }
    auto plain = JaccardSimilarity(sets);
    ASSERT_TRUE(plain.ok());
    PsopOptions psop = FastPsop();
    psop.seed = 10 + static_cast<uint64_t>(trial);
    auto private_result = RunPsop(sets, psop);
    ASSERT_TRUE(private_result.ok());
    EXPECT_NEAR(private_result->jaccard, *plain, 1e-12) << "trial " << trial;

    KsOptions ks = FastKs();
    ks.seed = 20 + static_cast<uint64_t>(trial);
    auto ks_result = RunKsIntersectionCardinality(sets, ks);
    ASSERT_TRUE(ks_result.ok());
    // KS computes the same intersection cardinality P-SOP does.
    EXPECT_EQ(ks_result->intersection, private_result->intersection) << "trial " << trial;
  }
}

// --- Network model ---

TEST(NetworkModelTest, TransferSecondsArithmetic) {
  NetworkModel model{0.01, 1000.0};  // 10 ms RTT, 1 kB/s
  EXPECT_DOUBLE_EQ(model.TransferSeconds(2000, 0), 2.0);
  EXPECT_DOUBLE_EQ(model.TransferSeconds(0, 5), 0.05);
  EXPECT_DOUBLE_EQ(model.TransferSeconds(1000, 2), 1.02);
}

TEST(NetworkModelTest, WallClockAddsCompute) {
  NetworkModel model{0.0, 100.0};
  PartyStats stats;
  stats.compute_seconds = 1.5;
  stats.bytes_sent = 200;
  EXPECT_DOUBLE_EQ(model.EstimateWallSeconds(stats, 0), 1.5 + 2.0);
}

TEST(NetworkModelTest, WallClockChargesBytesReceived) {
  // Regression: the estimate used to ship only bytes_sent, so a
  // receive-heavy party (the KS aggregator collects every peer's
  // ciphertexts) was under-charged. Both directions serialize on the link.
  NetworkModel model{0.0, 100.0};
  PartyStats aggregator;
  aggregator.bytes_sent = 100;
  aggregator.bytes_received = 900;
  PartyStats leaf;
  leaf.bytes_sent = 100;
  leaf.bytes_received = 0;
  EXPECT_DOUBLE_EQ(model.EstimateWallSeconds(aggregator, 0), 10.0);
  EXPECT_DOUBLE_EQ(model.EstimateWallSeconds(leaf, 0), 1.0);
  EXPECT_GT(model.EstimateWallSeconds(aggregator, 0),
            model.EstimateWallSeconds(leaf, 0));
  // The directional TransferSeconds overload sums both directions.
  EXPECT_DOUBLE_EQ(model.TransferSeconds(100, 900, 0),
                   model.TransferSeconds(1000, 0));
}

TEST(NetworkModelTest, ProfilesAreOrdered) {
  // The WAN is slower than the data center network for any message.
  PartyStats stats;
  stats.bytes_sent = 1 << 20;
  EXPECT_GT(WideAreaNetwork().EstimateWallSeconds(stats, 10),
            DatacenterNetwork().EstimateWallSeconds(stats, 10));
}

// --- Provider construction from DepDB (§4.2.3 normalization) ---

TEST(MakeProviderTest, NormalizesAllRecordTypes) {
  DepDb db;
  db.Add(NetworkDependency{"S1", "Internet", {"ToR1", "Core1"}});
  db.Add(HardwareDependency{"S1", "Disk", "SED900"});
  db.Add(SoftwareDependency{"riak", "S1", {"libc6=2.13", "OpenSSL=1.0.1e"}});
  CloudProvider provider = MakeProviderFromDepDb("Cloud1", db);
  EXPECT_EQ(provider.name, "Cloud1");
  std::set<std::string> components(provider.components.begin(), provider.components.end());
  EXPECT_EQ(components.count("net:tor1"), 1u);
  EXPECT_EQ(components.count("net:core1"), 1u);
  EXPECT_EQ(components.count("hw:sed900"), 1u);
  EXPECT_EQ(components.count("pkg:libc6=2.13"), 1u);
  EXPECT_EQ(components.count("pkg:openssl=1.0.1e"), 1u);
  EXPECT_EQ(components.size(), 5u);
}

TEST(MakeProviderTest, TwoProvidersShareNormalizedComponents) {
  // The whole point of §4.2.3: the same third-party component reported by
  // different providers must produce identical set elements.
  DepDb db1;
  db1.Add(SoftwareDependency{"svc-a", "host-a", {"OpenSSL=1.0.1e"}});
  DepDb db2;
  db2.Add(SoftwareDependency{"svc-b", "host-b", {"openssl=1.0.1e"}});
  CloudProvider p1 = MakeProviderFromDepDb("A", db1);
  CloudProvider p2 = MakeProviderFromDepDb("B", db2);
  auto j = JaccardSimilarity({p1.components, p2.components});
  ASSERT_TRUE(j.ok());
  EXPECT_DOUBLE_EQ(*j, 1.0);
}

TEST(MakeProviderTest, EmptyDbYieldsEmptyProvider) {
  DepDb db;
  CloudProvider provider = MakeProviderFromDepDb("Empty", db);
  EXPECT_TRUE(provider.components.empty());
}

// --- Audit trail (§5.2) ---

TEST(AuditTrailTest, CommitVerifyRoundTrip) {
  std::vector<std::string> dataset = {"net:tor1", "pkg:openssl=1.0.1e", "hw:sed900"};
  std::string commitment = CommitDataset(dataset, 12345);
  EXPECT_EQ(commitment.size(), 64u);  // hex SHA-256
  EXPECT_TRUE(VerifyDatasetCommitment(dataset, 12345, commitment));
}

TEST(AuditTrailTest, OrderInsensitive) {
  std::vector<std::string> a = {"x", "y", "z"};
  std::vector<std::string> b = {"z", "x", "y"};
  EXPECT_EQ(CommitDataset(a, 7), CommitDataset(b, 7));
}

TEST(AuditTrailTest, DetectsUnderReporting) {
  // The §5.2 cheat: a provider that committed to the full set cannot later
  // open the commitment with a subset (or vice versa).
  std::vector<std::string> full = {"a", "b", "c"};
  std::vector<std::string> trimmed = {"a", "b"};
  std::string commitment = CommitDataset(full, 99);
  EXPECT_FALSE(VerifyDatasetCommitment(trimmed, 99, commitment));
  EXPECT_FALSE(VerifyDatasetCommitment(full, 100, commitment));  // wrong nonce
}

TEST(AuditTrailTest, LengthPrefixPreventsSplicing) {
  // {"ab","c"} and {"a","bc"} must commit differently.
  EXPECT_NE(CommitDataset({"ab", "c"}, 1), CommitDataset({"a", "bc"}, 1));
}

// --- Gill et al. estimator (§5.1) ---

TEST(FailureObservationTest, EstimatorDividesFailedByPopulation) {
  auto model = FailureProbabilityModel::FromObservations(
      {{"net:tor", 5, 100}, {"net:agg", 1, 10}}, 0.02);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->Lookup("net:tor7"), 0.05);
  EXPECT_DOUBLE_EQ(model->Lookup("net:agg3"), 0.1);
  EXPECT_DOUBLE_EQ(model->Lookup("hw:disk"), 0.02);  // default
}

TEST(FailureObservationTest, RejectsBadObservations) {
  EXPECT_FALSE(FailureProbabilityModel::FromObservations({{"x", 1, 0}}).ok());
  EXPECT_FALSE(FailureProbabilityModel::FromObservations({{"x", 5, 3}}).ok());
}

// --- PIA audit orchestration ---

TEST(PiaAuditTest, RanksByAscendingJaccard) {
  std::vector<CloudProvider> providers = {
      {"Cloud1", MakeSet(0, 10)},
      {"Cloud2", MakeSet(8, 18)},   // small overlap with Cloud1
      {"Cloud3", MakeSet(0, 10)},   // identical to Cloud1
  };
  PiaAuditOptions options;
  options.psop.group_bits = 768;
  options.max_redundancy = 2;
  auto report = RunPiaAudit(providers, options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->rankings.size(), 1u);
  const auto& ranking = report->rankings[0];
  ASSERT_EQ(ranking.size(), 3u);
  // Most independent first; Cloud1&Cloud3 (identical) must be last.
  EXPECT_LE(ranking[0].jaccard, ranking[1].jaccard);
  EXPECT_LE(ranking[1].jaccard, ranking[2].jaccard);
  EXPECT_EQ(ranking[2].providers, (std::vector<std::string>{"Cloud1", "Cloud3"}));
  EXPECT_DOUBLE_EQ(ranking[2].jaccard, 1.0);
}

TEST(PiaAuditTest, TwoAndThreeWayRankings) {
  std::vector<CloudProvider> providers = {
      {"Cloud1", MakeSet(0, 10)},
      {"Cloud2", MakeSet(5, 15)},
      {"Cloud3", MakeSet(10, 20)},
      {"Cloud4", MakeSet(15, 25)},
  };
  PiaAuditOptions options;
  options.psop.group_bits = 768;
  auto report = RunPiaAudit(providers, options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->rankings.size(), 2u);
  EXPECT_EQ(report->rankings[0].size(), 6u);  // C(4,2) — Table 2's shape
  EXPECT_EQ(report->rankings[1].size(), 4u);  // C(4,3)
  std::string rendered = RenderPiaReport(*report);
  EXPECT_NE(rendered.find("2-Way Redundancy Deployment"), std::string::npos);
  EXPECT_NE(rendered.find("3-Way Redundancy Deployment"), std::string::npos);
  EXPECT_NE(rendered.find("Cloud1 & Cloud2"), std::string::npos);
}

TEST(PiaAuditTest, AggregatesProviderStats) {
  std::vector<CloudProvider> providers = {
      {"A", MakeSet(0, 5)}, {"B", MakeSet(0, 5)}, {"C", MakeSet(0, 5)}};
  PiaAuditOptions options;
  options.psop.group_bits = 768;
  options.max_redundancy = 2;
  auto report = RunPiaAudit(providers, options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->provider_stats.size(), 3u);
  for (const PartyStats& stats : report->provider_stats) {
    // Each provider participates in 2 of the 3 pairings.
    EXPECT_EQ(stats.encrypt_ops, 2u * 2u * 5u);
  }
}

TEST(PiaAuditTest, RejectsBadInput) {
  PiaAuditOptions options;
  EXPECT_FALSE(RunPiaAudit({}, options).ok());
  EXPECT_FALSE(RunPiaAudit({{"A", MakeSet(0, 3)}}, options).ok());
  EXPECT_FALSE(RunPiaAudit({{"A", MakeSet(0, 3)}, {"A", MakeSet(0, 3)}}, options).ok());
  EXPECT_FALSE(RunPiaAudit({{"A", MakeSet(0, 3)}, {"B", {}}}, options).ok());
  PiaAuditOptions bad;
  bad.min_redundancy = 1;
  EXPECT_FALSE(RunPiaAudit({{"A", MakeSet(0, 3)}, {"B", MakeSet(0, 3)}}, bad).ok());
}

TEST(PiaAuditTest, ParallelMatchesSequential) {
  std::vector<CloudProvider> providers = {
      {"A", MakeSet(0, 12)}, {"B", MakeSet(6, 18)}, {"C", MakeSet(3, 15)}, {"D", MakeSet(9, 21)}};
  PiaAuditOptions options;
  options.psop.group_bits = 768;
  options.max_redundancy = 3;
  auto sequential = RunPiaAudit(providers, options);
  options.parallel_deployments = 4;
  auto parallel = RunPiaAudit(providers, options);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(sequential->rankings.size(), parallel->rankings.size());
  for (size_t level = 0; level < sequential->rankings.size(); ++level) {
    ASSERT_EQ(sequential->rankings[level].size(), parallel->rankings[level].size());
    for (size_t i = 0; i < sequential->rankings[level].size(); ++i) {
      EXPECT_EQ(sequential->rankings[level][i].providers,
                parallel->rankings[level][i].providers);
      EXPECT_DOUBLE_EQ(sequential->rankings[level][i].jaccard,
                       parallel->rankings[level][i].jaccard);
    }
  }
  for (size_t p = 0; p < providers.size(); ++p) {
    EXPECT_EQ(sequential->provider_stats[p].bytes_sent, parallel->provider_stats[p].bytes_sent);
  }
}

TEST(PiaAuditTest, MinHashMethodApproximates) {
  std::vector<CloudProvider> providers = {
      {"A", MakeSet(0, 100)},
      {"B", MakeSet(50, 150)},  // J = 1/3
  };
  PiaAuditOptions options;
  options.method = PiaMethod::kPsopMinHash;
  options.minhash_m = 128;
  options.psop.group_bits = 768;
  options.max_redundancy = 2;
  auto report = RunPiaAudit(providers, options);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->rankings[0][0].jaccard, 1.0 / 3.0, 4.0 / std::sqrt(128.0));
}

TEST(PiaAuditTest, SketchMethodApproximatesWithoutEncryption) {
  std::vector<CloudProvider> providers = {
      {"A", MakeSet(0, 100)},
      {"B", MakeSet(50, 150)},  // J = 1/3
      {"C", MakeSet(0, 100)},   // identical to A
  };
  PiaAuditOptions options;
  options.method = PiaMethod::kSketch;
  options.sketch_k = 256;
  options.max_redundancy = 2;
  auto report = RunPiaAudit(providers, options);
  ASSERT_TRUE(report.ok());
  const auto& ranking = report->rankings[0];
  ASSERT_EQ(ranking.size(), 3u);
  // A&C (identical) must rank least independent with J = 1.
  EXPECT_EQ(ranking[2].providers, (std::vector<std::string>{"A", "C"}));
  EXPECT_DOUBLE_EQ(ranking[2].jaccard, 1.0);
  EXPECT_NEAR(ranking[0].jaccard, 1.0 / 3.0, 4.0 / std::sqrt(256.0));
  // Sketch exchange never encrypts.
  for (const PartyStats& stats : report->provider_stats) {
    EXPECT_EQ(stats.encrypt_ops, 0u);
  }
}

// --- All-pairs audit (sketch + LSH) ---

TEST(AllPairsAuditTest, SurfacesLeastIndependentPairsFirst) {
  std::vector<CloudProvider> providers;
  for (size_t p = 0; p < 10; ++p) {
    CloudProvider provider;
    provider.name = "Cloud" + std::to_string(p);
    // Clouds 0 and 1 are near-duplicates; the rest are disjoint.
    for (size_t e = 0; e < 300; ++e) {
      const bool shared = p < 2 && e < 250;
      provider.components.push_back(shared ? "dup-" + std::to_string(e)
                                           : StrFormat("own%zu-%zu", p, e));
    }
    providers.push_back(std::move(provider));
  }
  PiaAllPairsOptions options;
  options.sketch.k = 256;
  auto report = RunAllPairsPiaAudit(providers, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->providers, 10u);
  EXPECT_EQ(report->pairs_possible, 45u);
  EXPECT_LT(report->pairs_evaluated, 45u);
  ASSERT_FALSE(report->pairs.empty());
  EXPECT_EQ(report->pairs[0].a, "Cloud0");
  EXPECT_EQ(report->pairs[0].b, "Cloud1");
  EXPECT_NEAR(report->pairs[0].jaccard, 250.0 / 350.0, 0.1);
  std::string rendered = RenderAllPairsReport(*report);
  EXPECT_NE(rendered.find("Cloud0 & Cloud1"), std::string::npos);
  EXPECT_NE(rendered.find("candidate pairs"), std::string::npos);
}

TEST(AllPairsAuditTest, RejectsBadInput) {
  PiaAllPairsOptions options;
  EXPECT_FALSE(RunAllPairsPiaAudit({}, options).ok());
  EXPECT_FALSE(RunAllPairsPiaAudit({{"A", MakeSet(0, 3)}}, options).ok());
  EXPECT_FALSE(
      RunAllPairsPiaAudit({{"A", MakeSet(0, 3)}, {"A", MakeSet(0, 3)}}, options).ok());
  EXPECT_FALSE(RunAllPairsPiaAudit({{"A", MakeSet(0, 3)}, {"B", {}}}, options).ok());
}

}  // namespace
}  // namespace indaas
