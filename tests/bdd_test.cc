// Tests for the ROBDD engine and exact top-event probability computation.

#include <gtest/gtest.h>

#include <set>

#include "src/graph/bdd.h"
#include "src/graph/levels.h"
#include "src/sia/ranking.h"
#include "src/sia/risk_groups.h"
#include "src/util/rng.h"

namespace indaas {
namespace {

TEST(BddManagerTest, TerminalRules) {
  BddManager manager;
  auto x = manager.Var(0);
  ASSERT_TRUE(x.ok());
  auto and_false = manager.And(*x, kBddFalse);
  auto and_true = manager.And(*x, kBddTrue);
  auto or_false = manager.Or(*x, kBddFalse);
  auto or_true = manager.Or(*x, kBddTrue);
  ASSERT_TRUE(and_false.ok());
  ASSERT_TRUE(and_true.ok());
  ASSERT_TRUE(or_false.ok());
  ASSERT_TRUE(or_true.ok());
  EXPECT_EQ(*and_false, kBddFalse);
  EXPECT_EQ(*and_true, *x);
  EXPECT_EQ(*or_false, *x);
  EXPECT_EQ(*or_true, kBddTrue);
}

TEST(BddManagerTest, HashConsingSharesNodes) {
  BddManager manager;
  auto x = manager.Var(3);
  auto y = manager.Var(3);
  ASSERT_TRUE(x.ok());
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(*x, *y);
  auto a = manager.And(*x, *manager.Var(5));
  auto b = manager.And(*manager.Var(5), *x);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);  // Commutative ops hit the same node.
}

TEST(BddManagerTest, ProbabilityOfSimpleFormulas) {
  BddManager manager;
  auto x = manager.Var(0);
  auto y = manager.Var(1);
  auto both = manager.And(*x, *y);
  auto either = manager.Or(*x, *y);
  ASSERT_TRUE(both.ok());
  ASSERT_TRUE(either.ok());
  std::vector<double> probs = {0.1, 0.2};
  EXPECT_NEAR(manager.Probability(*x, probs), 0.1, 1e-15);
  EXPECT_NEAR(manager.Probability(*both, probs), 0.02, 1e-15);
  EXPECT_NEAR(manager.Probability(*either, probs), 0.1 + 0.2 - 0.02, 1e-15);
  EXPECT_DOUBLE_EQ(manager.Probability(kBddFalse, probs), 0.0);
  EXPECT_DOUBLE_EQ(manager.Probability(kBddTrue, probs), 1.0);
}

TEST(BddManagerTest, NodeBudgetEnforced) {
  BddManager manager(/*max_nodes=*/4);  // 2 terminals + 2 real nodes
  ASSERT_TRUE(manager.Var(0).ok());
  ASSERT_TRUE(manager.Var(1).ok());
  EXPECT_FALSE(manager.Var(2).ok());
}

TEST(BddTest, WorkedExampleExact) {
  // Fig 4(b): Pr(T) = 0.224 with A1=0.1, A2=0.2, A3=0.3.
  std::vector<FaultSet> sets = {{"E1", {{"A1", 0.1}, {"A2", 0.2}}},
                                {"E2", {{"A2", 0.2}, {"A3", 0.3}}}};
  auto graph = BuildFromFaultSets(sets);
  ASSERT_TRUE(graph.ok());
  auto prob = TopEventProbabilityBdd(*graph, 0.01);
  ASSERT_TRUE(prob.ok());
  EXPECT_NEAR(*prob, 0.224, 1e-15);
}

// Brute-force Pr(top): sum over all basic-event assignments.
double BruteForceTopProb(const FaultGraph& graph, double default_prob) {
  const auto& basics = graph.BasicEvents();
  std::vector<double> probs;
  for (NodeId id : basics) {
    double p = graph.node(id).failure_prob;
    probs.push_back(p == kUnknownProb ? default_prob : p);
  }
  std::vector<uint8_t> state(graph.NodeCount(), 0);
  double total = 0.0;
  for (uint32_t mask = 0; mask < (1u << basics.size()); ++mask) {
    double weight = 1.0;
    for (size_t i = 0; i < basics.size(); ++i) {
      bool failed = ((mask >> i) & 1) != 0;
      state[basics[i]] = failed ? 1 : 0;
      weight *= failed ? probs[i] : 1.0 - probs[i];
    }
    if (graph.Evaluate(state)) {
      total += weight;
    }
  }
  return total;
}

// Random graph generator shared with property_test (duplicated locally to
// keep the test binaries independent).
FaultGraph RandomGraph(Rng& rng, size_t num_basic, size_t num_gates) {
  FaultGraph graph;
  std::vector<NodeId> nodes;
  for (size_t i = 0; i < num_basic; ++i) {
    nodes.push_back(graph.AddBasicEvent("b" + std::to_string(i), 0.05 + rng.NextDouble() * 0.4));
  }
  for (size_t g = 0; g < num_gates; ++g) {
    size_t fanin = 2 + rng.NextBelow(3);
    std::vector<NodeId> children;
    std::set<NodeId> used;
    for (size_t c = 0; c < fanin; ++c) {
      NodeId child = nodes[rng.NextBelow(nodes.size())];
      if (used.insert(child).second) {
        children.push_back(child);
      }
    }
    switch (rng.NextBelow(3)) {
      case 0:
        nodes.push_back(graph.AddGate("g" + std::to_string(g), GateType::kOr, children));
        break;
      case 1:
        nodes.push_back(graph.AddGate("g" + std::to_string(g), GateType::kAnd, children));
        break;
      default:
        nodes.push_back(graph.AddKofNGate(
            "g" + std::to_string(g), 1 + static_cast<uint32_t>(rng.NextBelow(children.size())),
            children));
        break;
    }
  }
  graph.SetTopEvent(nodes.back());
  EXPECT_TRUE(graph.Validate().ok());
  return graph;
}

class BddVsBruteForceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BddVsBruteForceTest, ExactProbabilityMatches) {
  Rng rng(GetParam() * 1000003);
  for (int trial = 0; trial < 15; ++trial) {
    FaultGraph graph = RandomGraph(rng, 3 + rng.NextBelow(9), 2 + rng.NextBelow(6));
    auto bdd = TopEventProbabilityBdd(graph, 0.1);
    ASSERT_TRUE(bdd.ok());
    double brute = BruteForceTopProb(graph, 0.1);
    EXPECT_NEAR(*bdd, brute, 1e-12) << "seed " << GetParam() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddVsBruteForceTest, ::testing::Range<uint64_t>(1, 9));

TEST(BddTest, AgreesWithInclusionExclusion) {
  Rng rng(424242);
  for (int trial = 0; trial < 10; ++trial) {
    FaultGraph graph = RandomGraph(rng, 4 + rng.NextBelow(5), 2 + rng.NextBelow(4));
    auto groups = ComputeMinimalRiskGroups(graph);
    ASSERT_TRUE(groups.ok());
    if (groups->groups.empty() || groups->groups.size() > 16) {
      continue;
    }
    double ie = TopEventProbabilityExact(graph, groups->groups, 0.1);
    auto bdd = TopEventProbabilityBdd(graph, 0.1);
    ASSERT_TRUE(bdd.ok());
    EXPECT_NEAR(*bdd, ie, 1e-10) << "trial " << trial;
  }
}

TEST(BddTest, ScalesWhereInclusionExclusionCannot) {
  // 60 shared + unique components across two sources: hundreds of minimal
  // RGs (I-E hopeless at 2^n terms), but the BDD stays small.
  std::vector<ComponentSet> sets;
  for (int s = 0; s < 2; ++s) {
    ComponentSet set{"E" + std::to_string(s), {}};
    for (int c = 0; c < 30; ++c) {
      set.components.push_back("shared" + std::to_string(c % 10));
      set.components.push_back("unique" + std::to_string(s) + "_" + std::to_string(c));
    }
    NormalizeComponentSet(set);
    sets.push_back(std::move(set));
  }
  auto graph = BuildFromComponentSets(sets);
  ASSERT_TRUE(graph.ok());
  auto groups = ComputeMinimalRiskGroups(*graph);
  ASSERT_TRUE(groups.ok());
  EXPECT_GT(groups->groups.size(), 100u);
  auto prob = TopEventProbabilityBdd(*graph, 0.05);
  ASSERT_TRUE(prob.ok());
  // Cross-check against Monte Carlo.
  Rng rng(7);
  double mc = TopEventProbabilityMonteCarlo(*graph, 0.05, 400000, rng);
  EXPECT_NEAR(*prob, mc, 0.01);
}

TEST(BddTest, KofNGateSemantics) {
  FaultGraph graph;
  std::vector<NodeId> basics;
  for (int i = 0; i < 4; ++i) {
    basics.push_back(graph.AddBasicEvent("b" + std::to_string(i), 0.5));
  }
  NodeId top = graph.AddKofNGate("3of4", 3, basics);
  graph.SetTopEvent(top);
  ASSERT_TRUE(graph.Validate().ok());
  auto prob = TopEventProbabilityBdd(graph, 0.5);
  ASSERT_TRUE(prob.ok());
  // P(X >= 3), X ~ Binomial(4, 0.5): (4 + 1) / 16.
  EXPECT_NEAR(*prob, 5.0 / 16.0, 1e-15);
}

TEST(BddTest, RequiresValidatedGraph) {
  FaultGraph graph;
  EXPECT_FALSE(TopEventProbabilityBdd(graph, 0.1).ok());
}

}  // namespace
}  // namespace indaas
