// Property-based tests: randomized cross-validation of the core algorithms
// against brute force and against each other, parameterized over seeds and
// sizes (TEST_P sweeps).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/bignum/modular.h"
#include "src/bignum/prime.h"
#include "src/graph/fault_graph.h"
#include "src/graph/levels.h"
#include "src/pia/jaccard.h"
#include "src/pia/psop.h"
#include "src/sia/ranking.h"
#include "src/sia/risk_groups.h"
#include "src/sia/sampling.h"
#include "src/util/rng.h"

namespace indaas {
namespace {

// --- Random fault graph generation ---

// A random DAG over `num_basic` basic events and `num_gates` gates; gates
// draw 2-4 children from all earlier nodes (so subgraphs are shared), gate
// types are uniform over OR / AND / k-of-n. The final gate is the top event.
FaultGraph RandomFaultGraph(Rng& rng, size_t num_basic, size_t num_gates) {
  FaultGraph graph;
  std::vector<NodeId> nodes;
  for (size_t i = 0; i < num_basic; ++i) {
    nodes.push_back(
        graph.AddBasicEvent("b" + std::to_string(i), 0.05 + rng.NextDouble() * 0.3));
  }
  for (size_t g = 0; g < num_gates; ++g) {
    size_t fanin = 2 + rng.NextBelow(3);
    std::vector<NodeId> children;
    std::set<NodeId> used;
    for (size_t c = 0; c < fanin; ++c) {
      NodeId child = nodes[rng.NextBelow(nodes.size())];
      if (used.insert(child).second) {
        children.push_back(child);
      }
    }
    std::string name = "g" + std::to_string(g);
    NodeId gate;
    switch (rng.NextBelow(3)) {
      case 0:
        gate = graph.AddGate(name, GateType::kOr, children);
        break;
      case 1:
        gate = graph.AddGate(name, GateType::kAnd, children);
        break;
      default: {
        uint32_t k = 1 + static_cast<uint32_t>(rng.NextBelow(children.size()));
        gate = graph.AddKofNGate(name, k, children);
        break;
      }
    }
    nodes.push_back(gate);
  }
  graph.SetTopEvent(nodes.back());
  EXPECT_TRUE(graph.Validate().ok());
  return graph;
}

// Brute force: all minimal failing subsets of basic events, by exhaustive
// enumeration (monotone gates => a failing set is minimal iff no
// one-element-removed subset fails).
std::set<RiskGroup> BruteForceMinimalGroups(const FaultGraph& graph) {
  const auto& basics = graph.BasicEvents();
  const size_t n = basics.size();
  EXPECT_LE(n, 20u) << "brute force limited to 20 basic events";
  std::vector<uint8_t> state(graph.NodeCount(), 0);
  std::vector<uint8_t> fails(1u << n, 0);
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    for (size_t i = 0; i < n; ++i) {
      state[basics[i]] = (mask >> i) & 1;
    }
    fails[mask] = graph.Evaluate(state) ? 1 : 0;
  }
  std::set<RiskGroup> minimal;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    if (!fails[mask]) {
      continue;
    }
    bool is_minimal = true;
    for (size_t i = 0; i < n && is_minimal; ++i) {
      if (((mask >> i) & 1) && fails[mask & ~(1u << i)]) {
        is_minimal = false;
      }
    }
    if (is_minimal) {
      RiskGroup group;
      for (size_t i = 0; i < n; ++i) {
        if ((mask >> i) & 1) {
          group.push_back(basics[i]);
        }
      }
      minimal.insert(std::move(group));
    }
  }
  return minimal;
}

// --- Minimal RG algorithm vs brute force, swept over seeds ---

class MinimalRgVsBruteForceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MinimalRgVsBruteForceTest, ExactMatch) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    size_t num_basic = 3 + rng.NextBelow(8);   // 3..10
    size_t num_gates = 2 + rng.NextBelow(6);   // 2..7
    FaultGraph graph = RandomFaultGraph(rng, num_basic, num_gates);
    std::set<RiskGroup> truth = BruteForceMinimalGroups(graph);
    auto computed = ComputeMinimalRiskGroups(graph);
    ASSERT_TRUE(computed.ok());
    std::set<RiskGroup> got(computed->groups.begin(), computed->groups.end());
    EXPECT_EQ(got, truth) << "seed " << GetParam() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimalRgVsBruteForceTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// --- Bitset engine vs legacy vector engine, swept over seeds and options ---
//
// The two engines must be byte-identical: same groups in the same order and
// the same size_bounded flag, for every combination of inline absorption,
// size bound, and bitset thread count.

class RgEngineParityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RgEngineParityTest, BitsetMatchesVectorEngine) {
  Rng rng(GetParam() * 6151);
  for (int trial = 0; trial < 15; ++trial) {
    size_t num_basic = 3 + rng.NextBelow(10);  // 3..12
    size_t num_gates = 2 + rng.NextBelow(7);   // 2..8
    FaultGraph graph = RandomFaultGraph(rng, num_basic, num_gates);
    for (bool inline_absorption : {true, false}) {
      for (size_t max_rg_size : {SIZE_MAX, size_t{3}}) {
        MinimalRgOptions vector_options;
        vector_options.engine = RgEngine::kVector;
        vector_options.inline_absorption = inline_absorption;
        vector_options.max_rg_size = max_rg_size;
        auto expected = ComputeMinimalRiskGroups(graph, vector_options);
        ASSERT_TRUE(expected.ok());
        for (size_t threads : {size_t{1}, size_t{4}}) {
          MinimalRgOptions bitset_options = vector_options;
          bitset_options.engine = RgEngine::kBitset;
          bitset_options.threads = threads;
          auto got = ComputeMinimalRiskGroups(graph, bitset_options);
          ASSERT_TRUE(got.ok());
          EXPECT_EQ(got->groups, expected->groups)
              << "seed " << GetParam() << " trial " << trial << " inline " << inline_absorption
              << " bound " << max_rg_size << " threads " << threads;
          EXPECT_EQ(got->size_bounded, expected->size_bounded)
              << "seed " << GetParam() << " trial " << trial;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RgEngineParityTest, ::testing::Range<uint64_t>(1, 9));

// Every group either engine emits on an unbounded run is truly minimal by
// direct graph evaluation.
TEST(RgEngineParityTest, EmittedGroupsAreTrulyMinimal) {
  Rng rng(4057);
  for (int trial = 0; trial < 10; ++trial) {
    FaultGraph graph = RandomFaultGraph(rng, 3 + rng.NextBelow(7), 2 + rng.NextBelow(5));
    for (RgEngine engine : {RgEngine::kBitset, RgEngine::kVector}) {
      MinimalRgOptions options;
      options.engine = engine;
      auto result = ComputeMinimalRiskGroups(graph, options);
      ASSERT_TRUE(result.ok());
      for (const RiskGroup& group : result->groups) {
        EXPECT_TRUE(IsMinimalRiskGroup(graph, group))
            << "trial " << trial << " engine " << (engine == RgEngine::kBitset ? "bitset" : "vector");
      }
    }
  }
}

// --- Sampling soundness & convergence on random graphs ---

class SamplingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SamplingPropertyTest, ShrunkGroupsAreMinimalAndConverge) {
  Rng rng(GetParam() * 7919);
  FaultGraph graph = RandomFaultGraph(rng, 3 + rng.NextBelow(6), 2 + rng.NextBelow(5));
  std::set<RiskGroup> truth = BruteForceMinimalGroups(graph);
  SamplingOptions options;
  options.rounds = 30000;
  options.failure_bias = 0.35;
  options.shrink = ShrinkMode::kGreedy;
  options.seed = GetParam();
  auto sampled = SampleRiskGroups(graph, options);
  ASSERT_TRUE(sampled.ok());
  for (const RiskGroup& group : sampled->groups) {
    EXPECT_TRUE(IsMinimalRiskGroup(graph, group)) << "seed " << GetParam();
    EXPECT_EQ(truth.count(group), 1u);
  }
  // With generous rounds on tiny graphs, sampling should find everything
  // (or the top event never fails and truth is empty).
  if (!truth.empty()) {
    EXPECT_EQ(sampled->groups.size(), truth.size()) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplingPropertyTest, ::testing::Range<uint64_t>(1, 11));

// --- Inclusion-exclusion vs Monte Carlo on random weighted graphs ---

class ProbabilityPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProbabilityPropertyTest, ExactMatchesMonteCarlo) {
  Rng rng(GetParam() * 104729);
  FaultGraph graph = RandomFaultGraph(rng, 3 + rng.NextBelow(5), 2 + rng.NextBelow(4));
  auto groups = ComputeMinimalRiskGroups(graph);
  ASSERT_TRUE(groups.ok());
  if (groups->groups.empty() || groups->groups.size() > 16) {
    GTEST_SKIP() << "degenerate graph";
  }
  double exact = TopEventProbabilityExact(graph, groups->groups, 0.1);
  Rng mc_rng(GetParam());
  double mc = TopEventProbabilityMonteCarlo(graph, 0.1, 300000, mc_rng);
  EXPECT_NEAR(exact, mc, 0.01) << "seed " << GetParam();
  EXPECT_GE(exact, -1e-12);
  EXPECT_LE(exact, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProbabilityPropertyTest, ::testing::Range<uint64_t>(1, 9));

// --- MinimizeRiskGroups properties ---

TEST(MinimizePropertyTest, IdempotentAndSound) {
  Rng rng(333);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<RiskGroup> raw;
    size_t count = 1 + rng.NextBelow(40);
    for (size_t i = 0; i < count; ++i) {
      RiskGroup group;
      size_t size = 1 + rng.NextBelow(5);
      for (size_t j = 0; j < size; ++j) {
        group.push_back(static_cast<NodeId>(rng.NextBelow(10)));
      }
      std::sort(group.begin(), group.end());
      group.erase(std::unique(group.begin(), group.end()), group.end());
      raw.push_back(std::move(group));
    }
    auto minimized = MinimizeRiskGroups(raw);
    // Idempotence.
    EXPECT_EQ(MinimizeRiskGroups(minimized), minimized);
    // No survivor is a superset of another survivor.
    for (size_t a = 0; a < minimized.size(); ++a) {
      for (size_t b = 0; b < minimized.size(); ++b) {
        if (a != b) {
          EXPECT_FALSE(IsSubsetOf(minimized[a], minimized[b]))
              << "trial " << trial << ": survivor absorbed by survivor";
        }
      }
    }
    // Every input is a superset of some survivor; every survivor was input.
    std::set<RiskGroup> input_set(raw.begin(), raw.end());
    for (const RiskGroup& group : minimized) {
      EXPECT_EQ(input_set.count(group), 1u);
    }
    for (const RiskGroup& group : raw) {
      bool covered = false;
      for (const RiskGroup& survivor : minimized) {
        if (IsSubsetOf(survivor, group)) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered);
    }
  }
}

// --- Downgrade consistency ---

TEST(DowngradePropertyTest, ComponentSetRoundTripPreservesMinimalGroups) {
  Rng rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<ComponentSet> sets;
    size_t sources = 2 + rng.NextBelow(3);
    for (size_t s = 0; s < sources; ++s) {
      ComponentSet set{"E" + std::to_string(s), {}};
      size_t width = 1 + rng.NextBelow(4);
      for (size_t c = 0; c < width; ++c) {
        set.components.push_back("C" + std::to_string(rng.NextBelow(8)));
      }
      NormalizeComponentSet(set);
      sets.push_back(std::move(set));
    }
    auto graph = BuildFromComponentSets(sets);
    ASSERT_TRUE(graph.ok());
    auto downgraded = DowngradeToComponentSets(*graph);
    ASSERT_TRUE(downgraded.ok());
    auto rebuilt = BuildFromComponentSets(*downgraded);
    ASSERT_TRUE(rebuilt.ok());
    auto original_groups = ComputeMinimalRiskGroups(*graph);
    auto rebuilt_groups = ComputeMinimalRiskGroups(*rebuilt);
    ASSERT_TRUE(original_groups.ok());
    ASSERT_TRUE(rebuilt_groups.ok());
    // Compare by component names (node ids differ between builds).
    auto names = [](const FaultGraph& g, const std::vector<RiskGroup>& groups) {
      std::set<std::set<std::string>> out;
      for (const RiskGroup& group : groups) {
        std::set<std::string> one;
        for (NodeId id : group) {
          one.insert(g.node(id).name);
        }
        out.insert(std::move(one));
      }
      return out;
    };
    EXPECT_EQ(names(*graph, original_groups->groups), names(*rebuilt, rebuilt_groups->groups))
        << "trial " << trial;
  }
}

// --- Bignum algebraic properties swept over bit sizes ---

class BignumPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BignumPropertyTest, RingAxiomsAndModExpHomomorphism) {
  const size_t bits = GetParam();
  Rng rng(bits);
  for (int trial = 0; trial < 20; ++trial) {
    BigUint a = RandomWithBits(bits, rng);
    BigUint b = RandomWithBits(bits / 2 + 1, rng);
    // Subtraction inverts addition.
    EXPECT_EQ(a.Add(b).Sub(b), a);
    // Division inverts multiplication.
    EXPECT_EQ(a.Mul(b).Div(b), a);
    EXPECT_TRUE(a.Mul(b).Mod(b).IsZero());
  }
  // a^(x+y) == a^x * a^y (mod p).
  auto p = GeneratePrime(std::min<size_t>(bits, 128), rng);
  ASSERT_TRUE(p.ok());
  for (int trial = 0; trial < 10; ++trial) {
    BigUint base = RandomBelow(*p, rng);
    BigUint x = RandomWithBits(40, rng);
    BigUint y = RandomWithBits(40, rng);
    auto lhs = ModExp(base, x.Add(y), *p);
    auto rx = ModExp(base, x, *p);
    auto ry = ModExp(base, y, *p);
    ASSERT_TRUE(lhs.ok());
    ASSERT_TRUE(rx.ok());
    ASSERT_TRUE(ry.ok());
    EXPECT_EQ(*lhs, ModMul(*rx, *ry, *p));
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, BignumPropertyTest,
                         ::testing::Values(16, 33, 64, 65, 128, 257, 512, 1024));

// --- P-SOP agrees with plaintext Jaccard, swept over party counts ---

class PsopPartyCountTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PsopPartyCountTest, MatchesPlaintext) {
  const size_t k = GetParam();
  Rng rng(k * 31);
  std::vector<std::vector<std::string>> sets(k);
  for (size_t i = 0; i < k; ++i) {
    size_t count = 4 + rng.NextBelow(10);
    std::set<std::string> unique;
    for (size_t j = 0; j < count; ++j) {
      unique.insert("c" + std::to_string(rng.NextBelow(20)));
    }
    sets[i].assign(unique.begin(), unique.end());
  }
  auto plain = JaccardSimilarity(sets);
  ASSERT_TRUE(plain.ok());
  PsopOptions options;
  options.group_bits = 768;
  options.seed = k;
  auto result = RunPsop(sets, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->jaccard, *plain, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Parties, PsopPartyCountTest, ::testing::Values(2, 3, 4, 5));

}  // namespace
}  // namespace indaas
