// Tests for the extension modules: fault graph serialization, component
// importance measures, and what-if failure simulation.

#include <gtest/gtest.h>

#include <set>

#include "src/graph/levels.h"
#include "src/graph/serialize.h"
#include "src/sia/importance.h"
#include "src/sia/ranking.h"
#include "src/sia/risk_groups.h"
#include "src/sia/whatif.h"
#include "src/util/rng.h"

namespace indaas {
namespace {

FaultGraph BuildSample() {
  FaultGraph graph;
  NodeId a1 = graph.AddBasicEvent("A1", 0.1);
  NodeId a2 = graph.AddBasicEvent("A2", 0.2);
  NodeId a3 = graph.AddBasicEvent("A3", 0.3);
  NodeId e1 = graph.AddGate("E1 fails", GateType::kOr, {a1, a2});
  NodeId e2 = graph.AddGate("E2 fails", GateType::kOr, {a2, a3});
  NodeId top = graph.AddGate("deployment fails", GateType::kAnd, {e1, e2});
  graph.SetTopEvent(top);
  EXPECT_TRUE(graph.Validate().ok());
  return graph;
}

// --- Serialization ---

TEST(SerializeTest, RoundTripPreservesEverything) {
  FaultGraph graph = BuildSample();
  auto text = SerializeFaultGraph(graph);
  ASSERT_TRUE(text.ok());
  auto parsed = ParseFaultGraph(*text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->NodeCount(), graph.NodeCount());
  for (NodeId id = 0; id < graph.NodeCount(); ++id) {
    EXPECT_EQ(parsed->node(id).name, graph.node(id).name);
    EXPECT_EQ(parsed->node(id).gate, graph.node(id).gate);
    EXPECT_EQ(parsed->node(id).children, graph.node(id).children);
    EXPECT_DOUBLE_EQ(parsed->node(id).failure_prob, graph.node(id).failure_prob);
  }
  EXPECT_EQ(parsed->top_event(), graph.top_event());
  // Second round trip is byte-identical (canonical form).
  auto text2 = SerializeFaultGraph(*parsed);
  ASSERT_TRUE(text2.ok());
  EXPECT_EQ(*text, *text2);
}

TEST(SerializeTest, KofNAndEscapedNames) {
  FaultGraph graph;
  NodeId a = graph.AddBasicEvent("name \"with\" quotes");
  NodeId b = graph.AddBasicEvent("back\\slash");
  NodeId c = graph.AddBasicEvent("plain");
  NodeId top = graph.AddKofNGate("2of3", 2, {a, b, c});
  graph.SetTopEvent(top);
  ASSERT_TRUE(graph.Validate().ok());
  auto text = SerializeFaultGraph(graph);
  ASSERT_TRUE(text.ok());
  auto parsed = ParseFaultGraph(*text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->node(a).name, "name \"with\" quotes");
  EXPECT_EQ(parsed->node(b).name, "back\\slash");
  EXPECT_EQ(parsed->node(top).k, 2u);
  EXPECT_EQ(parsed->node(top).gate, GateType::kKofN);
}

TEST(SerializeTest, PreservesMinimalRiskGroups) {
  FaultGraph graph = BuildSample();
  auto text = SerializeFaultGraph(graph);
  ASSERT_TRUE(text.ok());
  auto parsed = ParseFaultGraph(*text);
  ASSERT_TRUE(parsed.ok());
  auto original = ComputeMinimalRiskGroups(graph);
  auto round_tripped = ComputeMinimalRiskGroups(*parsed);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(round_tripped.ok());
  EXPECT_EQ(original->groups, round_tripped->groups);
}

// Random-graph round-trip property, swept over seeds.
class SerializeRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializeRoundTripTest, RandomGraphsSurvive) {
  Rng rng(GetParam() * 6364136223846793005ULL);
  for (int trial = 0; trial < 10; ++trial) {
    FaultGraph graph;
    std::vector<NodeId> nodes;
    size_t basics = 2 + rng.NextBelow(6);
    for (size_t i = 0; i < basics; ++i) {
      double prob = rng.NextBool(0.5) ? rng.NextDouble() : kUnknownProb;
      nodes.push_back(graph.AddBasicEvent("b" + std::to_string(i), prob));
    }
    for (size_t g = 0; g < 2 + rng.NextBelow(4); ++g) {
      std::vector<NodeId> children;
      std::set<NodeId> used;
      for (size_t c = 0; c < 2 + rng.NextBelow(3); ++c) {
        NodeId child = nodes[rng.NextBelow(nodes.size())];
        if (used.insert(child).second) {
          children.push_back(child);
        }
      }
      switch (rng.NextBelow(3)) {
        case 0:
          nodes.push_back(graph.AddGate("g" + std::to_string(g), GateType::kOr, children));
          break;
        case 1:
          nodes.push_back(graph.AddGate("g" + std::to_string(g), GateType::kAnd, children));
          break;
        default:
          nodes.push_back(graph.AddKofNGate(
              "g" + std::to_string(g),
              1 + static_cast<uint32_t>(rng.NextBelow(children.size())), children));
          break;
      }
    }
    graph.SetTopEvent(nodes.back());
    ASSERT_TRUE(graph.Validate().ok());
    auto text = SerializeFaultGraph(graph);
    ASSERT_TRUE(text.ok());
    auto parsed = ParseFaultGraph(*text);
    ASSERT_TRUE(parsed.ok()) << *text;
    // Same minimal RGs and same top-event semantics.
    auto original = ComputeMinimalRiskGroups(graph);
    auto round_tripped = ComputeMinimalRiskGroups(*parsed);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(round_tripped.ok());
    EXPECT_EQ(original->groups, round_tripped->groups) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeRoundTripTest, ::testing::Range<uint64_t>(1, 7));

TEST(SerializeTest, RejectsMalformed) {
  EXPECT_FALSE(ParseFaultGraph("").ok());
  EXPECT_FALSE(ParseFaultGraph("not a graph").ok());
  EXPECT_FALSE(ParseFaultGraph("faultgraph v1\n").ok());  // no top
  EXPECT_FALSE(ParseFaultGraph("faultgraph v1\nnode 0 basic \"a\"\ntop 5\n").ok());
  EXPECT_FALSE(ParseFaultGraph("faultgraph v1\nnode 1 basic \"a\"\ntop 1\n").ok());  // non-dense
  EXPECT_FALSE(
      ParseFaultGraph("faultgraph v1\nnode 0 or \"g\" children=1\ntop 0\n").ok());  // fwd ref
  EXPECT_FALSE(
      ParseFaultGraph("faultgraph v1\nnode 0 wat \"a\"\ntop 0\n").ok());  // unknown kind
}

TEST(SerializeTest, RequiresValidatedGraph) {
  FaultGraph graph;
  graph.AddBasicEvent("a");
  EXPECT_FALSE(SerializeFaultGraph(graph).ok());
}

// --- Importance measures ---

TEST(ImportanceTest, WorkedExample) {
  // Fig 4(b): minimal RGs {A2} and {A1,A3}; Pr(T)=0.224.
  // Birnbaum(A2) = Pr(T|A2) - Pr(T|!A2) = 1 - 0.03 = 0.97.
  // Criticality(A2) = 0.97*0.2/0.224 = 0.8661.
  FaultGraph graph = BuildSample();
  auto groups = ComputeMinimalRiskGroups(graph);
  ASSERT_TRUE(groups.ok());
  auto ranked = RankComponentImportance(graph, groups->groups);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 3u);
  EXPECT_EQ((*ranked)[0].name, "A2");
  EXPECT_NEAR((*ranked)[0].birnbaum, 0.97, 1e-12);
  EXPECT_NEAR((*ranked)[0].criticality, 0.97 * 0.2 / 0.224, 1e-12);
  EXPECT_EQ((*ranked)[0].rg_memberships, 1u);
  // A3's Birnbaum: Pr(T|A3) - Pr(T|!A3) = (0.2 + 0.1*0.8) - 0.2 = 0.08.
  for (const auto& entry : *ranked) {
    if (entry.name == "A3") {
      EXPECT_NEAR(entry.birnbaum, 0.08, 1e-12);
    }
  }
}

TEST(ImportanceTest, MonteCarloPathAgreesWithExact) {
  FaultGraph graph = BuildSample();
  auto groups = ComputeMinimalRiskGroups(graph);
  ASSERT_TRUE(groups.ok());
  ImportanceOptions exact;
  ImportanceOptions approx;
  approx.max_exact_terms = 0;  // force Monte Carlo
  approx.monte_carlo_rounds = 400000;
  auto exact_ranked = RankComponentImportance(graph, groups->groups, exact);
  auto approx_ranked = RankComponentImportance(graph, groups->groups, approx);
  ASSERT_TRUE(exact_ranked.ok());
  ASSERT_TRUE(approx_ranked.ok());
  EXPECT_EQ((*exact_ranked)[0].name, (*approx_ranked)[0].name);
  EXPECT_NEAR((*exact_ranked)[0].birnbaum, (*approx_ranked)[0].birnbaum, 0.02);
}

TEST(ImportanceTest, EmptyGroupsYieldEmptyRanking) {
  FaultGraph graph = BuildSample();
  auto ranked = RankComponentImportance(graph, {});
  ASSERT_TRUE(ranked.ok());
  EXPECT_TRUE(ranked->empty());
}

TEST(ImportanceTest, SharedComponentOutranksRedundantOnes) {
  // Shared ToR vs redundant cores: the ToR must rank first.
  std::vector<ComponentSet> sets = {{"S1", {"tor", "core1"}}, {"S2", {"tor", "core2"}}};
  auto graph = BuildFromComponentSets(sets);
  ASSERT_TRUE(graph.ok());
  auto groups = ComputeMinimalRiskGroups(*graph);
  ASSERT_TRUE(groups.ok());
  auto ranked = RankComponentImportance(*graph, groups->groups);
  ASSERT_TRUE(ranked.ok());
  ASSERT_FALSE(ranked->empty());
  EXPECT_EQ((*ranked)[0].name, "tor");
}

// --- What-if simulation ---

TEST(WhatIfTest, PropagatesFailures) {
  FaultGraph graph = BuildSample();
  auto only_a1 = SimulateFailures(graph, {"A1"});
  ASSERT_TRUE(only_a1.ok());
  EXPECT_FALSE(only_a1->top_event_failed);
  // A1 fails E1 but not E2 or the deployment.
  EXPECT_NE(std::find(only_a1->failed_events.begin(), only_a1->failed_events.end(), "E1 fails"),
            only_a1->failed_events.end());
  EXPECT_EQ(std::find(only_a1->failed_events.begin(), only_a1->failed_events.end(),
                      "deployment fails"),
            only_a1->failed_events.end());

  auto shared = SimulateFailures(graph, {"A2"});
  ASSERT_TRUE(shared.ok());
  EXPECT_TRUE(shared->top_event_failed);
  EXPECT_EQ(shared->failed_events.size(), 4u);  // A2, E1, E2, deployment
}

TEST(WhatIfTest, NothingFailedNothingHappens) {
  FaultGraph graph = BuildSample();
  auto result = SimulateFailures(graph, {});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->top_event_failed);
  EXPECT_TRUE(result->failed_events.empty());
}

TEST(WhatIfTest, RejectsUnknownAndNonBasic) {
  FaultGraph graph = BuildSample();
  EXPECT_FALSE(SimulateFailures(graph, {"no-such-component"}).ok());
  EXPECT_FALSE(SimulateFailures(graph, {"E1 fails"}).ok());
  FaultGraph unvalidated;
  EXPECT_FALSE(SimulateFailures(unvalidated, {}).ok());
}

TEST(WhatIfTest, ConsistentWithMinimalRiskGroups) {
  // Failing exactly a minimal RG fails the top; failing any proper subset
  // does not (cross-check on a random component-set graph).
  Rng rng(55);
  std::vector<ComponentSet> sets = {{"E1", {"a", "b", "s"}}, {"E2", {"c", "s"}}};
  auto graph = BuildFromComponentSets(sets);
  ASSERT_TRUE(graph.ok());
  auto groups = ComputeMinimalRiskGroups(*graph);
  ASSERT_TRUE(groups.ok());
  for (const RiskGroup& group : groups->groups) {
    std::vector<std::string> names;
    for (NodeId id : group) {
      names.push_back(graph->node(id).name);
    }
    auto all = SimulateFailures(*graph, names);
    ASSERT_TRUE(all.ok());
    EXPECT_TRUE(all->top_event_failed);
    if (names.size() > 1) {
      auto partial = SimulateFailures(
          *graph, std::vector<std::string>(names.begin() + 1, names.end()));
      ASSERT_TRUE(partial.ok());
      EXPECT_FALSE(partial->top_event_failed);
    }
  }
}

}  // namespace
}  // namespace indaas
