// Tests for the src/sketch engine: MinHash registers, SIMD intersection
// kernels, LSH banding and the all-pairs pipeline (DESIGN.md §8).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "src/sketch/allpairs.h"
#include "src/sketch/intersect.h"
#include "src/sketch/lsh.h"
#include "src/sketch/sketch.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace indaas {
namespace sketch {
namespace {

std::vector<SimdLevel> AvailableLevels() {
  std::vector<SimdLevel> levels;
  for (SimdLevel level : {SimdLevel::kScalar, SimdLevel::kSse2, SimdLevel::kAvx2}) {
    if (SimdLevelAvailable(level)) {
      levels.push_back(level);
    }
  }
  return levels;
}

// Two sets sharing a fraction s = 2J/(1+J) of their elements have Jaccard J.
void MakePairWithJaccard(double jaccard, size_t n, uint64_t salt,
                         std::vector<std::string>* a, std::vector<std::string>* b,
                         double* true_jaccard) {
  const size_t shared = static_cast<size_t>(2.0 * jaccard / (1.0 + jaccard) * n);
  a->clear();
  b->clear();
  for (size_t e = 0; e < n; ++e) {
    if (e < shared) {
      std::string elem = StrFormat("shared-%llu-%zu", (unsigned long long)salt, e);
      a->push_back(elem);
      b->push_back(std::move(elem));
    } else {
      a->push_back(StrFormat("a-%llu-%zu", (unsigned long long)salt, e));
      b->push_back(StrFormat("b-%llu-%zu", (unsigned long long)salt, e));
    }
  }
  *true_jaccard = static_cast<double>(shared) / static_cast<double>(2 * n - shared);
}

// Strictly-increasing random u32 array of size n drawn from [0, bound).
std::vector<uint32_t> RandomSortedSet(Rng& rng, size_t n, uint32_t bound) {
  std::set<uint32_t> values;
  while (values.size() < n) {
    values.insert(static_cast<uint32_t>(rng.NextBelow(bound)));
  }
  return std::vector<uint32_t>(values.begin(), values.end());
}

size_t ReferenceIntersect(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out.size();
}

// --- MinHash sketcher ---

TEST(Sketch, GoldenRegistersAreStableAcrossRunsAndHosts) {
  // Locked-down output of (k=8, seed=42) over {alpha, beta, gamma}. If this
  // test breaks, the wire format changed: ring peers on different builds
  // would compute different registers from identical inputs.
  SketchParams params;
  params.k = 8;
  params.seed = 42;
  std::vector<uint32_t> out(params.k);
  std::vector<uint32_t> argmin;
  BuildSketch(params, {"alpha", "beta", "gamma"}, out.data(), &argmin);
  const std::vector<uint32_t> golden = {0x02F36472u, 0x18C0B51Eu, 0x4E50FA3Fu, 0x09CBB2FFu,
                                        0x45F86A7Eu, 0x3CEDFB0Du, 0x65A7140Du, 0x30A7AFBDu};
  EXPECT_EQ(out, golden);
  const std::vector<uint32_t> golden_argmin = {0, 2, 2, 1, 2, 2, 1, 2};
  EXPECT_EQ(argmin, golden_argmin);
  const std::vector<uint32_t> golden_fps = {0x88888531u, 0xA4AF7F23u, 0xDDBA0479u};
  EXPECT_EQ(BuildFingerprints(42, {"alpha", "beta", "gamma"}), golden_fps);
}

TEST(Sketch, OrderAndDuplicatesDoNotChangeRegisters) {
  SketchParams params;
  params.k = 64;
  params.seed = 7;
  std::vector<uint32_t> a(params.k), b(params.k);
  BuildSketch(params, {"x", "y", "z", "w"}, a.data());
  BuildSketch(params, {"w", "z", "z", "y", "x", "x"}, b.data());
  EXPECT_EQ(a, b);
}

TEST(Sketch, EmptySetSketchesToAllMaxRegisters) {
  SketchParams params;
  params.k = 16;
  std::vector<uint32_t> out(params.k, 0);
  BuildSketch(params, {}, out.data());
  for (uint32_t reg : out) {
    EXPECT_EQ(reg, UINT32_MAX);
  }
}

TEST(Sketch, SeedChangesRegisters) {
  SketchParams params;
  params.k = 64;
  params.seed = 1;
  std::vector<uint32_t> a(params.k), b(params.k);
  BuildSketch(params, {"x", "y", "z"}, a.data());
  params.seed = 2;
  BuildSketch(params, {"x", "y", "z"}, b.data());
  EXPECT_NE(a, b);
}

TEST(Sketch, ArgminIndicesPointAtMinimisingElements) {
  SketchParams params;
  params.k = 32;
  params.seed = 11;
  std::vector<std::string> elements;
  for (size_t e = 0; e < 50; ++e) {
    elements.push_back("elem-" + std::to_string(e));
  }
  std::vector<uint32_t> out(params.k);
  std::vector<uint32_t> argmin;
  BuildSketch(params, elements, out.data(), &argmin);
  ASSERT_EQ(argmin.size(), params.k);
  for (uint32_t i = 0; i < params.k; ++i) {
    ASSERT_LT(argmin[i], elements.size());
    // The claimed minimiser reproduces the register through the public hash
    // chain: register = top 32 bits of min_j RegisterHash(fp_j).
    const uint64_t fp = ElementFingerprint(params.seed, elements[argmin[i]]);
    EXPECT_EQ(out[i], static_cast<uint32_t>(RegisterHash(params.seed, i, fp) >> 32));
  }
}

TEST(Sketch, AccuracyBoundMaeWithinThreeStandardErrors) {
  // MAE of the register-agreement estimator over pairs with known Jaccard
  // must stay within 3/sqrt(k) — the bound DESIGN.md documents.
  SketchParams params;
  params.k = 256;
  params.seed = 5;
  const std::vector<double> targets = {0.1, 0.3, 0.5, 0.7, 0.9};
  double mae = 0;
  for (size_t t = 0; t < targets.size(); ++t) {
    std::vector<std::string> a, b;
    double true_j = 0;
    MakePairWithJaccard(targets[t], 1000, t, &a, &b, &true_j);
    std::vector<uint32_t> sa(params.k), sb(params.k);
    BuildSketch(params, a, sa.data());
    BuildSketch(params, b, sb.data());
    const double estimate =
        static_cast<double>(AgreeCount(sa.data(), sb.data(), params.k, SimdLevel::kScalar)) /
        params.k;
    mae += std::abs(estimate - true_j);
  }
  mae /= static_cast<double>(targets.size());
  EXPECT_LE(mae, 3.0 * StandardError(params.k));
}

TEST(Sketch, ArenaSlotsAreContiguousAndIndependent) {
  SketchParams params;
  params.k = 16;
  SketchArena arena = BuildSketches(params, {{"a", "b"}, {"c"}, {}});
  EXPECT_EQ(arena.k(), params.k);
  EXPECT_EQ(arena.count(), 3u);
  EXPECT_EQ(arena.bytes(), 3 * SketchBytes(params.k));
  EXPECT_EQ(arena.At(1) - arena.At(0), static_cast<ptrdiff_t>(params.k));
  std::vector<uint32_t> direct(params.k);
  BuildSketch(params, {"c"}, direct.data());
  EXPECT_TRUE(std::equal(direct.begin(), direct.end(), arena.At(1)));
  for (uint32_t i = 0; i < params.k; ++i) {
    EXPECT_EQ(arena.At(2)[i], UINT32_MAX);
  }
}

// --- SIMD kernels ---

TEST(Intersect, AllLevelsAgreeOnRandomInputs) {
  Rng rng(1234);
  const std::vector<SimdLevel> levels = AvailableLevels();
  ASSERT_FALSE(levels.empty());
  for (int round = 0; round < 200; ++round) {
    const size_t na = rng.NextBelow(600);
    const size_t nb = rng.NextBelow(600);
    // A narrow value range forces heavy overlap; a wide one near-disjoint.
    const uint32_t bound = round % 2 == 0 ? 2000 : 1u << 30;
    const std::vector<uint32_t> a = RandomSortedSet(rng, na, bound);
    const std::vector<uint32_t> b = RandomSortedSet(rng, nb, bound);
    const size_t expected = ReferenceIntersect(a, b);
    for (SimdLevel level : levels) {
      EXPECT_EQ(IntersectCount(a.data(), a.size(), b.data(), b.size(), level), expected)
          << "level=" << SimdLevelName(level) << " round=" << round;
    }
  }
}

TEST(Intersect, AllLevelsAgreeOnLopsidedGallopingInputs) {
  Rng rng(99);
  const std::vector<SimdLevel> levels = AvailableLevels();
  for (int round = 0; round < 50; ++round) {
    const std::vector<uint32_t> small = RandomSortedSet(rng, 1 + rng.NextBelow(8), 1u << 20);
    const std::vector<uint32_t> big = RandomSortedSet(rng, 4000, 1u << 20);
    const size_t expected = ReferenceIntersect(small, big);
    for (SimdLevel level : levels) {
      EXPECT_EQ(IntersectCount(small.data(), small.size(), big.data(), big.size(), level),
                expected)
          << "level=" << SimdLevelName(level) << " round=" << round;
      EXPECT_EQ(IntersectCount(big.data(), big.size(), small.data(), small.size(), level),
                expected)
          << "level=" << SimdLevelName(level) << " round=" << round;
    }
  }
}

TEST(Intersect, AgreeCountIdenticalAcrossLevels) {
  Rng rng(42);
  for (size_t k : {1u, 7u, 8u, 31u, 32u, 256u, 257u}) {
    std::vector<uint32_t> a(k), b(k);
    for (size_t i = 0; i < k; ++i) {
      a[i] = static_cast<uint32_t>(rng.Next());
      b[i] = rng.NextBelow(4) == 0 ? a[i] : static_cast<uint32_t>(rng.Next());
    }
    size_t expected = 0;
    for (size_t i = 0; i < k; ++i) {
      expected += a[i] == b[i] ? 1 : 0;
    }
    for (SimdLevel level : AvailableLevels()) {
      EXPECT_EQ(AgreeCount(a.data(), b.data(), k, level), expected)
          << "level=" << SimdLevelName(level) << " k=" << k;
    }
  }
}

TEST(Intersect, ThresholdContractPrunedImpliesBelowUnprunedImpliesExact) {
  Rng rng(7);
  for (int round = 0; round < 100; ++round) {
    const std::vector<uint32_t> a = RandomSortedSet(rng, 100 + rng.NextBelow(200), 4000);
    const std::vector<uint32_t> b = RandomSortedSet(rng, 100 + rng.NextBelow(200), 4000);
    const size_t exact = ReferenceIntersect(a, b);
    const double exact_j = JaccardFromIntersection(exact, a.size(), b.size());
    for (double threshold : {0.0, 0.05, 0.2, 0.5, 0.9}) {
      for (SimdLevel level : AvailableLevels()) {
        const ThresholdResult result = IntersectCountThreshold(
            a.data(), a.size(), b.data(), b.size(), threshold, level);
        if (result.pruned) {
          EXPECT_LT(exact_j, threshold) << "level=" << SimdLevelName(level);
        } else {
          EXPECT_EQ(result.count, exact) << "level=" << SimdLevelName(level);
        }
      }
    }
  }
}

TEST(Intersect, EmptyInputs) {
  const std::vector<uint32_t> a = {1, 2, 3};
  for (SimdLevel level : AvailableLevels()) {
    EXPECT_EQ(IntersectCount(a.data(), a.size(), nullptr, 0, level), 0u);
    EXPECT_EQ(IntersectCount(nullptr, 0, a.data(), a.size(), level), 0u);
    EXPECT_EQ(AgreeCount(a.data(), a.data(), 0, level), 0u);
    // An empty side can never reach a positive threshold.
    EXPECT_TRUE(
        IntersectCountThreshold(a.data(), a.size(), nullptr, 0, 0.5, level).pruned);
  }
}

TEST(Intersect, EnvironmentPinIsHonoredWhenSupported) {
  // The CI AVX2 job exports INDAAS_SKETCH_SIMD and relies on this check
  // failing hard if the pinned level is not actually dispatched.
  const char* pin = std::getenv("INDAAS_SKETCH_SIMD");
  if (pin == nullptr) {
    GTEST_SKIP() << "INDAAS_SKETCH_SIMD not set";
  }
  const std::string wanted(pin);
  SimdLevel level = SimdLevel::kScalar;
  if (wanted == "sse2") {
    level = SimdLevel::kSse2;
  } else if (wanted == "avx2") {
    level = SimdLevel::kAvx2;
  } else if (wanted != "scalar") {
    FAIL() << "unrecognized INDAAS_SKETCH_SIMD value: " << wanted;
  }
  ASSERT_TRUE(SimdLevelAvailable(level))
      << "pinned level " << wanted << " is not available on this host/build";
  EXPECT_EQ(BestSimdLevel(), level);
}

// --- LSH banding ---

TEST(Lsh, CollisionProbabilityFollowsSCurve) {
  LshParams params;
  params.bands = 64;
  params.rows = 4;
  EXPECT_NEAR(LshCollisionProbability(0.0, params), 0.0, 1e-12);
  EXPECT_NEAR(LshCollisionProbability(1.0, params), 1.0, 1e-12);
  EXPECT_LT(LshCollisionProbability(0.1, params), 0.01);
  EXPECT_GT(LshCollisionProbability(0.55, params), 0.99);
  EXPECT_LT(LshCollisionProbability(0.3, params), LshCollisionProbability(0.4, params));
}

TEST(Lsh, EffectiveBandsRespectsRegisterBudget) {
  LshParams params;
  params.bands = 64;
  params.rows = 4;
  EXPECT_EQ(EffectiveBands(256, params), 64u);
  EXPECT_EQ(EffectiveBands(64, params), 16u);
  params.rows = 0;
  EXPECT_EQ(EffectiveBands(256, params), 0u);
}

TEST(Lsh, CandidatesIncludeSimilarPairsAndSkipDissimilarOnes) {
  SketchParams sketch_params;
  sketch_params.k = 256;
  sketch_params.seed = 3;
  std::vector<std::vector<std::string>> sets;
  // 0/1 and 2/3 are near-duplicates (J ~ 0.8); the rest are disjoint.
  for (size_t p = 0; p < 12; ++p) {
    std::vector<std::string> set;
    const size_t partner = p < 4 ? (p / 2) * 2 : p;
    for (size_t e = 0; e < 400; ++e) {
      const bool shared = p < 4 && e < 360;
      set.push_back(shared ? StrFormat("pair%zu-%zu", partner, e)
                           : StrFormat("solo%zu-%zu", p, e));
    }
    sets.push_back(std::move(set));
  }
  SketchArena arena = BuildSketches(sketch_params, sets);
  LshParams lsh;
  lsh.bands = 64;
  lsh.rows = 4;
  LshStats stats;
  const auto candidates = LshCandidatePairs(arena, lsh, &stats);
  EXPECT_EQ(stats.bands_used, 64u);
  EXPECT_EQ(stats.candidate_pairs, candidates.size());
  const bool has01 = std::count(candidates.begin(), candidates.end(), std::pair<uint32_t, uint32_t>{0, 1}) > 0;
  const bool has23 = std::count(candidates.begin(), candidates.end(), std::pair<uint32_t, uint32_t>{2, 3}) > 0;
  EXPECT_TRUE(has01);
  EXPECT_TRUE(has23);
  // Disjoint providers shouldn't flood the candidate list: the planted pairs
  // plus at most a handful of unlucky collisions.
  EXPECT_LE(candidates.size(), 6u);
  EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
}

TEST(Lsh, BucketingIsDeterministic) {
  SketchParams params;
  params.k = 64;
  std::vector<std::vector<std::string>> sets = {{"a", "b"}, {"a", "c"}, {"d"}};
  LshParams lsh;
  lsh.bands = 16;
  lsh.rows = 4;
  const auto first = LshCandidatePairs(BuildSketches(params, sets), lsh);
  const auto second = LshCandidatePairs(BuildSketches(params, sets), lsh);
  EXPECT_EQ(first, second);
}

// --- All-pairs pipeline ---

TEST(AllPairs, FindsPlantedPairsInBothVerifyModes) {
  std::vector<std::vector<std::string>> sets;
  for (size_t p = 0; p < 16; ++p) {
    std::vector<std::string> set;
    const bool planted = p < 4;
    const size_t partner = (p / 2) * 2;
    for (size_t e = 0; e < 500; ++e) {
      const bool shared = planted && e < 400;
      set.push_back(shared ? StrFormat("dup%zu-%zu", partner, e)
                           : StrFormat("own%zu-%zu", p, e));
    }
    sets.push_back(std::move(set));
  }
  for (VerifyMode mode : {VerifyMode::kRegisters, VerifyMode::kFingerprints}) {
    AllPairsOptions options;
    options.sketch.k = 256;
    options.sketch.seed = 17;
    options.verify = mode;
    AllPairsResult result = RunAllPairs(sets, options);
    EXPECT_EQ(result.providers, sets.size());
    EXPECT_EQ(result.pairs_possible, sets.size() * (sets.size() - 1) / 2);
    EXPECT_LT(result.pairs_evaluated, result.pairs_possible / 4);
    ASSERT_GE(result.pairs.size(), 2u);
    // Riskiest-first ordering with the planted near-duplicates on top.
    EXPECT_TRUE(std::is_sorted(result.pairs.begin(), result.pairs.end(),
                               [](const ScoredPair& x, const ScoredPair& y) {
                                 return x.jaccard > y.jaccard;
                               }));
    std::set<std::pair<uint32_t, uint32_t>> top = {{result.pairs[0].a, result.pairs[0].b},
                                                   {result.pairs[1].a, result.pairs[1].b}};
    EXPECT_TRUE(top.count({0, 1}));
    EXPECT_TRUE(top.count({2, 3}));
    // True J = 400/600; both estimators must land near it.
    EXPECT_NEAR(result.pairs[0].jaccard, 400.0 / 600.0, 0.1);
  }
}

TEST(AllPairs, TopTruncatesAndThresholdPrunes) {
  std::vector<std::vector<std::string>> sets;
  for (size_t p = 0; p < 8; ++p) {
    std::vector<std::string> set;
    for (size_t e = 0; e < 100; ++e) {
      // Every provider shares a sizable core, so all 28 pairs are LSH
      // candidates; uniques keep them below J = 0.9.
      set.push_back(e < 60 ? "core-" + std::to_string(e) : StrFormat("own%zu-%zu", p, e));
    }
    sets.push_back(std::move(set));
  }
  AllPairsOptions options;
  options.sketch.k = 128;
  options.verify = VerifyMode::kFingerprints;
  options.lsh.bands = 32;
  options.lsh.rows = 4;
  AllPairsResult all = RunAllPairs(sets, options);
  EXPECT_EQ(all.pairs_evaluated, 28u);
  options.top = 3;
  AllPairsResult top = RunAllPairs(sets, options);
  EXPECT_EQ(top.pairs.size(), 3u);
  options.top = 0;
  options.min_jaccard = 0.9;
  AllPairsResult pruned = RunAllPairs(sets, options);
  EXPECT_EQ(pruned.pairs_pruned, 28u);
  EXPECT_TRUE(pruned.pairs.empty());
}

}  // namespace
}  // namespace sketch
}  // namespace indaas
