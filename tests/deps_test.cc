// Tests for src/deps/: Table 1 record parsing/serialization, DepDB queries,
// normalization, and the failure probability model.

#include <gtest/gtest.h>

#include "src/deps/depdb.h"
#include "src/deps/normalize.h"
#include "src/deps/prob_model.h"
#include "src/deps/record.h"

namespace indaas {
namespace {

// --- Records: the exact lines from the paper's Figure 3 ---

TEST(RecordTest, ParseNetworkRecord) {
  auto record = ParseRecord(R"(<src="S1" dst="Internet" route="ToR1,Core1"/>)");
  ASSERT_TRUE(record.ok());
  const auto* net = std::get_if<NetworkDependency>(&record.value());
  ASSERT_NE(net, nullptr);
  EXPECT_EQ(net->src, "S1");
  EXPECT_EQ(net->dst, "Internet");
  EXPECT_EQ(net->route, (std::vector<std::string>{"ToR1", "Core1"}));
}

TEST(RecordTest, ParseHardwareRecord) {
  auto record = ParseRecord(R"(<hw="S1" type="CPU" dep="S1-Intel(R)X5550@2.6GHz"/>)");
  ASSERT_TRUE(record.ok());
  const auto* hw = std::get_if<HardwareDependency>(&record.value());
  ASSERT_NE(hw, nullptr);
  EXPECT_EQ(hw->hw, "S1");
  EXPECT_EQ(hw->type, "CPU");
  EXPECT_EQ(hw->dep, "S1-Intel(R)X5550@2.6GHz");
}

TEST(RecordTest, ParseSoftwareRecord) {
  // Figure 3 uses a bare '>' terminator for software lines; accept both.
  auto record = ParseRecord(R"(<pgm="Riak1" hw="S1" dep="libc6,libsvn1">)");
  ASSERT_TRUE(record.ok());
  const auto* sw = std::get_if<SoftwareDependency>(&record.value());
  ASSERT_NE(sw, nullptr);
  EXPECT_EQ(sw->pgm, "Riak1");
  EXPECT_EQ(sw->hw, "S1");
  EXPECT_EQ(sw->deps, (std::vector<std::string>{"libc6", "libsvn1"}));
}

TEST(RecordTest, SerializeParseRoundTrip) {
  std::vector<DependencyRecord> records = {
      NetworkDependency{"S2", "Internet", {"ToR1", "Core2"}},
      HardwareDependency{"S2", "Disk", "S2-SED900"},
      SoftwareDependency{"QueryEngine2", "S2", {"libc6", "libgccl"}},
  };
  for (const DependencyRecord& record : records) {
    auto parsed = ParseRecord(SerializeRecord(record));
    ASSERT_TRUE(parsed.ok()) << SerializeRecord(record);
    EXPECT_EQ(*parsed, record);
  }
}

TEST(RecordTest, ParseRejectsMalformed) {
  EXPECT_FALSE(ParseRecord("").ok());
  EXPECT_FALSE(ParseRecord("src=S1").ok());
  EXPECT_FALSE(ParseRecord("<src=\"S1\"").ok());
  EXPECT_FALSE(ParseRecord("<bogus=\"x\"/>").ok());
  EXPECT_FALSE(ParseRecord("<src=\"S1\" route=\"a\"/>").ok());  // missing dst
  EXPECT_FALSE(ParseRecord("<hw=\"S1\" type=\"CPU\"/>").ok());  // missing dep
  EXPECT_FALSE(ParseRecord("<pgm=\"X\" dep=\"a\"/>").ok());     // missing hw
  EXPECT_FALSE(ParseRecord("<src=\"S1\" dst=unquoted/>").ok());
}

TEST(RecordTest, ParseRecordsSkipsCommentsAndSeparators) {
  const char* kDoc = R"(
# Network dependencies of S1 and S2:
<src="S1" dst="Internet" route="ToR1,Core1"/>
------------------------------------
<hw="S1" type="CPU" dep="S1-Intel(R)X5550@2.6GHz"/>

<pgm="Riak1" hw="S1" dep="libc6,libsvn1">
)";
  auto records = ParseRecords(kDoc);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 3u);
}

// --- DepDB ---

TEST(DepDbTest, AddAndQuery) {
  DepDb db;
  db.Add(NetworkDependency{"S1", "Internet", {"ToR1", "Core1"}});
  db.Add(NetworkDependency{"S1", "Internet", {"ToR1", "Core2"}});
  db.Add(NetworkDependency{"S2", "Internet", {"ToR1", "Core1"}});
  db.Add(HardwareDependency{"S1", "CPU", "S1-X5550"});
  db.Add(SoftwareDependency{"Riak1", "S1", {"libc6"}});

  EXPECT_EQ(db.RoutesFrom("S1").size(), 2u);
  EXPECT_EQ(db.RoutesBetween("S1", "Internet").size(), 2u);
  EXPECT_EQ(db.RoutesBetween("S1", "Mars").size(), 0u);
  EXPECT_EQ(db.HardwareOf("S1").size(), 1u);
  EXPECT_EQ(db.SoftwareOn("S1").size(), 1u);
  EXPECT_EQ(db.SoftwareOn("S2").size(), 0u);
  auto riak = db.SoftwareByName("Riak1");
  ASSERT_TRUE(riak.ok());
  EXPECT_EQ(riak->hw, "S1");
  EXPECT_FALSE(db.SoftwareByName("nope").ok());
}

TEST(DepDbTest, DeduplicatesExactRecords) {
  DepDb db;
  db.Add(NetworkDependency{"S1", "Internet", {"ToR1"}});
  db.Add(NetworkDependency{"S1", "Internet", {"ToR1"}});
  EXPECT_EQ(db.NetworkCount(), 1u);
}

TEST(DepDbTest, KnownHosts) {
  DepDb db;
  db.Add(NetworkDependency{"S1", "Internet", {"ToR1"}});
  db.Add(HardwareDependency{"S2", "CPU", "x"});
  db.Add(SoftwareDependency{"pgm", "S3", {"libc6"}});
  EXPECT_EQ(db.KnownHosts(), (std::vector<std::string>{"S1", "S2", "S3"}));
}

TEST(DepDbTest, ImportExportRoundTrip) {
  DepDb db;
  db.Add(NetworkDependency{"S1", "Internet", {"ToR1", "Core1"}});
  db.Add(HardwareDependency{"S1", "Disk", "S1-SED900"});
  db.Add(SoftwareDependency{"Riak1", "S1", {"libc6", "libsvn1"}});
  std::string text = db.ExportText();

  DepDb db2;
  ASSERT_TRUE(db2.ImportText(text).ok());
  EXPECT_EQ(db2.TotalCount(), 3u);
  EXPECT_EQ(db2.ExportText(), text);
}

TEST(DepDbTest, ClearEmpties) {
  DepDb db;
  db.Add(HardwareDependency{"S1", "CPU", "x"});
  db.Clear();
  EXPECT_EQ(db.TotalCount(), 0u);
  EXPECT_TRUE(db.KnownHosts().empty());
}

// --- Normalization ---

TEST(NormalizeTest, NetworkComponent) {
  EXPECT_EQ(NormalizeNetworkComponent("ToR1"), "net:tor1");
  EXPECT_EQ(NormalizeNetworkComponent(" 10.0.0.1 "), "net:10.0.0.1");
}

TEST(NormalizeTest, Package) {
  EXPECT_EQ(NormalizePackage("OpenSSL", "1.0.1e"), "pkg:openssl=1.0.1e");
  EXPECT_EQ(NormalizePackage("libc6"), "pkg:libc6");
}

TEST(NormalizeTest, Hardware) {
  EXPECT_EQ(NormalizeHardwareComponent("SED900"), "hw:sed900");
}

TEST(NormalizeTest, ComponentsOfRecords) {
  auto net = NormalizedComponentsOf(NetworkDependency{"S1", "I", {"ToR1", "Core1"}});
  EXPECT_EQ(net, (std::vector<std::string>{"net:tor1", "net:core1"}));
  auto hw = NormalizedComponentsOf(HardwareDependency{"S1", "CPU", "X5550"});
  EXPECT_EQ(hw, (std::vector<std::string>{"hw:x5550"}));
  auto sw = NormalizedComponentsOf(SoftwareDependency{"p", "S1", {"libc6=2.13", "zlib1g"}});
  EXPECT_EQ(sw, (std::vector<std::string>{"pkg:libc6=2.13", "pkg:zlib1g"}));
}

TEST(NormalizeTest, SameComponentAcrossProvidersMatches) {
  // The PIA property from §4.2.3: identical third-party components get
  // identical identifiers regardless of which provider reports them.
  auto a = NormalizedComponentsOf(SoftwareDependency{"svcA", "cloud1-host", {"OpenSSL=1.0.1e"}});
  auto b = NormalizedComponentsOf(SoftwareDependency{"svcB", "cloud2-host", {"openssl=1.0.1e"}});
  EXPECT_EQ(a, b);
}

// --- Probability model ---

TEST(ProbModelTest, DefaultForUnknown) {
  FailureProbabilityModel model(0.07);
  EXPECT_DOUBLE_EQ(model.Lookup("anything"), 0.07);
}

TEST(ProbModelTest, LongestPrefixWins) {
  FailureProbabilityModel model(0.01);
  ASSERT_TRUE(model.SetClassProb("net:", 0.08).ok());
  ASSERT_TRUE(model.SetClassProb("net:tor", 0.05).ok());
  EXPECT_DOUBLE_EQ(model.Lookup("net:tor17"), 0.05);
  EXPECT_DOUBLE_EQ(model.Lookup("net:core1"), 0.08);
  EXPECT_DOUBLE_EQ(model.Lookup("pkg:zlib"), 0.01);
}

TEST(ProbModelTest, ExactOverrideBeatsPrefix) {
  FailureProbabilityModel model;
  ASSERT_TRUE(model.SetClassProb("pkg:", 0.03).ok());
  ASSERT_TRUE(model.SetComponentProb("pkg:openssl=1.0.1e", 0.9).ok());
  EXPECT_DOUBLE_EQ(model.Lookup("pkg:openssl=1.0.1e"), 0.9);
  EXPECT_DOUBLE_EQ(model.Lookup("pkg:zlib1g=1.0"), 0.03);
}

TEST(ProbModelTest, RejectsOutOfRange) {
  FailureProbabilityModel model;
  EXPECT_FALSE(model.SetClassProb("x", -0.1).ok());
  EXPECT_FALSE(model.SetComponentProb("x", 1.1).ok());
}

TEST(ProbModelTest, GillDefaultsSensible) {
  FailureProbabilityModel model = FailureProbabilityModel::GillEtAlDefaults();
  EXPECT_DOUBLE_EQ(model.Lookup("net:tor5"), 0.05);
  EXPECT_DOUBLE_EQ(model.Lookup("net:agg12"), 0.10);
  EXPECT_DOUBLE_EQ(model.Lookup("net:core3"), 0.12);
  EXPECT_GT(model.Lookup("hw:disk-sed900"), model.Lookup("hw:ram-ddr3"));
}

}  // namespace
}  // namespace indaas
