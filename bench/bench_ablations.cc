// Ablation benches for the design choices called out in DESIGN.md §4:
//   1. inline absorption in the minimal-RG cut-set products (perf knob);
//   2. MinHash sample size m vs Jaccard estimation error (O(1/sqrt(m)));
//   3. failure-sampling coin bias and greedy-shrink mode (quality knobs).
//
//   bench_ablations [--servers=3] [--paths=8] [--rounds=20000]

#include <cmath>
#include <set>
#include <cstdio>

#include "src/acquire/apt_sim.h"
#include "src/deps/depdb.h"
#include "src/pia/jaccard.h"
#include "src/pia/psop.h"
#include "src/sia/builder.h"
#include "src/sia/risk_groups.h"
#include "src/sia/sampling.h"
#include "src/topology/fat_tree.h"
#include "src/util/flags.h"
#include "src/util/stats.h"
#include "src/util/strings.h"
#include "src/util/timer.h"

using namespace indaas;

namespace {

Result<FaultGraph> BuildWorkloadGraph(int64_t servers, int64_t paths) {
  INDAAS_ASSIGN_OR_RETURN(DataCenterTopology topo, BuildFatTree(16));
  INDAAS_ASSIGN_OR_RETURN(DeviceId internet, topo.FindDevice("Internet"));
  DepDb db;
  std::vector<std::string> deployment;
  for (int64_t i = 0; i < servers; ++i) {
    std::string name = StrFormat("pod%lld-srv0-0", (long long)i);
    INDAAS_ASSIGN_OR_RETURN(DeviceId device, topo.FindDevice(name));
    for (const NetworkDependency& dep :
         topo.NetworkDependencies(device, internet, static_cast<size_t>(paths))) {
      db.Add(dep);
    }
    deployment.push_back(name);
  }
  return BuildDeploymentFaultGraph(db, deployment);
}

}  // namespace

int main(int argc, char** argv) {
  int64_t servers = 3;
  int64_t paths = 8;
  int64_t rounds = 20000;
  FlagSet flags;
  flags.AddInt("servers", &servers, "deployment width for the RG workload");
  flags.AddInt("paths", &paths, "ECMP paths per server");
  flags.AddInt("rounds", &rounds, "sampling rounds for ablation 3");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  auto graph = BuildWorkloadGraph(servers, paths);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  // --- Ablation 1: inline absorption ---
  // Without inline absorption the cartesian products grow as (3^paths)^servers
  // before any pruning, so this ablation runs on a reduced 2-server workload
  // under an explicit cut-set budget: tripping the budget IS the result.
  std::printf("=== Ablation 1: inline absorption in the minimal-RG algorithm ===\n");
  std::printf("(workload: 2-server deployment in topology A, 6 paths each)\n\n");
  auto small_graph = BuildWorkloadGraph(2, 6);
  if (!small_graph.ok()) {
    std::fprintf(stderr, "%s\n", small_graph.status().ToString().c_str());
    return 1;
  }
  TextTable ab1({"Inline absorption", "Time", "Minimal RGs"});
  for (bool inline_absorption : {true, false}) {
    MinimalRgOptions options;
    options.inline_absorption = inline_absorption;
    options.max_cut_sets_per_node = 20000000;  // ~2 GB worst case
    WallTimer timer;
    auto groups = ComputeMinimalRiskGroups(*small_graph, options);
    if (!groups.ok()) {
      ab1.AddRow({inline_absorption ? "on" : "off", HumanSeconds(timer.ElapsedSeconds()),
                  "budget exceeded: " + std::string(StatusCodeName(groups.status().code()))});
      continue;
    }
    ab1.AddRow({inline_absorption ? "on" : "off", HumanSeconds(timer.ElapsedSeconds()),
                std::to_string(groups->groups.size())});
  }
  ab1.Print();
  std::printf("Identical results when both finish; absorption prunes dominated cut sets\n"
              "before the cartesian products amplify them (without it, this workload's\n"
              "intermediate lists grow ~3^paths per server and soon exhaust any budget).\n\n");

  // --- Ablation 2: MinHash m ---
  std::printf("=== Ablation 2: MinHash sample size vs estimation error ===\n\n");
  PackageUniverse universe = PackageUniverse::KeyValueStoreUniverse();
  const char* programs[] = {"riak", "mongodb-server", "redis-server", "couchdb"};
  std::vector<std::vector<std::string>> closures;
  for (const char* program : programs) {
    auto closure = universe.Closure(program);
    if (!closure.ok()) {
      return 1;
    }
    closures.push_back(std::move(closure).value());
  }
  TextTable ab2({"m", "Mean |error|", "Max |error|", "1/sqrt(m)", "P-SOP encryptions/provider"});
  for (size_t m : {16u, 64u, 256u, 1024u}) {
    RunningStats error;
    size_t encrypt_ops = 0;
    for (size_t a = 0; a < closures.size(); ++a) {
      for (size_t b = a + 1; b < closures.size(); ++b) {
        auto exact = JaccardSimilarity({closures[a], closures[b]});
        PsopOptions options;
        options.group_bits = 768;
        options.seed = m + a * 7 + b;
        auto approx = RunPsopWithMinHash({closures[a], closures[b]}, m, options);
        if (!exact.ok() || !approx.ok()) {
          return 1;
        }
        error.Add(std::fabs(approx->jaccard - *exact));
        encrypt_ops = approx->party_stats[0].encrypt_ops;
      }
    }
    ab2.AddRow({std::to_string(m), StrFormat("%.4f", error.mean()),
                StrFormat("%.4f", error.max()),
                StrFormat("%.4f", 1.0 / std::sqrt(static_cast<double>(m))),
                std::to_string(encrypt_ops)});
  }
  ab2.Print();
  std::printf("Broder's bound holds: error shrinks as 1/sqrt(m) while protocol cost\n"
              "grows linearly in m.\n\n");

  // --- Ablation 3: sampling bias and shrink mode ---
  std::printf("=== Ablation 3: failure-sampling coin bias x shrink mode ===\n\n");
  auto truth = ComputeMinimalRiskGroups(*graph);
  if (!truth.ok()) {
    return 1;
  }
  std::set<RiskGroup> truth_set(truth->groups.begin(), truth->groups.end());
  TextTable ab3({"Shrink", "Bias", "Failing rounds", "Distinct RGs", "True minimal", "% detected"});
  for (ShrinkMode shrink : {ShrinkMode::kGreedy, ShrinkMode::kNone}) {
    for (double bias : {0.05, 0.2, 0.5}) {
      SamplingOptions options;
      options.rounds = static_cast<size_t>(rounds);
      options.failure_bias = bias;
      options.shrink = shrink;
      options.seed = 9;
      auto sampled = SampleRiskGroups(*graph, options);
      if (!sampled.ok()) {
        return 1;
      }
      size_t minimal_hits = 0;
      for (const RiskGroup& group : sampled->groups) {
        if (truth_set.count(group) != 0) {
          ++minimal_hits;
        }
      }
      ab3.AddRow({shrink == ShrinkMode::kGreedy ? "greedy" : "none (paper)",
                  StrFormat("%.2f", bias), std::to_string(sampled->failing_rounds),
                  std::to_string(sampled->groups.size()), std::to_string(minimal_hits),
                  StrFormat("%.1f%%", 100.0 * static_cast<double>(minimal_hits) /
                                          static_cast<double>(truth->groups.size()))});
    }
  }
  ab3.Print();
  std::printf("The paper's raw algorithm (shrink=none) needs a low bias to emit sets that\n"
              "happen to be minimal; greedy shrink makes every failing round productive.\n");
  return 0;
}
