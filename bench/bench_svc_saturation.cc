// Saturation study for the audit service: how many concurrent auditing
// clients each serving mode sustains, and what pipelining buys on one
// connection. Three phases:
//
//   1. Pipelining gain — sequential AuditClient pings vs a MuxAuditClient
//      keeping a window of pipelined pings in flight on one connection.
//   2. Sustained concurrency (the headline) — closed-loop clients auditing
//      at a low per-connection rate (think time between audits, like real
//      periodic auditors). Thread-per-request holds a pool worker hostage
//      per connection, so it saturates at worker_threads connections no
//      matter how idle they are; the reactor multiplexes them all. A mode
//      "sustains" a connection when that connection keeps completing audits
//      for the whole run.
//   3. Open-loop Poisson arrivals against the reactor — offered load swept
//      across rates, recording completion p50/p99, achieved throughput and
//      shed (kUnavailable) counts as the offered load passes capacity.
//
//   bench_svc_saturation [--workers=16] [--duration-s=1.2] [--think-ms=200]
//     [--reactor-conns=160] [--openloop-rates=1000,4000,12000] [--json-out=...]
//     [--profile-hz=0 --profile-dump=prof.txt]
//
// --profile-hz + --profile-dump run the whole study inside a sampling
// session and write the raw profile dump at the end; feed it through
// tools/symbolize_profile.py to get the collapsed flamegraph of the
// saturated server (pool workers and reactor shards register with the
// sampler on their own; the closed-loop client threads stay unregistered
// so the capture is the server's view, not 160 copies of the driver).

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "src/deps/depdb.h"
#include "src/obs/export.h"
#include "src/obs/profiler.h"
#include "src/svc/client.h"
#include "src/svc/mux_client.h"
#include "src/svc/server.h"
#include "src/util/file.h"
#include "src/util/flags.h"
#include "src/util/stats.h"
#include "src/util/strings.h"
#include "src/util/timer.h"

namespace indaas {
namespace {

// Same small-but-structured DepDB the svc tests and bench_svc_rpc audit.
std::string BenchDepDbText() {
  DepDb db;
  db.Add(NetworkDependency{"S1", "Internet", {"ToR1", "Core1"}});
  db.Add(NetworkDependency{"S2", "Internet", {"ToR1", "Core1"}});
  db.Add(NetworkDependency{"S3", "Internet", {"ToR2", "Core1"}});
  db.Add(HardwareDependency{"S1", "Disk", "SED900"});
  db.Add(HardwareDependency{"S2", "Disk", "SED900"});
  db.Add(HardwareDependency{"S3", "Disk", "WD200"});
  db.Add(SoftwareDependency{"riak", "S1", {"libc6=2.13"}});
  db.Add(SoftwareDependency{"riak", "S2", {"libc6=2.13"}});
  db.Add(SoftwareDependency{"riak", "S3", {"libc6=2.14"}});
  return db.ExportText();
}

AuditSpecification BenchSpec() {
  AuditSpecification spec;
  spec.candidate_deployments = {{"S1", "S2"}, {"S1", "S3"}};
  return spec;
}

struct SustainedResult {
  std::string mode;
  size_t conns = 0;
  size_t progressed = 0;  // connections that completed at least one audit
  size_t sustained = 0;   // connections still completing in the final third
  uint64_t completed = 0;
  uint64_t errors = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

// Closed-loop phase: `conns` client threads each audit, then idle for
// `think_ms` — a fleet of periodic auditors, mostly waiting. Returns what
// each mode could actually sustain.
SustainedResult RunSustained(const std::string& mode, svc::ServerMode server_mode,
                             size_t workers, size_t conns, double duration_s,
                             int think_ms) {
  svc::AuditServerOptions options;
  options.mode = server_mode;
  options.worker_threads = workers;
  options.reactor_shards = 2;
  // Starved connections must fail fast, not hang past the bench window.
  options.io_timeout_ms = 500;
  options.listen_backlog = static_cast<int>(conns + 16);
  svc::AuditServer server(options);
  SustainedResult result;
  result.mode = mode;
  result.conns = conns;
  if (Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", started.ToString().c_str());
    return result;
  }
  {
    auto seed = svc::AuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()});
    if (!seed.ok() || !seed->ImportDepDb(BenchDepDbText()).ok()) {
      std::fprintf(stderr, "depdb seed failed\n");
      server.Stop();
      return result;
    }
  }

  const AuditSpecification spec = BenchSpec();
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::duration<double>(duration_s);
  const auto final_third = start + std::chrono::duration<double>(duration_s * 2.0 / 3.0);

  std::mutex mu;
  std::vector<double> latencies_ms;
  std::vector<uint64_t> per_conn_completed(conns, 0);
  std::vector<bool> completed_late(conns, false);
  std::vector<uint64_t> per_conn_errors(conns, 0);

  std::vector<std::thread> threads;
  threads.reserve(conns);
  for (size_t c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      svc::AuditClientOptions client_options;
      client_options.io_timeout_ms = 500;
      client_options.retry.max_attempts = 1;
      auto client = svc::AuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()},
                                              client_options);
      if (!client.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        per_conn_errors[c]++;
        return;
      }
      // Periodic auditors are phase-shifted in practice; without a stagger
      // all `conns` audits land in lockstep and measure queueing, not
      // steady-state latency.
      std::mt19937 stagger_rng(static_cast<uint32_t>(c) * 2654435761u + 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::uniform_int_distribution<int>(0, think_ms > 0 ? think_ms - 1 : 0)(
              stagger_rng)));
      while (std::chrono::steady_clock::now() < deadline) {
        WallTimer timer;
        auto report = client->AuditStructural(spec);
        const double elapsed_ms = timer.ElapsedSeconds() * 1000.0;
        const bool late = std::chrono::steady_clock::now() >= final_third;
        {
          std::lock_guard<std::mutex> lock(mu);
          if (report.ok()) {
            per_conn_completed[c]++;
            completed_late[c] = completed_late[c] || late;
            latencies_ms.push_back(elapsed_ms);
          } else {
            per_conn_errors[c]++;
          }
        }
        if (!report.ok()) {
          // Starved or shed: the serial client's stream may be poisoned
          // (e.g. a late reply to a timed-out request); stop this conn.
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(think_ms));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  server.Stop();

  for (size_t c = 0; c < conns; ++c) {
    if (per_conn_completed[c] > 0) {
      result.progressed++;
    }
    if (completed_late[c]) {
      result.sustained++;
    }
    result.completed += per_conn_completed[c];
    result.errors += per_conn_errors[c];
  }
  result.p50_ms = Percentile(latencies_ms, 50);
  result.p99_ms = Percentile(latencies_ms, 99);
  return result;
}

struct OpenLoopResult {
  double rate = 0;  // offered arrivals per second
  uint64_t offered = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  double achieved_rps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

// Open-loop phase: Poisson arrivals at `rate`/s fired through a mux pool at
// the reactor. If the driver falls behind (or the window fills), requests
// queue at the client — latency, sheds and achieved throughput tell the
// saturation story.
Result<OpenLoopResult> RunOpenLoop(svc::MuxAuditClient& client, double rate,
                                   double duration_s, uint64_t seed) {
  OpenLoopResult result;
  result.rate = rate;
  const std::string spec_payload = svc::EncodeAuditSpecification(BenchSpec());

  std::mutex mu;
  std::condition_variable cv;
  uint64_t pending = 0;
  std::vector<double> latencies_ms;

  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> inter_arrival(rate);
  auto next = std::chrono::steady_clock::now();
  const auto deadline = next + std::chrono::duration<double>(duration_s);
  WallTimer wall;
  while (next < deadline) {
    std::this_thread::sleep_until(next);
    next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(inter_arrival(rng)));
    result.offered++;
    {
      std::lock_guard<std::mutex> lock(mu);
      pending++;
    }
    WallTimer rpc_timer;
    client.AsyncCall(svc::MsgType::kAuditRequest, spec_payload, svc::MsgType::kAuditReport,
                     [&, rpc_timer](Result<net::Frame> reply) mutable {
                       const double elapsed_ms = rpc_timer.ElapsedSeconds() * 1000.0;
                       std::lock_guard<std::mutex> lock(mu);
                       if (reply.ok()) {
                         latencies_ms.push_back(elapsed_ms);
                       } else if (reply.status().code() == StatusCode::kUnavailable) {
                         result.shed++;
                       } else {
                         result.errors++;
                       }
                       pending--;
                       cv.notify_one();
                     });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    if (!cv.wait_for(lock, std::chrono::seconds(30), [&] { return pending == 0; })) {
      return DeadlineExceededError("open-loop drain timed out");
    }
  }
  const double elapsed = wall.ElapsedSeconds();
  result.completed = latencies_ms.size();
  result.achieved_rps = elapsed > 0 ? static_cast<double>(result.completed) / elapsed : 0;
  result.p50_ms = Percentile(latencies_ms, 50);
  result.p99_ms = Percentile(latencies_ms, 99);
  return result;
}

Status Run(int argc, char** argv) {
  int64_t workers = 16;
  int64_t pings = 2000;
  int64_t window = 64;
  int64_t threaded_conns = 16;
  int64_t threaded_over_conns = 24;
  int64_t reactor_conns = 160;
  double duration_s = 1.2;
  int64_t think_ms = 200;
  std::string openloop_rates = "1000,4000,12000";
  double openloop_duration_s = 1.0;
  int64_t profile_hz = 0;
  std::string profile_dump;
  std::string json_out;
  FlagSet flags;
  flags.AddInt("workers", &workers, "server worker threads in every scenario");
  flags.AddInt("pings", &pings, "round trips in the pipelining A/B");
  flags.AddInt("window", &window, "mux client in-flight window");
  flags.AddInt("threaded-conns", &threaded_conns,
               "closed-loop connections at the threaded server's capacity");
  flags.AddInt("threaded-over-conns", &threaded_over_conns,
               "closed-loop connections past the threaded server's capacity");
  flags.AddInt("reactor-conns", &reactor_conns, "closed-loop connections at the reactor");
  flags.AddDouble("duration-s", &duration_s, "closed-loop scenario duration");
  flags.AddInt("think-ms", &think_ms, "idle time between a connection's audits");
  flags.AddString("openloop-rates", &openloop_rates,
                  "comma-separated Poisson arrival rates (audits/s), empty to skip");
  flags.AddDouble("openloop-duration-s", &openloop_duration_s, "duration per offered rate");
  flags.AddInt("profile-hz", &profile_hz,
               "sample the whole study at this frequency (0 = profiler off)");
  flags.AddString("profile-dump", &profile_dump,
                  "where the raw profile dump lands (requires --profile-hz)");
  flags.AddString("json-out", &json_out, "write machine-readable results here");
  INDAAS_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (profile_hz < 0 || profile_hz > obs::Profiler::kMaxHz) {
    return InvalidArgumentError("--profile-hz out of range");
  }
  if (!profile_dump.empty() && profile_hz == 0) {
    return InvalidArgumentError("--profile-dump requires --profile-hz > 0");
  }
  if (profile_hz > 0) {
    obs::Profiler::Global().RegisterCurrentThread();
    obs::ProfileOptions popts;
    popts.hz = static_cast<uint32_t>(profile_hz);
    popts.alloc = true;
    INDAAS_RETURN_IF_ERROR(obs::Profiler::Global().Start(popts));
  }

  // --- Phase 1: pipelining gain on one connection ---
  double serial_rps = 0;
  double mux_rps = 0;
  {
    svc::AuditServerOptions options;
    options.worker_threads = static_cast<size_t>(workers);
    svc::AuditServer server(options);
    INDAAS_RETURN_IF_ERROR(server.Start());
    const net::Endpoint endpoint{"127.0.0.1", server.port()};
    {
      INDAAS_ASSIGN_OR_RETURN(svc::AuditClient client, svc::AuditClient::Connect(endpoint));
      for (int i = 0; i < 100; ++i) {
        INDAAS_RETURN_IF_ERROR(client.Ping());
      }
      WallTimer timer;
      for (int64_t i = 0; i < pings; ++i) {
        INDAAS_RETURN_IF_ERROR(client.Ping());
      }
      serial_rps = static_cast<double>(pings) / timer.ElapsedSeconds();
    }
    {
      svc::MuxClientOptions mux_options;
      mux_options.connections = 1;
      mux_options.window = static_cast<size_t>(window);
      INDAAS_ASSIGN_OR_RETURN(svc::MuxAuditClient client,
                              svc::MuxAuditClient::Connect(endpoint, mux_options));
      std::mutex mu;
      std::condition_variable cv;
      int64_t done = 0;
      int64_t failed = 0;
      WallTimer timer;
      for (int64_t i = 0; i < pings; ++i) {
        client.AsyncCall(svc::MsgType::kPing, "", svc::MsgType::kPong,
                         [&](Result<net::Frame> reply) {
                           std::lock_guard<std::mutex> lock(mu);
                           if (!reply.ok()) {
                             failed++;
                           }
                           done++;
                           cv.notify_one();
                         });
      }
      {
        std::unique_lock<std::mutex> lock(mu);
        if (!cv.wait_for(lock, std::chrono::seconds(30), [&] { return done == pings; })) {
          return DeadlineExceededError("pipelined ping drain timed out");
        }
      }
      mux_rps = static_cast<double>(pings) / timer.ElapsedSeconds();
      if (failed > 0) {
        return InternalError(StrFormat("%lld pipelined pings failed",
                                       static_cast<long long>(failed)));
      }
      client.Shutdown();
    }
    server.Stop();
  }
  std::printf("pipelining: serial %.0f pings/s, window-%lld mux %.0f pings/s (%.1fx)\n",
              serial_rps, static_cast<long long>(window), mux_rps,
              serial_rps > 0 ? mux_rps / serial_rps : 0.0);

  // --- Phase 2: sustained concurrent auditors per mode ---
  std::vector<SustainedResult> sustained;
  sustained.push_back(RunSustained("threaded", svc::ServerMode::kThreadPerRequest,
                                   static_cast<size_t>(workers),
                                   static_cast<size_t>(threaded_conns), duration_s,
                                   static_cast<int>(think_ms)));
  sustained.push_back(RunSustained("threaded", svc::ServerMode::kThreadPerRequest,
                                   static_cast<size_t>(workers),
                                   static_cast<size_t>(threaded_over_conns), duration_s,
                                   static_cast<int>(think_ms)));
  sustained.push_back(RunSustained("reactor", svc::ServerMode::kReactor,
                                   static_cast<size_t>(workers),
                                   static_cast<size_t>(threaded_conns), duration_s,
                                   static_cast<int>(think_ms)));
  sustained.push_back(RunSustained("reactor", svc::ServerMode::kReactor,
                                   static_cast<size_t>(workers),
                                   static_cast<size_t>(reactor_conns), duration_s,
                                   static_cast<int>(think_ms)));
  for (const SustainedResult& r : sustained) {
    std::printf(
        "%-8s conns=%-4zu progressed=%-4zu sustained=%-4zu audits=%-6llu errors=%-5llu "
        "p50=%.2fms p99=%.2fms\n",
        r.mode.c_str(), r.conns, r.progressed, r.sustained,
        static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.errors), r.p50_ms, r.p99_ms);
  }
  // The headline ratio: reactor's sustained connections over the best the
  // threaded mode managed. The like-for-like p99 comparison is the reactor
  // run at the threaded server's own connection count.
  const SustainedResult& threaded_best =
      sustained[0].sustained >= sustained[1].sustained ? sustained[0] : sustained[1];
  const SustainedResult& reactor_matched = sustained[2];
  const SustainedResult& reactor = sustained[3];
  const double ratio =
      threaded_best.sustained > 0
          ? static_cast<double>(reactor.sustained) / threaded_best.sustained
          : 0.0;
  std::printf("summary: reactor sustains %zu vs threaded %zu concurrent auditors "
              "(%.1fx); matched-load p99 %.2fms vs %.2fms\n",
              reactor.sustained, threaded_best.sustained, ratio, reactor_matched.p99_ms,
              threaded_best.p99_ms);

  // --- Phase 3: open-loop Poisson sweep at the reactor ---
  std::vector<OpenLoopResult> open_loop;
  std::vector<std::string> rate_fields = SplitAndTrim(openloop_rates, ',');
  if (!rate_fields.empty()) {
    svc::AuditServerOptions options;
    options.worker_threads = static_cast<size_t>(workers);
    options.reactor_shards = 2;
    svc::AuditServer server(options);
    INDAAS_RETURN_IF_ERROR(server.Start());
    {
      INDAAS_ASSIGN_OR_RETURN(
          svc::AuditClient seed,
          svc::AuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()}));
      INDAAS_RETURN_IF_ERROR(seed.ImportDepDb(BenchDepDbText()).status());
    }
    svc::MuxClientOptions mux_options;
    mux_options.connections = 4;
    mux_options.window = 256;
    INDAAS_ASSIGN_OR_RETURN(
        svc::MuxAuditClient client,
        svc::MuxAuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()},
                                     mux_options));
    uint64_t seed = 1;
    for (const std::string& field : rate_fields) {
      char* end = nullptr;
      const double rate = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || rate <= 0) {
        return InvalidArgumentError("--openloop-rates expects positive numbers");
      }
      INDAAS_ASSIGN_OR_RETURN(OpenLoopResult r,
                              RunOpenLoop(client, rate, openloop_duration_s, seed++));
      std::printf("open-loop rate=%-6.0f offered=%-6llu done=%-6llu shed=%-5llu "
                  "errors=%-3llu achieved=%.0f/s p50=%.2fms p99=%.2fms\n",
                  r.rate, static_cast<unsigned long long>(r.offered),
                  static_cast<unsigned long long>(r.completed),
                  static_cast<unsigned long long>(r.shed),
                  static_cast<unsigned long long>(r.errors), r.achieved_rps, r.p50_ms,
                  r.p99_ms);
      open_loop.push_back(r);
    }
    client.Shutdown();
    server.Stop();
  }

  if (profile_hz > 0) {
    obs::ProfileData data = obs::Profiler::Global().Stop();
    std::printf("profile: %zu samples at %u Hz (%llu dropped, %llu truncated)\n",
                data.samples.size(), data.hz,
                static_cast<unsigned long long>(data.dropped),
                static_cast<unsigned long long>(data.truncated_stacks));
    if (!profile_dump.empty()) {
      INDAAS_RETURN_IF_ERROR(WriteFile(profile_dump, obs::ProfileToDumpText(data)));
      std::printf("profile: dump written to %s (symbolize: "
                  "python3 tools/symbolize_profile.py %s)\n",
                  profile_dump.c_str(), profile_dump.c_str());
    }
  }

  if (!json_out.empty()) {
    std::string doc = StrFormat(
        "{\n  \"benchmark\": \"svc_saturation\",\n"
        "  \"pipelining\": {\"pings\": %lld, \"window\": %lld, \"serial_rps\": %.1f, "
        "\"mux_rps\": %.1f, \"speedup\": %.2f},\n",
        static_cast<long long>(pings), static_cast<long long>(window), serial_rps, mux_rps,
        serial_rps > 0 ? mux_rps / serial_rps : 0.0);
    doc += "  \"sustained\": [\n";
    for (size_t i = 0; i < sustained.size(); ++i) {
      const SustainedResult& r = sustained[i];
      doc += StrFormat(
          "    {\"mode\": \"%s\", \"conns\": %zu, \"progressed\": %zu, \"sustained\": %zu, "
          "\"completed\": %llu, \"errors\": %llu, \"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
          r.mode.c_str(), r.conns, r.progressed, r.sustained,
          static_cast<unsigned long long>(r.completed),
          static_cast<unsigned long long>(r.errors), r.p50_ms, r.p99_ms,
          i + 1 < sustained.size() ? "," : "");
    }
    doc += "  ],\n";
    doc += StrFormat(
        "  \"summary\": {\"threaded_sustained\": %zu, \"reactor_sustained\": %zu, "
        "\"ratio\": %.2f, \"threaded_p99_ms\": %.3f, \"reactor_matched_p99_ms\": %.3f, "
        "\"reactor_p99_ms\": %.3f},\n",
        threaded_best.sustained, reactor.sustained, ratio, threaded_best.p99_ms,
        reactor_matched.p99_ms, reactor.p99_ms);
    doc += "  \"open_loop\": [\n";
    for (size_t i = 0; i < open_loop.size(); ++i) {
      const OpenLoopResult& r = open_loop[i];
      doc += StrFormat(
          "    {\"rate\": %.0f, \"offered\": %llu, \"completed\": %llu, \"shed\": %llu, "
          "\"errors\": %llu, \"achieved_rps\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
          r.rate, static_cast<unsigned long long>(r.offered),
          static_cast<unsigned long long>(r.completed),
          static_cast<unsigned long long>(r.shed),
          static_cast<unsigned long long>(r.errors), r.achieved_rps, r.p50_ms, r.p99_ms,
          i + 1 < open_loop.size() ? "," : "");
    }
    doc += "  ]\n}\n";
    INDAAS_RETURN_IF_ERROR(WriteFile(json_out, doc));
  }
  return Status::Ok();
}

}  // namespace
}  // namespace indaas

int main(int argc, char** argv) {
  if (indaas::Status status = indaas::Run(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
