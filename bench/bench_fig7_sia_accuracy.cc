// Reproduces Figure 7 (§6.3.1): efficiency vs. accuracy of the minimal-RG
// algorithm against the failure-sampling algorithm on the Table 3 fat-tree
// topologies. For a redundant deployment inside the chosen topology, the
// bench computes ground-truth minimal RGs, then sweeps sampling round counts
// (10^3..10^max) printing computational time and % of minimal RGs detected —
// the series of Fig. 7a/b/c.
//
//   bench_fig7_sia_accuracy [--topology=A|B|C] [--servers=4] [--paths=4]
//                           [--rounds-max-exp=5] [--threads=4] [--ablation]

#include <cstdio>
#include <set>

#include "src/deps/depdb.h"
#include "src/sia/builder.h"
#include "src/sia/risk_groups.h"
#include "src/sia/sampling.h"
#include "src/topology/fat_tree.h"
#include "src/util/flags.h"
#include "src/util/stats.h"
#include "src/util/strings.h"
#include "src/util/timer.h"

using namespace indaas;

namespace {

double DetectedFraction(const std::vector<RiskGroup>& truth,
                        const std::vector<RiskGroup>& sampled) {
  if (truth.empty()) {
    return 0.0;
  }
  std::set<RiskGroup> truth_set(truth.begin(), truth.end());
  size_t hits = 0;
  for (const RiskGroup& group : sampled) {
    if (truth_set.count(group) != 0) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::string topology = "A";
  int64_t servers = 3;
  int64_t paths = 16;
  int64_t rounds_max_exp = 5;
  int64_t threads = 4;
  double bias = 0.5;
  bool ablation = false;
  FlagSet flags;
  flags.AddString("topology", &topology, "A (16-port), B (24-port) or C (48-port)");
  flags.AddInt("servers", &servers, "redundant servers in the audited deployment");
  flags.AddInt("paths", &paths, "ECMP paths modeled per server");
  flags.AddInt("rounds-max-exp", &rounds_max_exp, "sweep sampling rounds 10^3..10^this");
  flags.AddInt("threads", &threads, "sampling worker threads");
  flags.AddDouble("bias", &bias, "per-event failure coin bias (paper: 0.5 coin flips)");
  flags.AddBool("ablation", &ablation, "also sweep the shrink-mode / bias ablations");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  uint32_t ports = topology == "A" ? 16 : topology == "B" ? 24 : 48;

  WallTimer build_timer;
  auto topo = BuildFatTree(ports);
  if (!topo.ok()) {
    std::fprintf(stderr, "%s\n", topo.status().ToString().c_str());
    return 1;
  }
  std::printf("Topology %s: %u-port fat tree, %zu devices (built in %s)\n", topology.c_str(),
              ports, topo->DeviceCount() - 1, HumanSeconds(build_timer.ElapsedSeconds()).c_str());

  // Deployment: one server from each of `servers` distinct pods (max
  // redundancy spread), with network dependencies from the real routes.
  auto internet = topo->FindDevice("Internet");
  if (!internet.ok()) {
    return 1;
  }
  DepDb db;
  std::vector<std::string> deployment;
  for (int64_t i = 0; i < servers; ++i) {
    std::string name = StrFormat("pod%lld-srv0-0", (long long)(i % ports));
    auto device = topo->FindDevice(name);
    if (!device.ok()) {
      std::fprintf(stderr, "%s\n", device.status().ToString().c_str());
      return 1;
    }
    for (const NetworkDependency& dep :
         topo->NetworkDependencies(*device, *internet, static_cast<size_t>(paths))) {
      db.Add(dep);
    }
    deployment.push_back(name);
  }
  auto graph = BuildDeploymentFaultGraph(db, deployment);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("Deployment fault graph: %zu nodes, %zu basic events (%lld servers x %lld paths)\n\n",
              graph->NodeCount(), graph->BasicEvents().size(), (long long)servers,
              (long long)paths);

  // Ground truth.
  WallTimer exact_timer;
  auto truth = ComputeMinimalRiskGroups(*graph);
  if (!truth.ok()) {
    std::fprintf(stderr, "minimal-RG algorithm failed: %s\n", truth.status().ToString().c_str());
    return 1;
  }
  double exact_seconds = exact_timer.ElapsedSeconds();
  std::printf("Minimal RG algorithm: %zu minimal RGs in %s (100%% by definition)\n\n",
              truth->groups.size(), HumanSeconds(exact_seconds).c_str());

  TextTable table({"Sampling rounds", "Time", "% minimal RGs detected"});
  for (int64_t exp = 3; exp <= rounds_max_exp; ++exp) {
    size_t rounds = 1;
    for (int64_t e = 0; e < exp; ++e) {
      rounds *= 10;
    }
    SamplingOptions options;
    options.rounds = rounds;
    options.failure_bias = bias;
    options.shrink = ShrinkMode::kGreedy;
    options.threads = static_cast<size_t>(threads);
    options.seed = 42;
    WallTimer timer;
    auto sampled = SampleRiskGroups(*graph, options);
    if (!sampled.ok()) {
      std::fprintf(stderr, "%s\n", sampled.status().ToString().c_str());
      return 1;
    }
    double fraction = DetectedFraction(truth->groups, sampled->groups);
    table.AddRow({StrFormat("10^%lld", (long long)exp),
                  HumanSeconds(timer.ElapsedSeconds()), StrFormat("%.1f%%", fraction * 100)});
  }
  table.Print();
  std::printf("\nPaper (Fig. 7, topology B): sampling reached 92%% of minimal RGs with 10^6\n"
              "rounds in 90 min, vs 1046 min for the exact algorithm. The shape — sampling\n"
              "approaches 100%% orders of magnitude faster — is what reproduces here.\n");

  if (ablation) {
    std::printf("\n=== Ablation: shrink mode and coin bias (10^%lld rounds) ===\n\n",
                (long long)rounds_max_exp);
    TextTable ab({"Shrink", "Bias", "Time", "% detected", "Distinct RGs found"});
    size_t rounds = 1;
    for (int64_t e = 0; e < rounds_max_exp; ++e) {
      rounds *= 10;
    }
    for (ShrinkMode shrink : {ShrinkMode::kGreedy, ShrinkMode::kNone}) {
      for (double bias : {0.02, 0.05, 0.2, 0.5}) {
        SamplingOptions options;
        options.rounds = rounds;
        options.failure_bias = bias;
        options.shrink = shrink;
        options.threads = static_cast<size_t>(threads);
        options.seed = 42;
        WallTimer timer;
        auto sampled = SampleRiskGroups(*graph, options);
        if (!sampled.ok()) {
          std::fprintf(stderr, "%s\n", sampled.status().ToString().c_str());
          return 1;
        }
        ab.AddRow({shrink == ShrinkMode::kGreedy ? "greedy" : "none", StrFormat("%.2f", bias),
                   HumanSeconds(timer.ElapsedSeconds()),
                   StrFormat("%.1f%%", DetectedFraction(truth->groups, sampled->groups) * 100),
                   std::to_string(sampled->groups.size())});
      }
    }
    ab.Print();
    std::printf("\nGreedy shrink (our extension; the paper's algorithm records raw failing\n"
                "sets) is what makes high biases usable: raw sets are rarely minimal.\n");
  }
  return 0;
}
