// Microbenchmark for minimal-risk-group enumeration: legacy vector engine vs
// the bitset cut-set engine (DESIGN.md §5) on fat-tree deployment fault
// graphs (k = 8 and 16) and a randomized DAG. Emits one JSON object per line
// so successive PRs can track a BENCH_*.json trajectory:
//
//   {"bench":"rg_fat_tree_k16","engine":"bitset","ns_per_op":...,"groups":...,
//    "identical_to_vector":true,"speedup_vs_vector":...}
//
// The same results are also written as one machine-readable JSON document
// (default BENCH_risk_groups.json, see --json-out) for tooling that prefers
// a single file over scraping stdout.
//
//   bench_risk_groups [--reps=5] [--servers=3] [--paths=16] [--threads=0]
//                     [--dag-basics=14] [--dag-gates=24]
//                     [--json-out=BENCH_risk_groups.json]

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "src/deps/depdb.h"
#include "src/sia/builder.h"
#include "src/sia/risk_groups.h"
#include "src/topology/fat_tree.h"
#include "src/util/file.h"
#include "src/util/flags.h"
#include "src/util/rng.h"
#include "src/util/strings.h"
#include "src/util/timer.h"

using namespace indaas;

namespace {

// Deployment fault graph for `servers` servers spread over distinct pods of a
// k-port fat tree, each with `paths` ECMP routes to the Internet (the Fig. 7
// workload shape).
Result<FaultGraph> FatTreeDeploymentGraph(uint32_t ports, size_t servers, size_t paths) {
  INDAAS_ASSIGN_OR_RETURN(DataCenterTopology topo, BuildFatTree(ports));
  INDAAS_ASSIGN_OR_RETURN(DeviceId internet, topo.FindDevice("Internet"));
  DepDb db;
  std::vector<std::string> deployment;
  for (size_t i = 0; i < servers; ++i) {
    std::string name = StrFormat("pod%zu-srv0-0", i % ports);
    INDAAS_ASSIGN_OR_RETURN(DeviceId device, topo.FindDevice(name));
    for (const NetworkDependency& dep : topo.NetworkDependencies(device, internet, paths)) {
      db.Add(dep);
    }
    deployment.push_back(name);
  }
  return BuildDeploymentFaultGraph(db, deployment);
}

// Random DAG mirroring the property-test generator: gates draw 2-4 children
// from all earlier nodes, types uniform over OR / AND / k-of-n.
FaultGraph RandomDag(uint64_t seed, size_t num_basic, size_t num_gates) {
  Rng rng(seed);
  FaultGraph graph;
  std::vector<NodeId> nodes;
  for (size_t i = 0; i < num_basic; ++i) {
    nodes.push_back(graph.AddBasicEvent("b" + std::to_string(i), 0.05 + rng.NextDouble() * 0.3));
  }
  for (size_t g = 0; g < num_gates; ++g) {
    size_t fanin = 2 + rng.NextBelow(3);
    std::vector<NodeId> children;
    std::set<NodeId> used;
    for (size_t c = 0; c < fanin; ++c) {
      NodeId child = nodes[rng.NextBelow(nodes.size())];
      if (used.insert(child).second) {
        children.push_back(child);
      }
    }
    std::string name = "g" + std::to_string(g);
    switch (rng.NextBelow(3)) {
      case 0:
        nodes.push_back(graph.AddGate(name, GateType::kOr, children));
        break;
      case 1:
        nodes.push_back(graph.AddGate(name, GateType::kAnd, children));
        break;
      default:
        nodes.push_back(graph.AddKofNGate(
            name, 1 + static_cast<uint32_t>(rng.NextBelow(children.size())), children));
        break;
    }
  }
  graph.SetTopEvent(nodes.back());
  if (!graph.Validate().ok()) {
    std::fprintf(stderr, "random DAG failed to validate\n");
    std::exit(1);
  }
  return graph;
}

struct EngineRun {
  double ns_per_op = 0.0;
  std::vector<RiskGroup> groups;
};

// One emitted measurement, mirrored into the --json-out document.
struct BenchRecord {
  std::string bench;
  std::string topology;
  std::string engine;
  double ns_per_op = 0.0;
  size_t groups = 0;
  double speedup_vs_vector = 0.0;  // 0 for the vector baseline itself
};

std::vector<BenchRecord>& Records() {
  static std::vector<BenchRecord> records;
  return records;
}

EngineRun TimeEngine(const FaultGraph& graph, RgEngine engine, size_t threads, size_t reps) {
  MinimalRgOptions options;
  options.engine = engine;
  options.threads = threads;
  EngineRun run;
  WallTimer timer;
  for (size_t r = 0; r < reps; ++r) {
    auto result = ComputeMinimalRiskGroups(graph, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      std::exit(1);
    }
    run.groups = std::move(result->groups);
  }
  run.ns_per_op = timer.ElapsedSeconds() * 1e9 / static_cast<double>(reps);
  return run;
}

void RunCase(const std::string& name, const std::string& topology, const FaultGraph& graph,
             size_t threads, size_t reps) {
  EngineRun vec = TimeEngine(graph, RgEngine::kVector, threads, reps);
  EngineRun bits = TimeEngine(graph, RgEngine::kBitset, threads, reps);
  const bool identical = vec.groups == bits.groups;
  std::printf("{\"bench\":\"%s\",\"engine\":\"vector\",\"ns_per_op\":%.0f,\"groups\":%zu}\n",
              name.c_str(), vec.ns_per_op, vec.groups.size());
  std::printf("{\"bench\":\"%s\",\"engine\":\"bitset\",\"ns_per_op\":%.0f,\"groups\":%zu,"
              "\"identical_to_vector\":%s,\"speedup_vs_vector\":%.2f}\n",
              name.c_str(), bits.ns_per_op, bits.groups.size(), identical ? "true" : "false",
              vec.ns_per_op / bits.ns_per_op);
  Records().push_back(BenchRecord{name, topology, "vector", vec.ns_per_op, vec.groups.size(), 0.0});
  Records().push_back(BenchRecord{name, topology, "bitset", bits.ns_per_op, bits.groups.size(),
                                  vec.ns_per_op / bits.ns_per_op});
  if (!identical) {
    std::fprintf(stderr, "ENGINE MISMATCH on %s: vector=%zu groups, bitset=%zu groups\n",
                 name.c_str(), vec.groups.size(), bits.groups.size());
    std::exit(1);
  }
}

std::string RecordsToJson(size_t reps, size_t threads) {
  std::string out = "{\n  \"benchmark\": \"risk_groups\",\n";
  out += StrFormat("  \"reps\": %zu,\n  \"threads\": %zu,\n  \"results\": [\n", reps, threads);
  for (size_t i = 0; i < Records().size(); ++i) {
    const BenchRecord& r = Records()[i];
    out += StrFormat(
        "    {\"bench\": \"%s\", \"topology\": \"%s\", \"engine\": \"%s\", "
        "\"ns_per_op\": %.0f, \"ms_per_op\": %.6f, \"groups\": %zu",
        r.bench.c_str(), r.topology.c_str(), r.engine.c_str(), r.ns_per_op, r.ns_per_op / 1e6,
        r.groups);
    if (r.speedup_vs_vector > 0.0) {
      out += StrFormat(", \"speedup_vs_vector\": %.2f", r.speedup_vs_vector);
    }
    out += i + 1 < Records().size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t reps = 5;
  int64_t servers = 3;
  int64_t paths = 32;
  int64_t threads = 0;
  int64_t dag_basics = 14;
  int64_t dag_gates = 24;
  std::string json_out = "BENCH_risk_groups.json";
  FlagSet flags;
  flags.AddInt("reps", &reps, "repetitions per engine per case");
  flags.AddInt("servers", &servers, "redundant servers in the fat-tree deployment");
  flags.AddInt("paths", &paths, "ECMP paths modeled per server");
  flags.AddInt("threads", &threads, "bitset engine worker threads (0 = hardware)");
  flags.AddInt("dag-basics", &dag_basics, "basic events in the random DAG case");
  flags.AddInt("dag-gates", &dag_gates, "gates in the random DAG case");
  flags.AddString("json-out", &json_out, "machine-readable results file ('' = skip)");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (reps < 1 || servers < 1 || paths < 1) {
    std::fprintf(stderr, "--reps, --servers and --paths must be >= 1\n");
    return 1;
  }

  for (uint32_t ports : {8u, 16u}) {
    auto graph = FatTreeDeploymentGraph(ports, static_cast<size_t>(servers),
                                        static_cast<size_t>(paths));
    if (!graph.ok()) {
      std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
      return 1;
    }
    RunCase(StrFormat("rg_fat_tree_k%u", ports), StrFormat("fat_tree_k%u", ports), *graph,
            static_cast<size_t>(threads), static_cast<size_t>(reps));
  }

  FaultGraph dag = RandomDag(42, static_cast<size_t>(dag_basics), static_cast<size_t>(dag_gates));
  RunCase("rg_random_dag", "random_dag", dag, static_cast<size_t>(threads),
          static_cast<size_t>(reps));

  if (!json_out.empty()) {
    std::string doc = RecordsToJson(static_cast<size_t>(reps), static_cast<size_t>(threads));
    if (Status s = WriteFile(json_out, doc); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", json_out.c_str());
  }
  return 0;
}
