// Micro-benchmarks (google-benchmark) for the building blocks underlying the
// paper's experiments: bignum arithmetic, digests, commutative encryption,
// Paillier, fault graph evaluation, and the two RG algorithms.

#include <benchmark/benchmark.h>

#include "src/bignum/modular.h"
#include "src/bignum/montgomery.h"
#include "src/bignum/prime.h"
#include "src/crypto/commutative.h"
#include "src/crypto/digest.h"
#include "src/crypto/paillier.h"
#include "src/graph/bdd.h"
#include "src/graph/levels.h"
#include "src/sia/risk_groups.h"
#include "src/sia/sampling.h"
#include "src/sketch/intersect.h"
#include "src/sketch/sketch.h"
#include "src/util/rng.h"

namespace indaas {
namespace {

void BM_BigUintMul(benchmark::State& state) {
  Rng rng(1);
  size_t bits = static_cast<size_t>(state.range(0));
  BigUint a = RandomWithBits(bits, rng);
  BigUint b = RandomWithBits(bits, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Mul(b));
  }
}
BENCHMARK(BM_BigUintMul)->Arg(256)->Arg(1024)->Arg(4096);

void BM_BigUintDivMod(benchmark::State& state) {
  Rng rng(2);
  size_t bits = static_cast<size_t>(state.range(0));
  BigUint a = RandomWithBits(2 * bits, rng);
  BigUint b = RandomWithBits(bits, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.DivMod(b));
  }
}
BENCHMARK(BM_BigUintDivMod)->Arg(256)->Arg(1024);

void BM_ModExp(benchmark::State& state) {
  Rng rng(3);
  size_t bits = static_cast<size_t>(state.range(0));
  auto p = WellKnownSafePrime(bits);
  auto ctx = MontgomeryContext::Create(*p);
  BigUint base = RandomBelow(*p, rng);
  BigUint exp = RandomBelow(*p, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx->ModExp(base, exp));
  }
}
BENCHMARK(BM_ModExp)->Arg(768)->Arg(1024)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_Digest(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Digest)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Md5(benchmark::State& state) {
  std::string data(4096, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Md5);

void BM_CommutativeEncrypt(benchmark::State& state) {
  Rng rng(4);
  auto group = CommutativeGroup::CreateWellKnown(static_cast<size_t>(state.range(0)));
  auto key = CommutativeKey::Generate(*group, rng);
  BigUint element = group->HashToElement("pkg:openssl=1.0.1e", HashAlgorithm::kSha256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(key->Encrypt(*group, element));
  }
}
BENCHMARK(BM_CommutativeEncrypt)->Arg(768)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_PaillierEncrypt(benchmark::State& state) {
  Rng rng(5);
  auto keypair = GeneratePaillierKeyPair(static_cast<size_t>(state.range(0)), rng);
  BigUint m(123456);
  for (auto _ : state) {
    benchmark::DoNotOptimize(keypair->pub.Encrypt(m, rng));
  }
}
BENCHMARK(BM_PaillierEncrypt)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_PaillierHomomorphicAdd(benchmark::State& state) {
  Rng rng(6);
  auto keypair = GeneratePaillierKeyPair(512, rng);
  auto c1 = keypair->pub.Encrypt(BigUint(1), rng);
  auto c2 = keypair->pub.Encrypt(BigUint(2), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(keypair->pub.AddCiphertexts(*c1, *c2));
  }
}
BENCHMARK(BM_PaillierHomomorphicAdd);

// A two-level component-set graph with `sources` sources of `width`
// components each, 30% drawn from a shared pool.
FaultGraph MakeGraph(size_t sources, size_t width) {
  Rng rng(7);
  std::vector<ComponentSet> sets;
  for (size_t s = 0; s < sources; ++s) {
    ComponentSet set;
    set.source = "E" + std::to_string(s);
    for (size_t c = 0; c < width; ++c) {
      set.components.push_back(rng.NextBool(0.3)
                                   ? "shared" + std::to_string(rng.NextBelow(width))
                                   : "u" + std::to_string(s) + "_" + std::to_string(c));
    }
    NormalizeComponentSet(set);
    sets.push_back(std::move(set));
  }
  auto graph = BuildFromComponentSets(sets);
  return std::move(graph).value();
}

void BM_FaultGraphEvaluate(benchmark::State& state) {
  FaultGraph graph = MakeGraph(4, static_cast<size_t>(state.range(0)));
  std::vector<uint8_t> graph_state(graph.NodeCount(), 0);
  Rng rng(8);
  for (auto _ : state) {
    for (NodeId id : graph.BasicEvents()) {
      graph_state[id] = rng.NextBool(0.05) ? 1 : 0;
    }
    benchmark::DoNotOptimize(graph.Evaluate(graph_state));
  }
}
BENCHMARK(BM_FaultGraphEvaluate)->Arg(50)->Arg(500);

void BM_MinimalRiskGroups(benchmark::State& state) {
  FaultGraph graph = MakeGraph(2, static_cast<size_t>(state.range(0)));
  MinimalRgOptions options;
  options.max_rg_size = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeMinimalRiskGroups(graph, options));
  }
}
BENCHMARK(BM_MinimalRiskGroups)->Arg(20)->Arg(100)->Unit(benchmark::kMicrosecond);

void BM_BddCompileAndProbability(benchmark::State& state) {
  FaultGraph graph = MakeGraph(4, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TopEventProbabilityBdd(graph, 0.05));
  }
}
BENCHMARK(BM_BddCompileAndProbability)->Arg(50)->Arg(200)->Unit(benchmark::kMicrosecond);

void BM_SamplingRounds(benchmark::State& state) {
  FaultGraph graph = MakeGraph(3, 100);
  for (auto _ : state) {
    SamplingOptions options;
    options.rounds = static_cast<size_t>(state.range(0));
    options.failure_bias = 0.05;
    benchmark::DoNotOptimize(SampleRiskGroups(graph, options));
  }
}
BENCHMARK(BM_SamplingRounds)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

// --- MinHash sketch engine (src/sketch) ---

std::vector<std::string> MakeElements(size_t n, uint64_t salt) {
  std::vector<std::string> elements;
  elements.reserve(n);
  for (size_t e = 0; e < n; ++e) {
    elements.push_back("elem-" + std::to_string(salt) + "-" + std::to_string(e));
  }
  return elements;
}

void BM_SketchBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::string> elements = MakeElements(n, 7);
  sketch::SketchParams params;
  params.k = 256;
  std::vector<uint32_t> out(params.k);
  for (auto _ : state) {
    sketch::BuildSketch(params, elements, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SketchBuild)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

bool PinLevel(benchmark::State& state, sketch::SimdLevel* level) {
  *level = static_cast<sketch::SimdLevel>(state.range(0));
  if (!sketch::SimdLevelAvailable(*level)) {
    state.SkipWithError("SIMD level unavailable on this host");
    return false;
  }
  return true;
}

void BM_SketchAgreeCount(benchmark::State& state) {
  sketch::SimdLevel level;
  if (!PinLevel(state, &level)) {
    return;
  }
  sketch::SketchParams params;
  params.k = 256;
  std::vector<uint32_t> a(params.k), b(params.k);
  sketch::BuildSketch(params, MakeElements(2000, 1), a.data());
  sketch::BuildSketch(params, MakeElements(2000, 2), b.data());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch::AgreeCount(a.data(), b.data(), params.k, level));
  }
}
BENCHMARK(BM_SketchAgreeCount)->Arg(0)->Arg(1)->Arg(2);

// Rotates among many distinct pairs so the branch predictor cannot memorize
// one merge pattern — a single repeated pair understates scalar cost and
// with it the SIMD speedup.
void BM_SketchIntersect(benchmark::State& state) {
  sketch::SimdLevel level;
  if (!PinLevel(state, &level)) {
    return;
  }
  const size_t n = static_cast<size_t>(state.range(1));
  std::vector<std::vector<uint32_t>> fps;
  for (size_t i = 0; i < 32; ++i) {
    fps.push_back(sketch::BuildFingerprints(1, MakeElements(n, i)));
  }
  size_t i = 0, j = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch::IntersectCount(fps[i].data(), fps[i].size(),
                                                    fps[j].data(), fps[j].size(), level));
    if (++j == fps.size()) {
      j = ++i + 1;
      if (j >= fps.size()) {
        i = 0;
        j = 1;
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 * state.range(1));
}
BENCHMARK(BM_SketchIntersect)
    ->Args({0, 2000})
    ->Args({1, 2000})
    ->Args({2, 2000})
    ->Args({2, 16384})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace indaas

BENCHMARK_MAIN();
