// Reproduces Table 2 (and the Fig. 6c software case study): Jaccard-ranked
// 2-way and 3-way redundancy deployments over four clouds running Riak,
// MongoDB, Redis and CouchDB, computed privately with P-SOP. Prints our
// measured Jaccard next to the paper's, for both the exact protocol and the
// MinHash-compressed variant.
//
//   bench_table2_software_pia [--group-bits=768] [--m=512]

#include <cstdio>
#include <map>

#include "src/acquire/apt_sim.h"
#include "src/pia/audit.h"
#include "src/util/flags.h"
#include "src/util/stats.h"
#include "src/util/strings.h"

using namespace indaas;

namespace {

// Paper's Table 2 values, keyed by the deployment's provider list.
const std::map<std::string, double> kPaperJaccard = {
    {"Cloud2 & Cloud4", 0.1419},          {"Cloud2 & Cloud3", 0.1547},
    {"Cloud1 & Cloud4", 0.2081},          {"Cloud1 & Cloud3", 0.2939},
    {"Cloud3 & Cloud4", 0.3489},          {"Cloud1 & Cloud2", 0.5059},
    {"Cloud2 & Cloud3 & Cloud4", 0.1128}, {"Cloud1 & Cloud2 & Cloud4", 0.1207},
    {"Cloud1 & Cloud3 & Cloud4", 0.1353}, {"Cloud1 & Cloud2 & Cloud3", 0.1536},
};

void PrintRanking(const char* title, const std::vector<DeploymentSimilarity>& ranking) {
  std::printf("%s\n", title);
  TextTable table({"Rank", "Deployment", "Jaccard (ours)", "Jaccard (paper)"});
  size_t rank = 1;
  for (const DeploymentSimilarity& entry : ranking) {
    std::string name = Join(entry.providers, " & ");
    auto paper = kPaperJaccard.find(name);
    table.AddRow({std::to_string(rank++), name, StrFormat("%.4f", entry.jaccard),
                  paper == kPaperJaccard.end() ? "-" : StrFormat("%.4f", paper->second)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  int64_t group_bits = 768;
  int64_t m = 512;
  FlagSet flags;
  flags.AddInt("group-bits", &group_bits, "P-SOP group size (768/1024/1536/2048)");
  flags.AddInt("m", &m, "MinHash sample size for the approximate run");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  PackageUniverse universe = PackageUniverse::KeyValueStoreUniverse();
  const char* programs[] = {"riak", "mongodb-server", "redis-server", "couchdb"};
  std::vector<CloudProvider> providers;
  for (int i = 0; i < 4; ++i) {
    auto closure = universe.Closure(programs[i]);
    if (!closure.ok()) {
      std::fprintf(stderr, "%s\n", closure.status().ToString().c_str());
      return 1;
    }
    providers.push_back({StrFormat("Cloud%d", i + 1), std::move(closure).value()});
  }

  PiaAuditOptions options;
  options.psop.group_bits = static_cast<size_t>(group_bits);
  auto exact = RunPiaAudit(providers, options);
  if (!exact.ok()) {
    std::fprintf(stderr, "%s\n", exact.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Table 2, exact P-SOP (%lld-bit commutative encryption) ===\n\n",
              (long long)group_bits);
  PrintRanking("Two-way redundancy deployments:", exact->rankings[0]);
  PrintRanking("Three-way redundancy deployments:", exact->rankings[1]);

  options.method = PiaMethod::kPsopMinHash;
  options.minhash_m = static_cast<size_t>(m);
  auto approx = RunPiaAudit(providers, options);
  if (!approx.ok()) {
    std::fprintf(stderr, "%s\n", approx.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Table 2, MinHash(m=%lld) + P-SOP (approximate) ===\n\n", (long long)m);
  PrintRanking("Two-way redundancy deployments:", approx->rankings[0]);
  PrintRanking("Three-way redundancy deployments:", approx->rankings[1]);
  return 0;
}
