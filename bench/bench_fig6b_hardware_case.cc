// Reproduces the Fig. 6b hardware case study (§6.2.2): a small IaaS cloud
// (4 servers, 4 switches) runs Riak on two VMs; OpenStack-like placement
// co-locates them. The minimal-RG algorithm + size ranking produce the
// paper's top-4 RG list — {Server2}, {Switch1}, {Core1 & Core2},
// {VM7 & VM8} — and the report-driven re-deployment removes the shared
// server.
//
//   bench_fig6b_hardware_case [--seed=1]

#include <cstdio>

#include "src/acquire/lshw_sim.h"
#include "src/acquire/nsdminer_sim.h"
#include "src/sia/builder.h"
#include "src/sia/ranking.h"
#include "src/sia/risk_groups.h"
#include "src/topology/case_study.h"
#include "src/topology/placement.h"
#include "src/util/flags.h"
#include "src/util/strings.h"

using namespace indaas;

namespace {

struct AuditOutcome {
  std::vector<std::string> top_groups;
  bool has_single_server_rg = false;
};

Result<AuditOutcome> RunAudit(const DataCenterTopology& topo,
                              const std::vector<PlacementHost>& hosts,
                              const std::vector<VmRequest>& vms, PlacementPolicy policy,
                              uint64_t seed, std::string* placement_desc) {
  Rng rng(seed);
  INDAAS_ASSIGN_OR_RETURN(PlacementResult placement, PlaceVms(vms, hosts, policy, rng));
  *placement_desc = StrFormat("VM7 -> %s, VM8 -> %s",
                              hosts[placement.assignment[6]].name.c_str(),
                              hosts[placement.assignment[7]].name.c_str());
  LshwSim lshw;
  NsdMinerSim miner(2);
  Rng traffic_rng(seed + 17);
  DepDb db;
  for (size_t v = 6; v < 8; ++v) {
    const std::string& vm = vms[v].name;
    const std::string& host = hosts[placement.assignment[v]].name;
    lshw.RegisterMachine(vm, LshwSim::RandomSpec(traffic_rng));
    lshw.RegisterSharedComponent(vm, "Host", host);
    INDAAS_ASSIGN_OR_RETURN(std::vector<FlowRecord> flows,
                            GenerateTraffic(topo, host, "Internet", 50, traffic_rng));
    for (FlowRecord flow : flows) {
      flow.src = vm;
      miner.IngestFlow(flow);
    }
  }
  INDAAS_RETURN_IF_ERROR(RunAcquisition({&lshw, &miner}, {"VM7", "VM8"}, db));
  INDAAS_ASSIGN_OR_RETURN(FaultGraph graph, BuildDeploymentFaultGraph(db, {"VM7", "VM8"}));
  INDAAS_ASSIGN_OR_RETURN(MinimalRgResult groups, ComputeMinimalRiskGroups(graph));
  AuditOutcome outcome;
  for (const auto& ranked : RankBySize(groups.groups)) {
    std::vector<std::string> names;
    for (NodeId id : ranked.group) {
      names.push_back(graph.node(id).name);
    }
    if (ranked.group.size() == 1) {
      outcome.has_single_server_rg =
          outcome.has_single_server_rg || names[0].rfind("hw:server", 0) == 0;
    }
    outcome.top_groups.push_back("{" + Join(names, " & ") + "}");
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t seed = 1;
  FlagSet flags;
  flags.AddInt("seed", &seed, "placement RNG seed");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto topo = BuildLabCloud();
  if (!topo.ok()) {
    std::fprintf(stderr, "%s\n", topo.status().ToString().c_str());
    return 1;
  }
  std::vector<PlacementHost> hosts = {{"Server1", 2}, {"Server2", 10}, {"Server3", 2},
                                      {"Server4", 2}};
  std::vector<VmRequest> vms;
  for (int i = 1; i <= 6; ++i) {
    vms.push_back({StrFormat("VM%d", i), ""});
  }
  vms.push_back({"VM7", "riak"});
  vms.push_back({"VM8", "riak"});

  std::string placement_desc;
  auto before = RunAudit(*topo, hosts, vms, PlacementPolicy::kLeastLoadedRandom,
                         static_cast<uint64_t>(seed), &placement_desc);
  if (!before.ok()) {
    std::fprintf(stderr, "%s\n", before.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Initial deployment (OpenStack least-loaded placement) ===\n");
  std::printf("Placement: %s\n", placement_desc.c_str());
  std::printf("Top 4 RGs (minimal-RG algorithm, size ranking):\n");
  for (size_t i = 0; i < before->top_groups.size() && i < 4; ++i) {
    std::printf("  %zu. %s\n", i + 1, before->top_groups[i].c_str());
  }
  std::printf("Paper's top 4: {Server2}, {Switch1}, {Core1 & Core2}, {VM7 & VM8}\n");
  std::printf("Single-server RG present: %s (paper: yes — redundancy defeated)\n\n",
              before->has_single_server_rg ? "YES" : "no");

  auto after = RunAudit(*topo, hosts, vms, PlacementPolicy::kAntiAffinity,
                        static_cast<uint64_t>(seed), &placement_desc);
  if (!after.ok()) {
    std::fprintf(stderr, "%s\n", after.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Re-deployment per the auditing report ===\n");
  std::printf("Placement: %s\n", placement_desc.c_str());
  std::printf("Top RGs after re-deployment:\n");
  for (size_t i = 0; i < after->top_groups.size() && i < 4; ++i) {
    std::printf("  %zu. %s\n", i + 1, after->top_groups[i].c_str());
  }
  std::printf("Single-server RG present: %s (paper: removed)\n",
              after->has_single_server_rg ? "YES" : "no");
  return (before->has_single_server_rg && !after->has_single_server_rg) ? 0 : 1;
}
