// Reproduces Table 3: the three fat-tree topologies used by the SIA
// performance evaluation (§6.3.1), generated and verified device-by-device.
//
//   bench_table3_topologies [--skip-largest]

#include <cstdio>

#include "src/topology/fat_tree.h"
#include "src/util/flags.h"
#include "src/util/stats.h"
#include "src/util/strings.h"
#include "src/util/timer.h"

using namespace indaas;

int main(int argc, char** argv) {
  bool skip_largest = false;
  FlagSet flags;
  flags.AddBool("skip-largest", &skip_largest, "skip building topology C (48-port, 30k devices)");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("Table 3: Configurations of the generated topologies\n\n");
  TextTable table({"", "Topology A", "Topology B", "Topology C"});
  struct Row {
    const char* label;
    size_t values[3];
  };
  const uint32_t kPorts[3] = {16, 24, 48};
  FatTreeStats stats[3];
  double build_seconds[3] = {0, 0, 0};
  size_t measured_total[3] = {0, 0, 0};
  for (int t = 0; t < 3; ++t) {
    stats[t] = FatTreeStatsFor(kPorts[t]);
    if (t == 2 && skip_largest) {
      continue;
    }
    WallTimer timer;
    auto topo = BuildFatTree(kPorts[t]);
    if (!topo.ok()) {
      std::fprintf(stderr, "%s\n", topo.status().ToString().c_str());
      return 1;
    }
    build_seconds[t] = timer.ElapsedSeconds();
    measured_total[t] = topo->DeviceCount() - 1;  // minus the Internet sink
  }
  auto row = [&](const char* label, auto accessor) {
    std::vector<std::string> cells{label};
    for (int t = 0; t < 3; ++t) {
      cells.push_back(std::to_string(accessor(stats[t])));
    }
    table.AddRow(cells);
  };
  row("# switch ports", [](const FatTreeStats& s) { return s.ports; });
  row("# core routers", [](const FatTreeStats& s) { return s.core_routers; });
  row("# agg switches", [](const FatTreeStats& s) { return s.agg_switches; });
  row("# ToR switches", [](const FatTreeStats& s) { return s.tor_switches; });
  row("# servers", [](const FatTreeStats& s) { return s.servers; });
  row("Total # devices", [](const FatTreeStats& s) { return s.TotalDevices(); });
  table.Print();

  std::printf("\nVerification against generated topologies:\n");
  for (int t = 0; t < 3; ++t) {
    if (measured_total[t] == 0) {
      std::printf("  Topology %c: skipped\n", 'A' + t);
      continue;
    }
    bool match = measured_total[t] == stats[t].TotalDevices();
    std::printf("  Topology %c: built %zu devices in %s — %s\n", 'A' + t, measured_total[t],
                HumanSeconds(build_seconds[t]).c_str(), match ? "MATCHES Table 3" : "MISMATCH");
    if (!match) {
      return 1;
    }
  }
  return 0;
}
