// Round-trip latency of the audit-service RPC path over loopback: one
// in-process AuditServer, one AuditClient, many sequential RPCs from a
// single connection. Unlike the CLI-driven walkthroughs this isolates the
// wire path (framing, trace-context extension, server dispatch, codecs)
// from process spawn and connect cost, which is what the EXPERIMENTS.md
// observability-overhead A/B needs.
//
//   bench_svc_rpc [--pings=5000] [--audits=200] [--mode=reactor|threaded]
//                 [--flight-recorder=on|off] [--profile-hz=0] [--json-out=...]
//
// --profile-hz > 0 runs the whole measurement inside a continuous
// sampling-profiler session (the `indaas serve --profile-hz` deployment),
// which is the EXPERIMENTS.md profiler-overhead A/B: same RPC mix with the
// profiler off vs. sampling at the production default of 99 Hz.

#include <cstdio>

#include "src/deps/depdb.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/profiler.h"
#include "src/svc/client.h"
#include "src/svc/server.h"
#include "src/util/file.h"
#include "src/util/flags.h"
#include "src/util/strings.h"
#include "src/util/timer.h"

namespace indaas {
namespace {

// Same small-but-structured DepDB the svc tests audit.
std::string BenchDepDbText() {
  DepDb db;
  db.Add(NetworkDependency{"S1", "Internet", {"ToR1", "Core1"}});
  db.Add(NetworkDependency{"S2", "Internet", {"ToR1", "Core1"}});
  db.Add(NetworkDependency{"S3", "Internet", {"ToR2", "Core1"}});
  db.Add(HardwareDependency{"S1", "Disk", "SED900"});
  db.Add(HardwareDependency{"S2", "Disk", "SED900"});
  db.Add(HardwareDependency{"S3", "Disk", "WD200"});
  db.Add(SoftwareDependency{"riak", "S1", {"libc6=2.13"}});
  db.Add(SoftwareDependency{"riak", "S2", {"libc6=2.13"}});
  db.Add(SoftwareDependency{"riak", "S3", {"libc6=2.14"}});
  return db.ExportText();
}

Status Run(int argc, char** argv) {
  int64_t pings = 5000;
  int64_t audits = 200;
  std::string mode = "reactor";
  std::string flight = "on";
  int64_t profile_hz = 0;
  std::string json_out;
  FlagSet flags;
  flags.AddInt("pings", &pings, "timed Ping round trips");
  flags.AddInt("audits", &audits, "timed structural-audit round trips");
  flags.AddString("mode", &mode, "server mode to measure: reactor | threaded");
  flags.AddString("flight-recorder", &flight,
                  "on (default) | off: A/B the always-on observability cost");
  flags.AddInt("profile-hz", &profile_hz,
               "run the measurement under a continuous profiling session at this"
               " frequency (0 = profiler off; 99 = production default)");
  flags.AddString("json-out", &json_out, "write machine-readable results here");
  INDAAS_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (flight != "on" && flight != "off") {
    return InvalidArgumentError("--flight-recorder must be on or off");
  }
  if (profile_hz < 0 || profile_hz > obs::Profiler::kMaxHz) {
    return InvalidArgumentError("--profile-hz out of range");
  }
  obs::FlightRecorder::Global().SetEnabled(flight == "on");

  svc::AuditServerOptions options;
  options.profile_hz = static_cast<uint32_t>(profile_hz);
  if (mode == "threaded") {
    options.mode = svc::ServerMode::kThreadPerRequest;
  } else if (mode != "reactor") {
    return InvalidArgumentError("--mode must be reactor or threaded");
  }
  svc::AuditServer server(options);
  INDAAS_RETURN_IF_ERROR(server.Start());
  INDAAS_ASSIGN_OR_RETURN(svc::AuditClient client,
                          svc::AuditClient::Connect(net::Endpoint{"127.0.0.1", server.port()}));
  INDAAS_RETURN_IF_ERROR(client.ImportDepDb(BenchDepDbText()).status());
  AuditSpecification spec;
  spec.candidate_deployments = {{"S1", "S2"}, {"S1", "S3"}};

  for (int i = 0; i < 100; ++i) {  // warm-up: page in both sides of the path
    INDAAS_RETURN_IF_ERROR(client.Ping());
  }
  WallTimer ping_timer;
  for (int64_t i = 0; i < pings; ++i) {
    INDAAS_RETURN_IF_ERROR(client.Ping());
  }
  const double ping_s = ping_timer.ElapsedSeconds();

  WallTimer audit_timer;
  for (int64_t i = 0; i < audits; ++i) {
    INDAAS_RETURN_IF_ERROR(client.AuditStructural(spec).status());
  }
  const double audit_s = audit_timer.ElapsedSeconds();
  server.Stop();

  const double ping_us = ping_s * 1e6 / static_cast<double>(pings);
  const double audit_us = audit_s * 1e6 / static_cast<double>(audits);
  std::printf("ping:  %lld round trips in %.3f s  (%.1f us/rpc)\n",
              static_cast<long long>(pings), ping_s, ping_us);
  std::printf("audit: %lld round trips in %.3f s  (%.1f us/rpc)\n",
              static_cast<long long>(audits), audit_s, audit_us);
  if (!json_out.empty()) {
    std::string doc = StrFormat(
        "{\n  \"benchmark\": \"svc_rpc\",\n  \"flight_recorder\": \"%s\",\n"
        "  \"profile_hz\": %lld,\n"
        "  \"ping\": {\"rpcs\": %lld, \"seconds\": %.6f, \"us_per_rpc\": %.2f},\n"
        "  \"audit\": {\"rpcs\": %lld, \"seconds\": %.6f, \"us_per_rpc\": %.2f}\n}\n",
        flight.c_str(), static_cast<long long>(profile_hz),
        static_cast<long long>(pings), ping_s, ping_us,
        static_cast<long long>(audits), audit_s, audit_us);
    INDAAS_RETURN_IF_ERROR(WriteFile(json_out, doc));
  }
  return Status::Ok();
}

}  // namespace
}  // namespace indaas

int main(int argc, char** argv) {
  if (indaas::Status status = indaas::Run(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
