// Reproduces the paper's §4.2 finding that motivates P-SOP: generic secure
// multi-party computation (the Xiao et al. approach) "performs adequately
// only on small dependency datasets" — circuit-based PSI cardinality costs
// Θ(n^2) AND gates, each one Beaver triple plus communication, while P-SOP
// is Θ(k·n) public-key operations.
//
//   bench_smpc_baseline [--n-max=400] [--hash-bits=24] [--group-bits=768]

#include <cstdio>

#include "src/pia/network_model.h"
#include "src/pia/psop.h"
#include "src/smpc/psi_circuit.h"
#include "src/util/flags.h"
#include "src/util/stats.h"
#include "src/util/strings.h"
#include "src/util/timer.h"

using namespace indaas;

namespace {

std::vector<std::string> MakeSet(size_t party, size_t n) {
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t e = 0; e < n; ++e) {
    // Half shared, half unique.
    out.push_back(e < n / 2 ? "shared-" + std::to_string(e)
                            : StrFormat("p%zu-%zu", party, e));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t n_max = 400;
  int64_t hash_bits = 24;
  int64_t group_bits = 768;
  FlagSet flags;
  flags.AddInt("n-max", &n_max, "largest per-party set size");
  flags.AddInt("hash-bits", &hash_bits, "SMPC element hash width");
  flags.AddInt("group-bits", &group_bits, "P-SOP group size");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("Circuit-SMPC (GMW, %lld-bit hashes) vs P-SOP (%lld-bit commutative\n"
              "encryption), two parties, intersection cardinality:\n\n",
              (long long)hash_bits, (long long)group_bits);
  const NetworkModel wan = WideAreaNetwork();
  TextTable table({"n", "SMPC AND gates", "SMPC bytes/party", "SMPC time", "SMPC est. WAN",
                   "P-SOP bytes/party", "P-SOP time", "P-SOP est. WAN"});
  for (int64_t n = 50; n <= n_max; n *= 2) {
    auto set0 = MakeSet(0, static_cast<size_t>(n));
    auto set1 = MakeSet(1, static_cast<size_t>(n));

    SmpcPsiOptions smpc;
    smpc.hash_bits = static_cast<size_t>(hash_bits);
    WallTimer smpc_timer;
    auto smpc_result = RunSmpcIntersectionCardinality(set0, set1, smpc);
    if (!smpc_result.ok()) {
      std::fprintf(stderr, "%s\n", smpc_result.status().ToString().c_str());
      return 1;
    }
    double smpc_seconds = smpc_timer.ElapsedSeconds();

    PsopOptions psop;
    psop.group_bits = static_cast<size_t>(group_bits);
    WallTimer psop_timer;
    auto psop_result = RunPsop({set0, set1}, psop);
    if (!psop_result.ok()) {
      std::fprintf(stderr, "%s\n", psop_result.status().ToString().c_str());
      return 1;
    }
    double psop_seconds = psop_timer.ElapsedSeconds();
    if (smpc_result->intersection != psop_result->intersection) {
      std::fprintf(stderr, "protocol disagreement at n=%lld: %zu vs %zu\n", (long long)n,
                   smpc_result->intersection, psop_result->intersection);
      return 1;
    }
    // Cross-provider wall clock on a 100 Mbps / 50 ms WAN: SMPC pays a
    // round-trip per AND layer; P-SOP pays 2k-1 = 3 dataset hops.
    PartyStats smpc_stats = smpc_result->party_stats[0];
    smpc_stats.compute_seconds = smpc_seconds;
    PartyStats psop_stats = psop_result->party_stats[0];
    psop_stats.compute_seconds = psop_seconds;
    table.AddRow({std::to_string(n), std::to_string(smpc_result->and_gates),
                  HumanBytes(static_cast<double>(smpc_result->party_stats[0].bytes_sent +
                                                 smpc_result->party_stats[0].bytes_received)),
                  HumanSeconds(smpc_seconds),
                  HumanSeconds(wan.EstimateWallSeconds(smpc_stats, smpc_result->rounds)),
                  HumanBytes(static_cast<double>(psop_result->party_stats[0].bytes_sent)),
                  HumanSeconds(psop_seconds),
                  HumanSeconds(wan.EstimateWallSeconds(psop_stats, 3))});
  }
  table.Print();
  std::printf(
      "\nSMPC's AND-gate count (and hence its triple preprocessing and traffic) grows\n"
      "quadratically in n; doubling n quadruples the work. The WAN estimate adds the\n"
      "cost in-process evaluation hides: one round-trip per AND layer for SMPC vs\n"
      "three dataset hops for two-party P-SOP. This is the scaling wall (§4.2) that\n"
      "led the paper to P-SOP.\n");
  return 0;
}
