// Reproduces Figure 8 (§6.3.2): per-provider bandwidth (8a) and computation
// (8b) of the P-SOP protocol vs. the Kissner–Song (KS) baseline, for
// k = 2,3,4 providers and dataset sizes swept over a range.
//
// Defaults are laptop-sized (n up to 4,000; 512/768-bit keys); the paper's
// full scale (n to 100,000; 1024-bit keys) is reachable via flags:
//   bench_fig8_pia_overheads --n-min=1000 --n-max=100000 --group-bits=1024
//                            --paillier-bits=1024

#include <cstdio>
#include <vector>

#include "src/pia/ks.h"
#include "src/pia/psop.h"
#include "src/util/flags.h"
#include "src/util/stats.h"
#include "src/util/strings.h"

using namespace indaas;

namespace {

std::vector<std::vector<std::string>> MakeDatasets(size_t k, size_t n) {
  // Half the elements are common across providers; the rest are unique —
  // a realistic overlap profile that exercises both count paths.
  std::vector<std::vector<std::string>> datasets(k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t e = 0; e < n; ++e) {
      if (e < n / 2) {
        datasets[i].push_back("shared-" + std::to_string(e));
      } else {
        datasets[i].push_back(StrFormat("p%zu-", i) + std::to_string(e));
      }
    }
  }
  return datasets;
}

struct Measurement {
  double mb_sent_per_party = 0;
  double compute_seconds_per_party = 0;
};

Measurement Summarize(const std::vector<PartyStats>& stats) {
  Measurement m;
  for (const PartyStats& party : stats) {
    m.mb_sent_per_party += static_cast<double>(party.bytes_sent) / (1024.0 * 1024.0);
    m.compute_seconds_per_party += party.compute_seconds;
  }
  m.mb_sent_per_party /= static_cast<double>(stats.size());
  m.compute_seconds_per_party /= static_cast<double>(stats.size());
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t n_min = 250;
  int64_t n_max = 2000;
  int64_t group_bits = 768;
  int64_t paillier_bits = 512;
  int64_t k_max = 4;
  int64_t ks_n_cap = 1000;
  FlagSet flags;
  flags.AddInt("n-min", &n_min, "smallest dataset size");
  flags.AddInt("n-max", &n_max, "largest dataset size (paper: 100000)");
  flags.AddInt("group-bits", &group_bits, "P-SOP commutative group bits (paper: 1024)");
  flags.AddInt("paillier-bits", &paillier_bits, "KS Paillier modulus bits (paper: 1024)");
  flags.AddInt("k-max", &k_max, "largest provider count (paper: 4)");
  flags.AddInt("ks-n-cap", &ks_n_cap, "skip KS above this n (it is the slow baseline)");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("Figure 8: PIA system overheads — P-SOP(k) vs KS(k), per provider.\n");
  std::printf("P-SOP: %lld-bit commutative encryption; KS: %lld-bit Paillier "
              "(%lld-bit ciphertexts).\n\n",
              (long long)group_bits, (long long)paillier_bits, (long long)(2 * paillier_bits));

  TextTable table({"Protocol", "k", "n", "Bandwidth sent (8a)", "Compute time (8b)"});
  for (int64_t k = 2; k <= k_max; ++k) {
    for (int64_t n = n_min; n <= n_max; n *= 2) {
      auto datasets = MakeDatasets(static_cast<size_t>(k), static_cast<size_t>(n));
      PsopOptions psop;
      psop.group_bits = static_cast<size_t>(group_bits);
      auto psop_result = RunPsop(datasets, psop);
      if (!psop_result.ok()) {
        std::fprintf(stderr, "%s\n", psop_result.status().ToString().c_str());
        return 1;
      }
      Measurement m = Summarize(psop_result->party_stats);
      table.AddRow({StrFormat("P-SOP(%lld)", (long long)k), std::to_string(k), std::to_string(n),
                    StrFormat("%.2f MB", m.mb_sent_per_party),
                    HumanSeconds(m.compute_seconds_per_party)});
    }
  }
  for (int64_t k = 2; k <= k_max; ++k) {
    for (int64_t n = n_min; n <= n_max; n *= 2) {
      if (n > ks_n_cap) {
        table.AddRow({StrFormat("KS(%lld)", (long long)k), std::to_string(k), std::to_string(n),
                      "(skipped)", "(skipped)"});
        continue;
      }
      auto datasets = MakeDatasets(static_cast<size_t>(k), static_cast<size_t>(n));
      KsOptions ks;
      ks.paillier_bits = static_cast<size_t>(paillier_bits);
      auto ks_result = RunKsIntersectionCardinality(datasets, ks);
      if (!ks_result.ok()) {
        std::fprintf(stderr, "%s\n", ks_result.status().ToString().c_str());
        return 1;
      }
      Measurement m = Summarize(ks_result->party_stats);
      table.AddRow({StrFormat("KS(%lld)", (long long)k), std::to_string(k), std::to_string(n),
                    StrFormat("%.2f MB", m.mb_sent_per_party),
                    HumanSeconds(m.compute_seconds_per_party)});
    }
  }
  table.Print();
  std::printf(
      "\nPaper's shape: (8a) KS bandwidth grows faster with k than P-SOP's; (8b) P-SOP\n"
      "outperforms KS by orders of magnitude in computation, both roughly linear in n.\n");
  return 0;
}
