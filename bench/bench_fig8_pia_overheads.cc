// Reproduces Figure 8 (§6.3.2): per-provider bandwidth (8a) and computation
// (8b) of the P-SOP protocol vs. the Kissner–Song (KS) baseline, for
// k = 2,3,4 providers and dataset sizes swept over a range.
//
// Defaults are laptop-sized (n up to 4,000; 512/768-bit keys); the paper's
// full scale (n to 100,000; 1024-bit keys) is reachable via flags:
//   bench_fig8_pia_overheads --n-min=1000 --n-max=100000 --group-bits=1024
//                            --paillier-bits=1024
//
// --real additionally runs each P-SOP point as k OS threads speaking the
// real TCP wire protocol over loopback, cross-validating the NetworkModel
// estimate against measured wall time (--json-out writes the deltas).

#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "src/pia/ks.h"
#include "src/pia/network_model.h"
#include "src/pia/psop.h"
#include "src/svc/pia_peer.h"
#include "src/util/file.h"
#include "src/util/flags.h"
#include "src/util/stats.h"
#include "src/util/strings.h"
#include "src/util/timer.h"

using namespace indaas;

namespace {

std::vector<std::vector<std::string>> MakeDatasets(size_t k, size_t n) {
  // Half the elements are common across providers; the rest are unique —
  // a realistic overlap profile that exercises both count paths.
  std::vector<std::vector<std::string>> datasets(k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t e = 0; e < n; ++e) {
      if (e < n / 2) {
        datasets[i].push_back("shared-" + std::to_string(e));
      } else {
        datasets[i].push_back(StrFormat("p%zu-", i) + std::to_string(e));
      }
    }
  }
  return datasets;
}

struct Measurement {
  double mb_sent_per_party = 0;
  double compute_seconds_per_party = 0;
};

Measurement Summarize(const std::vector<PartyStats>& stats) {
  Measurement m;
  for (const PartyStats& party : stats) {
    m.mb_sent_per_party += static_cast<double>(party.bytes_sent) / (1024.0 * 1024.0);
    m.compute_seconds_per_party += party.compute_seconds;
  }
  m.mb_sent_per_party /= static_cast<double>(stats.size());
  m.compute_seconds_per_party /= static_cast<double>(stats.size());
  return m;
}

// One --real data point: a k-thread loopback ring session for one (k, n).
struct RealPoint {
  size_t k = 0;
  size_t n = 0;
  double jaccard = 0;
  double measured_wall_s = 0;   // wall time of the whole socket session
  double estimated_wall_s = 0;  // NetworkModel estimate on the measured stats
  uint64_t bytes_sent = 0;      // real wire bytes, summed over the peers
  bool matches_inprocess = false;
};

// Runs the socket-backed ring over loopback: k threads, each one PiaPeer.
// The estimate uses the per-peer stats the real run measured (compute +
// actual wire bytes), so the delta isolates what the model leaves out —
// scheduling, syscall overhead and loopback's real bandwidth.
Result<RealPoint> RunRealPoint(const std::vector<std::vector<std::string>>& datasets,
                               const PsopOptions& psop, const NetworkModel& model) {
  const size_t k = datasets.size();
  std::vector<svc::PiaPeer> peers;
  svc::PiaPeerOptions options;
  options.psop = psop;
  options.self_index = 0;
  peers.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    INDAAS_ASSIGN_OR_RETURN(svc::PiaPeer peer, svc::PiaPeer::Listen(0));
    options.peers.push_back(net::Endpoint{"127.0.0.1", peer.listen_port()});
    peers.push_back(std::move(peer));
  }
  std::vector<Result<PsopResult>> results(k, InternalError("peer did not run"));
  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    threads.emplace_back([&, i] {
      svc::PiaPeerOptions mine = options;
      mine.self_index = i;
      results[i] = peers[i].RunPsop(datasets[i], mine);
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  RealPoint point;
  point.k = k;
  point.n = datasets[0].size();
  point.measured_wall_s = timer.ElapsedSeconds();
  // The session's ring hops: 1 handshake + k encrypt hops + k-1 share hops.
  const size_t rounds = 2 * k;
  for (size_t i = 0; i < k; ++i) {
    INDAAS_RETURN_IF_ERROR(results[i].status());
    const PartyStats& stats = results[i]->party_stats[i];
    point.estimated_wall_s =
        std::max(point.estimated_wall_s, model.EstimateWallSeconds(stats, rounds));
    point.bytes_sent += stats.bytes_sent;
  }
  point.jaccard = results[0]->jaccard;
  INDAAS_ASSIGN_OR_RETURN(PsopResult reference, RunPsop(datasets, psop));
  point.matches_inprocess = true;
  for (size_t i = 0; i < k; ++i) {
    if (results[i]->jaccard != reference.jaccard ||
        results[i]->intersection != reference.intersection ||
        results[i]->union_size != reference.union_size) {
      point.matches_inprocess = false;
    }
  }
  return point;
}

// One per-method data point: bytes on the wire and compute time of exact
// P-SOP vs MinHash-compressed P-SOP vs sketch exchange at the same (k, n).
struct MethodPoint {
  const char* method = "";
  size_t k = 0;
  size_t n = 0;
  double jaccard = 0;
  double bytes_sent_per_party = 0;
  double compute_s_per_party = 0;
};

std::string PointsToJson(const std::vector<MethodPoint>& methods,
                         const std::vector<RealPoint>& real_points) {
  std::string json = "{\n  \"mode\": \"fig8-pia-overheads\",\n  \"methods\": [\n";
  for (size_t i = 0; i < methods.size(); ++i) {
    const MethodPoint& p = methods[i];
    json += StrFormat(
        "    {\"method\": \"%s\", \"k\": %zu, \"n\": %zu, \"jaccard\": %.6f, "
        "\"bytes_sent_per_party\": %.0f, \"compute_s_per_party\": %.6f}%s\n",
        p.method, p.k, p.n, p.jaccard, p.bytes_sent_per_party, p.compute_s_per_party,
        i + 1 < methods.size() ? "," : "");
  }
  json += "  ],\n  \"real_points\": [\n";
  for (size_t i = 0; i < real_points.size(); ++i) {
    const RealPoint& p = real_points[i];
    json += StrFormat(
        "    {\"k\": %zu, \"n\": %zu, \"jaccard\": %.6f, \"measured_wall_s\": %.6f, "
        "\"estimated_wall_s\": %.6f, \"delta_s\": %.6f, \"delta_ratio\": %.4f, "
        "\"bytes_sent\": %llu, \"matches_inprocess\": %s}%s\n",
        p.k, p.n, p.jaccard, p.measured_wall_s, p.estimated_wall_s,
        p.measured_wall_s - p.estimated_wall_s,
        p.estimated_wall_s > 0 ? p.measured_wall_s / p.estimated_wall_s : 0.0,
        static_cast<unsigned long long>(p.bytes_sent),
        p.matches_inprocess ? "true" : "false", i + 1 < real_points.size() ? "," : "");
  }
  json += "  ]\n}\n";
  return json;
}

MethodPoint SummarizePoint(const char* method, size_t k, size_t n, const PsopResult& result) {
  Measurement m = Summarize(result.party_stats);
  MethodPoint point;
  point.method = method;
  point.k = k;
  point.n = n;
  point.jaccard = result.jaccard;
  point.bytes_sent_per_party = m.mb_sent_per_party * 1024.0 * 1024.0;
  point.compute_s_per_party = m.compute_seconds_per_party;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t n_min = 250;
  int64_t n_max = 2000;
  int64_t group_bits = 768;
  int64_t paillier_bits = 512;
  int64_t k_max = 4;
  int64_t ks_n_cap = 1000;
  bool real = false;
  double rtt_ms = 0.05;
  double bandwidth_mbps = 16000.0;
  std::string json_out;
  FlagSet flags;
  flags.AddInt("n-min", &n_min, "smallest dataset size");
  flags.AddInt("n-max", &n_max, "largest dataset size (paper: 100000)");
  flags.AddInt("group-bits", &group_bits, "P-SOP commutative group bits (paper: 1024)");
  flags.AddInt("paillier-bits", &paillier_bits, "KS Paillier modulus bits (paper: 1024)");
  flags.AddInt("k-max", &k_max, "largest provider count (paper: 4)");
  flags.AddInt("ks-n-cap", &ks_n_cap, "skip KS above this n (it is the slow baseline)");
  flags.AddBool("real", &real,
                "also run each P-SOP point over real loopback sockets and compare "
                "the NetworkModel estimate with measured wall time");
  flags.AddDouble("rtt-ms", &rtt_ms, "--real: model RTT in milliseconds (loopback-ish)");
  flags.AddDouble("bandwidth-mbps", &bandwidth_mbps,
                  "--real: model bandwidth in MB/s (loopback-ish)");
  flags.AddString("json-out", &json_out,
                  "write per-method bytes-on-wire (and --real deltas) here");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("Figure 8: PIA system overheads — P-SOP(k) vs KS(k), per provider.\n");
  std::printf("P-SOP: %lld-bit commutative encryption; KS: %lld-bit Paillier "
              "(%lld-bit ciphertexts).\n\n",
              (long long)group_bits, (long long)paillier_bits, (long long)(2 * paillier_bits));

  std::vector<MethodPoint> method_points;
  TextTable table({"Protocol", "k", "n", "Bandwidth sent (8a)", "Compute time (8b)"});
  for (int64_t k = 2; k <= k_max; ++k) {
    for (int64_t n = n_min; n <= n_max; n *= 2) {
      auto datasets = MakeDatasets(static_cast<size_t>(k), static_cast<size_t>(n));
      PsopOptions psop;
      psop.group_bits = static_cast<size_t>(group_bits);
      auto psop_result = RunPsop(datasets, psop);
      if (!psop_result.ok()) {
        std::fprintf(stderr, "%s\n", psop_result.status().ToString().c_str());
        return 1;
      }
      Measurement m = Summarize(psop_result->party_stats);
      table.AddRow({StrFormat("P-SOP(%lld)", (long long)k), std::to_string(k), std::to_string(n),
                    StrFormat("%.2f MB", m.mb_sent_per_party),
                    HumanSeconds(m.compute_seconds_per_party)});
      method_points.push_back(SummarizePoint("psop-exact", static_cast<size_t>(k),
                                             static_cast<size_t>(n), *psop_result));
      // The compressed variants at the same point, for the per-method
      // bytes-on-wire comparison (--json-out): MinHash-compressed P-SOP and
      // the encryption-free sketch exchange.
      auto minhash_result = RunPsopWithMinHash(datasets, 256, psop);
      if (!minhash_result.ok()) {
        std::fprintf(stderr, "%s\n", minhash_result.status().ToString().c_str());
        return 1;
      }
      method_points.push_back(SummarizePoint("psop-minhash", static_cast<size_t>(k),
                                             static_cast<size_t>(n), *minhash_result));
      auto sketch_result = RunPsopWithSketch(datasets, 256, psop);
      if (!sketch_result.ok()) {
        std::fprintf(stderr, "%s\n", sketch_result.status().ToString().c_str());
        return 1;
      }
      method_points.push_back(SummarizePoint("sketch", static_cast<size_t>(k),
                                             static_cast<size_t>(n), *sketch_result));
    }
  }
  for (int64_t k = 2; k <= k_max; ++k) {
    for (int64_t n = n_min; n <= n_max; n *= 2) {
      if (n > ks_n_cap) {
        table.AddRow({StrFormat("KS(%lld)", (long long)k), std::to_string(k), std::to_string(n),
                      "(skipped)", "(skipped)"});
        continue;
      }
      auto datasets = MakeDatasets(static_cast<size_t>(k), static_cast<size_t>(n));
      KsOptions ks;
      ks.paillier_bits = static_cast<size_t>(paillier_bits);
      auto ks_result = RunKsIntersectionCardinality(datasets, ks);
      if (!ks_result.ok()) {
        std::fprintf(stderr, "%s\n", ks_result.status().ToString().c_str());
        return 1;
      }
      Measurement m = Summarize(ks_result->party_stats);
      table.AddRow({StrFormat("KS(%lld)", (long long)k), std::to_string(k), std::to_string(n),
                    StrFormat("%.2f MB", m.mb_sent_per_party),
                    HumanSeconds(m.compute_seconds_per_party)});
    }
  }
  table.Print();
  std::printf(
      "\nPaper's shape: (8a) KS bandwidth grows faster with k than P-SOP's; (8b) P-SOP\n"
      "outperforms KS by orders of magnitude in computation, both roughly linear in n.\n");

  std::vector<RealPoint> points;
  if (real) {
    NetworkModel model;
    model.rtt_seconds = rtt_ms / 1000.0;
    model.bandwidth_bytes_per_s = bandwidth_mbps * 1e6;
    std::printf("\n--real: socket-backed P-SOP over loopback (model: %.3f ms RTT, "
                "%.0f MB/s)\n\n", rtt_ms, bandwidth_mbps);
    TextTable real_table(
        {"k", "n", "Measured wall", "Estimated wall", "Delta", "Jaccard matches"});
    for (int64_t k = 2; k <= k_max; ++k) {
      for (int64_t n = n_min; n <= n_max; n *= 2) {
        auto datasets = MakeDatasets(static_cast<size_t>(k), static_cast<size_t>(n));
        PsopOptions psop;
        psop.group_bits = static_cast<size_t>(group_bits);
        auto point = RunRealPoint(datasets, psop, model);
        if (!point.ok()) {
          std::fprintf(stderr, "%s\n", point.status().ToString().c_str());
          return 1;
        }
        real_table.AddRow({std::to_string(k), std::to_string(n),
                           HumanSeconds(point->measured_wall_s),
                           HumanSeconds(point->estimated_wall_s),
                           HumanSeconds(point->measured_wall_s - point->estimated_wall_s),
                           point->matches_inprocess ? "yes" : "NO"});
        points.push_back(*point);
      }
    }
    real_table.Print();
    std::printf("\nDelta is what the model leaves out: thread scheduling, syscalls and\n"
                "loopback's real bandwidth. Jaccard must match the in-process engine.\n");
  }
  if (!json_out.empty()) {
    if (Status s = WriteFile(json_out, PointsToJson(method_points, points)); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote per-method bytes and deltas -> %s\n", json_out.c_str());
  }
  return 0;
}
