// Reproduces the Fig. 6a network case study (§6.2.1): audit all two-way
// redundancy deployments in the 33-ToR / 4-core data center, count how many
// have no unexpected risk group (paper: 27 of 190 = 14%), report the most
// independent pair, and validate it by failure probability with every
// network device at p = 0.1 (as the paper does).
//
//   bench_fig6a_network_case [--racks=20] [--rounds=1000000] [--exact]

#include <algorithm>
#include <cstdio>

#include "src/acquire/nsdminer_sim.h"
#include "src/agent/agent.h"
#include "src/sia/builder.h"
#include "src/sia/ranking.h"
#include "src/topology/case_study.h"
#include "src/util/flags.h"
#include "src/util/strings.h"
#include "src/util/timer.h"

using namespace indaas;

int main(int argc, char** argv) {
  int64_t racks = 20;
  int64_t rounds = 1000000;
  int64_t flows = 80;
  bool exact = false;
  int64_t threads = 4;
  FlagSet flags;
  flags.AddInt("racks", &racks, "candidate racks (paper compares C(20,2)=190 deployments)");
  flags.AddInt("rounds", &rounds, "failure sampling rounds (paper: 10^6)");
  flags.AddInt("flows", &flows, "traffic flows per server for NSDMiner");
  flags.AddBool("exact", &exact, "use the minimal-RG algorithm instead of sampling");
  flags.AddInt("threads", &threads, "sampling worker threads");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  auto topo = BuildCaseStudyDatacenter(33, 1);
  if (!topo.ok()) {
    std::fprintf(stderr, "%s\n", topo.status().ToString().c_str());
    return 1;
  }
  std::printf("Case study topology: 33 ToR switches (e1..e33), 4 core routers "
              "(b1,b2,c1,c2), %zu devices total.\n\n",
              topo->DeviceCount());

  // Acquisition via simulated NSDMiner.
  NsdMinerSim miner(3);
  Rng rng(1);
  for (int64_t r = 1; r <= racks; ++r) {
    auto generated = GenerateTraffic(*topo, StrFormat("rack%lld-srv1", (long long)r), "Internet",
                                     static_cast<size_t>(flows), rng);
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    miner.IngestFlows(*generated);
  }

  AuditingAgent agent;
  agent.AddModule(&miner);
  AuditSpecification spec;
  for (int64_t a = 1; a <= racks; ++a) {
    for (int64_t b = a + 1; b <= racks; ++b) {
      spec.candidate_deployments.push_back({StrFormat("rack%lld-srv1", (long long)a),
                                            StrFormat("rack%lld-srv1", (long long)b)});
    }
  }
  spec.algorithm = exact ? RgAlgorithm::kMinimal : RgAlgorithm::kSampling;
  spec.sampling_rounds = static_cast<size_t>(rounds) / spec.candidate_deployments.size() + 1;
  spec.sampling_bias = 0.1;
  spec.threads = static_cast<size_t>(threads);
  if (Status s = agent.AcquireDependencies(spec); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  WallTimer timer;
  auto report = agent.AuditStructural(spec);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  double audit_seconds = timer.ElapsedSeconds();

  size_t clean = 0;
  for (const DeploymentAudit& audit : report->deployments) {
    if (audit.unexpected_rgs == 0) {
      ++clean;
    }
  }
  size_t total = report->deployments.size();
  std::printf("Audited %zu two-way redundancy deployments in %s (%s, %s).\n", total,
              HumanSeconds(audit_seconds).c_str(), exact ? "minimal-RG" : "failure sampling",
              exact ? "exact" : StrFormat("%zu rounds/deployment", spec.sampling_rounds).c_str());
  std::printf("\n  ours : %zu of %zu deployments (%.0f%%) have no unexpected RG\n", clean, total,
              100.0 * static_cast<double>(clean) / static_cast<double>(total));
  std::printf("  paper: 27 of 190 deployments (14%%) have no unexpected RG\n\n");
  const DeploymentAudit& best = report->deployments.front();
  std::printf("Most independent deployment (ours): {%s}\n", Join(best.servers, ", ").c_str());
  std::printf("  (paper's winner on its unpublished wiring: {Rack 5, Rack 29})\n\n");

  // Validation: with every network device at failure probability 0.1, the
  // suggested deployment must have the lowest outage probability.
  FailureProbabilityModel uniform(0.1);
  std::vector<std::pair<double, std::string>> outage;
  for (const auto& servers : spec.candidate_deployments) {
    BuildOptions build;
    build.prob_model = &uniform;
    auto graph = BuildDeploymentFaultGraph(agent.depdb(), servers, build);
    if (!graph.ok()) {
      std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
      return 1;
    }
    auto groups = ComputeMinimalRiskGroups(*graph);
    if (!groups.ok()) {
      std::fprintf(stderr, "%s\n", groups.status().ToString().c_str());
      return 1;
    }
    ProbabilityRankingOptions prob;
    prob.default_prob = 0.1;
    auto ranking = RankByImportance(*graph, groups->groups, prob);
    if (!ranking.ok()) {
      std::fprintf(stderr, "%s\n", ranking.status().ToString().c_str());
      return 1;
    }
    outage.emplace_back(ranking->top_event_prob, Join(servers, ", "));
  }
  std::sort(outage.begin(), outage.end());
  std::printf("Failure-probability validation (all devices at p=0.1):\n");
  for (size_t i = 0; i < std::min<size_t>(3, outage.size()); ++i) {
    std::printf("  Pr(outage)=%.6f  {%s}\n", outage[i].first, outage[i].second.c_str());
  }
  double winner_prob = -1.0;
  std::string winner_name = Join(best.servers, ", ");
  for (const auto& [prob, name] : outage) {
    if (name == winner_name) {
      winner_prob = prob;
      break;
    }
  }
  bool winner_validated = winner_prob >= 0.0 && winner_prob <= outage.front().first + 1e-12;
  std::printf("\nSuggested deployment %s the lowest failure probability (paper: it is).\n",
              winner_validated ? "HAS" : "does NOT have");
  return winner_validated ? 0 : 1;
}
