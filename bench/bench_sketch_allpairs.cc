// Provider-scale all-pairs audit benchmark (DESIGN.md §8): accuracy vs
// bytes vs time of the sketch+LSH engine against the exact per-pair P-SOP
// baseline, on a synthetic fleet of 64–256 providers.
//
// The fleet has a small global core every provider shares, ~15 planted
// high-similarity pairs (true Jaccard 0.55–0.90 — the correlated-failure
// risks the audit must surface) and background pairs near the core overlap.
// The benchmark reports, and --json-out persists:
//
//   ring_exec_reduction  pairs an exact audit would run (N(N-1)/2) divided
//                        by the LSH candidate pairs actually scored
//   recall_top10         fraction of the true top-10 highest-Jaccard pairs
//                        the sketch audit reports
//   simd_speedup         scalar ns/pair over SIMD ns/pair for fingerprint
//                        intersection, measured across ALL distinct pairs
//                        (rotating pairs keeps the branch predictor honest —
//                        a single repeated pair understates scalar cost)
//   bytes/time           sketch bytes + wall vs an exact-baseline estimate
//                        calibrated from real P-SOP runs and extrapolated
//
// The exact baseline is calibrated at --calib-group-bits (default 768, below
// the paper's 1024) from --calib-runs real two-party P-SOP executions, so
// the extrapolated exact cost is a *lower bound* — the reduction factors
// reported here are conservative.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/pia/psop.h"
#include "src/sketch/allpairs.h"
#include "src/sketch/intersect.h"
#include "src/sketch/sketch.h"
#include "src/util/file.h"
#include "src/util/flags.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/strings.h"
#include "src/util/timer.h"

using namespace indaas;

namespace {

struct Fleet {
  std::vector<std::vector<std::string>> sets;
  // Planted (a, b) pairs with their target Jaccard, ascending by pair index.
  std::vector<sketch::ScoredPair> planted;
};

// Builds the synthetic fleet. Provider 2i and 2i+1 form planted pair i when
// i < planted_pairs: they share a fraction s = 2J/(1+J) of their elements so
// their Jaccard lands on target J (spread linearly over [0.55, 0.90]).
// Everyone additionally shares a `core_frac` global core, so background
// pairs sit near J ~= core_frac/(2-core_frac), not at zero.
Fleet MakeFleet(size_t providers, size_t elements, size_t planted_pairs, double core_frac) {
  Fleet fleet;
  fleet.sets.resize(providers);
  const size_t core = static_cast<size_t>(static_cast<double>(elements) * core_frac);
  std::vector<std::string> core_elems;
  core_elems.reserve(core);
  for (size_t e = 0; e < core; ++e) {
    core_elems.push_back("core-" + std::to_string(e));
  }
  for (size_t p = 0; p < providers; ++p) {
    std::vector<std::string>& set = fleet.sets[p];
    set = core_elems;
    const bool is_partner = p % 2 == 1 && p / 2 < planted_pairs;
    size_t shared = 0;
    if (is_partner) {
      const size_t pair = p / 2;
      const double target =
          0.55 + 0.35 * (planted_pairs > 1
                             ? static_cast<double>(pair) / static_cast<double>(planted_pairs - 1)
                             : 0.0);
      const double share_frac = 2.0 * target / (1.0 + target);
      shared = static_cast<size_t>(static_cast<double>(elements) * share_frac);
      shared = std::min(shared, elements - core);
      // Copy from the partner's unique pool (provider p-1, same naming).
      for (size_t e = 0; e < shared; ++e) {
        set.push_back(StrFormat("p%zu-%zu", p - 1, e));
      }
    }
    for (size_t e = shared; e + core < elements; ++e) {
      set.push_back(StrFormat("p%zu-%zu", p, e));
    }
  }
  for (size_t pair = 0; pair < planted_pairs && 2 * pair + 1 < providers; ++pair) {
    sketch::ScoredPair entry;
    entry.a = static_cast<uint32_t>(2 * pair);
    entry.b = static_cast<uint32_t>(2 * pair + 1);
    fleet.planted.push_back(entry);
  }
  return fleet;
}

double ExactJaccard(const std::vector<std::string>& a, const std::vector<std::string>& b) {
  std::set<std::string> sa(a.begin(), a.end());
  std::set<std::string> sb(b.begin(), b.end());
  size_t inter = 0;
  for (const std::string& e : sa) {
    inter += sb.count(e);
  }
  const size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

struct PairKey {
  uint32_t a, b;
  bool operator<(const PairKey& o) const { return a != o.a ? a < o.a : b < o.b; }
};

// Times IntersectCount over every distinct provider pair at `level`,
// repeating the full sweep until it has run at least min_seconds. Rotating
// through distinct pairs is deliberate: it defeats branch-predictor
// memorization of any single merge pattern.
double NsPerPairAllPairs(const std::vector<std::vector<uint32_t>>& fps,
                         sketch::SimdLevel level, double min_seconds,
                         uint64_t* checksum) {
  const size_t n = fps.size();
  size_t pairs = 0;
  size_t sweeps = 0;
  uint64_t sum = 0;
  WallTimer timer;
  do {
    uint64_t sweep_sum = 0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        sweep_sum += sketch::IntersectCount(fps[i].data(), fps[i].size(), fps[j].data(),
                                            fps[j].size(), level);
        ++pairs;
      }
    }
    if (sweeps++ == 0) {
      sum = sweep_sum;  // one sweep's checksum — comparable across levels
    }
  } while (timer.ElapsedSeconds() < min_seconds);
  *checksum = sum;
  return timer.ElapsedSeconds() * 1e9 / static_cast<double>(pairs);
}

}  // namespace

int main(int argc, char** argv) {
  int64_t providers = 64;
  int64_t elements = 2000;
  int64_t planted = 15;
  int64_t sketch_k = 256;
  int64_t lsh_bands = 64;
  int64_t lsh_rows = 4;
  int64_t seed = 1;
  int64_t calib_runs = 3;
  int64_t calib_group_bits = 768;
  double core_frac = 0.05;
  double simd_seconds = 0.3;
  bool skip_calib = false;
  std::string k_sweep_spec = "64,128,256,512";
  std::string json_out;
  FlagSet flags;
  flags.AddInt("providers", &providers, "fleet size (paper-scale: 64-256)");
  flags.AddInt("elements", &elements, "components per provider");
  flags.AddInt("planted", &planted, "planted high-similarity pairs (J in [0.55, 0.90])");
  flags.AddInt("sketch-k", &sketch_k, "registers per sketch");
  flags.AddInt("lsh-bands", &lsh_bands, "LSH bands");
  flags.AddInt("lsh-rows", &lsh_rows, "LSH rows per band");
  flags.AddInt("seed", &seed, "sketch permutation seed");
  flags.AddInt("calib-runs", &calib_runs, "real P-SOP runs for the exact-baseline estimate");
  flags.AddInt("calib-group-bits", &calib_group_bits,
               "group bits for the calibration runs (paper: 1024)");
  flags.AddDouble("core-frac", &core_frac, "global core fraction shared by every provider");
  flags.AddDouble("simd-seconds", &simd_seconds, "min measurement window per SIMD level");
  flags.AddBool("skip-calib", &skip_calib, "skip the real P-SOP calibration runs");
  flags.AddString("k-sweep", &k_sweep_spec, "sketch-k values for the accuracy-vs-bytes sweep");
  flags.AddString("json-out", &json_out, "write the machine-readable results here");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const size_t n_prov = static_cast<size_t>(providers);
  const size_t pairs_possible = n_prov * (n_prov - 1) / 2;

  std::printf("All-pairs sketch audit: %zu providers x %lld components, %lld planted pairs\n",
              n_prov, (long long)elements, (long long)planted);
  Fleet fleet = MakeFleet(n_prov, static_cast<size_t>(elements),
                          static_cast<size_t>(planted), core_frac);

  // Ground truth: exact Jaccard of every pair -> true top-10.
  std::vector<sketch::ScoredPair> truth;
  truth.reserve(pairs_possible);
  for (uint32_t i = 0; i < n_prov; ++i) {
    for (uint32_t j = i + 1; j < n_prov; ++j) {
      sketch::ScoredPair p;
      p.a = i;
      p.b = j;
      p.jaccard = ExactJaccard(fleet.sets[i], fleet.sets[j]);
      truth.push_back(p);
    }
  }
  std::sort(truth.begin(), truth.end(), [](const auto& x, const auto& y) {
    return x.jaccard != y.jaccard ? x.jaccard > y.jaccard
                                  : (x.a != y.a ? x.a < y.a : x.b < y.b);
  });
  std::map<PairKey, double> true_jaccard;
  for (const sketch::ScoredPair& p : truth) {
    true_jaccard[{p.a, p.b}] = p.jaccard;
  }

  // The audit under test: sketch once, LSH candidates, register verification.
  sketch::AllPairsOptions options;
  options.sketch.k = static_cast<uint32_t>(sketch_k);
  options.sketch.seed = static_cast<uint64_t>(seed);
  options.lsh.bands = static_cast<uint32_t>(lsh_bands);
  options.lsh.rows = static_cast<uint32_t>(lsh_rows);
  options.verify = sketch::VerifyMode::kRegisters;
  options.top = 0;  // keep every scored candidate; recall is computed below
  WallTimer audit_timer;
  sketch::AllPairsResult audit = sketch::RunAllPairs(fleet.sets, options);
  const double audit_wall_s = audit_timer.ElapsedSeconds();

  std::set<PairKey> reported;
  double mae = 0.0;
  for (const sketch::ScoredPair& p : audit.pairs) {
    reported.insert({p.a, p.b});
    mae += std::abs(p.jaccard - true_jaccard[{p.a, p.b}]);
  }
  if (!audit.pairs.empty()) {
    mae /= static_cast<double>(audit.pairs.size());
  }
  const size_t top_n = std::min<size_t>(10, truth.size());
  size_t hits = 0;
  for (size_t i = 0; i < top_n; ++i) {
    hits += reported.count({truth[i].a, truth[i].b});
  }
  const double recall_top10 = top_n == 0 ? 0.0 : static_cast<double>(hits) / top_n;
  const double ring_exec_reduction =
      audit.pairs_evaluated == 0
          ? 0.0
          : static_cast<double>(pairs_possible) / static_cast<double>(audit.pairs_evaluated);

  std::printf("LSH: %zu candidate pairs of %zu possible (%.1fx fewer ring executions), "
              "recall of true top-%zu = %.0f%%, MAE on candidates = %.4f\n",
              audit.pairs_evaluated, pairs_possible, ring_exec_reduction, top_n,
              100.0 * recall_top10, mae);

  // SIMD speedup on the same fleet's fingerprint sets, across all pairs.
  std::vector<std::vector<uint32_t>> fps(n_prov);
  for (size_t i = 0; i < n_prov; ++i) {
    fps[i] = sketch::BuildFingerprints(options.sketch.seed, fleet.sets[i]);
  }
  const sketch::SimdLevel best = sketch::BestSimdLevel();
  uint64_t scalar_sum = 0, simd_sum = 0;
  const double scalar_ns =
      NsPerPairAllPairs(fps, sketch::SimdLevel::kScalar, simd_seconds, &scalar_sum);
  const double simd_ns = NsPerPairAllPairs(fps, best, simd_seconds, &simd_sum);
  if (scalar_sum != simd_sum) {
    std::fprintf(stderr, "SIMD/scalar intersection checksums diverge (%llu vs %llu)\n",
                 (unsigned long long)scalar_sum, (unsigned long long)simd_sum);
    return 1;
  }
  const double simd_speedup = simd_ns > 0 ? scalar_ns / simd_ns : 0.0;
  std::printf("Intersection kernels over all %zu pairs: scalar %.0f ns/pair, %s %.0f ns/pair "
              "(%.2fx)\n",
              pairs_possible, scalar_ns, sketch::SimdLevelName(best), simd_ns, simd_speedup);

  // Exact-baseline calibration: real two-party P-SOP runs, extrapolated to
  // every pair. Conservative: calibrated below the paper's 1024-bit group.
  double exact_pair_wall_s = 0.0;
  uint64_t exact_pair_bytes = 0;
  if (!skip_calib && calib_runs > 0) {
    for (int64_t run = 0; run < calib_runs; ++run) {
      const size_t a = static_cast<size_t>(2 * run) % n_prov;
      const size_t b = (a + 1) % n_prov;
      PsopOptions psop;
      psop.group_bits = static_cast<size_t>(calib_group_bits);
      psop.seed = static_cast<uint64_t>(seed + run);
      WallTimer timer;
      auto result = RunPsop({fleet.sets[a], fleet.sets[b]}, psop);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      exact_pair_wall_s += timer.ElapsedSeconds();
      for (const PartyStats& stats : result->party_stats) {
        exact_pair_bytes += stats.bytes_sent;
      }
    }
    exact_pair_wall_s /= static_cast<double>(calib_runs);
    exact_pair_bytes /= static_cast<uint64_t>(calib_runs);
  }
  const double exact_total_s = exact_pair_wall_s * static_cast<double>(pairs_possible);
  const double exact_total_bytes =
      static_cast<double>(exact_pair_bytes) * static_cast<double>(pairs_possible);
  if (!skip_calib) {
    std::printf("Exact baseline (calibrated, %lld-bit group, %lld runs): %.3fs and %.1f KB "
                "per pair -> est. %s and %.1f MB for all %zu pairs\n",
                (long long)calib_group_bits, (long long)calib_runs, exact_pair_wall_s,
                exact_pair_bytes / 1024.0, HumanSeconds(exact_total_s).c_str(),
                exact_total_bytes / (1024.0 * 1024.0), pairs_possible);
    std::printf("Sketch audit: %s wall, %zu sketch bytes total (%.0fx fewer bytes)\n",
                HumanSeconds(audit_wall_s).c_str(), audit.sketch_bytes,
                audit.sketch_bytes > 0 ? exact_total_bytes / audit.sketch_bytes : 0.0);
  }

  // Accuracy-vs-bytes sweep over sketch sizes, scored on the planted pairs.
  struct SweepPoint {
    uint32_t k = 0;
    size_t bytes = 0;
    double mae = 0.0;
    double build_s = 0.0;
  };
  std::vector<SweepPoint> sweep;
  TextTable sweep_table({"sketch-k", "Bytes/provider", "MAE (planted pairs)", "Build time"});
  for (const std::string& entry : SplitAndTrim(k_sweep_spec, ',')) {
    SweepPoint point;
    point.k = static_cast<uint32_t>(std::stoul(entry));
    sketch::AllPairsOptions sweep_options = options;
    sweep_options.sketch.k = point.k;
    sketch::AllPairsResult result = sketch::RunAllPairs(fleet.sets, sweep_options);
    point.bytes = sketch::SketchBytes(point.k);
    point.build_s = result.build_seconds;
    std::map<PairKey, double> estimates;
    for (const sketch::ScoredPair& p : result.pairs) {
      estimates[{p.a, p.b}] = p.jaccard;
    }
    size_t scored = 0;
    for (const sketch::ScoredPair& planted_pair : fleet.planted) {
      PairKey key{planted_pair.a, planted_pair.b};
      auto it = estimates.find(key);
      if (it == estimates.end()) {
        continue;  // LSH missed it at this k; the planted MAE skips it
      }
      point.mae += std::abs(it->second - true_jaccard[key]);
      ++scored;
    }
    if (scored > 0) {
      point.mae /= static_cast<double>(scored);
    }
    sweep.push_back(point);
    sweep_table.AddRow({std::to_string(point.k), StrFormat("%zu B", point.bytes),
                        StrFormat("%.4f", point.mae), HumanSeconds(point.build_s)});
  }
  std::printf("\nAccuracy vs bytes (register verification, planted pairs):\n");
  sweep_table.Print();

  if (!json_out.empty()) {
    std::string json = "{\n";
    json += StrFormat("  \"providers\": %zu,\n  \"elements\": %lld,\n", n_prov,
                      (long long)elements);
    json += StrFormat("  \"sketch_k\": %lld,\n  \"lsh_bands\": %lld,\n  \"lsh_rows\": %lld,\n",
                      (long long)sketch_k, (long long)lsh_bands, (long long)lsh_rows);
    json += StrFormat("  \"pairs_possible\": %zu,\n  \"pairs_evaluated\": %zu,\n",
                      pairs_possible, audit.pairs_evaluated);
    json += StrFormat("  \"ring_exec_reduction\": %.2f,\n", ring_exec_reduction);
    json += StrFormat("  \"recall_top10\": %.4f,\n", recall_top10);
    json += StrFormat("  \"mae_candidates\": %.6f,\n", mae);
    json += StrFormat("  \"simd_level\": \"%s\",\n", sketch::SimdLevelName(best));
    json += StrFormat("  \"scalar_ns_per_pair\": %.1f,\n  \"simd_ns_per_pair\": %.1f,\n",
                      scalar_ns, simd_ns);
    json += StrFormat("  \"simd_speedup\": %.3f,\n", simd_speedup);
    json += StrFormat("  \"sketch_bytes_total\": %zu,\n", audit.sketch_bytes);
    json += StrFormat("  \"audit_wall_s\": %.6f,\n", audit_wall_s);
    json += StrFormat("  \"exact_calibrated\": %s,\n", skip_calib ? "false" : "true");
    json += StrFormat("  \"exact_pair_wall_s\": %.6f,\n", exact_pair_wall_s);
    json += StrFormat("  \"exact_pair_bytes\": %llu,\n",
                      (unsigned long long)exact_pair_bytes);
    json += StrFormat("  \"exact_total_wall_s_est\": %.3f,\n", exact_total_s);
    json += StrFormat("  \"exact_total_bytes_est\": %.0f,\n", exact_total_bytes);
    json += "  \"k_sweep\": [\n";
    for (size_t i = 0; i < sweep.size(); ++i) {
      json += StrFormat("    {\"k\": %u, \"bytes_per_provider\": %zu, \"mae_planted\": %.6f, "
                        "\"build_s\": %.6f}%s\n",
                        sweep[i].k, sweep[i].bytes, sweep[i].mae, sweep[i].build_s,
                        i + 1 < sweep.size() ? "," : "");
    }
    json += "  ]\n}\n";
    if (Status s = WriteFile(json_out, json); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote results -> %s\n", json_out.c_str());
  }
  return 0;
}
