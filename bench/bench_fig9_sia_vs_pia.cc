// Reproduces Figure 9 (§6.3.3): the cost of privacy. For all two-way (9a)
// and three-way (9b) redundancy deployments across 5..k_max cloud providers,
// compare the computational time of:
//   * SIA with the minimal-RG algorithm    (trusted auditor, exact)
//   * SIA with failure sampling            (trusted auditor, approximate)
//   * PIA with P-SOP                       (no trusted auditor)
//   * PIA with KS                          (no trusted auditor, baseline)
// All four operate at the component-set level of detail, as in the paper.
//
//   bench_fig9_sia_vs_pia [--n=500] [--k-max=10] [--rounds=10000]
//                         [--three-way] [--group-bits=768] [--paillier-bits=512]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/graph/levels.h"
#include "src/pia/ks.h"
#include "src/pia/psop.h"
#include "src/sia/risk_groups.h"
#include "src/sia/sampling.h"
#include "src/util/flags.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/strings.h"
#include "src/util/timer.h"

using namespace indaas;

namespace {

// k provider component-sets of n elements each, drawn from a shared pool so
// overlaps exist (~30% shared prefix).
std::vector<std::vector<std::string>> MakeProviders(size_t k, size_t n, Rng& rng) {
  std::vector<std::vector<std::string>> providers(k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t e = 0; e < n; ++e) {
      if (rng.NextBool(0.3)) {
        providers[i].push_back("shared-" + std::to_string(rng.NextBelow(n)));
      } else {
        providers[i].push_back(StrFormat("p%zu-c%zu", i, e));
      }
    }
    std::sort(providers[i].begin(), providers[i].end());
    providers[i].erase(std::unique(providers[i].begin(), providers[i].end()),
                       providers[i].end());
  }
  return providers;
}

std::vector<std::vector<size_t>> Combos(size_t k, size_t r) {
  std::vector<std::vector<size_t>> out;
  std::vector<size_t> pick(r);
  for (size_t i = 0; i < r; ++i) {
    pick[i] = i;
  }
  for (;;) {
    out.push_back(pick);
    int pos = static_cast<int>(r) - 1;
    while (pos >= 0 && pick[pos] == k - r + static_cast<size_t>(pos)) {
      --pos;
    }
    if (pos < 0) {
      break;
    }
    ++pick[pos];
    for (size_t i = static_cast<size_t>(pos) + 1; i < r; ++i) {
      pick[i] = pick[i - 1] + 1;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t n = 500;
  int64_t k_max = 10;
  int64_t rounds = 10000;
  bool three_way = false;
  int64_t group_bits = 768;
  int64_t paillier_bits = 512;
  int64_t ks_k_cap = 6;
  FlagSet flags;
  flags.AddInt("n", &n, "elements per provider component-set (paper: 10000)");
  flags.AddInt("k-max", &k_max, "largest provider count (paper: 20)");
  flags.AddInt("rounds", &rounds, "sampling rounds (paper: 10^6)");
  flags.AddBool("three-way", &three_way, "audit 3-way deployments (Fig. 9b) instead of 2-way");
  flags.AddInt("group-bits", &group_bits, "P-SOP group bits");
  flags.AddInt("paillier-bits", &paillier_bits, "KS Paillier bits");
  flags.AddInt("ks-k-cap", &ks_k_cap, "skip KS above this provider count (slow baseline)");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const size_t r = three_way ? 3 : 2;
  std::printf("Figure 9%s: all %zu-way deployments, %lld-element component-sets per provider.\n\n",
              three_way ? "b" : "a", r, (long long)n);

  TextTable table({"# providers", "PIA/KS", "SIA/minimal-RG", "PIA/P-SOP", "SIA/sampling"});
  for (int64_t k = 5; k <= k_max; k += 5) {
    Rng rng(static_cast<uint64_t>(k));
    auto providers = MakeProviders(static_cast<size_t>(k), static_cast<size_t>(n), rng);
    auto combos = Combos(static_cast<size_t>(k), r);

    // SIA exact & sampling: component-set fault graphs per deployment.
    double sia_exact_seconds = 0;
    double sia_sampling_seconds = 0;
    for (const auto& combo : combos) {
      std::vector<ComponentSet> sets;
      for (size_t idx : combo) {
        sets.push_back(ComponentSet{"P" + std::to_string(idx), providers[idx]});
      }
      auto graph = BuildFromComponentSets(sets);
      if (!graph.ok()) {
        std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
        return 1;
      }
      {
        WallTimer timer;
        MinimalRgOptions options;
        options.max_rg_size = r;  // every minimal RG has size <= r here
        auto groups = ComputeMinimalRiskGroups(*graph, options);
        if (!groups.ok()) {
          std::fprintf(stderr, "%s\n", groups.status().ToString().c_str());
          return 1;
        }
        sia_exact_seconds += timer.ElapsedSeconds();
      }
      {
        WallTimer timer;
        SamplingOptions options;
        options.rounds = static_cast<size_t>(rounds);
        options.failure_bias = 0.02;
        options.shrink = ShrinkMode::kNone;
        auto sampled = SampleRiskGroups(*graph, options);
        if (!sampled.ok()) {
          std::fprintf(stderr, "%s\n", sampled.status().ToString().c_str());
          return 1;
        }
        sia_sampling_seconds += timer.ElapsedSeconds();
      }
    }

    // PIA P-SOP and KS over the same deployments (compute time, all parties).
    double psop_seconds = 0;
    double ks_seconds = 0;
    bool ks_skipped = k > ks_k_cap;
    for (const auto& combo : combos) {
      std::vector<std::vector<std::string>> datasets;
      for (size_t idx : combo) {
        datasets.push_back(providers[idx]);
      }
      PsopOptions psop;
      psop.group_bits = static_cast<size_t>(group_bits);
      auto psop_result = RunPsop(datasets, psop);
      if (!psop_result.ok()) {
        std::fprintf(stderr, "%s\n", psop_result.status().ToString().c_str());
        return 1;
      }
      for (const PartyStats& stats : psop_result->party_stats) {
        psop_seconds += stats.compute_seconds;
      }
      if (!ks_skipped) {
        KsOptions ks;
        ks.paillier_bits = static_cast<size_t>(paillier_bits);
        auto ks_result = RunKsIntersectionCardinality(datasets, ks);
        if (!ks_result.ok()) {
          std::fprintf(stderr, "%s\n", ks_result.status().ToString().c_str());
          return 1;
        }
        for (const PartyStats& stats : ks_result->party_stats) {
          ks_seconds += stats.compute_seconds;
        }
      }
    }
    table.AddRow({std::to_string(k), ks_skipped ? "(skipped)" : HumanSeconds(ks_seconds),
                  HumanSeconds(sia_exact_seconds), HumanSeconds(psop_seconds),
                  HumanSeconds(sia_sampling_seconds)});
  }
  table.Print();
  std::printf(
      "\nPaper's shape (at its n=10000, 10^6 rounds): KS and minimal-RG do not scale;\n"
      "P-SOP costs less than 2x the sampling-based SIA. At the small default n the\n"
      "quadratic minimal-RG algorithm has not hit its wall yet — its cost grows as\n"
      "n^2 per deployment (vs linear for sampling and P-SOP), so the paper's ordering\n"
      "emerges as n grows: rerun with --n=2000 or the full --n=10000 to see it.\n");
  return 0;
}
