// apt-rdepends simulator: recursive software package dependency closure over
// a synthetic Debian-like package universe.
//
// The paper's third case study (Fig. 6c / Table 2) audits the software
// dependencies of four key-value stores — Riak, MongoDB, Redis, CouchDB —
// deployed on four clouds. KeyValueStoreUniverse() ships a package universe
// whose dependency closures have realistic sizes and an overlap structure
// calibrated so all ten of Table 2's Jaccard rankings reproduce.

#ifndef SRC_ACQUIRE_APT_SIM_H_
#define SRC_ACQUIRE_APT_SIM_H_

#include <map>
#include <string>
#include <vector>

#include "src/acquire/dam.h"
#include "src/util/status.h"

namespace indaas {

// A catalog of packages with versions and direct dependencies.
class PackageUniverse {
 public:
  // Registers a package. Dependencies may be registered later; Closure()
  // fails on dangling references.
  Status AddPackage(const std::string& name, const std::string& version,
                    std::vector<std::string> depends);

  bool Contains(const std::string& name) const;
  size_t PackageCount() const { return packages_.size(); }

  Result<std::string> VersionOf(const std::string& name) const;
  Result<std::vector<std::string>> DirectDeps(const std::string& name) const;

  // Recursive dependency closure of `name` (the package itself excluded),
  // as sorted unique "name=version" strings. Cycle-safe.
  Result<std::vector<std::string>> Closure(const std::string& name) const;

  // The calibrated four-store universe: top-level packages "riak",
  // "mongodb-server", "redis-server", "couchdb".
  static PackageUniverse KeyValueStoreUniverse();

 private:
  struct Package {
    std::string version;
    std::vector<std::string> depends;
  };
  std::map<std::string, Package> packages_;
};

class AptRdependsSim : public DependencyAcquisitionModule {
 public:
  // `universe` must outlive the simulator.
  explicit AptRdependsSim(const PackageUniverse* universe) : universe_(universe) {}

  std::string Name() const override { return "apt-rdepends-sim"; }

  // Marks `pgm` as installed on `host`. Fails if the universe lacks it.
  Status InstallProgram(const std::string& host, const std::string& pgm);

  // One software record per installed program: <pgm hw dep="closure..."/>,
  // dependencies as "name=version".
  Result<std::vector<DependencyRecord>> Collect(const std::string& host) const override;

 private:
  const PackageUniverse* universe_;
  std::multimap<std::string, std::string> installed_;  // host -> pgm
};

}  // namespace indaas

#endif  // SRC_ACQUIRE_APT_SIM_H_
