#include "src/acquire/dam.h"

namespace indaas {

Status RunAcquisition(const std::vector<const DependencyAcquisitionModule*>& modules,
                      const std::vector<std::string>& hosts, DepDb& db) {
  for (const std::string& host : hosts) {
    for (const DependencyAcquisitionModule* module : modules) {
      if (module == nullptr) {
        return InvalidArgumentError("RunAcquisition: null module");
      }
      INDAAS_ASSIGN_OR_RETURN(std::vector<DependencyRecord> records, module->Collect(host));
      db.AddAll(records);
    }
  }
  return Status::Ok();
}

}  // namespace indaas
