// Pluggable dependency acquisition module (DAM) interface (paper §3).
//
// Each data source runs DAMs that collect raw dependency data and adapt it to
// the uniform Table 1 record format, to be stored in DepDB. The prototype
// modules mirror the paper's choices: NSDMiner (network), lshw (hardware) and
// apt-rdepends (software) — here as simulators driven by synthetic
// infrastructure, exercising the same record-production code paths.

#ifndef SRC_ACQUIRE_DAM_H_
#define SRC_ACQUIRE_DAM_H_

#include <string>
#include <vector>

#include "src/deps/depdb.h"
#include "src/deps/record.h"
#include "src/util/status.h"

namespace indaas {

class DependencyAcquisitionModule {
 public:
  virtual ~DependencyAcquisitionModule() = default;

  // Human-readable module name ("nsdminer-sim", ...).
  virtual std::string Name() const = 0;

  // Collects all dependency records for one host.
  virtual Result<std::vector<DependencyRecord>> Collect(const std::string& host) const = 0;
};

// Runs every module against every host and stores the results in `db`.
// Mirrors §3's flow: collect -> adapt -> store in DepDB.
Status RunAcquisition(const std::vector<const DependencyAcquisitionModule*>& modules,
                      const std::vector<std::string>& hosts, DepDb& db);

}  // namespace indaas

#endif  // SRC_ACQUIRE_DAM_H_
