#include "src/acquire/nsdminer_sim.h"

namespace indaas {

Result<std::vector<FlowRecord>> GenerateTraffic(const DataCenterTopology& topo,
                                                const std::string& src_name,
                                                const std::string& dst_name, size_t num_flows,
                                                Rng& rng, size_t max_paths) {
  INDAAS_ASSIGN_OR_RETURN(DeviceId src, topo.FindDevice(src_name));
  INDAAS_ASSIGN_OR_RETURN(DeviceId dst, topo.FindDevice(dst_name));
  std::vector<NetworkDependency> routes = topo.NetworkDependencies(src, dst, max_paths);
  if (routes.empty()) {
    return NotFoundError("GenerateTraffic: no route from " + src_name + " to " + dst_name);
  }
  std::vector<FlowRecord> flows;
  flows.reserve(num_flows);
  for (size_t i = 0; i < num_flows; ++i) {
    const NetworkDependency& route = routes[rng.NextBelow(routes.size())];
    flows.push_back(FlowRecord{route.src, route.dst, route.route});
  }
  return flows;
}

void NsdMinerSim::IngestFlow(const FlowRecord& flow) {
  ++total_flows_;
  ++route_counts_[RouteKey{flow.src, flow.dst, flow.route}];
}

void NsdMinerSim::IngestFlows(const std::vector<FlowRecord>& flows) {
  for (const FlowRecord& flow : flows) {
    IngestFlow(flow);
  }
}

Result<std::vector<DependencyRecord>> NsdMinerSim::Collect(const std::string& host) const {
  std::vector<DependencyRecord> out;
  for (const auto& [key, count] : route_counts_) {
    if (key.src == host && count >= min_flow_count_) {
      NetworkDependency dep;
      dep.src = key.src;
      dep.dst = key.dst;
      dep.route = key.route;
      out.push_back(std::move(dep));
    }
  }
  return out;
}

}  // namespace indaas
