#include "src/acquire/lshw_sim.h"

namespace indaas {
namespace {

constexpr const char* kCpuModels[] = {
    "Intel(R)X5550@2.6GHz", "Intel(R)E5-2670@2.6GHz", "Intel(R)E5645@2.4GHz",
    "AMD-Opteron-6274@2.2GHz"};
constexpr const char* kDiskModels[] = {"SED900", "WD2003FYYS", "ST31000524NS", "Intel-SSD-320"};
constexpr const char* kRamModels[] = {"DDR3-1333-ECC-8GB", "DDR3-1600-ECC-16GB"};
constexpr const char* kNicModels[] = {"Intel-82599ES-10GbE", "Broadcom-BCM5709-1GbE"};

template <size_t N>
const char* Pick(const char* const (&models)[N], Rng& rng) {
  return models[rng.NextBelow(N)];
}

}  // namespace

void LshwSim::RegisterMachine(const std::string& host, const MachineSpec& spec) {
  machines_[host] = spec;
}

void LshwSim::RegisterSharedComponent(const std::string& host, const std::string& type,
                                      const std::string& component_id) {
  shared_.emplace(host, std::make_pair(type, component_id));
}

MachineSpec LshwSim::RandomSpec(Rng& rng) {
  MachineSpec spec;
  spec.cpu_model = Pick(kCpuModels, rng);
  spec.disk_model = Pick(kDiskModels, rng);
  spec.ram_model = Pick(kRamModels, rng);
  spec.nic_model = Pick(kNicModels, rng);
  return spec;
}

Result<std::vector<DependencyRecord>> LshwSim::Collect(const std::string& host) const {
  std::vector<DependencyRecord> out;
  auto it = machines_.find(host);
  if (it != machines_.end()) {
    const MachineSpec& spec = it->second;
    // Host-prefixed identities, matching Figure 3's "S1-Intel(R)X5550@2.6GHz".
    out.push_back(HardwareDependency{host, "CPU", host + "-" + spec.cpu_model});
    out.push_back(HardwareDependency{host, "Disk", host + "-" + spec.disk_model});
    out.push_back(HardwareDependency{host, "RAM", host + "-" + spec.ram_model});
    out.push_back(HardwareDependency{host, "NIC", host + "-" + spec.nic_model});
  }
  auto [begin, end] = shared_.equal_range(host);
  for (auto shared_it = begin; shared_it != end; ++shared_it) {
    out.push_back(HardwareDependency{host, shared_it->second.first, shared_it->second.second});
  }
  if (out.empty()) {
    return NotFoundError("lshw-sim: unknown machine '" + host + "'");
  }
  return out;
}

}  // namespace indaas
