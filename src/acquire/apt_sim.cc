#include "src/acquire/apt_sim.h"

#include <algorithm>
#include <set>

#include "src/util/strings.h"

namespace indaas {

Status PackageUniverse::AddPackage(const std::string& name, const std::string& version,
                                   std::vector<std::string> depends) {
  if (name.empty()) {
    return InvalidArgumentError("AddPackage: empty package name");
  }
  auto [it, inserted] = packages_.emplace(name, Package{version, std::move(depends)});
  if (!inserted) {
    return AlreadyExistsError("AddPackage: duplicate package '" + name + "'");
  }
  return Status::Ok();
}

bool PackageUniverse::Contains(const std::string& name) const {
  return packages_.count(name) != 0;
}

Result<std::string> PackageUniverse::VersionOf(const std::string& name) const {
  auto it = packages_.find(name);
  if (it == packages_.end()) {
    return NotFoundError("no package '" + name + "'");
  }
  return it->second.version;
}

Result<std::vector<std::string>> PackageUniverse::DirectDeps(const std::string& name) const {
  auto it = packages_.find(name);
  if (it == packages_.end()) {
    return NotFoundError("no package '" + name + "'");
  }
  return it->second.depends;
}

Result<std::vector<std::string>> PackageUniverse::Closure(const std::string& name) const {
  auto root = packages_.find(name);
  if (root == packages_.end()) {
    return NotFoundError("no package '" + name + "'");
  }
  std::set<std::string> visited{name};
  std::vector<std::string> stack(root->second.depends);
  std::set<std::string> closure;
  while (!stack.empty()) {
    std::string pkg = std::move(stack.back());
    stack.pop_back();
    if (!visited.insert(pkg).second) {
      continue;
    }
    auto it = packages_.find(pkg);
    if (it == packages_.end()) {
      return NotFoundError("package '" + name + "' depends on unknown package '" + pkg + "'");
    }
    closure.insert(pkg + "=" + it->second.version);
    stack.insert(stack.end(), it->second.depends.begin(), it->second.depends.end());
  }
  return std::vector<std::string>(closure.begin(), closure.end());
}

namespace {

// Adds a chain of `names` to `universe`: names[i] depends on names[i+1].
// Returns the chain head. Versions are derived deterministically.
std::string AddChain(PackageUniverse& universe, const std::vector<std::string>& names) {
  for (size_t i = 0; i < names.size(); ++i) {
    std::vector<std::string> deps;
    if (i + 1 < names.size()) {
      deps.push_back(names[i + 1]);
    }
    std::string version = StrFormat("%zu.%zu-%zu", 1 + names[i].size() % 3, i % 10, 1 + i % 5);
    (void)universe.AddPackage(names[i], version, std::move(deps));
  }
  return names.front();
}

// Generates `count` names with the given stem: stem0, stem1, ...
std::vector<std::string> Fill(const std::string& stem, size_t count) {
  std::vector<std::string> names;
  names.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    names.push_back(StrFormat("%s%zu", stem.c_str(), i));
  }
  return names;
}

}  // namespace

PackageUniverse PackageUniverse::KeyValueStoreUniverse() {
  // Block structure calibrated against Table 2 (see DESIGN.md): block sizes
  // chosen so all ten pairwise/triple Jaccard similarities land within ~0.01
  // of the paper's measured values and every ranking matches.
  PackageUniverse universe;

  // CORE (12): shared by all four stores — the Debian base set.
  std::string core = AddChain(
      universe, {"libc6", "libgcc1", "libstdc++6", "zlib1g", "libssl1.0.0", "libtinfo5",
                 "multiarch-support", "gcc-4.7-base", "libbz2-1.0", "libselinux1", "debconf",
                 "dpkg"});

  // P12 (25): Riak & MongoDB — storage-engine and tooling stack
  // (snappy/leveldb, python utils, curl chain).
  std::vector<std::string> p12_names = {"libsnappy1", "libleveldb1", "libcurl3",
                                        "libgssapi-krb5-2", "libkrb5-3", "python2.7",
                                        "libpython2.7", "python-pymongo-ish"};
  for (const auto& n : Fill("libdbtool", 17)) {
    p12_names.push_back(n);
  }
  std::string p12 = AddChain(universe, p12_names);

  // P13 (7): Riak & Redis — shared admin/runtime utilities.
  std::string p13 = AddChain(universe, {"libjemalloc1", "liblua5.1-0", "libatomic-ops",
                                        "daemontools-ish", "libev4", "libuuid1-kv", "logrotate-kv"});

  // P14 (2): Riak & CouchDB — Erlang runtime core.
  std::string p14 = AddChain(universe, {"erlang-base", "erlang-crypto"});

  // P34 (17): Redis & CouchDB — event/web support stack.
  std::vector<std::string> p34_names = {"libicu48", "libmozjs-ish", "libnspr4"};
  for (const auto& n : Fill("libwebstack", 14)) {
    p34_names.push_back(n);
  }
  std::string p34 = AddChain(universe, p34_names);

  // Triple blocks.
  std::string t123 = AddChain(universe, Fill("libcommonkv", 6));   // Riak+Mongo+Redis
  std::string t124 = AddChain(universe, Fill("libstorcom", 7));    // Riak+Mongo+Couch
  std::string t134 = AddChain(universe, Fill("libclustr", 6));     // Riak+Redis+Couch

  // Unique blocks.
  std::vector<std::string> u1_names = {"erlang-riak-core", "libriak-pb", "riak-bitcask"};
  for (const auto& n : Fill("libriakx", 11)) {
    u1_names.push_back(n);
  }
  std::string u1 = AddChain(universe, u1_names);  // 14

  std::vector<std::string> u2_names = {"libboost-filesystem", "libboost-program-options",
                                       "libboost-system", "libboost-thread", "libv8-mongo",
                                       "libpcap0.8-mongo"};
  for (const auto& n : Fill("libmongox", 14)) {
    u2_names.push_back(n);
  }
  std::string u2 = AddChain(universe, u2_names);  // 20

  std::vector<std::string> u3_names = {"redis-tools"};
  for (const auto& n : Fill("libredisx", 8)) {
    u3_names.push_back(n);
  }
  std::string u3 = AddChain(universe, u3_names);  // 9

  std::vector<std::string> u4_names = {"couchdb-bin", "erlang-couch-index", "libmozjs185-couch"};
  for (const auto& n : Fill("libcouchx", 31)) {
    u4_names.push_back(n);
  }
  std::string u4 = AddChain(universe, u4_names);  // 34

  // Top-level programs, each pulling in its blocks via the chain heads.
  (void)universe.AddPackage("riak", "1.4.8-1", {core, p12, p13, p14, t123, t124, t134, u1});
  (void)universe.AddPackage("mongodb-server", "2.4.9-1", {core, p12, t123, t124, u2});
  (void)universe.AddPackage("redis-server", "2.8.6-1", {core, p13, p34, t123, t134, u3});
  (void)universe.AddPackage("couchdb", "1.5.0-1", {core, p14, p34, t124, t134, u4});
  return universe;
}

Status AptRdependsSim::InstallProgram(const std::string& host, const std::string& pgm) {
  if (universe_ == nullptr || !universe_->Contains(pgm)) {
    return NotFoundError("apt-rdepends-sim: unknown program '" + pgm + "'");
  }
  installed_.emplace(host, pgm);
  return Status::Ok();
}

Result<std::vector<DependencyRecord>> AptRdependsSim::Collect(const std::string& host) const {
  std::vector<DependencyRecord> out;
  auto [begin, end] = installed_.equal_range(host);
  for (auto it = begin; it != end; ++it) {
    INDAAS_ASSIGN_OR_RETURN(std::vector<std::string> closure, universe_->Closure(it->second));
    SoftwareDependency dep;
    dep.pgm = it->second;
    dep.hw = host;
    dep.deps = std::move(closure);
    out.push_back(std::move(dep));
  }
  return out;
}

}  // namespace indaas
