// HardwareLister (lshw) simulator: hardware inventory per machine.
//
// Emits Table 1 hardware records like the paper's Figure 3, e.g.
//   <hw="S1" type="CPU" dep="S1-Intel(R)X5550@2.6GHz"/>
// Physical components owned by one machine are prefixed with the host name
// (they can only be shared through colocation, e.g. two VMs on one server);
// explicitly registered *shared* components (SAN volumes, PDUs, power
// sources) keep a global identity and create cross-host hardware RGs.

#ifndef SRC_ACQUIRE_LSHW_SIM_H_
#define SRC_ACQUIRE_LSHW_SIM_H_

#include <map>
#include <string>
#include <vector>

#include "src/acquire/dam.h"
#include "src/util/rng.h"

namespace indaas {

struct MachineSpec {
  std::string cpu_model;
  std::string disk_model;
  std::string ram_model;
  std::string nic_model;
};

class LshwSim : public DependencyAcquisitionModule {
 public:
  std::string Name() const override { return "lshw-sim"; }

  // Registers a machine; Collect() will emit one record per component.
  void RegisterMachine(const std::string& host, const MachineSpec& spec);

  // Registers a component shared across machines (identity is `component_id`
  // itself, not host-prefixed), e.g. a SAN disk or a power distribution unit.
  void RegisterSharedComponent(const std::string& host, const std::string& type,
                               const std::string& component_id);

  // Draws a plausible spec from small catalogs of real-world models.
  static MachineSpec RandomSpec(Rng& rng);

  Result<std::vector<DependencyRecord>> Collect(const std::string& host) const override;

  size_t MachineCount() const { return machines_.size(); }

 private:
  std::map<std::string, MachineSpec> machines_;
  std::multimap<std::string, std::pair<std::string, std::string>> shared_;  // host -> (type, id)
};

}  // namespace indaas

#endif  // SRC_ACQUIRE_LSHW_SIM_H_
