// NSDMiner simulator: traffic-flow-based network dependency discovery.
//
// Real NSDMiner observes traffic flows and infers which network paths a
// service depends on. The simulator ingests synthetic flow records (generated
// by routing traffic through a DataCenterTopology) and, like the real tool,
// reports a (src, dst, route) dependency only once the route has been
// observed at least `min_flow_count` times — rare misrouted flows are treated
// as noise, so discovery is deliberately imperfect (the paper reports ~90%
// dependency coverage).

#ifndef SRC_ACQUIRE_NSDMINER_SIM_H_
#define SRC_ACQUIRE_NSDMINER_SIM_H_

#include <map>
#include <string>
#include <vector>

#include "src/acquire/dam.h"
#include "src/topology/datacenter.h"
#include "src/util/rng.h"

namespace indaas {

// One observed traffic flow and the path it took.
struct FlowRecord {
  std::string src;
  std::string dst;
  std::vector<std::string> route;  // intermediate devices
};

// Samples `num_flows` flows from `src_name` to `dst_name`, choosing uniformly
// among the first `max_paths` ECMP routes for each flow.
Result<std::vector<FlowRecord>> GenerateTraffic(const DataCenterTopology& topo,
                                                const std::string& src_name,
                                                const std::string& dst_name, size_t num_flows,
                                                Rng& rng, size_t max_paths = 16);

class NsdMinerSim : public DependencyAcquisitionModule {
 public:
  // Routes seen fewer than `min_flow_count` times are dropped as noise.
  explicit NsdMinerSim(size_t min_flow_count = 3) : min_flow_count_(min_flow_count) {}

  std::string Name() const override { return "nsdminer-sim"; }

  void IngestFlow(const FlowRecord& flow);
  void IngestFlows(const std::vector<FlowRecord>& flows);

  // Network dependencies of `host`: every sufficiently-observed route
  // originating there.
  Result<std::vector<DependencyRecord>> Collect(const std::string& host) const override;

  size_t FlowCount() const { return total_flows_; }

 private:
  struct RouteKey {
    std::string src;
    std::string dst;
    std::vector<std::string> route;
    bool operator<(const RouteKey& other) const {
      return std::tie(src, dst, route) < std::tie(other.src, other.dst, other.route);
    }
  };
  size_t min_flow_count_;
  size_t total_flows_ = 0;
  std::map<RouteKey, size_t> route_counts_;
};

}  // namespace indaas

#endif  // SRC_ACQUIRE_NSDMINER_SIM_H_
