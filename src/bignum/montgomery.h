// Montgomery-form modular multiplication for odd moduli.
//
// Modular exponentiation dominates the cost of the P-SOP commutative cipher
// and the Paillier cryptosystem; Montgomery (CIOS) multiplication avoids a
// full division per step.

#ifndef SRC_BIGNUM_MONTGOMERY_H_
#define SRC_BIGNUM_MONTGOMERY_H_

#include <cstdint>
#include <vector>

#include "src/bignum/biguint.h"
#include "src/util/status.h"

namespace indaas {

// Precomputed context for arithmetic modulo a fixed odd modulus n.
class MontgomeryContext {
 public:
  // n must be odd and > 1.
  static Result<MontgomeryContext> Create(const BigUint& modulus);

  const BigUint& modulus() const { return modulus_; }

  // Converts into Montgomery form (a * R mod n).
  BigUint ToMontgomery(const BigUint& a) const;

  // Converts out of Montgomery form.
  BigUint FromMontgomery(const BigUint& a_mont) const;

  // Montgomery product: (a * b * R^-1) mod n, both inputs in Montgomery form.
  BigUint MulMont(const BigUint& a_mont, const BigUint& b_mont) const;

  // (base ^ exponent) mod n, plain (non-Montgomery) in/out. Uses a 4-bit
  // fixed-window square-and-multiply ladder.
  BigUint ModExp(const BigUint& base, const BigUint& exponent) const;

 private:
  MontgomeryContext() = default;

  // CIOS multiply on raw 64-bit lane spans; result has num_limbs_ lanes.
  void MulMontRaw(const uint64_t* a, const uint64_t* b, uint64_t* out) const;

  BigUint modulus_;
  std::vector<uint64_t> mod_lanes_;  // modulus packed into 64-bit lanes
  size_t num_limbs_ = 0;             // number of 64-bit lanes
  uint64_t n_prime_ = 0;             // -n^{-1} mod 2^64
  BigUint r_mod_n_;                  // R mod n (Montgomery form of 1)
  BigUint r2_mod_n_;                 // R^2 mod n (conversion factor)
};

}  // namespace indaas

#endif  // SRC_BIGNUM_MONTGOMERY_H_
