#include "src/bignum/prime.h"

#include <array>

#include "src/bignum/modular.h"
#include "src/bignum/montgomery.h"
#include "src/util/strings.h"

namespace indaas {
namespace {

constexpr std::array<uint32_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,  53,  59,  61,
    67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151,
    157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

// RFC 2409 Oakley Group 1 (768-bit MODP safe prime).
constexpr const char* kModp768 =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF";

// RFC 2409 Oakley Group 2 (1024-bit MODP safe prime).
constexpr const char* kModp1024 =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF";

// RFC 3526 Group 5 (1536-bit MODP safe prime).
constexpr const char* kModp1536 =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF";

// RFC 3526 Group 14 (2048-bit MODP safe prime).
constexpr const char* kModp2048 =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF";

}  // namespace

BigUint RandomBelow(const BigUint& bound, Rng& rng) {
  size_t bits = bound.BitLength();
  size_t limbs = (bits + 31) / 32;
  for (;;) {
    std::vector<uint32_t> raw(limbs);
    for (auto& limb : raw) {
      limb = static_cast<uint32_t>(rng.Next());
    }
    // Mask the top limb down to the bound's bit length to make rejection rare.
    size_t top_bits = bits % 32;
    if (top_bits != 0) {
      raw.back() &= (1u << top_bits) - 1;
    }
    BigUint candidate = BigUint::FromLimbs(std::move(raw));
    if (candidate.Compare(bound) < 0) {
      return candidate;
    }
  }
}

BigUint RandomWithBits(size_t bits, Rng& rng) {
  if (bits == 0) {
    return BigUint();
  }
  size_t limbs = (bits + 31) / 32;
  std::vector<uint32_t> raw(limbs);
  for (auto& limb : raw) {
    limb = static_cast<uint32_t>(rng.Next());
  }
  size_t top_bits = bits % 32;
  if (top_bits == 0) {
    top_bits = 32;
  }
  raw.back() &= top_bits == 32 ? 0xFFFFFFFFu : ((1u << top_bits) - 1);
  raw.back() |= 1u << (top_bits - 1);  // Force MSB so BitLength() == bits.
  return BigUint::FromLimbs(std::move(raw));
}

bool IsProbablePrime(const BigUint& candidate, Rng& rng, int rounds) {
  if (candidate.Compare(BigUint(2)) < 0) {
    return false;
  }
  for (uint32_t p : kSmallPrimes) {
    BigUint bp(p);
    if (candidate == bp) {
      return true;
    }
    if (candidate.Mod(bp).IsZero()) {
      return false;
    }
  }
  // Write candidate-1 = d * 2^r with d odd.
  BigUint n_minus_1 = candidate.Sub(BigUint(1));
  size_t r = 0;
  BigUint d = n_minus_1;
  while (!d.IsOdd()) {
    d = d.ShiftRight(1);
    ++r;
  }
  auto ctx_result = MontgomeryContext::Create(candidate);
  if (!ctx_result.ok()) {
    return false;  // Even and > 2 — composite.
  }
  const MontgomeryContext& ctx = ctx_result.value();
  BigUint n_minus_3 = candidate.Sub(BigUint(3));
  for (int round = 0; round < rounds; ++round) {
    // Base a uniform in [2, candidate-2].
    BigUint a = RandomBelow(n_minus_3, rng).Add(BigUint(2));
    BigUint x = ctx.ModExp(a, d);
    if (x.IsOne() || x == n_minus_1) {
      continue;
    }
    bool witness = true;
    for (size_t i = 0; i + 1 < r; ++i) {
      x = x.Mul(x).Mod(candidate);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) {
      return false;
    }
  }
  return true;
}

Result<BigUint> GeneratePrime(size_t bits, Rng& rng) {
  if (bits < 8) {
    return InvalidArgumentError("GeneratePrime: need at least 8 bits");
  }
  for (int attempts = 0; attempts < 100000; ++attempts) {
    BigUint candidate = RandomWithBits(bits, rng);
    if (!candidate.IsOdd()) {
      candidate = candidate.Add(BigUint(1));
    }
    if (IsProbablePrime(candidate, rng)) {
      return candidate;
    }
  }
  return InternalError("GeneratePrime: exceeded attempt budget");
}

Result<BigUint> GenerateSafePrime(size_t bits, Rng& rng) {
  if (bits < 9) {
    return InvalidArgumentError("GenerateSafePrime: need at least 9 bits");
  }
  for (int attempts = 0; attempts < 1000000; ++attempts) {
    BigUint q = RandomWithBits(bits - 1, rng);
    if (!q.IsOdd()) {
      q = q.Add(BigUint(1));
    }
    // Cheap pre-filter: p = 2q+1 must not be divisible by small primes.
    BigUint p = q.ShiftLeft(1).Add(BigUint(1));
    bool skip = false;
    for (uint32_t sp : kSmallPrimes) {
      BigUint bsp(sp);
      if (p.Compare(bsp) > 0 && p.Mod(bsp).IsZero()) {
        skip = true;
        break;
      }
    }
    if (skip) {
      continue;
    }
    if (IsProbablePrime(q, rng, 16) && IsProbablePrime(p, rng, 16) && p.BitLength() == bits) {
      return p;
    }
  }
  return InternalError("GenerateSafePrime: exceeded attempt budget");
}

Result<BigUint> WellKnownSafePrime(size_t bits) {
  const char* hex = nullptr;
  switch (bits) {
    case 768:
      hex = kModp768;
      break;
    case 1024:
      hex = kModp1024;
      break;
    case 1536:
      hex = kModp1536;
      break;
    case 2048:
      hex = kModp2048;
      break;
    default:
      return InvalidArgumentError(
          StrFormat("no well-known safe prime of %zu bits (supported: 768/1024/1536/2048)", bits));
  }
  return BigUint::FromHex(hex);
}

}  // namespace indaas
