#include "src/bignum/biguint.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <ostream>

namespace indaas {
namespace {

constexpr uint64_t kLimbBase = 1ULL << 32;

int HexDigit(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

BigUint::BigUint(uint64_t value) {
  if (value != 0) {
    limbs_.push_back(static_cast<uint32_t>(value));
    uint32_t hi = static_cast<uint32_t>(value >> 32);
    if (hi != 0) {
      limbs_.push_back(hi);
    }
  }
}

BigUint BigUint::FromLimbs(std::vector<uint32_t> limbs) {
  BigUint out;
  out.limbs_ = std::move(limbs);
  out.Normalize();
  return out;
}

void BigUint::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) {
    limbs_.pop_back();
  }
}

Result<BigUint> BigUint::FromDecimal(std::string_view text) {
  if (text.empty()) {
    return ParseError("empty decimal string");
  }
  BigUint out;
  const BigUint ten(10);
  for (char c : text) {
    if (c < '0' || c > '9') {
      return ParseError(std::string("invalid decimal digit '") + c + "'");
    }
    out = out.Mul(ten).Add(BigUint(static_cast<uint64_t>(c - '0')));
  }
  return out;
}

Result<BigUint> BigUint::FromHex(std::string_view text) {
  if (text.size() >= 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    text.remove_prefix(2);
  }
  if (text.empty()) {
    return ParseError("empty hex string");
  }
  BigUint out;
  std::vector<uint32_t> limbs;
  // Parse from the least-significant end, 8 hex digits per limb.
  size_t pos = text.size();
  while (pos > 0) {
    size_t take = std::min<size_t>(8, pos);
    uint32_t limb = 0;
    for (size_t i = pos - take; i < pos; ++i) {
      int d = HexDigit(text[i]);
      if (d < 0) {
        return ParseError(std::string("invalid hex digit '") + text[i] + "'");
      }
      limb = (limb << 4) | static_cast<uint32_t>(d);
    }
    limbs.push_back(limb);
    pos -= take;
  }
  return FromLimbs(std::move(limbs));
}

BigUint BigUint::FromBytesBE(const std::vector<uint8_t>& bytes) {
  std::vector<uint32_t> limbs;
  limbs.reserve(bytes.size() / 4 + 1);
  uint32_t limb = 0;
  int shift = 0;
  for (size_t i = bytes.size(); i-- > 0;) {
    limb |= static_cast<uint32_t>(bytes[i]) << shift;
    shift += 8;
    if (shift == 32) {
      limbs.push_back(limb);
      limb = 0;
      shift = 0;
    }
  }
  if (shift != 0) {
    limbs.push_back(limb);
  }
  return FromLimbs(std::move(limbs));
}

size_t BigUint::BitLength() const {
  if (limbs_.empty()) {
    return 0;
  }
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    top >>= 1;
    ++bits;
  }
  return bits;
}

bool BigUint::Bit(size_t i) const {
  size_t limb = i / 32;
  if (limb >= limbs_.size()) {
    return false;
  }
  return ((limbs_[limb] >> (i % 32)) & 1u) != 0;
}

uint64_t BigUint::ToUint64() const {
  uint64_t out = 0;
  if (!limbs_.empty()) {
    out = limbs_[0];
  }
  if (limbs_.size() > 1) {
    out |= static_cast<uint64_t>(limbs_[1]) << 32;
  }
  return out;
}

int BigUint::Compare(const BigUint& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigUint BigUint::Add(const BigUint& other) const {
  const auto& a = limbs_;
  const auto& b = other.limbs_;
  std::vector<uint32_t> out(std::max(a.size(), b.size()) + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    uint64_t sum = carry;
    if (i < a.size()) {
      sum += a[i];
    }
    if (i < b.size()) {
      sum += b[i];
    }
    out[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  return FromLimbs(std::move(out));
}

BigUint BigUint::Sub(const BigUint& other) const {
  assert(Compare(other) >= 0 && "BigUint::Sub underflow");
  const auto& a = limbs_;
  const auto& b = other.limbs_;
  std::vector<uint32_t> out(a.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow - (i < b.size() ? b[i] : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out[i] = static_cast<uint32_t>(diff);
  }
  return FromLimbs(std::move(out));
}

BigUint BigUint::Mul(const BigUint& other) const {
  if (IsZero() || other.IsZero()) {
    return BigUint();
  }
  const auto& a = limbs_;
  const auto& b = other.limbs_;
  std::vector<uint32_t> out(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = a[i];
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t cur = static_cast<uint64_t>(out[i + j]) + ai * b[j] + carry;
      out[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    size_t k = i + b.size();
    while (carry != 0) {
      uint64_t cur = static_cast<uint64_t>(out[k]) + carry;
      out[k] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  return FromLimbs(std::move(out));
}

Result<BigUintDivMod> BigUint::DivMod(const BigUint& divisor) const {
  if (divisor.IsZero()) {
    return InvalidArgumentError("division by zero");
  }
  if (Compare(divisor) < 0) {
    return BigUintDivMod{BigUint(), *this};
  }
  // Single-limb fast path.
  if (divisor.limbs_.size() == 1) {
    uint64_t d = divisor.limbs_[0];
    std::vector<uint32_t> q(limbs_.size(), 0);
    uint64_t rem = 0;
    for (size_t i = limbs_.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | limbs_[i];
      q[i] = static_cast<uint32_t>(cur / d);
      rem = cur % d;
    }
    return BigUintDivMod{FromLimbs(std::move(q)), BigUint(rem)};
  }

  // Knuth Algorithm D. Normalize so the divisor's top limb has its high bit
  // set; this bounds the quotient-digit estimate error to at most 2.
  size_t shift = 0;
  uint32_t top = divisor.limbs_.back();
  while ((top & 0x80000000u) == 0) {
    top <<= 1;
    ++shift;
  }
  BigUint u = ShiftLeft(shift);
  BigUint v = divisor.ShiftLeft(shift);
  const size_t n = v.limbs_.size();
  const size_t m = u.limbs_.size() - n;

  std::vector<uint32_t> un(u.limbs_);
  un.push_back(0);  // Extra limb for the algorithm's u[m+n] slot.
  const std::vector<uint32_t>& vn = v.limbs_;
  std::vector<uint32_t> q(m + 1, 0);

  for (size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat = (un[j+n]*B + un[j+n-1]) / vn[n-1].
    uint64_t numerator = (static_cast<uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    uint64_t q_hat = numerator / vn[n - 1];
    uint64_t r_hat = numerator % vn[n - 1];
    while (q_hat >= kLimbBase ||
           q_hat * vn[n - 2] > ((r_hat << 32) | un[j + n - 2])) {
      --q_hat;
      r_hat += vn[n - 1];
      if (r_hat >= kLimbBase) {
        break;
      }
    }
    // Multiply-and-subtract: un[j..j+n] -= q_hat * vn.
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t product = q_hat * vn[i] + carry;
      carry = product >> 32;
      int64_t diff = static_cast<int64_t>(un[i + j]) - static_cast<int64_t>(product & 0xFFFFFFFFu) -
                     borrow;
      if (diff < 0) {
        diff += static_cast<int64_t>(kLimbBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      un[i + j] = static_cast<uint32_t>(diff);
    }
    int64_t diff = static_cast<int64_t>(un[j + n]) - static_cast<int64_t>(carry) - borrow;
    if (diff < 0) {
      // q_hat was one too large: add back.
      diff += static_cast<int64_t>(kLimbBase);
      --q_hat;
      uint64_t carry2 = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t sum = static_cast<uint64_t>(un[i + j]) + vn[i] + carry2;
        un[i + j] = static_cast<uint32_t>(sum);
        carry2 = sum >> 32;
      }
      diff += static_cast<int64_t>(carry2);
    }
    un[j + n] = static_cast<uint32_t>(diff);
    q[j] = static_cast<uint32_t>(q_hat);
  }

  un.resize(n);
  BigUint remainder = FromLimbs(std::move(un)).ShiftRight(shift);
  return BigUintDivMod{FromLimbs(std::move(q)), std::move(remainder)};
}

BigUint BigUint::Div(const BigUint& divisor) const {
  auto res = DivMod(divisor);
  assert(res.ok());
  return std::move(res).value().quotient;
}

BigUint BigUint::Mod(const BigUint& divisor) const {
  auto res = DivMod(divisor);
  assert(res.ok());
  return std::move(res).value().remainder;
}

BigUint BigUint::ShiftLeft(size_t bits) const {
  if (IsZero() || bits == 0) {
    return *this;
  }
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  std::vector<uint32_t> out(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t shifted = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    out[i + limb_shift] |= static_cast<uint32_t>(shifted);
    out[i + limb_shift + 1] |= static_cast<uint32_t>(shifted >> 32);
  }
  return FromLimbs(std::move(out));
}

BigUint BigUint::ShiftRight(size_t bits) const {
  size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) {
    return BigUint();
  }
  size_t bit_shift = bits % 32;
  std::vector<uint32_t> out(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.size(); ++i) {
    uint64_t cur = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      cur |= static_cast<uint64_t>(limbs_[i + limb_shift + 1]) << (32 - bit_shift);
    }
    out[i] = static_cast<uint32_t>(cur);
  }
  return FromLimbs(std::move(out));
}

std::string BigUint::ToDecimal() const {
  if (IsZero()) {
    return "0";
  }
  // Repeated division by 10^9 to batch digits.
  std::vector<uint32_t> scratch(limbs_);
  std::string out;
  const uint64_t kChunk = 1000000000ULL;
  while (!scratch.empty()) {
    uint64_t rem = 0;
    for (size_t i = scratch.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | scratch[i];
      scratch[i] = static_cast<uint32_t>(cur / kChunk);
      rem = cur % kChunk;
    }
    while (!scratch.empty() && scratch.back() == 0) {
      scratch.pop_back();
    }
    for (int d = 0; d < 9; ++d) {
      out.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (out.size() > 1 && out.back() == '0') {
    out.pop_back();
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string BigUint::ToHex() const {
  if (IsZero()) {
    return "0";
  }
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int nibble = 7; nibble >= 0; --nibble) {
      out.push_back(kDigits[(limbs_[i] >> (nibble * 4)) & 0xF]);
    }
  }
  size_t first = out.find_first_not_of('0');
  return out.substr(first);
}

std::vector<uint8_t> BigUint::ToBytesBE(size_t pad_to) const {
  std::vector<uint8_t> out;
  for (size_t i = limbs_.size(); i-- > 0;) {
    out.push_back(static_cast<uint8_t>(limbs_[i] >> 24));
    out.push_back(static_cast<uint8_t>(limbs_[i] >> 16));
    out.push_back(static_cast<uint8_t>(limbs_[i] >> 8));
    out.push_back(static_cast<uint8_t>(limbs_[i]));
  }
  size_t first = 0;
  while (first < out.size() && out[first] == 0) {
    ++first;
  }
  out.erase(out.begin(), out.begin() + static_cast<ptrdiff_t>(first));
  if (out.size() < pad_to) {
    out.insert(out.begin(), pad_to - out.size(), 0);
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const BigUint& v) { return os << v.ToDecimal(); }

}  // namespace indaas
