// Primality testing and prime generation.
//
// The P-SOP commutative cipher needs a shared safe prime p (so that exponent
// arithmetic happens modulo p-1 = 2q with q prime, making almost all odd
// exponents invertible). We ship the well-known MODP safe primes from
// RFC 2409 / RFC 3526 for instant setup at standard key sizes, and can also
// generate fresh safe primes for arbitrary sizes.

#ifndef SRC_BIGNUM_PRIME_H_
#define SRC_BIGNUM_PRIME_H_

#include <cstdint>

#include "src/bignum/biguint.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace indaas {

// Miller–Rabin probabilistic primality test with `rounds` random bases.
// Deterministic small-prime trial division runs first. A composite is
// misclassified with probability <= 4^-rounds.
bool IsProbablePrime(const BigUint& candidate, Rng& rng, int rounds = 32);

// Uniformly random BigUint in [0, bound). bound must be nonzero.
BigUint RandomBelow(const BigUint& bound, Rng& rng);

// Uniformly random BigUint with exactly `bits` bits (MSB set).
BigUint RandomWithBits(size_t bits, Rng& rng);

// Generates a random prime with exactly `bits` bits (bits >= 8).
Result<BigUint> GeneratePrime(size_t bits, Rng& rng);

// Generates a safe prime p (p = 2q + 1 with q prime) with exactly `bits`
// bits. Expensive for large sizes; prefer WellKnownSafePrime for >= 768 bits.
Result<BigUint> GenerateSafePrime(size_t bits, Rng& rng);

// Returns the standard MODP safe prime of the given size. Supported sizes:
// 768 (RFC 2409 Oakley 1), 1024 (RFC 2409 Oakley 2), 1536 (RFC 3526 group 5),
// 2048 (RFC 3526 group 14). Errors on other sizes.
Result<BigUint> WellKnownSafePrime(size_t bits);

}  // namespace indaas

#endif  // SRC_BIGNUM_PRIME_H_
