// Arbitrary-precision unsigned integer arithmetic.
//
// BigUint is the numeric foundation for INDaaS's private-auditing crypto
// (commutative SRA encryption and Paillier homomorphic encryption). It is a
// little-endian vector of 32-bit limbs with value semantics. Division uses
// Knuth's Algorithm D; modular exponentiation lives in modular.h / montgomery.h.

#ifndef SRC_BIGNUM_BIGUINT_H_
#define SRC_BIGNUM_BIGUINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace indaas {

struct BigUintDivMod;

class BigUint {
 public:
  // Zero.
  BigUint() = default;

  // From a machine word.
  explicit BigUint(uint64_t value);

  // Parses a decimal string ("12345"). Rejects empty strings and non-digits.
  static Result<BigUint> FromDecimal(std::string_view text);

  // Parses a hexadecimal string, with or without 0x prefix, case-insensitive.
  static Result<BigUint> FromHex(std::string_view text);

  // Interprets `bytes` as a big-endian unsigned integer.
  static BigUint FromBytesBE(const std::vector<uint8_t>& bytes);

  // --- Introspection ---

  bool IsZero() const { return limbs_.empty(); }
  bool IsOne() const { return limbs_.size() == 1 && limbs_[0] == 1; }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1u) != 0; }

  // Number of significant bits (0 for zero).
  size_t BitLength() const;

  // Value of bit i (LSB is bit 0).
  bool Bit(size_t i) const;

  // Number of 32-bit limbs.
  size_t LimbCount() const { return limbs_.size(); }

  // Low 64 bits of the value.
  uint64_t ToUint64() const;

  // Comparison: negative / zero / positive like memcmp.
  int Compare(const BigUint& other) const;

  bool operator==(const BigUint& o) const { return Compare(o) == 0; }
  bool operator!=(const BigUint& o) const { return Compare(o) != 0; }
  bool operator<(const BigUint& o) const { return Compare(o) < 0; }
  bool operator<=(const BigUint& o) const { return Compare(o) <= 0; }
  bool operator>(const BigUint& o) const { return Compare(o) > 0; }
  bool operator>=(const BigUint& o) const { return Compare(o) >= 0; }

  // --- Arithmetic (value-returning; operands unchanged) ---

  BigUint Add(const BigUint& other) const;

  // Requires *this >= other (asserts in debug builds).
  BigUint Sub(const BigUint& other) const;

  BigUint Mul(const BigUint& other) const;

  // Quotient and remainder; divisor must be nonzero.
  Result<BigUintDivMod> DivMod(const BigUint& divisor) const;

  // Convenience wrappers over DivMod (divisor must be nonzero; asserts).
  BigUint Div(const BigUint& divisor) const;
  BigUint Mod(const BigUint& divisor) const;

  BigUint ShiftLeft(size_t bits) const;
  BigUint ShiftRight(size_t bits) const;

  BigUint operator+(const BigUint& o) const { return Add(o); }
  BigUint operator-(const BigUint& o) const { return Sub(o); }
  BigUint operator*(const BigUint& o) const { return Mul(o); }
  BigUint operator%(const BigUint& o) const { return Mod(o); }
  BigUint operator/(const BigUint& o) const { return Div(o); }

  // --- Serialization ---

  std::string ToDecimal() const;
  std::string ToHex() const;  // lowercase, no 0x prefix, "0" for zero

  // Big-endian bytes, minimal length (empty for zero unless pad_to > 0, in
  // which case the output is left-padded with zeros to exactly pad_to bytes;
  // values longer than pad_to keep their natural length).
  std::vector<uint8_t> ToBytesBE(size_t pad_to = 0) const;

  // Direct limb access for inner-loop code (montgomery.cc). Little-endian,
  // no trailing zero limbs.
  const std::vector<uint32_t>& limbs() const { return limbs_; }

  // Constructs from raw limbs (normalizes trailing zeros).
  static BigUint FromLimbs(std::vector<uint32_t> limbs);

 private:
  void Normalize();

  std::vector<uint32_t> limbs_;
};

// Quotient/remainder pair returned by BigUint::DivMod.
struct BigUintDivMod {
  BigUint quotient;
  BigUint remainder;
};

std::ostream& operator<<(std::ostream& os, const BigUint& v);

}  // namespace indaas

#endif  // SRC_BIGNUM_BIGUINT_H_
