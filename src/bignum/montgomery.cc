#include "src/bignum/montgomery.h"

#include <cassert>

namespace indaas {
namespace {

// Inverse of an odd 64-bit value modulo 2^64 via Newton iteration.
uint64_t InverseMod64(uint64_t n) {
  uint64_t x = n;  // 3 correct bits
  for (int i = 0; i < 6; ++i) {
    x *= 2 - n * x;  // Doubles correct bits each step.
  }
  return x;
}

// Packs 32-bit limbs into 64-bit lanes (little-endian), padded to `lanes`.
std::vector<uint64_t> Pack64(const std::vector<uint32_t>& limbs, size_t lanes) {
  std::vector<uint64_t> out(lanes, 0);
  for (size_t i = 0; i < limbs.size(); ++i) {
    out[i / 2] |= static_cast<uint64_t>(limbs[i]) << (32 * (i % 2));
  }
  return out;
}

// Unpacks 64-bit lanes back into a BigUint.
BigUint Unpack64(const std::vector<uint64_t>& lanes) {
  std::vector<uint32_t> limbs;
  limbs.reserve(lanes.size() * 2);
  for (uint64_t lane : lanes) {
    limbs.push_back(static_cast<uint32_t>(lane));
    limbs.push_back(static_cast<uint32_t>(lane >> 32));
  }
  return BigUint::FromLimbs(std::move(limbs));
}

}  // namespace

Result<MontgomeryContext> MontgomeryContext::Create(const BigUint& modulus) {
  if (!modulus.IsOdd() || modulus.IsOne() || modulus.IsZero()) {
    return InvalidArgumentError("Montgomery modulus must be odd and > 1");
  }
  MontgomeryContext ctx;
  ctx.modulus_ = modulus;
  // Internal representation uses 64-bit lanes; num_limbs_ counts lanes.
  ctx.num_limbs_ = (modulus.LimbCount() + 1) / 2;
  ctx.mod_lanes_ = Pack64(modulus.limbs(), ctx.num_limbs_);
  ctx.n_prime_ = 0 - InverseMod64(ctx.mod_lanes_[0]);
  // R = 2^(64*num_limbs)
  BigUint r = BigUint(1).ShiftLeft(64 * ctx.num_limbs_);
  ctx.r_mod_n_ = r.Mod(modulus);
  ctx.r2_mod_n_ = r.Mul(r).Mod(modulus);
  return ctx;
}

void MontgomeryContext::MulMontRaw(const uint64_t* a, const uint64_t* b, uint64_t* out) const {
  // CIOS (coarsely integrated operand scanning) over 64-bit lanes with
  // 128-bit intermediates.
  const size_t s = num_limbs_;
  const uint64_t* n = mod_lanes_.data();
  // t has s+2 lanes; t_hi tracks the carry lane above t[s].
  std::vector<uint64_t> t(s + 1, 0);
  uint64_t t_hi = 0;
  for (size_t i = 0; i < s; ++i) {
    // t += a[i] * b
    __uint128_t carry = 0;
    for (size_t j = 0; j < s; ++j) {
      __uint128_t cur = static_cast<__uint128_t>(a[i]) * b[j] + t[j] + static_cast<uint64_t>(carry);
      t[j] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
    __uint128_t cur = static_cast<__uint128_t>(t[s]) + static_cast<uint64_t>(carry);
    t[s] = static_cast<uint64_t>(cur);
    t_hi = static_cast<uint64_t>(cur >> 64);

    // m = t[0] * n' mod 2^64; t = (t + m*n) / 2^64
    uint64_t m = t[0] * n_prime_;
    carry = (static_cast<__uint128_t>(m) * n[0] + t[0]) >> 64;
    for (size_t j = 1; j < s; ++j) {
      __uint128_t cur2 = static_cast<__uint128_t>(m) * n[j] + t[j] + static_cast<uint64_t>(carry);
      t[j - 1] = static_cast<uint64_t>(cur2);
      carry = cur2 >> 64;
    }
    cur = static_cast<__uint128_t>(t[s]) + static_cast<uint64_t>(carry);
    t[s - 1] = static_cast<uint64_t>(cur);
    t[s] = t_hi + static_cast<uint64_t>(cur >> 64);
    t_hi = 0;
  }
  // Conditional subtraction of the modulus.
  bool ge = t[s] != 0;
  if (!ge) {
    ge = true;
    for (size_t i = s; i-- > 0;) {
      if (t[i] != n[i]) {
        ge = t[i] > n[i];
        break;
      }
    }
  }
  if (ge) {
    uint64_t borrow = 0;
    for (size_t i = 0; i < s; ++i) {
      __uint128_t subtrahend = static_cast<__uint128_t>(n[i]) + borrow;
      borrow = t[i] < subtrahend ? 1 : 0;
      out[i] = t[i] - static_cast<uint64_t>(subtrahend);
    }
  } else {
    for (size_t i = 0; i < s; ++i) {
      out[i] = t[i];
    }
  }
}

BigUint MontgomeryContext::ToMontgomery(const BigUint& a) const {
  return MulMont(a.Mod(modulus_), r2_mod_n_);
}

BigUint MontgomeryContext::FromMontgomery(const BigUint& a_mont) const {
  return MulMont(a_mont, BigUint(1));
}

BigUint MontgomeryContext::MulMont(const BigUint& a_mont, const BigUint& b_mont) const {
  std::vector<uint64_t> a = Pack64(a_mont.limbs(), num_limbs_);
  std::vector<uint64_t> b = Pack64(b_mont.limbs(), num_limbs_);
  std::vector<uint64_t> out(num_limbs_, 0);
  MulMontRaw(a.data(), b.data(), out.data());
  return Unpack64(out);
}

BigUint MontgomeryContext::ModExp(const BigUint& base, const BigUint& exponent) const {
  if (exponent.IsZero()) {
    return BigUint(1).Mod(modulus_);
  }
  // 4-bit fixed window over raw 64-bit lanes (avoids per-step repacking).
  constexpr size_t kWindow = 4;
  constexpr size_t kTableSize = 1u << kWindow;
  const size_t s = num_limbs_;
  std::vector<std::vector<uint64_t>> table(kTableSize, std::vector<uint64_t>(s, 0));
  table[0] = Pack64(r_mod_n_.limbs(), s);
  table[1] = Pack64(ToMontgomery(base).limbs(), s);
  for (size_t i = 2; i < kTableSize; ++i) {
    MulMontRaw(table[i - 1].data(), table[1].data(), table[i].data());
  }
  size_t bits = exponent.BitLength();
  size_t windows = (bits + kWindow - 1) / kWindow;
  std::vector<uint64_t> acc = table[0];
  std::vector<uint64_t> tmp(s, 0);
  for (size_t w = windows; w-- > 0;) {
    for (size_t i = 0; i < kWindow; ++i) {
      MulMontRaw(acc.data(), acc.data(), tmp.data());
      acc.swap(tmp);
    }
    uint32_t digit = 0;
    for (size_t b = 0; b < kWindow; ++b) {
      size_t bit = w * kWindow + (kWindow - 1 - b);
      digit = (digit << 1) | (exponent.Bit(bit) ? 1u : 0u);
    }
    if (digit != 0) {
      MulMontRaw(acc.data(), table[digit].data(), tmp.data());
      acc.swap(tmp);
    }
  }
  return FromMontgomery(Unpack64(acc));
}

}  // namespace indaas
