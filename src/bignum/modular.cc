#include "src/bignum/modular.h"

#include <utility>

#include "src/bignum/montgomery.h"

namespace indaas {

BigUint Gcd(const BigUint& a, const BigUint& b) {
  // Euclid's algorithm; BigUint division is fast enough for our key sizes.
  BigUint x = a;
  BigUint y = b;
  while (!y.IsZero()) {
    BigUint r = x.Mod(y);
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

BigUint Lcm(const BigUint& a, const BigUint& b) {
  if (a.IsZero() || b.IsZero()) {
    return BigUint();
  }
  return a.Div(Gcd(a, b)).Mul(b);
}

Result<BigUint> ModInverse(const BigUint& a, const BigUint& m) {
  if (m.Compare(BigUint(2)) < 0) {
    return InvalidArgumentError("ModInverse: modulus must be >= 2");
  }
  // Iterative extended Euclid. Coefficients of 'a' alternate in sign along the
  // remainder sequence, so we track magnitude plus a sign flag.
  BigUint r0 = m;
  BigUint r1 = a.Mod(m);
  BigUint t0;           // coefficient magnitude for r0
  BigUint t1(1);        // coefficient magnitude for r1
  bool t0_neg = false;  // sign of t0
  bool t1_neg = false;  // sign of t1
  while (!r1.IsZero()) {
    auto divmod = r0.DivMod(r1);
    const BigUint& q = divmod->quotient;
    BigUint r2 = std::move(divmod->remainder);
    // t2 = t0 - q*t1 with explicit sign handling.
    BigUint qt1 = q.Mul(t1);
    BigUint t2;
    bool t2_neg = false;
    if (t0_neg == t1_neg) {
      // Same sign: t0 - q*t1 may flip sign.
      if (t0.Compare(qt1) >= 0) {
        t2 = t0.Sub(qt1);
        t2_neg = t0_neg;
      } else {
        t2 = qt1.Sub(t0);
        t2_neg = !t0_neg;
      }
    } else {
      // Opposite signs: magnitudes add; sign follows t0.
      t2 = t0.Add(qt1);
      t2_neg = t0_neg;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }
  if (!r0.IsOne()) {
    return InvalidArgumentError("ModInverse: inputs are not coprime (gcd = " + r0.ToDecimal() +
                                ")");
  }
  BigUint inv = t0.Mod(m);
  if (t0_neg && !inv.IsZero()) {
    inv = m.Sub(inv);
  }
  return inv;
}

Result<BigUint> ModExp(const BigUint& base, const BigUint& exponent, const BigUint& modulus) {
  if (modulus.IsZero()) {
    return InvalidArgumentError("ModExp: modulus must be >= 1");
  }
  if (modulus.IsOne()) {
    return BigUint();
  }
  if (modulus.IsOdd()) {
    INDAAS_ASSIGN_OR_RETURN(MontgomeryContext ctx, MontgomeryContext::Create(modulus));
    return ctx.ModExp(base, exponent);
  }
  // Plain square-and-multiply for even moduli (Paillier's n^2 is odd, so this
  // path is rare; it exists for completeness).
  BigUint result(1);
  BigUint b = base.Mod(modulus);
  size_t bits = exponent.BitLength();
  for (size_t i = 0; i < bits; ++i) {
    if (exponent.Bit(i)) {
      result = result.Mul(b).Mod(modulus);
    }
    b = b.Mul(b).Mod(modulus);
  }
  return result;
}

BigUint ModMul(const BigUint& a, const BigUint& b, const BigUint& m) {
  return a.Mod(m).Mul(b.Mod(m)).Mod(m);
}

BigUint ModAdd(const BigUint& a, const BigUint& b, const BigUint& m) {
  return a.Mod(m).Add(b.Mod(m)).Mod(m);
}

BigUint ModSub(const BigUint& a, const BigUint& b, const BigUint& m) {
  BigUint am = a.Mod(m);
  BigUint bm = b.Mod(m);
  if (am.Compare(bm) >= 0) {
    return am.Sub(bm);
  }
  return am.Add(m).Sub(bm);
}

}  // namespace indaas
