// Modular arithmetic helpers: gcd, modular inverse, lcm, and a general
// modular exponentiation that works for any modulus (delegating to Montgomery
// for odd moduli).

#ifndef SRC_BIGNUM_MODULAR_H_
#define SRC_BIGNUM_MODULAR_H_

#include "src/bignum/biguint.h"
#include "src/util/status.h"

namespace indaas {

// Greatest common divisor (binary GCD).
BigUint Gcd(const BigUint& a, const BigUint& b);

// Least common multiple: a*b / gcd(a,b). Returns 0 if either input is 0.
BigUint Lcm(const BigUint& a, const BigUint& b);

// Multiplicative inverse of a modulo m. Errors when gcd(a, m) != 1 or m < 2.
Result<BigUint> ModInverse(const BigUint& a, const BigUint& m);

// (base ^ exponent) mod modulus for any modulus >= 1. For odd moduli this is
// Montgomery-accelerated; for even moduli it falls back to square-and-multiply
// with division-based reduction.
Result<BigUint> ModExp(const BigUint& base, const BigUint& exponent, const BigUint& modulus);

// (a * b) mod m.
BigUint ModMul(const BigUint& a, const BigUint& b, const BigUint& m);

// (a + b) mod m.
BigUint ModAdd(const BigUint& a, const BigUint& b, const BigUint& m);

// (a - b) mod m (wraps around).
BigUint ModSub(const BigUint& a, const BigUint& b, const BigUint& m);

}  // namespace indaas

#endif  // SRC_BIGNUM_MODULAR_H_
