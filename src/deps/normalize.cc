#include "src/deps/normalize.h"

#include <algorithm>
#include <cctype>

#include "src/util/strings.h"

namespace indaas {
namespace {

std::string LowerTrim(const std::string& text) {
  std::string out(Trim(text));
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

}  // namespace

std::string NormalizeNetworkComponent(const std::string& device) {
  return "net:" + LowerTrim(device);
}

std::string NormalizePackage(const std::string& name, const std::string& version) {
  std::string base = LowerTrim(name);
  // Accept an inline "name=version" form.
  if (version.empty()) {
    return "pkg:" + base;
  }
  return "pkg:" + base + "=" + LowerTrim(version);
}

std::string NormalizeHardwareComponent(const std::string& model) {
  return "hw:" + LowerTrim(model);
}

std::vector<std::string> NormalizedComponentsOf(const DependencyRecord& record) {
  std::vector<std::string> out;
  if (const auto* net = std::get_if<NetworkDependency>(&record)) {
    out.reserve(net->route.size());
    for (const std::string& device : net->route) {
      out.push_back(NormalizeNetworkComponent(device));
    }
    return out;
  }
  if (const auto* hw = std::get_if<HardwareDependency>(&record)) {
    out.push_back(NormalizeHardwareComponent(hw->dep));
    return out;
  }
  const auto& sw = std::get<SoftwareDependency>(record);
  out.reserve(sw.deps.size());
  for (const std::string& pkg : sw.deps) {
    // Packages may carry an inline "name=version".
    size_t eq = pkg.find('=');
    if (eq == std::string::npos) {
      out.push_back(NormalizePackage(pkg));
    } else {
      out.push_back(NormalizePackage(pkg.substr(0, eq), pkg.substr(eq + 1)));
    }
  }
  return out;
}

}  // namespace indaas
