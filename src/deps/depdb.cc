#include "src/deps/depdb.h"

#include <algorithm>
#include <set>

namespace indaas {

void DepDb::Add(const DependencyRecord& record) {
  if (const auto* net = std::get_if<NetworkDependency>(&record)) {
    auto [begin, end] = network_by_src_.equal_range(net->src);
    for (auto it = begin; it != end; ++it) {
      if (network_[it->second] == *net) {
        return;
      }
    }
    network_by_src_.emplace(net->src, network_.size());
    network_.push_back(*net);
    return;
  }
  if (const auto* hw = std::get_if<HardwareDependency>(&record)) {
    auto [begin, end] = hardware_by_host_.equal_range(hw->hw);
    for (auto it = begin; it != end; ++it) {
      if (hardware_[it->second] == *hw) {
        return;
      }
    }
    hardware_by_host_.emplace(hw->hw, hardware_.size());
    hardware_.push_back(*hw);
    return;
  }
  const auto& sw = std::get<SoftwareDependency>(record);
  auto [begin, end] = software_by_host_.equal_range(sw.hw);
  for (auto it = begin; it != end; ++it) {
    if (software_[it->second] == sw) {
      return;
    }
  }
  software_by_host_.emplace(sw.hw, software_.size());
  software_by_pgm_.emplace(sw.pgm, software_.size());
  software_.push_back(sw);
}

void DepDb::AddAll(const std::vector<DependencyRecord>& records) {
  for (const DependencyRecord& record : records) {
    Add(record);
  }
}

Status DepDb::ImportText(std::string_view text) {
  INDAAS_ASSIGN_OR_RETURN(std::vector<DependencyRecord> records, ParseRecords(text));
  AddAll(records);
  return Status::Ok();
}

std::string DepDb::ExportText() const {
  std::string out;
  for (const NetworkDependency& net : network_) {
    out += SerializeRecord(net);
    out += '\n';
  }
  for (const HardwareDependency& hw : hardware_) {
    out += SerializeRecord(hw);
    out += '\n';
  }
  for (const SoftwareDependency& sw : software_) {
    out += SerializeRecord(sw);
    out += '\n';
  }
  return out;
}

std::vector<NetworkDependency> DepDb::RoutesFrom(const std::string& src) const {
  std::vector<NetworkDependency> out;
  auto [begin, end] = network_by_src_.equal_range(src);
  for (auto it = begin; it != end; ++it) {
    out.push_back(network_[it->second]);
  }
  return out;
}

std::vector<NetworkDependency> DepDb::RoutesBetween(const std::string& src,
                                                    const std::string& dst) const {
  std::vector<NetworkDependency> out;
  for (const NetworkDependency& net : RoutesFrom(src)) {
    if (net.dst == dst) {
      out.push_back(net);
    }
  }
  return out;
}

std::vector<HardwareDependency> DepDb::HardwareOf(const std::string& hw) const {
  std::vector<HardwareDependency> out;
  auto [begin, end] = hardware_by_host_.equal_range(hw);
  for (auto it = begin; it != end; ++it) {
    out.push_back(hardware_[it->second]);
  }
  return out;
}

std::vector<SoftwareDependency> DepDb::SoftwareOn(const std::string& hw) const {
  std::vector<SoftwareDependency> out;
  auto [begin, end] = software_by_host_.equal_range(hw);
  for (auto it = begin; it != end; ++it) {
    out.push_back(software_[it->second]);
  }
  return out;
}

Result<SoftwareDependency> DepDb::SoftwareByName(const std::string& pgm) const {
  auto it = software_by_pgm_.find(pgm);
  if (it == software_by_pgm_.end()) {
    return NotFoundError("no software component named '" + pgm + "'");
  }
  return software_[it->second];
}

std::vector<std::string> DepDb::KnownHosts() const {
  std::set<std::string> hosts;
  for (const auto& [src, _] : network_by_src_) {
    hosts.insert(src);
  }
  for (const auto& [host, _] : hardware_by_host_) {
    hosts.insert(host);
  }
  for (const auto& [host, _] : software_by_host_) {
    hosts.insert(host);
  }
  return std::vector<std::string>(hosts.begin(), hosts.end());
}

void DepDb::Clear() {
  network_.clear();
  hardware_.clear();
  software_.clear();
  network_by_src_.clear();
  hardware_by_host_.clear();
  software_by_host_.clear();
  software_by_pgm_.clear();
}

}  // namespace indaas
