// Uniform dependency representation (paper §3, Table 1).
//
// All dependency acquisition modules emit records in one of three shapes:
//   Network : <src="S" dst="D" route="x,y,z"/>
//   Hardware: <hw="H" type="T" dep="x"/>
//   Software: <pgm="S" hw="H" dep="x,y,z"/>
// This module defines the in-memory record types and the textual wire format
// (parser + serializer) used to load/store DepDB contents.

#ifndef SRC_DEPS_RECORD_H_
#define SRC_DEPS_RECORD_H_

#include <string>
#include <variant>
#include <vector>

#include "src/util/status.h"

namespace indaas {

// A route from `src` to `dst` through the listed network devices.
struct NetworkDependency {
  std::string src;
  std::string dst;
  std::vector<std::string> route;

  bool operator==(const NetworkDependency&) const = default;
};

// A physical component of host `hw`: its `type` (CPU/Disk/RAM/NIC/...) and
// the component identity `dep` (model / serial).
struct HardwareDependency {
  std::string hw;
  std::string type;
  std::string dep;

  bool operator==(const HardwareDependency&) const = default;
};

// Software component `pgm` running on host `hw`, depending on packages `deps`.
struct SoftwareDependency {
  std::string pgm;
  std::string hw;
  std::vector<std::string> deps;

  bool operator==(const SoftwareDependency&) const = default;
};

using DependencyRecord = std::variant<NetworkDependency, HardwareDependency, SoftwareDependency>;

// Serializes a record into its Table 1 line form.
std::string SerializeRecord(const DependencyRecord& record);

// Parses one Table 1 line. The record type is keyed on the leading attribute:
// src= -> network, hw= -> hardware, pgm= -> software.
Result<DependencyRecord> ParseRecord(std::string_view line);

// Parses a multi-line document, skipping blank lines and '#' / '---' comment
// or separator lines (as in the paper's Figure 3 listing).
Result<std::vector<DependencyRecord>> ParseRecords(std::string_view text);

}  // namespace indaas

#endif  // SRC_DEPS_RECORD_H_
