// CVSS vulnerability feed ingestion (paper §5.1).
//
// "Regarding the failure probabilities of software dependencies, the Common
// Vulnerability Scoring System (CVSS) can be used to provide vulnerability-
// related failure probabilities for many software libraries and packages."
// This module parses a simple CVSS feed and folds the scores into a
// FailureProbabilityModel as per-package overrides.
//
// Feed format, one entry per line (blank lines and '#' comments skipped):
//   <package> <version> <cvss-base-score 0..10>
// e.g.
//   openssl 1.0.1e 7.5      # Heartbleed-era OpenSSL
//   libc6   2.13-38 5.0

#ifndef SRC_DEPS_CVSS_H_
#define SRC_DEPS_CVSS_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/deps/prob_model.h"
#include "src/util/status.h"

namespace indaas {

struct CvssEntry {
  std::string package;
  std::string version;
  double base_score = 0.0;  // 0..10
};

// Parses a feed document. Malformed lines are errors (not skipped), so a
// corrupted feed cannot silently weaken an audit.
Result<std::vector<CvssEntry>> ParseCvssFeed(std::string_view text);

// Applies entries to `model` as exact-component overrides on the normalized
// id "pkg:<name>=<version>". The probability heuristic maps the 0..10 base
// score linearly onto [0, max_prob] (default: a score of 10 means a 30%
// annual failure/compromise probability).
Status ApplyCvssFeed(const std::vector<CvssEntry>& entries, FailureProbabilityModel& model,
                     double max_prob = 0.3);

// Convenience: parse + apply.
Status LoadCvssFeed(std::string_view text, FailureProbabilityModel& model,
                    double max_prob = 0.3);

}  // namespace indaas

#endif  // SRC_DEPS_CVSS_H_
