#include "src/deps/prob_model.h"

#include "src/util/strings.h"

namespace indaas {

FailureProbabilityModel::FailureProbabilityModel(double default_prob)
    : default_prob_(default_prob) {}

Result<FailureProbabilityModel> FailureProbabilityModel::FromObservations(
    const std::vector<FailureObservation>& observations, double default_prob) {
  FailureProbabilityModel model(default_prob);
  for (const FailureObservation& obs : observations) {
    if (obs.population == 0) {
      return InvalidArgumentError("FromObservations: zero population for class '" +
                                  obs.class_prefix + "'");
    }
    if (obs.failed > obs.population) {
      return InvalidArgumentError("FromObservations: failed > population for class '" +
                                  obs.class_prefix + "'");
    }
    INDAAS_RETURN_IF_ERROR(model.SetClassProb(
        obs.class_prefix,
        static_cast<double>(obs.failed) / static_cast<double>(obs.population)));
  }
  return model;
}

FailureProbabilityModel FailureProbabilityModel::GillEtAlDefaults() {
  FailureProbabilityModel model(0.01);
  // Annual failure probabilities for data center network devices, after
  // Gill, Jain & Nagappan, "Understanding network failures in data centers"
  // (SIGCOMM 2011), Figure 4 — the source the paper cites in §5.1.
  (void)model.SetClassProb("net:tor", 0.05);   // Top-of-Rack switches
  (void)model.SetClassProb("net:agg", 0.10);   // aggregation switches
  (void)model.SetClassProb("net:core", 0.12);  // core routers
  (void)model.SetClassProb("net:lb", 0.20);    // load balancers
  (void)model.SetClassProb("net:", 0.08);      // other network gear
  // Hardware components: disks dominate (AFR ~2-4%), others lower.
  (void)model.SetClassProb("hw:disk", 0.04);
  (void)model.SetClassProb("hw:", 0.02);
  // Software packages: a flat CVSS-flavored prior; callers refine with
  // SetComponentProb from vulnerability feeds.
  (void)model.SetClassProb("pkg:", 0.03);
  // Servers as whole units (Gill et al. report ~5% yearly).
  (void)model.SetClassProb("server", 0.05);
  (void)model.SetClassProb("vm", 0.05);
  return model;
}

Status FailureProbabilityModel::SetClassProb(const std::string& class_prefix, double prob) {
  if (prob < 0.0 || prob > 1.0) {
    return InvalidArgumentError(StrFormat("probability %f out of [0,1]", prob));
  }
  class_probs_[class_prefix] = prob;
  return Status::Ok();
}

Status FailureProbabilityModel::SetComponentProb(const std::string& component_id, double prob) {
  if (prob < 0.0 || prob > 1.0) {
    return InvalidArgumentError(StrFormat("probability %f out of [0,1]", prob));
  }
  component_probs_[component_id] = prob;
  return Status::Ok();
}

double FailureProbabilityModel::Lookup(const std::string& component_id) const {
  auto exact = component_probs_.find(component_id);
  if (exact != component_probs_.end()) {
    return exact->second;
  }
  // Longest matching prefix wins.
  size_t best_len = 0;
  double best_prob = default_prob_;
  for (const auto& [prefix, prob] : class_probs_) {
    if (prefix.size() >= best_len && StartsWith(component_id, prefix)) {
      best_len = prefix.size();
      best_prob = prob;
    }
  }
  return best_prob;
}

}  // namespace indaas
