// Failure probability model (paper §5.1).
//
// Fault-set-level auditing needs per-component failure probabilities. The
// paper points at two sources: Gill et al.'s measured annual device failure
// rates for network gear, and CVSS-derived vulnerability scores for software
// packages. This model maps component classes to probabilities, with
// class-prefix matching over normalized identifiers ("net:", "pkg:", "hw:")
// and per-component overrides.

#ifndef SRC_DEPS_PROB_MODEL_H_
#define SRC_DEPS_PROB_MODEL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace indaas {

// One fleet observation: how many components of a device class exist and
// how many of them failed during the observation period.
struct FailureObservation {
  std::string class_prefix;  // e.g. "net:tor", "hw:disk"
  uint64_t failed = 0;
  uint64_t population = 0;
};

class FailureProbabilityModel {
 public:
  // Empty model: Lookup returns the default probability for everything.
  explicit FailureProbabilityModel(double default_prob = 0.01);

  // Builds a model from fleet observations, using Gill et al.'s estimator
  // (§5.1): probability of a class = components of that type that ever
  // failed during the period / total population of that type. Errors on a
  // zero population or failed > population.
  static Result<FailureProbabilityModel> FromObservations(
      const std::vector<FailureObservation>& observations, double default_prob = 0.01);

  // A model preloaded with the measured annual failure rates reported by
  // Gill et al. (SIGCOMM'11) for data center devices, the paper's reference:
  // ToR switches ~5%, aggregation switches ~10%, core routers/load balancers
  // higher; plus modest defaults for hardware and software components.
  static FailureProbabilityModel GillEtAlDefaults();

  // Sets the probability for a device class; `class_prefix` is matched
  // against the start of the normalized id (longest prefix wins), e.g.
  // "net:tor" covers "net:tor17".
  Status SetClassProb(const std::string& class_prefix, double prob);

  // Exact-id override (takes precedence over class prefixes).
  Status SetComponentProb(const std::string& component_id, double prob);

  // Probability for a normalized component id.
  double Lookup(const std::string& component_id) const;

  double default_prob() const { return default_prob_; }

 private:
  double default_prob_;
  std::map<std::string, double> class_probs_;      // by prefix
  std::map<std::string, double> component_probs_;  // exact
};

}  // namespace indaas

#endif  // SRC_DEPS_PROB_MODEL_H_
