#include "src/deps/record.h"

#include <map>

#include "src/util/strings.h"

namespace indaas {
namespace {

// Parses the attribute list of a '<key="value" .../>' element, preserving
// attribute order.
Result<std::vector<std::pair<std::string, std::string>>> ParseAttributes(std::string_view line) {
  std::string_view text = Trim(line);
  if (text.size() < 2 || text.front() != '<') {
    return ParseError("record must start with '<': " + std::string(line));
  }
  text.remove_prefix(1);
  if (EndsWith(text, "/>")) {
    text.remove_suffix(2);
  } else if (EndsWith(text, ">")) {
    text.remove_suffix(1);
  } else {
    return ParseError("record must end with '>' or '/>': " + std::string(line));
  }
  std::vector<std::pair<std::string, std::string>> attrs;
  size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
    if (pos >= text.size()) {
      break;
    }
    size_t eq = text.find('=', pos);
    if (eq == std::string_view::npos) {
      return ParseError("expected key=\"value\" in: " + std::string(line));
    }
    std::string key(Trim(text.substr(pos, eq - pos)));
    size_t quote_open = text.find('"', eq);
    if (quote_open == std::string_view::npos) {
      return ParseError("missing opening quote in: " + std::string(line));
    }
    size_t quote_close = text.find('"', quote_open + 1);
    if (quote_close == std::string_view::npos) {
      return ParseError("missing closing quote in: " + std::string(line));
    }
    std::string value(text.substr(quote_open + 1, quote_close - quote_open - 1));
    attrs.emplace_back(std::move(key), std::move(value));
    pos = quote_close + 1;
  }
  if (attrs.empty()) {
    return ParseError("record has no attributes: " + std::string(line));
  }
  return attrs;
}

std::string FindAttr(const std::vector<std::pair<std::string, std::string>>& attrs,
                     const std::string& key) {
  for (const auto& [k, v] : attrs) {
    if (k == key) {
      return v;
    }
  }
  return "";
}

}  // namespace

std::string SerializeRecord(const DependencyRecord& record) {
  if (const auto* net = std::get_if<NetworkDependency>(&record)) {
    return StrFormat("<src=\"%s\" dst=\"%s\" route=\"%s\"/>", net->src.c_str(), net->dst.c_str(),
                     Join(net->route, ",").c_str());
  }
  if (const auto* hw = std::get_if<HardwareDependency>(&record)) {
    return StrFormat("<hw=\"%s\" type=\"%s\" dep=\"%s\"/>", hw->hw.c_str(), hw->type.c_str(),
                     hw->dep.c_str());
  }
  const auto& sw = std::get<SoftwareDependency>(record);
  return StrFormat("<pgm=\"%s\" hw=\"%s\" dep=\"%s\"/>", sw.pgm.c_str(), sw.hw.c_str(),
                   Join(sw.deps, ",").c_str());
}

Result<DependencyRecord> ParseRecord(std::string_view line) {
  INDAAS_ASSIGN_OR_RETURN(auto attrs, ParseAttributes(line));
  const std::string& kind = attrs.front().first;
  if (kind == "src") {
    NetworkDependency net;
    net.src = attrs.front().second;
    net.dst = FindAttr(attrs, "dst");
    net.route = SplitAndTrim(FindAttr(attrs, "route"), ',');
    if (net.src.empty() || net.dst.empty()) {
      return ParseError("network record needs src and dst: " + std::string(line));
    }
    return DependencyRecord(std::move(net));
  }
  if (kind == "hw") {
    HardwareDependency hw;
    hw.hw = attrs.front().second;
    hw.type = FindAttr(attrs, "type");
    hw.dep = FindAttr(attrs, "dep");
    if (hw.hw.empty() || hw.dep.empty()) {
      return ParseError("hardware record needs hw and dep: " + std::string(line));
    }
    return DependencyRecord(std::move(hw));
  }
  if (kind == "pgm") {
    SoftwareDependency sw;
    sw.pgm = attrs.front().second;
    sw.hw = FindAttr(attrs, "hw");
    sw.deps = SplitAndTrim(FindAttr(attrs, "dep"), ',');
    if (sw.pgm.empty() || sw.hw.empty()) {
      return ParseError("software record needs pgm and hw: " + std::string(line));
    }
    return DependencyRecord(std::move(sw));
  }
  return ParseError("unknown record kind '" + kind + "' in: " + std::string(line));
}

Result<std::vector<DependencyRecord>> ParseRecords(std::string_view text) {
  std::vector<DependencyRecord> records;
  for (const std::string& raw_line : Split(text, '\n')) {
    std::string_view line = Trim(raw_line);
    if (line.empty() || line.front() == '#' || StartsWith(line, "---")) {
      continue;
    }
    INDAAS_ASSIGN_OR_RETURN(DependencyRecord record, ParseRecord(line));
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace indaas
