// DepDB — the dependency information database (paper §3).
//
// Dependency acquisition modules store their adapted records here; the SIA
// fault-graph builder queries it per server (§4.1.1 steps 2-6). In-memory
// with host-keyed indexes, plus text import/export in the Table 1 format.

#ifndef SRC_DEPS_DEPDB_H_
#define SRC_DEPS_DEPDB_H_

#include <map>
#include <string>
#include <vector>

#include "src/deps/record.h"
#include "src/util/status.h"

namespace indaas {

class DepDb {
 public:
  // Inserts a record; duplicates are stored once (exact-match dedup).
  void Add(const DependencyRecord& record);

  void AddAll(const std::vector<DependencyRecord>& records);

  // Parses Table 1 formatted text and inserts every record.
  Status ImportText(std::string_view text);

  // Serializes the full database (grouped: network, hardware, software).
  std::string ExportText() const;

  // --- Queries used by the fault-graph builder ---

  // All routes originating at `src` (e.g. server -> Internet paths).
  std::vector<NetworkDependency> RoutesFrom(const std::string& src) const;

  // Routes from `src` to a specific destination.
  std::vector<NetworkDependency> RoutesBetween(const std::string& src,
                                               const std::string& dst) const;

  // Hardware components of host `hw`.
  std::vector<HardwareDependency> HardwareOf(const std::string& hw) const;

  // Software components running on host `hw`.
  std::vector<SoftwareDependency> SoftwareOn(const std::string& hw) const;

  // Software record for a specific program name, if present.
  Result<SoftwareDependency> SoftwareByName(const std::string& pgm) const;

  // Hosts that appear as a network source, hardware owner, or software host.
  std::vector<std::string> KnownHosts() const;

  size_t NetworkCount() const { return network_.size(); }
  size_t HardwareCount() const { return hardware_.size(); }
  size_t SoftwareCount() const { return software_.size(); }
  size_t TotalCount() const { return network_.size() + hardware_.size() + software_.size(); }

  void Clear();

 private:
  std::vector<NetworkDependency> network_;
  std::vector<HardwareDependency> hardware_;
  std::vector<SoftwareDependency> software_;
  // Indexes: host/subject -> record positions.
  std::multimap<std::string, size_t> network_by_src_;
  std::multimap<std::string, size_t> hardware_by_host_;
  std::multimap<std::string, size_t> software_by_host_;
  std::map<std::string, size_t> software_by_pgm_;
};

}  // namespace indaas

#endif  // SRC_DEPS_DEPDB_H_
