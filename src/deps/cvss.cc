#include "src/deps/cvss.h"

#include <cstdlib>

#include "src/deps/normalize.h"
#include "src/util/strings.h"

namespace indaas {

Result<std::vector<CvssEntry>> ParseCvssFeed(std::string_view text) {
  std::vector<CvssEntry> entries;
  size_t line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    std::string_view line = Trim(raw_line);
    if (line.empty() || line.front() == '#') {
      continue;
    }
    std::vector<std::string> fields = SplitAndTrim(line, ' ');
    // Allow trailing inline comments: "openssl 1.0.1e 7.5  # heartbleed".
    for (size_t i = 0; i < fields.size(); ++i) {
      if (fields[i].front() == '#') {
        fields.resize(i);
        break;
      }
    }
    if (fields.size() != 3) {
      return ParseError(StrFormat("CVSS feed line %zu: expected 'package version score', got '%s'",
                                  line_number, std::string(line).c_str()));
    }
    char* end = nullptr;
    double score = std::strtod(fields[2].c_str(), &end);
    if (end == fields[2].c_str() || *end != '\0' || score < 0.0 || score > 10.0) {
      return ParseError(
          StrFormat("CVSS feed line %zu: score '%s' not in [0,10]", line_number,
                    fields[2].c_str()));
    }
    entries.push_back(CvssEntry{fields[0], fields[1], score});
  }
  return entries;
}

Status ApplyCvssFeed(const std::vector<CvssEntry>& entries, FailureProbabilityModel& model,
                     double max_prob) {
  if (max_prob < 0.0 || max_prob > 1.0) {
    return InvalidArgumentError("ApplyCvssFeed: max_prob must be in [0,1]");
  }
  for (const CvssEntry& entry : entries) {
    double prob = entry.base_score / 10.0 * max_prob;
    INDAAS_RETURN_IF_ERROR(
        model.SetComponentProb(NormalizePackage(entry.package, entry.version), prob));
  }
  return Status::Ok();
}

Status LoadCvssFeed(std::string_view text, FailureProbabilityModel& model, double max_prob) {
  INDAAS_ASSIGN_OR_RETURN(std::vector<CvssEntry> entries, ParseCvssFeed(text));
  return ApplyCvssFeed(entries, model, max_prob);
}

}  // namespace indaas
