// Component normalization (paper §4.2.3).
//
// For auditing — especially private auditing across providers — the same
// physical or logical component must map to the same identifier everywhere:
//   * third-party routing elements  -> "net:<ip-or-name>"
//   * software packages             -> "pkg:<name>=<version>"
//   * hardware components           -> "hw:<model>"
// Normalized identifiers are what component-sets, fault-graph basic events,
// and PIA set elements are made of.

#ifndef SRC_DEPS_NORMALIZE_H_
#define SRC_DEPS_NORMALIZE_H_

#include <string>
#include <vector>

#include "src/deps/record.h"

namespace indaas {

// "net:<device>"; lowercases and strips whitespace so "ToR1 " == "tor1".
std::string NormalizeNetworkComponent(const std::string& device);

// "pkg:<name>=<version>"; a bare name (no version) normalizes to
// "pkg:<name>". Accepts "name=version", "name-version" is NOT split (dashes
// are common inside package names); pass version separately when known.
std::string NormalizePackage(const std::string& name, const std::string& version = "");

// "hw:<model>"; lowercased.
std::string NormalizeHardwareComponent(const std::string& model);

// Expands one dependency record into the normalized component identifiers it
// contributes: network records yield one id per routing element; hardware
// records yield the component model; software records yield one id per
// package dependency.
std::vector<std::string> NormalizedComponentsOf(const DependencyRecord& record);

}  // namespace indaas

#endif  // SRC_DEPS_NORMALIZE_H_
