// Length-prefixed message framing with a versioned binary header
// (DESIGN.md §7). Every INDaaS message on the wire is one frame:
//
//   offset  size  field
//   0       4     magic 0x494E4441 ("INDA"), big-endian
//   4       1     wire-format version (kWireVersion)
//   5       1     message type (svc::MsgType; opaque to this layer)
//   6       2     flags (bit 0 = trace-context extension; others reserved,
//                 must be zero)
//   8       4     payload length in bytes, big-endian (extension excluded)
//   12      16    trace-context extension, only when flag bit 0 is set:
//                 trace id (u64 BE) + parent wire span id (u64 BE)
//   12|28   n     payload
//
// The trace-context extension (kFrameFlagTraceContext) carries the
// distributed request identity from src/obs/propagate.h ahead of the
// payload; its 16 bytes are NOT counted in the payload length, so a peer
// that understands the flag can strip it without re-parsing the payload.
// Traceless frames (flags == 0) remain fully valid — old clients keep
// working — but any other nonzero flag bit is still a hard kProtocolError.
//
// ReadFrame validates magic, version, flags and length against FrameLimits
// before allocating the payload buffer, so a garbage or hostile peer costs
// a 12-byte read, never an attacker-chosen allocation. Frame errors are
// kProtocolError (do not retry); timeouts and closed peers keep the socket
// layer's kDeadlineExceeded / kUnavailable codes.

#ifndef SRC_NET_FRAME_H_
#define SRC_NET_FRAME_H_

#include <cstdint>
#include <string>

#include "src/net/socket.h"
#include "src/obs/propagate.h"
#include "src/util/status.h"

namespace indaas {
namespace net {

inline constexpr uint32_t kFrameMagic = 0x494E4441;  // "INDA"
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 12;

// Frame flag bits (header offset 6, big-endian u16). Bit 0 announces the
// fixed-size trace-context extension between header and payload; all other
// bits are reserved and rejected.
inline constexpr uint16_t kFrameFlagTraceContext = 0x0001;
inline constexpr size_t kTraceContextBytes = 16;

struct FrameLimits {
  // Largest payload ReadFrame will accept. PIA datasets dominate frame
  // sizes: 100k elements × 128-byte group elements ≈ 13 MB, so 64 MB leaves
  // ample headroom while still rejecting nonsense lengths.
  uint32_t max_payload_bytes = 64u << 20;
};

struct Frame {
  uint8_t type = 0;
  std::string payload;
  // Distributed request identity carried by the trace extension; invalid
  // (trace_id == 0) when the frame had no extension.
  obs::TraceContext trace;
};

// Serializes the header for `type`/`payload_size` (testing seam; WriteFrame
// uses it internally). `flags` is written verbatim — tests use it to forge
// frames with reserved bits set.
std::string EncodeFrameHeader(uint8_t type, uint32_t payload_size, uint16_t flags = 0);

// Serializes the 16-byte trace-context extension (trace id + parent wire
// span id, both big-endian u64).
std::string EncodeTraceContext(const obs::TraceContext& trace);

// Decodes a kTraceContextBytes-byte trace extension.
Result<obs::TraceContext> DecodeTraceContext(std::string_view bytes);

// Decoded, validated header fields.
struct FrameHeader {
  uint8_t type = 0;
  uint32_t payload_size = 0;
  // True when the trace-context flag was set: kTraceContextBytes of trace
  // extension follow the header, before the payload.
  bool has_trace_context = false;
};

// Validates a raw kFrameHeaderBytes-byte header against `limits`. Shared by
// ReadFrame and multiplexing callers that assemble frames from non-blocking
// reads (the PIA ring pump).
Result<FrameHeader> DecodeFrameHeader(std::string_view bytes, const FrameLimits& limits);

// Writes one frame (header [+ trace extension] + payload) to the socket.
// The extension is emitted only when `trace` is valid.
Status WriteFrame(Socket& socket, uint8_t type, std::string_view payload, int timeout_ms,
                  const obs::TraceContext& trace = {});

// Reads and validates one frame. The timeout applies to each socket wait,
// so a total stall is bounded by timeout_ms per phase (header, optional
// trace extension, payload).
Result<Frame> ReadFrame(Socket& socket, const FrameLimits& limits, int timeout_ms);

}  // namespace net
}  // namespace indaas

#endif  // SRC_NET_FRAME_H_
