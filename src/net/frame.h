// Length-prefixed message framing with a versioned binary header
// (DESIGN.md §7). Every INDaaS message on the wire is one frame:
//
//   offset  size  field
//   0       4     magic 0x494E4441 ("INDA"), big-endian
//   4       1     wire-format version (kWireVersion)
//   5       1     message type (svc::MsgType; opaque to this layer)
//   6       2     flags (reserved, must be zero)
//   8       4     payload length in bytes, big-endian
//   12      n     payload
//
// ReadFrame validates magic, version, flags and length against FrameLimits
// before allocating the payload buffer, so a garbage or hostile peer costs
// a 12-byte read, never an attacker-chosen allocation. Frame errors are
// kProtocolError (do not retry); timeouts and closed peers keep the socket
// layer's kDeadlineExceeded / kUnavailable codes.

#ifndef SRC_NET_FRAME_H_
#define SRC_NET_FRAME_H_

#include <cstdint>
#include <string>

#include "src/net/socket.h"
#include "src/util/status.h"

namespace indaas {
namespace net {

inline constexpr uint32_t kFrameMagic = 0x494E4441;  // "INDA"
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 12;

struct FrameLimits {
  // Largest payload ReadFrame will accept. PIA datasets dominate frame
  // sizes: 100k elements × 128-byte group elements ≈ 13 MB, so 64 MB leaves
  // ample headroom while still rejecting nonsense lengths.
  uint32_t max_payload_bytes = 64u << 20;
};

struct Frame {
  uint8_t type = 0;
  std::string payload;
};

// Serializes the header for `type`/`payload_size` (testing seam; WriteFrame
// uses it internally).
std::string EncodeFrameHeader(uint8_t type, uint32_t payload_size);

// Decoded, validated header fields.
struct FrameHeader {
  uint8_t type = 0;
  uint32_t payload_size = 0;
};

// Validates a raw kFrameHeaderBytes-byte header against `limits`. Shared by
// ReadFrame and multiplexing callers that assemble frames from non-blocking
// reads (the PIA ring pump).
Result<FrameHeader> DecodeFrameHeader(std::string_view bytes, const FrameLimits& limits);

// Writes one frame (header + payload) to the socket.
Status WriteFrame(Socket& socket, uint8_t type, std::string_view payload, int timeout_ms);

// Reads and validates one frame. The timeout applies to each socket wait,
// so a total stall is bounded by timeout_ms (header) + timeout_ms (payload).
Result<Frame> ReadFrame(Socket& socket, const FrameLimits& limits, int timeout_ms);

}  // namespace net
}  // namespace indaas

#endif  // SRC_NET_FRAME_H_
