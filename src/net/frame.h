// Length-prefixed message framing with a versioned binary header
// (DESIGN.md §7). Every INDaaS message on the wire is one frame:
//
//   offset  size  field
//   0       4     magic 0x494E4441 ("INDA"), big-endian
//   4       1     wire-format version (kWireVersion)
//   5       1     message type (svc::MsgType; opaque to this layer)
//   6       2     flags (bit 0 = trace-context extension, bit 1 = request-id
//                 extension, bit 2 = sketch-params extension, bit 3 =
//                 ring-membership extension; others reserved, must be zero)
//   8       4     payload length in bytes, big-endian (extensions excluded)
//   12      16    trace-context extension, only when flag bit 0 is set:
//                 trace id (u64 BE) + parent wire span id (u64 BE)
//   +0      8     request-id extension, only when flag bit 1 is set:
//                 per-connection request id (u64 BE, never zero). Follows
//                 the trace extension when both are present.
//   +0      8     sketch-params extension, only when flag bit 2 is set:
//                 u16 k, u16 LSH bands, u16 LSH rows, u16 reserved (zero),
//                 all big-endian.
//   +0      8     ring-membership extension, only when flag bit 3 is set:
//                 u16 reformation attempt (never zero), u16 reserved (zero),
//                 u32 bitmask of surviving original ring indices, all
//                 big-endian. Last of the extensions when several are
//                 present.
//   ...     n     payload
//
// Extensions carry per-frame identity ahead of the payload; their bytes are
// NOT counted in the payload length, so a peer that understands the flags
// can strip them without re-parsing the payload. The trace-context
// extension (kFrameFlagTraceContext) is the distributed request identity
// from src/obs/propagate.h. The request-id extension (kFrameFlagRequestId)
// pairs pipelined requests with out-of-order responses on one connection:
// a server echoes the request's id on the matching reply, so a multiplexed
// client can keep a bounded window of requests in flight and complete them
// in whatever order the server finishes. Plain frames (flags == 0) remain
// byte-identical to the original format — old clients keep working — and
// any other nonzero flag bit is still a hard kProtocolError, so an old
// peer rejects pipelined traffic outright instead of mis-pairing replies.
//
// ReadFrame validates magic, version, flags and length against FrameLimits
// before allocating the payload buffer, so a garbage or hostile peer costs
// a 12-byte read, never an attacker-chosen allocation. Frame errors are
// kProtocolError (do not retry); timeouts and closed peers keep the socket
// layer's kDeadlineExceeded / kUnavailable codes.

#ifndef SRC_NET_FRAME_H_
#define SRC_NET_FRAME_H_

#include <cstdint>
#include <string>

#include "src/net/socket.h"
#include "src/obs/propagate.h"
#include "src/util/status.h"

namespace indaas {
namespace net {

inline constexpr uint32_t kFrameMagic = 0x494E4441;  // "INDA"
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 12;

// Frame flag bits (header offset 6, big-endian u16). Bit 0 announces the
// fixed-size trace-context extension between header and payload; bit 1 the
// request-id extension (after the trace extension when both are present);
// all other bits are reserved and rejected.
inline constexpr uint16_t kFrameFlagTraceContext = 0x0001;
inline constexpr uint16_t kFrameFlagRequestId = 0x0002;
inline constexpr uint16_t kFrameFlagSketchParams = 0x0004;
inline constexpr uint16_t kFrameFlagRingMembership = 0x0008;
inline constexpr uint16_t kFrameKnownFlags = kFrameFlagTraceContext | kFrameFlagRequestId |
                                             kFrameFlagSketchParams |
                                             kFrameFlagRingMembership;
inline constexpr size_t kTraceContextBytes = 16;
inline constexpr size_t kRequestIdBytes = 8;
inline constexpr size_t kSketchParamsBytes = 8;
inline constexpr size_t kRingMembershipBytes = 8;

// Sketch-parameters extension (flag bit 2): announces the MinHash geometry
// of a sketch-exchange P-SOP session — register count k plus the LSH
// banding the auditor will apply — so ring peers can cross-check that they
// sketched under identical parameters before trusting register agreement.
// Wire layout: u16 k, u16 bands, u16 rows, u16 reserved (must be zero), all
// big-endian. k = 0 never appears on the wire (a sketch needs at least one
// register), so it doubles as "extension absent" in-memory. Peers predating
// the extension reject the unknown flag bit as kProtocolError — exactly the
// fail-closed behaviour wanted when an old auditor meets sketch traffic.
struct FrameSketchParams {
  uint16_t k = 0;  // registers per sketch; 0 = extension absent
  uint16_t bands = 0;
  uint16_t rows = 0;

  bool valid() const { return k != 0; }
  friend bool operator==(const FrameSketchParams&, const FrameSketchParams&) = default;
};

// Ring-membership extension (flag bit 3): announces that a P-SOP frame
// belongs to a *degraded* (reformed) ring — `attempt` counts reformations
// (the pristine ring sends no extension; the first reformation is attempt
// 1) and `members` is the bitmask of original ring indices still
// participating, so every survivor can cross-check that it agrees on
// exactly who was ejected before trusting any round data. Wire layout: u16
// attempt, u16 reserved (must be zero), u32 members bitmask, all
// big-endian. attempt = 0 never appears on the wire, so it doubles as
// "extension absent" in-memory; an empty bitmask is likewise rejected (a
// ring needs at least two parties). Peers predating the extension reject
// the unknown flag bit as kProtocolError — a pre-upgrade peer dragged into
// a degraded ring fails closed instead of silently auditing with the wrong
// party set.
struct FrameRingMembership {
  uint16_t attempt = 0;  // reformation count; 0 = extension absent
  uint32_t members = 0;  // bitmask of surviving original ring indices

  bool valid() const { return attempt != 0; }
  friend bool operator==(const FrameRingMembership&, const FrameRingMembership&) = default;
};

struct FrameLimits {
  // Largest payload ReadFrame will accept. PIA datasets dominate frame
  // sizes: 100k elements × 128-byte group elements ≈ 13 MB, so 64 MB leaves
  // ample headroom while still rejecting nonsense lengths.
  uint32_t max_payload_bytes = 64u << 20;
};

struct Frame {
  uint8_t type = 0;
  std::string payload;
  // Distributed request identity carried by the trace extension; invalid
  // (trace_id == 0) when the frame had no extension.
  obs::TraceContext trace;
  // Pipelining id carried by the request-id extension; 0 when the frame had
  // none (writers never emit id 0, so 0 is unambiguous for "absent").
  uint64_t request_id = 0;
  // Sketch geometry carried by the sketch-params extension; !valid() when
  // the frame had none.
  FrameSketchParams sketch;
  // Degraded-ring membership carried by the ring-membership extension;
  // !valid() when the frame had none (a pristine, full ring).
  FrameRingMembership ring;
};

// Serializes the header for `type`/`payload_size` (testing seam; WriteFrame
// uses it internally). `flags` is written verbatim — tests use it to forge
// frames with reserved bits set.
std::string EncodeFrameHeader(uint8_t type, uint32_t payload_size, uint16_t flags = 0);

// Serializes the 16-byte trace-context extension (trace id + parent wire
// span id, both big-endian u64).
std::string EncodeTraceContext(const obs::TraceContext& trace);

// Decodes a kTraceContextBytes-byte trace extension.
Result<obs::TraceContext> DecodeTraceContext(std::string_view bytes);

// Serializes the 8-byte request-id extension (big-endian u64).
std::string EncodeRequestId(uint64_t request_id);

// Decodes a kRequestIdBytes-byte request-id extension. An id of zero is a
// protocol error: writers never emit it, and readers rely on 0 = absent.
Result<uint64_t> DecodeRequestId(std::string_view bytes);

// Serializes the 8-byte sketch-params extension.
std::string EncodeSketchParams(const FrameSketchParams& params);

// Decodes a kSketchParamsBytes-byte sketch-params extension. k = 0 and a
// nonzero reserved word are protocol errors.
Result<FrameSketchParams> DecodeSketchParams(std::string_view bytes);

// Serializes the 8-byte ring-membership extension.
std::string EncodeRingMembership(const FrameRingMembership& ring);

// Decodes a kRingMembershipBytes-byte ring-membership extension. attempt =
// 0, an empty members bitmask and a nonzero reserved word are protocol
// errors.
Result<FrameRingMembership> DecodeRingMembership(std::string_view bytes);

// Decoded, validated header fields.
struct FrameHeader {
  uint8_t type = 0;
  uint32_t payload_size = 0;
  // True when the trace-context flag was set: kTraceContextBytes of trace
  // extension follow the header, before the payload.
  bool has_trace_context = false;
  // True when the request-id flag was set: kRequestIdBytes of request-id
  // extension follow the header (after any trace extension).
  bool has_request_id = false;
  // True when the sketch-params flag was set: kSketchParamsBytes of sketch
  // extension follow the header (after any trace / request-id extensions).
  bool has_sketch_params = false;
  // True when the ring-membership flag was set: kRingMembershipBytes of
  // membership extension follow the header (last of the extensions).
  bool has_ring_membership = false;

  // Bytes of extensions between header and payload.
  size_t extension_bytes() const {
    return (has_trace_context ? kTraceContextBytes : 0) +
           (has_request_id ? kRequestIdBytes : 0) +
           (has_sketch_params ? kSketchParamsBytes : 0) +
           (has_ring_membership ? kRingMembershipBytes : 0);
  }
  // Total frame size on the wire (header + extensions + payload).
  size_t total_bytes() const {
    return kFrameHeaderBytes + extension_bytes() + payload_size;
  }
};

// Validates a raw kFrameHeaderBytes-byte header against `limits`. Shared by
// ReadFrame and multiplexing callers that assemble frames from non-blocking
// reads (the PIA ring pump).
Result<FrameHeader> DecodeFrameHeader(std::string_view bytes, const FrameLimits& limits);

// Serializes a whole frame (header + extensions + payload) into one buffer.
// Used by the reactor's buffered write path, which batches several frames
// into one send; WriteFrame is the immediate-send equivalent.
std::string EncodeFrame(uint8_t type, std::string_view payload,
                        const obs::TraceContext& trace = {}, uint64_t request_id = 0,
                        const FrameSketchParams& sketch = {},
                        const FrameRingMembership& ring = {});

// Writes one frame (header [+ extensions] + payload) to the socket. The
// trace extension is emitted only when `trace` is valid, the request-id
// extension only when `request_id` is nonzero, and the sketch-params /
// ring-membership extensions only when the corresponding struct is valid().
Status WriteFrame(Socket& socket, uint8_t type, std::string_view payload, int timeout_ms,
                  const obs::TraceContext& trace = {}, uint64_t request_id = 0,
                  const FrameSketchParams& sketch = {},
                  const FrameRingMembership& ring = {});

// Reads and validates one frame. The timeout applies to each socket wait,
// so a total stall is bounded by timeout_ms per phase (header, optional
// extensions, payload).
Result<Frame> ReadFrame(Socket& socket, const FrameLimits& limits, int timeout_ms);

}  // namespace net
}  // namespace indaas

#endif  // SRC_NET_FRAME_H_
