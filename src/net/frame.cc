#include "src/net/frame.h"

#include "src/obs/metrics.h"
#include "src/util/strings.h"

namespace indaas {
namespace net {
namespace {

void AppendU32BE(std::string* out, uint32_t value) {
  out->push_back(static_cast<char>((value >> 24) & 0xFF));
  out->push_back(static_cast<char>((value >> 16) & 0xFF));
  out->push_back(static_cast<char>((value >> 8) & 0xFF));
  out->push_back(static_cast<char>(value & 0xFF));
}

void AppendU64BE(std::string* out, uint64_t value) {
  AppendU32BE(out, static_cast<uint32_t>(value >> 32));
  AppendU32BE(out, static_cast<uint32_t>(value & 0xFFFFFFFFULL));
}

uint32_t ReadU32BE(const unsigned char* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

uint64_t ReadU64BE(const unsigned char* p) {
  return (static_cast<uint64_t>(ReadU32BE(p)) << 32) | ReadU32BE(p + 4);
}

obs::Counter* FramesSent() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter("net.frames_sent");
  return counter;
}
obs::Counter* FramesRecv() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter("net.frames_recv");
  return counter;
}
obs::Counter* FrameRejects() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("net.frames_rejected");
  return counter;
}

}  // namespace

std::string EncodeFrameHeader(uint8_t type, uint32_t payload_size, uint16_t flags) {
  std::string header;
  header.reserve(kFrameHeaderBytes);
  AppendU32BE(&header, kFrameMagic);
  header.push_back(static_cast<char>(kWireVersion));
  header.push_back(static_cast<char>(type));
  header.push_back(static_cast<char>((flags >> 8) & 0xFF));
  header.push_back(static_cast<char>(flags & 0xFF));
  AppendU32BE(&header, payload_size);
  return header;
}

std::string EncodeTraceContext(const obs::TraceContext& trace) {
  std::string out;
  out.reserve(kTraceContextBytes);
  AppendU64BE(&out, trace.trace_id);
  AppendU64BE(&out, trace.parent_span_id);
  return out;
}

Result<obs::TraceContext> DecodeTraceContext(std::string_view bytes) {
  if (bytes.size() != kTraceContextBytes) {
    return ProtocolError(StrFormat("trace context is %zu bytes, want %zu", bytes.size(),
                                   kTraceContextBytes));
  }
  const unsigned char* p = reinterpret_cast<const unsigned char*>(bytes.data());
  obs::TraceContext trace;
  trace.trace_id = ReadU64BE(p);
  trace.parent_span_id = ReadU64BE(p + 8);
  return trace;
}

std::string EncodeRequestId(uint64_t request_id) {
  std::string out;
  out.reserve(kRequestIdBytes);
  AppendU64BE(&out, request_id);
  return out;
}

Result<uint64_t> DecodeRequestId(std::string_view bytes) {
  if (bytes.size() != kRequestIdBytes) {
    return ProtocolError(StrFormat("request id is %zu bytes, want %zu", bytes.size(),
                                   kRequestIdBytes));
  }
  uint64_t id = ReadU64BE(reinterpret_cast<const unsigned char*>(bytes.data()));
  if (id == 0) {
    return ProtocolError("request id 0 is reserved for id-less frames");
  }
  return id;
}

std::string EncodeSketchParams(const FrameSketchParams& params) {
  std::string out;
  out.reserve(kSketchParamsBytes);
  out.push_back(static_cast<char>((params.k >> 8) & 0xFF));
  out.push_back(static_cast<char>(params.k & 0xFF));
  out.push_back(static_cast<char>((params.bands >> 8) & 0xFF));
  out.push_back(static_cast<char>(params.bands & 0xFF));
  out.push_back(static_cast<char>((params.rows >> 8) & 0xFF));
  out.push_back(static_cast<char>(params.rows & 0xFF));
  out.push_back('\0');  // reserved, must be zero
  out.push_back('\0');
  return out;
}

Result<FrameSketchParams> DecodeSketchParams(std::string_view bytes) {
  if (bytes.size() != kSketchParamsBytes) {
    return ProtocolError(StrFormat("sketch params are %zu bytes, want %zu", bytes.size(),
                                   kSketchParamsBytes));
  }
  const unsigned char* p = reinterpret_cast<const unsigned char*>(bytes.data());
  FrameSketchParams params;
  params.k = static_cast<uint16_t>((p[0] << 8) | p[1]);
  params.bands = static_cast<uint16_t>((p[2] << 8) | p[3]);
  params.rows = static_cast<uint16_t>((p[4] << 8) | p[5]);
  if (params.k == 0) {
    return ProtocolError("sketch params k 0 is reserved for param-less frames");
  }
  uint16_t reserved = static_cast<uint16_t>((p[6] << 8) | p[7]);
  if (reserved != 0) {
    return ProtocolError(StrFormat("nonzero reserved sketch-params word 0x%04X", reserved));
  }
  return params;
}

std::string EncodeRingMembership(const FrameRingMembership& ring) {
  std::string out;
  out.reserve(kRingMembershipBytes);
  out.push_back(static_cast<char>((ring.attempt >> 8) & 0xFF));
  out.push_back(static_cast<char>(ring.attempt & 0xFF));
  out.push_back('\0');  // reserved, must be zero
  out.push_back('\0');
  AppendU32BE(&out, ring.members);
  return out;
}

Result<FrameRingMembership> DecodeRingMembership(std::string_view bytes) {
  if (bytes.size() != kRingMembershipBytes) {
    return ProtocolError(StrFormat("ring membership is %zu bytes, want %zu", bytes.size(),
                                   kRingMembershipBytes));
  }
  const unsigned char* p = reinterpret_cast<const unsigned char*>(bytes.data());
  FrameRingMembership ring;
  ring.attempt = static_cast<uint16_t>((p[0] << 8) | p[1]);
  if (ring.attempt == 0) {
    return ProtocolError("ring membership attempt 0 is reserved for pristine rings");
  }
  uint16_t reserved = static_cast<uint16_t>((p[2] << 8) | p[3]);
  if (reserved != 0) {
    return ProtocolError(StrFormat("nonzero reserved ring-membership word 0x%04X", reserved));
  }
  ring.members = ReadU32BE(p + 4);
  if (ring.members == 0) {
    return ProtocolError("ring membership with no surviving members");
  }
  return ring;
}

namespace {

// Header + extensions for one frame; shared by EncodeFrame and WriteFrame.
std::string EncodeFramePrefix(uint8_t type, uint32_t payload_size,
                              const obs::TraceContext& trace, uint64_t request_id,
                              const FrameSketchParams& sketch,
                              const FrameRingMembership& ring) {
  uint16_t flags = 0;
  if (trace.valid()) {
    flags |= kFrameFlagTraceContext;
  }
  if (request_id != 0) {
    flags |= kFrameFlagRequestId;
  }
  if (sketch.valid()) {
    flags |= kFrameFlagSketchParams;
  }
  if (ring.valid()) {
    flags |= kFrameFlagRingMembership;
  }
  std::string prefix = EncodeFrameHeader(type, payload_size, flags);
  if (trace.valid()) {
    prefix += EncodeTraceContext(trace);
  }
  if (request_id != 0) {
    prefix += EncodeRequestId(request_id);
  }
  if (sketch.valid()) {
    prefix += EncodeSketchParams(sketch);
  }
  if (ring.valid()) {
    prefix += EncodeRingMembership(ring);
  }
  return prefix;
}

}  // namespace

std::string EncodeFrame(uint8_t type, std::string_view payload, const obs::TraceContext& trace,
                        uint64_t request_id, const FrameSketchParams& sketch,
                        const FrameRingMembership& ring) {
  std::string frame = EncodeFramePrefix(type, static_cast<uint32_t>(payload.size()), trace,
                                        request_id, sketch, ring);
  frame.append(payload);
  FramesSent()->Increment();
  return frame;
}

Status WriteFrame(Socket& socket, uint8_t type, std::string_view payload, int timeout_ms,
                  const obs::TraceContext& trace, uint64_t request_id,
                  const FrameSketchParams& sketch, const FrameRingMembership& ring) {
  if (payload.size() > UINT32_MAX) {
    return InvalidArgumentError("WriteFrame: payload exceeds 4 GiB");
  }
  std::string prefix = EncodeFramePrefix(type, static_cast<uint32_t>(payload.size()), trace,
                                         request_id, sketch, ring);
  // Two sends, not one copy: payloads can be tens of MB and the prefix is
  // tiny; TCP_NODELAY is on but the kernel coalesces back-to-back sends.
  INDAAS_RETURN_IF_ERROR(socket.SendAll(prefix, timeout_ms));
  INDAAS_RETURN_IF_ERROR(socket.SendAll(payload, timeout_ms));
  FramesSent()->Increment();
  return Status::Ok();
}

Result<FrameHeader> DecodeFrameHeader(std::string_view bytes, const FrameLimits& limits) {
  if (bytes.size() != kFrameHeaderBytes) {
    return ProtocolError(StrFormat("frame header is %zu bytes, want %zu", bytes.size(),
                                   kFrameHeaderBytes));
  }
  const unsigned char* p = reinterpret_cast<const unsigned char*>(bytes.data());
  uint32_t magic = ReadU32BE(p);
  if (magic != kFrameMagic) {
    FrameRejects()->Increment();
    return ProtocolError(StrFormat("bad frame magic 0x%08X", magic));
  }
  uint8_t version = p[4];
  if (version != kWireVersion) {
    FrameRejects()->Increment();
    return ProtocolError(StrFormat("unsupported wire version %u (want %u)", version,
                                   kWireVersion));
  }
  uint16_t flags = static_cast<uint16_t>((p[6] << 8) | p[7]);
  if ((flags & ~kFrameKnownFlags) != 0) {
    FrameRejects()->Increment();
    return ProtocolError(StrFormat("nonzero reserved frame flags 0x%04X", flags));
  }
  uint32_t length = ReadU32BE(p + 8);
  if (length > limits.max_payload_bytes) {
    FrameRejects()->Increment();
    return ProtocolError(StrFormat("frame payload %u bytes exceeds limit %u", length,
                                   limits.max_payload_bytes));
  }
  FrameHeader header;
  header.type = p[5];
  header.payload_size = length;
  header.has_trace_context = (flags & kFrameFlagTraceContext) != 0;
  header.has_request_id = (flags & kFrameFlagRequestId) != 0;
  header.has_sketch_params = (flags & kFrameFlagSketchParams) != 0;
  header.has_ring_membership = (flags & kFrameFlagRingMembership) != 0;
  return header;
}

Result<Frame> ReadFrame(Socket& socket, const FrameLimits& limits, int timeout_ms) {
  std::string raw;
  INDAAS_RETURN_IF_ERROR(socket.RecvAll(&raw, kFrameHeaderBytes, timeout_ms));
  INDAAS_ASSIGN_OR_RETURN(FrameHeader header, DecodeFrameHeader(raw, limits));
  Frame frame;
  frame.type = header.type;
  if (header.has_trace_context) {
    std::string ext;
    INDAAS_RETURN_IF_ERROR(socket.RecvAll(&ext, kTraceContextBytes, timeout_ms));
    INDAAS_ASSIGN_OR_RETURN(frame.trace, DecodeTraceContext(ext));
  }
  if (header.has_request_id) {
    std::string ext;
    INDAAS_RETURN_IF_ERROR(socket.RecvAll(&ext, kRequestIdBytes, timeout_ms));
    INDAAS_ASSIGN_OR_RETURN(frame.request_id, DecodeRequestId(ext));
  }
  if (header.has_sketch_params) {
    std::string ext;
    INDAAS_RETURN_IF_ERROR(socket.RecvAll(&ext, kSketchParamsBytes, timeout_ms));
    INDAAS_ASSIGN_OR_RETURN(frame.sketch, DecodeSketchParams(ext));
  }
  if (header.has_ring_membership) {
    std::string ext;
    INDAAS_RETURN_IF_ERROR(socket.RecvAll(&ext, kRingMembershipBytes, timeout_ms));
    INDAAS_ASSIGN_OR_RETURN(frame.ring, DecodeRingMembership(ext));
  }
  INDAAS_RETURN_IF_ERROR(socket.RecvAll(&frame.payload, header.payload_size, timeout_ms));
  FramesRecv()->Increment();
  return frame;
}

}  // namespace net
}  // namespace indaas
