#include "src/net/frame.h"

#include "src/obs/metrics.h"
#include "src/util/strings.h"

namespace indaas {
namespace net {
namespace {

void AppendU32BE(std::string* out, uint32_t value) {
  out->push_back(static_cast<char>((value >> 24) & 0xFF));
  out->push_back(static_cast<char>((value >> 16) & 0xFF));
  out->push_back(static_cast<char>((value >> 8) & 0xFF));
  out->push_back(static_cast<char>(value & 0xFF));
}

uint32_t ReadU32BE(const unsigned char* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

obs::Counter* FramesSent() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter("net.frames_sent");
  return counter;
}
obs::Counter* FramesRecv() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter("net.frames_recv");
  return counter;
}
obs::Counter* FrameRejects() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("net.frames_rejected");
  return counter;
}

}  // namespace

std::string EncodeFrameHeader(uint8_t type, uint32_t payload_size) {
  std::string header;
  header.reserve(kFrameHeaderBytes);
  AppendU32BE(&header, kFrameMagic);
  header.push_back(static_cast<char>(kWireVersion));
  header.push_back(static_cast<char>(type));
  header.push_back(0);  // flags hi
  header.push_back(0);  // flags lo
  AppendU32BE(&header, payload_size);
  return header;
}

Status WriteFrame(Socket& socket, uint8_t type, std::string_view payload, int timeout_ms) {
  if (payload.size() > UINT32_MAX) {
    return InvalidArgumentError("WriteFrame: payload exceeds 4 GiB");
  }
  std::string header = EncodeFrameHeader(type, static_cast<uint32_t>(payload.size()));
  // Two sends, not one copy: payloads can be tens of MB and the header is
  // tiny; TCP_NODELAY is on but the kernel coalesces back-to-back sends.
  INDAAS_RETURN_IF_ERROR(socket.SendAll(header, timeout_ms));
  INDAAS_RETURN_IF_ERROR(socket.SendAll(payload, timeout_ms));
  FramesSent()->Increment();
  return Status::Ok();
}

Result<FrameHeader> DecodeFrameHeader(std::string_view bytes, const FrameLimits& limits) {
  if (bytes.size() != kFrameHeaderBytes) {
    return ProtocolError(StrFormat("frame header is %zu bytes, want %zu", bytes.size(),
                                   kFrameHeaderBytes));
  }
  const unsigned char* p = reinterpret_cast<const unsigned char*>(bytes.data());
  uint32_t magic = ReadU32BE(p);
  if (magic != kFrameMagic) {
    FrameRejects()->Increment();
    return ProtocolError(StrFormat("bad frame magic 0x%08X", magic));
  }
  uint8_t version = p[4];
  if (version != kWireVersion) {
    FrameRejects()->Increment();
    return ProtocolError(StrFormat("unsupported wire version %u (want %u)", version,
                                   kWireVersion));
  }
  uint16_t flags = static_cast<uint16_t>((p[6] << 8) | p[7]);
  if (flags != 0) {
    FrameRejects()->Increment();
    return ProtocolError(StrFormat("nonzero reserved frame flags 0x%04X", flags));
  }
  uint32_t length = ReadU32BE(p + 8);
  if (length > limits.max_payload_bytes) {
    FrameRejects()->Increment();
    return ProtocolError(StrFormat("frame payload %u bytes exceeds limit %u", length,
                                   limits.max_payload_bytes));
  }
  FrameHeader header;
  header.type = p[5];
  header.payload_size = length;
  return header;
}

Result<Frame> ReadFrame(Socket& socket, const FrameLimits& limits, int timeout_ms) {
  std::string raw;
  INDAAS_RETURN_IF_ERROR(socket.RecvAll(&raw, kFrameHeaderBytes, timeout_ms));
  INDAAS_ASSIGN_OR_RETURN(FrameHeader header, DecodeFrameHeader(raw, limits));
  Frame frame;
  frame.type = header.type;
  INDAAS_RETURN_IF_ERROR(socket.RecvAll(&frame.payload, header.payload_size, timeout_ms));
  FramesRecv()->Increment();
  return frame;
}

}  // namespace net
}  // namespace indaas
