// Non-blocking TCP sockets with poll-based readiness waits (DESIGN.md §7).
//
// Every socket this layer creates is non-blocking; blocking semantics are
// recovered per call through WaitReadable/WaitWritable with an explicit
// deadline, so a stuck peer costs at most the caller's timeout — never a
// hung thread. Timeouts surface as kDeadlineExceeded, connectivity failures
// (refused, reset, unreachable, EOF) as kUnavailable so callers can decide
// what is retryable. All traffic is mirrored into the metrics registry as
// net.bytes_sent / net.bytes_recv counters and a net.connections_open gauge.

#ifndef SRC_NET_SOCKET_H_
#define SRC_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace indaas {
namespace net {

// A "host:port" pair. Host may be a name ("localhost") or dotted IPv4.
struct Endpoint {
  std::string host;
  uint16_t port = 0;

  std::string ToString() const;
};

// Parses "host:port". The port must be in [1, 65535].
Result<Endpoint> ParseEndpoint(std::string_view text);

// Parses "a:p1,b:p2,c:p3" into an ordered list (the PIA ring order).
Result<std::vector<Endpoint>> ParseEndpointList(std::string_view text);

// Move-only RAII wrapper over a non-blocking socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd);
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Closes the descriptor now (idempotent).
  void Close();

  // Blocks (via poll) until the socket is readable/writable or `timeout_ms`
  // elapses. timeout_ms < 0 waits forever.
  Status WaitReadable(int timeout_ms) const;
  Status WaitWritable(int timeout_ms) const;

  // Writes all `data.size()` bytes, polling for writability as needed; the
  // timeout applies to each poll individually (progress resets it).
  Status SendAll(std::string_view data, int timeout_ms);

  // Reads exactly `length` bytes into `out` (resized). A clean peer close
  // mid-message is kUnavailable; a timeout is kDeadlineExceeded.
  Status RecvAll(std::string* out, size_t length, int timeout_ms);

  // Single non-blocking send/recv attempts for callers that multiplex
  // several sockets through one poll loop (the PIA ring pump). Both return
  // the byte count moved — 0 means "would block, poll and retry". A closed
  // peer is kUnavailable.
  Result<size_t> SendSome(std::string_view data);
  Result<size_t> RecvSome(char* out, size_t capacity);

  // Local port the socket is bound to (useful after listening on port 0).
  Result<uint16_t> LocalPort() const;

 private:
  int fd_ = -1;
};

// Opens a listening socket on `port` (0 picks a free port) bound to all
// interfaces, with SO_REUSEADDR. With `reuse_port` the socket is also bound
// with SO_REUSEPORT so several listeners can share one port and let the
// kernel spread incoming connections across them (the reactor's per-shard
// accept path); a kernel without SO_REUSEPORT fails the setsockopt and the
// call returns kUnimplemented so callers can fall back to a single
// acceptor.
Result<Socket> TcpListen(uint16_t port, int backlog = 64, bool reuse_port = false);

// Accepts one connection, waiting up to `timeout_ms` for one to arrive.
Result<Socket> TcpAccept(const Socket& listener, int timeout_ms);

// Connects to `endpoint` with a bounded non-blocking connect.
Result<Socket> TcpConnect(const Endpoint& endpoint, int timeout_ms);

}  // namespace net
}  // namespace indaas

#endif  // SRC_NET_SOCKET_H_
