#include "src/net/wire.h"

#include <cstring>

#include "src/util/strings.h"

namespace indaas {
namespace net {

void WireWriter::U8(uint8_t value) { buffer_.push_back(static_cast<char>(value)); }

void WireWriter::U16(uint16_t value) {
  buffer_.push_back(static_cast<char>(value & 0xFF));
  buffer_.push_back(static_cast<char>((value >> 8) & 0xFF));
}

void WireWriter::U32(uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer_.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void WireWriter::U64(uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    buffer_.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void WireWriter::F64(double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  U64(bits);
}

void WireWriter::Bytes(std::string_view data) {
  U32(static_cast<uint32_t>(data.size()));
  buffer_.append(data.data(), data.size());
}

void WireWriter::StrVec(const std::vector<std::string>& items) {
  U32(static_cast<uint32_t>(items.size()));
  for (const std::string& item : items) {
    Bytes(item);
  }
}

Status WireReader::Need(size_t bytes) {
  if (data_.size() - pos_ < bytes) {
    return ParseError(StrFormat("wire payload truncated: need %zu bytes, have %zu", bytes,
                                data_.size() - pos_));
  }
  return Status::Ok();
}

Result<uint8_t> WireReader::U8() {
  INDAAS_RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint16_t> WireReader::U16() {
  INDAAS_RETURN_IF_ERROR(Need(2));
  uint16_t value = 0;
  for (int shift = 0; shift < 16; shift += 8) {
    value |= static_cast<uint16_t>(static_cast<unsigned char>(data_[pos_++])) << shift;
  }
  return value;
}

Result<uint32_t> WireReader::U32() {
  INDAAS_RETURN_IF_ERROR(Need(4));
  uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_++])) << shift;
  }
  return value;
}

Result<uint64_t> WireReader::U64() {
  INDAAS_RETURN_IF_ERROR(Need(8));
  uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_++])) << shift;
  }
  return value;
}

Result<bool> WireReader::Bool() {
  INDAAS_ASSIGN_OR_RETURN(uint8_t value, U8());
  if (value > 1) {
    return ParseError(StrFormat("bad bool byte %u", value));
  }
  return value == 1;
}

Result<double> WireReader::F64() {
  INDAAS_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Result<std::string> WireReader::Bytes() {
  INDAAS_ASSIGN_OR_RETURN(uint32_t length, U32());
  INDAAS_RETURN_IF_ERROR(Need(length));
  std::string out(data_.substr(pos_, length));
  pos_ += length;
  return out;
}

Result<std::vector<std::string>> WireReader::StrVec() {
  INDAAS_ASSIGN_OR_RETURN(uint32_t count, U32());
  // Each entry costs at least its 4-byte length prefix; reject counts the
  // remaining payload cannot possibly hold before reserving anything.
  if (static_cast<size_t>(count) * 4 > remaining()) {
    return ParseError(StrFormat("wire string vector count %u exceeds payload", count));
  }
  std::vector<std::string> items;
  items.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    INDAAS_ASSIGN_OR_RETURN(std::string item, Bytes());
    items.push_back(std::move(item));
  }
  return items;
}

}  // namespace net
}  // namespace indaas
