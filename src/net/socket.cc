#include "src/net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/net/chaos.h"
#include "src/obs/metrics.h"
#include "src/util/strings.h"

namespace indaas {
namespace net {
namespace {

obs::Counter* BytesSentCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter("net.bytes_sent");
  return counter;
}
obs::Counter* BytesRecvCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter("net.bytes_recv");
  return counter;
}
obs::Gauge* ConnectionsGauge() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Global().GetGauge("net.connections_open");
  return gauge;
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return InternalError(std::string("fcntl(O_NONBLOCK): ") + std::strerror(errno));
  }
  return Status::Ok();
}

// One poll() on a single fd; distinguishes timeout from fd errors.
Status PollOne(int fd, short events, int timeout_ms, const char* what) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;  // Retry with the full timeout; interruptions are rare.
      }
      return InternalError(std::string("poll: ") + std::strerror(errno));
    }
    if (rc == 0) {
      return DeadlineExceededError(StrFormat("%s: timed out after %d ms", what, timeout_ms));
    }
    if (pfd.revents & (POLLERR | POLLNVAL)) {
      return UnavailableError(std::string(what) + ": socket error");
    }
    // POLLHUP still allows draining buffered data; let read() see the EOF.
    return Status::Ok();
  }
}

}  // namespace

std::string Endpoint::ToString() const { return host + ":" + std::to_string(port); }

Result<Endpoint> ParseEndpoint(std::string_view text) {
  size_t colon = text.rfind(':');
  if (colon == std::string_view::npos || colon == 0 || colon + 1 == text.size()) {
    return InvalidArgumentError("endpoint must be host:port — '" + std::string(text) + "'");
  }
  Endpoint endpoint;
  endpoint.host = std::string(Trim(text.substr(0, colon)));
  std::string port_text(Trim(text.substr(colon + 1)));
  char* end = nullptr;
  long port = std::strtol(port_text.c_str(), &end, 10);
  if (end == port_text.c_str() || *end != '\0' || port < 1 || port > 65535) {
    return InvalidArgumentError("bad port in endpoint '" + std::string(text) + "'");
  }
  endpoint.port = static_cast<uint16_t>(port);
  return endpoint;
}

Result<std::vector<Endpoint>> ParseEndpointList(std::string_view text) {
  std::vector<Endpoint> endpoints;
  // An empty segment is rejected, not skipped: ring position is positional,
  // and silently dropping one entry would shift every later peer's index.
  for (const std::string& entry : Split(text, ',')) {
    if (Trim(entry).empty()) {
      return InvalidArgumentError("empty entry in endpoint list '" + std::string(text) + "'");
    }
    INDAAS_ASSIGN_OR_RETURN(Endpoint endpoint, ParseEndpoint(entry));
    endpoints.push_back(std::move(endpoint));
  }
  if (endpoints.empty()) {
    return InvalidArgumentError("empty endpoint list");
  }
  return endpoints;
}

Socket::Socket(int fd) : fd_(fd) {
  if (fd_ >= 0) {
    ConnectionsGauge()->Add(1);
  }
}

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    if (chaos::Enabled()) {
      chaos::OnSocketClosed(fd_);
    }
    ::close(fd_);
    fd_ = -1;
    ConnectionsGauge()->Add(-1);
  }
}

Status Socket::WaitReadable(int timeout_ms) const {
  if (chaos::Enabled()) {
    // A chaos-stalled read side never becomes readable: the hook sleeps out
    // the (bounded) timeout and returns kDeadlineExceeded instead of
    // letting poll() report genuinely buffered bytes.
    INDAAS_RETURN_IF_ERROR(chaos::OnWait(fd_, /*for_read=*/true, timeout_ms));
  }
  return PollOne(fd_, POLLIN, timeout_ms, "recv");
}

Status Socket::WaitWritable(int timeout_ms) const {
  if (chaos::Enabled()) {
    INDAAS_RETURN_IF_ERROR(chaos::OnWait(fd_, /*for_read=*/false, timeout_ms));
  }
  return PollOne(fd_, POLLOUT, timeout_ms, "send");
}

// SendAll/RecvAll are thin blocking loops over the single-attempt
// SendSome/RecvSome plus the readiness waits, so every byte on every path —
// blocking RPC clients, the PIA ring pump, the reactor — crosses the same
// two methods and the chaos hooks observe all traffic in one place.
Status Socket::SendAll(std::string_view data, int timeout_ms) {
  size_t sent = 0;
  while (sent < data.size()) {
    INDAAS_ASSIGN_OR_RETURN(size_t n, SendSome(data.substr(sent)));
    if (n == 0) {
      INDAAS_RETURN_IF_ERROR(WaitWritable(timeout_ms));
      continue;
    }
    sent += n;
  }
  return Status::Ok();
}

Status Socket::RecvAll(std::string* out, size_t length, int timeout_ms) {
  out->clear();
  out->resize(length);
  size_t received = 0;
  while (received < length) {
    Result<size_t> n = RecvSome(out->data() + received, length - received);
    if (!n.ok()) {
      if (n.status().code() == StatusCode::kUnavailable) {
        return UnavailableError(StrFormat("recv: peer closed after %zu of %zu bytes",
                                          received, length));
      }
      return n.status();
    }
    if (*n == 0) {
      INDAAS_RETURN_IF_ERROR(WaitReadable(timeout_ms));
      continue;
    }
    received += *n;
  }
  return Status::Ok();
}

Result<size_t> Socket::SendSome(std::string_view data) {
  std::string injected;
  if (chaos::Enabled()) {
    chaos::IoDecision decision = chaos::OnSend(fd_, data);
    if (!decision.fail.ok()) {
      return decision.fail;
    }
    if (decision.stall) {
      return static_cast<size_t>(0);
    }
    if (!decision.replace.empty()) {
      injected = std::move(decision.replace);
      data = injected;  // corrupted-header prefix replaces this chunk
    } else if (decision.send_len < data.size()) {
      data = data.substr(0, decision.send_len);  // injected short write
    }
  }
  for (;;) {
    ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n >= 0) {
      BytesSentCounter()->Add(static_cast<uint64_t>(n));
      if (chaos::Enabled() && n > 0) {
        chaos::OnBytesMoved(fd_, /*send_direction=*/true, static_cast<size_t>(n));
      }
      return static_cast<size_t>(n);
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return static_cast<size_t>(0);
    }
    if (errno == EINTR) {
      continue;
    }
    return UnavailableError(std::string("send: ") + std::strerror(errno));
  }
}

Result<size_t> Socket::RecvSome(char* out, size_t capacity) {
  if (chaos::Enabled()) {
    chaos::IoDecision decision = chaos::OnRecv(fd_, capacity);
    if (!decision.fail.ok()) {
      return decision.fail;
    }
    if (decision.stall) {
      return static_cast<size_t>(0);
    }
  }
  for (;;) {
    ssize_t n = ::recv(fd_, out, capacity, 0);
    if (n > 0) {
      BytesRecvCounter()->Add(static_cast<uint64_t>(n));
      if (chaos::Enabled()) {
        chaos::OnBytesMoved(fd_, /*send_direction=*/false, static_cast<size_t>(n));
      }
      return static_cast<size_t>(n);
    }
    if (n == 0) {
      return UnavailableError("recv: peer closed the connection");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return static_cast<size_t>(0);
    }
    if (errno == EINTR) {
      continue;
    }
    return UnavailableError(std::string("recv: ") + std::strerror(errno));
  }
}

Result<uint16_t> Socket::LocalPort() const {
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    return InternalError(std::string("getsockname: ") + std::strerror(errno));
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<Socket> TcpListen(uint16_t port, int backlog, bool reuse_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("socket: ") + std::strerror(errno));
  }
  Socket sock(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port) {
#ifdef SO_REUSEPORT
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0) {
      return UnimplementedError(std::string("setsockopt(SO_REUSEPORT): ") +
                                std::strerror(errno));
    }
#else
    return UnimplementedError("SO_REUSEPORT not available on this platform");
#endif
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    return UnavailableError(StrFormat("bind port %u: ", port) + std::strerror(errno));
  }
  if (::listen(fd, backlog) < 0) {
    return InternalError(std::string("listen: ") + std::strerror(errno));
  }
  INDAAS_RETURN_IF_ERROR(SetNonBlocking(fd));
  return sock;
}

Result<Socket> TcpAccept(const Socket& listener, int timeout_ms) {
  for (;;) {
    int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket sock(fd);
      if (chaos::Enabled()) {
        // Injected accept failure: the connection is dropped on the floor
        // (sock's destructor closes it) and the acceptor sees kUnavailable.
        INDAAS_RETURN_IF_ERROR(chaos::OnAccept(fd));
      }
      INDAAS_RETURN_IF_ERROR(SetNonBlocking(fd));
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return sock;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      INDAAS_RETURN_IF_ERROR(PollOne(listener.fd(), POLLIN, timeout_ms, "accept"));
      continue;
    }
    if (errno == EINTR || errno == ECONNABORTED) {
      continue;  // The connection died between SYN and accept; keep waiting.
    }
    return InternalError(std::string("accept: ") + std::strerror(errno));
  }
}

Result<Socket> TcpConnect(const Endpoint& endpoint, int timeout_ms) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  int rc = ::getaddrinfo(endpoint.host.c_str(), std::to_string(endpoint.port).c_str(), &hints,
                         &res);
  if (rc != 0) {
    return UnavailableError("resolve " + endpoint.ToString() + ": " + ::gai_strerror(rc));
  }
  Status last = UnavailableError("connect " + endpoint.ToString() + ": no addresses");
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = InternalError(std::string("socket: ") + std::strerror(errno));
      continue;
    }
    Socket sock(fd);
    if (Status s = SetNonBlocking(fd); !s.ok()) {
      last = std::move(s);
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      // Immediate success (loopback fast path).
    } else if (errno == EINPROGRESS) {
      if (Status s = PollOne(fd, POLLOUT, timeout_ms, "connect"); !s.ok()) {
        last = std::move(s);
        continue;
      }
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        last = UnavailableError("connect " + endpoint.ToString() + ": " + std::strerror(err));
        continue;
      }
    } else {
      last = UnavailableError("connect " + endpoint.ToString() + ": " + std::strerror(errno));
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::freeaddrinfo(res);
    return sock;
  }
  ::freeaddrinfo(res);
  return last;
}

}  // namespace net
}  // namespace indaas
