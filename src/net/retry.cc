#include "src/net/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/obs/log.h"
#include "src/obs/metrics.h"

namespace indaas {
namespace net {

double BackoffSeconds(const RetryPolicy& policy, size_t attempt) {
  double backoff = policy.initial_backoff_s;
  for (size_t i = 0; i < attempt; ++i) {
    backoff *= policy.backoff_multiplier;
    if (backoff >= policy.max_backoff_s) {
      return policy.max_backoff_s;
    }
  }
  return std::min(backoff, policy.max_backoff_s);
}

bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded;
}

Result<Socket> ConnectWithRetry(const Endpoint& endpoint, int timeout_ms,
                                const RetryPolicy& policy, size_t* retries_out) {
  static obs::Counter* retries =
      obs::MetricsRegistry::Global().GetCounter("net.connect_retries");
  size_t attempts = std::max<size_t>(1, policy.max_attempts);
  if (retries_out != nullptr) {
    *retries_out = 0;
  }
  for (size_t attempt = 0;; ++attempt) {
    Result<Socket> sock = TcpConnect(endpoint, timeout_ms);
    if (sock.ok()) {
      return sock;
    }
    if (retries_out != nullptr) {
      *retries_out = attempt + 1;
    }
    if (attempt + 1 >= attempts || !IsRetryable(sock.status())) {
      return sock;
    }
    retries->Increment();
    double backoff = BackoffSeconds(policy, attempt);
    INDAAS_SLOG(Debug, "net.connect_retry")
        .Kv("endpoint", endpoint.ToString())
        .Kv("error", sock.status().ToString())
        .Kv("backoff_s", backoff);
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
  }
}

}  // namespace net
}  // namespace indaas
