#include "src/net/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/obs/log.h"
#include "src/obs/metrics.h"

namespace indaas {
namespace net {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

double BackoffSeconds(const RetryPolicy& policy, size_t attempt) {
  double backoff = policy.initial_backoff_s;
  for (size_t i = 0; i < attempt; ++i) {
    backoff *= policy.backoff_multiplier;
    if (backoff >= policy.max_backoff_s) {
      backoff = policy.max_backoff_s;
      break;
    }
  }
  backoff = std::min(backoff, policy.max_backoff_s);
  if (policy.jitter > 0.0) {
    double clamped = std::min(policy.jitter, 1.0);
    // Top 53 bits of a seeded hash of the attempt index → u in [0, 1).
    // The ceiling is applied before jitter, so jitter only ever shortens a
    // sleep: the jittered schedule stays within [base*(1-jitter), base].
    double u = static_cast<double>(SplitMix64(policy.jitter_seed ^ (attempt + 1)) >> 11) *
               0x1.0p-53;
    backoff *= 1.0 - clamped * u;
  }
  return backoff;
}

bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded;
}

Result<Socket> ConnectWithRetry(const Endpoint& endpoint, int timeout_ms,
                                const RetryPolicy& policy, size_t* retries_out) {
  static obs::Counter* retries =
      obs::MetricsRegistry::Global().GetCounter("net.connect_retries");
  size_t attempts = std::max<size_t>(1, policy.max_attempts);
  if (retries_out != nullptr) {
    *retries_out = 0;
  }
  for (size_t attempt = 0;; ++attempt) {
    Result<Socket> sock = TcpConnect(endpoint, timeout_ms);
    if (sock.ok()) {
      return sock;
    }
    if (retries_out != nullptr) {
      *retries_out = attempt + 1;
    }
    if (attempt + 1 >= attempts || !IsRetryable(sock.status())) {
      return sock;
    }
    retries->Increment();
    double backoff = BackoffSeconds(policy, attempt);
    INDAAS_SLOG(Debug, "net.connect_retry")
        .Kv("endpoint", endpoint.ToString())
        .Kv("error", sock.status().ToString())
        .Kv("backoff_s", backoff);
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
  }
}

}  // namespace net
}  // namespace indaas
