// Retry with exponential backoff for transient (kUnavailable) failures.
//
// The canonical consumer is ConnectWithRetry: a PIA ring or an audit client
// frequently starts before its peer's listener is up, so the first connect
// is refused and succeeds a few backoff steps later. The base schedule is
// backoff_s(attempt) = min(initial * multiplier^attempt, max); optional
// jitter scales each step by a deterministic seeded draw in [1-jitter, 1]
// so many clients recovering from one outage do not reconnect in lockstep,
// while a fixed seed keeps every schedule byte-reproducible in tests.

#ifndef SRC_NET_RETRY_H_
#define SRC_NET_RETRY_H_

#include <cstddef>

#include "src/net/socket.h"
#include "src/util/status.h"

namespace indaas {
namespace net {

struct RetryPolicy {
  size_t max_attempts = 8;          // total tries, including the first
  double initial_backoff_s = 0.02;  // sleep after the first failure
  double backoff_multiplier = 2.0;
  double max_backoff_s = 1.0;
  // Jitter fraction in [0, 1]: attempt N sleeps base(N) * (1 - jitter * u)
  // where u in [0, 1) is a pure function of (jitter_seed, N). 0 (default)
  // keeps the legacy jitterless schedule.
  double jitter = 0.0;
  uint64_t jitter_seed = 0;
};

// Sleep duration after failed attempt `attempt` (0-based).
double BackoffSeconds(const RetryPolicy& policy, size_t attempt);

// Whether `status` is worth retrying (kUnavailable or kDeadlineExceeded).
bool IsRetryable(const Status& status);

// TcpConnect with up to policy.max_attempts tries; sleeps the backoff
// between failures and counts each retry in net.connect_retries. Returns
// the final attempt's error when all tries fail. When `retries_out` is
// non-null it receives the number of failed attempts before success (or
// before giving up), letting callers attribute retries to a specific RPC
// instead of only the process-wide counter.
Result<Socket> ConnectWithRetry(const Endpoint& endpoint, int timeout_ms,
                                const RetryPolicy& policy = {},
                                size_t* retries_out = nullptr);

}  // namespace net
}  // namespace indaas

#endif  // SRC_NET_RETRY_H_
