// Level-triggered epoll reactor core (DESIGN.md §7).
//
// One EventLoop owns one epoll instance, a deadline timer queue, and an
// eventfd used to wake the loop from other threads. Everything except
// Post() and Stop() is loop-thread-only: fd handlers, timers and the
// connection state machines built on top of them run on the single thread
// inside Run(), so they need no locks of their own. Cross-thread work
// (a worker finishing an audit, a shutdown request) enters through Post(),
// which enqueues a closure under a mutex and writes the eventfd so a
// blocked epoll_wait returns immediately.
//
// The loop is level-triggered: a handler that does not drain its fd is
// simply called again on the next iteration, so partial reads/writes are
// the normal case, not a lost wakeup. Handlers receive the epoll event
// mask and may Remove() their own fd mid-callback (dispatch holds a
// reference to the handler, not an iterator).
//
// Observability: net.loop.iterations counts wakeups, net.loop.wait_seconds
// is an exponential histogram of time spent blocked in epoll_wait, and
// net.loop.dispatch_seconds measures time spent running handlers, timers
// and posted closures per iteration.

#ifndef SRC_NET_EVENT_LOOP_H_
#define SRC_NET_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/util/status.h"

namespace indaas {
namespace net {

class EventLoop {
 public:
  // Receives the raw epoll event mask (EPOLLIN / EPOLLOUT / EPOLLERR ...).
  using FdHandler = std::function<void(uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // False when epoll/eventfd creation failed at construction; Run() on a
  // broken loop returns immediately.
  bool ok() const { return epoll_fd_ >= 0 && wakeup_fd_ >= 0; }

  // Registers `fd` for `events` (EPOLLIN etc., level-triggered). The handler
  // is invoked on the loop thread for every ready event. Loop-thread-only
  // once Run() has started (use Post to register from outside).
  Status Add(int fd, uint32_t events, FdHandler handler);

  // Changes the event mask of a registered fd. Loop-thread-only.
  Status Modify(int fd, uint32_t events);

  // Unregisters `fd`; its handler is released. Safe to call from inside the
  // fd's own handler. Loop-thread-only. Does not close the fd.
  void Remove(int fd);

  // Schedules `fn` to run on the loop thread after `delay_s` seconds;
  // returns a nonzero id usable with CancelTimer. Loop-thread-only.
  uint64_t AddTimer(double delay_s, std::function<void()> fn);

  // Cancels a pending timer (no-op if it already fired). Loop-thread-only.
  void CancelTimer(uint64_t id);

  // Enqueues `fn` for execution on the loop thread and wakes the loop.
  // Thread-safe. Closures posted before Stop() run before the loop exits;
  // closures posted after Stop() may never run.
  void Post(std::function<void()> fn);

  // Runs the loop on the calling thread until Stop(). Dispatches ready fds,
  // expired timers, then posted closures, every iteration.
  void Run();

  // Asks the loop to exit after finishing the current iteration (including
  // any already-posted closures). Thread-safe, idempotent.
  void Stop();

 private:
  struct Timer {
    std::chrono::steady_clock::time_point deadline;
    uint64_t id = 0;
    // Min-heap on deadline; ties broken by id so ordering is deterministic.
    bool operator>(const Timer& other) const {
      return deadline != other.deadline ? deadline > other.deadline : id > other.id;
    }
  };

  int NextTimerTimeoutMs() const;
  void RunExpiredTimers();
  void RunPosted();
  void DrainWakeup();

  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;
  std::atomic<bool> stop_{false};

  // Loop-thread state.
  std::unordered_map<int, std::shared_ptr<FdHandler>> handlers_;
  std::vector<Timer> timer_heap_;  // std::push_heap/pop_heap with operator>
  std::unordered_map<uint64_t, std::function<void()>> timer_fns_;
  uint64_t next_timer_id_ = 1;

  // Cross-thread mailbox.
  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace net
}  // namespace indaas

#endif  // SRC_NET_EVENT_LOOP_H_
