// Binary wire codec primitives (DESIGN.md §7).
//
// WireWriter appends fixed-width little-endian scalars and length-prefixed
// byte strings to a growing buffer; WireReader consumes the same encoding
// with bounds checks on every read, returning kParseError the moment a
// field runs past the buffer — a truncated or corrupted payload can never
// read out of bounds or allocate more than the payload it arrived in.
// Message-level codecs (audit specs, reports, protocol rounds) live in
// src/svc/proto.h on top of these primitives.

#ifndef SRC_NET_WIRE_H_
#define SRC_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace indaas {
namespace net {

class WireWriter {
 public:
  void U8(uint8_t value);
  void U16(uint16_t value);
  void U32(uint32_t value);
  void U64(uint64_t value);
  void Bool(bool value) { U8(value ? 1 : 0); }
  void F64(double value);  // IEEE-754 bits as U64
  // u32 length prefix + raw bytes.
  void Bytes(std::string_view data);
  void Str(const std::string& text) { Bytes(text); }
  void StrVec(const std::vector<std::string>& items);

  const std::string& buffer() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  Result<uint8_t> U8();
  Result<uint16_t> U16();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<bool> Bool();
  Result<double> F64();
  Result<std::string> Bytes();
  Result<std::string> Str() { return Bytes(); }
  Result<std::vector<std::string>> StrVec();

  // True when every byte has been consumed; codecs check this to reject
  // trailing garbage.
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status Need(size_t bytes);

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace net
}  // namespace indaas

#endif  // SRC_NET_WIRE_H_
