#include "src/net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/net/chaos.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/util/timer.h"

namespace indaas {
namespace net {
namespace {

constexpr int kMaxEventsPerWait = 64;

obs::Counter* LoopIterations() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("net.loop.iterations");
  return counter;
}

// Geometric bounds from 1 µs to ~4 s: epoll waits span idle seconds down to
// immediate readiness, so relative resolution matters more than absolute.
std::vector<double> ExponentialWaitBounds() {
  std::vector<double> bounds;
  for (double bound = 1e-6; bound < 8.0; bound *= 4.0) {
    bounds.push_back(bound);
  }
  return bounds;
}

obs::Histogram* WaitSeconds() {
  static obs::Histogram* histogram = obs::MetricsRegistry::Global().GetHistogram(
      "net.loop.wait_seconds", ExponentialWaitBounds());
  return histogram;
}

obs::Histogram* DispatchSeconds() {
  static obs::Histogram* histogram = obs::MetricsRegistry::Global().GetHistogram(
      "net.loop.dispatch_seconds", ExponentialWaitBounds());
  return histogram;
}

// How late timers fire relative to their deadline — the canonical event-loop
// lag signal: a busy or blocked loop services its timer heap late.
obs::Histogram* LagSeconds() {
  static obs::Histogram* histogram = obs::MetricsRegistry::Global().GetHistogram(
      "net.loop.lag_seconds", ExponentialWaitBounds());
  return histogram;
}

obs::Gauge* TimerHeapDepth() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetGauge("net.loop.timer_heap_depth");
  return gauge;
}

// Lag above this lands a kLoopLag flight event so post-hoc dumps show when
// (and how badly) a loop thread stalled.
constexpr double kLagEventThresholdSeconds = 1e-3;

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wakeup_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wakeup_fd_ < 0) {
    INDAAS_SLOG(Error, "net.loop_setup_failed").Kv("error", std::strerror(errno));
    return;
  }
  struct epoll_event event;
  std::memset(&event, 0, sizeof(event));
  event.events = EPOLLIN;
  event.data.fd = wakeup_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &event) < 0) {
    INDAAS_SLOG(Error, "net.loop_wakeup_failed").Kv("error", std::strerror(errno));
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

EventLoop::~EventLoop() {
  if (wakeup_fd_ >= 0) {
    ::close(wakeup_fd_);
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
  }
}

Status EventLoop::Add(int fd, uint32_t events, FdHandler handler) {
  struct epoll_event event;
  std::memset(&event, 0, sizeof(event));
  event.events = events;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) < 0) {
    return InternalError(std::string("epoll_ctl(ADD): ") + std::strerror(errno));
  }
  handlers_[fd] = std::make_shared<FdHandler>(std::move(handler));
  return Status::Ok();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  struct epoll_event event;
  std::memset(&event, 0, sizeof(event));
  event.events = events;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) < 0) {
    return InternalError(std::string("epoll_ctl(MOD): ") + std::strerror(errno));
  }
  return Status::Ok();
}

void EventLoop::Remove(int fd) {
  // The fd may already be closed (EBADF) when callers close before
  // unregistering; either way it is gone from the epoll set.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

uint64_t EventLoop::AddTimer(double delay_s, std::function<void()> fn) {
  uint64_t id = next_timer_id_++;
  Timer timer;
  timer.deadline = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(std::max(0.0, delay_s)));
  timer.id = id;
  timer_heap_.push_back(timer);
  std::push_heap(timer_heap_.begin(), timer_heap_.end(), std::greater<Timer>());
  timer_fns_[id] = std::move(fn);
  TimerHeapDepth()->Add(1);
  return id;
}

void EventLoop::CancelTimer(uint64_t id) {
  // Lazy cancellation: the heap entry stays and is skipped when it pops.
  if (timer_fns_.erase(id) != 0) {
    TimerHeapDepth()->Add(-1);
  }
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = ::write(wakeup_fd_, &one, sizeof(one));
}

int EventLoop::NextTimerTimeoutMs() const {
  if (timer_heap_.empty()) {
    return -1;  // block until an fd or a wakeup
  }
  auto now = std::chrono::steady_clock::now();
  auto until = timer_heap_.front().deadline - now;
  if (until.count() <= 0) {
    return 0;
  }
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(until).count() + 1;
  return static_cast<int>(std::min<long long>(ms, 60 * 1000));
}

void EventLoop::RunExpiredTimers() {
  auto now = std::chrono::steady_clock::now();
  while (!timer_heap_.empty() && timer_heap_.front().deadline <= now) {
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(), std::greater<Timer>());
    Timer expired = timer_heap_.back();
    timer_heap_.pop_back();
    auto it = timer_fns_.find(expired.id);
    if (it == timer_fns_.end()) {
      continue;  // cancelled
    }
    std::function<void()> fn = std::move(it->second);
    timer_fns_.erase(it);
    TimerHeapDepth()->Add(-1);
    double lag_s =
        std::chrono::duration<double>(now - expired.deadline).count();
    if (lag_s < 0) lag_s = 0;
    LagSeconds()->Record(lag_s);
    if (lag_s >= kLagEventThresholdSeconds) {
      obs::FlightRecorder::Global().Record(
          obs::FlightEventType::kLoopLag, static_cast<uint64_t>(lag_s * 1e6),
          timer_fns_.size(), 0, 0);
    }
    fn();
  }
}

void EventLoop::RunPosted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    batch.swap(posted_);
  }
  for (std::function<void()>& fn : batch) {
    fn();
  }
}

void EventLoop::DrainWakeup() {
  uint64_t count = 0;
  while (::read(wakeup_fd_, &count, sizeof(count)) == sizeof(count)) {
  }
}

void EventLoop::Run() {
  if (!ok()) {
    return;
  }
  struct epoll_event events[kMaxEventsPerWait];
  while (!stop_.load(std::memory_order_acquire)) {
    WallTimer wait_timer;
    int n = ::epoll_wait(epoll_fd_, events, kMaxEventsPerWait, NextTimerTimeoutMs());
    WaitSeconds()->Record(wait_timer.ElapsedSeconds());
    LoopIterations()->Increment();
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      INDAAS_SLOG(Error, "net.epoll_wait_failed").Kv("error", std::strerror(errno));
      return;
    }
    WallTimer dispatch_timer;
    if (chaos::Enabled()) {
      // Models a scheduling hiccup on the loop thread (GC pause, noisy
      // neighbor): the whole dispatch pass — handlers, timers, posted
      // closures — lands late, which is how loop lag presents in the wild.
      chaos::OnLoopPass();
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wakeup_fd_) {
        DrainWakeup();
        continue;
      }
      auto it = handlers_.find(fd);
      if (it == handlers_.end()) {
        continue;  // removed by an earlier handler in this batch
      }
      // Hold a reference so the handler may Remove() itself mid-call.
      std::shared_ptr<FdHandler> handler = it->second;
      (*handler)(events[i].events);
    }
    RunExpiredTimers();
    RunPosted();
    DispatchSeconds()->Record(dispatch_timer.ElapsedSeconds());
  }
  // Closures posted before Stop() must still run (reply flushes, cleanup).
  RunPosted();
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wakeup_fd_, &one, sizeof(one));
}

}  // namespace net
}  // namespace indaas
