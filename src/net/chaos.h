// Deterministic fault injection for the socket and event-loop layers
// (DESIGN.md "Failure semantics & chaos testing").
//
// A FaultPlan is a seeded recipe of fault probabilities — connection resets,
// accept failures, read/write stalls, partial writes, delayed delivery,
// corrupted frame headers, per-direction byte caps — installed process-wide
// via InstallPlan (tests, `--chaos-plan`) or the INDAAS_CHAOS environment
// variable (picked up on first use by any binary that touches a socket).
// While a plan is installed, Socket::SendSome/RecvSome/WaitReadable/
// WaitWritable and TcpAccept consult the engine before touching the kernel,
// and EventLoop::Run consults it once per dispatch pass.
//
// Every decision is a pure function of (plan seed, connection sequence
// number, per-connection operation counter, fault class), so two runs that
// perform the same operations in the same per-connection order inject the
// same faults — replayable from the seed alone. Thread interleaving across
// *different* connections does not perturb any connection's own fault
// sequence, because connection sequence numbers are assigned in first-touch
// order and every counter is per-connection.
//
// Fault classes and their observable effect:
//   reset          SendSome/RecvSome: shutdown(2) both directions, then
//                  kUnavailable — the peer sees ECONNRESET/EOF.
//   accept_fail    TcpAccept: the freshly accepted connection is closed
//                  immediately and the accept returns kUnavailable.
//   read_stall     RecvSome permanently returns 0 for this connection and
//                  WaitReadable sleeps out its timeout → kDeadlineExceeded.
//   write_stall    Same, for SendSome/WaitWritable.
//   partial_write  One SendSome is truncated to a deterministic prefix
//                  (≥1 byte), exercising short-write resumption everywhere.
//   delay          SendSome/RecvSome sleeps delay_ms before proceeding
//                  (delivery jitter); also injected into event-loop
//                  dispatch passes.
//   corrupt        One SendSome is truncated to at most kFrameHeaderBytes
//                  and a deterministic bit in that prefix is flipped. The
//                  receiver sees a corrupted frame header → kProtocolError
//                  (never payload corruption: the wire has no checksums, so
//                  flipping payload bytes could silently corrupt results —
//                  exactly the failure class audits must never produce).
//   send_cap /     After N bytes in that direction the connection behaves
//   recv_cap       as permanently stalled (slow-drain / half-open model).
//
// Injections are counted in net.chaos.* metrics and logged through SLOG as
// "net.chaos.inject" events carrying the fault class, connection sequence
// and operation number, so a failing chaos run can be replayed and the
// exact fault schedule recovered from the log.

#ifndef SRC_NET_CHAOS_H_
#define SRC_NET_CHAOS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace indaas {
namespace net {
namespace chaos {

// A seeded fault recipe. All probabilities are per-operation in [0, 1];
// 0 disables that fault class. Byte caps of 0 mean "uncapped".
struct FaultPlan {
  uint64_t seed = 1;
  double reset = 0.0;
  double accept_fail = 0.0;
  double read_stall = 0.0;
  double write_stall = 0.0;
  double partial_write = 0.0;
  double delay = 0.0;
  double corrupt = 0.0;
  uint64_t send_cap = 0;  // bytes per connection, send direction
  uint64_t recv_cap = 0;  // bytes per connection, recv direction
  uint32_t delay_ms = 5;  // sleep per injected delay
  // Upper bound on a single stall sleep: an infinite Wait* on a stalled
  // connection converts to kDeadlineExceeded after this long instead of
  // hanging (chaos must never introduce the very hang it exists to test).
  uint32_t max_stall_ms = 2000;

  // True when any fault class can fire.
  bool active() const {
    return reset > 0 || accept_fail > 0 || read_stall > 0 || write_stall > 0 ||
           partial_write > 0 || delay > 0 || corrupt > 0 || send_cap > 0 || recv_cap > 0;
  }
};

// Parses "seed=42,reset=0.01,read_stall=0.05,send_cap=4096,..." — comma- or
// whitespace-separated key=value pairs. Keys: seed, reset, accept_fail,
// read_stall, write_stall, partial_write, delay, corrupt, send_cap,
// recv_cap, delay_ms, max_stall_ms. Unknown keys and out-of-range
// probabilities are kInvalidArgument; an empty string is an inactive plan.
Result<FaultPlan> ParseFaultPlan(std::string_view text);

// Canonical text form (round-trips through ParseFaultPlan); used to log the
// installed plan so any run can be reproduced.
std::string FaultPlanToString(const FaultPlan& plan);

// True when an active plan is installed. One relaxed atomic load — the only
// cost chaos adds to production socket paths. The first call also consults
// INDAAS_CHAOS, so every binary honors the environment knob without
// plumbing.
bool Enabled();

// Installs `plan` process-wide (replacing any previous plan and resetting
// all per-connection state); an inactive plan is equivalent to Uninstall.
void InstallPlan(const FaultPlan& plan);

// Removes the installed plan and clears per-connection state.
void UninstallPlan();

// Currently installed plan (inactive when none).
FaultPlan InstalledPlan();

// --- Hooks, called by src/net/socket.cc and src/net/event_loop.cc. ---
// All are no-ops resolving in one branch when chaos is disabled; callers
// still guard with Enabled() to keep the hot path allocation-free.

// What a SendSome/RecvSome should do instead of (or before) its syscall.
struct IoDecision {
  // When !ok(), return this error (after the engine shut the socket down).
  Status fail;
  // When true, report no progress: *Some returns 0 and the matching Wait*
  // will convert the caller's poll into a bounded kDeadlineExceeded.
  bool stall = false;
  // Bytes of the caller's buffer to actually send (send path only);
  // SIZE_MAX = all of it.
  size_t send_len = SIZE_MAX;
  // When non-empty, send these bytes instead of the caller's prefix (the
  // corrupted-header injection). At most kFrameHeaderBytes long.
  std::string replace;
};

// Consulted at the top of Socket::SendSome / Socket::RecvSome. `len` is the
// caller's buffer size (send: bytes offered; recv: capacity).
IoDecision OnSend(int fd, std::string_view data);
IoDecision OnRecv(int fd, size_t capacity);

// Records post-syscall progress toward the per-direction byte caps.
void OnBytesMoved(int fd, bool send_direction, size_t n);

// Consulted by WaitReadable/WaitWritable before polling. Returns non-OK
// (kDeadlineExceeded, after sleeping min(timeout_ms, max_stall_ms)) when
// the connection's direction is stalled; OK to proceed with the real poll.
Status OnWait(int fd, bool for_read, int timeout_ms);

// Consulted by TcpAccept after a successful accept(2) of `fd`. Non-OK
// (kUnavailable) means the engine already arranged the failure; the caller
// returns the error (closing the socket).
Status OnAccept(int fd);

// Forgets per-connection state (fd numbers are recycled by the kernel).
void OnSocketClosed(int fd);

// Consulted once per EventLoop dispatch pass; may sleep delay_ms to model
// a scheduling hiccup on the loop thread.
void OnLoopPass();

}  // namespace chaos
}  // namespace net
}  // namespace indaas

#endif  // SRC_NET_CHAOS_H_
