#include "src/net/chaos.h"

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/util/strings.h"

namespace indaas {
namespace net {
namespace chaos {
namespace {

// Corruption is confined to a send prefix no longer than the frame header
// (kFrameHeaderBytes in src/net/frame.h): a flipped header bit is caught by
// magic/version/flags/length validation as kProtocolError, while a flipped
// payload bit would silently corrupt an audit result — the wire carries no
// checksums, and "silent wrong answer" is the one outcome chaos must never
// manufacture.
constexpr size_t kCorruptPrefixMax = 12;

// Fault-class salts: every decision hashes (seed, connection, op, salt), so
// the classes draw independent coin flips from one seed.
enum FaultSalt : uint32_t {
  kSaltReset = 1,
  kSaltAcceptFail = 2,
  kSaltReadStall = 3,
  kSaltWriteStall = 4,
  kSaltPartialWrite = 5,
  kSaltDelay = 6,
  kSaltCorrupt = 7,
  kSaltLoopDelay = 8,
};

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t DecisionHash(uint64_t seed, uint64_t conn, uint64_t op, uint32_t salt) {
  return SplitMix64(seed ^ SplitMix64(conn * 0x9E3779B97F4A7C15ULL + salt) ^ (op << 1));
}

bool Fires(double prob, uint64_t seed, uint64_t conn, uint64_t op, uint32_t salt) {
  if (prob <= 0.0) {
    return false;
  }
  if (prob >= 1.0) {
    return true;
  }
  // Top 53 bits → uniform double in [0, 1).
  double u = static_cast<double>(DecisionHash(seed, conn, op, salt) >> 11) * 0x1.0p-53;
  return u < prob;
}

struct Counters {
  obs::Counter* injected_total;
  obs::Counter* resets;
  obs::Counter* accept_failures;
  obs::Counter* read_stalls;
  obs::Counter* write_stalls;
  obs::Counter* partial_writes;
  obs::Counter* delays;
  obs::Counter* corruptions;
  obs::Counter* byte_cap_stalls;
  obs::Counter* loop_delays;
};

Counters* GetCounters() {
  static Counters* counters = [] {
    auto& reg = obs::MetricsRegistry::Global();
    auto* c = new Counters;
    c->injected_total = reg.GetCounter("net.chaos.injected_total");
    c->resets = reg.GetCounter("net.chaos.resets");
    c->accept_failures = reg.GetCounter("net.chaos.accept_failures");
    c->read_stalls = reg.GetCounter("net.chaos.read_stalls");
    c->write_stalls = reg.GetCounter("net.chaos.write_stalls");
    c->partial_writes = reg.GetCounter("net.chaos.partial_writes");
    c->delays = reg.GetCounter("net.chaos.delays");
    c->corruptions = reg.GetCounter("net.chaos.corruptions");
    c->byte_cap_stalls = reg.GetCounter("net.chaos.byte_cap_stalls");
    c->loop_delays = reg.GetCounter("net.chaos.loop_delays");
    return c;
  }();
  return counters;
}

void CountInjection(obs::Counter* which) {
  GetCounters()->injected_total->Increment();
  which->Increment();
}

void LogInjection(const char* fault, int fd, uint64_t conn, uint64_t op) {
  INDAAS_SLOG(Info, "net.chaos.inject")
      .Kv("fault", fault)
      .Kv("fd", static_cast<int64_t>(fd))
      .Kv("conn", static_cast<int64_t>(conn))
      .Kv("op", static_cast<int64_t>(op));
}

// Per-connection fault state, keyed by fd while the fd is open. Connection
// sequence numbers are assigned in first-touch order; all decisions hash
// off (conn_seq, op_seq), never the fd number, so kernel fd recycling does
// not perturb the schedule.
struct ConnState {
  uint64_t conn_seq = 0;
  uint64_t op_seq = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_recv = 0;
  bool read_stalled = false;
  bool write_stalled = false;
  bool dead = false;  // reset already injected
};

class Engine {
 public:
  static Engine& Global() {
    static Engine* engine = new Engine;
    return *engine;
  }

  Engine() {
    const char* env = std::getenv("INDAAS_CHAOS");
    if (env != nullptr && env[0] != '\0') {
      Result<FaultPlan> plan = ParseFaultPlan(env);
      if (plan.ok()) {
        Install(*plan);
        INDAAS_SLOG(Warn, "net.chaos.env_install").Kv("plan", FaultPlanToString(*plan));
      } else {
        INDAAS_SLOG(Error, "net.chaos.env_parse_failed")
            .Kv("value", std::string(env))
            .Kv("error", plan.status().ToString());
      }
    }
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Install(const FaultPlan& plan) {
    std::lock_guard<std::mutex> lock(mu_);
    plan_ = plan;
    conns_.clear();
    next_conn_seq_ = 1;
    accept_seq_ = 0;
    loop_seq_ = 0;
    enabled_.store(plan.active(), std::memory_order_relaxed);
  }

  void Uninstall() {
    std::lock_guard<std::mutex> lock(mu_);
    plan_ = FaultPlan{};
    conns_.clear();
    enabled_.store(false, std::memory_order_relaxed);
  }

  FaultPlan plan() const {
    std::lock_guard<std::mutex> lock(mu_);
    return plan_;
  }

  IoDecision OnIo(int fd, bool send_direction, std::string_view data, size_t capacity) {
    IoDecision decision;
    uint32_t sleep_ms = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!enabled()) {
        return decision;
      }
      ConnState& st = Touch(fd);
      if (st.dead) {
        decision.fail = UnavailableError("chaos: connection reset");
        return decision;
      }
      bool& stalled = send_direction ? st.write_stalled : st.read_stalled;
      if (stalled) {
        decision.stall = true;
        return decision;
      }
      uint64_t cap = send_direction ? plan_.send_cap : plan_.recv_cap;
      uint64_t moved = send_direction ? st.bytes_sent : st.bytes_recv;
      if (cap > 0 && moved >= cap) {
        stalled = true;
        CountInjection(GetCounters()->byte_cap_stalls);
        LogInjection(send_direction ? "send_cap" : "recv_cap", fd, st.conn_seq, st.op_seq);
        decision.stall = true;
        return decision;
      }
      uint64_t op = st.op_seq++;
      if (Fires(plan_.reset, plan_.seed, st.conn_seq, op, kSaltReset)) {
        // Shut the socket down both ways so the peer observes the reset too,
        // then report the transport failure to this side's caller.
        ::shutdown(fd, SHUT_RDWR);
        st.dead = true;
        CountInjection(GetCounters()->resets);
        LogInjection("reset", fd, st.conn_seq, op);
        decision.fail = UnavailableError("chaos: injected connection reset");
        return decision;
      }
      double stall_prob = send_direction ? plan_.write_stall : plan_.read_stall;
      uint32_t stall_salt = send_direction ? kSaltWriteStall : kSaltReadStall;
      if (Fires(stall_prob, plan_.seed, st.conn_seq, op, stall_salt)) {
        stalled = true;
        CountInjection(send_direction ? GetCounters()->write_stalls
                                      : GetCounters()->read_stalls);
        LogInjection(send_direction ? "write_stall" : "read_stall", fd, st.conn_seq, op);
        decision.stall = true;
        return decision;
      }
      if (send_direction && !data.empty()) {
        if (Fires(plan_.corrupt, plan_.seed, st.conn_seq, op, kSaltCorrupt)) {
          size_t len = std::min(data.size(), kCorruptPrefixMax);
          decision.replace.assign(data.data(), len);
          uint64_t h = DecisionHash(plan_.seed, st.conn_seq, op, kSaltCorrupt + 100);
          size_t byte = static_cast<size_t>(h % len);
          decision.replace[byte] = static_cast<char>(
              decision.replace[byte] ^ static_cast<char>(1u << ((h >> 8) % 8)));
          CountInjection(GetCounters()->corruptions);
          LogInjection("corrupt", fd, st.conn_seq, op);
        } else if (Fires(plan_.partial_write, plan_.seed, st.conn_seq, op,
                         kSaltPartialWrite)) {
          uint64_t h = DecisionHash(plan_.seed, st.conn_seq, op, kSaltPartialWrite + 100);
          decision.send_len = 1 + static_cast<size_t>(h % data.size());
          if (decision.send_len < data.size()) {
            CountInjection(GetCounters()->partial_writes);
            LogInjection("partial_write", fd, st.conn_seq, op);
          } else {
            decision.send_len = SIZE_MAX;  // degenerate draw: full write
          }
        }
      }
      if (Fires(plan_.delay, plan_.seed, st.conn_seq, op, kSaltDelay)) {
        sleep_ms = plan_.delay_ms;
        CountInjection(GetCounters()->delays);
        LogInjection("delay", fd, st.conn_seq, op);
      }
      (void)capacity;
    }
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    return decision;
  }

  void OnBytesMoved(int fd, bool send_direction, size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled()) {
      return;
    }
    ConnState& st = Touch(fd);
    if (send_direction) {
      st.bytes_sent += n;
    } else {
      st.bytes_recv += n;
    }
  }

  Status OnWait(int fd, bool for_read, int timeout_ms) {
    uint32_t sleep_ms = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!enabled()) {
        return Status::Ok();
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) {
        return Status::Ok();
      }
      ConnState& st = it->second;
      if (st.dead) {
        return UnavailableError("chaos: connection reset");
      }
      bool stalled = for_read ? st.read_stalled : st.write_stalled;
      if (!stalled) {
        return Status::Ok();
      }
      // The stalled direction never becomes ready; model the caller's poll
      // timing out, bounded by max_stall_ms so timeout_ms < 0 (wait forever)
      // cannot hang — chaos converts it into the bounded deadline a
      // production read-deadline timer would impose.
      sleep_ms = plan_.max_stall_ms;
      if (timeout_ms >= 0) {
        sleep_ms = std::min<uint32_t>(sleep_ms, static_cast<uint32_t>(timeout_ms));
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    return DeadlineExceededError(
        StrFormat("chaos: %s stalled, timed out after %u ms", for_read ? "recv" : "send",
                  sleep_ms));
  }

  Status OnAccept(int fd) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled()) {
      return Status::Ok();
    }
    uint64_t op = accept_seq_++;
    if (Fires(plan_.accept_fail, plan_.seed, /*conn=*/0, op, kSaltAcceptFail)) {
      CountInjection(GetCounters()->accept_failures);
      LogInjection("accept_fail", fd, 0, op);
      return UnavailableError("chaos: injected accept failure");
    }
    return Status::Ok();
  }

  void OnSocketClosed(int fd) {
    std::lock_guard<std::mutex> lock(mu_);
    conns_.erase(fd);
  }

  void OnLoopPass() {
    uint32_t sleep_ms = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!enabled()) {
        return;
      }
      uint64_t op = loop_seq_++;
      if (Fires(plan_.delay, plan_.seed, /*conn=*/0, op, kSaltLoopDelay)) {
        sleep_ms = plan_.delay_ms;
        CountInjection(GetCounters()->loop_delays);
        INDAAS_SLOG(Debug, "net.chaos.inject")
            .Kv("fault", "loop_delay")
            .Kv("op", static_cast<int64_t>(op));
      }
    }
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
  }

  std::atomic<bool>& enabled_flag() { return enabled_; }

 private:
  ConnState& Touch(int fd) {
    auto [it, inserted] = conns_.try_emplace(fd);
    if (inserted) {
      it->second.conn_seq = next_conn_seq_++;
    }
    return it->second;
  }

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  FaultPlan plan_;
  std::unordered_map<int, ConnState> conns_;
  uint64_t next_conn_seq_ = 1;
  uint64_t accept_seq_ = 0;
  uint64_t loop_seq_ = 0;
};

}  // namespace

Result<FaultPlan> ParseFaultPlan(std::string_view text) {
  FaultPlan plan;
  // Comma-, semicolon- or whitespace-separated key=value tokens.
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (c == ',' || c == ';' || c == ' ' || c == '\t' || c == '\n') {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    tokens.push_back(std::move(current));
  }
  for (const std::string& token : tokens) {
    size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
      return InvalidArgumentError("chaos plan token must be key=value — '" + token + "'");
    }
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    char* end = nullptr;
    auto parse_u64 = [&](uint64_t* out) -> Status {
      unsigned long long v = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return InvalidArgumentError("bad integer in chaos plan token '" + token + "'");
      }
      *out = static_cast<uint64_t>(v);
      return Status::Ok();
    };
    auto parse_prob = [&](double* out) -> Status {
      double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || v < 0.0 || v > 1.0) {
        return InvalidArgumentError("probability must be in [0,1] — '" + token + "'");
      }
      *out = v;
      return Status::Ok();
    };
    if (key == "seed") {
      INDAAS_RETURN_IF_ERROR(parse_u64(&plan.seed));
    } else if (key == "reset") {
      INDAAS_RETURN_IF_ERROR(parse_prob(&plan.reset));
    } else if (key == "accept_fail") {
      INDAAS_RETURN_IF_ERROR(parse_prob(&plan.accept_fail));
    } else if (key == "read_stall") {
      INDAAS_RETURN_IF_ERROR(parse_prob(&plan.read_stall));
    } else if (key == "write_stall") {
      INDAAS_RETURN_IF_ERROR(parse_prob(&plan.write_stall));
    } else if (key == "partial_write") {
      INDAAS_RETURN_IF_ERROR(parse_prob(&plan.partial_write));
    } else if (key == "delay") {
      INDAAS_RETURN_IF_ERROR(parse_prob(&plan.delay));
    } else if (key == "corrupt") {
      INDAAS_RETURN_IF_ERROR(parse_prob(&plan.corrupt));
    } else if (key == "send_cap") {
      INDAAS_RETURN_IF_ERROR(parse_u64(&plan.send_cap));
    } else if (key == "recv_cap") {
      INDAAS_RETURN_IF_ERROR(parse_u64(&plan.recv_cap));
    } else if (key == "delay_ms") {
      uint64_t v = 0;
      INDAAS_RETURN_IF_ERROR(parse_u64(&v));
      plan.delay_ms = static_cast<uint32_t>(std::min<uint64_t>(v, 60'000));
    } else if (key == "max_stall_ms") {
      uint64_t v = 0;
      INDAAS_RETURN_IF_ERROR(parse_u64(&v));
      plan.max_stall_ms = static_cast<uint32_t>(std::min<uint64_t>(v, 600'000));
    } else {
      return InvalidArgumentError("unknown chaos plan key '" + key + "'");
    }
  }
  return plan;
}

std::string FaultPlanToString(const FaultPlan& plan) {
  std::string out = StrFormat("seed=%llu", static_cast<unsigned long long>(plan.seed));
  auto add_prob = [&](const char* key, double v) {
    if (v > 0) {
      out += StrFormat(",%s=%g", key, v);
    }
  };
  add_prob("reset", plan.reset);
  add_prob("accept_fail", plan.accept_fail);
  add_prob("read_stall", plan.read_stall);
  add_prob("write_stall", plan.write_stall);
  add_prob("partial_write", plan.partial_write);
  add_prob("delay", plan.delay);
  add_prob("corrupt", plan.corrupt);
  if (plan.send_cap > 0) {
    out += StrFormat(",send_cap=%llu", static_cast<unsigned long long>(plan.send_cap));
  }
  if (plan.recv_cap > 0) {
    out += StrFormat(",recv_cap=%llu", static_cast<unsigned long long>(plan.recv_cap));
  }
  if (plan.delay_ms != FaultPlan{}.delay_ms) {
    out += StrFormat(",delay_ms=%u", plan.delay_ms);
  }
  if (plan.max_stall_ms != FaultPlan{}.max_stall_ms) {
    out += StrFormat(",max_stall_ms=%u", plan.max_stall_ms);
  }
  return out;
}

bool Enabled() { return Engine::Global().enabled(); }

void InstallPlan(const FaultPlan& plan) { Engine::Global().Install(plan); }

void UninstallPlan() { Engine::Global().Uninstall(); }

FaultPlan InstalledPlan() { return Engine::Global().plan(); }

IoDecision OnSend(int fd, std::string_view data) {
  return Engine::Global().OnIo(fd, /*send_direction=*/true, data, 0);
}

IoDecision OnRecv(int fd, size_t capacity) {
  return Engine::Global().OnIo(fd, /*send_direction=*/false, {}, capacity);
}

void OnBytesMoved(int fd, bool send_direction, size_t n) {
  Engine::Global().OnBytesMoved(fd, send_direction, n);
}

Status OnWait(int fd, bool for_read, int timeout_ms) {
  return Engine::Global().OnWait(fd, for_read, timeout_ms);
}

Status OnAccept(int fd) { return Engine::Global().OnAccept(fd); }

void OnSocketClosed(int fd) { Engine::Global().OnSocketClosed(fd); }

void OnLoopPass() { Engine::Global().OnLoopPass(); }

}  // namespace chaos
}  // namespace net
}  // namespace indaas
