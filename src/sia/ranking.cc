#include "src/sia/ranking.h"

#include "src/graph/bdd.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/thread_pool.h"

#include <algorithm>
#include <limits>
#include <thread>

namespace indaas {

std::vector<RankedRiskGroup> RankBySize(std::vector<RiskGroup> groups) {
  INDAAS_TRACE_SPAN_NAMED(span, "sia.rank");
  span.Annotate("method", "size");
  span.Annotate("groups", std::to_string(groups.size()));
  std::sort(groups.begin(), groups.end(), [](const RiskGroup& a, const RiskGroup& b) {
    if (a.size() != b.size()) {
      return a.size() < b.size();
    }
    return a < b;
  });
  std::vector<RankedRiskGroup> ranked;
  ranked.reserve(groups.size());
  for (RiskGroup& group : groups) {
    double size = static_cast<double>(group.size());
    ranked.push_back(RankedRiskGroup{std::move(group), size});
  }
  return ranked;
}

double GroupProbability(const FaultGraph& graph, const RiskGroup& group, double default_prob) {
  double prob = 1.0;
  for (NodeId id : group) {
    double p = graph.node(id).failure_prob;
    prob *= (p == kUnknownProb) ? default_prob : p;
  }
  return group.empty() ? 0.0 : prob;
}

double TopEventProbabilityExact(const FaultGraph& graph, const std::vector<RiskGroup>& groups,
                                double default_prob) {
  // Inclusion–exclusion: Pr(union of "all events in RG_i fail") =
  // sum over nonempty subsets S of (-1)^(|S|+1) * Pr(union of members fail).
  const size_t n = groups.size();
  if (n >= 64) {
    // 1ULL << n would be undefined; callers must clamp (RankByImportance
    // does) or route large group counts through the BDD / Monte Carlo.
    return std::numeric_limits<double>::quiet_NaN();
  }
  double total = 0.0;
  for (uint64_t mask = 1; mask < (1ULL << n); ++mask) {
    RiskGroup merged;
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) {
        RiskGroup next;
        std::set_union(merged.begin(), merged.end(), groups[i].begin(), groups[i].end(),
                       std::back_inserter(next));
        merged = std::move(next);
      }
    }
    double term = GroupProbability(graph, merged, default_prob);
    total += (__builtin_popcountll(mask) % 2 == 1) ? term : -term;
  }
  return total;
}

double TopEventProbabilityMonteCarlo(const FaultGraph& graph, double default_prob, size_t rounds,
                                     Rng& rng) {
  std::vector<uint8_t> state(graph.NodeCount(), 0);
  const auto& basics = graph.BasicEvents();
  std::vector<double> probs;
  probs.reserve(basics.size());
  for (NodeId id : basics) {
    double p = graph.node(id).failure_prob;
    probs.push_back(p == kUnknownProb ? default_prob : p);
  }
  size_t failures = 0;
  for (size_t round = 0; round < rounds; ++round) {
    for (size_t i = 0; i < basics.size(); ++i) {
      state[basics[i]] = rng.NextBool(probs[i]) ? 1 : 0;
    }
    if (graph.Evaluate(state)) {
      ++failures;
    }
  }
  return rounds == 0 ? 0.0 : static_cast<double>(failures) / static_cast<double>(rounds);
}

double TopEventProbabilityMonteCarlo(const FaultGraph& graph, double default_prob, size_t rounds,
                                     uint64_t seed, size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, std::max<size_t>(1, rounds));
  if (threads <= 1) {
    Rng rng(seed);
    return TopEventProbabilityMonteCarlo(graph, default_prob, rounds, rng);
  }
  // One shard per worker; shard seeds are drawn serially from a seeder so
  // the set of streams depends only on (seed, threads).
  Rng seeder(seed);
  std::vector<uint64_t> shard_seeds(threads);
  std::vector<size_t> shard_rounds(threads, rounds / threads);
  for (size_t s = 0; s < threads; ++s) {
    shard_seeds[s] = seeder.Next();
    if (s < rounds % threads) {
      ++shard_rounds[s];
    }
  }
  std::vector<size_t> shard_failures(threads, 0);
  ThreadPool pool(threads);
  pool.ParallelFor(threads, [&](size_t s) {
    Rng rng(shard_seeds[s]);
    std::vector<uint8_t> state(graph.NodeCount(), 0);
    const auto& basics = graph.BasicEvents();
    std::vector<double> probs;
    probs.reserve(basics.size());
    for (NodeId id : basics) {
      double p = graph.node(id).failure_prob;
      probs.push_back(p == kUnknownProb ? default_prob : p);
    }
    size_t failures = 0;
    for (size_t round = 0; round < shard_rounds[s]; ++round) {
      for (size_t i = 0; i < basics.size(); ++i) {
        state[basics[i]] = rng.NextBool(probs[i]) ? 1 : 0;
      }
      if (graph.Evaluate(state)) {
        ++failures;
      }
    }
    shard_failures[s] = failures;
  });
  size_t failures = 0;
  for (size_t s = 0; s < threads; ++s) {
    failures += shard_failures[s];
  }
  return rounds == 0 ? 0.0 : static_cast<double>(failures) / static_cast<double>(rounds);
}

Result<ProbabilityRanking> RankByImportance(const FaultGraph& graph,
                                            const std::vector<RiskGroup>& minimal_groups,
                                            const ProbabilityRankingOptions& options) {
  if (!graph.validated()) {
    return FailedPreconditionError("RankByImportance: graph not validated");
  }
  if (minimal_groups.empty()) {
    return ProbabilityRanking{};
  }
  INDAAS_TRACE_SPAN_NAMED(span, "sia.rank");
  span.Annotate("groups", std::to_string(minimal_groups.size()));
  ProbabilityRanking out;
  // The inclusion-exclusion mask is 64-bit: >= 64 groups would shift out of
  // range, so such inputs always take the BDD / Monte-Carlo route.
  const size_t max_exact_terms = std::min<size_t>(options.max_exact_terms, 63);
  if (minimal_groups.size() <= max_exact_terms) {
    out.top_event_prob = TopEventProbabilityExact(graph, minimal_groups, options.default_prob);
    span.Annotate("method", "exact");
  } else {
    // Too many groups for inclusion-exclusion: BDD compilation stays exact;
    // Monte Carlo is the last resort when the BDD blows its budget.
    auto bdd = TopEventProbabilityBdd(graph, options.default_prob, options.bdd_node_budget);
    if (bdd.ok()) {
      out.top_event_prob = *bdd;
      span.Annotate("method", "bdd");
    } else {
      out.top_event_prob = TopEventProbabilityMonteCarlo(
          graph, options.default_prob, options.monte_carlo_rounds, options.seed, options.threads);
      static obs::Counter* mc_rounds =
          obs::MetricsRegistry::Global().GetCounter("sia.rank.mc_rounds");
      mc_rounds->Add(options.monte_carlo_rounds);
      span.Annotate("method", "monte_carlo");
    }
  }
  if (out.top_event_prob <= 0.0) {
    return InternalError("RankByImportance: top event probability is zero");
  }
  out.ranked.reserve(minimal_groups.size());
  for (const RiskGroup& group : minimal_groups) {
    double importance = GroupProbability(graph, group, options.default_prob) / out.top_event_prob;
    out.ranked.push_back(RankedRiskGroup{group, importance});
  }
  std::sort(out.ranked.begin(), out.ranked.end(),
            [](const RankedRiskGroup& a, const RankedRiskGroup& b) {
              if (a.score != b.score) {
                return a.score > b.score;
              }
              return a.group < b.group;
            });
  return out;
}

double IndependenceScore(const std::vector<RankedRiskGroup>& ranked, size_t top_n) {
  if (top_n == 0 || top_n > ranked.size()) {
    top_n = ranked.size();
  }
  double score = 0.0;
  for (size_t i = 0; i < top_n; ++i) {
    score += ranked[i].score;
  }
  return score;
}

}  // namespace indaas
