// Risk group ranking and independence scores (paper §4.1.3–4.1.4).
//
// Two rankers:
//   * size-based  — fewest components first ({ToR1} before {Core1, Core2});
//   * probability — by relative importance I_C = Pr(C) / Pr(T), where Pr(C)
//     is the joint failure probability of the RG (independence assumption)
//     and Pr(T) the top event probability via inclusion–exclusion over the
//     minimal RGs (§4.1.3's worked example), with a Monte-Carlo fallback when
//     there are too many RGs for exact inclusion–exclusion.
//
// Independence score of a deployment (§4.1.4): sum over the top-n ranked RGs
// of size(c_i) (size ranking) or I_{c_i} (probability ranking). Note the
// paper's convention: *smaller* scores mean the deployment is more fragile;
// deployments are ranked by descending score for size and ascending total
// importance for probability. We expose the raw scores and a comparator.

#ifndef SRC_SIA_RANKING_H_
#define SRC_SIA_RANKING_H_

#include <vector>

#include "src/graph/fault_graph.h"
#include "src/sia/risk_groups.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace indaas {

struct RankedRiskGroup {
  RiskGroup group;
  double score = 0.0;  // size (size ranking) or relative importance
};

// Sorts by ascending size (ties broken lexicographically for determinism);
// score = size. The most critical RGs (size 1 = no redundancy) come first.
std::vector<RankedRiskGroup> RankBySize(std::vector<RiskGroup> groups);

// Joint failure probability of `group` assuming independent basic events;
// events without a probability use `default_prob`.
double GroupProbability(const FaultGraph& graph, const RiskGroup& group, double default_prob);

struct ProbabilityRankingOptions {
  // Events lacking failure_prob fall back to this.
  double default_prob = 0.01;
  // Exact inclusion–exclusion is used up to this many minimal RGs (2^n
  // terms); beyond it Pr(T) comes from BDD compilation (exact), and only if
  // the BDD exceeds its node budget from Monte-Carlo evaluation. Values
  // >= 64 are clamped to 63: the 2^n subset walk is a 64-bit mask, so larger
  // group counts must take the BDD / Monte-Carlo route.
  size_t max_exact_terms = 20;
  size_t bdd_node_budget = 2000000;
  size_t monte_carlo_rounds = 200000;
  uint64_t seed = 1;
  // Worker threads for the Monte-Carlo fallback (0 = hardware concurrency).
  // Rounds are sharded with per-shard Rng streams derived from `seed`, so
  // results are deterministic for a fixed thread count.
  size_t threads = 0;
};

struct ProbabilityRanking {
  std::vector<RankedRiskGroup> ranked;  // descending importance
  double top_event_prob = 0.0;
};

// Ranks minimal RGs by relative importance I_C = Pr(C)/Pr(T).
Result<ProbabilityRanking> RankByImportance(const FaultGraph& graph,
                                            const std::vector<RiskGroup>& minimal_groups,
                                            const ProbabilityRankingOptions& options = {});

// Pr(top event) by inclusion–exclusion over minimal RGs (exact; use only for
// small group counts — 2^n terms). Requires groups.size() < 64 (the subset
// walk is a 64-bit mask); larger inputs return NaN instead of shifting out
// of range. RankByImportance clamps max_exact_terms so it never hits this.
double TopEventProbabilityExact(const FaultGraph& graph, const std::vector<RiskGroup>& groups,
                                double default_prob);

// Pr(top event) by Monte-Carlo evaluation of the fault graph itself.
double TopEventProbabilityMonteCarlo(const FaultGraph& graph, double default_prob, size_t rounds,
                                     Rng& rng);

// Parallel variant: shards `rounds` across `threads` workers (0 = hardware
// concurrency), each with its own Rng stream derived from `seed`. The result
// is deterministic for a fixed thread count; a single thread reproduces the
// serial Rng overload exactly.
double TopEventProbabilityMonteCarlo(const FaultGraph& graph, double default_prob, size_t rounds,
                                     uint64_t seed, size_t threads);

// Independence score over the top-n entries (n = 0 means all): sum of scores.
double IndependenceScore(const std::vector<RankedRiskGroup>& ranked, size_t top_n = 0);

}  // namespace indaas

#endif  // SRC_SIA_RANKING_H_
