// Component importance measures from classical fault tree analysis
// (Vesely et al., the Fault Tree Handbook the paper builds on [52, 60]).
//
// Beyond ranking whole risk groups (§4.1.3), operators ask "which single
// component should I fix first?". Three standard answers, all computed from
// the minimal RGs and the failure-probability assignment:
//   * membership count — in how many minimal RGs the component appears;
//   * Birnbaum importance  B_i = Pr(T | i failed) − Pr(T | i working);
//   * criticality importance C_i = B_i · p_i / Pr(T) — the probability that
//     i's failure is contributing *and* the system is down.

#ifndef SRC_SIA_IMPORTANCE_H_
#define SRC_SIA_IMPORTANCE_H_

#include <string>
#include <vector>

#include "src/graph/fault_graph.h"
#include "src/sia/risk_groups.h"
#include "src/util/status.h"

namespace indaas {

struct ComponentImportance {
  NodeId id = kInvalidNode;
  std::string name;
  size_t rg_memberships = 0;
  double birnbaum = 0.0;
  double criticality = 0.0;
};

struct ImportanceOptions {
  double default_prob = 0.01;  // for events without failure_prob
  // Exact inclusion-exclusion limit (2^n terms); above it, Monte Carlo.
  size_t max_exact_terms = 18;
  size_t monte_carlo_rounds = 100000;
  uint64_t seed = 1;
};

// Ranks every basic event that appears in at least one minimal RG, most
// critical first (by criticality importance, then Birnbaum).
Result<std::vector<ComponentImportance>> RankComponentImportance(
    const FaultGraph& graph, const std::vector<RiskGroup>& minimal_groups,
    const ImportanceOptions& options = {});

}  // namespace indaas

#endif  // SRC_SIA_IMPORTANCE_H_
