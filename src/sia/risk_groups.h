// Risk group determination (paper §4.1.2).
//
// A risk group (RG) is a set of basic failure events whose simultaneous
// occurrence fails the top event. A *minimal* RG stops being an RG if any
// member is removed. Two pluggable algorithms:
//   * ComputeMinimalRiskGroups — exact bottom-up cut-set computation adapted
//     from classic fault tree analysis; precise but NP-hard (exponential in
//     the worst case). Supports size-bounded analysis and inline absorption.
//   * SampleRiskGroups (sampling.h) — linear-time randomized detection.

#ifndef SRC_SIA_RISK_GROUPS_H_
#define SRC_SIA_RISK_GROUPS_H_

#include <cstddef>
#include <vector>

#include "src/graph/fault_graph.h"
#include "src/util/status.h"

namespace indaas {

// A set of basic-event node ids, sorted ascending.
using RiskGroup = std::vector<NodeId>;

// True if `a` is a subset of `b`; both must be sorted.
bool IsSubsetOf(const RiskGroup& a, const RiskGroup& b);

// Removes duplicates and non-minimal groups (supersets of another group).
// The result is sorted by size, then lexicographically.
std::vector<RiskGroup> MinimizeRiskGroups(std::vector<RiskGroup> groups);

// Which cut-set representation drives the bottom-up computation. Both
// engines produce byte-identical MinimalRgResults (property-tested); the
// legacy vector engine is retained as the parity baseline and perf yardstick.
enum class RgEngine : uint8_t {
  // Fixed-stride uint64_t bitsets over the basic events, arena-allocated,
  // with hash dedup, bucket-by-popcount absorption, and optional thread-pool
  // sharding of AND products and absorption passes (DESIGN.md §5).
  kBitset,
  // Sorted std::vector<NodeId> per cut set, std::set_union products,
  // pairwise std::includes absorption; single-threaded.
  kVector,
};

struct MinimalRgOptions {
  // Cut sets larger than this are pruned during computation: the analysis is
  // then exact for all minimal RGs of size <= max_rg_size (size-bounded fault
  // tree analysis). SIZE_MAX means unbounded.
  size_t max_rg_size = SIZE_MAX;
  // Safety valve: if any node accumulates more cut sets than this, the
  // computation fails with kResourceExhausted rather than consuming all
  // memory. SIZE_MAX means unbounded.
  size_t max_cut_sets_per_node = SIZE_MAX;
  // Apply absorption (subset pruning) after every combination step instead of
  // only at the end. Usually a large win; ablatable (DESIGN.md §4).
  bool inline_absorption = true;
  RgEngine engine = RgEngine::kBitset;
  // Worker threads for the bitset engine's AND-product / absorption sharding
  // (0 = hardware concurrency, 1 = fully sequential). Output is byte-
  // identical for every thread count; the pool is only spun up once a stage
  // has enough work to amortize it.
  size_t threads = 0;
};

struct MinimalRgResult {
  std::vector<RiskGroup> groups;  // minimal RGs, sorted by size
  // True if max_rg_size pruned anything (result complete only up to bound).
  bool size_bounded = false;
};

// Exact minimal risk groups of the validated graph's top event.
Result<MinimalRgResult> ComputeMinimalRiskGroups(const FaultGraph& graph,
                                                 const MinimalRgOptions& options = {});

// Verifies by evaluation that every member of `group` is needed: `group`
// fails the top event and no proper subset obtained by dropping one element
// does. (Test/debug helper; O(|group| * |graph|).)
bool IsMinimalRiskGroup(const FaultGraph& graph, const RiskGroup& group);

// True if failing exactly `group` fails the top event.
bool FailsTopEvent(const FaultGraph& graph, const RiskGroup& group);

}  // namespace indaas

#endif  // SRC_SIA_RISK_GROUPS_H_
