// Fault-graph construction from DepDB (paper §4.1.1, "Building the
// dependency graph", steps 1–6).
//
// Given a redundancy deployment — a list of servers (or VMs) — the builder
// queries DepDB and produces the fault graph:
//   top event            AND (or k-of-n) over server failure events    [1,2]
//   server fails         OR over { the machine itself, network fails,
//                                  hardware fails, software fails }    [3]
//   hardware fails       OR over hardware component failures           [4]
//   network fails        AND over redundant paths; each path is an OR
//                        over its network devices                      [5]
//   software fails       OR over software components; each component is
//                        an OR over its packages                       [6]
// Basic events are normalized component ids (src/deps/normalize.h), so the
// same physical component referenced by several servers becomes one shared
// node — the mechanism that surfaces unexpected common dependencies.

#ifndef SRC_SIA_BUILDER_H_
#define SRC_SIA_BUILDER_H_

#include <string>
#include <vector>

#include "src/deps/depdb.h"
#include "src/deps/prob_model.h"
#include "src/graph/fault_graph.h"
#include "src/util/status.h"

namespace indaas {

struct BuildOptions {
  // Destination used to select network routes (paper Figure 3: routes to the
  // Internet).
  std::string network_destination = "Internet";
  // Survivability threshold: the deployment fails when fewer than
  // `required_servers` servers are up (0 = all servers required to fail, i.e.
  // plain AND / full redundancy).
  uint32_t required_servers = 0;
  // Restrict the software layer to these programs (paper §3: the client
  // lists software components of interest). Empty = all programs in DepDB.
  std::vector<std::string> software_of_interest;
  // If set, basic events get failure probabilities from this model.
  const FailureProbabilityModel* prob_model = nullptr;
  // Include a basic event for each server machine itself (its outright
  // failure, independent of catalogued dependencies).
  bool include_server_event = true;
  // Dependency types to include (§2 Step 1c: "the types of components and
  // dependencies to be considered").
  bool include_network = true;
  bool include_hardware = true;
  bool include_software = true;
};

// Builds and validates the deployment fault graph for `servers`.
Result<FaultGraph> BuildDeploymentFaultGraph(const DepDb& db,
                                             const std::vector<std::string>& servers,
                                             const BuildOptions& options = {});

}  // namespace indaas

#endif  // SRC_SIA_BUILDER_H_
