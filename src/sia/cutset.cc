#include "src/sia/cutset.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "src/obs/metrics.h"

namespace indaas {

EventIndex::EventIndex(const FaultGraph& graph) {
  bit_of_.assign(graph.NodeCount(), SIZE_MAX);
  id_of_ = graph.BasicEvents();
  for (size_t bit = 0; bit < id_of_.size(); ++bit) {
    bit_of_[id_of_[bit]] = bit;
  }
  stride_ = std::max<size_t>(1, (id_of_.size() + 63) / 64);
}

namespace {

// A popcount level only pays for parallel dispatch when candidate×survivor
// subset work is at least this many word operations.
constexpr size_t kParallelAbsorbWork = 1 << 15;

}  // namespace

CutSetArena AbsorbMinimal(const CutSetArena& sets, ThreadPool* pool) {
  const size_t n = sets.size();
  const size_t stride = sets.stride();
  CutSetArena out(stride);
  if (n == 0) {
    return out;
  }

  // Popcount + fingerprint per row, then a stable popcount-ascending order so
  // rows keep first-appearance order within a level.
  std::vector<uint32_t> pc(n);
  std::vector<uint64_t> fp(n);
  for (size_t i = 0; i < n; ++i) {
    pc[i] = static_cast<uint32_t>(RowPopcount(sets.row(i), stride));
    fp[i] = RowFingerprint(sets.row(i), stride);
  }
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return pc[a] < pc[b]; });

  // Hash-based exact-duplicate elimination (equal rows share a fingerprint;
  // full word compare disambiguates collisions). Small inputs skip the hash
  // map: a fingerprint-prechecked quadratic scan beats its allocations.
  std::vector<size_t> candidates;
  candidates.reserve(n);
  if (n <= 64) {
    for (size_t i : order) {
      bool duplicate = false;
      for (size_t j : candidates) {
        if (fp[j] == fp[i] && pc[j] == pc[i] && RowEquals(sets.row(j), sets.row(i), stride)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        candidates.push_back(i);
      }
    }
  } else {
    std::unordered_map<uint64_t, std::vector<size_t>> buckets;
    buckets.reserve(n * 2);
    for (size_t i : order) {
      std::vector<size_t>& bucket = buckets[fp[i]];
      bool duplicate = false;
      for (size_t j : bucket) {
        if (pc[j] == pc[i] && RowEquals(sets.row(j), sets.row(i), stride)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        bucket.push_back(i);
        candidates.push_back(i);
      }
    }
  }

  // Level-by-level absorption: within one popcount level no row can absorb
  // another (equal sizes + no duplicates), so the survivor set from smaller
  // levels is frozen while a level is tested — safe to shard across threads.
  std::vector<size_t> kept;
  kept.reserve(candidates.size());
  std::vector<uint8_t> absorbed(n, 0);
  size_t level_begin = 0;
  while (level_begin < candidates.size()) {
    size_t level_end = level_begin;
    const uint32_t level_pc = pc[candidates[level_begin]];
    while (level_end < candidates.size() && pc[candidates[level_end]] == level_pc) {
      ++level_end;
    }
    const size_t level_size = level_end - level_begin;
    auto test_range = [&](size_t begin, size_t end) {
      for (size_t c = begin; c < end; ++c) {
        const size_t i = candidates[level_begin + c];
        const uint64_t* candidate = sets.row(i);
        for (size_t j : kept) {
          if (RowSubsetOf(sets.row(j), candidate, stride)) {
            absorbed[i] = 1;
            break;
          }
        }
      }
    };
    const size_t work = level_size * kept.size() * stride;
    if (pool != nullptr && pool->num_threads() > 1 && work >= kParallelAbsorbWork) {
      const size_t grain =
          std::max<size_t>(1, kParallelAbsorbWork / std::max<size_t>(1, kept.size() * stride));
      pool->ParallelForChunked(level_size, grain, test_range);
    } else {
      test_range(0, level_size);
    }
    for (size_t c = level_begin; c < level_end; ++c) {
      if (!absorbed[candidates[c]]) {
        kept.push_back(candidates[c]);
      }
    }
    level_begin = level_end;
  }

  out.Reserve(kept.size());
  for (size_t i : kept) {
    out.AppendCopy(sets.row(i));
  }
  // Batch counter updates: two relaxed adds per absorption sweep, not per row.
  static obs::Counter* deduped = obs::MetricsRegistry::Global().GetCounter("sia.cutsets.deduped");
  static obs::Counter* absorbed_count =
      obs::MetricsRegistry::Global().GetCounter("sia.cutsets.absorbed");
  deduped->Add(n - candidates.size());
  absorbed_count->Add(candidates.size() - kept.size());
  return out;
}

}  // namespace indaas
