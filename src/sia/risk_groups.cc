#include "src/sia/risk_groups.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sia/cutset.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace indaas {
namespace {

// Engine-level counters (DESIGN.md §6), bumped once per batch operation.
struct CutSetMetrics {
  obs::Counter* generated;   // AND products kept (within the size bound)
  obs::Counter* size_pruned; // products dropped by max_rg_size
  obs::Counter* deduped;     // exact duplicates removed (vector engine)
  obs::Counter* absorbed;    // rows absorbed by a subset (vector engine)
};

CutSetMetrics& Metrics() {
  static CutSetMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return CutSetMetrics{
        registry.GetCounter("sia.cutsets.generated"),
        registry.GetCounter("sia.cutsets.size_pruned"),
        registry.GetCounter("sia.cutsets.deduped"),
        registry.GetCounter("sia.cutsets.absorbed"),
    };
  }();
  return metrics;
}

}  // namespace

bool IsSubsetOf(const RiskGroup& a, const RiskGroup& b) {
  if (a.size() > b.size()) {
    return false;
  }
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

namespace {

// Canonical output order shared by both engines: size ascending, then
// lexicographic — the contract documented on MinimizeRiskGroups.
void SortGroups(std::vector<RiskGroup>& groups) {
  std::sort(groups.begin(), groups.end(), [](const RiskGroup& a, const RiskGroup& b) {
    if (a.size() != b.size()) {
      return a.size() < b.size();
    }
    return a < b;
  });
}

// ===========================================================================
// Legacy vector engine (RgEngine::kVector): sorted std::vector<NodeId> cut
// sets, std::set_union products, pairwise std::includes absorption. Kept
// verbatim as the parity baseline for the bitset engine and as the reference
// implementation the property tests compare against.
// ===========================================================================

std::vector<RiskGroup> MinimizeRiskGroupsVector(std::vector<RiskGroup> groups) {
  const size_t before_dedup = groups.size();
  SortGroups(groups);
  groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
  Metrics().deduped->Add(before_dedup - groups.size());
  const size_t after_dedup = groups.size();
  std::vector<RiskGroup> minimal;
  for (RiskGroup& candidate : groups) {
    bool absorbed = false;
    // `minimal` is size-ascending (candidates arrive in size order); only
    // strictly smaller groups can be proper subsets, and equal-size
    // duplicates were removed above — so stop at the first same-size entry.
    for (const RiskGroup& kept : minimal) {
      if (kept.size() >= candidate.size()) {
        break;
      }
      if (IsSubsetOf(kept, candidate)) {
        absorbed = true;
        break;
      }
    }
    if (!absorbed) {
      minimal.push_back(std::move(candidate));
    }
  }
  Metrics().absorbed->Add(after_dedup - minimal.size());
  return minimal;
}

// Merges two sorted id sets (set union).
RiskGroup UnionOf(const RiskGroup& a, const RiskGroup& b) {
  RiskGroup out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

// Cartesian combination for AND gates: every union of one cut set from each
// side, pruned by max size and (optionally) absorption. Sets *pruned when a
// product exceeds the size bound.
Result<std::vector<RiskGroup>> CombineAnd(const std::vector<RiskGroup>& lhs,
                                          const std::vector<RiskGroup>& rhs,
                                          const MinimalRgOptions& options, bool* pruned) {
  std::vector<RiskGroup> out;
  if (lhs.size() * rhs.size() > 0 &&
      lhs.size() > options.max_cut_sets_per_node / std::max<size_t>(rhs.size(), 1)) {
    return ResourceExhaustedError(
        StrFormat("minimal RG analysis exceeded cut-set budget (%zu x %zu products)", lhs.size(),
                  rhs.size()));
  }
  out.reserve(lhs.size() * rhs.size());
  for (const RiskGroup& a : lhs) {
    for (const RiskGroup& b : rhs) {
      RiskGroup merged = UnionOf(a, b);
      if (merged.size() <= options.max_rg_size) {
        out.push_back(std::move(merged));
      } else {
        *pruned = true;
      }
    }
  }
  Metrics().generated->Add(out.size());
  Metrics().size_pruned->Add(lhs.size() * rhs.size() - out.size());
  if (options.inline_absorption) {
    out = MinimizeRiskGroupsVector(std::move(out));
  }
  return out;
}

Result<MinimalRgResult> ComputeMinimalRiskGroupsVector(const FaultGraph& graph,
                                                       const MinimalRgOptions& options) {
  MinimalRgResult result;
  // Per-node cut set lists, built in topological (children-first) order.
  std::vector<std::vector<RiskGroup>> cut_sets(graph.NodeCount());
  for (NodeId id : graph.TopologicalOrder()) {
    const FaultNode& node = graph.node(id);
    std::vector<RiskGroup>& mine = cut_sets[id];
    switch (node.gate) {
      case GateType::kBasic:
        mine.push_back(RiskGroup{id});
        break;
      case GateType::kOr: {
        for (NodeId child : node.children) {
          mine.insert(mine.end(), cut_sets[child].begin(), cut_sets[child].end());
        }
        if (options.inline_absorption) {
          mine = MinimizeRiskGroupsVector(std::move(mine));
        }
        break;
      }
      case GateType::kAnd: {
        bool first = true;
        for (NodeId child : node.children) {
          if (first) {
            mine = cut_sets[child];
            first = false;
          } else {
            INDAAS_ASSIGN_OR_RETURN(
                mine, CombineAnd(mine, cut_sets[child], options, &result.size_bounded));
          }
          if (mine.empty()) {
            // All products exceeded the size bound: no cut sets within bound.
            result.size_bounded = true;
            break;
          }
        }
        break;
      }
      case GateType::kKofN: {
        // Cut sets of a k-of-n gate: for every k-subset of children, the AND
        // combination of their cut sets; union over subsets.
        std::vector<RiskGroup> acc;
        const size_t n = node.children.size();
        const uint32_t k = node.k;
        std::vector<size_t> pick(k);
        for (uint32_t i = 0; i < k; ++i) {
          pick[i] = i;
        }
        for (;;) {
          std::vector<RiskGroup> product = cut_sets[node.children[pick[0]]];
          for (uint32_t i = 1; i < k && !product.empty(); ++i) {
            INDAAS_ASSIGN_OR_RETURN(product,
                                    CombineAnd(product, cut_sets[node.children[pick[i]]], options,
                                               &result.size_bounded));
          }
          acc.insert(acc.end(), product.begin(), product.end());
          // Next k-combination.
          int pos = static_cast<int>(k) - 1;
          while (pos >= 0 && pick[pos] == n - k + static_cast<size_t>(pos)) {
            --pos;
          }
          if (pos < 0) {
            break;
          }
          ++pick[pos];
          for (size_t i = static_cast<size_t>(pos) + 1; i < k; ++i) {
            pick[i] = pick[i - 1] + 1;
          }
        }
        mine = options.inline_absorption ? MinimizeRiskGroupsVector(std::move(acc))
                                         : std::move(acc);
        break;
      }
    }
    if (mine.size() > options.max_cut_sets_per_node) {
      return ResourceExhaustedError(
          StrFormat("node '%s' accumulated %zu cut sets (budget %zu)", node.name.c_str(),
                    mine.size(), options.max_cut_sets_per_node));
    }
    if (options.max_rg_size != SIZE_MAX) {
      size_t before = mine.size();
      mine.erase(std::remove_if(mine.begin(), mine.end(),
                                [&](const RiskGroup& rg) {
                                  return rg.size() > options.max_rg_size;
                                }),
                 mine.end());
      if (mine.size() != before) {
        result.size_bounded = true;
      }
    }
  }
  result.groups = MinimizeRiskGroupsVector(std::move(cut_sets[graph.top_event()]));
  return result;
}

// ===========================================================================
// Bitset engine (RgEngine::kBitset): fixed-stride uint64_t rows over the
// basic events (src/sia/cutset.h), arena storage, hash dedup +
// bucket-by-popcount absorption, and thread-pool sharding of large AND
// products and absorption levels. Byte-identical results to the vector
// engine: the surviving minimal set is unique, shards merge in chunk order,
// and the public RiskGroup form is canonically sorted at the API boundary.
// ===========================================================================

// Products per shard of a parallel AND-product sweep. Fixed (never derived
// from the worker count) so shard boundaries — and thus the merged row
// order — are identical for every thread count.
constexpr size_t kProductGrain = 1024;
// A product sweep must be at least this large before the pool is engaged.
constexpr size_t kMinParallelProducts = 4096;

// Spins up the shared worker pool only once a stage actually has enough work
// to amortize thread creation; small graphs never pay for it.
class LazyPool {
 public:
  explicit LazyPool(size_t threads)
      : threads_(threads != 0 ? threads
                              : std::max<size_t>(1, std::thread::hardware_concurrency())) {}

  // nullptr when the engine is configured (or defaulted) to one thread.
  ThreadPool* Get() {
    if (threads_ <= 1) {
      return nullptr;
    }
    if (pool_ == nullptr) {
      pool_ = std::make_unique<ThreadPool>(threads_);
    }
    return pool_.get();
  }

 private:
  size_t threads_;
  std::unique_ptr<ThreadPool> pool_;
};

// Cartesian AND product over bitset rows; same budget / size-bound semantics
// as the vector CombineAnd. Flat product index t maps to (t / |rhs|,
// t % |rhs|), so the sequential append order and the shard-merged order are
// the same sequence.
Status CombineAndBitset(const CutSetArena& lhs, const CutSetArena& rhs,
                        const MinimalRgOptions& options, CutSetArena* out, bool* pruned,
                        LazyPool& lazy_pool) {
  const size_t stride = lhs.stride();
  out->Clear();
  if (lhs.size() * rhs.size() > 0 &&
      lhs.size() > options.max_cut_sets_per_node / std::max<size_t>(rhs.size(), 1)) {
    return ResourceExhaustedError(
        StrFormat("minimal RG analysis exceeded cut-set budget (%zu x %zu products)", lhs.size(),
                  rhs.size()));
  }
  const size_t total = lhs.size() * rhs.size();
  auto emit_range = [&](CutSetArena& dst, bool& dst_pruned, size_t begin, size_t end) {
    std::vector<uint64_t> merged(stride);
    for (size_t t = begin; t < end; ++t) {
      const uint64_t* a = lhs.row(t / rhs.size());
      const uint64_t* b = rhs.row(t % rhs.size());
      RowUnion(merged.data(), a, b, stride);
      if (options.max_rg_size == SIZE_MAX ||
          RowPopcount(merged.data(), stride) <= options.max_rg_size) {
        dst.AppendCopy(merged.data());
      } else {
        dst_pruned = true;
      }
    }
  };
  ThreadPool* pool = total >= kMinParallelProducts ? lazy_pool.Get() : nullptr;
  if (pool == nullptr) {
    out->Reserve(total);
    bool local_pruned = false;
    emit_range(*out, local_pruned, 0, total);
    if (local_pruned) {
      *pruned = true;
    }
  } else {
    const size_t chunks = (total + kProductGrain - 1) / kProductGrain;
    std::vector<CutSetArena> parts(chunks, CutSetArena(stride));
    std::vector<uint8_t> part_pruned(chunks, 0);
    pool->ParallelForChunked(total, kProductGrain, [&](size_t begin, size_t end) {
      const size_t chunk = begin / kProductGrain;
      parts[chunk].Reserve(end - begin);
      bool chunk_pruned = false;
      emit_range(parts[chunk], chunk_pruned, begin, end);
      part_pruned[chunk] = chunk_pruned ? 1 : 0;
    });
    size_t kept = 0;
    for (const CutSetArena& part : parts) {
      kept += part.size();
    }
    out->Reserve(kept);
    for (size_t c = 0; c < chunks; ++c) {
      out->AppendAll(parts[c]);
      if (part_pruned[c]) {
        *pruned = true;
      }
    }
  }
  Metrics().generated->Add(out->size());
  Metrics().size_pruned->Add(total - out->size());
  return Status::Ok();
}

Result<MinimalRgResult> ComputeMinimalRiskGroupsBitset(const FaultGraph& graph,
                                                       const MinimalRgOptions& options) {
  MinimalRgResult result;
  EventIndex index(graph);
  const size_t stride = index.stride();
  LazyPool lazy_pool(options.threads);
  std::vector<CutSetArena> cut_sets(graph.NodeCount(), CutSetArena(stride));
  for (NodeId id : graph.TopologicalOrder()) {
    const FaultNode& node = graph.node(id);
    CutSetArena& mine = cut_sets[id];
    switch (node.gate) {
      case GateType::kBasic: {
        uint64_t* row = mine.AppendZero();
        const size_t bit = index.BitFor(id);
        row[bit / 64] |= 1ULL << (bit % 64);
        break;
      }
      case GateType::kOr: {
        size_t total = 0;
        for (NodeId child : node.children) {
          total += cut_sets[child].size();
        }
        mine.Reserve(total);
        for (NodeId child : node.children) {
          mine.AppendAll(cut_sets[child]);
        }
        if (options.inline_absorption) {
          mine = AbsorbMinimal(mine, lazy_pool.Get());
        }
        break;
      }
      case GateType::kAnd: {
        bool first = true;
        for (NodeId child : node.children) {
          if (first) {
            mine.AppendAll(cut_sets[child]);
            first = false;
          } else {
            CutSetArena next(stride);
            INDAAS_RETURN_IF_ERROR(CombineAndBitset(mine, cut_sets[child], options, &next,
                                                    &result.size_bounded, lazy_pool));
            if (options.inline_absorption) {
              next = AbsorbMinimal(next, lazy_pool.Get());
            }
            mine = std::move(next);
          }
          if (mine.empty()) {
            // All products exceeded the size bound: no cut sets within bound.
            result.size_bounded = true;
            break;
          }
        }
        break;
      }
      case GateType::kKofN: {
        // Cut sets of a k-of-n gate: for every k-subset of children, the AND
        // combination of their cut sets; union over subsets.
        CutSetArena acc(stride);
        const size_t n = node.children.size();
        const uint32_t k = node.k;
        std::vector<size_t> pick(k);
        for (uint32_t i = 0; i < k; ++i) {
          pick[i] = i;
        }
        for (;;) {
          CutSetArena product(stride);
          product.AppendAll(cut_sets[node.children[pick[0]]]);
          for (uint32_t i = 1; i < k && !product.empty(); ++i) {
            CutSetArena next(stride);
            INDAAS_RETURN_IF_ERROR(CombineAndBitset(product, cut_sets[node.children[pick[i]]],
                                                    options, &next, &result.size_bounded,
                                                    lazy_pool));
            if (options.inline_absorption) {
              next = AbsorbMinimal(next, lazy_pool.Get());
            }
            product = std::move(next);
          }
          acc.AppendAll(product);
          // Next k-combination.
          int pos = static_cast<int>(k) - 1;
          while (pos >= 0 && pick[pos] == n - k + static_cast<size_t>(pos)) {
            --pos;
          }
          if (pos < 0) {
            break;
          }
          ++pick[pos];
          for (size_t i = static_cast<size_t>(pos) + 1; i < k; ++i) {
            pick[i] = pick[i - 1] + 1;
          }
        }
        mine = options.inline_absorption ? AbsorbMinimal(acc, lazy_pool.Get()) : std::move(acc);
        break;
      }
    }
    if (mine.size() > options.max_cut_sets_per_node) {
      return ResourceExhaustedError(
          StrFormat("node '%s' accumulated %zu cut sets (budget %zu)", node.name.c_str(),
                    mine.size(), options.max_cut_sets_per_node));
    }
    if (options.max_rg_size != SIZE_MAX) {
      CutSetArena within(stride);
      within.Reserve(mine.size());
      for (size_t i = 0; i < mine.size(); ++i) {
        if (RowPopcount(mine.row(i), stride) <= options.max_rg_size) {
          within.AppendCopy(mine.row(i));
        }
      }
      if (within.size() != mine.size()) {
        result.size_bounded = true;
        mine = std::move(within);
      }
    }
  }
  CutSetArena minimal = AbsorbMinimal(cut_sets[graph.top_event()], lazy_pool.Get());
  result.groups.reserve(minimal.size());
  for (size_t i = 0; i < minimal.size(); ++i) {
    const uint64_t* row = minimal.row(i);
    RiskGroup group;
    for (size_t w = 0; w < stride; ++w) {
      uint64_t word = row[w];
      while (word != 0) {
        const size_t bit = w * 64 + static_cast<size_t>(__builtin_ctzll(word));
        group.push_back(index.IdFor(bit));
        word &= word - 1;
      }
    }
    result.groups.push_back(std::move(group));
  }
  SortGroups(result.groups);
  return result;
}

// MinimizeRiskGroups inputs above this size take the bitset path; below it
// the remap overhead outweighs the word-parallel wins.
constexpr size_t kMinBitsetMinimize = 16;

}  // namespace

std::vector<RiskGroup> MinimizeRiskGroups(std::vector<RiskGroup> groups) {
  if (groups.size() <= kMinBitsetMinimize) {
    return MinimizeRiskGroupsVector(std::move(groups));
  }
  // Remap the distinct ids to dense bits, absorb word-wise, map back. The
  // sorted id universe keeps bit order == id order, so extracted groups come
  // out sorted.
  std::vector<NodeId> universe;
  for (const RiskGroup& group : groups) {
    universe.insert(universe.end(), group.begin(), group.end());
  }
  std::sort(universe.begin(), universe.end());
  universe.erase(std::unique(universe.begin(), universe.end()), universe.end());
  const size_t stride = std::max<size_t>(1, (universe.size() + 63) / 64);
  auto bit_for = [&](NodeId id) {
    return static_cast<size_t>(
        std::lower_bound(universe.begin(), universe.end(), id) - universe.begin());
  };
  CutSetArena arena(stride);
  arena.Reserve(groups.size());
  for (const RiskGroup& group : groups) {
    uint64_t* row = arena.AppendZero();
    for (NodeId id : group) {
      const size_t bit = bit_for(id);
      row[bit / 64] |= 1ULL << (bit % 64);
    }
  }
  CutSetArena minimal = AbsorbMinimal(arena, nullptr);
  std::vector<RiskGroup> out;
  out.reserve(minimal.size());
  for (size_t i = 0; i < minimal.size(); ++i) {
    const uint64_t* row = minimal.row(i);
    RiskGroup group;
    for (size_t w = 0; w < stride; ++w) {
      uint64_t word = row[w];
      while (word != 0) {
        const size_t bit = w * 64 + static_cast<size_t>(__builtin_ctzll(word));
        group.push_back(universe[bit]);
        word &= word - 1;
      }
    }
    out.push_back(std::move(group));
  }
  SortGroups(out);
  return out;
}

Result<MinimalRgResult> ComputeMinimalRiskGroups(const FaultGraph& graph,
                                                 const MinimalRgOptions& options) {
  if (!graph.validated()) {
    return FailedPreconditionError("ComputeMinimalRiskGroups: graph not validated");
  }
  INDAAS_TRACE_SPAN_NAMED(span, "sia.enumerate");
  span.Annotate("engine", options.engine == RgEngine::kBitset ? "bitset" : "vector");
  Result<MinimalRgResult> result = InternalError("ComputeMinimalRiskGroups: unknown engine");
  switch (options.engine) {
    case RgEngine::kBitset:
      result = ComputeMinimalRiskGroupsBitset(graph, options);
      break;
    case RgEngine::kVector:
      result = ComputeMinimalRiskGroupsVector(graph, options);
      break;
  }
  if (result.ok()) {
    span.Annotate("groups", std::to_string(result->groups.size()));
  }
  return result;
}

bool FailsTopEvent(const FaultGraph& graph, const RiskGroup& group) {
  std::vector<uint8_t> state(graph.NodeCount(), 0);
  for (NodeId id : group) {
    state[id] = 1;
  }
  return graph.Evaluate(state);
}

bool IsMinimalRiskGroup(const FaultGraph& graph, const RiskGroup& group) {
  if (group.empty() || !FailsTopEvent(graph, group)) {
    return false;
  }
  for (size_t drop = 0; drop < group.size(); ++drop) {
    RiskGroup reduced;
    reduced.reserve(group.size() - 1);
    for (size_t i = 0; i < group.size(); ++i) {
      if (i != drop) {
        reduced.push_back(group[i]);
      }
    }
    if (FailsTopEvent(graph, reduced)) {
      return false;
    }
  }
  return true;
}

}  // namespace indaas
