#include "src/sia/risk_groups.h"

#include <algorithm>

#include "src/util/strings.h"

namespace indaas {

bool IsSubsetOf(const RiskGroup& a, const RiskGroup& b) {
  if (a.size() > b.size()) {
    return false;
  }
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

std::vector<RiskGroup> MinimizeRiskGroups(std::vector<RiskGroup> groups) {
  std::sort(groups.begin(), groups.end(), [](const RiskGroup& a, const RiskGroup& b) {
    if (a.size() != b.size()) {
      return a.size() < b.size();
    }
    return a < b;
  });
  groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
  std::vector<RiskGroup> minimal;
  for (RiskGroup& candidate : groups) {
    bool absorbed = false;
    // `minimal` is size-ascending (candidates arrive in size order); only
    // strictly smaller groups can be proper subsets, and equal-size
    // duplicates were removed above — so stop at the first same-size entry.
    for (const RiskGroup& kept : minimal) {
      if (kept.size() >= candidate.size()) {
        break;
      }
      if (IsSubsetOf(kept, candidate)) {
        absorbed = true;
        break;
      }
    }
    if (!absorbed) {
      minimal.push_back(std::move(candidate));
    }
  }
  return minimal;
}

namespace {

// Merges two sorted id sets (set union).
RiskGroup UnionOf(const RiskGroup& a, const RiskGroup& b) {
  RiskGroup out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

// Cartesian combination for AND gates: every union of one cut set from each
// side, pruned by max size and (optionally) absorption. Sets *pruned when a
// product exceeds the size bound.
Result<std::vector<RiskGroup>> CombineAnd(const std::vector<RiskGroup>& lhs,
                                          const std::vector<RiskGroup>& rhs,
                                          const MinimalRgOptions& options, bool* pruned) {
  std::vector<RiskGroup> out;
  if (lhs.size() * rhs.size() > 0 &&
      lhs.size() > options.max_cut_sets_per_node / std::max<size_t>(rhs.size(), 1)) {
    return ResourceExhaustedError(
        StrFormat("minimal RG analysis exceeded cut-set budget (%zu x %zu products)", lhs.size(),
                  rhs.size()));
  }
  out.reserve(lhs.size() * rhs.size());
  for (const RiskGroup& a : lhs) {
    for (const RiskGroup& b : rhs) {
      RiskGroup merged = UnionOf(a, b);
      if (merged.size() <= options.max_rg_size) {
        out.push_back(std::move(merged));
      } else {
        *pruned = true;
      }
    }
  }
  if (options.inline_absorption) {
    out = MinimizeRiskGroups(std::move(out));
  }
  return out;
}

}  // namespace

Result<MinimalRgResult> ComputeMinimalRiskGroups(const FaultGraph& graph,
                                                 const MinimalRgOptions& options) {
  if (!graph.validated()) {
    return FailedPreconditionError("ComputeMinimalRiskGroups: graph not validated");
  }
  MinimalRgResult result;
  // Per-node cut set lists, built in topological (children-first) order.
  std::vector<std::vector<RiskGroup>> cut_sets(graph.NodeCount());
  for (NodeId id : graph.TopologicalOrder()) {
    const FaultNode& node = graph.node(id);
    std::vector<RiskGroup>& mine = cut_sets[id];
    switch (node.gate) {
      case GateType::kBasic:
        mine.push_back(RiskGroup{id});
        break;
      case GateType::kOr: {
        for (NodeId child : node.children) {
          mine.insert(mine.end(), cut_sets[child].begin(), cut_sets[child].end());
        }
        if (options.inline_absorption) {
          mine = MinimizeRiskGroups(std::move(mine));
        }
        break;
      }
      case GateType::kAnd: {
        bool first = true;
        for (NodeId child : node.children) {
          if (first) {
            mine = cut_sets[child];
            first = false;
          } else {
            INDAAS_ASSIGN_OR_RETURN(
                mine, CombineAnd(mine, cut_sets[child], options, &result.size_bounded));
          }
          if (mine.empty()) {
            // All products exceeded the size bound: no cut sets within bound.
            result.size_bounded = true;
            break;
          }
        }
        break;
      }
      case GateType::kKofN: {
        // Cut sets of a k-of-n gate: for every k-subset of children, the AND
        // combination of their cut sets; union over subsets.
        std::vector<RiskGroup> acc;
        const size_t n = node.children.size();
        const uint32_t k = node.k;
        std::vector<size_t> pick(k);
        for (uint32_t i = 0; i < k; ++i) {
          pick[i] = i;
        }
        for (;;) {
          std::vector<RiskGroup> product = cut_sets[node.children[pick[0]]];
          for (uint32_t i = 1; i < k && !product.empty(); ++i) {
            INDAAS_ASSIGN_OR_RETURN(product,
                                    CombineAnd(product, cut_sets[node.children[pick[i]]], options,
                                               &result.size_bounded));
          }
          acc.insert(acc.end(), product.begin(), product.end());
          // Next k-combination.
          int pos = static_cast<int>(k) - 1;
          while (pos >= 0 && pick[pos] == n - k + static_cast<size_t>(pos)) {
            --pos;
          }
          if (pos < 0) {
            break;
          }
          ++pick[pos];
          for (size_t i = static_cast<size_t>(pos) + 1; i < k; ++i) {
            pick[i] = pick[i - 1] + 1;
          }
        }
        mine = options.inline_absorption ? MinimizeRiskGroups(std::move(acc)) : std::move(acc);
        break;
      }
    }
    if (mine.size() > options.max_cut_sets_per_node) {
      return ResourceExhaustedError(
          StrFormat("node '%s' accumulated %zu cut sets (budget %zu)", node.name.c_str(),
                    mine.size(), options.max_cut_sets_per_node));
    }
    if (options.max_rg_size != SIZE_MAX) {
      size_t before = mine.size();
      mine.erase(std::remove_if(mine.begin(), mine.end(),
                                [&](const RiskGroup& rg) {
                                  return rg.size() > options.max_rg_size;
                                }),
                 mine.end());
      if (mine.size() != before) {
        result.size_bounded = true;
      }
    }
  }
  result.groups = MinimizeRiskGroups(std::move(cut_sets[graph.top_event()]));
  return result;
}

bool FailsTopEvent(const FaultGraph& graph, const RiskGroup& group) {
  std::vector<uint8_t> state(graph.NodeCount(), 0);
  for (NodeId id : group) {
    state[id] = 1;
  }
  return graph.Evaluate(state);
}

bool IsMinimalRiskGroup(const FaultGraph& graph, const RiskGroup& group) {
  if (group.empty() || !FailsTopEvent(graph, group)) {
    return false;
  }
  for (size_t drop = 0; drop < group.size(); ++drop) {
    RiskGroup reduced;
    reduced.reserve(group.size() - 1);
    for (size_t i = 0; i < group.size(); ++i) {
      if (i != drop) {
        reduced.push_back(group[i]);
      }
    }
    if (FailsTopEvent(graph, reduced)) {
      return false;
    }
  }
  return true;
}

}  // namespace indaas
