// Bitset-backed cut-set engine substrate (perf backbone of the minimal-RG
// algorithm, paper §4.1.2).
//
// A cut set over a fault graph's basic events is represented as a
// fixed-stride dynamic bitset: `stride` dense uint64_t words, one bit per
// basic event. All rows produced during one enumeration live in append-only
// CutSetArena word pools, so AND-gate Cartesian products allocate by bumping
// a vector instead of churning the heap with one std::vector per set.
// Primitive costs (vs the legacy sorted-vector representation):
//   union        O(stride) word ORs            (vs std::set_union + alloc)
//   subset test  O(stride) `a & ~b` words      (vs std::includes)
//   size         O(stride) popcounts
//   fingerprint  O(stride) multiply-xor mix, for hash-based exact dedup
// AbsorbMinimal implements bucket-by-popcount absorption: after exact
// duplicates are hashed out, a row can only be absorbed by a *strictly
// smaller* row, so rows are processed level by level (popcount ascending)
// and each level is tested — optionally in parallel shards — against the
// frozen set of smaller survivors. The surviving set is unique, and rows are
// emitted in (popcount, first-appearance) order, so results are
// byte-identical no matter how many threads participate.

#ifndef SRC_SIA_CUTSET_H_
#define SRC_SIA_CUTSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/graph/fault_graph.h"
#include "src/util/thread_pool.h"

namespace indaas {

// --- Word-wise row primitives (rows are uint64_t[stride]) ---

inline void RowClear(uint64_t* row, size_t stride) {
  for (size_t w = 0; w < stride; ++w) {
    row[w] = 0;
  }
}

inline void RowUnion(uint64_t* dst, const uint64_t* a, const uint64_t* b, size_t stride) {
  for (size_t w = 0; w < stride; ++w) {
    dst[w] = a[w] | b[w];
  }
}

// True if every bit of `a` is set in `b` (a subset-of b): a & ~b == 0.
inline bool RowSubsetOf(const uint64_t* a, const uint64_t* b, size_t stride) {
  for (size_t w = 0; w < stride; ++w) {
    if ((a[w] & ~b[w]) != 0) {
      return false;
    }
  }
  return true;
}

inline bool RowEquals(const uint64_t* a, const uint64_t* b, size_t stride) {
  for (size_t w = 0; w < stride; ++w) {
    if (a[w] != b[w]) {
      return false;
    }
  }
  return true;
}

inline size_t RowPopcount(const uint64_t* row, size_t stride) {
  size_t bits = 0;
  for (size_t w = 0; w < stride; ++w) {
    bits += static_cast<size_t>(__builtin_popcountll(row[w]));
  }
  return bits;
}

// 64-bit content fingerprint for hash-based duplicate elimination. Equal rows
// always collide; unequal rows almost never do (full compare disambiguates).
inline uint64_t RowFingerprint(const uint64_t* row, size_t stride) {
  uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (size_t w = 0; w < stride; ++w) {
    h ^= row[w] + 0xBF58476D1CE4E5B9ULL + (h << 6) + (h >> 2);
    h *= 0x94D049BB133111EBULL;
  }
  return h;
}

// --- Basic-event <-> bit index mapping ---

// Dense bit indices for a validated graph's basic events. Bit order follows
// BasicEvents() insertion order, which is ascending NodeId — so scanning a
// row's set bits low-to-high yields an already-sorted RiskGroup.
class EventIndex {
 public:
  explicit EventIndex(const FaultGraph& graph);

  size_t num_events() const { return id_of_.size(); }
  // Words per cut-set row.
  size_t stride() const { return stride_; }
  // Dense bit index of basic event `id` (must be a basic event).
  size_t BitFor(NodeId id) const { return bit_of_[id]; }
  NodeId IdFor(size_t bit) const { return id_of_[bit]; }

 private:
  std::vector<size_t> bit_of_;
  std::vector<NodeId> id_of_;
  size_t stride_ = 0;
};

// --- Arena of fixed-stride rows ---

// Append-only list of cut-set rows backed by one contiguous word vector.
class CutSetArena {
 public:
  explicit CutSetArena(size_t stride = 1) : stride_(stride) {}

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  size_t stride() const { return stride_; }

  void Reserve(size_t rows) { words_.reserve(rows * stride_); }

  // Appends a zeroed row and returns its (arena-owned) word pointer. The
  // pointer is invalidated by subsequent appends.
  uint64_t* AppendZero() {
    words_.resize(words_.size() + stride_, 0);
    ++count_;
    return words_.data() + (count_ - 1) * stride_;
  }

  void AppendCopy(const uint64_t* row) {
    words_.insert(words_.end(), row, row + stride_);
    ++count_;
  }

  // Appends all rows of `other` (same stride) in order.
  void AppendAll(const CutSetArena& other) {
    words_.insert(words_.end(), other.words_.begin(), other.words_.end());
    count_ += other.count_;
  }

  uint64_t* row(size_t i) { return words_.data() + i * stride_; }
  const uint64_t* row(size_t i) const { return words_.data() + i * stride_; }

  void Clear() {
    words_.clear();
    count_ = 0;
  }

 private:
  size_t stride_;
  size_t count_ = 0;
  std::vector<uint64_t> words_;
};

// --- Absorption ---

// Returns `sets` reduced to its unique minimal rows: exact duplicates are
// hash-eliminated, then any row that is a proper superset of another row is
// dropped (bucket-by-popcount, smaller buckets absorb larger ones). Rows are
// emitted in (popcount ascending, first-appearance) order. When `pool` is
// non-null and a popcount level has enough candidate×survivor work, the
// subset tests for that level run as parallel shards; the output is
// byte-identical to the sequential path for any thread count.
CutSetArena AbsorbMinimal(const CutSetArena& sets, ThreadPool* pool);

}  // namespace indaas

#endif  // SRC_SIA_CUTSET_H_
