// Failure sampling algorithm (paper §4.1.2).
//
// Each round flips a failure coin for every basic event, evaluates the fault
// graph bottom-up, and — when the top event fails — records the set of failed
// basic events as a risk group. Linear per round, non-deterministic, and not
// guaranteed to produce minimal RGs. Extensions beyond the paper (ablated in
// bench_fig7): greedy shrinking of each detected RG toward a minimal one, and
// probability-weighted coin flips.

#ifndef SRC_SIA_SAMPLING_H_
#define SRC_SIA_SAMPLING_H_

#include <cstdint>

#include "src/graph/fault_graph.h"
#include "src/sia/risk_groups.h"
#include "src/util/status.h"

namespace indaas {

enum class ShrinkMode {
  kNone,    // record the raw failed set (the paper's algorithm)
  kGreedy,  // drop members one by one while the top event still fails
};

struct SamplingOptions {
  size_t rounds = 100000;
  // Per-basic-event failure probability for the coin flips. Low biases make
  // failing rounds rare but small (and thus close to minimal).
  double failure_bias = 0.05;
  // Use each basic event's own failure_prob as its coin bias, scaled by
  // `bias_scale`; events without a probability fall back to failure_bias.
  bool use_event_probs = false;
  double bias_scale = 1.0;
  ShrinkMode shrink = ShrinkMode::kNone;
  uint64_t seed = 1;
  // Worker threads (rounds are split across threads; results merged).
  size_t threads = 1;
  // Stop early after this many *distinct* RGs (SIZE_MAX = never).
  size_t max_distinct_groups = SIZE_MAX;
};

struct SamplingResult {
  // Distinct detected risk groups, minimized (absorption applied across the
  // collected set) and sorted by size.
  std::vector<RiskGroup> groups;
  size_t rounds_executed = 0;
  size_t failing_rounds = 0;  // rounds whose assignment failed the top event
};

// Runs the sampler on a validated graph.
Result<SamplingResult> SampleRiskGroups(const FaultGraph& graph, const SamplingOptions& options);

}  // namespace indaas

#endif  // SRC_SIA_SAMPLING_H_
