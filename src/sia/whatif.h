// What-if failure simulation over a fault graph.
//
// The auditing report "can also help an auditing client understand unexpected
// common dependencies to focus further analysis" (§4.1.4). What-if queries
// make that concrete: inject a hypothetical set of component failures and
// observe exactly which intermediate services and which deployments go down.

#ifndef SRC_SIA_WHATIF_H_
#define SRC_SIA_WHATIF_H_

#include <string>
#include <vector>

#include "src/graph/fault_graph.h"
#include "src/util/status.h"

namespace indaas {

struct WhatIfResult {
  bool top_event_failed = false;
  // Names of all failed events (basic and intermediate), in topological
  // order — the failure propagation trace.
  std::vector<std::string> failed_events;
};

// Fails exactly the named basic events and propagates. Unknown component
// names are an error (a typo must not silently pass as "everything fine").
Result<WhatIfResult> SimulateFailures(const FaultGraph& graph,
                                      const std::vector<std::string>& failed_components);

}  // namespace indaas

#endif  // SRC_SIA_WHATIF_H_
