#include "src/sia/builder.h"

#include <algorithm>
#include <map>

#include "src/deps/normalize.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/strings.h"

namespace indaas {
namespace {

// Interns a basic event for a normalized component id, reusing the node when
// the component was already seen (possibly via another server).
class ComponentInterner {
 public:
  ComponentInterner(FaultGraph& graph, const FailureProbabilityModel* prob_model)
      : graph_(graph), prob_model_(prob_model) {}

  NodeId Intern(const std::string& component_id) {
    auto it = nodes_.find(component_id);
    if (it != nodes_.end()) {
      return it->second;
    }
    double prob = prob_model_ != nullptr ? prob_model_->Lookup(component_id) : kUnknownProb;
    NodeId id = graph_.AddBasicEvent(component_id, prob);
    nodes_.emplace(component_id, id);
    return id;
  }

 private:
  FaultGraph& graph_;
  const FailureProbabilityModel* prob_model_;
  std::map<std::string, NodeId> nodes_;
};

}  // namespace

Result<FaultGraph> BuildDeploymentFaultGraph(const DepDb& db,
                                             const std::vector<std::string>& servers,
                                             const BuildOptions& options) {
  if (servers.empty()) {
    return InvalidArgumentError("BuildDeploymentFaultGraph: no servers given");
  }
  INDAAS_TRACE_SPAN_NAMED(span, "sia.build_graph");
  span.Annotate("servers", std::to_string(servers.size()));
  for (size_t i = 0; i < servers.size(); ++i) {
    for (size_t j = i + 1; j < servers.size(); ++j) {
      if (servers[i] == servers[j]) {
        return InvalidArgumentError("BuildDeploymentFaultGraph: duplicate server '" + servers[i] +
                                    "'");
      }
    }
  }
  if (options.required_servers > servers.size()) {
    return InvalidArgumentError("BuildDeploymentFaultGraph: required_servers > server count");
  }

  FaultGraph graph;
  ComponentInterner intern(graph, options.prob_model);
  std::vector<NodeId> server_gates;
  server_gates.reserve(servers.size());

  for (const std::string& server : servers) {
    std::vector<NodeId> server_children;

    // The machine itself as a shared basic event: two VMs on one host both
    // reference the host's id, creating the co-location RG of §6.2.2.
    if (options.include_server_event) {
      server_children.push_back(intern.Intern(server));
    }

    // Step 4: hardware dependencies.
    std::vector<NodeId> hw_children;
    if (options.include_hardware) {
      for (const HardwareDependency& hw : db.HardwareOf(server)) {
        hw_children.push_back(intern.Intern(NormalizeHardwareComponent(hw.dep)));
      }
    }
    if (!hw_children.empty()) {
      server_children.push_back(
          graph.AddGate(server + "/hardware fails", GateType::kOr, std::move(hw_children)));
    }

    // Step 5: network dependencies — AND over redundant paths, each path an
    // OR over its devices.
    std::vector<NetworkDependency> routes =
        options.include_network ? db.RoutesBetween(server, options.network_destination)
                                : std::vector<NetworkDependency>{};
    if (!routes.empty()) {
      std::vector<NodeId> path_gates;
      path_gates.reserve(routes.size());
      for (size_t r = 0; r < routes.size(); ++r) {
        std::vector<NodeId> devices;
        devices.reserve(routes[r].route.size());
        for (const std::string& device : routes[r].route) {
          devices.push_back(intern.Intern(NormalizeNetworkComponent(device)));
        }
        if (devices.empty()) {
          continue;  // Directly attached; the path cannot fail.
        }
        path_gates.push_back(graph.AddGate(StrFormat("%s/path%zu fails", server.c_str(), r),
                                           GateType::kOr, std::move(devices)));
      }
      if (!path_gates.empty()) {
        server_children.push_back(
            graph.AddGate(server + "/network fails", GateType::kAnd, std::move(path_gates)));
      }
    }

    // Step 6: software dependencies — OR over components, each an OR over
    // its packages.
    std::vector<NodeId> sw_gates;
    std::vector<SoftwareDependency> software =
        options.include_software ? db.SoftwareOn(server) : std::vector<SoftwareDependency>{};
    for (const SoftwareDependency& sw : software) {
      if (!options.software_of_interest.empty() &&
          std::find(options.software_of_interest.begin(), options.software_of_interest.end(),
                    sw.pgm) == options.software_of_interest.end()) {
        continue;
      }
      std::vector<NodeId> packages;
      packages.reserve(sw.deps.size());
      for (const std::string& pkg : sw.deps) {
        size_t eq = pkg.find('=');
        std::string normalized = eq == std::string::npos
                                     ? NormalizePackage(pkg)
                                     : NormalizePackage(pkg.substr(0, eq), pkg.substr(eq + 1));
        packages.push_back(intern.Intern(normalized));
      }
      if (packages.empty()) {
        continue;
      }
      sw_gates.push_back(graph.AddGate(StrFormat("%s/%s fails", server.c_str(), sw.pgm.c_str()),
                                       GateType::kOr, std::move(packages)));
    }
    if (!sw_gates.empty()) {
      server_children.push_back(
          graph.AddGate(server + "/software fails", GateType::kOr, std::move(sw_gates)));
    }

    if (server_children.empty()) {
      return NotFoundError("BuildDeploymentFaultGraph: no dependency data for server '" + server +
                           "' (and include_server_event is off)");
    }
    // Step 3: the server fails if any dependency category fails.
    server_gates.push_back(
        graph.AddGate(server + " fails", GateType::kOr, std::move(server_children)));
  }

  // Steps 1-2: top event over the redundant servers.
  NodeId top;
  if (servers.size() == 1) {
    top = server_gates.front();
  } else if (options.required_servers == 0) {
    top = graph.AddGate("deployment fails", GateType::kAnd, std::move(server_gates));
  } else {
    uint32_t fail_threshold =
        static_cast<uint32_t>(servers.size()) - options.required_servers + 1;
    top = graph.AddKofNGate("deployment fails", fail_threshold, std::move(server_gates));
  }
  graph.SetTopEvent(top);
  INDAAS_RETURN_IF_ERROR(graph.Validate());
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter* nodes = registry.GetCounter("sia.graph.nodes");
  static obs::Counter* basic_events = registry.GetCounter("sia.graph.basic_events");
  nodes->Add(graph.NodeCount());
  basic_events->Add(graph.BasicEvents().size());
  span.Annotate("nodes", std::to_string(graph.NodeCount()));
  return graph;
}

}  // namespace indaas
