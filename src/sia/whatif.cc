#include "src/sia/whatif.h"

namespace indaas {

Result<WhatIfResult> SimulateFailures(const FaultGraph& graph,
                                      const std::vector<std::string>& failed_components) {
  if (!graph.validated()) {
    return FailedPreconditionError("SimulateFailures: graph not validated");
  }
  std::vector<uint8_t> state(graph.NodeCount(), 0);
  for (const std::string& name : failed_components) {
    INDAAS_ASSIGN_OR_RETURN(NodeId id, graph.FindNode(name));
    if (graph.node(id).gate != GateType::kBasic) {
      return InvalidArgumentError("SimulateFailures: '" + name + "' is not a basic event");
    }
    state[id] = 1;
  }
  WhatIfResult result;
  result.top_event_failed = graph.Evaluate(state);
  for (NodeId id : graph.TopologicalOrder()) {
    if (state[id] != 0) {
      result.failed_events.push_back(graph.node(id).name);
    }
  }
  return result;
}

}  // namespace indaas
