#include "src/sia/importance.h"

#include <algorithm>
#include <functional>
#include <map>

#include "src/graph/bdd.h"
#include "src/util/rng.h"

namespace indaas {
namespace {

// Pr(top) over minimal RGs by inclusion-exclusion, with probabilities
// supplied by `prob_of` (allows per-component conditioning).
double ExactTopProb(const std::vector<RiskGroup>& groups,
                    const std::function<double(NodeId)>& prob_of) {
  const size_t n = groups.size();
  double total = 0.0;
  for (uint64_t mask = 1; mask < (1ULL << n); ++mask) {
    RiskGroup merged;
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) {
        RiskGroup next;
        std::set_union(merged.begin(), merged.end(), groups[i].begin(), groups[i].end(),
                       std::back_inserter(next));
        merged = std::move(next);
      }
    }
    double term = 1.0;
    for (NodeId id : merged) {
      term *= prob_of(id);
    }
    total += (__builtin_popcountll(mask) % 2 == 1) ? term : -term;
  }
  return total;
}

// Monte-Carlo Pr(top) with per-component conditioning.
double MonteCarloTopProb(const FaultGraph& graph, const std::function<double(NodeId)>& prob_of,
                         size_t rounds, Rng& rng) {
  std::vector<uint8_t> state(graph.NodeCount(), 0);
  const auto& basics = graph.BasicEvents();
  size_t failures = 0;
  for (size_t round = 0; round < rounds; ++round) {
    for (NodeId id : basics) {
      state[id] = rng.NextBool(prob_of(id)) ? 1 : 0;
    }
    if (graph.Evaluate(state)) {
      ++failures;
    }
  }
  return rounds == 0 ? 0.0 : static_cast<double>(failures) / static_cast<double>(rounds);
}

}  // namespace

Result<std::vector<ComponentImportance>> RankComponentImportance(
    const FaultGraph& graph, const std::vector<RiskGroup>& minimal_groups,
    const ImportanceOptions& options) {
  if (!graph.validated()) {
    return FailedPreconditionError("RankComponentImportance: graph not validated");
  }
  if (minimal_groups.empty()) {
    return std::vector<ComponentImportance>{};
  }
  std::map<NodeId, size_t> memberships;
  for (const RiskGroup& group : minimal_groups) {
    for (NodeId id : group) {
      ++memberships[id];
    }
  }
  auto base_prob = [&](NodeId id) {
    double p = graph.node(id).failure_prob;
    return p == kUnknownProb ? options.default_prob : p;
  };
  const bool exact = minimal_groups.size() <= options.max_exact_terms;
  // For large group counts, prefer exact BDD conditioning over Monte Carlo:
  // compile the structure function once, then sweep per-variable overrides.
  CompiledFaultGraph compiled;
  bool have_bdd = false;
  std::map<NodeId, size_t> var_of;
  if (!exact) {
    auto attempt = CompileFaultGraph(graph, options.default_prob);
    if (attempt.ok()) {
      compiled = std::move(attempt).value();
      have_bdd = true;
      for (size_t v = 0; v < compiled.variable_order.size(); ++v) {
        var_of.emplace(compiled.variable_order[v], v);
      }
    }
  }
  auto top_prob = [&](NodeId conditioned, double value) {
    auto prob_of = [&](NodeId id) { return id == conditioned ? value : base_prob(id); };
    if (exact) {
      return ExactTopProb(minimal_groups, prob_of);
    }
    if (have_bdd) {
      std::vector<double> probs = compiled.probs;
      auto it = var_of.find(conditioned);
      if (it != var_of.end()) {
        probs[it->second] = value;
      }
      return compiled.manager->Probability(compiled.root, probs);
    }
    Rng local(options.seed ^ (static_cast<uint64_t>(conditioned) * 0x9E3779B97F4A7C15ULL + 1));
    return MonteCarloTopProb(graph, prob_of, options.monte_carlo_rounds, local);
  };
  double pr_top = top_prob(kInvalidNode, 0.0);  // unconditioned (id never matches)
  if (pr_top <= 0.0) {
    return InternalError("RankComponentImportance: top event probability is zero");
  }

  std::vector<ComponentImportance> out;
  out.reserve(memberships.size());
  for (const auto& [id, count] : memberships) {
    ComponentImportance entry;
    entry.id = id;
    entry.name = graph.node(id).name;
    entry.rg_memberships = count;
    double up = top_prob(id, 1.0);   // Pr(T | i failed)
    double down = top_prob(id, 0.0); // Pr(T | i working)
    entry.birnbaum = up - down;
    entry.criticality = entry.birnbaum * base_prob(id) / pr_top;
    out.push_back(std::move(entry));
  }
  std::sort(out.begin(), out.end(), [](const ComponentImportance& a,
                                       const ComponentImportance& b) {
    if (a.criticality != b.criticality) {
      return a.criticality > b.criticality;
    }
    if (a.birnbaum != b.birnbaum) {
      return a.birnbaum > b.birnbaum;
    }
    return a.name < b.name;
  });
  return out;
}

}  // namespace indaas
