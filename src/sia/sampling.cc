#include "src/sia/sampling.h"

#include <algorithm>
#include <set>
#include <thread>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/rng.h"

namespace indaas {
namespace {

// Per-thread sampler state and logic.
class Sampler {
 public:
  Sampler(const FaultGraph& graph, const SamplingOptions& options, uint64_t seed)
      : graph_(graph), options_(options), rng_(seed), state_(graph.NodeCount(), 0) {
    // Resolve the coin bias per basic event once.
    const auto& basics = graph.BasicEvents();
    biases_.reserve(basics.size());
    for (NodeId id : basics) {
      double bias = options.failure_bias;
      if (options.use_event_probs && graph.node(id).failure_prob != kUnknownProb) {
        bias = std::clamp(graph.node(id).failure_prob * options.bias_scale, 0.0, 1.0);
      }
      biases_.push_back(bias);
    }
  }

  // Runs `rounds` rounds, collecting distinct RGs locally.
  void Run(size_t rounds) {
    const auto& basics = graph_.BasicEvents();
    for (size_t round = 0; round < rounds; ++round) {
      ++executed_;
      failed_.clear();
      for (size_t i = 0; i < basics.size(); ++i) {
        uint8_t value = rng_.NextBool(biases_[i]) ? 1 : 0;
        state_[basics[i]] = value;
        if (value != 0) {
          failed_.push_back(basics[i]);
        }
      }
      if (failed_.empty() || !graph_.Evaluate(state_)) {
        continue;
      }
      ++failing_;
      if (options_.shrink == ShrinkMode::kGreedy) {
        Shrink();
      }
      groups_.insert(failed_);
      if (groups_.size() >= options_.max_distinct_groups) {
        return;
      }
    }
  }

  // Greedily removes members while the top event still fails. The survivor
  // is a genuinely minimal RG (dropping any single member un-fails the top).
  // The elimination order is randomized per round: a fixed order would make
  // the shrink a deterministic function with a small image, systematically
  // missing many minimal RGs.
  void Shrink() {
    rng_.Shuffle(failed_);
    for (size_t i = failed_.size(); i-- > 0;) {
      NodeId candidate = failed_[i];
      state_[candidate] = 0;
      // Re-evaluate with the candidate healthy.
      if (graph_.Evaluate(state_)) {
        failed_.erase(failed_.begin() + static_cast<ptrdiff_t>(i));
      } else {
        state_[candidate] = 1;
      }
    }
    std::sort(failed_.begin(), failed_.end());
  }

  std::set<RiskGroup>& groups() { return groups_; }
  size_t executed() const { return executed_; }
  size_t failing() const { return failing_; }

 private:
  const FaultGraph& graph_;
  const SamplingOptions& options_;
  Rng rng_;
  std::vector<uint8_t> state_;
  std::vector<double> biases_;
  RiskGroup failed_;
  std::set<RiskGroup> groups_;
  size_t executed_ = 0;
  size_t failing_ = 0;
};

}  // namespace

Result<SamplingResult> SampleRiskGroups(const FaultGraph& graph, const SamplingOptions& options) {
  if (!graph.validated()) {
    return FailedPreconditionError("SampleRiskGroups: graph not validated");
  }
  if (options.rounds == 0) {
    return InvalidArgumentError("SampleRiskGroups: rounds must be > 0");
  }
  if (options.failure_bias < 0.0 || options.failure_bias > 1.0) {
    return InvalidArgumentError("SampleRiskGroups: failure_bias must be in [0,1]");
  }
  size_t threads = std::max<size_t>(1, options.threads);
  threads = std::min(threads, options.rounds);
  INDAAS_TRACE_SPAN_NAMED(span, "sia.sample");
  span.Annotate("rounds", std::to_string(options.rounds));
  span.Annotate("threads", std::to_string(threads));

  std::vector<Sampler> samplers;
  samplers.reserve(threads);
  Rng seeder(options.seed);
  for (size_t t = 0; t < threads; ++t) {
    samplers.emplace_back(graph, options, seeder.Next() | 1);
  }
  if (threads == 1) {
    samplers[0].Run(options.rounds);
  } else {
    std::vector<std::thread> workers;
    size_t per_thread = options.rounds / threads;
    size_t remainder = options.rounds % threads;
    for (size_t t = 0; t < threads; ++t) {
      size_t rounds = per_thread + (t < remainder ? 1 : 0);
      workers.emplace_back([&samplers, t, rounds] { samplers[t].Run(rounds); });
    }
    for (auto& worker : workers) {
      worker.join();
    }
  }
  SamplingResult result;
  std::vector<RiskGroup> all;
  for (Sampler& sampler : samplers) {
    result.rounds_executed += sampler.executed();
    result.failing_rounds += sampler.failing();
    all.insert(all.end(), sampler.groups().begin(), sampler.groups().end());
  }
  result.groups = MinimizeRiskGroups(std::move(all));
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter* rounds = registry.GetCounter("sia.sampling.rounds");
  static obs::Counter* failing = registry.GetCounter("sia.sampling.failing_rounds");
  static obs::Counter* groups = registry.GetCounter("sia.sampling.groups");
  rounds->Add(result.rounds_executed);
  failing->Add(result.failing_rounds);
  groups->Add(result.groups.size());
  span.Annotate("groups", std::to_string(result.groups.size()));
  return result;
}

}  // namespace indaas
