// Boolean circuits for secure two-party computation.
//
// The paper's first PIA candidate (§4.2, following Xiao et al.) is generic
// secure multi-party computation; it is rejected because "current
// circuit-based SMPC protocols are too expensive and scale poorly". This
// module provides the circuit substrate to reproduce that finding: XOR/AND/
// NOT gates over single-bit wires, builder helpers for comparators and
// counters, plaintext evaluation for testing, and the cost metrics that
// govern SMPC performance (AND-gate count and multiplicative depth — XOR is
// "free" in GMW).

#ifndef SRC_SMPC_CIRCUIT_H_
#define SRC_SMPC_CIRCUIT_H_

#include <cstdint>
#include <vector>

#include "src/util/status.h"

namespace indaas {

using WireId = uint32_t;

enum class GateKind : uint8_t { kXor, kAnd, kNot };

struct CircuitGate {
  GateKind kind;
  WireId a = 0;
  WireId b = 0;  // unused for kNot
  WireId out = 0;
};

// A straight-line boolean circuit with two input parties.
class Circuit {
 public:
  // Declares an input wire owned by `party` (0 or 1). Input order per party
  // is the order of declaration.
  WireId AddInput(int party);

  // A constant-valued wire.
  WireId AddConstant(bool value);

  WireId Xor(WireId a, WireId b);
  WireId And(WireId a, WireId b);
  WireId Not(WireId a);
  // x OR y = x ^ y ^ (x & y)  — costs one AND.
  WireId Or(WireId a, WireId b);
  // x == y over single bits: NOT(x ^ y).
  WireId Xnor(WireId a, WireId b);

  // Equality of two equal-length bit vectors: AND-tree over per-bit XNORs.
  Result<WireId> EqualsVec(const std::vector<WireId>& a, const std::vector<WireId>& b);

  // OR over a vector (tree).
  Result<WireId> OrVec(const std::vector<WireId>& bits);

  // Binary adder: a + b over little-endian bit vectors of equal width;
  // result has width+1 bits (ripple-carry; 1 AND per full adder... 2 with
  // the carry majority decomposed).
  Result<std::vector<WireId>> AddVec(const std::vector<WireId>& a,
                                     const std::vector<WireId>& b);

  // Population count of `bits`: little-endian sum, ceil(log2(n+1)) wide,
  // built as a balanced adder tree.
  Result<std::vector<WireId>> PopCount(const std::vector<WireId>& bits);

  // Marks a wire as a circuit output.
  void AddOutput(WireId wire);

  // --- Introspection ---

  size_t WireCount() const { return next_wire_; }
  size_t GateCount() const { return gates_.size(); }
  size_t AndGateCount() const { return and_gates_; }
  // Multiplicative depth: longest chain of AND gates (GMW round count).
  size_t AndDepth() const;
  size_t InputCount(int party) const;
  const std::vector<WireId>& outputs() const { return outputs_; }
  const std::vector<CircuitGate>& gates() const { return gates_; }

  // Input wire ids of a party, in declaration order.
  const std::vector<WireId>& InputsOf(int party) const { return inputs_[party]; }
  // Constant wires and their values.
  const std::vector<std::pair<WireId, bool>>& constants() const { return constants_; }

  // --- Plaintext evaluation (testing / verification) ---

  // Evaluates with the given per-party input bit strings; returns output
  // bits in AddOutput order.
  Result<std::vector<bool>> Evaluate(const std::vector<bool>& party0_inputs,
                                     const std::vector<bool>& party1_inputs) const;

 private:
  WireId NewWire() { return next_wire_++; }

  WireId next_wire_ = 0;
  std::vector<CircuitGate> gates_;
  std::vector<WireId> inputs_[2];
  std::vector<std::pair<WireId, bool>> constants_;
  std::vector<WireId> outputs_;
  size_t and_gates_ = 0;
};

// Converts an unsigned value to `width` little-endian constant bits... of a
// *plaintext input* encoding (helper for tests and input packing).
std::vector<bool> ToBits(uint64_t value, size_t width);
uint64_t FromBits(const std::vector<bool>& bits);

}  // namespace indaas

#endif  // SRC_SMPC_CIRCUIT_H_
