#include "src/smpc/circuit.h"

#include <algorithm>

namespace indaas {

WireId Circuit::AddInput(int party) {
  WireId wire = NewWire();
  inputs_[party == 0 ? 0 : 1].push_back(wire);
  return wire;
}

WireId Circuit::AddConstant(bool value) {
  WireId wire = NewWire();
  constants_.emplace_back(wire, value);
  return wire;
}

WireId Circuit::Xor(WireId a, WireId b) {
  WireId out = NewWire();
  gates_.push_back(CircuitGate{GateKind::kXor, a, b, out});
  return out;
}

WireId Circuit::And(WireId a, WireId b) {
  WireId out = NewWire();
  gates_.push_back(CircuitGate{GateKind::kAnd, a, b, out});
  ++and_gates_;
  return out;
}

WireId Circuit::Not(WireId a) {
  WireId out = NewWire();
  gates_.push_back(CircuitGate{GateKind::kNot, a, 0, out});
  return out;
}

WireId Circuit::Or(WireId a, WireId b) { return Xor(Xor(a, b), And(a, b)); }

WireId Circuit::Xnor(WireId a, WireId b) { return Not(Xor(a, b)); }

Result<WireId> Circuit::EqualsVec(const std::vector<WireId>& a, const std::vector<WireId>& b) {
  if (a.size() != b.size() || a.empty()) {
    return InvalidArgumentError("EqualsVec: need equal nonzero widths");
  }
  std::vector<WireId> level;
  level.reserve(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    level.push_back(Xnor(a[i], b[i]));
  }
  // Balanced AND tree keeps multiplicative depth logarithmic.
  while (level.size() > 1) {
    std::vector<WireId> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(And(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) {
      next.push_back(level.back());
    }
    level = std::move(next);
  }
  return level.front();
}

Result<WireId> Circuit::OrVec(const std::vector<WireId>& bits) {
  if (bits.empty()) {
    return InvalidArgumentError("OrVec: empty input");
  }
  std::vector<WireId> level = bits;
  while (level.size() > 1) {
    std::vector<WireId> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(Or(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) {
      next.push_back(level.back());
    }
    level = std::move(next);
  }
  return level.front();
}

Result<std::vector<WireId>> Circuit::AddVec(const std::vector<WireId>& a,
                                            const std::vector<WireId>& b) {
  if (a.size() != b.size() || a.empty()) {
    return InvalidArgumentError("AddVec: need equal nonzero widths");
  }
  std::vector<WireId> sum;
  sum.reserve(a.size() + 1);
  WireId carry = AddConstant(false);
  for (size_t i = 0; i < a.size(); ++i) {
    // Full adder: s = a ^ b ^ c; c' = (a^c)(b^c) ^ c  (one AND per bit).
    WireId axc = Xor(a[i], carry);
    WireId bxc = Xor(b[i], carry);
    sum.push_back(Xor(axc, b[i]));
    carry = Xor(And(axc, bxc), carry);
  }
  sum.push_back(carry);
  return sum;
}

Result<std::vector<WireId>> Circuit::PopCount(const std::vector<WireId>& bits) {
  if (bits.empty()) {
    return InvalidArgumentError("PopCount: empty input");
  }
  // Balanced tree of widening adders over single-bit counters.
  std::vector<std::vector<WireId>> level;
  level.reserve(bits.size());
  for (WireId bit : bits) {
    level.push_back({bit});
  }
  while (level.size() > 1) {
    std::vector<std::vector<WireId>> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      std::vector<WireId> lhs = level[i];
      std::vector<WireId> rhs = level[i + 1];
      // Pad to common width.
      while (lhs.size() < rhs.size()) {
        lhs.push_back(AddConstant(false));
      }
      while (rhs.size() < lhs.size()) {
        rhs.push_back(AddConstant(false));
      }
      INDAAS_ASSIGN_OR_RETURN(std::vector<WireId> sum, AddVec(lhs, rhs));
      next.push_back(std::move(sum));
    }
    if (level.size() % 2 == 1) {
      next.push_back(level.back());
    }
    level = std::move(next);
  }
  return level.front();
}

void Circuit::AddOutput(WireId wire) { outputs_.push_back(wire); }

size_t Circuit::AndDepth() const {
  std::vector<uint32_t> depth(next_wire_, 0);
  uint32_t max_depth = 0;
  for (const CircuitGate& gate : gates_) {
    uint32_t in = depth[gate.a];
    if (gate.kind != GateKind::kNot) {
      in = std::max(in, depth[gate.b]);
    }
    depth[gate.out] = in + (gate.kind == GateKind::kAnd ? 1 : 0);
    max_depth = std::max(max_depth, depth[gate.out]);
  }
  return max_depth;
}

size_t Circuit::InputCount(int party) const { return inputs_[party == 0 ? 0 : 1].size(); }

Result<std::vector<bool>> Circuit::Evaluate(const std::vector<bool>& party0_inputs,
                                            const std::vector<bool>& party1_inputs) const {
  if (party0_inputs.size() != inputs_[0].size() || party1_inputs.size() != inputs_[1].size()) {
    return InvalidArgumentError("Evaluate: input sizes do not match declarations");
  }
  std::vector<uint8_t> values(next_wire_, 0);
  for (size_t i = 0; i < inputs_[0].size(); ++i) {
    values[inputs_[0][i]] = party0_inputs[i] ? 1 : 0;
  }
  for (size_t i = 0; i < inputs_[1].size(); ++i) {
    values[inputs_[1][i]] = party1_inputs[i] ? 1 : 0;
  }
  for (const auto& [wire, value] : constants_) {
    values[wire] = value ? 1 : 0;
  }
  // Gates were appended in topological order by construction.
  for (const CircuitGate& gate : gates_) {
    switch (gate.kind) {
      case GateKind::kXor:
        values[gate.out] = values[gate.a] ^ values[gate.b];
        break;
      case GateKind::kAnd:
        values[gate.out] = values[gate.a] & values[gate.b];
        break;
      case GateKind::kNot:
        values[gate.out] = values[gate.a] ^ 1;
        break;
    }
  }
  std::vector<bool> out;
  out.reserve(outputs_.size());
  for (WireId wire : outputs_) {
    out.push_back(values[wire] != 0);
  }
  return out;
}

std::vector<bool> ToBits(uint64_t value, size_t width) {
  std::vector<bool> bits(width);
  for (size_t i = 0; i < width; ++i) {
    bits[i] = ((value >> i) & 1) != 0;
  }
  return bits;
}

uint64_t FromBits(const std::vector<bool>& bits) {
  uint64_t value = 0;
  for (size_t i = 0; i < bits.size() && i < 64; ++i) {
    if (bits[i]) {
      value |= 1ULL << i;
    }
  }
  return value;
}

}  // namespace indaas
