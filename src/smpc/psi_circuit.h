// Circuit-based private set intersection cardinality — the SMPC approach to
// private independence auditing that the paper evaluates and rejects (§4.2:
// "works in theory, but scales poorly in practice ... impractical currently
// even for datasets with only a few hundreds of components").
//
// Each party hashes its component identifiers to `hash_bits`-bit values; the
// circuit compares every pair (n0 × n1 equality comparators), ORs each row,
// and popcounts the row indicators. AND-gate count is Θ(n0·n1·hash_bits) —
// the quadratic blowup that motivates P-SOP.

#ifndef SRC_SMPC_PSI_CIRCUIT_H_
#define SRC_SMPC_PSI_CIRCUIT_H_

#include <string>
#include <vector>

#include "src/smpc/circuit.h"
#include "src/smpc/gmw.h"
#include "src/util/status.h"

namespace indaas {

struct SmpcPsiOptions {
  size_t hash_bits = 32;  // element hash width (collision prob ~ n^2 / 2^bits)
  uint64_t seed = 1;
};

struct SmpcPsiResult {
  size_t intersection = 0;
  size_t and_gates = 0;
  size_t rounds = 0;
  PartyStats party_stats[2];
};

// Builds the intersection-cardinality circuit for set sizes n0, n1.
Result<Circuit> BuildPsiCardinalityCircuit(size_t n0, size_t n1, size_t hash_bits);

// Runs the full protocol: hash, share, evaluate under GMW, reconstruct the
// count. Duplicate elements are deduplicated first (set semantics).
Result<SmpcPsiResult> RunSmpcIntersectionCardinality(const std::vector<std::string>& set0,
                                                     const std::vector<std::string>& set1,
                                                     const SmpcPsiOptions& options = {});

}  // namespace indaas

#endif  // SRC_SMPC_PSI_CIRCUIT_H_
