// GMW-style secure two-party circuit evaluation over XOR shares.
//
// Each wire value v is split as v = v0 ^ v1 between the parties. XOR and NOT
// gates are local ("free"); every AND gate consumes one Beaver multiplication
// triple and one round-trip of masked bits between the parties. Triples come
// from a trusted dealer (the standard preprocessing model; OT-based triple
// generation would only add cost, which strengthens the paper's conclusion
// that circuit-SMPC is impractical for this workload).
//
// The simulation runs both parties in-process but keeps their share vectors
// disjoint, exchanges exactly the messages the real protocol would, and
// accounts every byte. Communication is batched per AND-depth layer, so the
// round count equals the circuit's multiplicative depth.

#ifndef SRC_SMPC_GMW_H_
#define SRC_SMPC_GMW_H_

#include <vector>

#include "src/pia/protocol_stats.h"
#include "src/smpc/circuit.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace indaas {

struct GmwResult {
  std::vector<bool> outputs;
  PartyStats party_stats[2];
  size_t and_gates = 0;
  size_t rounds = 0;           // communication rounds (= AND depth)
  size_t triples_consumed = 0;
};

// Evaluates `circuit` on the parties' private inputs.
Result<GmwResult> RunGmw(const Circuit& circuit, const std::vector<bool>& party0_inputs,
                         const std::vector<bool>& party1_inputs, Rng& rng);

}  // namespace indaas

#endif  // SRC_SMPC_GMW_H_
