#include "src/smpc/psi_circuit.h"

#include <set>

#include "src/crypto/hash_family.h"

namespace indaas {

Result<Circuit> BuildPsiCardinalityCircuit(size_t n0, size_t n1, size_t hash_bits) {
  if (n0 == 0 || n1 == 0 || hash_bits == 0 || hash_bits > 64) {
    return InvalidArgumentError("BuildPsiCardinalityCircuit: need n0,n1 >= 1, 1..64 hash bits");
  }
  Circuit circuit;
  // Party inputs: n0 and n1 elements of hash_bits each, little-endian.
  std::vector<std::vector<WireId>> elements0(n0);
  std::vector<std::vector<WireId>> elements1(n1);
  for (size_t i = 0; i < n0; ++i) {
    for (size_t b = 0; b < hash_bits; ++b) {
      elements0[i].push_back(circuit.AddInput(0));
    }
  }
  for (size_t j = 0; j < n1; ++j) {
    for (size_t b = 0; b < hash_bits; ++b) {
      elements1[j].push_back(circuit.AddInput(1));
    }
  }
  // Row indicator: element i of party 0 present in party 1's set.
  std::vector<WireId> present;
  present.reserve(n0);
  for (size_t i = 0; i < n0; ++i) {
    std::vector<WireId> matches;
    matches.reserve(n1);
    for (size_t j = 0; j < n1; ++j) {
      INDAAS_ASSIGN_OR_RETURN(WireId eq, circuit.EqualsVec(elements0[i], elements1[j]));
      matches.push_back(eq);
    }
    INDAAS_ASSIGN_OR_RETURN(WireId any, circuit.OrVec(matches));
    present.push_back(any);
  }
  INDAAS_ASSIGN_OR_RETURN(std::vector<WireId> count, circuit.PopCount(present));
  for (WireId bit : count) {
    circuit.AddOutput(bit);
  }
  return circuit;
}

Result<SmpcPsiResult> RunSmpcIntersectionCardinality(const std::vector<std::string>& set0,
                                                     const std::vector<std::string>& set1,
                                                     const SmpcPsiOptions& options) {
  std::set<std::string> unique0(set0.begin(), set0.end());
  std::set<std::string> unique1(set1.begin(), set1.end());
  if (unique0.empty() || unique1.empty()) {
    return InvalidArgumentError("RunSmpcIntersectionCardinality: empty input set");
  }
  INDAAS_ASSIGN_OR_RETURN(
      Circuit circuit,
      BuildPsiCardinalityCircuit(unique0.size(), unique1.size(), options.hash_bits));

  // Both parties hash with the agreed function (seed is a domain parameter).
  const uint64_t hash_seed = options.seed ^ 0x534D50435053493FULL;
  uint64_t mask = options.hash_bits == 64 ? ~0ULL : ((1ULL << options.hash_bits) - 1);
  std::vector<bool> inputs0;
  std::vector<bool> inputs1;
  for (const std::string& element : unique0) {
    std::vector<bool> bits = ToBits(KeyedHash64(hash_seed, element) & mask, options.hash_bits);
    inputs0.insert(inputs0.end(), bits.begin(), bits.end());
  }
  for (const std::string& element : unique1) {
    std::vector<bool> bits = ToBits(KeyedHash64(hash_seed, element) & mask, options.hash_bits);
    inputs1.insert(inputs1.end(), bits.begin(), bits.end());
  }

  Rng rng(options.seed);
  INDAAS_ASSIGN_OR_RETURN(GmwResult gmw, RunGmw(circuit, inputs0, inputs1, rng));
  SmpcPsiResult result;
  result.intersection = static_cast<size_t>(FromBits(gmw.outputs));
  result.and_gates = gmw.and_gates;
  result.rounds = gmw.rounds;
  result.party_stats[0] = gmw.party_stats[0];
  result.party_stats[1] = gmw.party_stats[1];
  return result;
}

}  // namespace indaas
