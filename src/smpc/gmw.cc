#include "src/smpc/gmw.h"

#include <algorithm>

#include "src/util/timer.h"

namespace indaas {
namespace {

// One party's view: its share of every wire.
struct Party {
  std::vector<uint8_t> shares;
  PartyStats stats;
};

// A Beaver triple (a, b, c=ab), XOR-shared between the parties.
struct TripleShares {
  uint8_t a[2];
  uint8_t b[2];
  uint8_t c[2];
};

}  // namespace

Result<GmwResult> RunGmw(const Circuit& circuit, const std::vector<bool>& party0_inputs,
                         const std::vector<bool>& party1_inputs, Rng& rng) {
  if (party0_inputs.size() != circuit.InputCount(0) ||
      party1_inputs.size() != circuit.InputCount(1)) {
    return InvalidArgumentError("RunGmw: input sizes do not match the circuit");
  }
  WallTimer total_timer;
  GmwResult result;
  result.and_gates = circuit.AndGateCount();

  Party parties[2];
  parties[0].shares.assign(circuit.WireCount(), 0);
  parties[1].shares.assign(circuit.WireCount(), 0);

  // Input sharing: the owner samples a random mask, keeps one share, sends
  // the other (1 bit on the wire per input).
  auto share_inputs = [&](int owner, const std::vector<bool>& inputs) {
    const std::vector<WireId>& wires = circuit.InputsOf(owner);
    for (size_t i = 0; i < wires.size(); ++i) {
      uint8_t mask = static_cast<uint8_t>(rng.Next() & 1);
      parties[owner].shares[wires[i]] = (inputs[i] ? 1 : 0) ^ mask;
      parties[1 - owner].shares[wires[i]] = mask;
    }
    parties[owner].stats.bytes_sent += (wires.size() + 7) / 8;
    parties[1 - owner].stats.bytes_received += (wires.size() + 7) / 8;
  };
  share_inputs(0, party0_inputs);
  share_inputs(1, party1_inputs);

  // Constants: party 0 holds the value, party 1 holds zero.
  for (const auto& [wire, value] : circuit.constants()) {
    parties[0].shares[wire] = value ? 1 : 0;
    parties[1].shares[wire] = 0;
  }

  // Trusted dealer: pre-generate one triple per AND gate (counted as
  // received preprocessing bytes: 3 bits per party per triple).
  std::vector<TripleShares> triples;
  triples.reserve(circuit.AndGateCount());
  for (size_t t = 0; t < circuit.AndGateCount(); ++t) {
    uint8_t a = static_cast<uint8_t>(rng.Next() & 1);
    uint8_t b = static_cast<uint8_t>(rng.Next() & 1);
    uint8_t c = a & b;
    TripleShares shares;
    shares.a[0] = static_cast<uint8_t>(rng.Next() & 1);
    shares.a[1] = a ^ shares.a[0];
    shares.b[0] = static_cast<uint8_t>(rng.Next() & 1);
    shares.b[1] = b ^ shares.b[0];
    shares.c[0] = static_cast<uint8_t>(rng.Next() & 1);
    shares.c[1] = c ^ shares.c[0];
    triples.push_back(shares);
  }
  for (int p = 0; p < 2; ++p) {
    parties[p].stats.bytes_received += (3 * circuit.AndGateCount() + 7) / 8;
  }

  // Batched evaluation: XOR/NOT gates whose inputs are ready are applied
  // eagerly; AND gates whose inputs are ready are collected into the current
  // batch and resolved together with one exchange of masked (d, e) bits.
  // Scanning stops at the first gate depending on an unresolved AND output,
  // so each batch is one communication round and the round count equals the
  // circuit's effective multiplicative depth.
  std::vector<uint8_t> ready(circuit.WireCount(), 0);
  for (int p = 0; p < 2; ++p) {
    for (WireId wire : circuit.InputsOf(p)) {
      ready[wire] = 1;
    }
  }
  for (const auto& [wire, value] : circuit.constants()) {
    (void)value;
    ready[wire] = 1;
  }
  size_t next_triple = 0;
  const auto& gates = circuit.gates();
  // Indices of gates not yet evaluated, kept in topological order.
  std::vector<size_t> remaining(gates.size());
  for (size_t i = 0; i < gates.size(); ++i) {
    remaining[i] = i;
  }
  WallTimer compute_timer;
  while (!remaining.empty()) {
    // Evaluate every ready local gate (one topological pass suffices: local
    // gates appear after their inputs, so a sweep reaches a fixpoint with
    // respect to other locals), and collect every ready AND gate into the
    // round's batch — regardless of position, as a real GMW implementation
    // batches by depth, not by construction order.
    std::vector<size_t> layer_ands;
    std::vector<size_t> still_pending;
    still_pending.reserve(remaining.size());
    for (size_t index : remaining) {
      const CircuitGate& gate = gates[index];
      bool inputs_ready =
          ready[gate.a] != 0 && (gate.kind == GateKind::kNot || ready[gate.b] != 0);
      if (!inputs_ready) {
        still_pending.push_back(index);
        continue;
      }
      if (gate.kind == GateKind::kAnd) {
        layer_ands.push_back(index);  // Output stays not-ready until resolved.
        continue;
      }
      // Local gate: evaluate immediately for both parties.
      for (int p = 0; p < 2; ++p) {
        uint8_t a = parties[p].shares[gate.a];
        if (gate.kind == GateKind::kXor) {
          parties[p].shares[gate.out] = a ^ parties[p].shares[gate.b];
        } else {  // kNot: party 0 flips, party 1 copies.
          parties[p].shares[gate.out] = p == 0 ? a ^ 1 : a;
        }
      }
      ready[gate.out] = 1;
    }
    if (!layer_ands.empty()) {
      ++result.rounds;
      // Each party computes masked d = x ^ a, e = y ^ b for every AND in the
      // layer and sends its shares to the peer (2 bits per gate each way).
      std::vector<uint8_t> d_shares[2];
      std::vector<uint8_t> e_shares[2];
      for (int p = 0; p < 2; ++p) {
        d_shares[p].reserve(layer_ands.size());
        e_shares[p].reserve(layer_ands.size());
        for (size_t idx = 0; idx < layer_ands.size(); ++idx) {
          const CircuitGate& gate = gates[layer_ands[idx]];
          const TripleShares& triple = triples[next_triple + idx];
          d_shares[p].push_back(parties[p].shares[gate.a] ^ triple.a[p]);
          e_shares[p].push_back(parties[p].shares[gate.b] ^ triple.b[p]);
        }
        size_t bytes = (2 * layer_ands.size() + 7) / 8;
        parties[p].stats.bytes_sent += bytes;
        parties[1 - p].stats.bytes_received += bytes;
      }
      // Both parties reconstruct public d, e and complete the Beaver step:
      // z = c ^ d·b ^ e·a ^ d·e (the d·e term added by party 0 only).
      for (size_t idx = 0; idx < layer_ands.size(); ++idx) {
        const CircuitGate& gate = gates[layer_ands[idx]];
        const TripleShares& triple = triples[next_triple + idx];
        uint8_t d = d_shares[0][idx] ^ d_shares[1][idx];
        uint8_t e = e_shares[0][idx] ^ e_shares[1][idx];
        for (int p = 0; p < 2; ++p) {
          uint8_t z = triple.c[p];
          z ^= d & triple.b[p];
          z ^= e & triple.a[p];
          if (p == 0) {
            z ^= d & e;
          }
          parties[p].shares[gate.out] = z;
        }
        ready[gate.out] = 1;
      }
      next_triple += layer_ands.size();
    } else if (still_pending.size() == remaining.size()) {
      return InternalError("RunGmw: no gate became ready (bad circuit ordering)");
    }
    remaining = std::move(still_pending);
  }
  result.triples_consumed = next_triple;

  // Output reconstruction: parties exchange output shares (1 bit each way
  // per output).
  size_t out_bytes = (circuit.outputs().size() + 7) / 8;
  for (int p = 0; p < 2; ++p) {
    parties[p].stats.bytes_sent += out_bytes;
    parties[p].stats.bytes_received += out_bytes;
  }
  result.outputs.reserve(circuit.outputs().size());
  for (WireId wire : circuit.outputs()) {
    result.outputs.push_back((parties[0].shares[wire] ^ parties[1].shares[wire]) != 0);
  }
  double seconds = compute_timer.ElapsedSeconds();
  for (int p = 0; p < 2; ++p) {
    parties[p].stats.compute_seconds = seconds / 2;  // Both run concurrently.
    result.party_stats[p] = parties[p].stats;
  }
  (void)total_timer;
  return result;
}

}  // namespace indaas
