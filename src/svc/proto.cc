#include "src/svc/proto.h"

#include "src/net/wire.h"
#include "src/util/strings.h"

namespace indaas {
namespace svc {
namespace {

using net::WireReader;
using net::WireWriter;

// Rejects trailing bytes after a fully-decoded payload.
Status FinishDecode(const WireReader& reader, const char* what) {
  if (!reader.AtEnd()) {
    return ParseError(StrFormat("%s: %zu trailing bytes after payload", what,
                                reader.remaining()));
  }
  return Status::Ok();
}

void EncodePartyStats(WireWriter& writer, const PartyStats& stats) {
  writer.U64(stats.bytes_sent);
  writer.U64(stats.bytes_received);
  writer.U64(stats.encrypt_ops);
  writer.U64(stats.homomorphic_ops);
  writer.F64(stats.compute_seconds);
}

Result<PartyStats> DecodePartyStats(WireReader& reader) {
  PartyStats stats;
  INDAAS_ASSIGN_OR_RETURN(uint64_t sent, reader.U64());
  INDAAS_ASSIGN_OR_RETURN(uint64_t received, reader.U64());
  INDAAS_ASSIGN_OR_RETURN(uint64_t encrypt, reader.U64());
  INDAAS_ASSIGN_OR_RETURN(uint64_t homomorphic, reader.U64());
  INDAAS_ASSIGN_OR_RETURN(double compute, reader.F64());
  stats.bytes_sent = static_cast<size_t>(sent);
  stats.bytes_received = static_cast<size_t>(received);
  stats.encrypt_ops = static_cast<size_t>(encrypt);
  stats.homomorphic_ops = static_cast<size_t>(homomorphic);
  stats.compute_seconds = compute;
  return stats;
}

// Upper bound on any repeated-field count in a stats payload. A registry
// snapshot has tens of instruments; a count beyond this is a hostile or
// corrupted payload, rejected before any allocation.
constexpr uint32_t kMaxStatsEntries = 1u << 16;

}  // namespace

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kPing: return "Ping";
    case MsgType::kPong: return "Pong";
    case MsgType::kImportDepDb: return "ImportDepDb";
    case MsgType::kImportAck: return "ImportAck";
    case MsgType::kAuditRequest: return "AuditRequest";
    case MsgType::kAuditReport: return "AuditReport";
    case MsgType::kPiaRequest: return "PiaRequest";
    case MsgType::kPiaReport: return "PiaReport";
    case MsgType::kErrorReply: return "ErrorReply";
    case MsgType::kGetStats: return "GetStats";
    case MsgType::kStatsReply: return "StatsReply";
    case MsgType::kHealth: return "Health";
    case MsgType::kHealthReply: return "HealthReply";
    case MsgType::kGetDebugInfo: return "GetDebugInfo";
    case MsgType::kDebugInfoReply: return "DebugInfoReply";
    case MsgType::kPsopHello: return "PsopHello";
    case MsgType::kPsopDataset: return "PsopDataset";
    case MsgType::kPsopShare: return "PsopShare";
    case MsgType::kPsopSketch: return "PsopSketch";
    case MsgType::kPsopProbe: return "PsopProbe";
    case MsgType::kPsopProbeAck: return "PsopProbeAck";
    case MsgType::kGetProfile: return "GetProfile";
    case MsgType::kProfileReply: return "ProfileReply";
  }
  return "Unknown";
}

// --- Error reply ---

std::string EncodeErrorReply(const Status& status) {
  WireWriter writer;
  writer.U16(static_cast<uint16_t>(status.code()));
  writer.Str(status.message());
  return writer.Take();
}

Status DecodeErrorReply(std::string_view payload) {
  WireReader reader(payload);
  auto code_or = reader.U16();
  auto message_or = reader.Bytes();
  if (!code_or.ok() || !message_or.ok() || !reader.AtEnd()) {
    return ProtocolError("malformed error reply from peer");
  }
  StatusCode code;
  switch (static_cast<StatusCode>(*code_or)) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kAlreadyExists:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kOutOfRange:
    case StatusCode::kInternal:
    case StatusCode::kUnimplemented:
    case StatusCode::kResourceExhausted:
    case StatusCode::kParseError:
    case StatusCode::kProtocolError:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kUnavailable:
      code = static_cast<StatusCode>(*code_or);
      break;
    default:
      code = StatusCode::kInternal;
      break;
  }
  return Status(code, "remote: " + *message_or);
}

// --- DepDb import ---

std::string EncodeImportAck(const ImportAck& ack) {
  WireWriter writer;
  writer.U64(ack.network);
  writer.U64(ack.hardware);
  writer.U64(ack.software);
  return writer.Take();
}

Result<ImportAck> DecodeImportAck(std::string_view payload) {
  WireReader reader(payload);
  ImportAck ack;
  INDAAS_ASSIGN_OR_RETURN(ack.network, reader.U64());
  INDAAS_ASSIGN_OR_RETURN(ack.hardware, reader.U64());
  INDAAS_ASSIGN_OR_RETURN(ack.software, reader.U64());
  INDAAS_RETURN_IF_ERROR(FinishDecode(reader, "ImportAck"));
  return ack;
}

// --- Structural audit ---

std::string EncodeAuditSpecification(const AuditSpecification& spec) {
  WireWriter writer;
  writer.U32(static_cast<uint32_t>(spec.candidate_deployments.size()));
  for (const std::vector<std::string>& deployment : spec.candidate_deployments) {
    writer.StrVec(deployment);
  }
  writer.U32(spec.required_servers);
  writer.Bool(spec.include_network);
  writer.Bool(spec.include_hardware);
  writer.Bool(spec.include_software);
  writer.StrVec(spec.software_of_interest);
  writer.U8(static_cast<uint8_t>(spec.algorithm));
  writer.U8(static_cast<uint8_t>(spec.metric));
  writer.U64(spec.sampling_rounds);
  writer.F64(spec.sampling_bias);
  writer.U64(spec.seed);
  writer.U64(spec.threads);
  writer.U64(spec.parallel_deployments);
  writer.U64(spec.score_top_n);
  return writer.Take();
}

Result<AuditSpecification> DecodeAuditSpecification(std::string_view payload) {
  WireReader reader(payload);
  AuditSpecification spec;
  INDAAS_ASSIGN_OR_RETURN(uint32_t deployments, reader.U32());
  spec.candidate_deployments.reserve(deployments);
  for (uint32_t i = 0; i < deployments; ++i) {
    INDAAS_ASSIGN_OR_RETURN(std::vector<std::string> servers, reader.StrVec());
    spec.candidate_deployments.push_back(std::move(servers));
  }
  INDAAS_ASSIGN_OR_RETURN(spec.required_servers, reader.U32());
  INDAAS_ASSIGN_OR_RETURN(spec.include_network, reader.Bool());
  INDAAS_ASSIGN_OR_RETURN(spec.include_hardware, reader.Bool());
  INDAAS_ASSIGN_OR_RETURN(spec.include_software, reader.Bool());
  INDAAS_ASSIGN_OR_RETURN(spec.software_of_interest, reader.StrVec());
  INDAAS_ASSIGN_OR_RETURN(uint8_t algorithm, reader.U8());
  if (algorithm > static_cast<uint8_t>(RgAlgorithm::kSampling)) {
    return ParseError(StrFormat("bad RgAlgorithm value %u", algorithm));
  }
  spec.algorithm = static_cast<RgAlgorithm>(algorithm);
  INDAAS_ASSIGN_OR_RETURN(uint8_t metric, reader.U8());
  if (metric > static_cast<uint8_t>(RankingMetric::kFailureProbability)) {
    return ParseError(StrFormat("bad RankingMetric value %u", metric));
  }
  spec.metric = static_cast<RankingMetric>(metric);
  INDAAS_ASSIGN_OR_RETURN(uint64_t rounds, reader.U64());
  spec.sampling_rounds = static_cast<size_t>(rounds);
  INDAAS_ASSIGN_OR_RETURN(spec.sampling_bias, reader.F64());
  INDAAS_ASSIGN_OR_RETURN(spec.seed, reader.U64());
  INDAAS_ASSIGN_OR_RETURN(uint64_t threads, reader.U64());
  spec.threads = static_cast<size_t>(threads);
  INDAAS_ASSIGN_OR_RETURN(uint64_t parallel, reader.U64());
  spec.parallel_deployments = static_cast<size_t>(parallel);
  INDAAS_ASSIGN_OR_RETURN(uint64_t top_n, reader.U64());
  spec.score_top_n = static_cast<size_t>(top_n);
  INDAAS_RETURN_IF_ERROR(FinishDecode(reader, "AuditSpecification"));
  return spec;
}

std::string EncodeSiaAuditReport(const SiaAuditReport& report) {
  WireWriter writer;
  writer.U8(static_cast<uint8_t>(report.algorithm));
  writer.U8(static_cast<uint8_t>(report.metric));
  writer.U32(static_cast<uint32_t>(report.deployments.size()));
  for (const DeploymentAudit& audit : report.deployments) {
    writer.StrVec(audit.servers);
    writer.U32(static_cast<uint32_t>(audit.ranked_groups.size()));
    for (const DeploymentAudit::NamedRiskGroup& group : audit.ranked_groups) {
      writer.StrVec(group.components);
      writer.F64(group.score);
    }
    writer.F64(audit.independence_score);
    writer.U64(audit.unexpected_rgs);
    writer.F64(audit.top_event_prob);
  }
  return writer.Take();
}

Result<SiaAuditReport> DecodeSiaAuditReport(std::string_view payload) {
  WireReader reader(payload);
  SiaAuditReport report;
  INDAAS_ASSIGN_OR_RETURN(uint8_t algorithm, reader.U8());
  if (algorithm > static_cast<uint8_t>(RgAlgorithm::kSampling)) {
    return ParseError(StrFormat("bad RgAlgorithm value %u", algorithm));
  }
  report.algorithm = static_cast<RgAlgorithm>(algorithm);
  INDAAS_ASSIGN_OR_RETURN(uint8_t metric, reader.U8());
  if (metric > static_cast<uint8_t>(RankingMetric::kFailureProbability)) {
    return ParseError(StrFormat("bad RankingMetric value %u", metric));
  }
  report.metric = static_cast<RankingMetric>(metric);
  INDAAS_ASSIGN_OR_RETURN(uint32_t deployments, reader.U32());
  report.deployments.reserve(deployments);
  for (uint32_t d = 0; d < deployments; ++d) {
    DeploymentAudit audit;
    INDAAS_ASSIGN_OR_RETURN(audit.servers, reader.StrVec());
    INDAAS_ASSIGN_OR_RETURN(uint32_t groups, reader.U32());
    audit.ranked_groups.reserve(groups);
    for (uint32_t g = 0; g < groups; ++g) {
      DeploymentAudit::NamedRiskGroup group;
      INDAAS_ASSIGN_OR_RETURN(group.components, reader.StrVec());
      INDAAS_ASSIGN_OR_RETURN(group.score, reader.F64());
      audit.ranked_groups.push_back(std::move(group));
    }
    INDAAS_ASSIGN_OR_RETURN(audit.independence_score, reader.F64());
    INDAAS_ASSIGN_OR_RETURN(uint64_t unexpected, reader.U64());
    audit.unexpected_rgs = static_cast<size_t>(unexpected);
    INDAAS_ASSIGN_OR_RETURN(audit.top_event_prob, reader.F64());
    report.deployments.push_back(std::move(audit));
  }
  INDAAS_RETURN_IF_ERROR(FinishDecode(reader, "SiaAuditReport"));
  return report;
}

// --- Private audit ---

std::string EncodePiaRequest(const PiaRequest& request) {
  WireWriter writer;
  writer.U32(static_cast<uint32_t>(request.providers.size()));
  for (const CloudProvider& provider : request.providers) {
    writer.Str(provider.name);
    writer.StrVec(provider.components);
  }
  const PiaAuditOptions& options = request.options;
  writer.U8(static_cast<uint8_t>(options.method));
  writer.U64(options.minhash_m);
  writer.U8(static_cast<uint8_t>(options.psop.hash));
  writer.U64(options.psop.group_bits);
  writer.U64(options.psop.seed);
  writer.U32(options.min_redundancy);
  writer.U32(options.max_redundancy);
  writer.U64(options.parallel_deployments);
  writer.U32(options.sketch_k);
  return writer.Take();
}

Result<PiaRequest> DecodePiaRequest(std::string_view payload) {
  WireReader reader(payload);
  PiaRequest request;
  INDAAS_ASSIGN_OR_RETURN(uint32_t providers, reader.U32());
  request.providers.reserve(providers);
  for (uint32_t i = 0; i < providers; ++i) {
    CloudProvider provider;
    INDAAS_ASSIGN_OR_RETURN(provider.name, reader.Str());
    INDAAS_ASSIGN_OR_RETURN(provider.components, reader.StrVec());
    request.providers.push_back(std::move(provider));
  }
  INDAAS_ASSIGN_OR_RETURN(uint8_t method, reader.U8());
  if (method > static_cast<uint8_t>(PiaMethod::kSketch)) {
    return ParseError(StrFormat("bad PiaMethod value %u", method));
  }
  request.options.method = static_cast<PiaMethod>(method);
  INDAAS_ASSIGN_OR_RETURN(uint64_t m, reader.U64());
  request.options.minhash_m = static_cast<size_t>(m);
  INDAAS_ASSIGN_OR_RETURN(uint8_t hash, reader.U8());
  if (hash > static_cast<uint8_t>(HashAlgorithm::kSha256)) {
    return ParseError(StrFormat("bad HashAlgorithm value %u", hash));
  }
  request.options.psop.hash = static_cast<HashAlgorithm>(hash);
  INDAAS_ASSIGN_OR_RETURN(uint64_t group_bits, reader.U64());
  request.options.psop.group_bits = static_cast<size_t>(group_bits);
  INDAAS_ASSIGN_OR_RETURN(request.options.psop.seed, reader.U64());
  INDAAS_ASSIGN_OR_RETURN(request.options.min_redundancy, reader.U32());
  INDAAS_ASSIGN_OR_RETURN(request.options.max_redundancy, reader.U32());
  INDAAS_ASSIGN_OR_RETURN(uint64_t parallel, reader.U64());
  request.options.parallel_deployments = static_cast<size_t>(parallel);
  // sketch_k entered the payload after the original fields; requests from
  // older clients simply end here and keep the default.
  if (!reader.AtEnd()) {
    INDAAS_ASSIGN_OR_RETURN(request.options.sketch_k, reader.U32());
    if (request.options.sketch_k == 0) {
      return ParseError("bad PiaRequest sketch_k 0");
    }
  }
  INDAAS_RETURN_IF_ERROR(FinishDecode(reader, "PiaRequest"));
  return request;
}

std::string EncodePiaAuditReport(const PiaAuditReport& report) {
  WireWriter writer;
  writer.U32(report.min_redundancy);
  writer.U32(static_cast<uint32_t>(report.rankings.size()));
  for (const std::vector<DeploymentSimilarity>& ranking : report.rankings) {
    writer.U32(static_cast<uint32_t>(ranking.size()));
    for (const DeploymentSimilarity& entry : ranking) {
      writer.StrVec(entry.providers);
      writer.F64(entry.jaccard);
    }
  }
  writer.U32(static_cast<uint32_t>(report.provider_stats.size()));
  for (const PartyStats& stats : report.provider_stats) {
    EncodePartyStats(writer, stats);
  }
  return writer.Take();
}

Result<PiaAuditReport> DecodePiaAuditReport(std::string_view payload) {
  WireReader reader(payload);
  PiaAuditReport report;
  INDAAS_ASSIGN_OR_RETURN(report.min_redundancy, reader.U32());
  INDAAS_ASSIGN_OR_RETURN(uint32_t levels, reader.U32());
  report.rankings.reserve(levels);
  for (uint32_t level = 0; level < levels; ++level) {
    INDAAS_ASSIGN_OR_RETURN(uint32_t entries, reader.U32());
    std::vector<DeploymentSimilarity> ranking;
    ranking.reserve(entries);
    for (uint32_t e = 0; e < entries; ++e) {
      DeploymentSimilarity entry;
      INDAAS_ASSIGN_OR_RETURN(entry.providers, reader.StrVec());
      INDAAS_ASSIGN_OR_RETURN(entry.jaccard, reader.F64());
      ranking.push_back(std::move(entry));
    }
    report.rankings.push_back(std::move(ranking));
  }
  INDAAS_ASSIGN_OR_RETURN(uint32_t stats_count, reader.U32());
  report.provider_stats.reserve(stats_count);
  for (uint32_t i = 0; i < stats_count; ++i) {
    INDAAS_ASSIGN_OR_RETURN(PartyStats stats, DecodePartyStats(reader));
    report.provider_stats.push_back(stats);
  }
  INDAAS_RETURN_IF_ERROR(FinishDecode(reader, "PiaAuditReport"));
  return report;
}

// --- Stats and health ---

std::string EncodeServerStats(const ServerStats& stats) {
  WireWriter writer;
  writer.U64(stats.uptime_us);
  writer.U64(stats.depdb_records);
  const obs::MetricsSnapshot& m = stats.metrics;
  writer.U32(static_cast<uint32_t>(m.counters.size()));
  for (const obs::MetricsSnapshot::CounterValue& c : m.counters) {
    writer.Str(c.name);
    writer.U64(c.value);
  }
  writer.U32(static_cast<uint32_t>(m.gauges.size()));
  for (const obs::MetricsSnapshot::GaugeValue& g : m.gauges) {
    writer.Str(g.name);
    writer.U64(static_cast<uint64_t>(g.value));
    writer.U64(static_cast<uint64_t>(g.max));
  }
  writer.U32(static_cast<uint32_t>(m.histograms.size()));
  for (const obs::Histogram::Snapshot& h : m.histograms) {
    writer.Str(h.name);
    writer.U32(static_cast<uint32_t>(h.bounds.size()));
    for (double bound : h.bounds) {
      writer.F64(bound);
    }
    // counts is always bounds.size() + 1 (trailing overflow bucket), so the
    // bounds count doubles as the counts length prefix.
    for (uint64_t count : h.counts) {
      writer.U64(count);
    }
    writer.U64(h.count);
    writer.F64(h.sum);
    writer.F64(h.exemplar_value);
    writer.U64(h.exemplar_trace_id);
  }
  return writer.Take();
}

Result<ServerStats> DecodeServerStats(std::string_view payload) {
  WireReader reader(payload);
  ServerStats stats;
  INDAAS_ASSIGN_OR_RETURN(stats.uptime_us, reader.U64());
  INDAAS_ASSIGN_OR_RETURN(stats.depdb_records, reader.U64());
  INDAAS_ASSIGN_OR_RETURN(uint32_t counters, reader.U32());
  if (counters > kMaxStatsEntries) {
    return ParseError(StrFormat("ServerStats: counter count %u exceeds limit", counters));
  }
  stats.metrics.counters.reserve(counters);
  for (uint32_t i = 0; i < counters; ++i) {
    obs::MetricsSnapshot::CounterValue c;
    INDAAS_ASSIGN_OR_RETURN(c.name, reader.Str());
    INDAAS_ASSIGN_OR_RETURN(c.value, reader.U64());
    stats.metrics.counters.push_back(std::move(c));
  }
  INDAAS_ASSIGN_OR_RETURN(uint32_t gauges, reader.U32());
  if (gauges > kMaxStatsEntries) {
    return ParseError(StrFormat("ServerStats: gauge count %u exceeds limit", gauges));
  }
  stats.metrics.gauges.reserve(gauges);
  for (uint32_t i = 0; i < gauges; ++i) {
    obs::MetricsSnapshot::GaugeValue g;
    INDAAS_ASSIGN_OR_RETURN(g.name, reader.Str());
    INDAAS_ASSIGN_OR_RETURN(uint64_t value, reader.U64());
    INDAAS_ASSIGN_OR_RETURN(uint64_t max, reader.U64());
    g.value = static_cast<int64_t>(value);
    g.max = static_cast<int64_t>(max);
    stats.metrics.gauges.push_back(std::move(g));
  }
  INDAAS_ASSIGN_OR_RETURN(uint32_t histograms, reader.U32());
  if (histograms > kMaxStatsEntries) {
    return ParseError(StrFormat("ServerStats: histogram count %u exceeds limit", histograms));
  }
  stats.metrics.histograms.reserve(histograms);
  for (uint32_t i = 0; i < histograms; ++i) {
    obs::Histogram::Snapshot h;
    INDAAS_ASSIGN_OR_RETURN(h.name, reader.Str());
    INDAAS_ASSIGN_OR_RETURN(uint32_t bounds, reader.U32());
    if (bounds > kMaxStatsEntries) {
      return ParseError(StrFormat("ServerStats: bucket count %u exceeds limit", bounds));
    }
    h.bounds.reserve(bounds);
    for (uint32_t b = 0; b < bounds; ++b) {
      INDAAS_ASSIGN_OR_RETURN(double bound, reader.F64());
      h.bounds.push_back(bound);
    }
    h.counts.reserve(bounds + 1);
    for (uint32_t b = 0; b < bounds + 1; ++b) {
      INDAAS_ASSIGN_OR_RETURN(uint64_t count, reader.U64());
      h.counts.push_back(count);
    }
    INDAAS_ASSIGN_OR_RETURN(h.count, reader.U64());
    INDAAS_ASSIGN_OR_RETURN(h.sum, reader.F64());
    INDAAS_ASSIGN_OR_RETURN(h.exemplar_value, reader.F64());
    INDAAS_ASSIGN_OR_RETURN(h.exemplar_trace_id, reader.U64());
    stats.metrics.histograms.push_back(std::move(h));
  }
  INDAAS_RETURN_IF_ERROR(FinishDecode(reader, "ServerStats"));
  return stats;
}

std::string EncodeHealthStatus(const HealthStatus& status) {
  WireWriter writer;
  writer.Bool(status.serving);
  writer.U64(status.uptime_us);
  return writer.Take();
}

Result<HealthStatus> DecodeHealthStatus(std::string_view payload) {
  WireReader reader(payload);
  HealthStatus status;
  INDAAS_ASSIGN_OR_RETURN(status.serving, reader.Bool());
  INDAAS_ASSIGN_OR_RETURN(status.uptime_us, reader.U64());
  INDAAS_RETURN_IF_ERROR(FinishDecode(reader, "HealthStatus"));
  return status;
}

// --- Debug introspection ---

std::string EncodeDebugInfo(const DebugInfo& info) {
  WireWriter writer;
  writer.U64(info.uptime_us);
  writer.U8(info.mode);
  writer.U32(info.reactor_shards);
  writer.U64(info.inflight_global);
  writer.U32(static_cast<uint32_t>(info.shards.size()));
  for (const DebugShard& shard : info.shards) {
    writer.U32(shard.index);
    writer.U64(shard.connections);
    writer.U64(shard.inflight);
    writer.Bool(shard.has_listener);
  }
  writer.U32(static_cast<uint32_t>(info.connections.size()));
  for (const DebugConnection& conn : info.connections) {
    writer.U64(conn.id);
    writer.U32(conn.shard);
    writer.U64(conn.age_us);
    writer.U64(conn.in_buffer_bytes);
    writer.U64(conn.write_buffer_bytes);
    writer.U64(conn.inflight);
    writer.U64(conn.oldest_pending_us);
  }
  writer.U32(static_cast<uint32_t>(info.events.size()));
  for (const DebugFlightEvent& event : info.events) {
    writer.U64(event.t_us);
    writer.U64(event.trace_id);
    writer.U64(event.a);
    writer.U64(event.b);
    writer.U32(event.tid);
    writer.U16(event.type);
    writer.U16(event.code);
  }
  writer.U32(static_cast<uint32_t>(info.slowest.size()));
  for (const DebugSlowRpc& rpc : info.slowest) {
    writer.U64(rpc.trace_id);
    writer.U64(rpc.request_id);
    writer.U16(rpc.rpc_type);
    writer.U8(rpc.outcome);
    writer.Bool(rpc.ok);
    writer.U64(rpc.conn_id);
    writer.U64(rpc.end_us);
    writer.F64(rpc.total_s);
    for (double stage : rpc.stage_s) {
      writer.F64(stage);
    }
  }
  return writer.Take();
}

Result<DebugInfo> DecodeDebugInfo(std::string_view payload) {
  WireReader reader(payload);
  DebugInfo info;
  INDAAS_ASSIGN_OR_RETURN(info.uptime_us, reader.U64());
  INDAAS_ASSIGN_OR_RETURN(info.mode, reader.U8());
  INDAAS_ASSIGN_OR_RETURN(info.reactor_shards, reader.U32());
  INDAAS_ASSIGN_OR_RETURN(info.inflight_global, reader.U64());
  INDAAS_ASSIGN_OR_RETURN(uint32_t shards, reader.U32());
  if (shards > kMaxStatsEntries) {
    return ParseError(StrFormat("DebugInfo: shard count %u exceeds limit", shards));
  }
  info.shards.reserve(shards);
  for (uint32_t i = 0; i < shards; ++i) {
    DebugShard shard;
    INDAAS_ASSIGN_OR_RETURN(shard.index, reader.U32());
    INDAAS_ASSIGN_OR_RETURN(shard.connections, reader.U64());
    INDAAS_ASSIGN_OR_RETURN(shard.inflight, reader.U64());
    INDAAS_ASSIGN_OR_RETURN(shard.has_listener, reader.Bool());
    info.shards.push_back(shard);
  }
  INDAAS_ASSIGN_OR_RETURN(uint32_t connections, reader.U32());
  if (connections > kMaxStatsEntries) {
    return ParseError(StrFormat("DebugInfo: connection count %u exceeds limit", connections));
  }
  info.connections.reserve(connections);
  for (uint32_t i = 0; i < connections; ++i) {
    DebugConnection conn;
    INDAAS_ASSIGN_OR_RETURN(conn.id, reader.U64());
    INDAAS_ASSIGN_OR_RETURN(conn.shard, reader.U32());
    INDAAS_ASSIGN_OR_RETURN(conn.age_us, reader.U64());
    INDAAS_ASSIGN_OR_RETURN(conn.in_buffer_bytes, reader.U64());
    INDAAS_ASSIGN_OR_RETURN(conn.write_buffer_bytes, reader.U64());
    INDAAS_ASSIGN_OR_RETURN(conn.inflight, reader.U64());
    INDAAS_ASSIGN_OR_RETURN(conn.oldest_pending_us, reader.U64());
    info.connections.push_back(conn);
  }
  INDAAS_ASSIGN_OR_RETURN(uint32_t events, reader.U32());
  if (events > kMaxStatsEntries) {
    return ParseError(StrFormat("DebugInfo: event count %u exceeds limit", events));
  }
  info.events.reserve(events);
  for (uint32_t i = 0; i < events; ++i) {
    DebugFlightEvent event;
    INDAAS_ASSIGN_OR_RETURN(event.t_us, reader.U64());
    INDAAS_ASSIGN_OR_RETURN(event.trace_id, reader.U64());
    INDAAS_ASSIGN_OR_RETURN(event.a, reader.U64());
    INDAAS_ASSIGN_OR_RETURN(event.b, reader.U64());
    INDAAS_ASSIGN_OR_RETURN(event.tid, reader.U32());
    INDAAS_ASSIGN_OR_RETURN(event.type, reader.U16());
    INDAAS_ASSIGN_OR_RETURN(event.code, reader.U16());
    info.events.push_back(event);
  }
  INDAAS_ASSIGN_OR_RETURN(uint32_t slowest, reader.U32());
  if (slowest > kMaxStatsEntries) {
    return ParseError(StrFormat("DebugInfo: slow-rpc count %u exceeds limit", slowest));
  }
  info.slowest.reserve(slowest);
  for (uint32_t i = 0; i < slowest; ++i) {
    DebugSlowRpc rpc;
    INDAAS_ASSIGN_OR_RETURN(rpc.trace_id, reader.U64());
    INDAAS_ASSIGN_OR_RETURN(rpc.request_id, reader.U64());
    INDAAS_ASSIGN_OR_RETURN(rpc.rpc_type, reader.U16());
    INDAAS_ASSIGN_OR_RETURN(rpc.outcome, reader.U8());
    INDAAS_ASSIGN_OR_RETURN(rpc.ok, reader.Bool());
    INDAAS_ASSIGN_OR_RETURN(rpc.conn_id, reader.U64());
    INDAAS_ASSIGN_OR_RETURN(rpc.end_us, reader.U64());
    INDAAS_ASSIGN_OR_RETURN(rpc.total_s, reader.F64());
    for (double& stage : rpc.stage_s) {
      INDAAS_ASSIGN_OR_RETURN(stage, reader.F64());
    }
    info.slowest.push_back(rpc);
  }
  INDAAS_RETURN_IF_ERROR(FinishDecode(reader, "DebugInfo"));
  return info;
}

// --- P-SOP session payloads ---

std::string EncodePsopHello(const PsopHello& hello) {
  WireWriter writer;
  writer.U32(hello.ring_size);
  writer.U32(hello.sender_index);
  writer.U32(hello.group_bits);
  writer.U8(hello.hash_algorithm);
  return writer.Take();
}

Result<PsopHello> DecodePsopHello(std::string_view payload) {
  WireReader reader(payload);
  PsopHello hello;
  INDAAS_ASSIGN_OR_RETURN(hello.ring_size, reader.U32());
  INDAAS_ASSIGN_OR_RETURN(hello.sender_index, reader.U32());
  INDAAS_ASSIGN_OR_RETURN(hello.group_bits, reader.U32());
  INDAAS_ASSIGN_OR_RETURN(hello.hash_algorithm, reader.U8());
  INDAAS_RETURN_IF_ERROR(FinishDecode(reader, "PsopHello"));
  return hello;
}

std::string EncodePsopDataset(const PsopDataset& dataset) {
  WireWriter writer;
  writer.U32(dataset.origin);
  writer.U32(dataset.element_bytes);
  writer.U32(static_cast<uint32_t>(dataset.elements.size()));
  for (const BigUint& element : dataset.elements) {
    std::vector<uint8_t> bytes = element.ToBytesBE(dataset.element_bytes);
    writer.Bytes(std::string_view(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  }
  return writer.Take();
}

Result<PsopDataset> DecodePsopDataset(std::string_view payload) {
  WireReader reader(payload);
  PsopDataset dataset;
  INDAAS_ASSIGN_OR_RETURN(dataset.origin, reader.U32());
  INDAAS_ASSIGN_OR_RETURN(dataset.element_bytes, reader.U32());
  INDAAS_ASSIGN_OR_RETURN(uint32_t count, reader.U32());
  if (dataset.element_bytes == 0 || dataset.element_bytes > 4096) {
    return ParseError(StrFormat("bad PsopDataset element width %u", dataset.element_bytes));
  }
  dataset.elements.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    INDAAS_ASSIGN_OR_RETURN(std::string raw, reader.Bytes());
    if (raw.size() != dataset.element_bytes) {
      return ParseError(StrFormat("PsopDataset element %u is %zu bytes, want %u", i,
                                  raw.size(), dataset.element_bytes));
    }
    std::vector<uint8_t> bytes(raw.begin(), raw.end());
    dataset.elements.push_back(BigUint::FromBytesBE(bytes));
  }
  INDAAS_RETURN_IF_ERROR(FinishDecode(reader, "PsopDataset"));
  return dataset;
}

std::string EncodePsopSketch(const PsopSketch& sketch) {
  WireWriter writer;
  writer.U32(sketch.origin);
  writer.U32(static_cast<uint32_t>(sketch.registers.size()));
  for (uint32_t reg : sketch.registers) {
    writer.U32(reg);
  }
  return writer.Take();
}

Result<PsopSketch> DecodePsopSketch(std::string_view payload) {
  WireReader reader(payload);
  PsopSketch sketch;
  INDAAS_ASSIGN_OR_RETURN(sketch.origin, reader.U32());
  INDAAS_ASSIGN_OR_RETURN(uint32_t count, reader.U32());
  // The frame extension carries k as u16, so anything larger is hostile.
  if (count == 0 || count > UINT16_MAX) {
    return ParseError(StrFormat("bad PsopSketch register count %u", count));
  }
  sketch.registers.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    INDAAS_ASSIGN_OR_RETURN(uint32_t reg, reader.U32());
    sketch.registers.push_back(reg);
  }
  INDAAS_RETURN_IF_ERROR(FinishDecode(reader, "PsopSketch"));
  return sketch;
}

std::string EncodePsopProbe(const PsopProbe& probe) {
  WireWriter writer;
  writer.U32(probe.sender_index);
  writer.U32(probe.attempt);
  return writer.Take();
}

Result<PsopProbe> DecodePsopProbe(std::string_view payload) {
  WireReader reader(payload);
  PsopProbe probe;
  INDAAS_ASSIGN_OR_RETURN(probe.sender_index, reader.U32());
  INDAAS_ASSIGN_OR_RETURN(probe.attempt, reader.U32());
  // The membership bitmask caps rings at 32 original parties, so a larger
  // claimed index is hostile, not merely unusual.
  if (probe.sender_index >= 32) {
    return ParseError(StrFormat("bad PsopProbe sender index %u", probe.sender_index));
  }
  INDAAS_RETURN_IF_ERROR(FinishDecode(reader, "PsopProbe"));
  return probe;
}

// --- Remote profiling ---

std::string EncodeProfileRequest(const ProfileRequest& request) {
  WireWriter writer;
  writer.U32(request.hz);
  writer.U32(request.seconds);
  writer.Bool(request.alloc);
  return writer.Take();
}

Result<ProfileRequest> DecodeProfileRequest(std::string_view payload) {
  WireReader reader(payload);
  ProfileRequest request;
  INDAAS_ASSIGN_OR_RETURN(request.hz, reader.U32());
  INDAAS_ASSIGN_OR_RETURN(request.seconds, reader.U32());
  INDAAS_ASSIGN_OR_RETURN(request.alloc, reader.Bool());
  // A hostile client must not be able to demand SIGPROF storms or
  // arbitrarily long captures; reject out-of-range windows at decode so
  // every server path sees only valid requests.
  if (request.hz < 1 || request.hz > kMaxProfileHz) {
    return ParseError(StrFormat("bad ProfileRequest hz %u (cap %u)", request.hz,
                                kMaxProfileHz));
  }
  if (request.seconds < 1 || request.seconds > kMaxProfileSeconds) {
    return ParseError(StrFormat("bad ProfileRequest seconds %u (cap %u)",
                                request.seconds, kMaxProfileSeconds));
  }
  INDAAS_RETURN_IF_ERROR(FinishDecode(reader, "ProfileRequest"));
  return request;
}

std::string EncodeProfileReply(const ProfileReply& reply) {
  WireWriter writer;
  writer.Bytes(reply.dump);
  return writer.Take();
}

Result<ProfileReply> DecodeProfileReply(std::string_view payload) {
  WireReader reader(payload);
  ProfileReply reply;
  INDAAS_ASSIGN_OR_RETURN(reply.dump, reader.Bytes());
  if (reply.dump.size() > kMaxProfileDumpBytes) {
    return ParseError(StrFormat("ProfileReply dump of %zu bytes exceeds cap",
                                reply.dump.size()));
  }
  INDAAS_RETURN_IF_ERROR(FinishDecode(reader, "ProfileReply"));
  return reply;
}

}  // namespace svc
}  // namespace indaas
