// Multiplexed (pipelining) client for the INDaaS audit service.
//
// Where AuditClient issues one request at a time per connection,
// MuxAuditClient keeps a bounded window of requests in flight on each of a
// small pool of connections. Every request frame carries the request-id
// extension (src/net/frame.h); the server echoes the id on the matching
// reply, so replies may arrive in any order — a fast ping overtakes a slow
// audit on the same connection — and are paired by id, never by position.
// This is the client half of the reactor's pipelining contract and the
// workhorse of bench_svc_saturation's open-loop driver.
//
// Concurrency model: AsyncCall is thread-safe and non-blocking up to the
// window; once a connection's window is full the caller blocks until a
// reply frees a slot (natural backpressure — an open-loop driver that
// outruns the server piles up here instead of allocating without bound).
// Completions are delivered on the connection's reader thread; keep them
// cheap, and never issue a blocking Call from inside one. Requests are
// spread round-robin across the pool's connections.
//
// Compatibility: a pre-request-id server rejects the unknown flag bit as a
// protocol error and closes the connection, so talking to an old server
// fails loudly (every pending call completes with the transport error)
// instead of mis-pairing replies.
//
// Staleness and replay: a pooled connection the server closed while idle is
// revived in place (fresh socket + reader) the next time a request routes to
// it, and *idempotent* requests (everything but ImportDepDb) that die on a
// transport fault are transparently re-issued once on another connection.
// Decoded kErrorReply answers — including server sheds — are never replayed;
// they are the server's decision. Reconnects and replays are counted in
// svc.client.mux_reconnects / svc.client.mux_replays.

#ifndef SRC_SVC_MUX_CLIENT_H_
#define SRC_SVC_MUX_CLIENT_H_

#include <functional>
#include <memory>
#include <string>

#include "src/agent/sia_audit.h"
#include "src/agent/spec.h"
#include "src/net/frame.h"
#include "src/net/retry.h"
#include "src/net/socket.h"
#include "src/svc/proto.h"
#include "src/util/status.h"

namespace indaas {
namespace svc {

struct MuxClientOptions {
  size_t connections = 1;  // pool size; requests round-robin across it
  size_t window = 64;      // max in-flight requests per connection
  int connect_timeout_ms = 2000;
  int io_timeout_ms = 30000;  // audits on large DepDBs take real time
  net::RetryPolicy retry;
  net::FrameLimits limits;
};

class MuxAuditClient {
 public:
  // Invoked exactly once per request with the paired reply (or the error
  // that ended it). Runs on a reader thread — keep it cheap.
  using Completion = std::function<void(Result<net::Frame>)>;

  // Connects the whole pool (each connection retries with backoff while
  // the server comes up).
  static Result<MuxAuditClient> Connect(const net::Endpoint& endpoint,
                                        const MuxClientOptions& options = {});

  MuxAuditClient(MuxAuditClient&&) noexcept;
  MuxAuditClient& operator=(MuxAuditClient&&) noexcept;
  MuxAuditClient(const MuxAuditClient&) = delete;
  MuxAuditClient& operator=(const MuxAuditClient&) = delete;
  ~MuxAuditClient();

  // Issues one request; `done` fires when the matching reply arrives (out
  // of order is fine). Blocks only while the chosen connection's window is
  // full. kErrorReply payloads are unwrapped into their remote Status, and
  // a reply of the wrong type is a kProtocolError.
  void AsyncCall(MsgType request, std::string payload, MsgType expected, Completion done);

  // Synchronous convenience over AsyncCall. Other requests may still be in
  // flight around it; must not be called from inside a Completion.
  Result<net::Frame> Call(MsgType request, std::string payload, MsgType expected);

  Status Ping();
  Result<ImportAck> ImportDepDb(const std::string& table1_text);
  Result<SiaAuditReport> AuditStructural(const AuditSpecification& spec);

  // Fails every pending request with kUnavailable and joins the reader
  // threads. Idempotent; the destructor calls it.
  void Shutdown();

  // The trace id stamped on every request (ambient at Connect, else fresh).
  uint64_t trace_id() const;

 private:
  struct Impl;
  explicit MuxAuditClient(std::unique_ptr<Impl> impl);

  std::unique_ptr<Impl> impl_;
};

}  // namespace svc
}  // namespace indaas

#endif  // SRC_SVC_MUX_CLIENT_H_
