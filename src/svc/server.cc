#include "src/svc/server.h"

#include <sys/epoll.h>

#include <algorithm>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/net/event_loop.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/propagate.h"
#include "src/obs/trace.h"
#include "src/svc/admission.h"
#include "src/svc/proto.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace indaas {
namespace svc {
namespace {

// Poll slice for idle waits: bounds how long Stop() waits on a quiet
// listener or an idle keep-alive connection (thread-per-request mode only;
// the reactor blocks in epoll_wait and is woken explicitly).
constexpr int kIdlePollMs = 100;

// Read chunk for the reactor's non-blocking receive path. Level-triggered
// epoll re-arms automatically, so a connection with more than this pending
// is simply revisited next iteration instead of monopolizing the loop.
constexpr size_t kReadChunkBytes = 64 * 1024;

const char* RpcName(uint8_t type) { return MsgTypeName(static_cast<MsgType>(type)); }

obs::Histogram* RpcLatency() {
  static obs::Histogram* histogram = obs::MetricsRegistry::Global().GetHistogram(
      "svc.rpc_latency_seconds",
      {0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
       2.5, 5.0, 10.0});
  return histogram;
}

// Geometric bucket bounds for the per-RPC latency histograms: 100 µs up to
// ~13 s, doubling per bucket (18 buckets + overflow). Exponential bounds
// keep relative error roughly constant across four decades of latency.
std::vector<double> ExponentialLatencyBounds() {
  std::vector<double> bounds;
  for (double bound = 0.0001; bound < 16.0; bound *= 2.0) {
    bounds.push_back(bound);
  }
  return bounds;
}

obs::Histogram* RpcSeconds(uint8_t type) {
  return obs::MetricsRegistry::Global().GetHistogram(
      std::string("svc.rpc_seconds.") + RpcName(type), ExponentialLatencyBounds());
}

// Stage histograms resolve finer than the per-RPC ones: stages bottom out
// around a microsecond (decode/encode of small payloads), so the buckets
// start three decades lower.
std::vector<double> StageLatencyBounds() {
  std::vector<double> bounds;
  for (double bound = 0.000001; bound < 8.0; bound *= 2.0) {
    bounds.push_back(bound);
  }
  return bounds;
}

// svc.stage.<read|decode|queue|compute|encode|write>_seconds — the
// per-stage latency decomposition of every finished RPC, exemplared with
// the trace id of the worst request seen.
obs::Histogram* StageSeconds(int stage) {
  static obs::Histogram* histograms[obs::kRpcStageCount] = {};
  static std::once_flag once;
  std::call_once(once, [] {
    for (int i = 0; i < obs::kRpcStageCount; ++i) {
      histograms[i] = obs::MetricsRegistry::Global().GetHistogram(
          std::string("svc.stage.") + obs::RpcStageName(static_cast<obs::RpcStage>(i)) +
              "_seconds",
          StageLatencyBounds());
    }
  });
  return histograms[stage];
}

// Dispatch→worker-pickup delay under its ROADMAP name: this is the signal
// adaptive shed thresholds will key on, so it gets a dedicated series in
// addition to svc.stage.queue_seconds.
obs::Histogram* QueueDelaySeconds() {
  static obs::Histogram* histogram = obs::MetricsRegistry::Global().GetHistogram(
      "svc.queue_delay_seconds", StageLatencyBounds());
  return histogram;
}

// Adds `timer`'s elapsed time to one stage; tolerates a null decomposition
// so the handler works for callers that don't measure stages.
void AddStage(obs::RpcStageSeconds* stages, obs::RpcStage stage, const WallTimer& timer) {
  if (stages != nullptr) {
    stages->Add(stage, timer.ElapsedSeconds());
  }
}

// Records a finished RPC's full decomposition into the stage histograms.
void RecordStages(const obs::RpcStageSeconds& stages, uint64_t trace_id) {
  for (int i = 0; i < obs::kRpcStageCount; ++i) {
    StageSeconds(i)->RecordWithExemplar(stages.s[i], trace_id);
  }
  QueueDelaySeconds()->RecordWithExemplar(
      stages.s[static_cast<int>(obs::RpcStage::kQueue)], trace_id);
}

obs::Counter* ConnectionsAccepted() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("svc.connections_accepted");
  return counter;
}

obs::Counter* ConnectionsDropped() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("svc.connections_dropped");
  return counter;
}

obs::Counter* RequestsShed() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter("svc.requests_shed");
  return counter;
}

obs::Counter* RequestsShedAdaptive() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("svc.requests_shed_adaptive");
  return counter;
}

AdmissionOptions AdmissionFromServer(const AuditServerOptions& opts) {
  AdmissionOptions admission;
  admission.target_delay_s = opts.target_queue_delay_s;
  return admission;
}

obs::Counter* SlowReaderDrops() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("svc.slow_reader_drops");
  return counter;
}

obs::Gauge* RequestsActive() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Global().GetGauge("svc.requests_active");
  return gauge;
}

obs::Gauge* ConnectionsActive() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Global().GetGauge("svc.connections_active");
  return gauge;
}

// The reactor parses frames itself from its receive buffers, so it keeps
// the frame-layer counters honest by hand (ReadFrame does this for the
// thread-per-request path).
obs::Counter* FramesRecv() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter("net.frames_recv");
  return counter;
}

obs::Counter* FramesRejected() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("net.frames_rejected");
  return counter;
}

// Add(+delta) now, Add(-delta) at scope exit — keeps the gauge honest on
// every early return.
class GaugeScope {
 public:
  GaugeScope(obs::Gauge* gauge, int64_t delta) : gauge_(gauge), delta_(delta) {
    gauge_->Add(delta_);
  }
  ~GaugeScope() { gauge_->Add(-delta_); }
  GaugeScope(const GaugeScope&) = delete;
  GaugeScope& operator=(const GaugeScope&) = delete;

 private:
  obs::Gauge* gauge_;
  int64_t delta_;
};

}  // namespace

// One epoll shard per thread; each shard owns its loop, its (optional)
// listener and every connection the kernel or the fallback acceptor handed
// it. All Conn state is loop-thread-only — the only cross-thread traffic is
// worker completions entering through EventLoop::Post and the global
// in-flight counter, which is atomic.
struct AuditServer::Reactor {
  // Everything needed to finish accounting for one RPC once its reply
  // leaves the socket: identity for the flight recorder and tail sampler,
  // plus the stage decomposition accumulated so far (read/decode/queue/
  // compute/encode — write is added at flush time).
  struct RpcFinal {
    uint16_t rpc_type = 0;
    uint8_t reply_type = 0;
    uint64_t request_id = 0;
    uint64_t trace_id = 0;
    uint64_t conn_id = 0;
    uint64_t begin_us = 0;  // first buffered byte of the request frame
    obs::RpcStageSeconds stages;
  };

  // A reply in the connection's write buffer, finalized when the absolute
  // out-stream offset `flush_end` has gone to the kernel.
  struct ReplyMarker {
    uint64_t flush_end = 0;
    uint64_t enqueue_us = 0;
    RpcFinal final;
  };

  struct Conn {
    net::Socket socket;
    std::string in;    // received, not yet parsed
    std::string out;   // encoded replies, not yet sent
    size_t out_pos = 0;
    size_t inflight = 0;       // requests handed to the pool, reply pending
    bool want_write = false;   // EPOLLOUT currently armed
    uint64_t deadline_timer = 0;  // nonzero while a partial-frame timer runs
    bool closed = false;

    // Debug/stage-decomposition state (loop-thread-only, like the rest).
    uint64_t id = 0;              // process-wide connection id
    uint64_t established_us = 0;  // accept time, trace-epoch micros
    uint64_t in_since_us = 0;     // when the current partial frame started
    uint64_t out_base = 0;        // absolute offset of out[0] in the stream
    std::deque<ReplyMarker> markers;  // in out-stream order
    // (request id, admitted time) of requests in the worker pool, for the
    // oldest-pending-request introspection.
    std::vector<std::pair<uint64_t, uint64_t>> pending;
  };

  struct Shard {
    net::EventLoop loop;
    net::Socket listener;  // invalid on non-zero shards in fallback mode
    std::thread thread;
    std::unordered_map<int, std::shared_ptr<Conn>> conns;  // keyed by fd
    size_t index = 0;
  };

  // One in-flight kGetDebugInfo fan-out across shards. The last shard to
  // report posts the encoded reply back to the origin loop.
  struct DebugGather {
    std::mutex mu;
    DebugInfo info;
    size_t remaining = 0;
  };

  explicit Reactor(AuditServer* server)
      : server(server), admission(AdmissionFromServer(server->options_)) {}

  AuditServer* server;
  AdmissionController admission;
  std::vector<std::unique_ptr<Shard>> shards;
  std::atomic<size_t> inflight_global{0};
  std::atomic<size_t> next_shard{0};  // fallback round-robin cursor
  bool sharded_accept = true;

  Status Start() {
    const AuditServerOptions& opts = server->options_;
    size_t num_shards = std::max<size_t>(1, opts.reactor_shards);
    // Shard 0 always listens. With several shards it asks for SO_REUSEPORT
    // so its siblings can bind the same port; a single shard needs neither.
    bool want_reuse_port = num_shards > 1;
    Result<net::Socket> first =
        net::TcpListen(opts.port, opts.listen_backlog, want_reuse_port);
    if (!first.ok() && first.status().code() == StatusCode::kUnimplemented) {
      sharded_accept = false;
      first = net::TcpListen(opts.port, opts.listen_backlog, false);
    }
    INDAAS_RETURN_IF_ERROR(first.status());
    INDAAS_ASSIGN_OR_RETURN(server->port_, first->LocalPort());

    for (size_t i = 0; i < num_shards; ++i) {
      auto shard = std::make_unique<Shard>();
      shard->index = i;
      if (!shard->loop.ok()) {
        return InternalError("reactor shard setup failed (epoll unavailable)");
      }
      if (i == 0) {
        shard->listener = std::move(*first);
      } else if (sharded_accept) {
        Result<net::Socket> sibling =
            net::TcpListen(server->port_, opts.listen_backlog, true);
        if (!sibling.ok()) {
          // Lost the SO_REUSEPORT race (or support) mid-way: fall back to
          // shard 0 accepting for everyone. Already-bound siblings keep
          // their listeners; un-bound ones just run connections.
          INDAAS_SLOG(Warn, "svc.shard_listener_unavailable")
              .Kv("shard", i)
              .Kv("fallback", "single_acceptor")
              .Kv("error", sibling.status().ToString());
          sharded_accept = false;
        } else {
          shard->listener = std::move(*sibling);
        }
      }
      shards.push_back(std::move(shard));
    }

    for (auto& shard : shards) {
      Shard* raw = shard.get();
      if (raw->listener.valid()) {
        INDAAS_RETURN_IF_ERROR(raw->loop.Add(raw->listener.fd(), EPOLLIN,
                                             [this, raw](uint32_t) { OnAcceptable(raw); }));
      }
    }
    for (auto& shard : shards) {
      Shard* raw = shard.get();
      raw->thread = std::thread([raw] {
        // Loop threads do the read/parse/flush work; a profile that can't
        // see them misattributes the whole transport layer.
        obs::Profiler::Global().RegisterCurrentThread();
        raw->loop.Run();
      });
    }
    return Status::Ok();
  }

  // Phase one of shutdown: stop accepting. Runs on the caller's thread;
  // the actual closes run on each shard's loop.
  void CloseListeners() {
    for (auto& shard : shards) {
      Shard* raw = shard.get();
      raw->loop.Post([raw] {
        if (raw->listener.valid()) {
          raw->loop.Remove(raw->listener.fd());
          raw->listener.Close();
        }
      });
    }
  }

  // Phase two: stop the loops (pending completions posted by the — by now
  // drained — worker pool run before each loop exits), join, and release
  // whatever connections remain.
  void Join() {
    for (auto& shard : shards) {
      shard->loop.Stop();
    }
    for (auto& shard : shards) {
      if (shard->thread.joinable()) {
        shard->thread.join();
      }
    }
    for (auto& shard : shards) {
      for (auto& [fd, conn] : shard->conns) {
        conn->closed = true;
        conn->socket.Close();
        ConnectionsActive()->Add(-1);
      }
      shard->conns.clear();
      shard->listener.Close();
    }
  }

  // ---- Everything below runs on a shard's loop thread. ----

  void OnAcceptable(Shard* shard) {
    while (true) {
      Result<net::Socket> accepted = net::TcpAccept(shard->listener, 0);
      if (!accepted.ok()) {
        // kDeadlineExceeded = accept queue drained; level-triggered epoll
        // will call us again for the next arrival.
        if (accepted.status().code() != StatusCode::kDeadlineExceeded) {
          INDAAS_SLOG_EVERY(Warn, "svc.accept_failed", 1.0)
              .Kv("shard", shard->index)
              .Kv("error", accepted.status().ToString());
        }
        return;
      }
      ConnectionsAccepted()->Increment();
      if (sharded_accept) {
        AdoptSocket(shard, std::move(*accepted));
        continue;
      }
      Shard* target =
          shards[next_shard.fetch_add(1, std::memory_order_relaxed) % shards.size()].get();
      if (target == shard) {
        AdoptSocket(shard, std::move(*accepted));
      } else {
        // shared_ptr: Post takes a std::function, which must be copyable;
        // the socket itself is move-only.
        auto socket = std::make_shared<net::Socket>(std::move(*accepted));
        target->loop.Post([this, target, socket] { AdoptSocket(target, std::move(*socket)); });
      }
    }
  }

  void AdoptSocket(Shard* shard, net::Socket socket) {
    auto conn = std::make_shared<Conn>();
    conn->socket = std::move(socket);
    conn->id = server->next_conn_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    conn->established_us = obs::TraceNowMicros();
    int fd = conn->socket.fd();
    Status added = shard->loop.Add(
        fd, EPOLLIN, [this, shard, conn](uint32_t events) { OnConnEvent(shard, conn, events); });
    if (!added.ok()) {
      INDAAS_SLOG(Warn, "svc.conn_register_failed")
          .Kv("conn", conn->id)
          .Kv("error", added.ToString());
      return;  // Conn and its socket die here
    }
    shard->conns[fd] = conn;
    ConnectionsActive()->Add(1);
    obs::FlightRecorder::Global().Record(obs::FlightEventType::kAccept, conn->id,
                                         shard->index, 0, 0);
  }

  void OnConnEvent(Shard* shard, const std::shared_ptr<Conn>& conn, uint32_t events) {
    if (conn->closed) {
      return;
    }
    if (events & (EPOLLERR | EPOLLHUP)) {
      CloseConn(shard, conn, /*count_drop=*/false);
      return;
    }
    if (events & EPOLLOUT) {
      FlushWrites(shard, conn);
      if (conn->closed) {
        return;
      }
    }
    if (events & EPOLLIN) {
      ReadAndDispatch(shard, conn);
    }
  }

  void ReadAndDispatch(Shard* shard, const std::shared_ptr<Conn>& conn) {
    char buffer[kReadChunkBytes];
    while (true) {
      Result<size_t> received = conn->socket.RecvSome(buffer, sizeof(buffer));
      if (!received.ok()) {
        // Peer closed (kUnavailable) or errored. A close between frames
        // with nothing owed is the normal end of a keep-alive session; a
        // close mid-frame or with replies still queued is a drop.
        bool mid_stream = !conn->in.empty() || conn->inflight > 0 ||
                          conn->out_pos < conn->out.size();
        CloseConn(shard, conn, mid_stream);
        return;
      }
      if (*received == 0) {
        break;  // would block: receive queue drained
      }
      if (conn->in.empty()) {
        conn->in_since_us = obs::TraceNowMicros();  // a new frame starts here
      }
      conn->in.append(buffer, *received);
      if (*received < sizeof(buffer)) {
        break;  // short read — likely drained; epoll re-arms if not
      }
    }
    ParseFrames(shard, conn);
  }

  void ParseFrames(Shard* shard, const std::shared_ptr<Conn>& conn) {
    const net::FrameLimits& limits = server->options_.limits;
    std::string_view view(conn->in);
    size_t pos = 0;
    while (view.size() - pos >= net::kFrameHeaderBytes) {
      Result<net::FrameHeader> header =
          net::DecodeFrameHeader(view.substr(pos, net::kFrameHeaderBytes), limits);
      if (!header.ok()) {
        INDAAS_SLOG(Warn, "svc.frame_rejected")
            .Kv("conn", conn->id)
            .Kv("error", header.status().ToString());
        FramesRejected()->Increment();
        CloseConn(shard, conn, /*count_drop=*/true);
        return;
      }
      if (view.size() - pos < header->total_bytes()) {
        break;  // partial frame: wait for more bytes (under the deadline)
      }
      size_t offset = pos + net::kFrameHeaderBytes;
      net::Frame frame;
      frame.type = header->type;
      if (header->has_trace_context) {
        Result<obs::TraceContext> trace =
            net::DecodeTraceContext(view.substr(offset, net::kTraceContextBytes));
        if (!trace.ok()) {
          FramesRejected()->Increment();
          CloseConn(shard, conn, /*count_drop=*/true);
          return;
        }
        frame.trace = *trace;
        offset += net::kTraceContextBytes;
      }
      if (header->has_request_id) {
        Result<uint64_t> id =
            net::DecodeRequestId(view.substr(offset, net::kRequestIdBytes));
        if (!id.ok()) {
          INDAAS_SLOG(Warn, "svc.frame_rejected")
              .Kv("conn", conn->id)
              .Kv("error", id.status().ToString());
          FramesRejected()->Increment();
          CloseConn(shard, conn, /*count_drop=*/true);
          return;
        }
        frame.request_id = *id;
        offset += net::kRequestIdBytes;
      }
      frame.payload.assign(view.substr(offset, header->payload_size));
      pos = offset + header->payload_size;
      FramesRecv()->Increment();
      const uint64_t frame_start_us = conn->in_since_us;
      conn->in_since_us = obs::TraceNowMicros();  // remaining bytes = next frame
      DispatchFrame(shard, conn, std::move(frame), frame_start_us);
      if (conn->closed) {
        return;
      }
      view = std::string_view(conn->in);  // DispatchFrame never touches in, but be safe
    }
    conn->in.erase(0, pos);
    if (!conn->in.empty()) {
      ArmReadDeadline(shard, conn);
    } else {
      DisarmReadDeadline(shard, conn);
    }
  }

  void DispatchFrame(Shard* shard, const std::shared_ptr<Conn>& conn, net::Frame frame,
                     uint64_t frame_start_us) {
    MsgType type = static_cast<MsgType>(frame.type);
    uint64_t request_id = frame.request_id;
    const uint64_t now_us = obs::TraceNowMicros();
    const double read_s =
        frame_start_us != 0 && now_us > frame_start_us ? (now_us - frame_start_us) / 1e6 : 0;
    obs::FlightRecorder::Global().Record(obs::FlightEventType::kRpcBegin, request_id,
                                         conn->id, frame.type, frame.trace.trace_id);

    // Seeded with everything the flush-time finalizer needs; each path
    // below fills in its stages before handing it to EnqueueReplyTracked.
    RpcFinal final;
    final.rpc_type = frame.type;
    final.request_id = request_id;
    final.trace_id = frame.trace.trace_id;
    final.conn_id = conn->id;
    final.begin_us = frame_start_us != 0 ? frame_start_us : now_us;
    final.stages.Add(obs::RpcStage::kRead, read_s);

    if (type == MsgType::kGetDebugInfo) {
      // Introspection must answer even when the server is shedding —
      // debugging an overloaded server is this RPC's whole purpose — so it
      // bypasses admission control and fans out across the shards.
      StartDebugGather(shard, conn, request_id);
      return;
    }

    if (type == MsgType::kPing || type == MsgType::kHealth) {
      // Trivial RPCs answer inline on the loop: no locks, no allocation
      // worth a pool round-trip, and they stay responsive under audit load.
      uint8_t reply_type = 0;
      std::string reply_payload;
      WallTimer timer;
      {
        GaugeScope request_scope(RequestsActive(), 1);
        obs::ScopedTraceContext request_trace(frame.trace);
        server->HandleRequest(frame.type, frame.payload, &reply_type, &reply_payload,
                              &final.stages);
      }
      double elapsed = timer.ElapsedSeconds();
      RpcLatency()->Record(elapsed);
      RpcSeconds(frame.type)->Record(elapsed);
      final.reply_type = reply_type;
      EnqueueReplyTracked(shard, conn,
                          net::EncodeFrame(reply_type, reply_payload, {}, request_id), final);
      return;
    }

    const AuditServerOptions& opts = server->options_;
    const bool over_hard_cap =
        !server->running_.load(std::memory_order_relaxed) ||
        conn->inflight >= opts.max_inflight_per_connection ||
        inflight_global.load(std::memory_order_relaxed) >= opts.max_inflight_global;
    // The adaptive controller gets a say only below the hard caps (they
    // already shed) and only for pool-bound work — inline RPCs never queue.
    const bool adaptive_shed =
        !over_hard_cap && opts.adaptive_admission && !admission.Admit();
    if (over_hard_cap || adaptive_shed) {
      RequestsShed()->Increment();
      if (adaptive_shed) {
        RequestsShedAdaptive()->Increment();
      }
      obs::FlightRecorder::Global().Record(obs::FlightEventType::kShed, request_id,
                                           conn->id, frame.type, frame.trace.trace_id);
      INDAAS_SLOG_EVERY(Warn, "svc.request_shed", 1.0)
          .Kv("conn", conn->id)
          .Kv("rpc", RpcName(frame.type))
          .Kv("adaptive", adaptive_shed)
          .Kv("shed_level", static_cast<uint64_t>(admission.shed_level()))
          .Kv("inflight_conn", conn->inflight)
          .Kv("inflight_global", inflight_global.load(std::memory_order_relaxed));
      obs::TailSample shed_sample;
      shed_sample.trace_id = frame.trace.trace_id;
      shed_sample.request_id = request_id;
      shed_sample.rpc_type = frame.type;
      shed_sample.outcome = obs::TailOutcome::kShed;
      shed_sample.conn_id = conn->id;
      shed_sample.end_us = now_us;
      shed_sample.total_s = read_s;
      shed_sample.stages = final.stages;
      obs::TailSampler::Global().Offer(shed_sample);
      Status overloaded =
          adaptive_shed
              ? UnavailableError("server overloaded: queue delay above target (adaptive shed)")
              : UnavailableError("server overloaded: in-flight request cap reached");
      EnqueueReply(shard, conn,
                   net::EncodeFrame(static_cast<uint8_t>(MsgType::kErrorReply),
                                    EncodeErrorReply(overloaded), {}, request_id));
      return;
    }

    conn->inflight++;
    conn->pending.emplace_back(request_id, now_us);
    inflight_global.fetch_add(1, std::memory_order_relaxed);
    // shared_ptr wrappers: ThreadPool tasks are std::function and must be
    // copyable; the payload can be megabytes, so no by-value copies.
    auto payload = std::make_shared<std::string>(std::move(frame.payload));
    uint8_t raw_type = frame.type;
    obs::TraceContext trace = frame.trace;
    const uint64_t dispatch_us = now_us;
    server->workers_->Submit([this, shard, conn, raw_type, request_id, payload, trace,
                              dispatch_us, final]() mutable {
      const uint64_t picked_us = obs::TraceNowMicros();
      const double queue_delay_s =
          picked_us > dispatch_us ? (picked_us - dispatch_us) / 1e6 : 0.0;
      if (queue_delay_s > 0) {
        final.stages.Add(obs::RpcStage::kQueue, queue_delay_s);
      }
      if (server->options_.adaptive_admission) {
        // Every pickup feeds the controller, fast ones included — the
        // window *minimum* is the whole point (a drained queue must pull
        // the shed level back down).
        admission.Record(queue_delay_s);
      }
      uint8_t reply_type = 0;
      std::string reply_payload;
      WallTimer timer;
      {
        GaugeScope request_scope(RequestsActive(), 1);
        // Adopt the request's distributed identity for exactly this
        // request; an invalid context deliberately clears whatever the
        // previous request left on this pool thread.
        obs::ScopedTraceContext request_trace(trace);
        server->HandleRequest(raw_type, *payload, &reply_type, &reply_payload,
                              &final.stages);
      }
      double elapsed = timer.ElapsedSeconds();
      RpcLatency()->Record(elapsed);
      RpcSeconds(raw_type)->Record(elapsed);
      final.reply_type = reply_type;
      // Replies never carry a trace extension (legacy clients expect plain
      // reply frames) and echo the request id so the client can pair them.
      WallTimer frame_encode_timer;
      auto reply =
          std::make_shared<std::string>(net::EncodeFrame(reply_type, reply_payload, {},
                                                         request_id));
      final.stages.Add(obs::RpcStage::kEncode, frame_encode_timer.ElapsedSeconds());
      shard->loop.Post([this, shard, conn, reply, final] {
        inflight_global.fetch_sub(1, std::memory_order_relaxed);
        if (conn->inflight > 0) {
          conn->inflight--;
        }
        for (auto it = conn->pending.begin(); it != conn->pending.end(); ++it) {
          if (it->first == final.request_id) {
            conn->pending.erase(it);
            break;
          }
        }
        if (conn->closed) {
          return;
        }
        EnqueueReplyTracked(shard, conn, std::move(*reply), final);
      });
    });
  }

  void EnqueueReply(Shard* shard, const std::shared_ptr<Conn>& conn, std::string bytes) {
    if (conn->closed) {
      return;
    }
    conn->out.append(bytes);
    FlushWrites(shard, conn);
  }

  // EnqueueReply plus a marker at the reply's end offset: when FlushWrites
  // pushes the last byte to the kernel, the RPC's write stage closes and
  // its full decomposition is recorded.
  void EnqueueReplyTracked(Shard* shard, const std::shared_ptr<Conn>& conn, std::string bytes,
                           const RpcFinal& final) {
    if (conn->closed) {
      return;
    }
    conn->out.append(bytes);
    ReplyMarker marker;
    marker.flush_end = conn->out_base + conn->out.size();
    marker.enqueue_us = obs::TraceNowMicros();
    marker.final = final;
    conn->markers.push_back(std::move(marker));
    FlushWrites(shard, conn);
  }

  // Closes the books on one RPC: write stage, stage histograms with the
  // trace id as exemplar, flight-recorder end event, tail-sampler offer.
  void FinalizeRpc(const ReplyMarker& marker, uint64_t now_us) {
    RpcFinal final = marker.final;
    if (now_us > marker.enqueue_us) {
      final.stages.Add(obs::RpcStage::kWrite, (now_us - marker.enqueue_us) / 1e6);
    }
    RecordStages(final.stages, final.trace_id);
    const double total_s =
        now_us > final.begin_us ? (now_us - final.begin_us) / 1e6 : final.stages.total();
    obs::FlightRecorder::Global().Record(obs::FlightEventType::kRpcEnd, final.request_id,
                                         static_cast<uint64_t>(total_s * 1e6),
                                         final.rpc_type, final.trace_id);
    const bool errored = final.reply_type == static_cast<uint8_t>(MsgType::kErrorReply);
    obs::TailSample sample;
    sample.trace_id = final.trace_id;
    sample.request_id = final.request_id;
    sample.rpc_type = final.rpc_type;
    sample.outcome = errored ? obs::TailOutcome::kError : obs::TailOutcome::kSlow;
    sample.ok = !errored;
    sample.conn_id = final.conn_id;
    sample.end_us = now_us;
    sample.total_s = total_s;
    sample.stages = final.stages;
    obs::TailSampler::Global().Offer(sample);
  }

  void FlushWrites(Shard* shard, const std::shared_ptr<Conn>& conn) {
    while (conn->out_pos < conn->out.size()) {
      Result<size_t> sent =
          conn->socket.SendSome(std::string_view(conn->out).substr(conn->out_pos));
      if (!sent.ok()) {
        INDAAS_SLOG(Warn, "svc.reply_failed")
            .Kv("conn", conn->id)
            .Kv("error", sent.status().ToString());
        CloseConn(shard, conn, /*count_drop=*/true);
        return;
      }
      if (*sent == 0) {
        break;  // kernel send buffer full: wait for EPOLLOUT
      }
      conn->out_pos += *sent;
    }
    // Finalize every RPC whose reply is now fully in the kernel.
    const uint64_t flushed_abs = conn->out_base + conn->out_pos;
    if (!conn->markers.empty() && conn->markers.front().flush_end <= flushed_abs) {
      const uint64_t now_us = obs::TraceNowMicros();
      while (!conn->markers.empty() && conn->markers.front().flush_end <= flushed_abs) {
        FinalizeRpc(conn->markers.front(), now_us);
        conn->markers.pop_front();
      }
    }
    if (conn->out_pos == conn->out.size()) {
      conn->out_base += conn->out.size();
      conn->out.clear();
      conn->out_pos = 0;
      if (conn->want_write) {
        conn->want_write = false;
        (void)shard->loop.Modify(conn->socket.fd(), EPOLLIN);
      }
      return;
    }
    // Blocked with bytes pending: reclaim the sent prefix, then check the
    // slow-reader cap — a peer that reads slower than it asks gets dropped
    // instead of growing an unbounded buffer server-side.
    conn->out.erase(0, conn->out_pos);
    conn->out_base += conn->out_pos;
    conn->out_pos = 0;
    if (conn->out.size() > server->options_.max_write_buffer_bytes) {
      SlowReaderDrops()->Increment();
      obs::FlightRecorder::Global().Record(obs::FlightEventType::kSlowReaderDrop, conn->id,
                                           conn->out.size(), 0, 0);
      INDAAS_SLOG_EVERY(Warn, "svc.slow_reader_drop", 1.0)
          .Kv("conn", conn->id)
          .Kv("unsent_bytes", conn->out.size());
      CloseConn(shard, conn, /*count_drop=*/true);
      return;
    }
    if (!conn->want_write) {
      conn->want_write = true;
      (void)shard->loop.Modify(conn->socket.fd(), EPOLLIN | EPOLLOUT);
    }
  }

  void ArmReadDeadline(Shard* shard, const std::shared_ptr<Conn>& conn) {
    if (conn->deadline_timer != 0 || server->options_.read_deadline_ms <= 0) {
      return;
    }
    conn->deadline_timer = shard->loop.AddTimer(
        server->options_.read_deadline_ms / 1000.0, [this, shard, conn] {
          conn->deadline_timer = 0;
          if (conn->closed) {
            return;
          }
          obs::FlightRecorder::Global().Record(
              obs::FlightEventType::kReadDeadline, conn->id,
              static_cast<uint64_t>(server->options_.read_deadline_ms), 0, 0);
          INDAAS_SLOG(Warn, "svc.read_deadline_drop")
              .Kv("conn", conn->id)
              .Kv("buffered_bytes", conn->in.size())
              .Kv("deadline_ms", server->options_.read_deadline_ms);
          CloseConn(shard, conn, /*count_drop=*/true);
        });
  }

  void DisarmReadDeadline(Shard* shard, const std::shared_ptr<Conn>& conn) {
    if (conn->deadline_timer != 0) {
      shard->loop.CancelTimer(conn->deadline_timer);
      conn->deadline_timer = 0;
    }
  }

  void CloseConn(Shard* shard, const std::shared_ptr<Conn>& conn, bool count_drop) {
    if (conn->closed) {
      return;
    }
    conn->closed = true;
    if (count_drop) {
      ConnectionsDropped()->Increment();
    }
    obs::FlightRecorder::Global().Record(obs::FlightEventType::kConnClose, conn->id,
                                         conn->out.size() - conn->out_pos, 0, 0);
    conn->markers.clear();  // replies that never reached the wire: no write stage
    DisarmReadDeadline(shard, conn);
    int fd = conn->socket.fd();
    shard->loop.Remove(fd);
    shard->conns.erase(fd);
    conn->socket.Close();
    ConnectionsActive()->Add(-1);
  }

  // kGetDebugInfo: collect per-connection detail on every shard's own loop
  // thread (Conn state is loop-thread-only), merge under the gather lock,
  // and have the last shard post the encoded reply back to the origin.
  void StartDebugGather(Shard* origin, const std::shared_ptr<Conn>& conn,
                        uint64_t request_id) {
    auto gather = std::make_shared<DebugGather>();
    server->FillDebugCommon(&gather->info);
    gather->info.reactor_shards = static_cast<uint32_t>(shards.size());
    gather->info.inflight_global = inflight_global.load(std::memory_order_relaxed);
    gather->remaining = shards.size();
    for (auto& shard_owner : shards) {
      Shard* shard = shard_owner.get();
      auto collect = [this, shard, gather, origin, conn, request_id] {
        DebugShard dshard;
        dshard.index = static_cast<uint32_t>(shard->index);
        dshard.has_listener = shard->listener.valid();
        std::vector<DebugConnection> dconns;
        const uint64_t now_us = obs::TraceNowMicros();
        for (const auto& [fd, c] : shard->conns) {
          dshard.connections++;
          dshard.inflight += c->inflight;
          DebugConnection dc;
          dc.id = c->id;
          dc.shard = static_cast<uint32_t>(shard->index);
          dc.age_us = now_us > c->established_us ? now_us - c->established_us : 0;
          dc.in_buffer_bytes = c->in.size();
          dc.write_buffer_bytes = c->out.size() - c->out_pos;
          dc.inflight = c->inflight;
          for (const auto& [id, admitted_us] : c->pending) {
            if (now_us > admitted_us) {
              dc.oldest_pending_us = std::max(dc.oldest_pending_us, now_us - admitted_us);
            }
          }
          dconns.push_back(dc);
        }
        bool last = false;
        {
          std::lock_guard<std::mutex> lock(gather->mu);
          gather->info.shards.push_back(dshard);
          gather->info.connections.insert(gather->info.connections.end(), dconns.begin(),
                                          dconns.end());
          last = --gather->remaining == 0;
        }
        if (!last) {
          return;
        }
        origin->loop.Post([this, origin, conn, request_id, gather] {
          if (conn->closed) {
            return;
          }
          std::sort(gather->info.shards.begin(), gather->info.shards.end(),
                    [](const DebugShard& x, const DebugShard& y) { return x.index < y.index; });
          std::sort(gather->info.connections.begin(), gather->info.connections.end(),
                    [](const DebugConnection& x, const DebugConnection& y) {
                      return x.id < y.id;
                    });
          EnqueueReply(origin, conn,
                       net::EncodeFrame(static_cast<uint8_t>(MsgType::kDebugInfoReply),
                                        EncodeDebugInfo(gather->info), {}, request_id));
        });
      };
      if (shard == origin) {
        collect();  // already on this shard's loop thread
      } else {
        shard->loop.Post(collect);
      }
    }
  }
};

AuditServer::AuditServer(AuditServerOptions options) : options_(std::move(options)) {}

AuditServer::~AuditServer() { Stop(); }

Status AuditServer::Start() {
  if (running_.load()) {
    return FailedPreconditionError("AuditServer already started");
  }
  obs::TailSampler::Global().Configure(options_.slow_rpc_threshold_s, options_.tail_samples);
  // Pre-register the degraded-mode surface so a stats scrape or Prometheus
  // pull shows explicit zeros before the first incident, not absent series
  // (dashboards can then alert on rate() without waiting for first data).
  obs::MetricsRegistry::Global().GetCounter("svc.degraded_audits");
  obs::MetricsRegistry::Global().GetGauge("svc.adaptive_shed_level");
  obs::MetricsRegistry::Global().GetCounter("svc.requests_shed_adaptive");
  // Same rationale for the profiler surface: scrape-visible zeros from the
  // first Start(), whether or not a session ever runs.
  obs::MetricsRegistry::Global().GetCounter("obs.profile.samples");
  obs::MetricsRegistry::Global().GetCounter("obs.profile.dropped");
  obs::MetricsRegistry::Global().GetCounter("obs.profile.truncated_stacks");
  if (options_.profile_hz > 0) {
    obs::ProfileOptions popts;
    popts.hz = std::min(options_.profile_hz, obs::Profiler::kMaxHz);
    popts.alloc = options_.profile_alloc;
    popts.continuous = true;  // sliding-window retention for a server-lifetime session
    Status profiling = obs::Profiler::Global().Start(popts);
    if (profiling.ok()) {
      owns_profiler_session_ = true;
      INDAAS_SLOG(Info, "svc.profiler_started")
          .Kv("hz", static_cast<uint64_t>(popts.hz))
          .Kv("alloc", popts.alloc);
    } else {
      // Another session (a test harness, an embedding process) already owns
      // the profiler; serving without continuous profiles beats not serving.
      INDAAS_SLOG(Warn, "svc.profiler_unavailable")
          .Kv("error", profiling.ToString());
    }
  }
  return options_.mode == ServerMode::kReactor ? StartReactor() : StartThreaded();
}

Status AuditServer::StartReactor() {
  workers_ = std::make_unique<ThreadPool>(std::max<size_t>(1, options_.worker_threads));
  start_us_.store(obs::TraceNowMicros(), std::memory_order_relaxed);
  serving_.store(true, std::memory_order_relaxed);
  running_.store(true);
  reactor_ = std::make_unique<Reactor>(this);
  if (Status started = reactor_->Start(); !started.ok()) {
    running_.store(false);
    serving_.store(false, std::memory_order_relaxed);
    reactor_->Join();
    reactor_.reset();
    workers_.reset();
    return started;
  }
  INDAAS_SLOG(Info, "svc.server_started")
      .Kv("mode", "reactor")
      .Kv("port", port_)
      .Kv("shards", reactor_->shards.size())
      .Kv("workers", workers_->num_threads())
      .Kv("sharded_accept", reactor_->sharded_accept);
  return Status::Ok();
}

Status AuditServer::StartThreaded() {
  INDAAS_ASSIGN_OR_RETURN(listener_, net::TcpListen(options_.port, options_.listen_backlog));
  INDAAS_ASSIGN_OR_RETURN(port_, listener_.LocalPort());
  workers_ = std::make_unique<ThreadPool>(std::max<size_t>(1, options_.worker_threads));
  start_us_.store(obs::TraceNowMicros(), std::memory_order_relaxed);
  serving_.store(true, std::memory_order_relaxed);
  running_.store(true);
  accept_thread_ = std::thread([this] {
    obs::Profiler::Global().RegisterCurrentThread();
    AcceptLoop();
  });
  INDAAS_SLOG(Info, "svc.server_started")
      .Kv("mode", "threaded")
      .Kv("port", port_)
      .Kv("workers", workers_->num_threads());
  return Status::Ok();
}

void AuditServer::Stop() {
  serving_.store(false, std::memory_order_relaxed);
  if (!running_.exchange(false)) {
    return;
  }
  if (owns_profiler_session_) {
    owns_profiler_session_ = false;
    obs::Profiler::Global().Stop();
  }
  if (reactor_) {
    // Order matters: stop accepting, drain the pool (completions are
    // Posted to their shard loops), then stop the loops — EventLoop runs
    // already-posted closures before exiting, so no reply is dropped
    // without at least a flush attempt.
    reactor_->CloseListeners();
    workers_->Wait();
    reactor_->Join();
    reactor_.reset();
    workers_.reset();
    return;
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (workers_) {
    workers_->Wait();
    workers_.reset();
  }
  listener_.Close();
}

size_t AuditServer::reactor_shards() const { return reactor_ ? reactor_->shards.size() : 0; }

void AuditServer::AcceptLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    Result<net::Socket> accepted = net::TcpAccept(listener_, kIdlePollMs);
    if (!accepted.ok()) {
      // Timeout is the idle heartbeat; anything else is logged and survived.
      if (accepted.status().code() != StatusCode::kDeadlineExceeded) {
        INDAAS_SLOG_EVERY(Warn, "svc.accept_failed", 1.0)
            .Kv("error", accepted.status().ToString());
      }
      continue;
    }
    ConnectionsAccepted()->Increment();
    // shared_ptr: the lambda lands in a std::function, which must be
    // copyable; the socket itself is move-only.
    auto socket = std::make_shared<net::Socket>(std::move(*accepted));
    workers_->Submit([this, socket] { ServeConnection(socket); });
  }
}

void AuditServer::ServeConnection(std::shared_ptr<net::Socket> socket) {
  GaugeScope connection_scope(ConnectionsActive(), 1);
  const uint64_t conn_id = next_conn_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  obs::FlightRecorder::Global().Record(obs::FlightEventType::kAccept, conn_id, 0, 0, 0);
  while (running_.load(std::memory_order_relaxed)) {
    // Idle wait in short slices so Stop() is never blocked on a quiet
    // keep-alive connection.
    Status readable = socket->WaitReadable(kIdlePollMs);
    if (readable.code() == StatusCode::kDeadlineExceeded) {
      continue;
    }
    if (!readable.ok()) {
      return;
    }
    WallTimer read_timer;
    Result<net::Frame> frame = net::ReadFrame(*socket, options_.limits, options_.io_timeout_ms);
    if (!frame.ok()) {
      // A clean close between requests is the normal end of a session;
      // anything else (framing violation, mid-frame timeout) is a drop.
      if (frame.status().code() != StatusCode::kUnavailable) {
        INDAAS_SLOG(Warn, "svc.conn_dropped")
            .Kv("conn", conn_id)
            .Kv("error", frame.status().ToString());
        ConnectionsDropped()->Increment();
      }
      return;
    }
    const uint64_t begin_us = obs::TraceNowMicros();
    obs::RpcStageSeconds stages;
    stages.Add(obs::RpcStage::kRead, read_timer.ElapsedSeconds());
    obs::FlightRecorder::Global().Record(obs::FlightEventType::kRpcBegin, frame->request_id,
                                         conn_id, frame->type, frame->trace.trace_id);
    uint8_t reply_type = 0;
    std::string reply_payload;
    WallTimer timer;
    {
      GaugeScope request_scope(RequestsActive(), 1);
      // Adopt the request's distributed identity for exactly this request:
      // installing an invalid context for traceless frames deliberately
      // clears whatever the previous request left on this pool thread.
      obs::ScopedTraceContext request_trace(frame->trace);
      HandleRequest(frame->type, frame->payload, &reply_type, &reply_payload, &stages);
    }
    double elapsed = timer.ElapsedSeconds();
    RpcLatency()->Record(elapsed);
    RpcSeconds(frame->type)->Record(elapsed);
    // Echo the request id (if any) so pipelined clients work against both
    // server modes; plain requests get byte-identical plain replies.
    WallTimer write_timer;
    if (Status s = net::WriteFrame(*socket, reply_type, reply_payload, options_.io_timeout_ms,
                                   {}, frame->request_id);
        !s.ok()) {
      INDAAS_SLOG(Warn, "svc.reply_failed")
          .Kv("conn", conn_id)
          .Kv("error", s.ToString());
      ConnectionsDropped()->Increment();
      return;
    }
    stages.Add(obs::RpcStage::kWrite, write_timer.ElapsedSeconds());
    const uint64_t end_us = obs::TraceNowMicros();
    RecordStages(stages, frame->trace.trace_id);
    const double total_s = stages.s[static_cast<int>(obs::RpcStage::kRead)] + elapsed +
                           stages.s[static_cast<int>(obs::RpcStage::kWrite)];
    obs::FlightRecorder::Global().Record(obs::FlightEventType::kRpcEnd, frame->request_id,
                                         static_cast<uint64_t>(total_s * 1e6), frame->type,
                                         frame->trace.trace_id);
    const bool errored = reply_type == static_cast<uint8_t>(MsgType::kErrorReply);
    obs::TailSample sample;
    sample.trace_id = frame->trace.trace_id;
    sample.request_id = frame->request_id;
    sample.rpc_type = frame->type;
    sample.outcome = errored ? obs::TailOutcome::kError : obs::TailOutcome::kSlow;
    sample.ok = !errored;
    sample.conn_id = conn_id;
    sample.end_us = end_us;
    sample.total_s = total_s;
    sample.stages = stages;
    obs::TailSampler::Global().Offer(sample);
    (void)begin_us;
  }
}

void AuditServer::FillDebugCommon(DebugInfo* info) {
  info->uptime_us = obs::TraceNowMicros() - start_us_.load(std::memory_order_relaxed);
  info->mode = static_cast<uint8_t>(options_.mode);
  std::vector<obs::FlightEvent> events = obs::FlightRecorder::Global().Snapshot();
  constexpr size_t kMaxEvents = 128;
  size_t first = events.size() > kMaxEvents ? events.size() - kMaxEvents : 0;
  info->events.reserve(events.size() - first);
  for (size_t i = first; i < events.size(); ++i) {
    const obs::FlightEvent& e = events[i];
    DebugFlightEvent out;
    out.t_us = e.t_us;
    out.trace_id = e.trace_id;
    out.a = e.a;
    out.b = e.b;
    out.tid = e.tid;
    out.type = static_cast<uint16_t>(e.type);
    out.code = e.code;
    info->events.push_back(out);
  }
  for (const obs::TailSample& s : obs::TailSampler::Global().TopSlowest(32)) {
    DebugSlowRpc out;
    out.trace_id = s.trace_id;
    out.request_id = s.request_id;
    out.rpc_type = s.rpc_type;
    out.outcome = static_cast<uint8_t>(s.outcome);
    out.ok = s.ok;
    out.conn_id = s.conn_id;
    out.end_us = s.end_us;
    out.total_s = s.total_s;
    for (int i = 0; i < obs::kRpcStageCount; ++i) out.stage_s[i] = s.stages.s[i];
    info->slowest.push_back(out);
  }
}

void AuditServer::HandleRequest(uint8_t type, const std::string& payload, uint8_t* reply_type,
                                std::string* reply_payload, obs::RpcStageSeconds* stages) {
  static obs::Counter* errors = obs::MetricsRegistry::Global().GetCounter("svc.rpc_errors");
  obs::MetricsRegistry::Global()
      .GetCounter(std::string("svc.rpcs.") + RpcName(type))
      ->Increment();
  INDAAS_TRACE_SPAN_NAMED(span, "svc.rpc");
  span.Annotate("type", RpcName(type));

  Status error;
  switch (static_cast<MsgType>(type)) {
    case MsgType::kPing: {
      *reply_type = static_cast<uint8_t>(MsgType::kPong);
      reply_payload->clear();
      return;
    }
    case MsgType::kGetStats: {
      WallTimer compute_timer;
      ServerStats stats;
      stats.uptime_us =
          obs::TraceNowMicros() - start_us_.load(std::memory_order_relaxed);
      {
        std::shared_lock<std::shared_mutex> lock(agent_mu_);
        stats.depdb_records = agent_.depdb().NetworkCount() +
                              agent_.depdb().HardwareCount() +
                              agent_.depdb().SoftwareCount();
      }
      stats.metrics = obs::MetricsRegistry::Global().Snapshot();
      AddStage(stages, obs::RpcStage::kCompute, compute_timer);
      WallTimer encode_timer;
      *reply_type = static_cast<uint8_t>(MsgType::kStatsReply);
      *reply_payload = EncodeServerStats(stats);
      AddStage(stages, obs::RpcStage::kEncode, encode_timer);
      return;
    }
    case MsgType::kHealth: {
      HealthStatus health;
      health.serving = serving();
      health.uptime_us =
          obs::TraceNowMicros() - start_us_.load(std::memory_order_relaxed);
      *reply_type = static_cast<uint8_t>(MsgType::kHealthReply);
      *reply_payload = EncodeHealthStatus(health);
      return;
    }
    case MsgType::kGetDebugInfo: {
      // Threaded-mode answer: no per-shard/per-connection detail (the
      // reactor intercepts this type before admission control and runs the
      // cross-shard gather instead of reaching here).
      WallTimer compute_timer;
      DebugInfo info;
      FillDebugCommon(&info);
      AddStage(stages, obs::RpcStage::kCompute, compute_timer);
      WallTimer encode_timer;
      *reply_type = static_cast<uint8_t>(MsgType::kDebugInfoReply);
      *reply_payload = EncodeDebugInfo(info);
      AddStage(stages, obs::RpcStage::kEncode, encode_timer);
      return;
    }
    case MsgType::kImportDepDb: {
      WallTimer compute_timer;
      std::unique_lock<std::shared_mutex> lock(agent_mu_);
      error = agent_.depdb().ImportText(payload);
      if (error.ok()) {
        ImportAck ack;
        ack.network = agent_.depdb().NetworkCount();
        ack.hardware = agent_.depdb().HardwareCount();
        ack.software = agent_.depdb().SoftwareCount();
        AddStage(stages, obs::RpcStage::kCompute, compute_timer);
        WallTimer encode_timer;
        *reply_type = static_cast<uint8_t>(MsgType::kImportAck);
        *reply_payload = EncodeImportAck(ack);
        AddStage(stages, obs::RpcStage::kEncode, encode_timer);
        return;
      }
      AddStage(stages, obs::RpcStage::kCompute, compute_timer);
      break;
    }
    case MsgType::kAuditRequest: {
      WallTimer decode_timer;
      Result<AuditSpecification> spec = DecodeAuditSpecification(payload);
      AddStage(stages, obs::RpcStage::kDecode, decode_timer);
      if (spec.ok()) {
        WallTimer compute_timer;
        std::shared_lock<std::shared_mutex> lock(agent_mu_);
        Result<SiaAuditReport> report = agent_.AuditStructural(*spec);
        AddStage(stages, obs::RpcStage::kCompute, compute_timer);
        if (report.ok()) {
          WallTimer encode_timer;
          *reply_type = static_cast<uint8_t>(MsgType::kAuditReport);
          *reply_payload = EncodeSiaAuditReport(*report);
          AddStage(stages, obs::RpcStage::kEncode, encode_timer);
          return;
        }
        error = report.status();
      } else {
        error = spec.status();
      }
      break;
    }
    case MsgType::kPiaRequest: {
      WallTimer decode_timer;
      Result<PiaRequest> request = DecodePiaRequest(payload);
      AddStage(stages, obs::RpcStage::kDecode, decode_timer);
      if (request.ok()) {
        // PIA runs over the request's own provider sets, not the DepDB; no
        // agent lock needed.
        WallTimer compute_timer;
        Result<PiaAuditReport> report = agent_.AuditPrivate(request->providers,
                                                            request->options);
        AddStage(stages, obs::RpcStage::kCompute, compute_timer);
        if (report.ok()) {
          WallTimer encode_timer;
          *reply_type = static_cast<uint8_t>(MsgType::kPiaReport);
          *reply_payload = EncodePiaAuditReport(*report);
          AddStage(stages, obs::RpcStage::kEncode, encode_timer);
          return;
        }
        error = report.status();
      } else {
        error = request.status();
      }
      break;
    }
    case MsgType::kGetProfile: {
      // Deliberately slow by design: the handler blocks on the capture
      // window (seconds, capped at kMaxProfileSeconds by the decoder), so
      // it occupies one pool worker — the same admission control that
      // protects audits bounds how many concurrent captures a client can
      // pin, and the profiler itself allows one temporary session at a
      // time anyway.
      WallTimer decode_timer;
      Result<ProfileRequest> request = DecodeProfileRequest(payload);
      AddStage(stages, obs::RpcStage::kDecode, decode_timer);
      if (request.ok()) {
        WallTimer compute_timer;
        Result<obs::ProfileData> window = obs::Profiler::Global().WindowedCapture(
            request->hz, request->seconds, request->alloc);
        AddStage(stages, obs::RpcStage::kCompute, compute_timer);
        if (window.ok()) {
          WallTimer encode_timer;
          ProfileReply profile;
          profile.dump = obs::ProfileToDumpText(*window);
          if (profile.dump.size() > kMaxProfileDumpBytes) {
            error = InternalError("profile dump exceeds wire cap");
          } else {
            *reply_type = static_cast<uint8_t>(MsgType::kProfileReply);
            *reply_payload = EncodeProfileReply(profile);
            AddStage(stages, obs::RpcStage::kEncode, encode_timer);
            return;
          }
        } else {
          error = window.status();
        }
      } else {
        error = request.status();
      }
      break;
    }
    default:
      error = ProtocolError("unknown request type " + std::to_string(type));
      break;
  }
  errors->Increment();
  span.Annotate("error", error.ToString());
  *reply_type = static_cast<uint8_t>(MsgType::kErrorReply);
  *reply_payload = EncodeErrorReply(error);
}

}  // namespace svc
}  // namespace indaas
