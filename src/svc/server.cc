#include "src/svc/server.h"

#include <mutex>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/svc/proto.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace indaas {
namespace svc {
namespace {

// Poll slice for idle waits: bounds how long Stop() waits on a quiet
// listener or an idle keep-alive connection.
constexpr int kIdlePollMs = 100;

const char* MsgTypeName(uint8_t type) {
  switch (static_cast<MsgType>(type)) {
    case MsgType::kPing:
      return "ping";
    case MsgType::kImportDepDb:
      return "import_depdb";
    case MsgType::kAuditRequest:
      return "audit";
    case MsgType::kPiaRequest:
      return "pia";
    default:
      return "unknown";
  }
}

obs::Histogram* RpcLatency() {
  static obs::Histogram* histogram = obs::MetricsRegistry::Global().GetHistogram(
      "svc.rpc_latency_seconds",
      {0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
       2.5, 5.0, 10.0});
  return histogram;
}

}  // namespace

AuditServer::AuditServer(AuditServerOptions options) : options_(std::move(options)) {}

AuditServer::~AuditServer() { Stop(); }

Status AuditServer::Start() {
  if (running_.load()) {
    return FailedPreconditionError("AuditServer already started");
  }
  INDAAS_ASSIGN_OR_RETURN(listener_, net::TcpListen(options_.port));
  INDAAS_ASSIGN_OR_RETURN(port_, listener_.LocalPort());
  workers_ = std::make_unique<ThreadPool>(std::max<size_t>(1, options_.worker_threads));
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  INDAAS_LOG(Info) << "AuditServer listening on port " << port_ << " ("
                   << workers_->num_threads() << " workers)";
  return Status::Ok();
}

void AuditServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (workers_) {
    workers_->Wait();
    workers_.reset();
  }
  listener_.Close();
}

void AuditServer::AcceptLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    Result<net::Socket> accepted = net::TcpAccept(listener_, kIdlePollMs);
    if (!accepted.ok()) {
      // Timeout is the idle heartbeat; anything else is logged and survived.
      if (accepted.status().code() != StatusCode::kDeadlineExceeded) {
        INDAAS_LOG(Warning) << "accept failed: " << accepted.status();
      }
      continue;
    }
    static obs::Counter* accepted_total =
        obs::MetricsRegistry::Global().GetCounter("svc.connections_accepted");
    accepted_total->Increment();
    // shared_ptr: the lambda lands in a std::function, which must be
    // copyable; the socket itself is move-only.
    auto socket = std::make_shared<net::Socket>(std::move(*accepted));
    workers_->Submit([this, socket] { ServeConnection(socket); });
  }
}

void AuditServer::ServeConnection(std::shared_ptr<net::Socket> socket) {
  static obs::Gauge* active = obs::MetricsRegistry::Global().GetGauge("svc.requests_active");
  while (running_.load(std::memory_order_relaxed)) {
    // Idle wait in short slices so Stop() is never blocked on a quiet
    // keep-alive connection.
    Status readable = socket->WaitReadable(kIdlePollMs);
    if (readable.code() == StatusCode::kDeadlineExceeded) {
      continue;
    }
    if (!readable.ok()) {
      return;
    }
    Result<net::Frame> frame = net::ReadFrame(*socket, options_.limits, options_.io_timeout_ms);
    if (!frame.ok()) {
      // A clean close between requests is the normal end of a session.
      if (frame.status().code() != StatusCode::kUnavailable) {
        INDAAS_LOG(Warning) << "closing connection: " << frame.status();
      }
      return;
    }
    active->Add(1);
    WallTimer timer;
    uint8_t reply_type = 0;
    std::string reply_payload;
    HandleRequest(frame->type, frame->payload, &reply_type, &reply_payload);
    RpcLatency()->Record(timer.ElapsedSeconds());
    active->Add(-1);
    if (Status s = net::WriteFrame(*socket, reply_type, reply_payload, options_.io_timeout_ms);
        !s.ok()) {
      INDAAS_LOG(Warning) << "reply failed: " << s;
      return;
    }
  }
}

void AuditServer::HandleRequest(uint8_t type, const std::string& payload, uint8_t* reply_type,
                                std::string* reply_payload) {
  static obs::Counter* errors = obs::MetricsRegistry::Global().GetCounter("svc.rpc_errors");
  obs::MetricsRegistry::Global()
      .GetCounter(std::string("svc.rpcs.") + MsgTypeName(type))
      ->Increment();
  INDAAS_TRACE_SPAN_NAMED(span, "svc.rpc");
  span.Annotate("type", MsgTypeName(type));

  Status error;
  switch (static_cast<MsgType>(type)) {
    case MsgType::kPing: {
      *reply_type = static_cast<uint8_t>(MsgType::kPong);
      reply_payload->clear();
      return;
    }
    case MsgType::kImportDepDb: {
      std::unique_lock<std::shared_mutex> lock(agent_mu_);
      error = agent_.depdb().ImportText(payload);
      if (error.ok()) {
        ImportAck ack;
        ack.network = agent_.depdb().NetworkCount();
        ack.hardware = agent_.depdb().HardwareCount();
        ack.software = agent_.depdb().SoftwareCount();
        *reply_type = static_cast<uint8_t>(MsgType::kImportAck);
        *reply_payload = EncodeImportAck(ack);
        return;
      }
      break;
    }
    case MsgType::kAuditRequest: {
      Result<AuditSpecification> spec = DecodeAuditSpecification(payload);
      if (spec.ok()) {
        std::shared_lock<std::shared_mutex> lock(agent_mu_);
        Result<SiaAuditReport> report = agent_.AuditStructural(*spec);
        if (report.ok()) {
          *reply_type = static_cast<uint8_t>(MsgType::kAuditReport);
          *reply_payload = EncodeSiaAuditReport(*report);
          return;
        }
        error = report.status();
      } else {
        error = spec.status();
      }
      break;
    }
    case MsgType::kPiaRequest: {
      Result<PiaRequest> request = DecodePiaRequest(payload);
      if (request.ok()) {
        // PIA runs over the request's own provider sets, not the DepDB; no
        // agent lock needed.
        Result<PiaAuditReport> report = agent_.AuditPrivate(request->providers,
                                                            request->options);
        if (report.ok()) {
          *reply_type = static_cast<uint8_t>(MsgType::kPiaReport);
          *reply_payload = EncodePiaAuditReport(*report);
          return;
        }
        error = report.status();
      } else {
        error = request.status();
      }
      break;
    }
    default:
      error = ProtocolError("unknown request type " + std::to_string(type));
      break;
  }
  errors->Increment();
  span.Annotate("error", error.ToString());
  *reply_type = static_cast<uint8_t>(MsgType::kErrorReply);
  *reply_payload = EncodeErrorReply(error);
}

}  // namespace svc
}  // namespace indaas
