#include "src/svc/server.h"

#include <sys/epoll.h>

#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/net/event_loop.h"
#include "src/obs/metrics.h"
#include "src/obs/propagate.h"
#include "src/obs/trace.h"
#include "src/svc/proto.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace indaas {
namespace svc {
namespace {

// Poll slice for idle waits: bounds how long Stop() waits on a quiet
// listener or an idle keep-alive connection (thread-per-request mode only;
// the reactor blocks in epoll_wait and is woken explicitly).
constexpr int kIdlePollMs = 100;

// Read chunk for the reactor's non-blocking receive path. Level-triggered
// epoll re-arms automatically, so a connection with more than this pending
// is simply revisited next iteration instead of monopolizing the loop.
constexpr size_t kReadChunkBytes = 64 * 1024;

const char* RpcName(uint8_t type) { return MsgTypeName(static_cast<MsgType>(type)); }

obs::Histogram* RpcLatency() {
  static obs::Histogram* histogram = obs::MetricsRegistry::Global().GetHistogram(
      "svc.rpc_latency_seconds",
      {0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
       2.5, 5.0, 10.0});
  return histogram;
}

// Geometric bucket bounds for the per-RPC latency histograms: 100 µs up to
// ~13 s, doubling per bucket (18 buckets + overflow). Exponential bounds
// keep relative error roughly constant across four decades of latency.
std::vector<double> ExponentialLatencyBounds() {
  std::vector<double> bounds;
  for (double bound = 0.0001; bound < 16.0; bound *= 2.0) {
    bounds.push_back(bound);
  }
  return bounds;
}

obs::Histogram* RpcSeconds(uint8_t type) {
  return obs::MetricsRegistry::Global().GetHistogram(
      std::string("svc.rpc_seconds.") + RpcName(type), ExponentialLatencyBounds());
}

obs::Counter* ConnectionsAccepted() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("svc.connections_accepted");
  return counter;
}

obs::Counter* ConnectionsDropped() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("svc.connections_dropped");
  return counter;
}

obs::Counter* RequestsShed() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter("svc.requests_shed");
  return counter;
}

obs::Counter* SlowReaderDrops() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("svc.slow_reader_drops");
  return counter;
}

obs::Gauge* RequestsActive() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Global().GetGauge("svc.requests_active");
  return gauge;
}

obs::Gauge* ConnectionsActive() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Global().GetGauge("svc.connections_active");
  return gauge;
}

// The reactor parses frames itself from its receive buffers, so it keeps
// the frame-layer counters honest by hand (ReadFrame does this for the
// thread-per-request path).
obs::Counter* FramesRecv() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter("net.frames_recv");
  return counter;
}

obs::Counter* FramesRejected() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("net.frames_rejected");
  return counter;
}

// Add(+delta) now, Add(-delta) at scope exit — keeps the gauge honest on
// every early return.
class GaugeScope {
 public:
  GaugeScope(obs::Gauge* gauge, int64_t delta) : gauge_(gauge), delta_(delta) {
    gauge_->Add(delta_);
  }
  ~GaugeScope() { gauge_->Add(-delta_); }
  GaugeScope(const GaugeScope&) = delete;
  GaugeScope& operator=(const GaugeScope&) = delete;

 private:
  obs::Gauge* gauge_;
  int64_t delta_;
};

}  // namespace

// One epoll shard per thread; each shard owns its loop, its (optional)
// listener and every connection the kernel or the fallback acceptor handed
// it. All Conn state is loop-thread-only — the only cross-thread traffic is
// worker completions entering through EventLoop::Post and the global
// in-flight counter, which is atomic.
struct AuditServer::Reactor {
  struct Conn {
    net::Socket socket;
    std::string in;    // received, not yet parsed
    std::string out;   // encoded replies, not yet sent
    size_t out_pos = 0;
    size_t inflight = 0;       // requests handed to the pool, reply pending
    bool want_write = false;   // EPOLLOUT currently armed
    uint64_t deadline_timer = 0;  // nonzero while a partial-frame timer runs
    bool closed = false;
  };

  struct Shard {
    net::EventLoop loop;
    net::Socket listener;  // invalid on non-zero shards in fallback mode
    std::thread thread;
    std::unordered_map<int, std::shared_ptr<Conn>> conns;  // keyed by fd
  };

  explicit Reactor(AuditServer* server) : server(server) {}

  AuditServer* server;
  std::vector<std::unique_ptr<Shard>> shards;
  std::atomic<size_t> inflight_global{0};
  std::atomic<size_t> next_shard{0};  // fallback round-robin cursor
  bool sharded_accept = true;

  Status Start() {
    const AuditServerOptions& opts = server->options_;
    size_t num_shards = std::max<size_t>(1, opts.reactor_shards);
    // Shard 0 always listens. With several shards it asks for SO_REUSEPORT
    // so its siblings can bind the same port; a single shard needs neither.
    bool want_reuse_port = num_shards > 1;
    Result<net::Socket> first =
        net::TcpListen(opts.port, opts.listen_backlog, want_reuse_port);
    if (!first.ok() && first.status().code() == StatusCode::kUnimplemented) {
      sharded_accept = false;
      first = net::TcpListen(opts.port, opts.listen_backlog, false);
    }
    INDAAS_RETURN_IF_ERROR(first.status());
    INDAAS_ASSIGN_OR_RETURN(server->port_, first->LocalPort());

    for (size_t i = 0; i < num_shards; ++i) {
      auto shard = std::make_unique<Shard>();
      if (!shard->loop.ok()) {
        return InternalError("reactor shard setup failed (epoll unavailable)");
      }
      if (i == 0) {
        shard->listener = std::move(*first);
      } else if (sharded_accept) {
        Result<net::Socket> sibling =
            net::TcpListen(server->port_, opts.listen_backlog, true);
        if (!sibling.ok()) {
          // Lost the SO_REUSEPORT race (or support) mid-way: fall back to
          // shard 0 accepting for everyone. Already-bound siblings keep
          // their listeners; un-bound ones just run connections.
          INDAAS_LOG(Warning) << "shard " << i
                              << " listener unavailable, falling back to single acceptor: "
                              << sibling.status();
          sharded_accept = false;
        } else {
          shard->listener = std::move(*sibling);
        }
      }
      shards.push_back(std::move(shard));
    }

    for (auto& shard : shards) {
      Shard* raw = shard.get();
      if (raw->listener.valid()) {
        INDAAS_RETURN_IF_ERROR(raw->loop.Add(raw->listener.fd(), EPOLLIN,
                                             [this, raw](uint32_t) { OnAcceptable(raw); }));
      }
    }
    for (auto& shard : shards) {
      Shard* raw = shard.get();
      raw->thread = std::thread([raw] { raw->loop.Run(); });
    }
    return Status::Ok();
  }

  // Phase one of shutdown: stop accepting. Runs on the caller's thread;
  // the actual closes run on each shard's loop.
  void CloseListeners() {
    for (auto& shard : shards) {
      Shard* raw = shard.get();
      raw->loop.Post([raw] {
        if (raw->listener.valid()) {
          raw->loop.Remove(raw->listener.fd());
          raw->listener.Close();
        }
      });
    }
  }

  // Phase two: stop the loops (pending completions posted by the — by now
  // drained — worker pool run before each loop exits), join, and release
  // whatever connections remain.
  void Join() {
    for (auto& shard : shards) {
      shard->loop.Stop();
    }
    for (auto& shard : shards) {
      if (shard->thread.joinable()) {
        shard->thread.join();
      }
    }
    for (auto& shard : shards) {
      for (auto& [fd, conn] : shard->conns) {
        conn->closed = true;
        conn->socket.Close();
        ConnectionsActive()->Add(-1);
      }
      shard->conns.clear();
      shard->listener.Close();
    }
  }

  // ---- Everything below runs on a shard's loop thread. ----

  void OnAcceptable(Shard* shard) {
    while (true) {
      Result<net::Socket> accepted = net::TcpAccept(shard->listener, 0);
      if (!accepted.ok()) {
        // kDeadlineExceeded = accept queue drained; level-triggered epoll
        // will call us again for the next arrival.
        if (accepted.status().code() != StatusCode::kDeadlineExceeded) {
          INDAAS_LOG(Warning) << "accept failed: " << accepted.status();
        }
        return;
      }
      ConnectionsAccepted()->Increment();
      if (sharded_accept) {
        AdoptSocket(shard, std::move(*accepted));
        continue;
      }
      Shard* target =
          shards[next_shard.fetch_add(1, std::memory_order_relaxed) % shards.size()].get();
      if (target == shard) {
        AdoptSocket(shard, std::move(*accepted));
      } else {
        // shared_ptr: Post takes a std::function, which must be copyable;
        // the socket itself is move-only.
        auto socket = std::make_shared<net::Socket>(std::move(*accepted));
        target->loop.Post([this, target, socket] { AdoptSocket(target, std::move(*socket)); });
      }
    }
  }

  void AdoptSocket(Shard* shard, net::Socket socket) {
    auto conn = std::make_shared<Conn>();
    conn->socket = std::move(socket);
    int fd = conn->socket.fd();
    Status added = shard->loop.Add(
        fd, EPOLLIN, [this, shard, conn](uint32_t events) { OnConnEvent(shard, conn, events); });
    if (!added.ok()) {
      INDAAS_LOG(Warning) << "connection registration failed: " << added;
      return;  // Conn and its socket die here
    }
    shard->conns[fd] = conn;
    ConnectionsActive()->Add(1);
  }

  void OnConnEvent(Shard* shard, const std::shared_ptr<Conn>& conn, uint32_t events) {
    if (conn->closed) {
      return;
    }
    if (events & (EPOLLERR | EPOLLHUP)) {
      CloseConn(shard, conn, /*count_drop=*/false);
      return;
    }
    if (events & EPOLLOUT) {
      FlushWrites(shard, conn);
      if (conn->closed) {
        return;
      }
    }
    if (events & EPOLLIN) {
      ReadAndDispatch(shard, conn);
    }
  }

  void ReadAndDispatch(Shard* shard, const std::shared_ptr<Conn>& conn) {
    char buffer[kReadChunkBytes];
    while (true) {
      Result<size_t> received = conn->socket.RecvSome(buffer, sizeof(buffer));
      if (!received.ok()) {
        // Peer closed (kUnavailable) or errored. A close between frames
        // with nothing owed is the normal end of a keep-alive session; a
        // close mid-frame or with replies still queued is a drop.
        bool mid_stream = !conn->in.empty() || conn->inflight > 0 ||
                          conn->out_pos < conn->out.size();
        CloseConn(shard, conn, mid_stream);
        return;
      }
      if (*received == 0) {
        break;  // would block: receive queue drained
      }
      conn->in.append(buffer, *received);
      if (*received < sizeof(buffer)) {
        break;  // short read — likely drained; epoll re-arms if not
      }
    }
    ParseFrames(shard, conn);
  }

  void ParseFrames(Shard* shard, const std::shared_ptr<Conn>& conn) {
    const net::FrameLimits& limits = server->options_.limits;
    std::string_view view(conn->in);
    size_t pos = 0;
    while (view.size() - pos >= net::kFrameHeaderBytes) {
      Result<net::FrameHeader> header =
          net::DecodeFrameHeader(view.substr(pos, net::kFrameHeaderBytes), limits);
      if (!header.ok()) {
        INDAAS_LOG(Warning) << "closing connection: " << header.status();
        FramesRejected()->Increment();
        CloseConn(shard, conn, /*count_drop=*/true);
        return;
      }
      if (view.size() - pos < header->total_bytes()) {
        break;  // partial frame: wait for more bytes (under the deadline)
      }
      size_t offset = pos + net::kFrameHeaderBytes;
      net::Frame frame;
      frame.type = header->type;
      if (header->has_trace_context) {
        Result<obs::TraceContext> trace =
            net::DecodeTraceContext(view.substr(offset, net::kTraceContextBytes));
        if (!trace.ok()) {
          FramesRejected()->Increment();
          CloseConn(shard, conn, /*count_drop=*/true);
          return;
        }
        frame.trace = *trace;
        offset += net::kTraceContextBytes;
      }
      if (header->has_request_id) {
        Result<uint64_t> id =
            net::DecodeRequestId(view.substr(offset, net::kRequestIdBytes));
        if (!id.ok()) {
          INDAAS_LOG(Warning) << "closing connection: " << id.status();
          FramesRejected()->Increment();
          CloseConn(shard, conn, /*count_drop=*/true);
          return;
        }
        frame.request_id = *id;
        offset += net::kRequestIdBytes;
      }
      frame.payload.assign(view.substr(offset, header->payload_size));
      pos = offset + header->payload_size;
      FramesRecv()->Increment();
      DispatchFrame(shard, conn, std::move(frame));
      if (conn->closed) {
        return;
      }
      view = std::string_view(conn->in);  // DispatchFrame never touches in, but be safe
    }
    conn->in.erase(0, pos);
    if (!conn->in.empty()) {
      ArmReadDeadline(shard, conn);
    } else {
      DisarmReadDeadline(shard, conn);
    }
  }

  void DispatchFrame(Shard* shard, const std::shared_ptr<Conn>& conn, net::Frame frame) {
    MsgType type = static_cast<MsgType>(frame.type);
    uint64_t request_id = frame.request_id;
    if (type == MsgType::kPing || type == MsgType::kHealth) {
      // Trivial RPCs answer inline on the loop: no locks, no allocation
      // worth a pool round-trip, and they stay responsive under audit load.
      uint8_t reply_type = 0;
      std::string reply_payload;
      WallTimer timer;
      {
        GaugeScope request_scope(RequestsActive(), 1);
        obs::ScopedTraceContext request_trace(frame.trace);
        server->HandleRequest(frame.type, frame.payload, &reply_type, &reply_payload);
      }
      double elapsed = timer.ElapsedSeconds();
      RpcLatency()->Record(elapsed);
      RpcSeconds(frame.type)->Record(elapsed);
      EnqueueReply(shard, conn, net::EncodeFrame(reply_type, reply_payload, {}, request_id));
      return;
    }

    const AuditServerOptions& opts = server->options_;
    if (!server->running_.load(std::memory_order_relaxed) ||
        conn->inflight >= opts.max_inflight_per_connection ||
        inflight_global.load(std::memory_order_relaxed) >= opts.max_inflight_global) {
      RequestsShed()->Increment();
      Status overloaded = UnavailableError("server overloaded: in-flight request cap reached");
      EnqueueReply(shard, conn,
                   net::EncodeFrame(static_cast<uint8_t>(MsgType::kErrorReply),
                                    EncodeErrorReply(overloaded), {}, request_id));
      return;
    }

    conn->inflight++;
    inflight_global.fetch_add(1, std::memory_order_relaxed);
    // shared_ptr wrappers: ThreadPool tasks are std::function and must be
    // copyable; the payload can be megabytes, so no by-value copies.
    auto payload = std::make_shared<std::string>(std::move(frame.payload));
    uint8_t raw_type = frame.type;
    obs::TraceContext trace = frame.trace;
    server->workers_->Submit([this, shard, conn, raw_type, request_id, payload, trace] {
      uint8_t reply_type = 0;
      std::string reply_payload;
      WallTimer timer;
      {
        GaugeScope request_scope(RequestsActive(), 1);
        // Adopt the request's distributed identity for exactly this
        // request; an invalid context deliberately clears whatever the
        // previous request left on this pool thread.
        obs::ScopedTraceContext request_trace(trace);
        server->HandleRequest(raw_type, *payload, &reply_type, &reply_payload);
      }
      double elapsed = timer.ElapsedSeconds();
      RpcLatency()->Record(elapsed);
      RpcSeconds(raw_type)->Record(elapsed);
      // Replies never carry a trace extension (legacy clients expect plain
      // reply frames) and echo the request id so the client can pair them.
      auto reply =
          std::make_shared<std::string>(net::EncodeFrame(reply_type, reply_payload, {},
                                                         request_id));
      shard->loop.Post([this, shard, conn, reply] {
        inflight_global.fetch_sub(1, std::memory_order_relaxed);
        if (conn->inflight > 0) {
          conn->inflight--;
        }
        if (conn->closed) {
          return;
        }
        EnqueueReply(shard, conn, std::move(*reply));
      });
    });
  }

  void EnqueueReply(Shard* shard, const std::shared_ptr<Conn>& conn, std::string bytes) {
    if (conn->closed) {
      return;
    }
    conn->out.append(bytes);
    FlushWrites(shard, conn);
  }

  void FlushWrites(Shard* shard, const std::shared_ptr<Conn>& conn) {
    while (conn->out_pos < conn->out.size()) {
      Result<size_t> sent =
          conn->socket.SendSome(std::string_view(conn->out).substr(conn->out_pos));
      if (!sent.ok()) {
        INDAAS_LOG(Warning) << "reply failed: " << sent.status();
        CloseConn(shard, conn, /*count_drop=*/true);
        return;
      }
      if (*sent == 0) {
        break;  // kernel send buffer full: wait for EPOLLOUT
      }
      conn->out_pos += *sent;
    }
    if (conn->out_pos == conn->out.size()) {
      conn->out.clear();
      conn->out_pos = 0;
      if (conn->want_write) {
        conn->want_write = false;
        (void)shard->loop.Modify(conn->socket.fd(), EPOLLIN);
      }
      return;
    }
    // Blocked with bytes pending: reclaim the sent prefix, then check the
    // slow-reader cap — a peer that reads slower than it asks gets dropped
    // instead of growing an unbounded buffer server-side.
    conn->out.erase(0, conn->out_pos);
    conn->out_pos = 0;
    if (conn->out.size() > server->options_.max_write_buffer_bytes) {
      SlowReaderDrops()->Increment();
      INDAAS_LOG(Warning) << "dropping slow reader (" << conn->out.size()
                          << " bytes unsent)";
      CloseConn(shard, conn, /*count_drop=*/true);
      return;
    }
    if (!conn->want_write) {
      conn->want_write = true;
      (void)shard->loop.Modify(conn->socket.fd(), EPOLLIN | EPOLLOUT);
    }
  }

  void ArmReadDeadline(Shard* shard, const std::shared_ptr<Conn>& conn) {
    if (conn->deadline_timer != 0 || server->options_.read_deadline_ms <= 0) {
      return;
    }
    conn->deadline_timer = shard->loop.AddTimer(
        server->options_.read_deadline_ms / 1000.0, [this, shard, conn] {
          conn->deadline_timer = 0;
          if (conn->closed) {
            return;
          }
          INDAAS_LOG(Warning) << "dropping connection stalled mid-frame ("
                              << conn->in.size() << " bytes buffered)";
          CloseConn(shard, conn, /*count_drop=*/true);
        });
  }

  void DisarmReadDeadline(Shard* shard, const std::shared_ptr<Conn>& conn) {
    if (conn->deadline_timer != 0) {
      shard->loop.CancelTimer(conn->deadline_timer);
      conn->deadline_timer = 0;
    }
  }

  void CloseConn(Shard* shard, const std::shared_ptr<Conn>& conn, bool count_drop) {
    if (conn->closed) {
      return;
    }
    conn->closed = true;
    if (count_drop) {
      ConnectionsDropped()->Increment();
    }
    DisarmReadDeadline(shard, conn);
    int fd = conn->socket.fd();
    shard->loop.Remove(fd);
    shard->conns.erase(fd);
    conn->socket.Close();
    ConnectionsActive()->Add(-1);
  }
};

AuditServer::AuditServer(AuditServerOptions options) : options_(std::move(options)) {}

AuditServer::~AuditServer() { Stop(); }

Status AuditServer::Start() {
  if (running_.load()) {
    return FailedPreconditionError("AuditServer already started");
  }
  return options_.mode == ServerMode::kReactor ? StartReactor() : StartThreaded();
}

Status AuditServer::StartReactor() {
  workers_ = std::make_unique<ThreadPool>(std::max<size_t>(1, options_.worker_threads));
  start_us_.store(obs::TraceNowMicros(), std::memory_order_relaxed);
  serving_.store(true, std::memory_order_relaxed);
  running_.store(true);
  reactor_ = std::make_unique<Reactor>(this);
  if (Status started = reactor_->Start(); !started.ok()) {
    running_.store(false);
    serving_.store(false, std::memory_order_relaxed);
    reactor_->Join();
    reactor_.reset();
    workers_.reset();
    return started;
  }
  INDAAS_LOG(Info) << "AuditServer (reactor) listening on port " << port_ << " ("
                   << reactor_->shards.size() << " shards, " << workers_->num_threads()
                   << " workers"
                   << (reactor_->sharded_accept ? ")" : ", single acceptor)");
  return Status::Ok();
}

Status AuditServer::StartThreaded() {
  INDAAS_ASSIGN_OR_RETURN(listener_, net::TcpListen(options_.port, options_.listen_backlog));
  INDAAS_ASSIGN_OR_RETURN(port_, listener_.LocalPort());
  workers_ = std::make_unique<ThreadPool>(std::max<size_t>(1, options_.worker_threads));
  start_us_.store(obs::TraceNowMicros(), std::memory_order_relaxed);
  serving_.store(true, std::memory_order_relaxed);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  INDAAS_LOG(Info) << "AuditServer listening on port " << port_ << " ("
                   << workers_->num_threads() << " workers)";
  return Status::Ok();
}

void AuditServer::Stop() {
  serving_.store(false, std::memory_order_relaxed);
  if (!running_.exchange(false)) {
    return;
  }
  if (reactor_) {
    // Order matters: stop accepting, drain the pool (completions are
    // Posted to their shard loops), then stop the loops — EventLoop runs
    // already-posted closures before exiting, so no reply is dropped
    // without at least a flush attempt.
    reactor_->CloseListeners();
    workers_->Wait();
    reactor_->Join();
    reactor_.reset();
    workers_.reset();
    return;
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (workers_) {
    workers_->Wait();
    workers_.reset();
  }
  listener_.Close();
}

size_t AuditServer::reactor_shards() const { return reactor_ ? reactor_->shards.size() : 0; }

void AuditServer::AcceptLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    Result<net::Socket> accepted = net::TcpAccept(listener_, kIdlePollMs);
    if (!accepted.ok()) {
      // Timeout is the idle heartbeat; anything else is logged and survived.
      if (accepted.status().code() != StatusCode::kDeadlineExceeded) {
        INDAAS_LOG(Warning) << "accept failed: " << accepted.status();
      }
      continue;
    }
    ConnectionsAccepted()->Increment();
    // shared_ptr: the lambda lands in a std::function, which must be
    // copyable; the socket itself is move-only.
    auto socket = std::make_shared<net::Socket>(std::move(*accepted));
    workers_->Submit([this, socket] { ServeConnection(socket); });
  }
}

void AuditServer::ServeConnection(std::shared_ptr<net::Socket> socket) {
  GaugeScope connection_scope(ConnectionsActive(), 1);
  while (running_.load(std::memory_order_relaxed)) {
    // Idle wait in short slices so Stop() is never blocked on a quiet
    // keep-alive connection.
    Status readable = socket->WaitReadable(kIdlePollMs);
    if (readable.code() == StatusCode::kDeadlineExceeded) {
      continue;
    }
    if (!readable.ok()) {
      return;
    }
    Result<net::Frame> frame = net::ReadFrame(*socket, options_.limits, options_.io_timeout_ms);
    if (!frame.ok()) {
      // A clean close between requests is the normal end of a session;
      // anything else (framing violation, mid-frame timeout) is a drop.
      if (frame.status().code() != StatusCode::kUnavailable) {
        INDAAS_LOG(Warning) << "closing connection: " << frame.status();
        ConnectionsDropped()->Increment();
      }
      return;
    }
    uint8_t reply_type = 0;
    std::string reply_payload;
    WallTimer timer;
    {
      GaugeScope request_scope(RequestsActive(), 1);
      // Adopt the request's distributed identity for exactly this request:
      // installing an invalid context for traceless frames deliberately
      // clears whatever the previous request left on this pool thread.
      obs::ScopedTraceContext request_trace(frame->trace);
      HandleRequest(frame->type, frame->payload, &reply_type, &reply_payload);
    }
    double elapsed = timer.ElapsedSeconds();
    RpcLatency()->Record(elapsed);
    RpcSeconds(frame->type)->Record(elapsed);
    // Echo the request id (if any) so pipelined clients work against both
    // server modes; plain requests get byte-identical plain replies.
    if (Status s = net::WriteFrame(*socket, reply_type, reply_payload, options_.io_timeout_ms,
                                   {}, frame->request_id);
        !s.ok()) {
      INDAAS_LOG(Warning) << "reply failed: " << s;
      ConnectionsDropped()->Increment();
      return;
    }
  }
}

void AuditServer::HandleRequest(uint8_t type, const std::string& payload, uint8_t* reply_type,
                                std::string* reply_payload) {
  static obs::Counter* errors = obs::MetricsRegistry::Global().GetCounter("svc.rpc_errors");
  obs::MetricsRegistry::Global()
      .GetCounter(std::string("svc.rpcs.") + RpcName(type))
      ->Increment();
  INDAAS_TRACE_SPAN_NAMED(span, "svc.rpc");
  span.Annotate("type", RpcName(type));

  Status error;
  switch (static_cast<MsgType>(type)) {
    case MsgType::kPing: {
      *reply_type = static_cast<uint8_t>(MsgType::kPong);
      reply_payload->clear();
      return;
    }
    case MsgType::kGetStats: {
      ServerStats stats;
      stats.uptime_us =
          obs::TraceNowMicros() - start_us_.load(std::memory_order_relaxed);
      {
        std::shared_lock<std::shared_mutex> lock(agent_mu_);
        stats.depdb_records = agent_.depdb().NetworkCount() +
                              agent_.depdb().HardwareCount() +
                              agent_.depdb().SoftwareCount();
      }
      stats.metrics = obs::MetricsRegistry::Global().Snapshot();
      *reply_type = static_cast<uint8_t>(MsgType::kStatsReply);
      *reply_payload = EncodeServerStats(stats);
      return;
    }
    case MsgType::kHealth: {
      HealthStatus health;
      health.serving = serving();
      health.uptime_us =
          obs::TraceNowMicros() - start_us_.load(std::memory_order_relaxed);
      *reply_type = static_cast<uint8_t>(MsgType::kHealthReply);
      *reply_payload = EncodeHealthStatus(health);
      return;
    }
    case MsgType::kImportDepDb: {
      std::unique_lock<std::shared_mutex> lock(agent_mu_);
      error = agent_.depdb().ImportText(payload);
      if (error.ok()) {
        ImportAck ack;
        ack.network = agent_.depdb().NetworkCount();
        ack.hardware = agent_.depdb().HardwareCount();
        ack.software = agent_.depdb().SoftwareCount();
        *reply_type = static_cast<uint8_t>(MsgType::kImportAck);
        *reply_payload = EncodeImportAck(ack);
        return;
      }
      break;
    }
    case MsgType::kAuditRequest: {
      Result<AuditSpecification> spec = DecodeAuditSpecification(payload);
      if (spec.ok()) {
        std::shared_lock<std::shared_mutex> lock(agent_mu_);
        Result<SiaAuditReport> report = agent_.AuditStructural(*spec);
        if (report.ok()) {
          *reply_type = static_cast<uint8_t>(MsgType::kAuditReport);
          *reply_payload = EncodeSiaAuditReport(*report);
          return;
        }
        error = report.status();
      } else {
        error = spec.status();
      }
      break;
    }
    case MsgType::kPiaRequest: {
      Result<PiaRequest> request = DecodePiaRequest(payload);
      if (request.ok()) {
        // PIA runs over the request's own provider sets, not the DepDB; no
        // agent lock needed.
        Result<PiaAuditReport> report = agent_.AuditPrivate(request->providers,
                                                            request->options);
        if (report.ok()) {
          *reply_type = static_cast<uint8_t>(MsgType::kPiaReport);
          *reply_payload = EncodePiaAuditReport(*report);
          return;
        }
        error = report.status();
      } else {
        error = request.status();
      }
      break;
    }
    default:
      error = ProtocolError("unknown request type " + std::to_string(type));
      break;
  }
  errors->Increment();
  span.Annotate("error", error.ToString());
  *reply_type = static_cast<uint8_t>(MsgType::kErrorReply);
  *reply_payload = EncodeErrorReply(error);
}

}  // namespace svc
}  // namespace indaas
