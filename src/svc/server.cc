#include "src/svc/server.h"

#include <mutex>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/propagate.h"
#include "src/obs/trace.h"
#include "src/svc/proto.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace indaas {
namespace svc {
namespace {

// Poll slice for idle waits: bounds how long Stop() waits on a quiet
// listener or an idle keep-alive connection.
constexpr int kIdlePollMs = 100;

const char* RpcName(uint8_t type) { return MsgTypeName(static_cast<MsgType>(type)); }

obs::Histogram* RpcLatency() {
  static obs::Histogram* histogram = obs::MetricsRegistry::Global().GetHistogram(
      "svc.rpc_latency_seconds",
      {0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
       2.5, 5.0, 10.0});
  return histogram;
}

// Geometric bucket bounds for the per-RPC latency histograms: 100 µs up to
// ~13 s, doubling per bucket (18 buckets + overflow). Exponential bounds
// keep relative error roughly constant across four decades of latency.
std::vector<double> ExponentialLatencyBounds() {
  std::vector<double> bounds;
  for (double bound = 0.0001; bound < 16.0; bound *= 2.0) {
    bounds.push_back(bound);
  }
  return bounds;
}

obs::Histogram* RpcSeconds(uint8_t type) {
  return obs::MetricsRegistry::Global().GetHistogram(
      std::string("svc.rpc_seconds.") + RpcName(type), ExponentialLatencyBounds());
}

// Add(+delta) now, Add(-delta) at scope exit — keeps the gauge honest on
// every early return.
class GaugeScope {
 public:
  GaugeScope(obs::Gauge* gauge, int64_t delta) : gauge_(gauge), delta_(delta) {
    gauge_->Add(delta_);
  }
  ~GaugeScope() { gauge_->Add(-delta_); }
  GaugeScope(const GaugeScope&) = delete;
  GaugeScope& operator=(const GaugeScope&) = delete;

 private:
  obs::Gauge* gauge_;
  int64_t delta_;
};

}  // namespace

AuditServer::AuditServer(AuditServerOptions options) : options_(std::move(options)) {}

AuditServer::~AuditServer() { Stop(); }

Status AuditServer::Start() {
  if (running_.load()) {
    return FailedPreconditionError("AuditServer already started");
  }
  INDAAS_ASSIGN_OR_RETURN(listener_, net::TcpListen(options_.port));
  INDAAS_ASSIGN_OR_RETURN(port_, listener_.LocalPort());
  workers_ = std::make_unique<ThreadPool>(std::max<size_t>(1, options_.worker_threads));
  start_us_.store(obs::TraceNowMicros(), std::memory_order_relaxed);
  serving_.store(true, std::memory_order_relaxed);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  INDAAS_LOG(Info) << "AuditServer listening on port " << port_ << " ("
                   << workers_->num_threads() << " workers)";
  return Status::Ok();
}

void AuditServer::Stop() {
  serving_.store(false, std::memory_order_relaxed);
  if (!running_.exchange(false)) {
    return;
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (workers_) {
    workers_->Wait();
    workers_.reset();
  }
  listener_.Close();
}

void AuditServer::AcceptLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    Result<net::Socket> accepted = net::TcpAccept(listener_, kIdlePollMs);
    if (!accepted.ok()) {
      // Timeout is the idle heartbeat; anything else is logged and survived.
      if (accepted.status().code() != StatusCode::kDeadlineExceeded) {
        INDAAS_LOG(Warning) << "accept failed: " << accepted.status();
      }
      continue;
    }
    static obs::Counter* accepted_total =
        obs::MetricsRegistry::Global().GetCounter("svc.connections_accepted");
    accepted_total->Increment();
    // shared_ptr: the lambda lands in a std::function, which must be
    // copyable; the socket itself is move-only.
    auto socket = std::make_shared<net::Socket>(std::move(*accepted));
    workers_->Submit([this, socket] { ServeConnection(socket); });
  }
}

void AuditServer::ServeConnection(std::shared_ptr<net::Socket> socket) {
  static obs::Gauge* active = obs::MetricsRegistry::Global().GetGauge("svc.requests_active");
  static obs::Gauge* connections =
      obs::MetricsRegistry::Global().GetGauge("svc.connections_active");
  static obs::Counter* dropped =
      obs::MetricsRegistry::Global().GetCounter("svc.connections_dropped");
  GaugeScope connection_scope(connections, 1);
  while (running_.load(std::memory_order_relaxed)) {
    // Idle wait in short slices so Stop() is never blocked on a quiet
    // keep-alive connection.
    Status readable = socket->WaitReadable(kIdlePollMs);
    if (readable.code() == StatusCode::kDeadlineExceeded) {
      continue;
    }
    if (!readable.ok()) {
      return;
    }
    Result<net::Frame> frame = net::ReadFrame(*socket, options_.limits, options_.io_timeout_ms);
    if (!frame.ok()) {
      // A clean close between requests is the normal end of a session;
      // anything else (framing violation, mid-frame timeout) is a drop.
      if (frame.status().code() != StatusCode::kUnavailable) {
        INDAAS_LOG(Warning) << "closing connection: " << frame.status();
        dropped->Increment();
      }
      return;
    }
    uint8_t reply_type = 0;
    std::string reply_payload;
    WallTimer timer;
    {
      GaugeScope request_scope(active, 1);
      // Adopt the request's distributed identity for exactly this request:
      // installing an invalid context for traceless frames deliberately
      // clears whatever the previous request left on this pool thread.
      obs::ScopedTraceContext request_trace(frame->trace);
      HandleRequest(frame->type, frame->payload, &reply_type, &reply_payload);
    }
    double elapsed = timer.ElapsedSeconds();
    RpcLatency()->Record(elapsed);
    RpcSeconds(frame->type)->Record(elapsed);
    if (Status s = net::WriteFrame(*socket, reply_type, reply_payload, options_.io_timeout_ms);
        !s.ok()) {
      INDAAS_LOG(Warning) << "reply failed: " << s;
      dropped->Increment();
      return;
    }
  }
}

void AuditServer::HandleRequest(uint8_t type, const std::string& payload, uint8_t* reply_type,
                                std::string* reply_payload) {
  static obs::Counter* errors = obs::MetricsRegistry::Global().GetCounter("svc.rpc_errors");
  obs::MetricsRegistry::Global()
      .GetCounter(std::string("svc.rpcs.") + RpcName(type))
      ->Increment();
  INDAAS_TRACE_SPAN_NAMED(span, "svc.rpc");
  span.Annotate("type", RpcName(type));

  Status error;
  switch (static_cast<MsgType>(type)) {
    case MsgType::kPing: {
      *reply_type = static_cast<uint8_t>(MsgType::kPong);
      reply_payload->clear();
      return;
    }
    case MsgType::kGetStats: {
      ServerStats stats;
      stats.uptime_us =
          obs::TraceNowMicros() - start_us_.load(std::memory_order_relaxed);
      {
        std::shared_lock<std::shared_mutex> lock(agent_mu_);
        stats.depdb_records = agent_.depdb().NetworkCount() +
                              agent_.depdb().HardwareCount() +
                              agent_.depdb().SoftwareCount();
      }
      stats.metrics = obs::MetricsRegistry::Global().Snapshot();
      *reply_type = static_cast<uint8_t>(MsgType::kStatsReply);
      *reply_payload = EncodeServerStats(stats);
      return;
    }
    case MsgType::kHealth: {
      HealthStatus health;
      health.serving = serving();
      health.uptime_us =
          obs::TraceNowMicros() - start_us_.load(std::memory_order_relaxed);
      *reply_type = static_cast<uint8_t>(MsgType::kHealthReply);
      *reply_payload = EncodeHealthStatus(health);
      return;
    }
    case MsgType::kImportDepDb: {
      std::unique_lock<std::shared_mutex> lock(agent_mu_);
      error = agent_.depdb().ImportText(payload);
      if (error.ok()) {
        ImportAck ack;
        ack.network = agent_.depdb().NetworkCount();
        ack.hardware = agent_.depdb().HardwareCount();
        ack.software = agent_.depdb().SoftwareCount();
        *reply_type = static_cast<uint8_t>(MsgType::kImportAck);
        *reply_payload = EncodeImportAck(ack);
        return;
      }
      break;
    }
    case MsgType::kAuditRequest: {
      Result<AuditSpecification> spec = DecodeAuditSpecification(payload);
      if (spec.ok()) {
        std::shared_lock<std::shared_mutex> lock(agent_mu_);
        Result<SiaAuditReport> report = agent_.AuditStructural(*spec);
        if (report.ok()) {
          *reply_type = static_cast<uint8_t>(MsgType::kAuditReport);
          *reply_payload = EncodeSiaAuditReport(*report);
          return;
        }
        error = report.status();
      } else {
        error = spec.status();
      }
      break;
    }
    case MsgType::kPiaRequest: {
      Result<PiaRequest> request = DecodePiaRequest(payload);
      if (request.ok()) {
        // PIA runs over the request's own provider sets, not the DepDB; no
        // agent lock needed.
        Result<PiaAuditReport> report = agent_.AuditPrivate(request->providers,
                                                            request->options);
        if (report.ok()) {
          *reply_type = static_cast<uint8_t>(MsgType::kPiaReport);
          *reply_payload = EncodePiaAuditReport(*report);
          return;
        }
        error = report.status();
      } else {
        error = request.status();
      }
      break;
    }
    default:
      error = ProtocolError("unknown request type " + std::to_string(type));
      break;
  }
  errors->Increment();
  span.Annotate("error", error.ToString());
  *reply_type = static_cast<uint8_t>(MsgType::kErrorReply);
  *reply_payload = EncodeErrorReply(error);
}

}  // namespace svc
}  // namespace indaas
