#include "src/svc/admission.h"

#include <algorithm>
#include <chrono>

#include "src/obs/metrics.h"

namespace indaas {
namespace svc {
namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

obs::Gauge* ShedLevelGauge() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetGauge("svc.adaptive_shed_level");
  return gauge;
}

}  // namespace

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {}

void AdmissionController::Record(double queue_delay_s) {
  // This request is no longer waiting; decrement before scoring windows so
  // a starved-then-served request doesn't count itself as still queued.
  outstanding_.fetch_sub(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  AdvanceWindowLocked(NowMicros());
  if (!window_has_samples_ || queue_delay_s < window_min_delay_s_) {
    window_min_delay_s_ = queue_delay_s;
    window_has_samples_ = true;
  }
}

bool AdmissionController::Admit() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    AdvanceWindowLocked(NowMicros());
  }
  const uint32_t level = level_.load(std::memory_order_relaxed);
  if (level == 0) {
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // Deterministic proportional shedding: of every max_level consecutive
  // candidates, the first `level` are refused. No randomness — a fixed
  // request sequence sheds identically across runs, which is what the
  // chaos matrix and the benches need to be reproducible.
  const uint64_t seq = candidate_seq_.fetch_add(1, std::memory_order_relaxed);
  const bool admitted = (seq % options_.max_level) >= level;
  if (admitted) {
    outstanding_.fetch_add(1, std::memory_order_relaxed);
  }
  return admitted;
}

void AdmissionController::AdvanceWindowLocked(uint64_t now_us) {
  const uint64_t window_us = static_cast<uint64_t>(options_.window_s * 1e6);
  if (window_us == 0) {
    return;
  }
  if (window_start_us_ == 0) {
    window_start_us_ = now_us;
    return;
  }
  if (now_us - window_start_us_ < window_us) {
    return;
  }
  const bool starved = outstanding_.load(std::memory_order_relaxed) > 0;
  uint32_t level = level_.load(std::memory_order_relaxed);
  // Close the window the buffered samples belong to. A sample-free window
  // with admitted work still waiting means the workers were too starved to
  // pick anything up all window — worse than any measurable delay.
  const bool bad = window_has_samples_
                       ? window_min_delay_s_ > options_.target_delay_s
                       : starved;
  if (bad) {
    level = std::min(level + 1, options_.max_level);
  } else if (level > 0) {
    --level;
  }
  window_start_us_ += window_us;
  // Any further fully-elapsed windows saw no samples at all. Score them in
  // one step (an hours-long idle gap must not replay millions of windows):
  // starvation pushes the level up one notch each, idleness decays it.
  const uint64_t gap_windows = (now_us - window_start_us_) / window_us;
  if (gap_windows > 0) {
    if (starved) {
      const uint64_t room = options_.max_level - level;
      level += static_cast<uint32_t>(std::min<uint64_t>(gap_windows, room));
    } else {
      level = gap_windows >= level ? 0 : level - static_cast<uint32_t>(gap_windows);
    }
    window_start_us_ += gap_windows * window_us;
  }
  level_.store(level, std::memory_order_relaxed);
  ShedLevelGauge()->Set(static_cast<int64_t>(level));
  window_has_samples_ = false;
  window_min_delay_s_ = 0.0;
}

}  // namespace svc
}  // namespace indaas
