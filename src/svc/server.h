// The networked auditing agent (paper §2, Figure 1, as a real service).
//
// AuditServer listens on a TCP port and serves the INDaaS RPCs defined in
// src/svc/proto.h: DepDB imports, structural (SIA) audits and private (PIA)
// audits. One accept thread hands each connection to the shared ThreadPool;
// a connection is served serially (one in-flight request per client), while
// different connections run concurrently up to the worker count. The DepDB
// behind the agent is guarded by a reader/writer lock: imports are
// exclusive, audits run shared, so concurrent clients never observe a
// half-imported database.
//
// Failure semantics: malformed payloads earn a kErrorReply and the
// connection stays open; framing violations (bad magic/version/oversize)
// and I/O timeouts close the connection. Stop() drains in-flight requests
// before returning; idle connections notice the shutdown within one poll
// slice (~100 ms).
//
// Observability: every request frame carrying a trace-context extension is
// adopted for the duration of that request (RAII, so pool threads never
// leak one request's identity into the next); per-RPC latency lands in
// exponential `svc.rpc_seconds.<MsgTypeName>` histograms, and the
// kGetStats/kHealth RPCs expose the whole MetricsRegistry plus drain state
// to remote scrapers.

#ifndef SRC_SVC_SERVER_H_
#define SRC_SVC_SERVER_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <thread>

#include "src/agent/agent.h"
#include "src/net/frame.h"
#include "src/net/socket.h"
#include "src/util/thread_pool.h"

namespace indaas {
namespace svc {

struct AuditServerOptions {
  uint16_t port = 0;        // 0 = pick any free port (see AuditServer::port())
  size_t worker_threads = 4;
  int io_timeout_ms = 10000;  // per read/write once a request is in flight
  net::FrameLimits limits;
};

class AuditServer {
 public:
  explicit AuditServer(AuditServerOptions options = {});
  ~AuditServer();

  AuditServer(const AuditServer&) = delete;
  AuditServer& operator=(const AuditServer&) = delete;

  // The agent served by this process. Configure it (preload a DepDB, set a
  // probability model) before Start(); afterwards all access must go
  // through the RPC surface.
  AuditingAgent& agent() { return agent_; }

  // Binds, listens and spawns the accept thread. Fails if already started
  // or the port is taken.
  Status Start();

  // Stops accepting, drains in-flight requests and joins all threads.
  // Idempotent.
  void Stop();

  // The bound port (valid after Start(); resolves port 0 to the real one).
  uint16_t port() const { return port_; }

  // Health as reported to kHealth. Start() sets serving; Stop() clears it
  // before draining. set_serving(false) lets an operator drain the server —
  // existing connections keep working but Health answers not-serving — so
  // load balancers stop sending new work ahead of the actual shutdown.
  bool serving() const { return serving_.load(std::memory_order_relaxed); }
  void set_serving(bool serving) { serving_.store(serving, std::memory_order_relaxed); }

 private:
  void AcceptLoop();
  void ServeConnection(std::shared_ptr<net::Socket> socket);
  // Dispatches one decoded request; returns the reply frame (type+payload).
  void HandleRequest(uint8_t type, const std::string& payload, uint8_t* reply_type,
                     std::string* reply_payload);

  AuditServerOptions options_;
  AuditingAgent agent_;
  std::shared_mutex agent_mu_;  // imports exclusive, audits shared
  net::Socket listener_;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> serving_{false};
  std::atomic<uint64_t> start_us_{0};  // trace-epoch micros at Start()
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> workers_;
};

}  // namespace svc
}  // namespace indaas

#endif  // SRC_SVC_SERVER_H_
