// The networked auditing agent (paper §2, Figure 1, as a real service).
//
// AuditServer listens on a TCP port and serves the INDaaS RPCs defined in
// src/svc/proto.h: DepDB imports, structural (SIA) audits and private (PIA)
// audits. Two serving modes share one RPC surface:
//
//   kReactor (default) — N reactor shards, each an epoll EventLoop thread
//   (src/net/event_loop.h) owning its own SO_REUSEPORT listener (fallback:
//   one acceptor round-robining connections across shards). Connections are
//   non-blocking state machines: reads accumulate into a parse buffer,
//   complete frames dispatch, replies append to a bounded write buffer
//   flushed as the socket drains. Requests carrying a request-id extension
//   may pipeline — several in flight per connection, replies completed out
//   of order, each echoing its request id. CPU-bound RPCs (imports, audits)
//   run on the shared ThreadPool so loops never block; trivial RPCs (ping,
//   health) answer inline on the loop. Admission control sheds load with
//   kUnavailable once per-connection or global in-flight caps are hit, and
//   slow readers whose write buffer exceeds its cap are dropped, so one
//   stalled client can never pin server memory.
//
//   kThreadPerRequest — the pre-reactor baseline: one accept thread hands
//   each connection to the ThreadPool, which serves it serially for the
//   connection's lifetime. At most worker_threads connections make progress
//   concurrently. Kept for A/B measurement (bench_svc_saturation) and as a
//   reference implementation.
//
// The DepDB behind the agent is guarded by a reader/writer lock: imports
// are exclusive, audits run shared, so concurrent clients never observe a
// half-imported database.
//
// Failure semantics: malformed payloads earn a kErrorReply and the
// connection stays open; framing violations (bad magic/version/oversize)
// close the connection; a connection mid-frame for longer than the read
// deadline is dropped. Stop() drains admitted requests before returning.
//
// Observability: request frames carrying a trace-context extension are
// adopted for the duration of that request; per-RPC latency lands in
// exponential `svc.rpc_seconds.<MsgTypeName>` histograms; the reactor adds
// svc.requests_shed, svc.slow_reader_drops and net.loop.* instruments; the
// kGetStats/kHealth RPCs expose the whole MetricsRegistry plus drain state
// to remote scrapers.

#ifndef SRC_SVC_SERVER_H_
#define SRC_SVC_SERVER_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <thread>

#include "src/agent/agent.h"
#include "src/net/frame.h"
#include "src/net/socket.h"
#include "src/obs/flight_recorder.h"
#include "src/util/thread_pool.h"

namespace indaas {
namespace svc {

struct DebugInfo;  // src/svc/proto.h

enum class ServerMode {
  kReactor,           // epoll shards, pipelining, admission control
  kThreadPerRequest,  // baseline: one pool task per connection
};

struct AuditServerOptions {
  uint16_t port = 0;        // 0 = pick any free port (see AuditServer::port())
  size_t worker_threads = 4;
  int io_timeout_ms = 10000;  // per read/write once a request is in flight
  net::FrameLimits limits;

  ServerMode mode = ServerMode::kReactor;

  // Reactor knobs (ignored in kThreadPerRequest mode).
  size_t reactor_shards = 2;  // epoll loops; clamped to at least 1
  // A connection sitting on a partial frame longer than this is dropped.
  // Idle connections *between* frames are never timed out (keep-alive).
  int read_deadline_ms = 10000;
  // Admission control: a request that would exceed either cap is answered
  // immediately with kUnavailable instead of being queued.
  size_t max_inflight_per_connection = 64;
  size_t max_inflight_global = 256;
  // A connection whose unsent replies exceed this is dropped (slow reader).
  size_t max_write_buffer_bytes = 16u << 20;
  // Adaptive admission (src/svc/admission.h): sheds a level-proportional
  // fraction of pool-bound requests whenever the per-window minimum of
  // svc.queue_delay_seconds stays above target_queue_delay_s, so pushback
  // starts while the queue is merely slow instead of waiting for the fixed
  // caps above (which remain hard ceilings). Off by default so embedded
  // servers and benches keep deterministic no-shed behaviour under bursts;
  // `indaas serve` turns it on unless told --admission=fixed.
  bool adaptive_admission = false;
  double target_queue_delay_s = 0.005;

  // Listen backlog for every listener (both modes).
  int listen_backlog = 128;

  // Tail sampler (obs::TailSampler): finished RPCs slower than this — plus
  // every shed or errored RPC regardless of speed — keep their full
  // per-stage breakdown for kGetDebugInfo / `indaas debug`. <= 0 disables
  // the slowness criterion (sheds and errors are still retained).
  double slow_rpc_threshold_s = 0.100;
  size_t tail_samples = 256;

  // Continuous profiling (src/obs/profiler.h): > 0 starts a process-wide
  // sampling session at this frequency for the server's lifetime, and
  // GetProfile requests cut windows out of it instead of arming their own
  // timers. 0 (default) keeps the profiler idle until a GetProfile request
  // runs a temporary session. Clamped to obs::Profiler::kMaxHz.
  uint32_t profile_hz = 0;
  bool profile_alloc = true;  // sample allocations in the continuous session
};

class AuditServer {
 public:
  explicit AuditServer(AuditServerOptions options = {});
  ~AuditServer();

  AuditServer(const AuditServer&) = delete;
  AuditServer& operator=(const AuditServer&) = delete;

  // The agent served by this process. Configure it (preload a DepDB, set a
  // probability model) before Start(); afterwards all access must go
  // through the RPC surface.
  AuditingAgent& agent() { return agent_; }

  // Binds, listens and spawns the serving threads. Fails if already started
  // or the port is taken.
  Status Start();

  // Stops accepting, drains admitted requests and joins all threads.
  // Idempotent.
  void Stop();

  // The bound port (valid after Start(); resolves port 0 to the real one).
  uint16_t port() const { return port_; }

  // The number of reactor shards actually running (0 in thread-per-request
  // mode; may be less than requested if SO_REUSEPORT was unavailable — the
  // shards still run, fed by one acceptor).
  size_t reactor_shards() const;

  // Health as reported to kHealth. Start() sets serving; Stop() clears it
  // before draining. set_serving(false) lets an operator drain the server —
  // existing connections keep working but Health answers not-serving — so
  // load balancers stop sending new work ahead of the actual shutdown.
  bool serving() const { return serving_.load(std::memory_order_relaxed); }
  void set_serving(bool serving) { serving_.store(serving, std::memory_order_relaxed); }

 private:
  struct Reactor;  // defined in server.cc; owns shards, loops and conns
  friend struct Reactor;

  Status StartThreaded();
  Status StartReactor();
  void AcceptLoop();
  void ServeConnection(std::shared_ptr<net::Socket> socket);
  // Dispatches one decoded request; returns the reply frame (type+payload).
  // When `stages` is non-null the handler attributes its decode/compute/
  // encode time there (obs::RpcStage decomposition; read/queue/write are
  // measured by the transport that called us).
  void HandleRequest(uint8_t type, const std::string& payload, uint8_t* reply_type,
                     std::string* reply_payload, obs::RpcStageSeconds* stages = nullptr);
  // The mode-independent part of a kGetDebugInfo answer: uptime, mode,
  // recent flight-recorder events, slowest tail-sampled RPCs. The reactor
  // adds per-shard/per-connection detail via its cross-shard gather.
  void FillDebugCommon(DebugInfo* info);

  AuditServerOptions options_;
  AuditingAgent agent_;
  std::shared_mutex agent_mu_;  // imports exclusive, audits shared
  net::Socket listener_;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> serving_{false};
  std::atomic<uint64_t> start_us_{0};  // trace-epoch micros at Start()
  std::atomic<uint64_t> next_conn_id_{0};  // debug identity for connections
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> workers_;
  std::unique_ptr<Reactor> reactor_;
  bool owns_profiler_session_ = false;  // Start() armed the continuous session
};

}  // namespace svc
}  // namespace indaas

#endif  // SRC_SVC_SERVER_H_
