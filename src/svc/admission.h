// Adaptive admission control for the audit server (CoDel-flavoured).
//
// The fixed in-flight caps in AuditServerOptions answer "how much work can
// this process hold" but not "is the work actually moving". Under a slow
// DepDB audit mix, the queue between the reactor loops and the worker pool
// grows long before the caps trip, and every admitted request pays the full
// backlog in svc.queue_delay_seconds. This controller watches that very
// signal: within each measurement window it tracks the *minimum* observed
// dispatch->pickup delay (the CoDel trick — the minimum ignores bursts and
// only rises when the queue has standing depth). A window whose minimum
// exceeds the target raises the shed level one notch; a window that stays
// under it lowers it. A window with no pickups at all is read through the
// outstanding count: admitted work still waiting means the workers are so
// starved nothing even got picked — the strongest overload signal, scored
// as a bad window — while true idleness (nothing admitted, nothing waiting)
// decays the level. At level L of max_level, L out of every max_level
// admission candidates are refused deterministically — candidate seq is
// shed iff (seq % max_level) < L, so a fixed request sequence sheds
// identically across runs.
//
// The fixed caps remain as hard ceilings on top of this; the controller
// only adds earlier, proportional pushback so queue delay stays near the
// target instead of sawtoothing against the caps.
//
// Thread model: Record() is called by worker threads, Admit() by reactor
// loop threads. Both are cheap (one mutex for window rollover, atomics on
// the fast path). The current level is exported as the
// svc.adaptive_shed_level gauge.

#ifndef SRC_SVC_ADMISSION_H_
#define SRC_SVC_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <mutex>

namespace indaas {
namespace svc {

struct AdmissionOptions {
  // Queue-delay target: a window whose *minimum* delay exceeds this is
  // evidence of a standing queue. 5 ms is the classic CoDel target scaled
  // to an RPC server whose median handler runs well under that.
  double target_delay_s = 0.005;
  // Measurement window; level moves at most one notch per window.
  double window_s = 0.100;
  // Shed granularity: at level L, L/max_level of candidates are refused.
  uint32_t max_level = 10;
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options);

  // Records one dispatch->worker-pickup delay observation. Every admitted
  // candidate must eventually be Recorded exactly once (at pickup); the
  // admit/record pairing is what lets sample-free windows distinguish
  // worker starvation from true idleness.
  void Record(double queue_delay_s);

  // Decides whether the next admission candidate may proceed. Advances the
  // measurement window as a side effect, so the level keeps moving even
  // when workers are too starved to Record anything.
  bool Admit();

  // Current shed level in [0, max_level]; 0 admits everything.
  uint32_t shed_level() const { return level_.load(std::memory_order_relaxed); }

 private:
  void AdvanceWindowLocked(uint64_t now_us);

  const AdmissionOptions options_;

  std::mutex mu_;
  uint64_t window_start_us_ = 0;     // 0 until the first observation
  double window_min_delay_s_ = 0.0;  // valid iff window_has_samples_
  bool window_has_samples_ = false;

  std::atomic<uint32_t> level_{0};
  std::atomic<uint64_t> candidate_seq_{0};
  // Admitted candidates a worker has not yet picked up (Admit++ / Record--).
  std::atomic<int64_t> outstanding_{0};
};

}  // namespace svc
}  // namespace indaas

#endif  // SRC_SVC_ADMISSION_H_
